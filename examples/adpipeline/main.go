// Ad-placement pipeline: the motivating workload from the paper's
// introduction. A revenue-critical user-log analysis workflow (whose output
// feeds advertisement placement optimization) must finish within an SLA
// while large ad-hoc batch workflows share the cluster.
//
// The example defines the pipeline in the paper's XML configuration format
// (prerequisites inferred from dataset paths), then runs the same contention
// scenario under Oozie+FIFO and under WOHA-LPF, showing how workflow-aware
// progress scheduling protects the SLA.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	woha "repro"
)

const pipelineXML = `
<workflow name="ad-optimization" release="0s" deadline="30m">
  <job name="ingest-logs" maps="60" reduces="10" map-time="40s" reduce-time="2m">
    <jar>/apps/ingest.jar</jar>
    <main-class>com.example.ads.Ingest</main-class>
    <input>/data/raw/clicklogs</input>
    <output>/data/stage/clicks</output>
  </job>
  <job name="sessionize" maps="30" reduces="8" map-time="35s" reduce-time="2m30s">
    <input>/data/stage/clicks</input>
    <output>/data/stage/sessions</output>
  </job>
  <job name="user-profiles" maps="24" reduces="6" map-time="30s" reduce-time="2m">
    <input>/data/stage/sessions</input>
    <input>/data/dim/users</input>
    <output>/data/stage/profiles</output>
  </job>
  <job name="ctr-features" maps="24" reduces="6" map-time="30s" reduce-time="2m">
    <input>/data/stage/sessions</input>
    <output>/data/stage/ctr</output>
  </job>
  <job name="placement-model" maps="16" reduces="4" map-time="45s" reduce-time="4m">
    <input>/data/stage/profiles</input>
    <input>/data/stage/ctr</input>
    <output>/data/out/placement</output>
  </job>
</workflow>`

func batchWorkflow(name string) *woha.Workflow {
	// A wide ad-hoc analysis job with a lax deadline: plenty of tasks,
	// no urgency.
	return woha.NewWorkflow(name).
		Job("scan", 160, 20, 50*time.Second, 3*time.Minute).
		Job("rollup", 40, 10, 40*time.Second, 3*time.Minute, "scan").
		MustBuild(0, woha.At(4*time.Hour))
}

func run(sched woha.Scheduler) (*woha.Result, error) {
	pipeline, err := woha.ParseWorkflowXML(strings.NewReader(pipelineXML))
	if err != nil {
		return nil, err
	}
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes:              12,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
	}, sched)
	if err != nil {
		return nil, err
	}
	// The batch workflows are submitted first — under FIFO they hold the
	// slots while the SLA pipeline waits.
	for i := 0; i < 2; i++ {
		if err := sess.Submit(batchWorkflow(fmt.Sprintf("adhoc-batch-%d", i))); err != nil {
			return nil, err
		}
	}
	if err := sess.Submit(pipeline); err != nil {
		return nil, err
	}
	return sess.Run()
}

func main() {
	fmt.Println("ad-optimization pipeline (30m SLA) vs two ad-hoc batch workflows, 12 nodes")
	fmt.Println()
	for _, sched := range []woha.Scheduler{woha.SchedulerFIFO, woha.SchedulerWOHALPF} {
		res, err := run(sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sched)
		for _, wf := range res.Workflows {
			status := "met"
			if !wf.Met {
				status = fmt.Sprintf("MISSED by %v", wf.Tardiness.Round(time.Second))
			}
			fmt.Printf("  %-16s finished %8v  deadline %8v  %s\n",
				wf.Name, wf.Workspan.Round(time.Second), wf.Deadline.Duration(), status)
		}
		fmt.Println()
	}
	fmt.Println("WOHA's progress requirements pull the SLA pipeline through the contention;")
	fmt.Println("the ad-hoc batches still absorb every remaining slot (work conservation).")
}
