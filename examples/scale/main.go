// Scale: the paper's "tens of thousands of concurrently running workflows"
// claim. The example loads the WOHA inter-workflow priority queue with
// 50,000 live workflows and measures AssignTask throughput under the three
// backends of Fig 13(a): the Double Skip List, the balanced-search-tree
// variant, and the naive recompute-everything scheduler.
package main

import (
	"fmt"
	"time"

	"repro/internal/dsl"
	"repro/internal/plan"
	"repro/internal/simtime"
)

func fill(q dsl.Queue, n int) {
	for i := 0; i < n; i++ {
		// Plan-shaped requirements: a few waves tens of seconds apart.
		ttd := time.Duration(300+(i*37)%3600) * time.Second
		reqs := []plan.Req{
			{TTD: ttd, Cum: 8},
			{TTD: ttd * 2 / 3, Cum: 40},
			{TTD: ttd / 3, Cum: 100},
		}
		deadline := simtime.FromSeconds(float64(600 + (i*7919)%200000))
		q.Add(dsl.NewEntry(i, deadline, reqs), 0)
	}
}

func measure(name string, q dsl.Queue, n int, budget time.Duration) {
	fill(q, n)
	now := simtime.Epoch
	start := time.Now()
	ops := 0
	for time.Since(start) < budget {
		for i := 0; i < 256; i++ {
			now = now.Add(2 * time.Millisecond)
			e, ok := q.Best(now)
			if !ok {
				break
			}
			q.Scheduled(e.ID, now)
			ops++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("  %-6s %9.0f AssignTask calls/second\n", name, float64(ops)/elapsed.Seconds())
}

func main() {
	const workflows = 50000
	fmt.Printf("%d concurrently queued workflows, 500ms measurement per backend\n", workflows)

	measure("DSL", dsl.New(1), workflows, 500*time.Millisecond)
	measure("BST", dsl.NewBST(), workflows, 500*time.Millisecond)
	measure("Naive", dsl.NewNaive(), workflows, 500*time.Millisecond)

	fmt.Println()
	fmt.Println("a Hadoop master sees a few thousand slot free-ups per second; only the")
	fmt.Println("incremental queues keep AssignTask comfortably ahead of that rate at 50k")
	fmt.Println("queued workflows — the paper's scalability argument for the DSL.")
}
