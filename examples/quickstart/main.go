// Quickstart: build a three-stage ETL workflow with a deadline, run it on a
// simulated 10-node Hadoop cluster under the WOHA scheduler, and report the
// outcome.
package main

import (
	"fmt"
	"log"
	"time"

	woha "repro"
)

func main() {
	// A workflow is a DAG of Map-Reduce jobs. Each job declares its task
	// counts and per-task duration estimates; dependencies are by name.
	w := woha.NewWorkflow("nightly-etl").
		Job("extract", 40, 8, 45*time.Second, 2*time.Minute).
		Job("clean", 20, 4, 30*time.Second, 90*time.Second, "extract").
		Job("join-dims", 24, 6, 40*time.Second, 2*time.Minute, "clean").
		Job("aggregate", 16, 4, 30*time.Second, 3*time.Minute, "join-dims").
		MustBuild(0 /* release at epoch */, woha.At(45*time.Minute))

	// A session wires a simulated Hadoop-1 cluster (typed map/reduce
	// slots, heartbeat-driven dispatch) to a workflow scheduler. For WOHA
	// schedulers, Submit plays the client role from the paper: it
	// generates the workflow's resource-capped scheduling plan locally and
	// ships it with the workflow.
	sess, err := woha.NewSession(woha.ClusterConfig{
		Nodes:              10,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
	}, woha.SchedulerWOHALPF)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Submit(w); err != nil {
		log.Fatal(err)
	}

	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, wf := range res.Workflows {
		fmt.Printf("%s: finished in %v (deadline %v) — met=%v\n",
			wf.Name, wf.Workspan.Round(time.Second), wf.Deadline.Duration(), wf.Met)
	}
	fmt.Printf("cluster utilization: %.1f%%\n", 100*res.Utilization())

	// The same workflow can also be expressed as the XML configuration
	// format from the paper and parsed back with woha.ParseWorkflowXML.
	xml, err := woha.MarshalWorkflowXML(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXML configuration (%d bytes):\n%s", len(xml), xml[:200])
	fmt.Println("...")
}
