// Multi-tenant deadline study: the paper's Fig 11 scenario end to end.
// Three tenants submit the same 33-job analytics workflow five minutes
// apart, with deadlines that tighten for later arrivals (80, 70, 60
// minutes). The example runs all six schedulers on the 32-slave cluster and
// prints the workspan matrix, reproducing the headline qualitative result:
// only WOHA meets every deadline.
package main

import (
	"fmt"
	"log"
	"time"

	woha "repro"
	"repro/internal/workload"
)

func main() {
	cfg := woha.ClusterConfig{Nodes: 32, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}

	fmt.Println("three tenants, same 33-job workflow, releases 0/5/10 min, deadlines 80/70/60 min")
	fmt.Println("(* marks a deadline miss)")
	fmt.Printf("%-10s %12s %12s %12s %8s\n", "scheduler", "tenant-1", "tenant-2", "tenant-3", "misses")
	for _, sched := range woha.Schedulers() {
		sess, err := woha.NewSession(cfg, sched, woha.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			release := time.Duration(i*5) * time.Minute
			deadline := release + time.Duration(80-10*i)*time.Minute
			w := workload.Fig7(fmt.Sprintf("tenant-%d", i+1), 1.70, woha.At(release), woha.At(deadline))
			if err := sess.Submit(w); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", sched)
		for _, wf := range res.Workflows {
			cell := wf.Workspan.Round(time.Second).String()
			if !wf.Met {
				cell += "*"
			}
			fmt.Printf(" %12s", cell)
		}
		fmt.Printf(" %8d\n", res.DeadlineMisses())
	}

	fmt.Println()
	fmt.Println("EDF favors the latest (tightest) tenant and sacrifices tenant-1; FIFO and")
	fmt.Println("Fair leave tenant-3 tardy; WOHA's progress-based plans meet all three.")
}
