// Estimation learning: closing the feedback loop the paper assumes away.
// WOHA plans are only as good as the per-task duration estimates behind
// them ("estimations of task execution times can be acquired from logs of
// historical executions"). This example submits a recurring pipeline whose
// operator-configured estimates are badly wrong, records the first
// recurrence's actual task durations, and regenerates the plan from the
// learned medians — showing how far the plan's predicted makespan moves
// toward the truth.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/estimate"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func main() {
	// The pipeline as it actually behaves.
	actual := workflow.NewBuilder("hourly-report").
		Job("extract", 24, 6, 30*time.Second, 2*time.Minute).
		Job("enrich", 12, 4, 45*time.Second, 90*time.Second, "extract").
		Job("report", 8, 2, 20*time.Second, 3*time.Minute, "enrich").
		MustBuild(0, simtime.Epoch.Add(time.Hour))

	// The operator's configuration guessed map times 2x too high and
	// reduce times 3x too low.
	configured := actual.Clone()
	for i := range configured.Jobs {
		configured.Jobs[i].MapTime *= 2
		configured.Jobs[i].ReduceTime /= 3
	}

	const slots = 24
	truth, err := plan.GenerateForPolicy(actual, slots, priority.LPF{})
	if err != nil {
		log.Fatal(err)
	}
	naive, err := plan.GenerateForPolicy(configured, slots, priority.LPF{})
	if err != nil {
		log.Fatal(err)
	}

	// Run one recurrence with an estimate.Recorder attached; the simulator
	// perturbs durations by ±15% to stand in for real variance.
	rec := estimate.NewRecorder()
	sim, err := cluster.New(cluster.Config{
		Nodes: 8, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.15, Seed: 11,
	}, scheduler.NewFIFO(), rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Submit(actual, nil); err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	// Feed the learned medians back into the configured view and replan.
	updated := rec.Apply(configured)
	learned, err := plan.GenerateForPolicy(configured, slots, priority.LPF{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan makespan predictions for the hourly-report pipeline:")
	fmt.Printf("  true durations:        %v\n", truth.Makespan.Round(time.Second))
	fmt.Printf("  operator estimates:    %v  (error %+.0f%%)\n",
		naive.Makespan.Round(time.Second), pctErr(naive.Makespan, truth.Makespan))
	fmt.Printf("  after one recurrence:  %v  (error %+.0f%%, %d estimates learned)\n",
		learned.Makespan.Round(time.Second), pctErr(learned.Makespan, truth.Makespan), updated)
	fmt.Println()
	fmt.Println("accurate plans mean accurate progress requirements — the scheduler only")
	fmt.Println("protects a deadline it can see coming.")
}

func pctErr(got, want time.Duration) float64 {
	return 100 * (float64(got) - float64(want)) / float64(want)
}
