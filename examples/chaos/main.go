// Chaos: the fault and straggler models in one run. The same deadline-
// constrained workload executes four times on a 12-node cluster under
// WOHA-LPF: a clean baseline, then with node failures, then with heavy
// duration noise (stragglers), then with speculation enabled to fight the
// stragglers — showing how each perturbation moves deadline outcomes and
// how much speculative execution buys back.
package main

import (
	"fmt"
	"log"
	"time"

	woha "repro"
	"repro/internal/simtime"
)

func workload() []*woha.Workflow {
	var flows []*woha.Workflow
	for i := 0; i < 4; i++ {
		release := time.Duration(i*2) * time.Minute
		flows = append(flows, woha.NewWorkflow(fmt.Sprintf("pipeline-%d", i+1)).
			Job("extract", 30, 8, 40*time.Second, 100*time.Second).
			Job("transform", 18, 6, 35*time.Second, 80*time.Second, "extract").
			Job("load", 10, 4, 25*time.Second, 70*time.Second, "transform").
			MustBuild(woha.At(release), woha.At(release+40*time.Minute)))
	}
	return flows
}

func run(name string, flows []*woha.Workflow, mutate func(*woha.ClusterConfig)) {
	cfg := woha.ClusterConfig{Nodes: 12, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 7}
	if mutate != nil {
		mutate(&cfg)
	}
	sess, err := woha.NewSession(cfg, woha.SchedulerWOHALPF, woha.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range flows {
		if err := sess.Submit(w); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s misses %d/%d  attempts %4d  makespan %v\n",
		name, res.DeadlineMisses(), len(res.Workflows), res.TasksStarted,
		res.Makespan.Duration().Round(time.Second))
}

func main() {
	fmt.Println("four 40-minute-SLA pipelines on 12 nodes under WOHA-LPF")
	fmt.Println()

	run("clean baseline", workload(), nil)

	run("two node failures", workload(), func(cfg *woha.ClusterConfig) {
		cfg.Failures = []woha.Failure{
			{Node: 0, At: simtime.Epoch.Add(3 * time.Minute), Downtime: 8 * time.Minute},
			{Node: 5, At: simtime.Epoch.Add(9 * time.Minute), Downtime: 6 * time.Minute},
		}
	})

	run("70% duration noise", workload(), func(cfg *woha.ClusterConfig) {
		cfg.Noise = 0.7
	})

	run("70% noise + speculation", workload(), func(cfg *woha.ClusterConfig) {
		cfg.Noise = 0.7
		cfg.SpeculativeSlowdown = 1.3
	})

	// Speculation pays off against one-sided stragglers (tasks stuck at 5x
	// their estimate with 15% probability) when idle slots are free. Sweep
	// seeds to see the distribution rather than one coin flip.
	fmt.Println()
	wide := func() []*woha.Workflow {
		return []*woha.Workflow{woha.NewWorkflow("wide-scan").
			Job("scan", 40, 8, 60*time.Second, 2*time.Minute).
			MustBuild(0, woha.At(30*time.Minute))}
	}
	wins := 0
	var saved time.Duration
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		stragglers := func(cfg *woha.ClusterConfig) {
			cfg.Noise = 0.2
			cfg.Seed = seed
			cfg.StragglerProb = 0.15
			cfg.StragglerFactor = 5
		}
		a := measure(wide(), stragglers)
		b := measure(wide(), func(cfg *woha.ClusterConfig) {
			stragglers(cfg)
			cfg.SpeculativeSlowdown = 1.3
		})
		if b < a {
			wins++
			saved += a - b
		}
	}
	fmt.Printf("wide job with 15%%/5x stragglers, %d seeds: speculation won %d, saving %v total\n",
		trials, wins, saved.Round(time.Second))

	fmt.Println()
	fmt.Println("failures cost re-executed attempts and stragglers stretch the tail.")
	fmt.Println("speculative duplicates compete with real work on a saturated cluster but")
	fmt.Println("reliably rescue one-sided stragglers when idle slots are available.")
}

// measure runs one configuration and returns its makespan.
func measure(flows []*woha.Workflow, mutate func(*woha.ClusterConfig)) time.Duration {
	cfg := woha.ClusterConfig{Nodes: 12, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	mutate(&cfg)
	sess, err := woha.NewSession(cfg, woha.SchedulerWOHALPF, woha.WithSeed(cfg.Seed))
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range flows {
		if err := sess.Submit(w); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.Makespan.Duration()
}
