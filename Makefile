GO ?= go

.PHONY: build test vet race verify ci fmt-check race-smoke alloc-pins postmortem-smoke admission-smoke federation-smoke bench-plan bench-plan-shared bench-sim bench-live bench-queue bench-admission bench-federation bench-smoke mutex-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrent subsystems: observability fan-out, the live
# (RPC) job tracker, the parallel/cached planner, the scenario runner, the
# pooled arena simulator (its equivalence sweep crosses pool handoff), the
# queue backends (the randomized op-sequence property test), the admission
# front door (a locked pipeline shared across tracker shards), and the
# federation layer (single-threaded by design, but its equivalence sweeps
# cross the cluster pool-handoff paths).
race:
	$(GO) test -race ./internal/obs/... ./internal/live/... ./internal/planner/... ./internal/runner/... ./internal/cluster/... ./internal/dsl/... ./internal/admission/... ./internal/federation/...

# Tier-1 gate plus static analysis and race checks — run before every PR.
verify: build test vet race

# Fails when any tracked Go file is not gofmt-clean, printing the diff.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; gofmt -d $$out; exit 1; fi

# Quick race pass over the hottest concurrent paths: shared-planner
# coalescing, runner streaming, and the deadline-health tracker fed by
# concurrent heartbeats on both control-plane layouts (plus the introspection
# server and the heartbeat zero-alloc pin that guards the disabled path).
race-smoke:
	$(GO) test -race -count=1 -run 'TestCoalescing|TestCoalesced|TestPlanCache|TestRunEach|TestDelivery|TestFirstError' \
		./internal/planner/ ./internal/runner/
	$(GO) test -race -count=1 -run 'TestHealth|TestIntrospection|TestHeartbeatBareAllocs' \
		./internal/obs/ ./internal/live/

# Allocation-budget pins: the arena simulator's steady-state scenario
# budget (≤3 allocs end to end across both dispatch modes), the obs
# heartbeat zero-alloc contract, and the queue-op pin (Best/Scheduled/
# Unscheduled at 0 allocs/op on a warm queue for the DSL, BST, and Det
# backends). Run without -race — the race runtime randomizes sync.Pool
# reuse and inflates allocation counts, so the pins skip themselves.
alloc-pins:
	$(GO) test -count=1 -run 'TestScenarioAllocs|TestHeartbeatBareAllocs' \
		./internal/cluster/ ./internal/obs/
	$(GO) test -count=1 -run 'TestQueueOpAllocs' ./internal/dsl/
	$(GO) test -count=1 -run 'TestAlwaysAdmitAllocs' ./internal/admission/

# The CI gate: formatting, static analysis, the tier-1 suite, the
# concurrency race smoke, and the allocation pins.
ci: fmt-check vet test race-smoke alloc-pins

# Seeded forced-miss scenario through the full attribution pipeline: two
# feasible workflows contend for one map slot, at least one misses, and the
# test asserts the postmortem JSON is non-empty and schema-valid — naming the
# missed workflow, its first unmet F_i, and the critical-path stage.
postmortem-smoke:
	$(GO) test -count=1 -v -run 'TestPostmortemSmoke' ./cmd/wohasim/

# Seeded overload through the feasibility front door: four identical
# workflows swamp a 4-map/2-reduce cluster, so at least one is rejected, and
# the test asserts every refusal names its stage and counter-offers an
# achievable deadline while every admitted workflow still meets its own.
admission-smoke:
	$(GO) test -count=1 -v -run 'TestAdmissionSmoke' ./cmd/wohasim/

# Regenerate the committed planner throughput numbers (includes the
# shared-vs-per-cell Fig 8 sweep and the contended shared-planner sections).
bench-plan:
	$(GO) run ./cmd/wohabench -bench-out BENCH_plan.json

# Run the plan benchmark for its shared-planner evidence without touching
# the committed baseline: the echoed summary's "fig8 sweep" line carries the
# shared-vs-per-cell speedup, exactly-once accounting, and streaming
# first-row proof; the "contended" line the 64-goroutine throughput.
bench-plan-shared:
	$(GO) run ./cmd/wohabench -bench-out $${TMPDIR:-/tmp}/BENCH_plan_shared.json
	@echo "full report: $${TMPDIR:-/tmp}/BENCH_plan_shared.json"

# Regenerate the committed simulation throughput numbers (Fig 8 corpus,
# serial vs 8-worker runner).
bench-sim:
	$(GO) run ./cmd/wohabench -sim-bench-out BENCH_sim.json

# Regenerate the committed live heartbeat contention numbers (sharded vs
# legacy single-mutex JobTracker at 1/4/16/64 concurrent trackers).
bench-live:
	$(GO) run ./cmd/wohabench -live-bench-out BENCH_live.json

# Regenerate the committed queue-backend microbenchmark (steady-state
# decision round-trips for DSL/BST/Det/Naive at 1k/10k/100k queued
# workflows, with allocs/op).
bench-queue:
	$(GO) run ./cmd/wohabench -queue-bench-out BENCH_queue.json

# Regenerate the committed admission-control numbers: the rejected-vs-missed
# trade-off sweep plus the always-admit decision cost (pinned at 0 allocs).
bench-admission:
	$(GO) run ./cmd/wohabench -admission-bench-out BENCH_admission.json

# Seeded federation determinism smoke: three member clusters under every
# router policy, run twice each, asserting byte-identical routing decisions
# and miss vectors — plus the single-member staleness-0 equivalence against a
# plain cluster.Sim run of the same workload.
federation-smoke:
	$(GO) test -count=1 -v -run 'TestFederationDeterminism|TestSingleClusterEquivalence' ./internal/federation/

# Regenerate the committed federation numbers: the miss-rate-vs-staleness
# sweep (Yahoo population, slack router, 4 member clusters).
bench-federation:
	$(GO) run ./cmd/wohabench -federation-bench-out BENCH_federation.json

# One-iteration pass over every benchmark: proves they still run without
# paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Mutex-profile smoke over the live control plane: runs the sharded tests
# with contention profiling on, proving the profile path works and leaving
# live-mutex.prof for inspection (go tool pprof live.test live-mutex.prof).
mutex-smoke:
	$(GO) test -mutexprofile live-mutex.prof -run 'TestSharded' ./internal/live/
	@ls -l live-mutex.prof
