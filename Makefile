GO ?= go

.PHONY: build test vet race verify bench-plan bench-sim bench-live bench-smoke mutex-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrent subsystems: observability fan-out, the live
# (RPC) job tracker, the parallel/cached planner, and the scenario runner.
race:
	$(GO) test -race ./internal/obs/... ./internal/live/... ./internal/planner/... ./internal/runner/...

# Tier-1 gate plus static analysis and race checks — run before every PR.
verify: build test vet race

# Regenerate the committed planner throughput numbers.
bench-plan:
	$(GO) run ./cmd/wohabench -bench-out BENCH_plan.json

# Regenerate the committed simulation throughput numbers (Fig 8 corpus,
# serial vs 8-worker runner).
bench-sim:
	$(GO) run ./cmd/wohabench -sim-bench-out BENCH_sim.json

# Regenerate the committed live heartbeat contention numbers (sharded vs
# legacy single-mutex JobTracker at 1/4/16/64 concurrent trackers).
bench-live:
	$(GO) run ./cmd/wohabench -live-bench-out BENCH_live.json

# One-iteration pass over every benchmark: proves they still run without
# paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Mutex-profile smoke over the live control plane: runs the sharded tests
# with contention profiling on, proving the profile path works and leaving
# live-mutex.prof for inspection (go tool pprof live.test live-mutex.prof).
mutex-smoke:
	$(GO) test -mutexprofile live-mutex.prof -run 'TestSharded' ./internal/live/
	@ls -l live-mutex.prof
