GO ?= go

.PHONY: build test vet race verify bench-plan

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-check the concurrent subsystems: observability fan-out, the live
# (RPC) job tracker, and the parallel/cached planner.
race:
	$(GO) test -race ./internal/obs/... ./internal/live/... ./internal/planner/...

# Tier-1 gate plus static analysis and race checks — run before every PR.
verify: build test vet race

# Regenerate the committed planner throughput numbers.
bench-plan:
	$(GO) run ./cmd/wohabench -bench-out BENCH_plan.json
