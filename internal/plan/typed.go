package plan

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Caps is a two-pool resource cap: separate map and reduce slot budgets.
// Algorithm 1 in the paper treats the cluster as a single fungible slot pool;
// a real Hadoop-1 cluster types its slots, which makes single-pool plans
// systematically optimistic about reduce phases. GenerateTyped completes the
// algorithm for typed slots and is what the experiments use.
type Caps struct {
	Maps    int
	Reduces int
}

// Total returns the combined slot budget.
func (c Caps) Total() int { return c.Maps + c.Reduces }

// GenerateTyped is Generate with separate map and reduce slot pools: the
// simulated workflow's map tasks draw only from caps.Maps and reduce tasks
// only from caps.Reduces. The work-conserving scan lets a lower-priority
// job's reduces use idle reduce slots while a higher-priority job's maps
// saturate the map pool, exactly as the real JobTracker dispatch does.
func GenerateTyped(w *workflow.Workflow, caps Caps, policyName string, ranks []int) (*Plan, error) {
	if caps.Maps <= 0 || caps.Reduces < 0 || caps.Total() <= 0 {
		return nil, fmt.Errorf("plan: bad typed caps %+v", caps)
	}
	if len(ranks) != len(w.Jobs) {
		return nil, fmt.Errorf("plan: %d ranks for %d jobs", len(ranks), len(w.Jobs))
	}
	s := newTypedSim(w, caps, ranks)
	raw, makespan, err := s.run()
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Policy:      policyName,
		Ranks:       append([]int(nil), ranks...),
		Cap:         caps.Total(),
		Makespan:    makespan,
		Feasible:    makespan <= w.RelativeDeadline(),
		TotalTasks:  w.TotalTasks(),
		SearchIters: 1,
	}
	cum := 0
	for _, r := range raw {
		cum += r.count
		ttd := makespan - r.at.Duration()
		if k := len(p.Reqs); k > 0 && p.Reqs[k-1].TTD == ttd {
			p.Reqs[k-1].Cum = cum
		} else {
			p.Reqs = append(p.Reqs, Req{TTD: ttd, Cum: cum})
		}
	}
	if cum != p.TotalTasks {
		return nil, fmt.Errorf("plan: typed simulation scheduled %d tasks, workflow has %d", cum, p.TotalTasks)
	}
	return p, nil
}

// GenerateCappedTyped finds the smallest proportional slice of the cluster's
// typed slots under which the workflow still meets margin * deadline, and
// returns the plan at that slice. Fallback behaviour mirrors
// GenerateCappedMargin: if the margin target is unreachable the search
// retries against the real deadline, and a genuinely infeasible workflow
// gets the best-effort full plan.
func GenerateCappedTyped(w *workflow.Workflow, cluster Caps, pol priority.Policy, margin float64) (*Plan, error) {
	if cluster.Maps <= 0 || cluster.Reduces <= 0 {
		return nil, fmt.Errorf("plan: bad cluster caps %+v", cluster)
	}
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("plan: margin %v, want (0, 1]", margin)
	}
	ranks, err := pol.Rank(w)
	if err != nil {
		return nil, fmt.Errorf("plan: ranking jobs: %w", err)
	}
	capsFor := func(total int) Caps {
		m := total * cluster.Maps / cluster.Total()
		if m < 1 {
			m = 1
		}
		r := total - m
		if r < 1 {
			r = 1
			if m > 1 {
				m = total - 1
			}
		}
		return Caps{Maps: m, Reduces: r}
	}
	target := time.Duration(margin * float64(w.RelativeDeadline()))
	full, err := GenerateTyped(w, cluster, pol.Name(), ranks)
	if err != nil {
		return nil, err
	}
	iters := 1
	if full.Makespan > target {
		if full.Makespan > w.RelativeDeadline() {
			return full, nil
		}
		target = w.RelativeDeadline()
	}
	lo, hi := 2, cluster.Total() // invariant: hi meets the target
	best := full
	for lo < hi {
		mid := lo + (hi-lo)/2
		p, err := GenerateTyped(w, capsFor(mid), pol.Name(), ranks)
		if err != nil {
			return nil, err
		}
		iters++
		if p.Makespan <= target {
			best, hi = p, mid
		} else {
			lo = mid + 1
		}
	}
	best.SearchIters = iters
	return best, nil
}

// typedSim simulates Algorithm 1 with two slot pools.
type typedSim struct {
	w     *workflow.Workflow
	ranks []int

	freeMaps, freeReds int
	remMaps, remReds   []int
	unmet              []int
	deps               [][]workflow.JobID

	// active holds ready jobs; scanned in rank order per event.
	active map[workflow.JobID]bool

	events simtime.Queue[typedEvent]
}

type typedEvent struct {
	freeMaps  int
	freeReds  int
	reduceOf  workflow.JobID // -1 if none
	completed workflow.JobID // -1 if none
}

func newTypedSim(w *workflow.Workflow, caps Caps, ranks []int) *typedSim {
	s := &typedSim{
		w:        w,
		ranks:    ranks,
		freeMaps: caps.Maps,
		freeReds: caps.Reduces,
		remMaps:  make([]int, len(w.Jobs)),
		remReds:  make([]int, len(w.Jobs)),
		unmet:    make([]int, len(w.Jobs)),
		deps:     w.Dependents(),
		active:   make(map[workflow.JobID]bool),
	}
	for i := range w.Jobs {
		s.remMaps[i] = w.Jobs[i].Maps
		s.remReds[i] = w.Jobs[i].Reduces
		s.unmet[i] = len(w.Jobs[i].Prereqs)
	}
	for _, r := range w.Roots() {
		s.active[r] = true
	}
	// Kick the simulation with a zero event so scheduling happens at t=0.
	s.events.Push(simtime.Epoch, typedEvent{reduceOf: -1, completed: -1})
	return s
}

func (s *typedSim) run() ([]rawReq, time.Duration, error) {
	var (
		raw []rawReq
		end simtime.Time
	)
	for s.events.Len() > 0 {
		t, e, _ := s.events.Pop()
		s.apply(e)
		for {
			at, ok := s.events.Peek()
			if !ok || at != t {
				break
			}
			_, e, _ := s.events.Pop()
			s.apply(e)
		}

		// Work-conserving scan in rank order: each active job takes what
		// its current phase can use from the matching pool.
		for _, j := range s.activeByRank() {
			job := &s.w.Jobs[j]
			if s.remMaps[j] > 0 {
				k := min(s.remMaps[j], s.freeMaps)
				if k == 0 {
					continue
				}
				raw = append(raw, rawReq{at: t, count: k})
				s.freeMaps -= k
				s.remMaps[j] -= k
				done := t.Add(job.MapTime)
				end = simtime.MaxOf(end, done)
				if s.remMaps[j] == 0 {
					delete(s.active, j)
					if s.remReds[j] > 0 {
						s.events.Push(done, typedEvent{freeMaps: k, reduceOf: j, completed: -1})
					} else {
						s.events.Push(done, typedEvent{freeMaps: k, reduceOf: -1, completed: j})
					}
				} else {
					s.events.Push(done, typedEvent{freeMaps: k, reduceOf: -1, completed: -1})
				}
			} else if s.remReds[j] > 0 {
				k := min(s.remReds[j], s.freeReds)
				if k == 0 {
					continue
				}
				raw = append(raw, rawReq{at: t, count: k})
				s.freeReds -= k
				s.remReds[j] -= k
				done := t.Add(job.ReduceTime)
				end = simtime.MaxOf(end, done)
				if s.remReds[j] == 0 {
					delete(s.active, j)
					s.events.Push(done, typedEvent{freeReds: k, reduceOf: -1, completed: j})
				} else {
					s.events.Push(done, typedEvent{freeReds: k, reduceOf: -1, completed: -1})
				}
			}
		}
	}
	for i := range s.w.Jobs {
		if s.remMaps[i] > 0 || s.remReds[i] > 0 {
			return nil, 0, fmt.Errorf("plan: job %q never fully scheduled (typed sim internal error)", s.w.Jobs[i].Name)
		}
	}
	return raw, end.Duration(), nil
}

func (s *typedSim) apply(e typedEvent) {
	s.freeMaps += e.freeMaps
	s.freeReds += e.freeReds
	if e.reduceOf >= 0 {
		s.active[e.reduceOf] = true
	}
	if e.completed >= 0 {
		for _, d := range s.deps[e.completed] {
			s.unmet[d]--
			if s.unmet[d] == 0 {
				s.active[d] = true
			}
		}
	}
}

func (s *typedSim) activeByRank() []workflow.JobID {
	out := make([]workflow.JobID, 0, len(s.active))
	for j := range s.active {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return s.ranks[out[a]] < s.ranks[out[b]] })
	return out
}
