package plan

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Caps is a two-pool resource cap: separate map and reduce slot budgets.
// Algorithm 1 in the paper treats the cluster as a single fungible slot pool;
// a real Hadoop-1 cluster types its slots, which makes single-pool plans
// systematically optimistic about reduce phases. GenerateTyped completes the
// algorithm for typed slots and is what the experiments use.
type Caps struct {
	Maps    int
	Reduces int
}

// Total returns the combined slot budget.
func (c Caps) Total() int { return c.Maps + c.Reduces }

// GenerateTyped is Generate with separate map and reduce slot pools: the
// simulated workflow's map tasks draw only from caps.Maps and reduce tasks
// only from caps.Reduces. The work-conserving scan lets a lower-priority
// job's reduces use idle reduce slots while a higher-priority job's maps
// saturate the map pool, exactly as the real JobTracker dispatch does.
// GenerateTyped is safe for concurrent use; simulator state is drawn from an
// internal pool.
func GenerateTyped(w *workflow.Workflow, caps Caps, policyName string, ranks []int) (*Plan, error) {
	if caps.Maps <= 0 || caps.Reduces < 0 || caps.Total() <= 0 {
		return nil, fmt.Errorf("plan: bad typed caps %+v", caps)
	}
	if len(ranks) != len(w.Jobs) {
		return nil, fmt.Errorf("plan: %d ranks for %d jobs", len(ranks), len(w.Jobs))
	}
	s := typedSimPool.Get().(*typedSim)
	defer typedSimPool.Put(s)
	return generateTypedWith(s, w, caps, policyName, ranks)
}

// generateTypedWith runs the typed simulation on an explicit simulator, so
// benchmarks can compare pooled against freshly allocated state.
func generateTypedWith(s *typedSim, w *workflow.Workflow, caps Caps, policyName string, ranks []int) (*Plan, error) {
	s.reset(w, caps, ranks)
	raw, makespan, err := s.run()
	if err != nil {
		return nil, err
	}
	return assemble(w, policyName, ranks, caps.Total(), makespan, raw)
}

// TypedCapsFor maps a total slot budget onto typed caps in the cluster's
// map:reduce proportion, never letting either pool drop below one slot. It is
// the slice function GenerateCappedTyped bisects over, exported so external
// searchers probe exactly the same ladder of typed caps.
func TypedCapsFor(cluster Caps, total int) Caps {
	m := total * cluster.Maps / cluster.Total()
	if m < 1 {
		m = 1
	}
	r := total - m
	if r < 1 {
		r = 1
		if m > 1 {
			m = total - 1
		}
	}
	return Caps{Maps: m, Reduces: r}
}

// GenerateCappedTyped finds the smallest proportional slice of the cluster's
// typed slots under which the workflow still meets margin * deadline, and
// returns the plan at that slice. Fallback behaviour mirrors
// GenerateCappedMargin: if the margin target is unreachable the search
// retries against the real deadline, and a genuinely infeasible workflow
// gets the best-effort full plan.
func GenerateCappedTyped(w *workflow.Workflow, cluster Caps, pol priority.Policy, margin float64) (*Plan, error) {
	return GenerateCappedTypedWith(w, cluster, pol, margin, nil)
}

// GenerateCappedTypedWith is GenerateCappedTyped with an explicit cap
// searcher; a nil search uses SequentialSearch. Any conforming searcher (see
// CapSearcher) yields a byte-identical plan, so internal/planner can probe
// caps concurrently without changing results.
func GenerateCappedTypedWith(w *workflow.Workflow, cluster Caps, pol priority.Policy, margin float64, search CapSearcher) (*Plan, error) {
	if cluster.Maps <= 0 || cluster.Reduces <= 0 {
		return nil, fmt.Errorf("plan: bad cluster caps %+v", cluster)
	}
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("plan: margin %v, want (0, 1]", margin)
	}
	ranks, err := pol.Rank(w)
	if err != nil {
		return nil, fmt.Errorf("plan: ranking jobs: %w", err)
	}
	target := time.Duration(margin * float64(w.RelativeDeadline()))
	full, err := GenerateTyped(w, cluster, pol.Name(), ranks)
	if err != nil {
		return nil, err
	}
	if full.Makespan > target {
		if full.Makespan > w.RelativeDeadline() {
			return full, nil
		}
		target = w.RelativeDeadline()
	}
	if search == nil {
		search = SequentialSearch
	}
	best, probes, err := search(2, cluster.Total(), target, func(mid int) (*Plan, error) {
		return GenerateTyped(w, TypedCapsFor(cluster, mid), pol.Name(), ranks)
	})
	if err != nil {
		return nil, err
	}
	if best == nil {
		best = full
	}
	best.SearchIters = 1 + probes
	return best, nil
}

// typedSim simulates Algorithm 1 with two slot pools. Like genSim, all its
// buffers are retained across runs so pooled sims make repeated probes
// nearly allocation-free.
type typedSim struct {
	w     *workflow.Workflow
	ranks []int

	freeMaps, freeReds int
	remMaps, remReds   []int
	unmet              []int
	deps               depCSR

	// active holds ready jobs sorted by ascending rank (ranks are a
	// permutation, so the order is total and deterministic); scan holds the
	// per-event snapshot scanned while active mutates.
	active []workflow.JobID
	scan   []workflow.JobID

	events simtime.Queue[typedEvent]
	// batch receives each instant's events from DrainInstant, replacing the
	// former Pop+Peek loop with one heap drain per instant.
	batch []typedEvent
	raw   []rawReq
}

var typedSimPool = sync.Pool{New: func() any { return new(typedSim) }}

type typedEvent struct {
	freeMaps  int
	freeReds  int
	reduceOf  workflow.JobID // -1 if none
	completed workflow.JobID // -1 if none
}

// reset prepares s to simulate w under caps and ranks, reusing all retained
// buffers; the dependent adjacency is rebuilt only when w changes.
func (s *typedSim) reset(w *workflow.Workflow, caps Caps, ranks []int) {
	s.deps.build(w)
	s.w = w
	s.ranks = ranks
	s.freeMaps = caps.Maps
	s.freeReds = caps.Reduces
	nj := len(w.Jobs)
	s.remMaps = resize(s.remMaps, nj)
	s.remReds = resize(s.remReds, nj)
	s.unmet = resize(s.unmet, nj)
	s.active = s.active[:0]
	s.events.Reset()
	s.raw = s.raw[:0]
	for i := range w.Jobs {
		s.remMaps[i] = w.Jobs[i].Maps
		s.remReds[i] = w.Jobs[i].Reduces
		s.unmet[i] = len(w.Jobs[i].Prereqs)
	}
	for i := range w.Jobs {
		if s.unmet[i] == 0 {
			s.activate(workflow.JobID(i))
		}
	}
	// Kick the simulation with a zero event so scheduling happens at t=0.
	s.events.Push(simtime.Epoch, typedEvent{reduceOf: -1, completed: -1})
}

// activate inserts j into the rank-sorted active list.
func (s *typedSim) activate(j workflow.JobID) {
	r := s.ranks[j]
	i := sort.Search(len(s.active), func(k int) bool { return s.ranks[s.active[k]] > r })
	s.active = append(s.active, 0)
	copy(s.active[i+1:], s.active[i:])
	s.active[i] = j
}

// deactivate removes j from the active list.
func (s *typedSim) deactivate(j workflow.JobID) {
	r := s.ranks[j]
	i := sort.Search(len(s.active), func(k int) bool { return s.ranks[s.active[k]] >= r })
	copy(s.active[i:], s.active[i+1:])
	s.active = s.active[:len(s.active)-1]
}

func (s *typedSim) run() ([]rawReq, time.Duration, error) {
	var end simtime.Time
	for s.events.Len() > 0 {
		// One heap drain per instant; apply never pushes, so the batch is
		// the complete instant.
		s.batch = s.batch[:0]
		t, _ := s.events.DrainInstant(&s.batch)
		for _, e := range s.batch {
			s.apply(e)
		}

		// Work-conserving scan in rank order: each active job takes what
		// its current phase can use from the matching pool. Scan a
		// snapshot because exhausted jobs leave the active list mid-scan.
		s.scan = append(s.scan[:0], s.active...)
		for _, j := range s.scan {
			job := &s.w.Jobs[j]
			if s.remMaps[j] > 0 {
				k := min(s.remMaps[j], s.freeMaps)
				if k == 0 {
					continue
				}
				s.raw = append(s.raw, rawReq{at: t, count: k})
				s.freeMaps -= k
				s.remMaps[j] -= k
				done := t.Add(job.MapTime)
				end = simtime.MaxOf(end, done)
				if s.remMaps[j] == 0 {
					s.deactivate(j)
					if s.remReds[j] > 0 {
						s.events.Push(done, typedEvent{freeMaps: k, reduceOf: j, completed: -1})
					} else {
						s.events.Push(done, typedEvent{freeMaps: k, reduceOf: -1, completed: j})
					}
				} else {
					s.events.Push(done, typedEvent{freeMaps: k, reduceOf: -1, completed: -1})
				}
			} else if s.remReds[j] > 0 {
				k := min(s.remReds[j], s.freeReds)
				if k == 0 {
					continue
				}
				s.raw = append(s.raw, rawReq{at: t, count: k})
				s.freeReds -= k
				s.remReds[j] -= k
				done := t.Add(job.ReduceTime)
				end = simtime.MaxOf(end, done)
				if s.remReds[j] == 0 {
					s.deactivate(j)
					s.events.Push(done, typedEvent{freeReds: k, reduceOf: -1, completed: j})
				} else {
					s.events.Push(done, typedEvent{freeReds: k, reduceOf: -1, completed: -1})
				}
			}
		}
	}
	for i := range s.w.Jobs {
		if s.remMaps[i] > 0 || s.remReds[i] > 0 {
			return nil, 0, fmt.Errorf("plan: job %q never fully scheduled (typed sim internal error)", s.w.Jobs[i].Name)
		}
	}
	return s.raw, end.Duration(), nil
}

func (s *typedSim) apply(e typedEvent) {
	s.freeMaps += e.freeMaps
	s.freeReds += e.freeReds
	if e.reduceOf >= 0 {
		s.activate(e.reduceOf)
	}
	if e.completed >= 0 {
		for _, d := range s.deps.of(e.completed) {
			s.unmet[d]--
			if s.unmet[d] == 0 {
				s.activate(d)
			}
		}
	}
}
