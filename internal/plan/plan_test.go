package plan

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func singleJob(t *testing.T, maps, reduces int, mt, rt time.Duration, deadline time.Duration) *workflow.Workflow {
	t.Helper()
	return workflow.NewBuilder("single").
		Job("only", maps, reduces, mt, rt).
		MustBuild(simtime.Epoch, simtime.Epoch.Add(deadline))
}

func identityRanks(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}

func TestGenerateSingleJobWaves(t *testing.T) {
	// 4 maps (10s each) and 2 reduces (30s each) on 2 slots:
	// map waves at 0s and 10s, reduces at 20s, makespan 50s.
	w := singleJob(t, 4, 2, 10*time.Second, 30*time.Second, time.Hour)
	p, err := Generate(w, 2, "ID", identityRanks(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if p.Makespan != 50*time.Second {
		t.Errorf("Makespan = %v, want 50s", p.Makespan)
	}
	if !p.Feasible {
		t.Error("Feasible = false, want true")
	}
	want := []Req{
		{TTD: 50 * time.Second, Cum: 2}, // wave 1 maps at t=0
		{TTD: 40 * time.Second, Cum: 4}, // wave 2 maps at t=10
		{TTD: 30 * time.Second, Cum: 6}, // reduces at t=20
	}
	if len(p.Reqs) != len(want) {
		t.Fatalf("Reqs = %+v, want %+v", p.Reqs, want)
	}
	for i := range want {
		if p.Reqs[i] != want[i] {
			t.Errorf("Reqs[%d] = %+v, want %+v", i, p.Reqs[i], want[i])
		}
	}
}

func TestGenerateSerialAtCapOne(t *testing.T) {
	w := workflow.NewBuilder("w").
		Job("a", 3, 2, 7*time.Second, 11*time.Second).
		Job("b", 2, 1, 5*time.Second, 13*time.Second, "a").
		MustBuild(simtime.Epoch, simtime.FromSeconds(1e6))
	p, err := Generate(w, 1, "ID", identityRanks(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got, want := p.Makespan, w.SerialWork(); got != want {
		t.Errorf("Makespan at cap 1 = %v, want SerialWork %v", got, want)
	}
}

func TestGenerateChainRespectsDependency(t *testing.T) {
	// b cannot start until a's reduces finish, even with ample slots.
	w := workflow.NewBuilder("chain").
		Job("a", 2, 2, 10*time.Second, 20*time.Second).
		Job("b", 2, 2, 10*time.Second, 20*time.Second, "a").
		MustBuild(simtime.Epoch, simtime.FromSeconds(1e6))
	p, err := Generate(w, 100, "ID", identityRanks(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if p.Makespan != 60*time.Second {
		t.Errorf("Makespan = %v, want 60s (two serialized 30s jobs)", p.Makespan)
	}
}

func TestGenerateMapOnlyAndReduceOnly(t *testing.T) {
	w := workflow.NewBuilder("mixed").
		Job("maponly", 3, 0, 10*time.Second, 0).
		Job("redonly", 0, 2, 0, 15*time.Second, "maponly").
		MustBuild(simtime.Epoch, simtime.FromSeconds(1e6))
	p, err := Generate(w, 3, "ID", identityRanks(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if p.Makespan != 25*time.Second {
		t.Errorf("Makespan = %v, want 25s", p.Makespan)
	}
	if p.TotalTasks != 5 {
		t.Errorf("TotalTasks = %d, want 5", p.TotalTasks)
	}
}

func TestGenerateErrors(t *testing.T) {
	w := singleJob(t, 1, 1, time.Second, time.Second, time.Hour)
	if _, err := Generate(w, 0, "ID", identityRanks(1)); err == nil {
		t.Error("cap 0 accepted")
	}
	if _, err := Generate(w, 2, "ID", identityRanks(5)); err == nil {
		t.Error("wrong rank count accepted")
	}
}

func TestRequiredAt(t *testing.T) {
	p := &Plan{Reqs: []Req{
		{TTD: 50 * time.Second, Cum: 2},
		{TTD: 40 * time.Second, Cum: 4},
		{TTD: 30 * time.Second, Cum: 6},
	}}
	tests := []struct {
		ttd  time.Duration
		want int
	}{
		{60 * time.Second, 0}, // plenty of time: nothing required yet
		{50 * time.Second, 2}, // boundary: first requirement in force
		{45 * time.Second, 2},
		{40 * time.Second, 4},
		{31 * time.Second, 4},
		{30 * time.Second, 6},
		{1 * time.Second, 6},
		{-5 * time.Second, 6}, // past the deadline: everything required
	}
	for _, tc := range tests {
		if got := p.RequiredAt(tc.ttd); got != tc.want {
			t.Errorf("RequiredAt(%v) = %d, want %d", tc.ttd, got, tc.want)
		}
	}
}

func TestRequiredAtEdgeCases(t *testing.T) {
	// A plan with no requirements (e.g. decoded from an empty plan) demands
	// nothing at any ttd, including at and past the deadline.
	empty := &Plan{}
	for _, ttd := range []time.Duration{-time.Hour, 0, time.Nanosecond, time.Hour} {
		if got := empty.RequiredAt(ttd); got != 0 {
			t.Errorf("empty plan: RequiredAt(%v) = %d, want 0", ttd, got)
		}
	}

	single := &Plan{Reqs: []Req{{TTD: 10 * time.Second, Cum: 7}}}
	tests := []struct {
		ttd  time.Duration
		want int
	}{
		{10*time.Second + time.Nanosecond, 0}, // just beyond the first entry
		{10 * time.Second, 7},                 // exactly at the boundary
		{10*time.Second - time.Nanosecond, 7},
		{0, 7}, // at the deadline instant
		{-time.Second, 7},
		{1 << 62, 0}, // ttd beyond any entry: nothing due yet
	}
	for _, tc := range tests {
		if got := single.RequiredAt(tc.ttd); got != tc.want {
			t.Errorf("single entry: RequiredAt(%v) = %d, want %d", tc.ttd, got, tc.want)
		}
	}
}

func TestGenerateCappedFindsMinimalCap(t *testing.T) {
	// 8 maps of 10s + 4 reduces of 10s, deadline 70s.
	// cap 2: 4 map waves (40s) + 2 reduce waves (20s) = 60s: feasible.
	// cap 1: serial = 120s: infeasible. Minimal feasible cap is 2.
	w := singleJob(t, 8, 4, 10*time.Second, 10*time.Second, 70*time.Second)
	p, err := GenerateCapped(w, 64, priority.HLF{})
	if err != nil {
		t.Fatalf("GenerateCapped: %v", err)
	}
	if !p.Feasible {
		t.Fatal("plan infeasible")
	}
	if p.Cap != 2 {
		t.Errorf("Cap = %d, want 2", p.Cap)
	}
	if p.Makespan > 70*time.Second {
		t.Errorf("Makespan = %v exceeds deadline", p.Makespan)
	}
}

func TestGenerateCappedInfeasible(t *testing.T) {
	// Critical path alone (20s) exceeds the 15s deadline: even the whole
	// cluster cannot help.
	w := singleJob(t, 1, 1, 10*time.Second, 10*time.Second, 15*time.Second)
	p, err := GenerateCapped(w, 32, priority.HLF{})
	if err != nil {
		t.Fatalf("GenerateCapped: %v", err)
	}
	if p.Feasible {
		t.Error("Feasible = true for impossible deadline")
	}
	if p.Cap != 32 {
		t.Errorf("Cap = %d, want full cluster 32", p.Cap)
	}
}

func TestCappedPlanDemandsEarlierProgress(t *testing.T) {
	// The Fig 2 insight: a capped plan's requirements kick in earlier
	// (at larger ttd) than the full-cluster plan's, because the capped
	// simulation takes longer and must start work sooner.
	w := workflow.NewBuilder("fig2ish").
		Job("j1", 6, 6, 10*time.Second, 10*time.Second).
		Job("j2", 6, 6, 10*time.Second, 10*time.Second, "j1").
		MustBuild(simtime.Epoch, simtime.Epoch.Add(6*300*time.Second))
	full, err := Generate(w, 12, "HLF", identityRanks(2))
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	capped, err := GenerateCapped(w, 12, priority.HLF{})
	if err != nil {
		t.Fatalf("capped: %v", err)
	}
	if capped.Cap >= full.Cap {
		t.Fatalf("capped.Cap = %d, want < %d", capped.Cap, full.Cap)
	}
	if capped.Reqs[0].TTD <= full.Reqs[0].TTD {
		t.Errorf("capped first requirement at ttd %v, full at %v: capped should demand progress earlier",
			capped.Reqs[0].TTD, full.Reqs[0].TTD)
	}
}

func randomWorkflow(rng *rand.Rand, nJobs int) *workflow.Workflow {
	b := workflow.NewBuilder("rand")
	names := make([]string, nJobs)
	for i := 0; i < nJobs; i++ {
		names[i] = "j" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		var after []string
		for k := 0; k < i; k++ {
			if rng.Intn(4) == 0 {
				after = append(after, names[k])
			}
		}
		maps := 1 + rng.Intn(30)
		reduces := rng.Intn(10)
		b.Job(names[i], maps, reduces,
			time.Duration(1+rng.Intn(60))*time.Second,
			time.Duration(1+rng.Intn(240))*time.Second, after...)
	}
	w, err := b.Build(0, simtime.FromSeconds(1e9))
	if err != nil {
		panic(err)
	}
	return w
}

// TestPlanInvariantsOnRandomWorkflows checks, across random DAGs, policies,
// and caps, that: Reqs is strictly decreasing in TTD and strictly increasing
// in Cum, the final Cum covers every task, and the makespan is bracketed by
// the critical path and the serial work.
func TestPlanInvariantsOnRandomWorkflows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		w := randomWorkflow(rng, 2+rng.Intn(25))
		cp, err := w.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range priority.All() {
			cap := 1 + rng.Intn(50)
			p, err := GenerateForPolicy(w, cap, pol)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol.Name(), err)
			}
			if p.TotalTasks != w.TotalTasks() {
				t.Fatalf("trial %d: TotalTasks = %d, want %d", trial, p.TotalTasks, w.TotalTasks())
			}
			if len(p.Reqs) == 0 {
				t.Fatalf("trial %d: empty Reqs", trial)
			}
			if got := p.Reqs[len(p.Reqs)-1].Cum; got != p.TotalTasks {
				t.Fatalf("trial %d: final Cum = %d, want %d", trial, got, p.TotalTasks)
			}
			for i := 1; i < len(p.Reqs); i++ {
				if p.Reqs[i].TTD >= p.Reqs[i-1].TTD {
					t.Fatalf("trial %d: TTD not strictly decreasing at %d: %+v", trial, i, p.Reqs)
				}
				if p.Reqs[i].Cum <= p.Reqs[i-1].Cum {
					t.Fatalf("trial %d: Cum not strictly increasing at %d: %+v", trial, i, p.Reqs)
				}
			}
			if p.Makespan < cp {
				t.Fatalf("trial %d: makespan %v below critical path %v", trial, p.Makespan, cp)
			}
			if p.Makespan > w.SerialWork() {
				t.Fatalf("trial %d: makespan %v above serial work %v", trial, p.Makespan, w.SerialWork())
			}
		}
	}
}

// TestMoreSlotsNeverLater verifies makespan is non-increasing in the cap for
// chain workflows (where list-scheduling anomalies cannot occur).
func TestMoreSlotsNeverLater(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		b := workflow.NewBuilder("chain")
		prev := ""
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			var after []string
			if prev != "" {
				after = append(after, prev)
			}
			b.Job(name, 1+rng.Intn(20), rng.Intn(6),
				time.Duration(1+rng.Intn(30))*time.Second,
				time.Duration(1+rng.Intn(60))*time.Second, after...)
			prev = name
		}
		w, err := b.Build(0, simtime.FromSeconds(1e9))
		if err != nil {
			t.Fatal(err)
		}
		var last time.Duration
		for cap := 1; cap <= 40; cap++ {
			p, err := Generate(w, cap, "ID", identityRanks(5))
			if err != nil {
				t.Fatal(err)
			}
			if cap > 1 && p.Makespan > last {
				t.Fatalf("trial %d: makespan grew from %v (cap %d) to %v (cap %d)",
					trial, last, cap-1, p.Makespan, cap)
			}
			last = p.Makespan
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := randomWorkflow(rng, 15)
	a, err := GenerateForPolicy(w, 10, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateForPolicy(w, 10, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reqs) != len(b.Reqs) || a.Makespan != b.Makespan {
		t.Fatal("two generations of the same plan differ")
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("Reqs[%d] differ: %+v vs %+v", i, a.Reqs[i], b.Reqs[i])
		}
	}
}

// TestPooledSimMatchesFresh interleaves pooled generations across workflows
// of very different sizes with generations on freshly allocated simulator
// state: reused (and re-sized) buffers must never leak results between runs.
func TestPooledSimMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	flows := []*workflow.Workflow{
		randomWorkflow(rng, 40),
		randomWorkflow(rng, 3),
		randomWorkflow(rng, 25),
		singleJob(t, 5, 2, 9*time.Second, 21*time.Second, time.Hour),
	}
	for round := 0; round < 3; round++ {
		for _, w := range flows {
			ranks, err := (priority.LPF{}).Rank(w)
			if err != nil {
				t.Fatal(err)
			}
			pooled, err := Generate(w, 17, "LPF", ranks)
			if err != nil {
				t.Fatalf("pooled Generate: %v", err)
			}
			fresh, err := generateWith(new(genSim), w, 17, "LPF", ranks)
			if err != nil {
				t.Fatalf("fresh Generate: %v", err)
			}
			if !bytes.Equal(pooled.Encode(), fresh.Encode()) {
				t.Fatalf("round %d, %s: pooled plan differs from fresh-state plan", round, w.Name)
			}

			pooledT, err := GenerateTyped(w, Caps{Maps: 11, Reduces: 6}, "LPF", ranks)
			if err != nil {
				t.Fatalf("pooled GenerateTyped: %v", err)
			}
			freshT, err := generateTypedWith(new(typedSim), w, Caps{Maps: 11, Reduces: 6}, "LPF", ranks)
			if err != nil {
				t.Fatalf("fresh GenerateTyped: %v", err)
			}
			if !bytes.Equal(pooledT.Encode(), freshT.Encode()) {
				t.Fatalf("round %d, %s: pooled typed plan differs from fresh-state plan", round, w.Name)
			}
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	w := randomWorkflow(rng, 30)
	ranks, err := (priority.LPF{}).Rank(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(w, 40, "LPF", ranks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateFreshState is BenchmarkGenerate without simulator
// pooling: every iteration simulates on newly allocated state, as the seed
// implementation did. The allocs/op gap against BenchmarkGenerate is the
// pooling win.
func BenchmarkGenerateFreshState(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	w := randomWorkflow(rng, 30)
	ranks, err := (priority.LPF{}).Rank(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generateWith(new(genSim), w, 40, "LPF", ranks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateCapped(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	w := randomWorkflow(rng, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCapped(w, 400, priority.LPF{}); err != nil {
			b.Fatal(err)
		}
	}
}
