package plan

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/priority"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		w := randomWorkflow(rng, 3+rng.Intn(20))
		orig, err := GenerateForPolicy(w, 1+rng.Intn(30), priority.All()[trial%3])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := Decode(orig.Encode())
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}
		if got.Policy != orig.Policy || got.Cap != orig.Cap || got.Feasible != orig.Feasible ||
			got.TotalTasks != orig.TotalTasks {
			t.Fatalf("trial %d: header mismatch: %+v vs %+v", trial, got, orig)
		}
		// Makespan is encoded at millisecond resolution.
		if got.Makespan != orig.Makespan.Truncate(time.Millisecond) {
			t.Fatalf("trial %d: Makespan = %v, want %v", trial, got.Makespan, orig.Makespan)
		}
		if len(got.Ranks) != len(orig.Ranks) || len(got.Reqs) != len(orig.Reqs) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range orig.Ranks {
			if got.Ranks[i] != orig.Ranks[i] {
				t.Fatalf("trial %d: Ranks[%d] = %d, want %d", trial, i, got.Ranks[i], orig.Ranks[i])
			}
		}
		for i := range orig.Reqs {
			if got.Reqs[i].Cum != orig.Reqs[i].Cum ||
				got.Reqs[i].TTD != orig.Reqs[i].TTD.Truncate(time.Millisecond) {
				t.Fatalf("trial %d: Reqs[%d] = %+v, want %+v", trial, i, got.Reqs[i], orig.Reqs[i])
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Error("Decode(bad version) succeeded")
	}
	// Every truncation of a valid encoding must error, never panic.
	w := singleJob(t, 10, 5, time.Second, 2*time.Second, time.Hour)
	p, err := GenerateForPolicy(w, 4, priority.HLF{})
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestPlanSizeStaysSmall(t *testing.T) {
	// The paper's Fig 13(b): ~1400-task workflows encode to about 7 KB,
	// and typical plans stay within 2 KB.
	rng := rand.New(rand.NewSource(5))
	w := randomWorkflow(rng, 30) // a few hundred tasks
	p, err := GenerateForPolicy(w, 40, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	if s := p.Size(); s > 4096 {
		t.Errorf("plan size = %d bytes for %d tasks, want <= 4 KiB", s, p.TotalTasks)
	}
}
