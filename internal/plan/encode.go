package plan

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Plans travel from the client to the JobTracker and live in master-node
// memory for the workflow's lifetime, so their size is a first-order concern
// (Fig 13(b) of the paper: ~7 KB for a 1400-task workflow, usually under
// 2 KB). The wire format is a compact varint encoding:
//
//	byte    version (1)
//	varint  len(Policy), bytes Policy
//	varint  Cap
//	varint  Makespan (milliseconds)
//	varint  TotalTasks
//	varint  len(Ranks), then each rank
//	varint  len(Reqs), then per entry: delta-TTD (ms) and delta-Cum
//
// TTD deltas are non-negative because Reqs is sorted by decreasing TTD, and
// Cum deltas are positive because requirements are cumulative, so both pack
// into short varints.

const encodingVersion = 1

// Encode serializes p. Its result's length is the plan-size metric reported
// by the Fig 13(b) experiment.
func (p *Plan) Encode() []byte {
	buf := make([]byte, 0, 64+2*len(p.Reqs)+len(p.Ranks))
	buf = append(buf, encodingVersion)
	buf = binary.AppendUvarint(buf, uint64(len(p.Policy)))
	buf = append(buf, p.Policy...)
	buf = binary.AppendUvarint(buf, uint64(p.Cap))
	buf = binary.AppendUvarint(buf, uint64(p.Makespan/time.Millisecond))
	buf = binary.AppendUvarint(buf, uint64(p.TotalTasks))
	if p.Feasible {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Ranks)))
	for _, r := range p.Ranks {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Reqs)))
	prevTTD := int64(-1)
	prevCum := 0
	for i, r := range p.Reqs {
		ttdMS := int64(r.TTD / time.Millisecond)
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(ttdMS))
		} else {
			buf = binary.AppendUvarint(buf, uint64(prevTTD-ttdMS))
		}
		buf = binary.AppendUvarint(buf, uint64(r.Cum-prevCum))
		prevTTD, prevCum = ttdMS, r.Cum
	}
	return buf
}

// Decode parses a plan serialized by Encode.
func Decode(data []byte) (*Plan, error) {
	d := decoder{buf: data}
	if v := d.byte(); v != encodingVersion {
		return nil, fmt.Errorf("plan: unsupported encoding version %d", v)
	}
	p := &Plan{}
	p.Policy = d.str()
	p.Cap = int(d.uvarint())
	p.Makespan = time.Duration(d.uvarint()) * time.Millisecond
	p.TotalTasks = int(d.uvarint())
	p.Feasible = d.byte() == 1
	nRanks := int(d.uvarint())
	if d.err == nil && (nRanks < 0 || nRanks > len(data)) {
		return nil, fmt.Errorf("plan: corrupt rank count %d", nRanks)
	}
	p.Ranks = make([]int, 0, nRanks)
	for i := 0; i < nRanks && d.err == nil; i++ {
		p.Ranks = append(p.Ranks, int(d.uvarint()))
	}
	nReqs := int(d.uvarint())
	if d.err == nil && (nReqs < 0 || nReqs > len(data)) {
		return nil, fmt.Errorf("plan: corrupt requirement count %d", nReqs)
	}
	p.Reqs = make([]Req, 0, nReqs)
	var prevTTD int64
	prevCum := 0
	for i := 0; i < nReqs && d.err == nil; i++ {
		var ttdMS int64
		if i == 0 {
			ttdMS = int64(d.uvarint())
		} else {
			ttdMS = prevTTD - int64(d.uvarint())
		}
		cum := prevCum + int(d.uvarint())
		p.Reqs = append(p.Reqs, Req{TTD: time.Duration(ttdMS) * time.Millisecond, Cum: cum})
		prevTTD, prevCum = ttdMS, cum
	}
	if d.err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", d.err)
	}
	return p, nil
}

// Size returns the encoded size of p in bytes.
func (p *Plan) Size() int { return len(p.Encode()) }

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) == 0 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) str() string {
	n := int(d.uvarint())
	if d.err != nil || n < 0 || n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("truncated input")
	}
}
