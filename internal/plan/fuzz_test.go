package plan

import (
	"testing"
	"time"

	"repro/internal/workflow"
)

// FuzzDecode checks the plan wire decoder never panics and that every
// accepted buffer re-encodes and re-decodes stably.
func FuzzDecode(f *testing.F) {
	w := workflow.NewBuilder("fz").
		Job("only", 6, 3, 10*time.Second, 20*time.Second).
		MustBuild(0, 1<<40)
	p, err := Generate(w, 3, "HLF", []int{0})
	if err != nil {
		f.Fatal(err)
	}
	enc := p.Encode()
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{})
	f.Add([]byte{encodingVersion})
	f.Add([]byte{encodingVersion, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Decode(data)
		if err != nil {
			return
		}
		re := q.Encode()
		q2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if q2.Policy != q.Policy || q2.Cap != q.Cap || len(q2.Reqs) != len(q.Reqs) || len(q2.Ranks) != len(q.Ranks) {
			t.Fatal("re-decode changed the plan")
		}
	})
}
