// Package plan implements WOHA's client-side Scheduling Plan Generator
// (Section IV-A of the paper).
//
// A scheduling plan carries two things from the client to the JobTracker:
//
//   - a static intra-workflow job ordering (from a priority.Policy), and
//   - the progress requirement list F_i produced by Algorithm 1
//     ("GenerateReqs"): entries (ttd, req) meaning "by the time ttd remains
//     until the deadline, req tasks of this workflow must have been
//     scheduled".
//
// Algorithm 1 simulates the workflow alone on n slots under the given job
// ordering. The paper's pseudocode omits how slots return to the pool; we
// complete it faithfully to the model it describes: every scheduled batch of
// k map (reduce) tasks frees k slots when the batch finishes at t+M (t+R),
// a job's reduce phase activates when its last map batch finishes, and its
// dependents activate when the last reduce batch finishes.
//
// Because a plan generated against the whole cluster is too optimistic when
// other workflows compete for slots (Fig 2), GenerateCapped binary-searches
// the smallest resource cap under which the simulated makespan still meets
// the deadline and builds the plan at that cap.
//
// Plan generation is the expensive half of workflow admission (each capped
// plan runs O(log slots) Algorithm 1 simulations), so the simulators recycle
// their state: all per-run buffers (event queue, active-job structures,
// per-job counters, dependent adjacency, raw requirement list) live in
// sync.Pool-managed sim objects with pre-sized reset methods, making repeated
// probes near-zero-alloc. internal/planner builds on this with concurrent
// probing and a structural plan cache.
package plan

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Req is one progress requirement: by TTD before the workflow's deadline,
// Cum tasks must have been scheduled. Requirements are cumulative and a
// plan's Reqs are sorted by decreasing TTD (i.e. chronologically).
type Req struct {
	TTD time.Duration
	Cum int
}

// Plan is a workflow scheduling plan.
type Plan struct {
	// Policy is the name of the intra-workflow priority policy the plan
	// was generated with.
	Policy string
	// Ranks holds the job ordering: Ranks[j] is job j's rank, smaller
	// means higher priority.
	Ranks []int
	// Reqs is the progress requirement list F_i, sorted by decreasing TTD.
	Reqs []Req
	// Cap is the resource cap (slot count) the plan was simulated with.
	Cap int
	// Makespan is the simulated completion time of the workflow running
	// alone on Cap slots.
	Makespan time.Duration
	// Feasible reports whether Makespan fits within the workflow's
	// relative deadline. An infeasible plan is still usable — the
	// scheduler follows it best-effort.
	Feasible bool
	// TotalTasks is the workflow's task count; equals the last Req's Cum.
	TotalTasks int
	// SearchIters counts the Algorithm 1 simulations run to produce this
	// plan: 1 for a direct Generate, 1 + the probe count for the capped
	// generators (speculative parallel probes included, so the Fig 2 cost
	// accounting holds however the search was executed). A plan served
	// from a cache reports 0. Diagnostic only; not part of the encoded
	// plan.
	SearchIters int
}

// RequiredAt returns F(ttd): the number of tasks that must have been
// scheduled when ttd remains until the deadline. Larger ttd (more time left)
// means fewer tasks required; ttd at or below the last entry requires all
// tasks.
func (p *Plan) RequiredAt(ttd time.Duration) int {
	// Reqs is sorted by decreasing TTD. Find the last entry whose TTD is
	// >= ttd; its Cum is in force.
	i := sort.Search(len(p.Reqs), func(i int) bool { return p.Reqs[i].TTD < ttd })
	// Entries [0, i) have TTD >= ttd.
	if i == 0 {
		return 0
	}
	return p.Reqs[i-1].Cum
}

// Clone returns a deep copy of p. Plans are treated as immutable once handed
// to the scheduler; Clone exists for caches and tests that must hand out
// independently mutable copies.
func (p *Plan) Clone() *Plan {
	c := *p
	c.Ranks = append([]int(nil), p.Ranks...)
	c.Reqs = append([]Req(nil), p.Reqs...)
	return &c
}

// Generate runs Algorithm 1: it simulates w executing alone on n slots with
// jobs prioritized by ranks (smaller rank = higher priority) and returns the
// resulting plan. ranks must be a permutation as produced by a
// priority.Policy. Generate is safe for concurrent use; simulator state is
// drawn from an internal pool.
func Generate(w *workflow.Workflow, n int, policyName string, ranks []int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("plan: resource cap %d, want > 0", n)
	}
	if len(ranks) != len(w.Jobs) {
		return nil, fmt.Errorf("plan: %d ranks for %d jobs", len(ranks), len(w.Jobs))
	}
	s := genSimPool.Get().(*genSim)
	defer genSimPool.Put(s)
	return generateWith(s, w, n, policyName, ranks)
}

// generateWith runs Algorithm 1 on an explicit simulator, so benchmarks can
// compare pooled against freshly allocated state.
func generateWith(s *genSim, w *workflow.Workflow, n int, policyName string, ranks []int) (*Plan, error) {
	s.reset(w, n, ranks)
	raw, makespan, err := s.run()
	if err != nil {
		return nil, err
	}
	return assemble(w, policyName, ranks, n, makespan, raw)
}

// assemble translates a simulation's raw scheduling events into a Plan:
// event occurrence times become time-to-deadline and the requirement counts
// become cumulative (Algorithm 1, lines 37-39).
func assemble(w *workflow.Workflow, policyName string, ranks []int, totalCap int, makespan time.Duration, raw []rawReq) (*Plan, error) {
	p := &Plan{
		Policy:      policyName,
		Ranks:       append([]int(nil), ranks...),
		Cap:         totalCap,
		Makespan:    makespan,
		Feasible:    makespan <= w.RelativeDeadline(),
		TotalTasks:  w.TotalTasks(),
		SearchIters: 1,
	}
	cum := 0
	for _, r := range raw {
		cum += r.count
		ttd := makespan - r.at.Duration()
		if k := len(p.Reqs); k > 0 && p.Reqs[k-1].TTD == ttd {
			p.Reqs[k-1].Cum = cum
		} else {
			p.Reqs = append(p.Reqs, Req{TTD: ttd, Cum: cum})
		}
	}
	if cum != p.TotalTasks {
		return nil, fmt.Errorf("plan: simulation scheduled %d tasks, workflow has %d", cum, p.TotalTasks)
	}
	return p, nil
}

// GenerateForPolicy ranks w's jobs with pol and generates a plan at cap n.
func GenerateForPolicy(w *workflow.Workflow, n int, pol priority.Policy) (*Plan, error) {
	ranks, err := pol.Rank(w)
	if err != nil {
		return nil, fmt.Errorf("plan: ranking jobs: %w", err)
	}
	return Generate(w, n, pol.Name(), ranks)
}

// GenerateCapped finds, by binary search, the minimum resource cap in
// [1, clusterSlots] whose simulated makespan meets the workflow's relative
// deadline, and returns the plan generated at that cap (Section IV-A, "An
// improvement"). If even the full cluster cannot meet the deadline the plan
// for clusterSlots is returned with Feasible == false.
func GenerateCapped(w *workflow.Workflow, clusterSlots int, pol priority.Policy) (*Plan, error) {
	return GenerateCappedMargin(w, clusterSlots, pol, 1.0)
}

// GenerateCappedMargin is GenerateCapped with a safety margin: the binary
// search targets margin * relative-deadline instead of the full deadline, so
// the plan keeps (1-margin) of the deadline in reserve. Algorithm 1's
// single-pool slot model is optimistic about a real cluster's typed map and
// reduce slots, and the minimum cap leaves a plan with zero slack; a margin
// below 1 absorbs both effects. margin must be in (0, 1]. The experiments
// use 0.85.
func GenerateCappedMargin(w *workflow.Workflow, clusterSlots int, pol priority.Policy, margin float64) (*Plan, error) {
	return GenerateCappedMarginWith(w, clusterSlots, pol, margin, nil)
}

// GenerateCappedMarginWith is GenerateCappedMargin with an explicit cap
// searcher; a nil search uses SequentialSearch. Any conforming searcher (see
// CapSearcher) yields a byte-identical plan, so internal/planner can probe
// caps concurrently without changing results.
func GenerateCappedMarginWith(w *workflow.Workflow, clusterSlots int, pol priority.Policy, margin float64, search CapSearcher) (*Plan, error) {
	if clusterSlots <= 0 {
		return nil, fmt.Errorf("plan: cluster has %d slots, want > 0", clusterSlots)
	}
	if margin <= 0 || margin > 1 {
		return nil, fmt.Errorf("plan: margin %v, want (0, 1]", margin)
	}
	ranks, err := pol.Rank(w)
	if err != nil {
		return nil, fmt.Errorf("plan: ranking jobs: %w", err)
	}
	target := time.Duration(margin * float64(w.RelativeDeadline()))
	full, err := Generate(w, clusterSlots, pol.Name(), ranks)
	if err != nil {
		return nil, err
	}
	if full.Makespan > target {
		// The whole cluster misses the margin target. Retry against the
		// real deadline: a plan capped for the actual deadline demands far
		// less than the full-cluster plan and keeps the workflow from
		// poisoning the priority queue with an unearned maximal lag. Only
		// a genuinely infeasible workflow falls through to the best-effort
		// full plan.
		if full.Makespan > w.RelativeDeadline() {
			return full, nil
		}
		target = w.RelativeDeadline()
	}
	if search == nil {
		search = SequentialSearch
	}
	best, probes, err := search(1, clusterSlots, target, func(mid int) (*Plan, error) {
		return Generate(w, mid, pol.Name(), ranks)
	})
	if err != nil {
		return nil, err
	}
	if best == nil {
		best = full
	}
	best.SearchIters = 1 + probes
	return best, nil
}

// genSim is the Algorithm 1 simulator state. Every buffer is retained across
// runs (reset pre-sizes rather than re-allocates), so pooled sims make
// repeated probes of the same or similar workflows nearly allocation-free.
type genSim struct {
	w     *workflow.Workflow
	ranks []int

	free    int
	remMaps []int
	remReds []int
	unmet   []int
	deps    depCSR

	active activeHeap
	events simtime.Queue[genEvent]
	// batch receives each instant's events from DrainInstant, replacing the
	// former Pop+Peek loop with one heap drain per instant.
	batch []genEvent
	raw   []rawReq
}

var genSimPool = sync.Pool{New: func() any { return new(genSim) }}

// genEvent is a FREE or ADD event from Algorithm 1. slots > 0 frees slots;
// activate re-queues a job for its reduce phase or, for completions,
// activates dependents.
type genEvent struct {
	// slots freed at this instant (FREE event), if any.
	slots int
	// reduceOf, when >= 0, re-adds that job to the active set for its
	// reduce phase (the ADD event of Algorithm 1 line 21).
	reduceOf workflow.JobID
	// completed, when >= 0, marks that job finished, activating dependents
	// whose prerequisites are all done (line 29-31).
	completed workflow.JobID
}

type rawReq struct {
	at    simtime.Time
	count int
}

// reset prepares s to simulate w on n slots under ranks, reusing all
// retained buffers. The dependent adjacency is rebuilt only when w changes,
// so the probes of one capped search share a single construction.
func (s *genSim) reset(w *workflow.Workflow, n int, ranks []int) {
	s.deps.build(w)
	s.w = w
	s.ranks = ranks
	s.free = 0
	nj := len(w.Jobs)
	s.remMaps = resize(s.remMaps, nj)
	s.remReds = resize(s.remReds, nj)
	s.unmet = resize(s.unmet, nj)
	s.active.items = s.active.items[:0]
	s.events.Reset()
	s.raw = s.raw[:0]
	for i := range w.Jobs {
		s.remMaps[i] = w.Jobs[i].Maps
		s.remReds[i] = w.Jobs[i].Reduces
		s.unmet[i] = len(w.Jobs[i].Prereqs)
	}
	// Roots activate in job-ID order, as Workflow.Roots reports them.
	for i := range w.Jobs {
		if s.unmet[i] == 0 {
			s.activate(workflow.JobID(i))
		}
	}
	s.events.Push(simtime.Epoch, genEvent{slots: n, reduceOf: -1, completed: -1})
}

func (s *genSim) activate(j workflow.JobID) {
	s.active.push(activeJob{id: j, rank: s.ranks[j]})
}

func (s *genSim) run() ([]rawReq, time.Duration, error) {
	var end simtime.Time
	for s.events.Len() > 0 {
		// Batch all events sharing this instant before scheduling, so a
		// free-up and an activation at the same time are seen together
		// (apply never pushes, so the batch is the complete instant).
		s.batch = s.batch[:0]
		t, _ := s.events.DrainInstant(&s.batch)
		for _, e := range s.batch {
			s.apply(e)
		}
		// Work-conserving scheduling at time t (Algorithm 1 lines 14-35,
		// looped while slots and active jobs remain).
		for s.free > 0 && s.active.len() > 0 {
			j := s.active.peek()
			job := &s.w.Jobs[j]
			if s.remMaps[j] > 0 {
				k := min(s.remMaps[j], s.free)
				s.raw = append(s.raw, rawReq{at: t, count: k})
				s.free -= k
				s.remMaps[j] -= k
				done := t.Add(job.MapTime)
				s.events.Push(done, genEvent{slots: k, reduceOf: -1, completed: -1})
				end = simtime.MaxOf(end, done)
				if s.remMaps[j] == 0 {
					s.active.pop()
					if s.remReds[j] > 0 {
						s.events.Push(done, genEvent{slots: 0, reduceOf: j, completed: -1})
					} else {
						s.events.Push(done, genEvent{slots: 0, reduceOf: -1, completed: j})
					}
				}
			} else {
				k := min(s.remReds[j], s.free)
				s.raw = append(s.raw, rawReq{at: t, count: k})
				s.free -= k
				s.remReds[j] -= k
				done := t.Add(job.ReduceTime)
				s.events.Push(done, genEvent{slots: k, reduceOf: -1, completed: -1})
				end = simtime.MaxOf(end, done)
				if s.remReds[j] == 0 {
					s.active.pop()
					s.events.Push(done, genEvent{slots: 0, reduceOf: -1, completed: j})
				}
			}
		}
	}
	for i := range s.w.Jobs {
		if s.remMaps[i] > 0 || s.remReds[i] > 0 {
			return nil, 0, fmt.Errorf("plan: job %q never fully scheduled (internal error)", s.w.Jobs[i].Name)
		}
	}
	return s.raw, end.Duration(), nil
}

func (s *genSim) apply(e genEvent) {
	s.free += e.slots
	if e.reduceOf >= 0 {
		// Reduce phase of e.reduceOf becomes schedulable.
		s.activate(e.reduceOf)
	}
	if e.completed >= 0 {
		for _, d := range s.deps.of(e.completed) {
			s.unmet[d]--
			if s.unmet[d] == 0 {
				s.activate(d)
			}
		}
	}
}

// depCSR is the dependent adjacency (Workflow.Dependents) in compressed
// sparse row form: one flat edge list instead of a slice per job, rebuilt
// only when the workflow changes and reusing its arrays otherwise.
type depCSR struct {
	w    *workflow.Workflow
	head []int32
	list []workflow.JobID
	fill []int32
}

// build (re)derives the adjacency for w. The per-job edge order matches
// Workflow.Dependents: dependents appear in increasing job-ID order.
func (d *depCSR) build(w *workflow.Workflow) {
	if d.w == w && d.head != nil {
		return
	}
	d.w = w
	n := len(w.Jobs)
	d.head = resize(d.head, n+1)
	for i := range d.head {
		d.head[i] = 0
	}
	edges := 0
	for i := range w.Jobs {
		edges += len(w.Jobs[i].Prereqs)
		for _, p := range w.Jobs[i].Prereqs {
			d.head[p+1]++
		}
	}
	for i := 1; i <= n; i++ {
		d.head[i] += d.head[i-1]
	}
	d.list = resize(d.list, edges)
	// Fill via a cursor per job; iterating dependents in increasing ID
	// order keeps each job's edge list sorted.
	d.fill = resize(d.fill, n)
	copy(d.fill, d.head[:n])
	for i := range w.Jobs {
		for _, p := range w.Jobs[i].Prereqs {
			d.list[d.fill[p]] = workflow.JobID(i)
			d.fill[p]++
		}
	}
}

// of returns job j's dependents.
func (d *depCSR) of(j workflow.JobID) []workflow.JobID {
	return d.list[d.head[j]:d.head[j+1]]
}

// resize returns s with length n, reusing its backing array when possible.
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// activeJob is an entry in the active-job heap, ordered by rank.
type activeJob struct {
	id   workflow.JobID
	rank int
}

// activeHeap is a small binary min-heap over job rank. Implemented by hand
// (rather than container/heap) to avoid interface boxing in the hot loop.
type activeHeap struct {
	items []activeJob
}

func (h *activeHeap) len() int { return len(h.items) }

func (h *activeHeap) peek() workflow.JobID { return h.items[0].id }

func (h *activeHeap) push(j activeJob) {
	h.items = append(h.items, j)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].rank <= h.items[i].rank {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *activeHeap) pop() activeJob {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].rank < h.items[smallest].rank {
			smallest = l
		}
		if r < last && h.items[r].rank < h.items[smallest].rank {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
