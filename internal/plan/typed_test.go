package plan

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func TestGenerateTypedSingleJobWaves(t *testing.T) {
	// 4 maps (10s) on 2 map slots: waves at 0s/10s; 3 reduces (30s) on
	// 1 reduce slot: waves at 20s/50s/80s; makespan 110s.
	w := singleJob(t, 4, 3, 10*time.Second, 30*time.Second, time.Hour)
	p, err := GenerateTyped(w, Caps{Maps: 2, Reduces: 1}, "ID", identityRanks(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Makespan != 110*time.Second {
		t.Errorf("Makespan = %v, want 110s", p.Makespan)
	}
	want := []Req{
		{TTD: 110 * time.Second, Cum: 2},
		{TTD: 100 * time.Second, Cum: 4},
		{TTD: 90 * time.Second, Cum: 5},
		{TTD: 60 * time.Second, Cum: 6},
		{TTD: 30 * time.Second, Cum: 7},
	}
	if len(p.Reqs) != len(want) {
		t.Fatalf("Reqs = %+v, want %+v", p.Reqs, want)
	}
	for i := range want {
		if p.Reqs[i] != want[i] {
			t.Errorf("Reqs[%d] = %+v, want %+v", i, p.Reqs[i], want[i])
		}
	}
}

func TestGenerateTypedCrossPoolWorkConservation(t *testing.T) {
	// Job a saturates the map pool; the independent reduce-only job b must
	// draw from the reduce pool concurrently — the single-pool Algorithm 1
	// cannot express this overlap.
	w := workflow.NewBuilder("two-pool").
		Job("a", 8, 0, 10*time.Second, 0).
		Job("b", 0, 4, 0, 10*time.Second).
		MustBuild(0, simtime.FromSeconds(1e6))
	p, err := GenerateTyped(w, Caps{Maps: 2, Reduces: 2}, "ID", identityRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	// a: 4 waves x 10s = 40s; b: 2 waves x 10s = 20s, in parallel.
	if p.Makespan != 40*time.Second {
		t.Errorf("Makespan = %v, want 40s (pools overlap)", p.Makespan)
	}
	// At t=0 both pools fire: 2 maps + 2 reduces scheduled.
	if p.Reqs[0].TTD != 40*time.Second || p.Reqs[0].Cum != 4 {
		t.Errorf("Reqs[0] = %+v, want 4 tasks at ttd 40s", p.Reqs[0])
	}
}

func TestGenerateTypedChainDependency(t *testing.T) {
	w := workflow.NewBuilder("chain").
		Job("a", 2, 1, 10*time.Second, 20*time.Second).
		Job("b", 2, 1, 10*time.Second, 20*time.Second, "a").
		MustBuild(0, simtime.FromSeconds(1e6))
	p, err := GenerateTyped(w, Caps{Maps: 4, Reduces: 4}, "ID", identityRanks(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Makespan != 60*time.Second {
		t.Errorf("Makespan = %v, want 60s", p.Makespan)
	}
}

func TestGenerateTypedErrors(t *testing.T) {
	w := singleJob(t, 1, 1, time.Second, time.Second, time.Hour)
	if _, err := GenerateTyped(w, Caps{Maps: 0, Reduces: 1}, "ID", identityRanks(1)); err == nil {
		t.Error("zero map caps accepted")
	}
	if _, err := GenerateTyped(w, Caps{Maps: 1, Reduces: 1}, "ID", identityRanks(3)); err == nil {
		t.Error("wrong rank count accepted")
	}
	if _, err := GenerateCappedTyped(w, Caps{Maps: 0, Reduces: 0}, priority.HLF{}, 0.9); err == nil {
		t.Error("bad cluster caps accepted")
	}
	if _, err := GenerateCappedTyped(w, Caps{Maps: 2, Reduces: 2}, priority.HLF{}, 1.5); err == nil {
		t.Error("margin > 1 accepted")
	}
	if _, err := GenerateCappedTyped(w, Caps{Maps: 2, Reduces: 2}, priority.HLF{}, 0); err == nil {
		t.Error("margin 0 accepted")
	}
}

func TestGenerateCappedTypedMinimalSlice(t *testing.T) {
	// 8 maps of 10s + 4 reduces of 10s; deadline 130s, margin target
	// 110.5s. Proportional slices of a 10m+10r cluster round the map share
	// down with at least one slot each:
	//   t=3 -> 1m+2r: maps 80s, reduces 2 waves after the barrier = 100s OK
	//   t=2 -> 1m+1r: 80s + 40s = 120s > 110.5s.
	// Minimal total budget is therefore 3.
	w := singleJob(t, 8, 4, 10*time.Second, 10*time.Second, 130*time.Second)
	p, err := GenerateCappedTyped(w, Caps{Maps: 10, Reduces: 10}, priority.HLF{}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatal("plan infeasible")
	}
	if p.Cap != 3 {
		t.Errorf("Cap = %d, want 3", p.Cap)
	}
	if p.Makespan > 110*time.Second+500*time.Millisecond {
		t.Errorf("Makespan %v exceeds the margin target", p.Makespan)
	}
}

func TestGenerateCappedTypedInfeasibleFallsBackToFull(t *testing.T) {
	w := singleJob(t, 1, 1, 10*time.Second, 10*time.Second, 15*time.Second)
	p, err := GenerateCappedTyped(w, Caps{Maps: 8, Reduces: 8}, priority.HLF{}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible {
		t.Error("impossible deadline reported feasible")
	}
	if p.Cap != 16 {
		t.Errorf("Cap = %d, want full cluster 16", p.Cap)
	}
}

func TestGenerateCappedTypedMarginFallbackToRealDeadline(t *testing.T) {
	// Critical path 20s; deadline 21s. The 0.5 margin target (10.5s) is
	// unreachable, but the real deadline is fine: the search must retry
	// against it instead of returning the maximal full plan.
	w := singleJob(t, 4, 4, 5*time.Second, 5*time.Second, 21*time.Second)
	p, err := GenerateCappedTyped(w, Caps{Maps: 50, Reduces: 50}, priority.HLF{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatal("feasible deadline reported infeasible")
	}
	if p.Cap >= 100 {
		t.Errorf("Cap = %d; fallback should still shrink below the full cluster", p.Cap)
	}
	if p.Makespan > 21*time.Second {
		t.Errorf("Makespan %v exceeds the deadline", p.Makespan)
	}
}

// TestTypedPlanInvariants mirrors the single-pool invariants across random
// workflows: cumulative monotone requirements covering every task, with the
// makespan bracketed by critical path and serial work.
func TestTypedPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		w := randomWorkflow(rng, 2+rng.Intn(20))
		cp, err := w.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		caps := Caps{Maps: 1 + rng.Intn(30), Reduces: 1 + rng.Intn(15)}
		ranks, err := priority.LPF{}.Rank(w)
		if err != nil {
			t.Fatal(err)
		}
		p, err := GenerateTyped(w, caps, "LPF", ranks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if p.Reqs[len(p.Reqs)-1].Cum != w.TotalTasks() {
			t.Fatalf("trial %d: final Cum %d != %d tasks", trial, p.Reqs[len(p.Reqs)-1].Cum, w.TotalTasks())
		}
		for i := 1; i < len(p.Reqs); i++ {
			if p.Reqs[i].TTD >= p.Reqs[i-1].TTD || p.Reqs[i].Cum <= p.Reqs[i-1].Cum {
				t.Fatalf("trial %d: non-monotone reqs at %d: %+v", trial, i, p.Reqs)
			}
		}
		if p.Makespan < cp || p.Makespan > w.SerialWork() {
			t.Fatalf("trial %d: makespan %v outside [%v, %v]", trial, p.Makespan, cp, w.SerialWork())
		}
		// A typed plan can never beat the single-pool plan with the same
		// total budget: the pools only constrain further. (Holds for the
		// work-conserving scan because every typed schedule is a valid
		// single-pool schedule.)
		sp, err := Generate(w, caps.Total(), "LPF", ranks)
		if err != nil {
			t.Fatal(err)
		}
		if p.Makespan < sp.Makespan {
			t.Fatalf("trial %d: typed makespan %v beat single-pool %v", trial, p.Makespan, sp.Makespan)
		}
	}
}

func TestGenerateCappedTypedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := randomWorkflow(rng, 12)
	w.Deadline = w.Release.Add(w.SerialWork()) // generous
	a, err := GenerateCappedTyped(w, Caps{Maps: 40, Reduces: 20}, priority.MPF{}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCappedTyped(w, Caps{Maps: 40, Reduces: 20}, priority.MPF{}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cap != b.Cap || a.Makespan != b.Makespan || len(a.Reqs) != len(b.Reqs) {
		t.Fatal("typed capped generation not deterministic")
	}
}

func BenchmarkGenerateTyped(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	w := randomWorkflow(rng, 30)
	ranks, err := priority.LPF{}.Rank(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTyped(w, Caps{Maps: 30, Reduces: 15}, "LPF", ranks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateTypedFreshState simulates on newly allocated state every
// iteration; the gap to BenchmarkGenerateTyped is the pooling win.
func BenchmarkGenerateTypedFreshState(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	w := randomWorkflow(rng, 30)
	ranks, err := priority.LPF{}.Rank(w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := generateTypedWith(new(typedSim), w, Caps{Maps: 30, Reduces: 15}, "LPF", ranks); err != nil {
			b.Fatal(err)
		}
	}
}
