package plan

import "time"

// Probe runs one Algorithm 1 simulation at a candidate resource cap and
// returns the resulting plan. Probes are pure: the same cap always yields the
// same plan, and concurrent invocations are safe.
type Probe func(cap int) (*Plan, error)

// CapSearcher executes the resource-cap bisection of Section IV-A over the
// interval [lo, hi]: find the plan the sequential binary search settles on,
// probing caps as needed, and report how many probes actually ran.
//
// The contract is exact equivalence with SequentialSearch: an implementation
// may evaluate extra caps speculatively or concurrently, but the (lo, hi)
// narrowing decisions must follow the sequential bisection on the same probe
// results, so the returned plan — and therefore its encoded bytes — is
// identical however the search is executed. best is nil when no probed cap
// met the target (the caller falls back to its full-cluster plan); probes
// counts every simulation actually executed, keeping the paper's Fig 2
// plan-cost accounting honest even for speculative searches.
//
// Probe errors encountered on the bisection path abort the search. Errors on
// speculative caps the sequential search would never visit must not.
type CapSearcher func(lo, hi int, target time.Duration, probe Probe) (best *Plan, probes int, err error)

// SequentialSearch is the seed implementation of CapSearcher: the plain
// binary search of GenerateCappedMargin, one probe at a time.
func SequentialSearch(lo, hi int, target time.Duration, probe Probe) (*Plan, int, error) {
	var best *Plan
	probes := 0
	for lo < hi {
		mid := lo + (hi-lo)/2
		p, err := probe(mid)
		if err != nil {
			return nil, probes, err
		}
		probes++
		if p.Makespan <= target {
			best, hi = p, mid
		} else {
			lo = mid + 1
		}
	}
	return best, probes, nil
}
