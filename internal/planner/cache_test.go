package planner

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// key builds a distinct cacheKey for test entry i.
func key(i int) cacheKey {
	var k cacheKey
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

// TestPlanCacheEvictionOrder drives the LRU list directly through an
// interleaved get/put sequence and checks the exact victim order: eviction
// must follow recency of *use* (gets and duplicate puts both refresh), not
// insertion order.
func TestPlanCacheEvictionOrder(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	st := o.NewPlannerStats()
	c := newPlanCache(3, st)
	p := fakePlan(1, time.Minute)

	// Fill: recency front-to-back is [2 1 0].
	for i := 0; i < 3; i++ {
		if !c.put(key(i), p) {
			t.Fatalf("put(%d) = false, want true", i)
		}
	}
	// Touch 0 via get -> [0 2 1]; duplicate put of 1 refreshes too -> [1 0 2].
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("get(0): miss, want hit")
	}
	if c.put(key(1), p) {
		t.Fatal("duplicate put(1) = true, want false (entry retained)")
	}
	if got := st.DuplicateFills.Value(); got != 1 {
		t.Fatalf("DuplicateFills = %d, want 1", got)
	}

	// Inserting 3 must evict 2 (the least recently used), then 4 evicts 0.
	for step, tc := range []struct {
		insert  int
		evicted int
	}{
		{insert: 3, evicted: 2},
		{insert: 4, evicted: 0},
	} {
		if !c.put(key(tc.insert), p) {
			t.Fatalf("step %d: put(%d) = false, want true", step, tc.insert)
		}
		if _, ok := c.get(key(tc.evicted)); ok {
			t.Errorf("step %d: key %d still cached, want evicted", step, tc.evicted)
		}
		if got := st.CacheEvictions.Value(); got != int64(step+1) {
			t.Errorf("step %d: CacheEvictions = %d, want %d", step, got, step+1)
		}
	}
	// Survivors: 1 (refreshed by the duplicate put), 3, 4.
	for _, i := range []int{1, 3, 4} {
		if _, ok := c.get(key(i)); !ok {
			t.Errorf("key %d evicted, want cached", i)
		}
	}
	if got := c.len(); got != 3 {
		t.Errorf("len = %d, want 3", got)
	}
}

// TestPlanCacheSingleEntry exercises the list edge case where front == back:
// every insert beyond the first evicts the sole resident.
func TestPlanCacheSingleEntry(t *testing.T) {
	c := newPlanCache(1, nil)
	p := fakePlan(1, time.Minute)
	for i := 0; i < 4; i++ {
		if !c.put(key(i), p) {
			t.Fatalf("put(%d) = false, want true", i)
		}
		if _, ok := c.get(key(i)); !ok {
			t.Fatalf("get(%d): miss, want hit", i)
		}
		if i > 0 {
			if _, ok := c.get(key(i - 1)); ok {
				t.Fatalf("key %d still cached, want evicted", i-1)
			}
		}
		if got := c.len(); got != 1 {
			t.Fatalf("len = %d, want 1", got)
		}
	}
}

// TestPlanCacheNil pins the nil-cache (CacheSize <= 0) contract relied on by
// serve: gets miss, puts report nothing retained, len is zero.
func TestPlanCacheNil(t *testing.T) {
	var c *planCache
	if _, ok := c.get(key(1)); ok {
		t.Error("nil cache get: hit, want miss")
	}
	if c.put(key(1), fakePlan(1, time.Minute)) {
		t.Error("nil cache put = true, want false")
	}
	if got := c.len(); got != 0 {
		t.Errorf("nil cache len = %d, want 0", got)
	}
}
