package planner

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// TestCoalescingExactlyOnce hammers one shared planner with many goroutines
// that all want the same structural keys at the same instant — renamed,
// time-shifted instances of a few DAG shapes, exactly what concurrent runner
// cells submit. Run under -race (make verify does) this pins the shared
// planner's exactly-once contract:
//
//   - each distinct key is simulated once: CacheMisses equals the key count
//     and exactly that many returned plans carry SearchIters > 0;
//   - every other request is a cache hit or a coalesced wait, never a second
//     generation: hits + coalesced = requests - keys, DuplicateFills = 0;
//   - all plans for a key are byte-identical to the seed generator's.
func TestCoalescingExactlyOnce(t *testing.T) {
	const (
		goroutines = 24
		shapes     = 3
		rounds     = 4
	)
	o := obs.New(obs.NewRegistry(), nil)
	pl := New(Config{CacheSize: 64, Obs: o})
	pol := priority.HLF{}

	// Per-goroutine renamed instances: same shape, different names and
	// submit/deadline instants, so collisions are structural, not pointer
	// identity.
	mk := func(g, shape int) *workflow.Workflow {
		shift := time.Duration(g) * time.Minute
		return workflow.NewBuilder(fmt.Sprintf("g%d-s%d", g, shape)).
			Job("extract", 40+10*shape, 8, 30*time.Second, 60*time.Second).
			Job("load", 20, 4, 20*time.Second, 45*time.Second, "extract").
			MustBuild(simtime.Epoch.Add(shift), simtime.Epoch.Add(shift+2*time.Hour))
	}
	want := make([][]byte, shapes)
	for s := 0; s < shapes; s++ {
		p, err := plan.GenerateCappedTyped(mk(0, s), testCluster, pol, DefaultMargin)
		if err != nil {
			t.Fatalf("GenerateCappedTyped: %v", err)
		}
		want[s] = p.Encode()
	}

	type res struct {
		shape int
		iters int
		enc   []byte
	}
	results := make(chan res, goroutines*shapes*rounds)
	errs := make(chan error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				for s := 0; s < shapes; s++ {
					p, err := pl.Plan(mk(g, s), testCluster, pol)
					if err != nil {
						errs <- err
						return
					}
					results <- res{shape: s, iters: p.SearchIters, enc: p.Encode()}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	close(results)
	close(errs)
	for err := range errs {
		t.Fatalf("Plan: %v", err)
	}

	generated := 0
	for r := range results {
		if r.iters > 0 {
			generated++
		}
		if !bytes.Equal(r.enc, want[r.shape]) {
			t.Errorf("shape %d: plan differs from the seed generator's", r.shape)
		}
	}
	if generated != shapes {
		t.Errorf("plans with SearchIters > 0 = %d, want %d (one generation per key)", generated, shapes)
	}

	st := pl.Stats()
	requests := int64(goroutines * shapes * rounds)
	if got := st.Plans.Value(); got != requests {
		t.Errorf("Plans = %d, want %d", got, requests)
	}
	if got := st.CacheMisses.Value(); got != shapes {
		t.Errorf("CacheMisses = %d, want %d (each key simulated exactly once)", got, shapes)
	}
	if got := st.CacheHits.Value() + st.Coalesced.Value(); got != requests-shapes {
		t.Errorf("CacheHits %d + Coalesced %d = %d, want %d",
			st.CacheHits.Value(), st.Coalesced.Value(), got, requests-shapes)
	}
	if got := st.DuplicateFills.Value(); got != 0 {
		t.Errorf("DuplicateFills = %d, want 0", got)
	}
	if got := st.Inflight.Value(); got != 0 {
		t.Errorf("Inflight = %d after the hammer, want 0", got)
	}
	if got := pl.CacheLen(); got != shapes {
		t.Errorf("CacheLen = %d, want %d", got, shapes)
	}
}

// TestCoalescingWithoutCache pins the flight group in isolation: with the
// cache disabled, requests that overlap an in-flight generation still
// coalesce onto it, and the duplicate-fill counter stays untouched (there is
// no cache to double-fill).
func TestCoalescingWithoutCache(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	pl := New(Config{Obs: o})
	pol := priority.HLF{}
	w := workload.Fig7("w", 1.0, simtime.Epoch, simtime.Epoch.Add(time.Hour))

	const goroutines = 16
	start := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := pl.Plan(w, testCluster, pol)
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("Plan: %v", err)
		}
	}

	st := pl.Stats()
	coalesced := st.Coalesced.Value()
	misses := st.CacheMisses.Value()
	if coalesced+misses != goroutines {
		t.Errorf("Coalesced %d + misses %d = %d, want %d", coalesced, misses, coalesced+misses, goroutines)
	}
	if misses < 1 {
		t.Errorf("CacheMisses = %d, want >= 1 (someone must lead each flight)", misses)
	}
	if got := st.DuplicateFills.Value(); got != 0 {
		t.Errorf("DuplicateFills = %d, want 0", got)
	}
	t.Logf("cacheless flight group: %d requests -> %d generations, %d coalesced", goroutines, misses, coalesced)
}

// TestCoalescedErrorPropagates checks that a failed generation reaches every
// waiter that coalesced onto it, and that the failure is not cached — a later
// request retries the generation.
func TestCoalescedErrorPropagates(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	pl := New(Config{CacheSize: 8, Obs: o})
	w := workload.Fig7("w", 1.0, simtime.Epoch, simtime.Epoch.Add(time.Hour))
	// Zero reduce caps are rejected by the typed generator.
	bad := plan.Caps{Maps: 10, Reduces: 0}

	const goroutines = 8
	start := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := pl.Plan(w, bad, priority.HLF{})
			errs <- err
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("Plan with zero reduce caps: want error, got nil")
		}
	}
	if got := pl.CacheLen(); got != 0 {
		t.Errorf("CacheLen = %d after failed generations, want 0 (failures are not cached)", got)
	}
	if _, err := pl.Plan(w, bad, priority.HLF{}); err == nil {
		t.Fatal("retry after failed flight: want error, got nil")
	}
}
