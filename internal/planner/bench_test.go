package planner

import (
	"runtime"
	"testing"

	"repro/internal/priority"
)

// The benchmarks measure admission throughput over the Yahoo+Fig7 corpus in
// three configurations the acceptance numbers compare: the seed-equivalent
// sequential path, the speculative parallel search (wins scale with cores),
// and a warm structural cache (template-heavy regime).

func benchPlans(b *testing.B, pl *Planner) {
	flows := corpus(b)
	pol := priority.HLF{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := flows[i%len(flows)]
		if _, err := pl.Plan(w, testCluster, pol); err != nil {
			b.Fatalf("Plan: %v", err)
		}
	}
}

func BenchmarkPlanSequential(b *testing.B) {
	benchPlans(b, New(Config{}))
}

func BenchmarkPlanParallel(b *testing.B) {
	benchPlans(b, New(Config{Workers: runtime.GOMAXPROCS(0)}))
}

func BenchmarkPlanWarmCache(b *testing.B) {
	flows := corpus(b)
	pol := priority.HLF{}
	pl := New(Config{CacheSize: 2 * len(flows)})
	for _, w := range flows {
		if _, err := pl.Plan(w, testCluster, pol); err != nil {
			b.Fatalf("warm-up Plan: %v", err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := flows[i%len(flows)]
		if _, err := pl.Plan(w, testCluster, pol); err != nil {
			b.Fatalf("Plan: %v", err)
		}
	}
}

func BenchmarkPlanAll(b *testing.B) {
	flows := corpus(b)
	pol := priority.HLF{}
	pl := New(Config{Workers: runtime.GOMAXPROCS(0)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.PlanAll(flows, testCluster, pol); err != nil {
			b.Fatalf("PlanAll: %v", err)
		}
	}
}
