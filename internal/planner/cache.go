package planner

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/workflow"
)

// cacheKey is the canonical structural hash of one plan request. Two
// requests share a key exactly when the sequential generator would emit the
// same plan for both, so a hit can be served without simulating:
//
//   - the request shape: generator variant, cap bounds, margin, policy name;
//   - the workflow's relative deadline (plans depend on S_i and D_i only
//     through D_i - S_i, so recurring instances of one template collide);
//   - the DAG structure: per-job task counts and durations plus the
//     prerequisite sets (canonicalized by sorting — prerequisite order is
//     semantically irrelevant), with jobs in ID order.
//
// Names and dataset paths are deliberately excluded: priority policies rank
// by structure with job-ID tie-breaks, so same-shaped workflows under
// different names yield identical ranks and therefore identical plans.
type cacheKey [sha256.Size]byte

// Generator variants discriminated by the key.
const (
	variantSingle   byte = 1 // GenerateCappedMargin (one slot pool)
	variantTyped    byte = 2 // GenerateCappedTyped (map/reduce pools)
	variantUncapped byte = 3 // Generate at a fixed cap (Estimate)
)

func keyFor(w *workflow.Workflow, variant byte, capMaps, capReds int, margin float64, policy string) cacheKey {
	h := sha256.New()
	var buf [2 * binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		h.Write(buf[:n])
	}
	h.Write([]byte{variant})
	put(uint64(capMaps))
	put(uint64(capReds))
	put(math.Float64bits(margin))
	put(uint64(len(policy)))
	h.Write([]byte(policy))
	put(uint64(w.RelativeDeadline()))
	put(uint64(len(w.Jobs)))
	var prereqs []int
	for i := range w.Jobs {
		j := &w.Jobs[i]
		put(uint64(j.Maps))
		put(uint64(j.Reduces))
		put(uint64(j.MapTime))
		put(uint64(j.ReduceTime))
		put(uint64(len(j.Prereqs)))
		prereqs = prereqs[:0]
		for _, p := range j.Prereqs {
			prereqs = append(prereqs, int(p))
		}
		sort.Ints(prereqs)
		for _, p := range prereqs {
			put(uint64(p))
		}
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// planCache is a mutex-guarded LRU over structural keys. Entries are cloned
// on the way in and on the way out, so cached plans can never be corrupted
// by callers mutating what they were handed.
type planCache struct {
	mu    sync.Mutex
	max   int
	byKey map[cacheKey]*cacheNode
	// Doubly-linked recency list: front = most recently used.
	front, back *cacheNode
	stats       *obs.PlannerStats
}

type cacheNode struct {
	key        cacheKey
	p          *plan.Plan
	prev, next *cacheNode
}

func newPlanCache(max int, stats *obs.PlannerStats) *planCache {
	if max <= 0 {
		return nil
	}
	return &planCache{max: max, byKey: make(map[cacheKey]*cacheNode, max), stats: stats}
}

// get returns an independent copy of the cached plan, marked with
// SearchIters 0 (a hit runs zero simulations). Safe on a nil cache.
func (c *planCache) get(k cacheKey) (*plan.Plan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.byKey[k]
	if !ok {
		return nil, false
	}
	c.moveToFront(n)
	p := n.p.Clone()
	p.SearchIters = 0
	return p, true
}

// put stores a copy of p under k, evicting the least recently used entry
// when full. It reports whether p was stored: false means a concurrent fill
// of the same key won the race and p's generation was wasted work — recorded
// on the duplicate-fill counter so the loss is observable (the planner's
// request coalescing exists to keep that counter at zero). Safe on a nil
// cache (reports false: nothing was retained).
func (c *planCache) put(k cacheKey, p *plan.Plan) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.byKey[k]; ok {
		// Concurrent fill of the same key: keep the existing entry.
		c.moveToFront(n)
		if c.stats != nil {
			c.stats.DuplicateFills.Inc()
		}
		return false
	}
	if len(c.byKey) >= c.max {
		evict := c.back
		c.unlink(evict)
		delete(c.byKey, evict.key)
		if c.stats != nil {
			c.stats.CacheEvictions.Inc()
		}
	}
	n := &cacheNode{key: k, p: p.Clone()}
	c.byKey[k] = n
	c.pushFront(n)
	return true
}

// len reports the current entry count. Safe on a nil cache.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

func (c *planCache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.front
	if c.front != nil {
		c.front.prev = n
	}
	c.front = n
	if c.back == nil {
		c.back = n
	}
}

func (c *planCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.front = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.back = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *planCache) moveToFront(n *cacheNode) {
	if c.front == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
