package planner

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// corpus builds the determinism test population: the Yahoo-derived 61
// workflows plus the Fig 7 topology.
func corpus(t testing.TB) []*workflow.Workflow {
	t.Helper()
	flows, err := workload.Yahoo(workload.DefaultYahooConfig())
	if err != nil {
		t.Fatalf("Yahoo: %v", err)
	}
	flows = append(flows, workload.Fig7("fig7", 1.0, simtime.Epoch, simtime.Epoch.Add(45*time.Minute)))
	return flows
}

var testCluster = plan.Caps{Maps: 300, Reduces: 180}

// TestPlannerByteIdenticalToSequential pins the planner's exactness
// contract: for every corpus workflow, the encoded plan bytes from the seed
// sequential generators, the parallel speculative search, a cold cache
// fill, and a warm cache hit are all identical — for both the typed and the
// single-pool generators.
func TestPlannerByteIdenticalToSequential(t *testing.T) {
	flows := corpus(t)
	pol := priority.HLF{}
	seq := New(Config{})
	par := New(Config{Workers: 8})
	cached := New(Config{Workers: 8, CacheSize: 256})

	for _, w := range flows {
		want, err := plan.GenerateCappedTyped(w, testCluster, pol, DefaultMargin)
		if err != nil {
			t.Fatalf("%s: GenerateCappedTyped: %v", w.Name, err)
		}
		wantBytes := want.Encode()
		for _, tc := range []struct {
			name string
			pl   *Planner
		}{{"sequential", seq}, {"parallel", par}, {"cache-cold", cached}, {"cache-warm", cached}} {
			got, err := tc.pl.Plan(w, testCluster, pol)
			if err != nil {
				t.Fatalf("%s/%s: Plan: %v", w.Name, tc.name, err)
			}
			if !bytes.Equal(got.Encode(), wantBytes) {
				t.Errorf("%s/%s: encoded plan differs from sequential", w.Name, tc.name)
			}
		}

		wantSingle, err := plan.GenerateCappedMargin(w, testCluster.Total(), pol, DefaultMargin)
		if err != nil {
			t.Fatalf("%s: GenerateCappedMargin: %v", w.Name, err)
		}
		for _, tc := range []struct {
			name string
			pl   *Planner
		}{{"parallel", par}, {"cache-cold", cached}, {"cache-warm", cached}} {
			got, err := tc.pl.PlanSingle(w, testCluster.Total(), pol)
			if err != nil {
				t.Fatalf("%s/%s: PlanSingle: %v", w.Name, tc.name, err)
			}
			if !bytes.Equal(got.Encode(), wantSingle.Encode()) {
				t.Errorf("%s/%s: encoded single-pool plan differs from sequential", w.Name, tc.name)
			}
		}
	}
}

func TestEstimateMatchesGenerateForPolicy(t *testing.T) {
	flows := corpus(t)
	pol := priority.LPF{}
	pl := New(Config{CacheSize: 128})
	for _, w := range flows {
		want, err := plan.GenerateForPolicy(w, 480, pol)
		if err != nil {
			t.Fatalf("%s: GenerateForPolicy: %v", w.Name, err)
		}
		for pass := 0; pass < 2; pass++ { // second pass is a cache hit
			got, err := pl.Estimate(w, 480, pol)
			if err != nil {
				t.Fatalf("%s: Estimate: %v", w.Name, err)
			}
			if !bytes.Equal(got.Encode(), want.Encode()) {
				t.Errorf("%s pass %d: Estimate differs from GenerateForPolicy", w.Name, pass)
			}
		}
	}
}

func TestCacheHitSkipsSimulation(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	pl := New(Config{CacheSize: 8, Obs: o})
	w := workload.Fig7("w", 1.0, simtime.Epoch, simtime.Epoch.Add(time.Hour))
	pol := priority.HLF{}

	first, err := pl.Plan(w, testCluster, pol)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if first.SearchIters < 2 {
		t.Errorf("cold plan SearchIters = %d, want >= 2 (full plan + probes)", first.SearchIters)
	}
	second, err := pl.Plan(w, testCluster, pol)
	if err != nil {
		t.Fatalf("Plan (warm): %v", err)
	}
	if second.SearchIters != 0 {
		t.Errorf("warm plan SearchIters = %d, want 0 (no simulations ran)", second.SearchIters)
	}
	st := pl.Stats()
	if got := st.CacheHits.Value(); got != 1 {
		t.Errorf("CacheHits = %d, want 1", got)
	}
	if got := st.CacheMisses.Value(); got != 1 {
		t.Errorf("CacheMisses = %d, want 1", got)
	}
	if got := st.Plans.Value(); got != 2 {
		t.Errorf("Plans = %d, want 2", got)
	}
	if got := st.Probes.Value(); got != int64(first.SearchIters) {
		t.Errorf("Probes = %d, want %d (the cold search's simulations)", got, first.SearchIters)
	}
}

// TestCacheKeyIsStructural checks both directions of the key: a renamed,
// time-shifted instance of the same DAG shape hits, while any structural
// difference misses.
func TestCacheKeyIsStructural(t *testing.T) {
	pl := New(Config{CacheSize: 32, Obs: obs.New(obs.NewRegistry(), nil)})
	pol := priority.HLF{}
	build := func(name string, release simtime.Time, bMaps int) *workflow.Workflow {
		return workflow.NewBuilder(name).
			Job("a", 10, 4, 30*time.Second, 60*time.Second).
			Job("b", bMaps, 2, 20*time.Second, 40*time.Second, "a").
			MustBuild(release, release.Add(30*time.Minute))
	}

	if _, err := pl.Plan(build("orig", simtime.Epoch, 8), testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	// Same shape, different name and release (same relative deadline): hit.
	if _, err := pl.Plan(build("renamed", simtime.Epoch.Add(5*time.Minute), 8), testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := pl.Stats().CacheHits.Value(); got != 1 {
		t.Fatalf("after renamed instance: CacheHits = %d, want 1", got)
	}
	// Different task count: miss.
	if _, err := pl.Plan(build("reshaped", simtime.Epoch, 9), testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := pl.Stats().CacheMisses.Value(); got != 2 {
		t.Errorf("after reshaped instance: CacheMisses = %d, want 2", got)
	}
	// Different policy under the same shape: miss.
	if _, err := pl.Plan(build("repoliced", simtime.Epoch, 8), testCluster, priority.LPF{}); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := pl.Stats().CacheMisses.Value(); got != 3 {
		t.Errorf("after policy change: CacheMisses = %d, want 3", got)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	pl := New(Config{CacheSize: 2, Obs: o})
	pol := priority.HLF{}
	mk := func(maps int) *workflow.Workflow {
		return workflow.NewBuilder(fmt.Sprintf("w%d", maps)).
			Job("a", maps, 2, 30*time.Second, 60*time.Second).
			MustBuild(simtime.Epoch, simtime.Epoch.Add(time.Hour))
	}
	w1, w2, w3 := mk(4), mk(5), mk(6)
	for _, w := range []*workflow.Workflow{w1, w2} {
		if _, err := pl.Plan(w, testCluster, pol); err != nil {
			t.Fatalf("Plan: %v", err)
		}
	}
	// Touch w1 so w2 is the LRU victim, then insert w3.
	if _, err := pl.Plan(w1, testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if _, err := pl.Plan(w3, testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := pl.Stats().CacheEvictions.Value(); got != 1 {
		t.Errorf("CacheEvictions = %d, want 1", got)
	}
	if got := pl.CacheLen(); got != 2 {
		t.Errorf("CacheLen = %d, want 2", got)
	}
	// w1 survived the eviction, w2 did not.
	hits := pl.Stats().CacheHits.Value()
	if _, err := pl.Plan(w1, testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := pl.Stats().CacheHits.Value(); got != hits+1 {
		t.Errorf("w1 evicted; CacheHits = %d, want %d", got, hits+1)
	}
	misses := pl.Stats().CacheMisses.Value()
	if _, err := pl.Plan(w2, testCluster, pol); err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if got := pl.Stats().CacheMisses.Value(); got != misses+1 {
		t.Errorf("w2 retained; CacheMisses = %d, want %d", got, misses+1)
	}
}

// TestCacheHandsOutIndependentCopies guards against a caller corrupting the
// cache by mutating a returned plan.
func TestCacheHandsOutIndependentCopies(t *testing.T) {
	pl := New(Config{CacheSize: 4})
	pol := priority.HLF{}
	w := workload.Fig7("w", 1.0, simtime.Epoch, simtime.Epoch.Add(time.Hour))
	first, err := pl.Plan(w, testCluster, pol)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want := first.Encode()
	first.Reqs[0].Cum = 1 << 30
	first.Ranks[0] = -1
	second, err := pl.Plan(w, testCluster, pol)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if !bytes.Equal(second.Encode(), want) {
		t.Error("mutating a returned plan corrupted the cached copy")
	}
}

func TestPlanAllMatchesIndividualPlans(t *testing.T) {
	flows := corpus(t)
	pol := priority.MPF{}
	pl := New(Config{Workers: 8, CacheSize: 128})
	batch, err := pl.PlanAll(flows, testCluster, pol)
	if err != nil {
		t.Fatalf("PlanAll: %v", err)
	}
	if len(batch) != len(flows) {
		t.Fatalf("PlanAll returned %d plans for %d flows", len(batch), len(flows))
	}
	for i, w := range flows {
		want, err := plan.GenerateCappedTyped(w, testCluster, pol, DefaultMargin)
		if err != nil {
			t.Fatalf("%s: GenerateCappedTyped: %v", w.Name, err)
		}
		if !bytes.Equal(batch[i].Encode(), want.Encode()) {
			t.Errorf("%s: batch plan differs from sequential", w.Name)
		}
	}
}

func TestPlanAllPropagatesError(t *testing.T) {
	good := workload.Fig7("good", 1.0, simtime.Epoch, simtime.Epoch.Add(time.Hour))
	flows := []*workflow.Workflow{good, good, good, good}
	pl := New(Config{Workers: 4})
	// A zero-reduce cluster cap is rejected by the typed generator.
	if _, err := pl.PlanAll(flows, plan.Caps{Maps: 10, Reduces: 0}, priority.HLF{}); err == nil {
		t.Fatal("PlanAll with bad caps: want error, got nil")
	}
}

// fakePlan builds a minimal plan whose Makespan drives search decisions.
func fakePlan(cap int, makespan time.Duration) *plan.Plan {
	return &plan.Plan{Cap: cap, Makespan: makespan}
}

// TestParallelSearchEquivalence drives the speculative searcher directly
// against SequentialSearch over makespan landscapes including non-monotone
// ones (list-scheduling anomalies), checking the chosen cap matches exactly
// and that speculation only ever adds probes.
func TestParallelSearchEquivalence(t *testing.T) {
	landscapes := []struct {
		name string
		f    func(cap int) time.Duration
	}{
		{"monotone", func(cap int) time.Duration {
			return time.Duration(1000/cap) * time.Second
		}},
		{"flat-feasible", func(cap int) time.Duration {
			return time.Second
		}},
		{"flat-infeasible", func(cap int) time.Duration {
			return time.Hour
		}},
		// Graham-anomaly-like: makespan jumps around with cap.
		{"non-monotone", func(cap int) time.Duration {
			ms := 1000 / cap
			if cap%3 == 1 {
				ms += 400
			}
			if cap%7 == 2 {
				ms -= 100
			}
			return time.Duration(ms) * time.Second
		}},
	}
	targets := []time.Duration{0, 5 * time.Second, 90 * time.Second, 2 * time.Hour}
	intervals := [][2]int{{1, 1}, {1, 2}, {2, 480}, {1, 1000}}

	for _, ls := range landscapes {
		for _, target := range targets {
			for _, iv := range intervals {
				probe := func(cap int) (*plan.Plan, error) { return fakePlan(cap, ls.f(cap)), nil }
				wantBest, wantProbes, err := plan.SequentialSearch(iv[0], iv[1], target, probe)
				if err != nil {
					t.Fatalf("SequentialSearch: %v", err)
				}
				for _, workers := range []int{1, 2, 4, 16} {
					search := newParallelSearch(workers, nil)
					gotBest, gotProbes, err := search(iv[0], iv[1], target, probe)
					if err != nil {
						t.Fatalf("%s target=%v iv=%v workers=%d: %v", ls.name, target, iv, workers, err)
					}
					switch {
					case wantBest == nil && gotBest != nil:
						t.Errorf("%s target=%v iv=%v workers=%d: got cap %d, want none", ls.name, target, iv, workers, gotBest.Cap)
					case wantBest != nil && gotBest == nil:
						t.Errorf("%s target=%v iv=%v workers=%d: got none, want cap %d", ls.name, target, iv, workers, wantBest.Cap)
					case wantBest != nil && gotBest.Cap != wantBest.Cap:
						t.Errorf("%s target=%v iv=%v workers=%d: got cap %d, want %d", ls.name, target, iv, workers, gotBest.Cap, wantBest.Cap)
					}
					if gotProbes < wantProbes {
						t.Errorf("%s target=%v iv=%v workers=%d: %d probes < sequential %d", ls.name, target, iv, workers, gotProbes, wantProbes)
					}
				}
			}
		}
	}
}

// TestParallelSearchErrors verifies the error contract: an error at a cap
// the sequential walk visits aborts the search; an error at a cap only
// speculation touches does not change the result.
func TestParallelSearchErrors(t *testing.T) {
	lo, hi := 1, 100
	target := 40 * time.Second
	f := func(cap int) time.Duration { return time.Duration(2500/cap) * time.Second }

	// Record the sequential probe path.
	var path []int
	wantBest, _, err := plan.SequentialSearch(lo, hi, target, func(cap int) (*plan.Plan, error) {
		path = append(path, cap)
		return fakePlan(cap, f(cap)), nil
	})
	if err != nil || wantBest == nil {
		t.Fatalf("SequentialSearch: best=%v err=%v", wantBest, err)
	}
	onPath := func(cap int) bool {
		for _, c := range path {
			if c == cap {
				return true
			}
		}
		return false
	}

	boom := errors.New("probe exploded")
	// Failing an on-path cap must surface the error.
	search := newParallelSearch(4, nil)
	_, _, err = search(lo, hi, target, func(cap int) (*plan.Plan, error) {
		if cap == path[len(path)-1] {
			return nil, boom
		}
		return fakePlan(cap, f(cap)), nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("on-path probe error: got %v, want %v", err, boom)
	}

	// Failing every off-path cap must not disturb the search.
	gotBest, _, err := search(lo, hi, target, func(cap int) (*plan.Plan, error) {
		if !onPath(cap) {
			return nil, boom
		}
		return fakePlan(cap, f(cap)), nil
	})
	if err != nil {
		t.Fatalf("off-path probe errors leaked: %v", err)
	}
	if gotBest == nil || gotBest.Cap != wantBest.Cap {
		t.Errorf("with failing off-path probes: got %+v, want cap %d", gotBest, wantBest.Cap)
	}
}

// TestPlannerConcurrentUse hammers one cached planner from many goroutines;
// run with -race this checks the cache and search locking.
func TestPlannerConcurrentUse(t *testing.T) {
	flows := corpus(t)[:24]
	pl := New(Config{Workers: 4, CacheSize: 16, Obs: obs.New(obs.NewRegistry(), nil)})
	pol := priority.HLF{}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < len(flows); i++ {
				w := flows[(g+i)%len(flows)]
				if _, err := pl.Plan(w, testCluster, pol); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent Plan: %v", err)
		}
	}
}
