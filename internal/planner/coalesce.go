package planner

import (
	"sync"
	"time"

	"repro/internal/plan"
)

// flightGroup coalesces concurrent generations of the same structural key
// (singleflight): the first requester simulates, every requester that
// arrives while that generation is in flight blocks on it and receives an
// independent clone. Combined with the structural cache this gives the
// shared planner its exactly-once property — N runner cells asking for the
// same (shape, caps, policy) key cost one simulation total, whether they
// arrive before (coalesced), during (coalesced), or after (cache hit) the
// fill.
//
// Coalescing works with or without the cache: with CacheSize <= 0 only
// requests that overlap an in-flight generation are deduplicated; with a
// cache the fill lands there before the flight entry is removed, so a
// requester can never slip between "flight entry gone" and "cache filled"
// and regenerate — which is what holds the duplicate-fill counter at zero.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

// flightCall is one in-flight generation. p and err are written exactly once,
// before done is closed; waiters read them only after <-done. waiters is
// guarded by flightGroup.mu and can no longer grow once the call has been
// removed from the map.
type flightCall struct {
	done    chan struct{}
	waiters int
	p       *plan.Plan
	err     error
}

// serve is the planner's common request path: cache lookup, then coalescing,
// then (for exactly one requester per key) the generation gen. Lock order is
// flight.mu before cache.mu; the leader fills the cache before removing its
// flight entry, so under the flight lock "no entry" implies the cache
// re-check sees any just-completed fill.
func (pl *Planner) serve(key cacheKey, start time.Time, gen func() (*plan.Plan, error)) (*plan.Plan, error) {
	// Fast path: a settled fill. Hits clone on the way out.
	if p, ok := pl.cache.get(key); ok {
		pl.stats.OnPlan(time.Since(start), true)
		return p, nil
	}

	pl.flight.mu.Lock()
	if c, ok := pl.flight.calls[key]; ok {
		// Same key is generating right now: wait for it instead of
		// simulating again.
		c.waiters++
		pl.flight.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, c.err
		}
		p := c.p.Clone()
		p.SearchIters = 0 // like a cache hit: this request ran no simulations
		pl.stats.OnPlanCoalesced(time.Since(start))
		return p, nil
	}
	// No flight entry. The generation that created the miss may have just
	// finished (fill happens before the entry is removed), so re-check the
	// cache before becoming the leader.
	if p, ok := pl.cache.get(key); ok {
		pl.flight.mu.Unlock()
		pl.stats.OnPlan(time.Since(start), true)
		return p, nil
	}
	c := &flightCall{done: make(chan struct{})}
	if pl.flight.calls == nil {
		pl.flight.calls = make(map[cacheKey]*flightCall)
	}
	pl.flight.calls[key] = c
	pl.flight.mu.Unlock()
	if pl.stats != nil {
		pl.stats.Inflight.Add(1)
	}

	p, err := gen()
	if err == nil {
		pl.cache.put(key, p)
		pl.recordGenerated(start, p)
	}

	pl.flight.mu.Lock()
	delete(pl.flight.calls, key)
	waiters := c.waiters
	pl.flight.mu.Unlock()
	if pl.stats != nil {
		pl.stats.Inflight.Add(-1)
	}
	if waiters > 0 && err == nil {
		// Publish a private copy: the leader's caller owns p and may mutate
		// it while waiters are still cloning.
		c.p = p.Clone()
	}
	c.err = err
	close(c.done)
	return p, err
}
