// Package planner is the plan-generation service sitting between workflow
// admission and the Algorithm 1 generators in internal/plan. It adds three
// throughput layers on top of the seed generators without changing a single
// plan byte:
//
//   - speculative parallel cap search (see newParallelSearch), which spends
//     idle cores on the bisection caps the sequential search might probe
//     next, so a single admission's wall clock shrinks on multi-core hosts;
//   - a structural LRU plan cache (see planCache), which recognizes that
//     production workloads are template-heavy — recurring instances and
//     renamed copies of the same DAG shape hash to one key — and serves
//     repeat requests without simulating at all;
//   - singleflight request coalescing (see flightGroup), which lets one
//     Planner be shared by many concurrent clients — runner cells, sessions
//     — with each distinct structural key simulated exactly once: the first
//     requester generates, concurrent same-key requesters block on that
//     generation and receive clones.
//
// Both layers are observable through obs.PlannerStats and both are exact:
// a plan served by the planner is byte-identical (per plan.Encode) to the
// one the seed plan.GenerateCapped* call would build, which the
// determinism tests in this package pin down.
package planner

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/workflow"
)

// DefaultMargin is the planning margin used when Config.Margin is zero,
// matching the facade's default (plan to 85% of the deadline, keeping a 15%
// runtime cushion as in the paper's evaluation).
const DefaultMargin = 0.85

// Config tunes a Planner. The zero value is the conservative seed setup:
// sequential search, no cache, default margin, no instrumentation.
type Config struct {
	// Workers is the number of concurrent Algorithm 1 probes a single cap
	// search may run, and the concurrency of PlanAll across workflows.
	// Values <= 1 mean fully sequential; callers wanting one worker per
	// core pass runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize is the maximum number of plans retained by the structural
	// cache; <= 0 disables caching.
	CacheSize int
	// Margin is the deadline fraction targeted by capped searches; zero
	// selects DefaultMargin.
	Margin float64
	// Obs receives planner metrics; nil disables instrumentation.
	Obs *obs.Obs
}

// Planner generates progress plans for workflow admission. Safe for
// concurrent use — and designed to be shared: one Planner serving many
// concurrent clients (runner cells, sessions) coalesces same-key requests
// so each distinct structural key is simulated exactly once (see
// flightGroup).
type Planner struct {
	workers int
	margin  float64
	cache   *planCache
	flight  flightGroup
	stats   *obs.PlannerStats
	search  plan.CapSearcher // nil selects plan.SequentialSearch
}

// New builds a Planner from cfg.
func New(cfg Config) *Planner {
	p := &Planner{workers: cfg.Workers, margin: cfg.Margin}
	if p.workers < 1 {
		p.workers = 1
	}
	if p.margin == 0 {
		p.margin = DefaultMargin
	}
	p.stats = cfg.Obs.NewPlannerStats()
	p.cache = newPlanCache(cfg.CacheSize, p.stats)
	if p.workers > 1 {
		p.search = newParallelSearch(p.workers, p.stats)
	}
	return p
}

// Margin returns the planning margin this Planner targets.
func (pl *Planner) Margin() float64 { return pl.margin }

// Stats exposes the planner's instruments (nil when Config.Obs was nil).
func (pl *Planner) Stats() *obs.PlannerStats { return pl.stats }

// CacheLen reports how many plans the structural cache currently holds.
func (pl *Planner) CacheLen() int { return pl.cache.len() }

// Plan produces the typed capped plan for w on a cluster with the given
// map/reduce slot pools — the planner-service equivalent of
// plan.GenerateCappedTyped at the configured margin.
func (pl *Planner) Plan(w *workflow.Workflow, cluster plan.Caps, pol priority.Policy) (*plan.Plan, error) {
	return pl.planTyped(w, cluster, pol, pl.search)
}

// planTyped implements Plan with an explicit searcher so PlanAll can force
// sequential searches while it parallelizes across workflows instead.
func (pl *Planner) planTyped(w *workflow.Workflow, cluster plan.Caps, pol priority.Policy, search plan.CapSearcher) (*plan.Plan, error) {
	start := time.Now()
	key := keyFor(w, variantTyped, cluster.Maps, cluster.Reduces, pl.margin, pol.Name())
	return pl.serve(key, start, func() (*plan.Plan, error) {
		return plan.GenerateCappedTypedWith(w, cluster, pol, pl.margin, search)
	})
}

// PlanSingle produces the single-pool capped plan for w on clusterSlots
// fungible slots — the planner-service equivalent of
// plan.GenerateCappedMargin at the configured margin.
func (pl *Planner) PlanSingle(w *workflow.Workflow, clusterSlots int, pol priority.Policy) (*plan.Plan, error) {
	start := time.Now()
	key := keyFor(w, variantSingle, clusterSlots, 0, pl.margin, pol.Name())
	return pl.serve(key, start, func() (*plan.Plan, error) {
		return plan.GenerateCappedMarginWith(w, clusterSlots, pol, pl.margin, pl.search)
	})
}

// Estimate produces the uncapped plan for w at a fixed slot count — the
// cached equivalent of plan.GenerateForPolicy, used by workload generators
// to derive deadlines from estimated makespans. No cap search runs, so
// only the cache layer applies.
func (pl *Planner) Estimate(w *workflow.Workflow, slots int, pol priority.Policy) (*plan.Plan, error) {
	start := time.Now()
	key := keyFor(w, variantUncapped, slots, 0, 1, pol.Name())
	return pl.serve(key, start, func() (*plan.Plan, error) {
		return plan.GenerateForPolicy(w, slots, pol)
	})
}

// PlanAll plans a batch of workflows against the same cluster, spreading
// whole workflows across the planner's workers; each workflow's own cap
// search runs sequentially, since the batch already saturates the cores.
// The returned slice is index-aligned with flows. The first error aborts
// the batch (in-flight plans finish, remaining entries may be nil).
func (pl *Planner) PlanAll(flows []*workflow.Workflow, cluster plan.Caps, pol priority.Policy) ([]*plan.Plan, error) {
	out := make([]*plan.Plan, len(flows))
	errs := make([]error, len(flows))
	workers := pl.workers
	if workers > len(flows) {
		workers = len(flows)
	}
	if workers <= 1 {
		for i, w := range flows {
			p, err := pl.planTyped(w, cluster, pol, pl.search)
			if err != nil {
				return out, err
			}
			out[i] = p
		}
		return out, nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(flows) {
					return
				}
				p, err := pl.planTyped(flows[i], cluster, pol, nil)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// recordGenerated accounts for a freshly generated (cache-miss) plan:
// latency, miss, and the simulations its search executed.
func (pl *Planner) recordGenerated(start time.Time, p *plan.Plan) {
	pl.stats.OnPlan(time.Since(start), false)
	if pl.stats != nil {
		pl.stats.Probes.Add(int64(p.SearchIters))
	}
}
