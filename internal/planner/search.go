package planner

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
)

// newParallelSearch returns a plan.CapSearcher that runs probes on up to
// workers goroutines while producing byte-identical plans to
// plan.SequentialSearch.
//
// Bisection cannot simply be parallelized by probing a ladder of caps and
// picking the cheapest feasible one: list scheduling makes makespan
// non-monotone in the cap (Graham's anomalies), so any search that narrows
// differently from the sequential bisection can settle on a different cap.
// Instead the searcher is speculative. The caps the sequential search could
// probe next form the frontier of a binary tree over [lo, hi]: the current
// mid, then the two mids the success/failure branches would visit, and so
// on. Each round probes one frontier (breadth-first, real mid first)
// concurrently and memoizes results; the sequential walk then advances over
// memoized results only, so every narrowing decision is exactly the
// sequential one. Half of each speculative level is off the true path —
// that waste is the price of parallel wall-clock speedup, and it is kept
// honest in the accounting: every simulation actually executed counts
// toward probes (and Plan.SearchIters), while probes skipped because the
// interval narrowed past them count as cancellations in stats.
//
// Errors follow the CapSearcher contract: a probe error at a cap the
// sequential walk reaches aborts the search; errors at speculative caps the
// walk never visits are discarded.
func newParallelSearch(workers int, stats *obs.PlannerStats) plan.CapSearcher {
	return func(lo, hi int, target time.Duration, probe plan.Probe) (*plan.Plan, int, error) {
		s := &specSearch{lo: lo, hi: hi, target: target, memo: make(map[int]specResult)}
		// Speculate one bisection level per worker-doubling: depth d covers
		// up to 2^d - 1 caps, enough to keep every worker busy each round.
		depth := 1
		for (1<<depth)-1 < workers && depth < 10 {
			depth++
		}
		for {
			s.mu.Lock()
			if s.err != nil || s.lo >= s.hi {
				best, probes, cancelled, err := s.best, s.executed, s.cancelled, s.err
				s.mu.Unlock()
				if err != nil {
					return nil, probes, err
				}
				if stats != nil {
					stats.ProbesCancelled.Add(int64(cancelled))
				}
				return best, probes, nil
			}
			caps := frontier(s.lo, s.hi, depth, s.memo)
			s.mu.Unlock()
			s.runRound(caps, workers, probe)
		}
	}
}

type specSearch struct {
	mu        sync.Mutex
	lo, hi    int
	target    time.Duration
	best      *plan.Plan
	memo      map[int]specResult
	executed  int
	cancelled int
	err       error
}

type specResult struct {
	p   *plan.Plan
	err error
}

// frontier lists the caps the sequential bisection of [lo, hi) could probe
// within the next depth levels, breadth-first so the guaranteed-needed
// current mid comes first. Intervals on one level are pairwise disjoint, so
// the caps are distinct; already-memoized caps are skipped.
func frontier(lo, hi, depth int, memo map[int]specResult) []int {
	caps := make([]int, 0, (1<<depth)-1)
	level := [][2]int{{lo, hi}}
	for d := 0; d < depth && len(level) > 0; d++ {
		next := make([][2]int, 0, 2*len(level))
		for _, iv := range level {
			l, h := iv[0], iv[1]
			if l >= h {
				continue
			}
			mid := l + (h-l)/2
			if _, ok := memo[mid]; !ok {
				caps = append(caps, mid)
			}
			// Success branch keeps [l, mid]; failure branch moves to [mid+1, h].
			next = append(next, [2]int{l, mid}, [2]int{mid + 1, h})
		}
		level = next
	}
	return caps
}

// runRound probes the frontier caps on up to workers goroutines. A cap that
// has fallen outside the narrowed interval by the time a worker picks it up
// is skipped as cancelled. The round's results land in the memo and the
// sequential walk advances as they do; the frontier always contains the
// walk's current mid, so every round makes progress.
func (s *specSearch) runRound(caps []int, workers int, probe plan.Probe) {
	if len(caps) == 0 {
		// Everything in range was memoized (stale results from before a
		// narrowing); advance consumes them.
		s.mu.Lock()
		s.advanceLocked()
		s.mu.Unlock()
		return
	}
	if workers > len(caps) {
		workers = len(caps)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(caps) {
					return
				}
				cap := caps[i]
				s.mu.Lock()
				if s.err != nil || s.lo >= s.hi || cap < s.lo || cap > s.hi {
					s.cancelled++
					s.mu.Unlock()
					continue
				}
				s.executed++
				s.mu.Unlock()
				p, err := probe(cap)
				s.mu.Lock()
				s.memo[cap] = specResult{p: p, err: err}
				s.advanceLocked()
				s.mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// advanceLocked replays the sequential bisection over memoized results for
// as far as they reach. Called with s.mu held.
func (s *specSearch) advanceLocked() {
	for s.err == nil && s.lo < s.hi {
		mid := s.lo + (s.hi-s.lo)/2
		res, ok := s.memo[mid]
		if !ok {
			return
		}
		if res.err != nil {
			s.err = res.err
			return
		}
		if res.p.Makespan <= s.target {
			s.best, s.hi = res.p, mid
		} else {
			s.lo = mid + 1
		}
	}
}
