// Package ordered defines the ordered-set contract shared by the Double Skip
// List's backing structures: the skip list (the paper's choice), the balanced
// search tree baseline, and the naive sorted-slice baseline compared in
// Fig 13(a) of the WOHA paper.
package ordered

// Set is a dynamic ordered set of unique keys.
//
// Keys must be unique under the set's comparator: inserting a key equal to an
// existing one (neither less nor greater) is the caller's bug and the
// behaviour is implementation-defined. The WOHA scheduler guarantees
// uniqueness by composing every key with the workflow's arrival index.
type Set[K any] interface {
	// Insert adds key to the set.
	Insert(key K)
	// Delete removes key from the set, reporting whether it was present.
	Delete(key K) bool
	// Min returns the smallest key. ok is false when the set is empty.
	Min() (key K, ok bool)
	// DeleteMin removes and returns the smallest key. ok is false when the
	// set is empty. Implementations optimize this head-of-list case; it is
	// the dominant operation in Algorithm 2 of the paper.
	DeleteMin() (key K, ok bool)
	// Move removes old and inserts new as a single operation, reporting
	// whether old was present (new is not inserted when old was absent).
	// Implementations reuse old's storage and, when new sorts after old,
	// resume the position search from old's location instead of the root —
	// the Double Skip List's settle path always moves keys forward in time,
	// so Move turns its delete+reinsert pair into a pointer splice.
	Move(old, new K) bool
	// Len returns the number of keys in the set.
	Len() int
	// Ascend calls fn on every key in ascending order until fn returns
	// false or the keys are exhausted. fn must not mutate the set.
	Ascend(fn func(key K) bool)
}

// Less is a strict weak ordering over K. Less(a, b) && Less(b, a) must never
// both hold, and !Less(a, b) && !Less(b, a) means a and b are equal.
type Less[K any] func(a, b K) bool
