// Package federation runs N cluster simulators behind one shared virtual
// clock with a workflow-to-cluster routing layer on top — the control plane
// the ROADMAP names as its first open item. The federation loop always
// advances the globally-earliest member (cluster.Peek/StepTo), injects
// routed workflows mid-run (cluster.SubmitLive), and hands routing policies
// per-cluster load snapshots refreshed at a configurable staleness interval,
// so experiments can measure how stale observability degrades deadline-miss
// rates — a production failure mode the paper never touches.
//
// Everything is deterministic: same members, same submissions, same router,
// and same staleness interval reproduce byte-identical routing decisions and
// per-workflow outcomes (pinned by TestFederationDeterminism), and a
// single-member federation at staleness 0 is byte-identical to a plain
// cluster.Sim run of the same workload (TestSingleClusterEquivalence).
package federation

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Snapshot is one member cluster's load view as the routers last saw it.
// TakenAt is the federation-clock instant the view was refreshed; the view
// itself may describe an earlier local instant (Load.At) when the member had
// no events to process since.
type Snapshot struct {
	Load    cluster.Load
	TakenAt simtime.Time
}

// Age returns how stale the snapshot is at federation instant now.
func (s Snapshot) Age(now simtime.Time) time.Duration {
	return now.Sub(s.TakenAt)
}

// Router decides which member cluster a workflow runs on. Route receives the
// workflow, its WOHA plan (nil for plan-less schedulers), and every member's
// last load snapshot, indexed by cluster; it returns the chosen cluster
// index. Implementations must be deterministic — no map iteration, no
// randomness — so federation runs replay exactly.
type Router interface {
	Name() string
	Route(w *workflow.Workflow, p *plan.Plan, snaps []Snapshot) int
}

// The built-in routing policy names.
const (
	RouterRoundRobin  = "round-robin"
	RouterLeastLoaded = "least-loaded"
	RouterSlack       = "slack"
)

// RouterNames lists the built-in routing policies accepted by NewRouter, in
// presentation order.
func RouterNames() []string {
	return []string{RouterRoundRobin, RouterLeastLoaded, RouterSlack}
}

// NewRouter builds a built-in router by name.
func NewRouter(name string) (Router, error) {
	switch name {
	case RouterRoundRobin:
		return &RoundRobin{}, nil
	case RouterLeastLoaded:
		return LeastLoaded{}, nil
	case RouterSlack:
		return SlackAware{}, nil
	default:
		return nil, fmt.Errorf("federation: unknown router %q (have %v)", name, RouterNames())
	}
}

// RoundRobin routes workflows to clusters in rotation, ignoring load
// entirely — the baseline the load-aware policies are judged against.
type RoundRobin struct {
	next int
}

func (r *RoundRobin) Name() string { return "round-robin" }

func (r *RoundRobin) Route(_ *workflow.Workflow, _ *plan.Plan, snaps []Snapshot) int {
	id := r.next % len(snaps)
	r.next = (r.next + 1) % len(snaps)
	return id
}

// backlogPerSlot is the snapshot's owed slot-time normalized by capacity:
// the estimated wait a new arrival sees before the cluster can start it.
func backlogPerSlot(s Snapshot) time.Duration {
	slots := s.Load.MapSlots + s.Load.ReduceSlots
	if slots <= 0 {
		return s.Load.Backlog
	}
	return s.Load.Backlog / time.Duration(slots)
}

// LeastLoaded routes each workflow to the cluster with the smallest backlog
// per slot (ties break to the lowest index), balancing queued work across
// heterogeneous capacities.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Route(_ *workflow.Workflow, _ *plan.Plan, snaps []Snapshot) int {
	best := 0
	bestWait := backlogPerSlot(snaps[0])
	for i := 1; i < len(snaps); i++ {
		if w := backlogPerSlot(snaps[i]); w < bestWait {
			best, bestWait = i, w
		}
	}
	return best
}

// SlackAware routes each workflow to the cluster that leaves it the most
// deadline slack: the relative deadline minus the cluster's estimated
// backlog wait minus the workflow's own estimated run time there. The run
// estimate is the plan's standalone makespan when a plan exists (Algorithm 1
// already simulated the workflow under its cap), else the workflow's serial
// work spread over the cluster's slots. Ties break to the lowest index, so
// equally-idle clusters absorb arrivals in index order.
type SlackAware struct{}

func (SlackAware) Name() string { return "slack" }

func (SlackAware) Route(w *workflow.Workflow, p *plan.Plan, snaps []Snapshot) int {
	rel := w.RelativeDeadline()
	best := 0
	bestSlack := time.Duration(0)
	for i := range snaps {
		run := time.Duration(0)
		if p != nil && p.Makespan > 0 {
			run = p.Makespan
		} else {
			slots := snaps[i].Load.MapSlots + snaps[i].Load.ReduceSlots
			if slots > 0 {
				run = w.SerialWork() / time.Duration(slots)
			} else {
				run = w.SerialWork()
			}
		}
		slack := rel - backlogPerSlot(snaps[i]) - run
		if i == 0 || slack > bestSlack {
			best, bestSlack = i, slack
		}
	}
	return best
}
