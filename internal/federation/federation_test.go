package federation_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// fedFlows is a workload shaped to cross every SubmitLive path: DAG-bearing
// workflows, a same-instant release pair (injection order among ties), and a
// long arrival gap that forces the drained-run heartbeat suppression before
// the next workflow lands mid-run.
func fedFlows() []*workflow.Workflow {
	mk := func(name string, release, deadline simtime.Time) *workflow.Workflow {
		return workflow.NewBuilder(name).
			Job("a", 12, 4, 30*time.Second, 60*time.Second).
			Job("b", 8, 2, 25*time.Second, 50*time.Second, "a").
			Job("c", 6, 3, 20*time.Second, 40*time.Second, "a").
			Job("d", 4, 2, 15*time.Second, 30*time.Second, "b", "c").
			MustBuild(release, deadline)
	}
	small := func(name string, release, deadline simtime.Time) *workflow.Workflow {
		return workflow.NewBuilder(name).
			Job("a", 10, 3, 40*time.Second, 30*time.Second).
			Job("b", 5, 2, 20*time.Second, 25*time.Second, "a").
			MustBuild(release, deadline)
	}
	return []*workflow.Workflow{
		mk("w1", 0, simtime.FromSeconds(900)),
		small("w2", simtime.FromSeconds(20), simtime.FromSeconds(700)),
		// Same-release pair: routing and injection order must stay stable.
		small("w3", simtime.FromSeconds(60), simtime.FromSeconds(500)),
		mk("w4", simtime.FromSeconds(60), simtime.FromSeconds(1100)),
		// Long gap: members drain fully and park their heartbeat grids
		// before this one arrives.
		small("w5", simtime.FromSeconds(2400), simtime.FromSeconds(3000)),
		mk("w6", simtime.FromSeconds(2450), simtime.FromSeconds(3600)),
	}
}

func fedConfig(seed int64) cluster.Config {
	return cluster.Config{
		Nodes: 6, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		HeartbeatInterval: 3 * time.Second,
		Noise:             0.3, Seed: seed,
	}
}

type fedScheduler struct {
	name string
	make func() cluster.Policy
	prio priority.Policy
}

func fedSchedulers() []fedScheduler {
	return []fedScheduler{
		{"EDF", func() cluster.Policy { return scheduler.NewEDF() }, nil},
		{"WOHA-LPF", func() cluster.Policy {
			return core.NewScheduler(core.Options{Seed: 11, PolicyName: priority.LPF{}.Name()})
		}, priority.LPF{}},
	}
}

func fedPlans(t *testing.T, flows []*workflow.Workflow, cfg cluster.Config, prio priority.Policy) []*plan.Plan {
	t.Helper()
	plans := make([]*plan.Plan, len(flows))
	if prio == nil {
		return plans
	}
	caps := plan.Caps{Maps: cfg.MapSlots(), Reduces: cfg.ReduceSlots()}
	for i, w := range flows {
		p, err := plan.GenerateCappedTyped(w, caps, prio, 0.85)
		if err != nil {
			t.Fatalf("plan %s: %v", w.Name, err)
		}
		plans[i] = p
	}
	return plans
}

// sortedByRelease returns flow indices in the stable release order the
// federation routes in.
func sortedByRelease(flows []*workflow.Workflow) []int {
	order := make([]int, len(flows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return flows[order[a]].Release < flows[order[b]].Release
	})
	return order
}

// TestSingleClusterEquivalence pins the tentpole acceptance criterion: a
// one-member federation at snapshot staleness 0 produces a member Result
// byte-identical to a plain cluster.Sim run of the same workload — SubmitLive
// mid-run injection is indistinguishable from pre-run Submit.
func TestSingleClusterEquivalence(t *testing.T) {
	flows := fedFlows()
	order := sortedByRelease(flows)
	for _, sched := range fedSchedulers() {
		for _, spec := range []bool{false, true} {
			for _, fail := range []bool{false, true} {
				name := fmt.Sprintf("%s/spec=%v/fail=%v", sched.name, spec, fail)
				t.Run(name, func(t *testing.T) {
					cfg := fedConfig(7)
					if spec {
						cfg.SpeculativeSlowdown = 1.3
						cfg.StragglerProb = 0.15
						cfg.StragglerFactor = 4
					}
					if fail {
						cfg.Failures = []cluster.Failure{
							{Node: 1, At: simtime.FromSeconds(45), Downtime: 60 * time.Second},
							{Node: 4, At: simtime.FromSeconds(90)}, // permanent
						}
					}
					plans := fedPlans(t, flows, cfg, sched.prio)

					plainSim, err := cluster.New(cfg, sched.make(), nil)
					if err != nil {
						t.Fatal(err)
					}
					for _, i := range order {
						if err := plainSim.Submit(flows[i], plans[i]); err != nil {
							t.Fatal(err)
						}
					}
					plain, err := plainSim.Run()
					if err != nil {
						t.Fatal(err)
					}
					plainSim.Release()

					memberSim, err := cluster.New(cfg, sched.make(), nil)
					if err != nil {
						t.Fatal(err)
					}
					fed, err := federation.New(federation.Config{
						Router:          &federation.RoundRobin{},
						SnapshotRefresh: 0,
					}, []*cluster.Simulator{memberSim})
					if err != nil {
						t.Fatal(err)
					}
					for i, w := range flows {
						if err := fed.Submit(w, plans[i]); err != nil {
							t.Fatal(err)
						}
					}
					res, err := fed.Run()
					if err != nil {
						t.Fatal(err)
					}
					memberSim.Release()

					if !reflect.DeepEqual(plain, res.Clusters[0]) {
						t.Errorf("federated N=1 diverged from plain run:\nplain: %+v\nfed:   %+v",
							plain, res.Clusters[0])
					}
					for _, rt := range res.Routes {
						if rt.SnapshotAge != 0 {
							t.Errorf("staleness 0 recorded snapshot age %v for %s",
								rt.SnapshotAge, rt.Workflow)
						}
					}
				})
			}
		}
	}
}

// TestRoundRobinMatchesPartitionedRuns cross-checks multi-member injection:
// a 3-member round-robin federation must produce, per member, exactly the
// Result of a plain simulator run over that member's routed partition.
func TestRoundRobinMatchesPartitionedRuns(t *testing.T) {
	flows := fedFlows()
	order := sortedByRelease(flows)
	const n = 3
	for _, sched := range fedSchedulers() {
		t.Run(sched.name, func(t *testing.T) {
			cfg := fedConfig(7)
			plans := fedPlans(t, flows, cfg, sched.prio)

			sims := make([]*cluster.Simulator, n)
			for i := range sims {
				var err error
				if sims[i], err = cluster.New(cfg, sched.make(), nil); err != nil {
					t.Fatal(err)
				}
			}
			fed, err := federation.New(federation.Config{
				Router:          &federation.RoundRobin{},
				SnapshotRefresh: 30 * time.Second,
			}, sims)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range flows {
				if err := fed.Submit(w, plans[i]); err != nil {
					t.Fatal(err)
				}
			}
			res, err := fed.Run()
			if err != nil {
				t.Fatal(err)
			}

			for member := 0; member < n; member++ {
				sim, err := cluster.New(cfg, sched.make(), nil)
				if err != nil {
					t.Fatal(err)
				}
				for pos, i := range order {
					if pos%n != member {
						continue
					}
					if err := sim.Submit(flows[i], plans[i]); err != nil {
						t.Fatal(err)
					}
				}
				want, err := sim.Run()
				if err != nil {
					t.Fatal(err)
				}
				sim.Release()
				if !reflect.DeepEqual(want, res.Clusters[member]) {
					t.Errorf("member %d diverged from its partitioned plain run:\nplain: %+v\nfed:   %+v",
						member, want, res.Clusters[member])
				}
			}
			if got := len(res.Workflows); got != len(flows) {
				t.Fatalf("merged %d workflow rows, want %d", got, len(flows))
			}
			for pos, rt := range res.Routes {
				if want := flows[order[pos]].Name; rt.Workflow != want {
					t.Errorf("route %d = %s, want %s", pos, rt.Workflow, want)
				}
				if res.Workflows[pos].Name != rt.Workflow {
					t.Errorf("merged row %d = %s, want %s", pos,
						res.Workflows[pos].Name, rt.Workflow)
				}
			}
		})
	}
}

// TestFederationDeterminism pins the reproducibility criterion: same seed,
// same router, same staleness ⇒ byte-identical routing log and outcomes.
func TestFederationDeterminism(t *testing.T) {
	flows := fedFlows()
	for _, routerName := range federation.RouterNames() {
		t.Run(routerName, func(t *testing.T) {
			once := func() *federation.Result {
				sched := fedSchedulers()[1] // WOHA-LPF
				cfg := fedConfig(7)
				plans := fedPlans(t, flows, cfg, sched.prio)
				sims := make([]*cluster.Simulator, 3)
				for i := range sims {
					var err error
					if sims[i], err = cluster.New(cfg, sched.make(), nil); err != nil {
						t.Fatal(err)
					}
				}
				router, err := federation.NewRouter(routerName)
				if err != nil {
					t.Fatal(err)
				}
				fed, err := federation.New(federation.Config{
					Router:          router,
					SnapshotRefresh: 2 * time.Minute,
				}, sims)
				if err != nil {
					t.Fatal(err)
				}
				for i, w := range flows {
					if err := fed.Submit(w, plans[i]); err != nil {
						t.Fatal(err)
					}
				}
				res, err := fed.Run()
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range sims {
					s.Release()
				}
				return res
			}
			first, second := once(), once()
			if !reflect.DeepEqual(first.Routes, second.Routes) {
				t.Errorf("routing log diverged:\nfirst:  %+v\nsecond: %+v",
					first.Routes, second.Routes)
			}
			if !reflect.DeepEqual(first.MissVector(), second.MissVector()) {
				t.Errorf("miss vector diverged:\nfirst:  %v\nsecond: %v",
					first.MissVector(), second.MissVector())
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("results diverged:\nfirst:  %+v\nsecond: %+v", first, second)
			}
		})
	}
}

// TestSnapshotAgeBounded checks the staleness contract: every recorded
// decision age stays below the refresh interval (a view at least that old is
// retaken before the router sees it).
func TestSnapshotAgeBounded(t *testing.T) {
	flows := fedFlows()
	const refresh = 90 * time.Second
	sims := make([]*cluster.Simulator, 2)
	for i := range sims {
		var err error
		if sims[i], err = cluster.New(fedConfig(7), scheduler.NewEDF(), nil); err != nil {
			t.Fatal(err)
		}
	}
	fed, err := federation.New(federation.Config{
		Router:          federation.LeastLoaded{},
		SnapshotRefresh: refresh,
	}, sims)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range flows {
		if err := fed.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := fed.Run()
	if err != nil {
		t.Fatal(err)
	}
	sawStale := false
	for _, rt := range res.Routes {
		if rt.SnapshotAge >= refresh {
			t.Errorf("route of %s decided on a view %v old, refresh interval %v",
				rt.Workflow, rt.SnapshotAge, refresh)
		}
		if rt.SnapshotAge > 0 {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("workload never exercised a stale snapshot; weaken the test or tighten releases")
	}
}

func loadSnap(backlog time.Duration, mapSlots, reduceSlots int) federation.Snapshot {
	return federation.Snapshot{Load: cluster.Load{
		Backlog: backlog, MapSlots: mapSlots, ReduceSlots: reduceSlots,
	}}
}

func TestRoundRobinCycles(t *testing.T) {
	r := &federation.RoundRobin{}
	snaps := make([]federation.Snapshot, 3)
	for i, want := range []int{0, 1, 2, 0, 1} {
		if got := r.Route(nil, nil, snaps); got != want {
			t.Fatalf("route %d = %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoadedNormalizesBySlots(t *testing.T) {
	snaps := []federation.Snapshot{
		loadSnap(100*time.Second, 4, 1),  // 20s per slot
		loadSnap(120*time.Second, 10, 2), // 10s per slot: least loaded
		loadSnap(120*time.Second, 10, 2), // tie loses to lower index
	}
	if got := (federation.LeastLoaded{}).Route(nil, nil, snaps); got != 1 {
		t.Fatalf("least-loaded chose %d, want 1", got)
	}
}

func TestSlackAwarePrefersFeasibleCluster(t *testing.T) {
	w := workflow.NewBuilder("w").
		Job("a", 4, 2, 30*time.Second, 30*time.Second).
		MustBuild(0, simtime.FromSeconds(300))
	snaps := []federation.Snapshot{
		loadSnap(1200*time.Second, 4, 2), // 200s wait: would blow the deadline
		loadSnap(120*time.Second, 4, 2),  // 20s wait: plenty of slack
	}
	if got := (federation.SlackAware{}).Route(w, nil, snaps); got != 1 {
		t.Fatalf("slack router chose %d, want 1", got)
	}
	// With a plan, the standalone makespan replaces the serial-work estimate
	// but the backlog ordering still dominates here.
	p := &plan.Plan{Makespan: 60 * time.Second}
	if got := (federation.SlackAware{}).Route(w, p, snaps); got != 1 {
		t.Fatalf("slack router with plan chose %d, want 1", got)
	}
}
