package federation

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Config parameterizes a federation run.
type Config struct {
	// Router picks the member cluster for each arriving workflow.
	Router Router
	// SnapshotRefresh bounds snapshot staleness: a member's load view older
	// than this at decision time is retaken before the router sees it. 0
	// refreshes before every decision (perfect observability); larger
	// values let the router act on increasingly stale views — the knob the
	// staleness sweep turns.
	SnapshotRefresh time.Duration
	// Obs optionally instruments the run (woha_fed_* series); nil disables.
	Obs *obs.Obs
}

// Route records one routing decision.
type Route struct {
	// Workflow and Tenant identify the routed workflow.
	Workflow string
	Tenant   string
	// Cluster is the member index chosen.
	Cluster int
	// At is the decision instant (the workflow's release).
	At simtime.Time
	// SnapshotAge is the stalest load view the router decided on (0 when
	// every view was refreshed at the decision).
	SnapshotAge time.Duration
}

// Result aggregates a federation run: per-member cluster results plus the
// routing log and the merged per-workflow outcomes in routed order.
type Result struct {
	Router          string
	SnapshotRefresh time.Duration
	// Clusters holds each member's own result, indexed by cluster.
	Clusters []*cluster.Result
	// Routes logs every routing decision in arrival order.
	Routes []Route
	// Workflows merges the members' per-workflow outcomes back into global
	// arrival order (the order of Routes).
	Workflows []cluster.WorkflowResult
}

// DeadlineMisses counts workflows that missed their deadline, rejected ones
// included.
func (r *Result) DeadlineMisses() int {
	n := 0
	for _, w := range r.Workflows {
		if !w.Met {
			n++
		}
	}
	return n
}

// MissRatio is the deadline violation ratio over all routed workflows.
func (r *Result) MissRatio() float64 {
	if len(r.Workflows) == 0 {
		return 0
	}
	return float64(r.DeadlineMisses()) / float64(len(r.Workflows))
}

// MissVector reports each workflow's deadline outcome in routed order — the
// vector the determinism pin compares across runs.
func (r *Result) MissVector() []bool {
	v := make([]bool, len(r.Workflows))
	for i, w := range r.Workflows {
		v[i] = !w.Met
	}
	return v
}

// RoutedPerCluster counts routed workflows by member.
func (r *Result) RoutedPerCluster() []int {
	counts := make([]int, len(r.Clusters))
	for _, rt := range r.Routes {
		counts[rt.Cluster]++
	}
	return counts
}

// arrival is one submitted workflow awaiting its release instant.
type arrival struct {
	w *workflow.Workflow
	p *plan.Plan
	// seq preserves submission order among equal releases.
	seq int
}

// Federation owns N member simulators and advances them in lockstep under
// one virtual clock. Construct with New, Submit workflows, then Run once.
type Federation struct {
	cfg   Config
	sims  []*cluster.Simulator
	snaps []Snapshot
	// fresh marks members whose snapshot has been taken at least once; a
	// never-taken view is always refreshed regardless of the interval.
	fresh   []bool
	pending []arrival
	stats   *obs.FedStats
	ran     bool
}

// New builds a federation over the given member simulators. The simulators
// must be freshly constructed — submitted-to but not yet run or started; the
// federation starts and finishes them itself. Each member keeps its own
// policy, admission controller, and configuration.
func New(cfg Config, sims []*cluster.Simulator) (*Federation, error) {
	if len(sims) == 0 {
		return nil, fmt.Errorf("federation: no member clusters")
	}
	if cfg.Router == nil {
		return nil, fmt.Errorf("federation: nil router")
	}
	if cfg.SnapshotRefresh < 0 {
		return nil, fmt.Errorf("federation: negative snapshot refresh %v", cfg.SnapshotRefresh)
	}
	return &Federation{
		cfg:   cfg,
		sims:  sims,
		snaps: make([]Snapshot, len(sims)),
		fresh: make([]bool, len(sims)),
		stats: cfg.Obs.NewFedStats(cfg.Router.Name(), len(sims)),
	}, nil
}

// Submit queues a workflow for routing at its release instant. p is the WOHA
// plan and may be nil for plan-less member policies. Must precede Run.
func (f *Federation) Submit(w *workflow.Workflow, p *plan.Plan) error {
	if f.ran {
		return fmt.Errorf("federation: Submit after Run")
	}
	if err := w.Validated(); err != nil {
		return fmt.Errorf("federation: %w", err)
	}
	f.pending = append(f.pending, arrival{w: w, p: p, seq: len(f.pending)})
	return nil
}

// Run executes the federated simulation to completion. Each iteration
// advances whichever happens first on the shared clock: the next pending
// workflow release (routed and injected into its member before that member
// processes the instant, so the arrival joins the instant's batch exactly
// where a pre-run submission would have) or the earliest pending event
// across members (ties to the lowest cluster index, which is inert — member
// queues are independent).
func (f *Federation) Run() (*Result, error) {
	if f.ran {
		return nil, fmt.Errorf("federation: Run called twice")
	}
	f.ran = true
	sort.SliceStable(f.pending, func(i, j int) bool {
		return f.pending[i].w.Release < f.pending[j].w.Release
	})
	for i, s := range f.sims {
		if err := s.Start(); err != nil {
			return nil, fmt.Errorf("federation: cluster %d: %w", i, err)
		}
	}
	res := &Result{
		Router:          f.cfg.Router.Name(),
		SnapshotRefresh: f.cfg.SnapshotRefresh,
	}
	idx := 0
	for {
		evCluster := -1
		var nextEv simtime.Time
		for i, s := range f.sims {
			if at, ok := s.Peek(); ok && (evCluster < 0 || at < nextEv) {
				evCluster, nextEv = i, at
			}
		}
		if idx < len(f.pending) && (evCluster < 0 || f.pending[idx].w.Release <= nextEv) {
			if err := f.route(res, &f.pending[idx]); err != nil {
				return nil, err
			}
			idx++
			continue
		}
		if evCluster < 0 {
			break
		}
		f.sims[evCluster].StepTo(nextEv)
	}
	for i, s := range f.sims {
		cr, err := s.Finish()
		if err != nil {
			return nil, fmt.Errorf("federation: cluster %d: %w", i, err)
		}
		res.Clusters = append(res.Clusters, cr)
	}
	// Merge per-member outcome rows back into routed order: each member's
	// Workflows slice is in its own submission order, so a per-member
	// cursor walks it in step with the routing log.
	cursors := make([]int, len(f.sims))
	for _, rt := range res.Routes {
		cr := res.Clusters[rt.Cluster]
		res.Workflows = append(res.Workflows, cr.Workflows[cursors[rt.Cluster]])
		cursors[rt.Cluster]++
	}
	return res, nil
}

// route refreshes stale snapshots, asks the router for a member, and injects
// the workflow into it.
func (f *Federation) route(res *Result, a *arrival) error {
	now := a.w.Release
	var maxAge time.Duration
	for i := range f.snaps {
		age := f.snaps[i].Age(now)
		// A view exactly SnapshotRefresh old is retaken; at interval 0
		// every decision therefore sees perfectly fresh views.
		if !f.fresh[i] || age >= f.cfg.SnapshotRefresh {
			load := f.sims[i].LoadView()
			f.snaps[i] = Snapshot{Load: load, TakenAt: now}
			f.fresh[i] = true
			f.stats.OnRefresh(i, load.ActiveWorkflows,
				load.FreeMaps+load.FreeReduces, load.Backlog)
			age = 0
		}
		if age > maxAge {
			maxAge = age
		}
	}
	id := f.cfg.Router.Route(a.w, a.p, f.snaps)
	if id < 0 || id >= len(f.sims) {
		return fmt.Errorf("federation: router %s chose cluster %d of %d for %q",
			f.cfg.Router.Name(), id, len(f.sims), a.w.Name)
	}
	f.stats.OnRoute(id, maxAge)
	res.Routes = append(res.Routes, Route{
		Workflow:    a.w.Name,
		Tenant:      a.w.Tenant,
		Cluster:     id,
		At:          now,
		SnapshotAge: maxAge,
	})
	if err := f.sims[id].SubmitLive(a.w, a.p); err != nil {
		return fmt.Errorf("federation: cluster %d: %w", id, err)
	}
	return nil
}
