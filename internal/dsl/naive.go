package dsl

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/simtime"
)

// Naive is the strawman queue from Section IV-B: on every scheduling call it
// recomputes the progress lag of every queued workflow and rescans for the
// maximum, costing O(n_w) (or O(n_w log n_w) to produce a full ordering) per
// slot free-up. Fig 13(a) shows it collapsing beyond ~10k queued workflows.
type Naive struct {
	// entries maps workflow ID (dense arrival index) to its entry; nil
	// slots are absent workflows.
	entries []*Entry
	count   int
	stats   *obs.QueueStats
	// scratch is reused by Ascend's sort.
	scratch []*Entry
}

var _ Queue = (*Naive)(nil)

// NewNaive returns an empty naive queue.
func NewNaive() *Naive {
	return &Naive{}
}

// Len implements Queue.
func (n *Naive) Len() int { return n.count }

// Instrument implements Queue.
func (n *Naive) Instrument(stats *obs.QueueStats) { n.stats = stats }

// Add implements Queue.
func (n *Naive) Add(e *Entry, now simtime.Time) {
	n.stats.OnInsert(now, e.ID)
	e.refresh(now)
	for e.ID >= len(n.entries) {
		n.entries = append(n.entries, nil)
	}
	n.entries[e.ID] = e
	n.count++
}

// Remove implements Queue.
func (n *Naive) Remove(id int, now simtime.Time) bool {
	if id < 0 || id >= len(n.entries) || n.entries[id] == nil {
		return false
	}
	n.entries[id] = nil
	n.count--
	n.stats.OnDelete(now, id)
	return true
}

// Best implements Queue. It recomputes every entry's priority — the O(n_w)
// rescan the DSL exists to avoid; no head hits are ever recorded here.
func (n *Naive) Best(now simtime.Time) (*Entry, bool) {
	var best *Entry
	for _, e := range n.entries {
		if e == nil {
			continue
		}
		e.refresh(now)
		if best == nil || e.prio > best.prio || (e.prio == best.prio && e.ID < best.ID) {
			best = e
		}
	}
	n.stats.OnLagRecomputes(n.count)
	return best, best != nil
}

// Scheduled implements Queue.
func (n *Naive) Scheduled(id int, now simtime.Time) {
	if id >= 0 && id < len(n.entries) && n.entries[id] != nil {
		e := n.entries[id]
		e.rho++
		e.computePrio()
	}
}

// Unscheduled implements Queue.
func (n *Naive) Unscheduled(id int, now simtime.Time) {
	if id >= 0 && id < len(n.entries) && n.entries[id] != nil {
		e := n.entries[id]
		e.rho--
		e.computePrio()
	}
}

// Ascend implements Queue. It recomputes and fully sorts the queue.
func (n *Naive) Ascend(now simtime.Time, fn func(e *Entry) bool) {
	all := n.scratch[:0]
	for _, e := range n.entries {
		if e == nil {
			continue
		}
		e.refresh(now)
		all = append(all, e)
	}
	n.scratch = all
	n.stats.OnLagRecomputes(len(all))
	sort.Slice(all, func(i, j int) bool {
		if all[i].prio != all[j].prio {
			return all[i].prio > all[j].prio
		}
		return all[i].ID < all[j].ID
	})
	for _, e := range all {
		if !fn(e) {
			return
		}
	}
}
