package dsl

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
)

// parityReqs builds the progress requirement list for one synthetic workflow:
// total tasks spread over a few deadline checkpoints.
func parityReqs(total int, deadline time.Duration) []plan.Req {
	return []plan.Req{
		{TTD: deadline * 3 / 4, Cum: total / 4},
		{TTD: deadline / 2, Cum: total / 2},
		{TTD: deadline / 4, Cum: 3 * total / 4},
		{TTD: 0, Cum: total},
	}
}

// parityEntry builds workflow i's entry. Entries are stateful (rho, cached
// prio), so the DSL and the naive queue each get their own copy.
func parityEntry(i int) *Entry {
	deadline := time.Duration(10+3*i) * time.Minute
	total := 8 + 4*(i%5)
	return NewEntry(i, simtime.Epoch.Add(deadline), parityReqs(total, deadline))
}

// TestDSLNaiveParity drives the DSL and the naive rescan queue through an
// identical schedule of adds, Best reads, progress updates, and removals, and
// requires (1) identical head decisions at every step — the two backends are
// semantically interchangeable — and (2) strictly more lag recomputations in
// the naive queue per its obs counters, the cost difference the DSL exists to
// eliminate (Fig 13a, observable at runtime).
func TestDSLNaiveParity(t *testing.T) {
	o := obs.New(obs.NewRegistry(), nil)
	dslStats := o.NewQueueStats("DSL")
	naiveStats := o.NewQueueStats("Naive")

	dq := New(42)
	nq := NewNaive()
	dq.Instrument(dslStats)
	nq.Instrument(naiveStats)

	const n = 12
	for i := 0; i < n; i++ {
		now := simtime.Epoch.Add(time.Duration(i) * time.Second)
		dq.Add(parityEntry(i), now)
		nq.Add(parityEntry(i), now)
	}

	// Interleave head reads, scheduling progress on the chosen head, and
	// removals at advancing times so lags keep changing.
	removedAt := map[int]bool{}
	for step := 0; step < 200; step++ {
		now := simtime.Epoch.Add(time.Duration(step) * 7 * time.Second)
		db, dok := dq.Best(now)
		nb, nok := nq.Best(now)
		if dok != nok {
			t.Fatalf("step %d: Best ok mismatch: dsl=%v naive=%v", step, dok, nok)
		}
		if !dok {
			break
		}
		if db.ID != nb.ID {
			t.Fatalf("step %d: head mismatch: dsl=%d (lag %d) naive=%d (lag %d)",
				step, db.ID, db.Lag(), nb.ID, nb.Lag())
		}
		// Advance the head's progress in both queues.
		dq.Scheduled(db.ID, now)
		nq.Scheduled(db.ID, now)
		// Periodically remove a workflow, as completions do.
		if step%17 == 16 {
			victim := db.ID
			if dq.Remove(victim, now) != nq.Remove(victim, now) {
				t.Fatalf("step %d: Remove(%d) disagreed", step, victim)
			}
			removedAt[victim] = true
		}
	}

	if dq.Len() != nq.Len() {
		t.Errorf("final lengths differ: dsl=%d naive=%d", dq.Len(), nq.Len())
	}

	dslRecomputes := dslStats.LagRecomputes.Value()
	naiveRecomputes := naiveStats.LagRecomputes.Value()
	if naiveRecomputes <= dslRecomputes {
		t.Errorf("naive lag recomputations (%d) not strictly greater than DSL's (%d)",
			naiveRecomputes, dslRecomputes)
	}
	// The DSL serves heads from its priority list; the naive queue never can.
	if dslStats.HeadHits.Value() == 0 {
		t.Error("DSL recorded no head hits")
	}
	if naiveStats.HeadHits.Value() != 0 {
		t.Errorf("naive queue recorded %d head hits, want 0 (it always rescans)",
			naiveStats.HeadHits.Value())
	}
	if got, want := dslStats.Inserts.Value(), int64(12); got != want {
		t.Errorf("DSL inserts = %d, want %d", got, want)
	}
	if got, want := naiveStats.Deletes.Value(), int64(len(removedAt)); got != want {
		t.Errorf("naive deletes = %d, want %d", got, want)
	}
}

// TestQueueInstrumentNilIsSafe verifies both backends run uninstrumented with
// a nil stats handle (the default).
func TestQueueInstrumentNilIsSafe(t *testing.T) {
	for _, q := range []Queue{New(1), NewNaive()} {
		q.Instrument(nil)
		q.Add(parityEntry(0), simtime.Epoch)
		if _, ok := q.Best(simtime.Epoch); !ok {
			t.Fatal("Best found nothing")
		}
		q.Scheduled(0, simtime.Epoch)
		if !q.Remove(0, simtime.Epoch) {
			t.Fatal("Remove failed")
		}
	}
}
