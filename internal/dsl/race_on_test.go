//go:build race

package dsl

// raceEnabled reports that this binary was built with -race. The race
// runtime inflates and reorders allocations, so the zero-alloc queue-op
// pins skip themselves and keep only the behavioral assertions.
const raceEnabled = true
