package dsl

// Randomized operation-sequence property test: the bucketed-lag-index DSL,
// the set-backed BST and Det backends, and the naive full-recompute queue
// are driven with one interleaved stream of adds, removals, schedulings,
// unschedulings, Best queries, and full Ascend scans, and must agree
// decision for decision — same heads, same lags, same visit order. Times
// are adversarial: besides small random steps, the clock jumps to land
// exactly on requirement-change boundaries and deadlines (and 1ns on either
// side), the instants where the incremental settle and a full recompute are
// most likely to diverge. Runs under -race via `make race`.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
)

// propMode selects the entry construction the whole run uses (mixing
// normalization modes within one queue is not a supported configuration).
type propMode int

const (
	propPlain propMode = iota
	propDemoteOverdue
	propNormalized
)

func (m propMode) String() string {
	switch m {
	case propDemoteOverdue:
		return "demote-overdue"
	case propNormalized:
		return "normalized"
	default:
		return "plain"
	}
}

func (m propMode) entry(id int, deadline simtime.Time, reqs []plan.Req) *Entry {
	var e *Entry
	if m == propDemoteOverdue {
		e = NewEntryDemoteOverdue(id, deadline, reqs)
	} else {
		e = NewEntry(id, deadline, reqs)
	}
	if m == propNormalized {
		e.Normalized()
	}
	return e
}

func TestPropertyBackendsMatchNaive(t *testing.T) {
	for _, mode := range []propMode{propPlain, propDemoteOverdue, propNormalized} {
		for _, seed := range []int64{1, 42, 20140623} {
			mode, seed := mode, seed
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				t.Parallel()
				runPropertySequence(t, mode, seed)
			})
		}
	}
}

func runPropertySequence(t *testing.T, mode propMode, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	impls := []struct {
		name string
		q    Queue
	}{
		{"DSL", New(seed)},
		{"BST", NewBST()},
		{"Det", NewDeterministic()},
	}
	ref := NewNaive()
	all := make([]Queue, 0, len(impls)+1)
	for _, im := range impls {
		all = append(all, im.q)
	}
	all = append(all, ref)

	// boundaries accumulates every entry's requirement-change times and
	// deadline, the instants the clock deliberately jumps to.
	var boundaries []simtime.Time
	// sched tracks net Scheduled calls per live id so Unscheduled never
	// drives true progress negative.
	sched := map[int]int{}
	present := []int{}
	nextID := 0
	now := simtime.Epoch

	mkReqs := func(deadline simtime.Time) []plan.Req {
		n := rng.Intn(6)
		reqs := make([]plan.Req, 0, n)
		ttd := time.Duration(50+rng.Intn(300)) * time.Second
		cum := 0
		for i := 0; i < n; i++ {
			cum += 1 + rng.Intn(4)
			reqs = append(reqs, plan.Req{TTD: ttd, Cum: cum})
			boundaries = append(boundaries, deadline.Add(-ttd))
			ttd -= time.Duration(1+rng.Intn(40)) * time.Second
		}
		return reqs
	}

	advance := func() {
		if len(boundaries) > 0 && rng.Intn(2) == 0 {
			// Jump onto a boundary (or 1ns on either side), if it is ahead.
			b := boundaries[rng.Intn(len(boundaries))]
			b = b.Add(time.Duration(rng.Intn(3)-1) * time.Nanosecond)
			if b > now {
				now = b
				return
			}
		}
		now = now.Add(time.Duration(rng.Intn(20_000)) * time.Millisecond)
	}

	checkBest := func(step int) {
		want, wantOK := ref.Best(now)
		for _, im := range impls {
			got, ok := im.q.Best(now)
			if ok != wantOK {
				t.Fatalf("step %d @%v: %s.Best ok=%v, naive ok=%v", step, now, im.name, ok, wantOK)
			}
			if !ok {
				continue
			}
			if got.ID != want.ID || got.Lag() != want.Lag() {
				t.Fatalf("step %d @%v: %s.Best = wf %d (lag %d), naive wf %d (lag %d)",
					step, now, im.name, got.ID, got.Lag(), want.ID, want.Lag())
			}
		}
	}

	checkAscend := func(step int) {
		type visit struct {
			id, lag int
		}
		var want []visit
		ref.Ascend(now, func(e *Entry) bool {
			want = append(want, visit{e.ID, e.Lag()})
			return true
		})
		for _, im := range impls {
			var got []visit
			im.q.Ascend(now, func(e *Entry) bool {
				got = append(got, visit{e.ID, e.Lag()})
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("step %d @%v: %s.Ascend visited %d entries, naive %d",
					step, now, im.name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d @%v: %s.Ascend[%d] = %+v, naive %+v",
						step, now, im.name, i, got[i], want[i])
				}
			}
		}
	}

	for step := 0; step < 4000; step++ {
		advance()
		switch r := rng.Intn(20); {
		case r < 6: // add
			nextID++
			deadline := now.Add(time.Duration(30+rng.Intn(500)) * time.Second)
			boundaries = append(boundaries, deadline)
			reqs := mkReqs(deadline)
			for _, q := range all {
				// Each queue owns its own entry and mutable reqs copy.
				q.Add(mode.entry(nextID, deadline, append([]plan.Req(nil), reqs...)), now)
			}
			present = append(present, nextID)
			sched[nextID] = 0
		case r < 8: // remove
			if len(present) == 0 {
				continue
			}
			i := rng.Intn(len(present))
			id := present[i]
			for _, q := range all {
				if !q.Remove(id, now) {
					t.Fatalf("step %d: Remove(%d) = false", step, id)
				}
			}
			present[i] = present[len(present)-1]
			present = present[:len(present)-1]
			delete(sched, id)
		case r < 12: // scheduled
			if len(present) == 0 {
				continue
			}
			id := present[rng.Intn(len(present))]
			for _, q := range all {
				q.Scheduled(id, now)
			}
			sched[id]++
		case r < 14: // unscheduled (requeue), never below zero progress
			if len(present) == 0 {
				continue
			}
			id := present[rng.Intn(len(present))]
			if sched[id] == 0 {
				continue
			}
			for _, q := range all {
				q.Unscheduled(id, now)
			}
			sched[id]--
		case r < 19: // Best decision
			checkBest(step)
		default: // full Ascend order
			checkAscend(step)
		}
	}
	checkAscend(4000)
	for _, im := range impls {
		if im.q.Len() != ref.Len() {
			t.Errorf("final %s.Len = %d, naive %d", im.name, im.q.Len(), ref.Len())
		}
	}
}
