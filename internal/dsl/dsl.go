// Package dsl implements WOHA's inter-workflow priority queue from Section
// IV-B of the paper: Algorithm 2 ("AssignTask") over the Double Skip List.
//
// Each queued workflow h carries its progress requirement list F_h (from its
// scheduling plan), its true progress ρ_h (tasks scheduled so far), and two
// derived fields: the absolute time of its next progress-requirement change
// (W_h.t) and its current inter-workflow priority, the lag
//
//	W_h.p = F_h(ttd) − ρ_h,
//
// where larger lag means the workflow has fallen further behind its plan and
// deserves slots sooner.
//
// The Double Skip List keeps two correlated ordered structures over the same
// entries: the "ct list" ordered by next-change time and the "priority list"
// ordered by lag. On every AssignTask call only the head of the ct list is
// inspected; the few workflows whose requirement changed since the last call
// are re-prioritized, so the per-call cost is O(changes · log n) instead of
// the naive O(n log n) full rebuild. Head pops — the dominant operation — hit
// the ct skip list's O(1) fast path, and since lags are small dense integers
// that move by ±1 on Scheduled/Unscheduled, the priority side is a bucketed
// lag index (lagindex.go) whose repositionings are O(1) pointer moves rather
// than ordered-set delete+reinsert pairs.
//
// Four Queue implementations exist for the Fig 13(a) throughput comparison:
// the Double Skip List (New), the same algorithm over balanced search trees
// (NewBST), over deterministic 1-2-3 skip lists (NewDeterministic), and the
// naive recompute-and-rescan baseline (NewNaive).
package dsl

import (
	"repro/internal/avl"
	"repro/internal/obs"
	"repro/internal/ordered"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/skiplist"
)

// Entry is one workflow queued for scheduling.
type Entry struct {
	// ID uniquely identifies the workflow (its arrival index).
	ID int
	// Deadline is the workflow's absolute deadline D_h.
	Deadline simtime.Time
	// Reqs is the progress requirement list F_h, sorted by decreasing TTD.
	Reqs []plan.Req

	// rho is the true progress ρ_h: tasks of this workflow scheduled so far.
	rho int
	// idx is the index of the next requirement not yet in force (W_h.i).
	idx int
	// nextChange is the absolute time the idx-th requirement takes effect
	// (W_h.t), or simtime.MaxTime once all requirements are in force.
	nextChange simtime.Time
	// prio is the current lag F_h(ttd) − ρ_h (W_h.p).
	prio int
	// inCT records whether the entry currently sits in the ct list.
	inCT bool
	// demoteOverdue, when set, drops the entry below every non-overdue
	// workflow once its deadline passes (see Queue docs).
	demoteOverdue bool
	// overdue records that the demotion is in force.
	overdue bool
	// normalized, when set, expresses the lag as parts-per-million of the
	// workflow's total planned tasks instead of an absolute task count, so
	// workflows of very different sizes compete on relative progress. An
	// extension beyond the paper; see core.Options.NormalizedLag.
	normalized bool

	// Priority-index linkage, owned by the queue the entry is in. For the
	// bucketed lag index these record the entry's band/bucket and its
	// intrusive neighbours; set-backed priority lists use bktKey alone to
	// cache the indexed priority so repositioning knows the old key.
	bktBand int8
	bktKey  int
	bktPrev *Entry
	bktNext *Entry
}

// overdueBias shifts an overdue entry's priority below any achievable lag
// while preserving remaining-work order among overdue entries.
const overdueBias = -(1 << 40)

// NewEntry builds a queue entry for a workflow with the given plan
// requirements. Progress starts at zero.
func NewEntry(id int, deadline simtime.Time, reqs []plan.Req) *Entry {
	return &Entry{ID: id, Deadline: deadline, Reqs: reqs}
}

// NewEntryDemoteOverdue is NewEntry for a queue policy that demotes
// workflows whose deadlines have already passed: the paper's lag formula
// F_h(ttd) − ρ_h keeps an overdue workflow at maximal lag until it finishes,
// which lets a single large miss starve workflows that could still meet
// their deadlines ("zombie cascade"). A demoted entry drops below every
// non-overdue workflow but keeps remaining-lag order among the overdue, so
// missed workflows still finish best-effort from slack capacity. The paper
// does not specify post-deadline behaviour; this is the release's default
// (see core.Options.ServeOverdueFirst for the paper-literal ordering).
func NewEntryDemoteOverdue(id int, deadline simtime.Time, reqs []plan.Req) *Entry {
	return &Entry{ID: id, Deadline: deadline, Reqs: reqs, demoteOverdue: true}
}

// Normalized switches the entry's priority to relative lag (fraction of the
// workflow's planned total, in parts per million) and returns the entry.
func (e *Entry) Normalized() *Entry {
	e.normalized = true
	return e
}

// Progress returns ρ_h, the number of tasks scheduled so far.
func (e *Entry) Progress() int { return e.rho }

// Lag returns the entry's current priority value (may be stale until the
// owning queue refreshes it).
func (e *Entry) Lag() int { return e.prio }

// refresh advances idx past every requirement whose change time has fired by
// now and recomputes prio and nextChange (Algorithm 2 lines 8-14).
func (e *Entry) refresh(now simtime.Time) {
	for e.idx < len(e.Reqs) && e.changeTime(e.idx) <= now {
		e.idx++
	}
	if e.idx < len(e.Reqs) {
		e.nextChange = e.changeTime(e.idx)
	} else {
		e.nextChange = simtime.MaxTime
	}
	e.overdue = e.demoteOverdue && now >= e.Deadline
	if !e.overdue && e.demoteOverdue && e.nextChange > e.Deadline {
		// Wake exactly at the deadline so the demotion takes effect even
		// after the last requirement change has fired.
		e.nextChange = e.Deadline
	}
	e.computePrio()
}

// computePrio derives the priority from the current requirement index, the
// true progress, and the entry's mode.
func (e *Entry) computePrio() {
	if e.overdue {
		e.prio = overdueBias + e.lagValue(e.totalRequired())
		return
	}
	e.prio = e.lagValue(e.required())
}

// lagValue is required − ρ, normalized to ppm of the plan total when the
// entry is in normalized mode.
func (e *Entry) lagValue(required int) int {
	lag := required - e.rho
	if !e.normalized {
		return lag
	}
	total := e.totalRequired()
	if total <= 0 {
		return lag
	}
	return lag * 1_000_000 / total
}

// required returns F_h currently in force: the cumulative requirement of the
// last fired entry, or 0 before any requirement fires.
func (e *Entry) required() int {
	if e.idx == 0 {
		return 0
	}
	return e.Reqs[e.idx-1].Cum
}

// totalRequired returns the final cumulative requirement (the workflow's
// planned task total), or 0 for an empty requirement list.
func (e *Entry) totalRequired() int {
	if len(e.Reqs) == 0 {
		return 0
	}
	return e.Reqs[len(e.Reqs)-1].Cum
}

// changeTime returns the absolute instant requirement i takes effect:
// D_h − F_h[i].ttd.
func (e *Entry) changeTime(i int) simtime.Time {
	return e.Deadline.Add(-e.Reqs[i].TTD)
}

// Queue is the inter-workflow scheduling queue consulted on every slot
// free-up. Implementations are not safe for concurrent use; the Hadoop
// JobTracker serializes scheduling decisions, and so do our simulators.
type Queue interface {
	// Add inserts a workflow entry, computing its initial priority at now.
	Add(e *Entry, now simtime.Time)
	// Remove deletes the workflow with the given id at time now, reporting
	// whether it was present.
	Remove(id int, now simtime.Time) bool
	// Best returns the entry with the greatest lag at time now. ok is
	// false when the queue is empty.
	Best(now simtime.Time) (e *Entry, ok bool)
	// Scheduled records that one task of workflow id was assigned: ρ_h is
	// incremented and the priority decremented (Algorithm 2 lines 20-23).
	Scheduled(id int, now simtime.Time)
	// Unscheduled reverses one Scheduled call — a running task was lost to
	// a TaskTracker failure and returned to the pending pool.
	Unscheduled(id int, now simtime.Time)
	// Ascend visits entries in decreasing-lag order at time now until fn
	// returns false. It exists for work-conserving schedulers that must
	// skip past workflows with no task matching the idle slot.
	Ascend(now simtime.Time, fn func(e *Entry) bool)
	// Len returns the number of queued workflows.
	Len() int
	// Instrument attaches per-operation observability counters (insert,
	// delete, head hit, lag recomputation). nil disables (the default); the
	// instrumented path costs one nil check per operation.
	Instrument(stats *obs.QueueStats)
}

// ctKey orders the ct list by next-change time, ties by workflow ID.
type ctKey struct {
	t  simtime.Time
	id int
}

func ctLess(a, b ctKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.id < b.id
}

// prioKey orders a set-backed priority list by decreasing lag, ties by
// workflow ID.
type prioKey struct {
	p  int
	id int
}

func prioLess(a, b prioKey) bool {
	if a.p != b.p {
		return a.p > b.p
	}
	return a.id < b.id
}

// prioIndex is the priority-side structure of the queue: the bucketed lag
// index for the DSL proper, or an ordered.Set adapter for the BST/Det
// variants that run Algorithm 2 literally over those structures.
type prioIndex interface {
	insert(e *Entry)
	remove(e *Entry)
	// update repositions e after its prio/overdue fields changed; a no-op
	// when the indexed position is unchanged.
	update(e *Entry)
	// min returns the highest-priority entry, or nil when empty.
	min() *Entry
	// ascend visits entries in decreasing-priority order until fn returns
	// false. fn must not mutate the index.
	ascend(fn func(e *Entry) bool)
	// takeMoves returns and resets the bucket-move count since the last
	// call (always 0 for set-backed indexes, whose repositionings are
	// counted as node reuses at the set layer instead).
	takeMoves() int
}

// reuser is implemented by pooled ordered sets that count node reuses.
type reuser interface{ Reuses() int }

// List is the Double Skip List (or Double-BST / Double-Det) queue.
type List struct {
	ct   ordered.Set[ctKey]
	prio prioIndex
	// entries maps workflow ID (arrival index — dense by construction) to
	// its entry; nil slots are absent workflows.
	entries []*Entry
	count   int
	stats   *obs.QueueStats
	// reusers tracks pooled backing sets for woha_queue_node_reuses_total;
	// seenReuses is the portion already flushed to stats.
	reusers    [2]reuser
	seenReuses int
}

var _ Queue = (*List)(nil)

// New returns the Double Skip List queue: a seeded skip list for the ct
// side, the bucketed lag index for the priority side. seed drives the skip
// list's deterministic tower PRNG.
func New(seed int64) *List {
	l := &List{ct: skiplist.New(ctLess, seed)}
	l.prio = &lagIndex{}
	l.initReusers(nil)
	return l
}

// NewBST returns the same Algorithm 2 queue backed by AVL trees — the "BST"
// baseline of Fig 13(a).
func NewBST() *List {
	l := &List{ct: avl.New(ctLess)}
	prio := avl.New(prioLess)
	l.prio = &setPrio{s: prio, l: l}
	l.initReusers(prio)
	return l
}

// NewDeterministic returns the queue backed by Munro-Papadakis-Sedgewick
// 1-2-3 deterministic skip lists — the structure the paper cites — trading
// the seeded list's O(1) expected head pop for worst-case O(log n) bounds on
// every operation.
func NewDeterministic() *List {
	l := &List{ct: skiplist.NewDet(ctLess)}
	prio := skiplist.NewDet(prioLess)
	l.prio = &setPrio{s: prio, l: l}
	l.initReusers(prio)
	return l
}

// initReusers records which backing sets expose pooled-reuse counters.
func (l *List) initReusers(prioSet any) {
	if r, ok := l.ct.(reuser); ok {
		l.reusers[0] = r
	}
	if r, ok := prioSet.(reuser); ok {
		l.reusers[1] = r
	}
}

// Len implements Queue.
func (l *List) Len() int { return l.count }

// Instrument implements Queue.
func (l *List) Instrument(stats *obs.QueueStats) { l.stats = stats }

// entry returns the entry for id, or nil when absent.
func (l *List) entry(id int) *Entry {
	if id < 0 || id >= len(l.entries) {
		return nil
	}
	return l.entries[id]
}

// Add implements Queue.
func (l *List) Add(e *Entry, now simtime.Time) {
	l.stats.OnInsert(now, e.ID)
	e.refresh(now)
	for e.ID >= len(l.entries) {
		l.entries = append(l.entries, nil)
	}
	l.entries[e.ID] = e
	l.count++
	if e.nextChange != simtime.MaxTime {
		l.ct.Insert(ctKey{t: e.nextChange, id: e.ID})
		e.inCT = true
	} else {
		e.inCT = false
	}
	l.prio.insert(e)
}

// Remove implements Queue.
func (l *List) Remove(id int, now simtime.Time) bool {
	e := l.entry(id)
	if e == nil {
		return false
	}
	l.entries[id] = nil
	l.count--
	if e.inCT {
		l.ct.Delete(ctKey{t: e.nextChange, id: e.ID})
	}
	l.prio.remove(e)
	l.stats.OnDelete(now, id)
	return true
}

// settle re-prioritizes every workflow whose next requirement change fired at
// or before now — the while loop of Algorithm 2 (lines 4-19). It returns the
// number of entries re-prioritized; zero is the O(1) head-read fast path.
// A refreshed next-change time is always strictly later than the fired one,
// so the ct reposition is a forward Move that reuses the node in place.
func (l *List) settle(now simtime.Time) int {
	moved := 0
	for {
		k, ok := l.ct.Min()
		if !ok || k.t > now {
			break
		}
		e := l.entries[k.id]
		e.refresh(now)
		moved++
		if e.nextChange != simtime.MaxTime {
			l.ct.Move(k, ctKey{t: e.nextChange, id: e.ID})
		} else {
			l.ct.DeleteMin()
			e.inCT = false
		}
		l.prio.update(e)
	}
	l.stats.OnLagRecomputes(moved)
	if l.stats != nil {
		l.flushStats()
	}
	return moved
}

// flushStats forwards accumulated bucket-move and node-reuse tallies to the
// attached QueueStats. Callers check l.stats != nil first.
func (l *List) flushStats() {
	if m := l.prio.takeMoves(); m > 0 {
		l.stats.OnBucketMoves(m)
	}
	total := 0
	for _, r := range l.reusers {
		if r != nil {
			total += r.Reuses()
		}
	}
	if total > l.seenReuses {
		l.stats.OnNodeReuses(total - l.seenReuses)
		l.seenReuses = total
	}
}

// Best implements Queue.
func (l *List) Best(now simtime.Time) (*Entry, bool) {
	settled := l.settle(now)
	e := l.prio.min()
	if e == nil {
		return nil, false
	}
	l.stats.OnHeadHit(now, e.ID, settled)
	return e, true
}

// Scheduled implements Queue.
func (l *List) Scheduled(id int, now simtime.Time) {
	l.adjustProgress(id, +1)
}

// Unscheduled implements Queue.
func (l *List) Unscheduled(id int, now simtime.Time) {
	l.adjustProgress(id, -1)
}

func (l *List) adjustProgress(id, delta int) {
	e := l.entry(id)
	if e == nil {
		return
	}
	e.rho += delta
	e.computePrio()
	l.prio.update(e)
	if l.stats != nil {
		l.flushStats()
	}
}

// Ascend implements Queue.
func (l *List) Ascend(now simtime.Time, fn func(e *Entry) bool) {
	settled := l.settle(now)
	if l.stats != nil {
		// The first visited entry is the head, same as Best; recording it
		// up front keeps the uninstrumented path free of the wrapper
		// closure a per-visit hook would allocate.
		if e := l.prio.min(); e != nil {
			l.stats.OnHeadHit(now, e.ID, settled)
		}
	}
	l.prio.ascend(fn)
}

// setPrio adapts an ordered.Set to the prioIndex contract for the BST and
// Det queue variants. Each entry's indexed priority is cached in its bktKey
// field, so repositioning is a single Move from the old key (pooled
// delete+insert underneath) with no auxiliary lookup.
type setPrio struct {
	s ordered.Set[prioKey]
	l *List
}

var _ prioIndex = (*setPrio)(nil)

func (p *setPrio) insert(e *Entry) {
	e.bktKey = e.prio
	p.s.Insert(prioKey{p: e.prio, id: e.ID})
}

func (p *setPrio) remove(e *Entry) {
	p.s.Delete(prioKey{p: e.bktKey, id: e.ID})
}

func (p *setPrio) update(e *Entry) {
	if e.prio == e.bktKey {
		return
	}
	p.s.Move(prioKey{p: e.bktKey, id: e.ID}, prioKey{p: e.prio, id: e.ID})
	e.bktKey = e.prio
}

func (p *setPrio) min() *Entry {
	k, ok := p.s.Min()
	if !ok {
		return nil
	}
	return p.l.entries[k.id]
}

func (p *setPrio) ascend(fn func(e *Entry) bool) {
	p.s.Ascend(func(k prioKey) bool { return fn(p.l.entries[k.id]) })
}

func (p *setPrio) takeMoves() int { return 0 }
