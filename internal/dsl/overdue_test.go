package dsl

import (
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
)

func TestOverdueEntryRefreshes(t *testing.T) {
	// Deadline 100s, requirements change at 50/60/70s.
	e := NewEntryDemoteOverdue(1, at(100), testReqs())

	e.refresh(at(0))
	if e.overdue {
		t.Error("overdue before the deadline")
	}
	if e.prio != 0 {
		t.Errorf("prio = %d, want 0", e.prio)
	}

	// After the last requirement change but before the deadline the entry
	// must keep a wake-up at the deadline itself so demotion fires.
	e.refresh(at(80))
	if e.overdue {
		t.Error("overdue at 80s with deadline 100s")
	}
	if e.nextChange != at(100) {
		t.Errorf("nextChange = %v, want deadline 100s", e.nextChange)
	}

	e.rho = 2
	e.refresh(at(100))
	if !e.overdue {
		t.Fatal("not overdue at the deadline")
	}
	wantPrio := overdueBias + (6 - 2)
	if e.prio != wantPrio {
		t.Errorf("overdue prio = %d, want %d", e.prio, wantPrio)
	}
	if e.nextChange != simtime.MaxTime {
		t.Errorf("nextChange = %v after demotion, want +inf", e.nextChange)
	}
}

func TestPlainEntryHasNoDeadlineWakeup(t *testing.T) {
	e := NewEntry(1, at(100), testReqs())
	e.refresh(at(80))
	if e.nextChange != simtime.MaxTime {
		t.Errorf("plain entry nextChange = %v, want +inf after last requirement", e.nextChange)
	}
	e.refresh(at(150))
	if e.prio != 6 {
		t.Errorf("plain entry prio after deadline = %d, want full lag 6", e.prio)
	}
}

func TestOverdueDropsBelowAchievable(t *testing.T) {
	for name, q := range map[string]Queue{"DSL": New(1), "BST": NewBST(), "Det": NewDeterministic(), "Naive": NewNaive()} {
		t.Run(name, func(t *testing.T) {
			// Big zombie: deadline 10s, 1000-task requirement.
			zombieReqs := []plan.Req{{TTD: 5 * time.Second, Cum: 1000}}
			q.Add(NewEntryDemoteOverdue(1, at(10), zombieReqs), at(0))
			// Small achievable workflow: deadline 100s.
			q.Add(NewEntryDemoteOverdue(2, at(100), testReqs()), at(0))

			// Before the zombie's deadline it dominates (lag 1000).
			e, _ := q.Best(at(6))
			if e.ID != 1 {
				t.Fatalf("Best(6s) = wf %d, want zombie", e.ID)
			}
			// After its deadline it must drop below the achievable one.
			e, _ = q.Best(at(60))
			if e.ID != 2 {
				t.Fatalf("Best(60s) = wf %d, want achievable workflow", e.ID)
			}
			// With only zombies left, remaining-lag order still serves them.
			q.Remove(2, at(60))
			e, ok := q.Best(at(60))
			if !ok || e.ID != 1 {
				t.Fatalf("Best with only zombie = %v, %v", e, ok)
			}
		})
	}
}

func TestTwoOverdueOrderedByRemainingLag(t *testing.T) {
	q := New(3)
	// Both overdue at t=20; wf1 has more remaining work.
	q.Add(NewEntryDemoteOverdue(1, at(10), []plan.Req{{TTD: 2 * time.Second, Cum: 500}}), at(0))
	q.Add(NewEntryDemoteOverdue(2, at(10), []plan.Req{{TTD: 2 * time.Second, Cum: 50}}), at(0))
	e, _ := q.Best(at(20))
	if e.ID != 1 {
		t.Fatalf("Best = wf %d, want wf 1 (larger remaining lag)", e.ID)
	}
	// Work off wf1's lag below wf2's.
	for i := 0; i < 460; i++ {
		q.Scheduled(1, at(20))
	}
	e, _ = q.Best(at(20))
	if e.ID != 2 {
		t.Fatalf("Best after draining wf1 = wf %d, want wf 2", e.ID)
	}
}
