package dsl

import "math/bits"

// lagIndex is the bucketed priority index that replaces the priority-side
// skip list of the Double Skip List. Priorities (lags) are small dense
// integers that change by ±1 on Scheduled/Unscheduled (or by a bounded ppm
// step in normalized mode), so instead of a delete+reinsert pair in an
// ordered set, each priority value owns a bucket holding an intrusive
// doubly-linked list of entries in ascending ID order, and repositioning an
// entry is an O(1)-amortized pointer move between adjacent buckets.
//
// Two bands keep the overdue demotion exact without materializing the
// overdueBias offset: band 0 holds normal entries keyed by their lag, band 1
// holds demoted-overdue entries keyed by prio − overdueBias (their remaining
// lag). Iterating band 0 then band 1, each by descending key, reproduces the
// exact (decreasing priority, ascending ID) order of the replaced skip list,
// because every overdue priority sorts below every achievable one.
//
// Buckets live in 256-slot pages allocated lazily (normalized-mode keys span
// ±10^6 ppm; a dense array would be wasteful), with per-page occupancy
// bitmaps so the max-key cursor and descending iteration skip empty runs a
// word at a time. Invariants:
//
//   - an entry is in exactly one bucket, recorded by its bktBand/bktKey
//     fields; its bktPrev/bktNext links are owned by that bucket
//   - a bucket's list is strictly ascending by ID; finger points at the most
//     recently inserted member (or is nil when empty) and is the start point
//     for interior position searches
//   - pg.occ bit set ⇔ bucket non-empty; pg.count = set bits; band.count =
//     entries in band; band.top = highest occupied key, valid iff count > 0
type lagIndex struct {
	bands [2]lagBand
	size  int
	// moves counts bucket-to-bucket repositionings since the last
	// takeMoves, feeding woha_queue_bucket_moves_total.
	moves int
}

const (
	lagPageBits = 8
	lagPageSize = 1 << lagPageBits
	lagSlotMask = lagPageSize - 1
)

type lagBand struct {
	// pages[i] covers keys [ (page0+i)<<lagPageBits, +256 ); nil until a
	// key in its range is first touched.
	pages []*lagPage
	page0 int
	count int
	top   int
}

type lagPage struct {
	count   int
	occ     [lagPageSize / 64]uint64
	buckets [lagPageSize]lagBucket
}

type lagBucket struct {
	head, tail, finger *Entry
}

// lagPos maps an entry's current priority to its band and bucket key.
func lagPos(e *Entry) (band, key int) {
	if e.overdue {
		return 1, e.prio - overdueBias
	}
	return 0, e.prio
}

var _ prioIndex = (*lagIndex)(nil)

func (ix *lagIndex) insert(e *Entry) {
	band, key := lagPos(e)
	b := &ix.bands[band]
	pg := b.page(key)
	slot := key & lagSlotMask
	bkt := &pg.buckets[slot]
	if bkt.head == nil {
		pg.occ[slot>>6] |= 1 << (uint(slot) & 63)
		pg.count++
		if b.count == 0 || key > b.top {
			b.top = key
		}
	}
	bkt.insert(e)
	e.bktBand, e.bktKey = int8(band), key
	b.count++
	ix.size++
}

func (ix *lagIndex) remove(e *Entry) {
	b := &ix.bands[e.bktBand]
	key := e.bktKey
	pg := b.pages[(key>>lagPageBits)-b.page0]
	slot := key & lagSlotMask
	bkt := &pg.buckets[slot]
	if bkt.finger == e {
		if e.bktPrev != nil {
			bkt.finger = e.bktPrev
		} else {
			bkt.finger = e.bktNext
		}
	}
	if e.bktPrev != nil {
		e.bktPrev.bktNext = e.bktNext
	} else {
		bkt.head = e.bktNext
	}
	if e.bktNext != nil {
		e.bktNext.bktPrev = e.bktPrev
	} else {
		bkt.tail = e.bktPrev
	}
	e.bktPrev, e.bktNext = nil, nil
	b.count--
	ix.size--
	if bkt.head == nil {
		bkt.finger = nil
		pg.occ[slot>>6] &^= 1 << (uint(slot) & 63)
		pg.count--
		if key == b.top && b.count > 0 {
			b.top = b.prevOccupied(key - 1)
		}
	}
}

// update repositions e after a priority recomputation; entries whose bucket
// did not change are left untouched (their in-bucket position depends only
// on the ID).
func (ix *lagIndex) update(e *Entry) {
	band, key := lagPos(e)
	if int(e.bktBand) == band && e.bktKey == key {
		return
	}
	ix.remove(e)
	ix.insert(e)
	ix.moves++
}

// min returns the highest-priority entry (max lag, ties by ascending ID), or
// nil when empty.
func (ix *lagIndex) min() *Entry {
	for i := range ix.bands {
		b := &ix.bands[i]
		if b.count == 0 {
			continue
		}
		pg := b.pages[(b.top>>lagPageBits)-b.page0]
		return pg.buckets[b.top&lagSlotMask].head
	}
	return nil
}

// ascend visits entries in decreasing-priority order (band 0 then band 1,
// keys descending, IDs ascending within a bucket) until fn returns false.
// fn must not mutate the index.
func (ix *lagIndex) ascend(fn func(e *Entry) bool) {
	for i := range ix.bands {
		b := &ix.bands[i]
		remaining := b.count
		if remaining == 0 {
			continue
		}
		key := b.top
		for {
			pg := b.pages[(key>>lagPageBits)-b.page0]
			for e := pg.buckets[key&lagSlotMask].head; e != nil; e = e.bktNext {
				if !fn(e) {
					return
				}
				remaining--
			}
			if remaining == 0 {
				break
			}
			key = b.prevOccupied(key - 1)
		}
	}
}

func (ix *lagIndex) takeMoves() int {
	m := ix.moves
	ix.moves = 0
	return m
}

// insert links e into the bucket keeping ascending ID order. The fast paths
// — empty bucket, append past the tail, prepend before the head — cover the
// queue's access patterns (arrival IDs ascend; a popped head re-enters its
// neighbour bucket at the extreme); interior inserts walk from the finger.
func (bkt *lagBucket) insert(e *Entry) {
	e.bktPrev, e.bktNext = nil, nil
	if bkt.head == nil {
		bkt.head, bkt.tail, bkt.finger = e, e, e
		return
	}
	if e.ID > bkt.tail.ID {
		e.bktPrev = bkt.tail
		bkt.tail.bktNext = e
		bkt.tail = e
		bkt.finger = e
		return
	}
	if e.ID < bkt.head.ID {
		e.bktNext = bkt.head
		bkt.head.bktPrev = e
		bkt.head = e
		bkt.finger = e
		return
	}
	// Interior insert: head.ID < e.ID < tail.ID, so both walks terminate on
	// a non-nil neighbour.
	at := bkt.finger
	if at == nil {
		at = bkt.tail
	}
	if e.ID > at.ID {
		for at.bktNext != nil && at.bktNext.ID < e.ID {
			at = at.bktNext
		}
		e.bktPrev, e.bktNext = at, at.bktNext
		at.bktNext.bktPrev = e
		at.bktNext = e
	} else {
		for at.bktPrev != nil && at.bktPrev.ID > e.ID {
			at = at.bktPrev
		}
		e.bktNext, e.bktPrev = at, at.bktPrev
		at.bktPrev.bktNext = e
		at.bktPrev = e
	}
	bkt.finger = e
}

// page returns the page covering key, growing the page table and allocating
// the page on first touch. Steady-state operation (keys moving within the
// already-touched range) never allocates.
func (b *lagBand) page(key int) *lagPage {
	p := key >> lagPageBits
	switch {
	case len(b.pages) == 0:
		b.page0 = p
		b.pages = append(b.pages, nil)
	case p < b.page0:
		grow := b.page0 - p
		pages := make([]*lagPage, grow+len(b.pages))
		copy(pages[grow:], b.pages)
		b.pages = pages
		b.page0 = p
	default:
		for p-b.page0 >= len(b.pages) {
			b.pages = append(b.pages, nil)
		}
	}
	pg := b.pages[p-b.page0]
	if pg == nil {
		pg = &lagPage{}
		b.pages[p-b.page0] = pg
	}
	return pg
}

// prevOccupied returns the highest occupied key at or below from. The band
// must hold at least one entry at or below from; callers guarantee this via
// the band count.
func (b *lagBand) prevOccupied(from int) int {
	pi := (from >> lagPageBits) - b.page0
	slot := from & lagSlotMask
	if pi >= len(b.pages) {
		pi, slot = len(b.pages)-1, lagSlotMask
	}
	for ; pi >= 0; pi-- {
		pg := b.pages[pi]
		if pg == nil || pg.count == 0 {
			slot = lagSlotMask
			continue
		}
		w := slot >> 6
		word := pg.occ[w] & ((uint64(2) << (uint(slot) & 63)) - 1)
		for {
			if word != 0 {
				msb := 63 - bits.LeadingZeros64(word)
				return (b.page0+pi)<<lagPageBits | w<<6 | msb
			}
			w--
			if w < 0 {
				break
			}
			word = pg.occ[w]
		}
		slot = lagSlotMask
	}
	panic("dsl: lag band count positive but no occupied bucket found")
}
