package dsl

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
)

// testReqs: requirements 2/4/6 tasks at ttd 50/40/30s.
func testReqs() []plan.Req {
	return []plan.Req{
		{TTD: 50 * time.Second, Cum: 2},
		{TTD: 40 * time.Second, Cum: 4},
		{TTD: 30 * time.Second, Cum: 6},
	}
}

func at(sec float64) simtime.Time { return simtime.FromSeconds(sec) }

func TestEntryRefresh(t *testing.T) {
	// Deadline 100s → requirement change times at 50s, 60s, 70s.
	e := NewEntry(1, at(100), testReqs())

	e.refresh(at(0))
	if e.prio != 0 || e.nextChange != at(50) {
		t.Errorf("at 0s: prio=%d next=%v, want 0, 50s", e.prio, e.nextChange)
	}

	e.refresh(at(50))
	if e.prio != 2 || e.nextChange != at(60) {
		t.Errorf("at 50s: prio=%d next=%v, want 2, 60s", e.prio, e.nextChange)
	}

	e.rho = 3
	e.refresh(at(65))
	if e.prio != 4-3 || e.nextChange != at(70) {
		t.Errorf("at 65s: prio=%d next=%v, want 1, 70s", e.prio, e.nextChange)
	}

	e.refresh(at(200)) // long past every change (and the deadline)
	if e.prio != 6-3 || e.nextChange != simtime.MaxTime {
		t.Errorf("at 200s: prio=%d next=%v, want 3, +inf", e.prio, e.nextChange)
	}
}

func TestEntryEmptyReqs(t *testing.T) {
	e := NewEntry(1, at(100), nil)
	e.refresh(at(10))
	if e.prio != 0 || e.nextChange != simtime.MaxTime {
		t.Errorf("prio=%d next=%v, want 0, +inf", e.prio, e.nextChange)
	}
}

func queues(seed int64) map[string]Queue {
	return map[string]Queue{
		"DSL":   New(seed),
		"BST":   NewBST(),
		"Det":   NewDeterministic(),
		"Naive": NewNaive(),
	}
}

func TestBestPrefersGreatestLag(t *testing.T) {
	for name, q := range queues(1) {
		t.Run(name, func(t *testing.T) {
			// Workflow 1: deadline 100s → first change at 50s.
			// Workflow 2: deadline 80s → first change at 30s.
			q.Add(NewEntry(1, at(100), testReqs()), at(0))
			q.Add(NewEntry(2, at(80), testReqs()), at(0))

			// Before any change both lag 0: tie broken by ID.
			e, ok := q.Best(at(0))
			if !ok || e.ID != 1 {
				t.Fatalf("Best(0s) = %v, want workflow 1", e)
			}
			// At 30s workflow 2's first requirement (2 tasks) fires.
			e, _ = q.Best(at(30))
			if e.ID != 2 || e.Lag() != 2 {
				t.Fatalf("Best(30s) = wf %d lag %d, want wf 2 lag 2", e.ID, e.Lag())
			}
			// Scheduling two of workflow 2's tasks erases its lag.
			q.Scheduled(2, at(30))
			q.Scheduled(2, at(30))
			e, _ = q.Best(at(30))
			if e.ID != 1 {
				t.Fatalf("Best after catching up = wf %d, want wf 1", e.ID)
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for name, q := range queues(2) {
		t.Run(name, func(t *testing.T) {
			q.Add(NewEntry(1, at(100), testReqs()), at(0))
			q.Add(NewEntry(2, at(90), testReqs()), at(0))
			if !q.Remove(1, at(10)) {
				t.Fatal("Remove(1) = false")
			}
			if q.Remove(1, at(10)) {
				t.Fatal("second Remove(1) = true")
			}
			if q.Len() != 1 {
				t.Fatalf("Len = %d, want 1", q.Len())
			}
			e, ok := q.Best(at(60))
			if !ok || e.ID != 2 {
				t.Fatalf("Best = %v, want workflow 2", e)
			}
			q.Remove(2, at(60))
			if _, ok := q.Best(at(60)); ok {
				t.Fatal("Best on empty queue reported ok")
			}
		})
	}
}

func TestAscendOrder(t *testing.T) {
	for name, q := range queues(3) {
		t.Run(name, func(t *testing.T) {
			// Three workflows with deadlines 60/80/100s: at t=40s their
			// fired requirements differ (wf1 has 2 fired, wf2 one, wf3 none).
			q.Add(NewEntry(1, at(60), testReqs()), at(0))
			q.Add(NewEntry(2, at(80), testReqs()), at(0))
			q.Add(NewEntry(3, at(100), testReqs()), at(0))
			var got []int
			q.Ascend(at(45), func(e *Entry) bool {
				got = append(got, e.ID)
				return true
			})
			want := []int{1, 2, 3}
			if len(got) != len(want) {
				t.Fatalf("Ascend visited %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Ascend order %v, want %v", got, want)
				}
			}
		})
	}
}

func TestAscendEarlyStop(t *testing.T) {
	for name, q := range queues(4) {
		t.Run(name, func(t *testing.T) {
			for i := 1; i <= 5; i++ {
				q.Add(NewEntry(i, at(100), testReqs()), at(0))
			}
			count := 0
			q.Ascend(at(0), func(*Entry) bool {
				count++
				return false
			})
			if count != 1 {
				t.Errorf("Ascend visited %d entries after stop, want 1", count)
			}
		})
	}
}

// TestImplementationsAgree drives the DSL, BST, and naive queues with an
// identical randomized workload of adds, removals, schedulings, and queries
// at advancing times, and requires identical Best answers throughout. This
// is the core correctness argument for the incremental Algorithm 2: it must
// be observationally equivalent to the naive full recomputation.
func TestImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	impls := []struct {
		name string
		q    Queue
	}{
		{"DSL", New(7)},
		{"BST", NewBST()},
		{"Det", NewDeterministic()},
		{"Naive", NewNaive()},
	}

	mkReqs := func() []plan.Req {
		n := 1 + rng.Intn(8)
		reqs := make([]plan.Req, 0, n)
		ttd := time.Duration(200+rng.Intn(400)) * time.Second
		cum := 0
		for i := 0; i < n; i++ {
			cum += 1 + rng.Intn(5)
			reqs = append(reqs, plan.Req{TTD: ttd, Cum: cum})
			ttd -= time.Duration(1+rng.Intn(60)) * time.Second
		}
		return reqs
	}

	present := map[int]bool{}
	nextID := 0
	now := simtime.Epoch
	for step := 0; step < 5000; step++ {
		now = now.Add(time.Duration(rng.Intn(10)) * time.Second)
		switch r := rng.Intn(10); {
		case r < 4: // add
			nextID++
			deadline := now.Add(time.Duration(100+rng.Intn(600)) * time.Second)
			reqs := mkReqs()
			for _, im := range impls {
				// Each queue owns its own mutable copy.
				im.q.Add(NewEntry(nextID, deadline, append([]plan.Req(nil), reqs...)), now)
			}
			present[nextID] = true
		case r < 5: // remove a random present id
			for id := range present {
				for _, im := range impls {
					if !im.q.Remove(id, now) {
						t.Fatalf("step %d: %s.Remove(%d) = false", step, im.name, id)
					}
				}
				delete(present, id)
				break
			}
		default: // query + schedule
			var wantID int
			var wantLag int
			for i, im := range impls {
				e, ok := im.q.Best(now)
				if !ok {
					if len(present) != 0 {
						t.Fatalf("step %d: %s.Best empty with %d present", step, im.name, len(present))
					}
					wantID = -1
					continue
				}
				if i == 0 {
					wantID, wantLag = e.ID, e.Lag()
				} else if e.ID != wantID || e.Lag() != wantLag {
					t.Fatalf("step %d at %v: %s.Best = (wf %d, lag %d), DSL said (wf %d, lag %d)",
						step, now, im.name, e.ID, e.Lag(), wantID, wantLag)
				}
			}
			if wantID >= 0 {
				for _, im := range impls {
					im.q.Scheduled(wantID, now)
				}
			}
		}
		if l := impls[0].q.Len(); l != len(present) {
			t.Fatalf("step %d: Len = %d, want %d", step, l, len(present))
		}
	}
}

// TestSettleIsLazy checks that queries far in the future still give correct
// priorities even when many requirement changes fire between queries.
func TestSettleIsLazy(t *testing.T) {
	q := New(5)
	q.Add(NewEntry(1, at(1000), testReqs()), at(0)) // changes at 950, 960, 970
	q.Add(NewEntry(2, at(100), testReqs()), at(0))  // changes at 50, 60, 70
	e, _ := q.Best(at(2000))                        // everything fired
	if e.ID != 1 && e.ID != 2 {
		t.Fatal("Best returned nonsense")
	}
	// Both have full requirement 6, lag 6; tie → wf 1.
	if e.ID != 1 || e.Lag() != 6 {
		t.Errorf("Best(2000s) = wf %d lag %d, want wf 1 lag 6", e.ID, e.Lag())
	}
}

func BenchmarkBestScheduled(b *testing.B) {
	benches := []struct {
		name string
		mk   func() Queue
	}{
		{"DSL", func() Queue { return New(1) }},
		{"BST", func() Queue { return NewBST() }},
		{"Det", func() Queue { return NewDeterministic() }},
		{"Naive", func() Queue { return NewNaive() }},
	}
	for _, bb := range benches {
		b.Run(bb.name, func(b *testing.B) {
			q := bb.mk()
			rng := rand.New(rand.NewSource(2))
			const nw = 10000
			for i := 0; i < nw; i++ {
				deadline := simtime.FromSeconds(float64(1000 + rng.Intn(100000)))
				reqs := []plan.Req{
					{TTD: 500 * time.Second, Cum: 10},
					{TTD: 200 * time.Second, Cum: 50},
				}
				q.Add(NewEntry(i, deadline, reqs), 0)
			}
			b.ResetTimer()
			b.ReportAllocs()
			now := simtime.Epoch
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Millisecond)
				e, ok := q.Best(now)
				if !ok {
					b.Fatal("empty queue")
				}
				q.Scheduled(e.ID, now)
			}
		})
	}
}
