package dsl

// Steady-state allocation pins for the queue hot path. On a warm queue —
// entries added, pages and node pools grown, every due requirement settled —
// a Best decision followed by a Scheduled/Unscheduled progress round-trip
// must not allocate: the bucketed lag index repositions entries with pointer
// moves, and the set-backed ct/priority structures recycle their nodes
// through free lists. Wired into `make ci` via the alloc-pins target.

import (
	"testing"
)

func TestQueueOpAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts; the zero-alloc pin holds only in regular builds")
	}
	backends := map[string]Queue{
		"DSL": New(11),
		"BST": NewBST(),
		"Det": NewDeterministic(),
	}
	for name, q := range backends {
		t.Run(name, func(t *testing.T) {
			const n = 1000
			for i := 0; i < n; i++ {
				// Staggered deadlines so the warm queue holds a spread of
				// priorities across buckets.
				deadline := at(float64(100 + (i%7)*50))
				q.Add(NewEntry(i, deadline, testReqs()), at(0))
			}
			now := at(60) // past several requirement boundaries
			op := func() {
				e, ok := q.Best(now)
				if !ok {
					t.Fatal("Best found nothing on a populated queue")
				}
				q.Scheduled(e.ID, now)
				q.Unscheduled(e.ID, now)
			}
			// Warm up: the first Best settles every fired requirement, and
			// the first progress round-trip faults in any adjacent lag
			// buckets and primes the node free lists.
			op()
			op()
			if got := testing.AllocsPerRun(100, op); got != 0 {
				t.Errorf("%s Best+Scheduled+Unscheduled allocates %.1f/op, want 0", name, got)
			}
		})
	}
}
