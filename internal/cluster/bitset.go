package cluster

import "math/bits"

// nodeSet is a bitset over node indices with find-first-set iteration. The
// simulator keeps one per slot type as its free-slot index: bit i is set iff
// node i is up and has at least one free slot of that type, so dispatch
// scans cost O(words touched) instead of O(nodes) per offer.
type nodeSet struct {
	w []uint64
}

// reset sizes the set for n nodes with every bit clear, reusing the backing
// array when possible.
func (b *nodeSet) reset(n int) {
	words := (n + 63) / 64
	if cap(b.w) < words {
		b.w = make([]uint64, words)
		return
	}
	b.w = b.w[:words]
	clear(b.w)
}

// fill sizes the set for n nodes with bits 0..n-1 set.
func (b *nodeSet) fill(n int) {
	b.reset(n)
	for i := range b.w {
		b.w[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		b.w[len(b.w)-1] = (uint64(1) << r) - 1
	}
}

func (b *nodeSet) set(i int)   { b.w[i>>6] |= 1 << (uint(i) & 63) }
func (b *nodeSet) clear(i int) { b.w[i>>6] &^= 1 << (uint(i) & 63) }

// next returns the smallest set index >= from, or -1 when none remains —
// exactly the "first node with a free slot, scanning upward" order the
// linear scan it replaces produced.
func (b *nodeSet) next(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from >> 6
	if wi >= len(b.w) {
		return -1
	}
	word := b.w[wi] &^ ((uint64(1) << (uint(from) & 63)) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi == len(b.w) {
			return -1
		}
		word = b.w[wi]
	}
}
