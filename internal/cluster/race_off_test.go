//go:build !race

package cluster_test

// raceEnabled is false in regular builds; see race_on_test.go.
const raceEnabled = false
