package cluster_test

// Pooled-simulator instrumentation hygiene: a simulator drawn back out of
// the pool must not leak the previous run's attempt/drain/arena tallies into
// a fresh registry, and must reproduce the previous run's result exactly.
// This pins the Release() contract the arena refactor tightened — Release
// zeroes the per-run tallies and counter wiring before pooling, so the
// second run's flush starts from zero.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// simMetricNames are the simulator-owned series a run flushes; equal values
// across two identical runs on the same pooled simulator prove no tally
// survived Release.
var simMetricNames = []string{
	obs.MetricSimArenaCapacity,
	obs.MetricSimArenaReuses,
	obs.MetricSimArenaGrows,
	obs.MetricSimDrainBatches,
	obs.MetricSimDrainCoalesced,
}

func TestReleaseReuseInstrumentationHygiene(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 3,
		HeartbeatInterval:   2 * time.Second,
		Noise:               0.25,
		StragglerProb:       0.2,
		StragglerFactor:     3,
		SpeculativeSlowdown: 1.2,
	}
	flows := []*workflow.Workflow{
		workflow.NewBuilder("w1").
			Job("a", 8, 3, 20*time.Second, 30*time.Second).
			Job("b", 5, 2, 15*time.Second, 25*time.Second, "a").
			MustBuild(0, simtime.FromSeconds(600)),
		workflow.NewBuilder("w2").
			Job("a", 6, 2, 25*time.Second, 20*time.Second).
			MustBuild(simtime.FromSeconds(10), simtime.FromSeconds(500)),
	}
	once := func() (*cluster.Result, map[string]int64) {
		o := obs.New(obs.NewRegistry(), nil)
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetInstrumentation(o)
		for _, w := range flows {
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		sim.Release() // the second call draws this state back out
		vals := make(map[string]int64)
		for _, name := range simMetricNames {
			switch name {
			case obs.MetricSimArenaCapacity:
				vals[name] = o.SimArenaCapacity().Value()
			case obs.MetricSimArenaReuses:
				vals[name] = o.SimArenaReuses().Value()
			case obs.MetricSimArenaGrows:
				vals[name] = o.SimArenaGrows().Value()
			case obs.MetricSimDrainBatches:
				vals[name] = o.SimDrainBatches().Value()
			case obs.MetricSimDrainCoalesced:
				vals[name] = o.SimDrainCoalesced().Value()
			}
		}
		return res, vals
	}
	firstRes, firstVals := once()
	secondRes, secondVals := once()

	if !reflect.DeepEqual(firstRes, secondRes) {
		t.Errorf("pooled reuse changed the result:\nfirst:  %+v\nsecond: %+v", firstRes, secondRes)
	}
	// Identical runs flush identical drain tallies into their fresh
	// registries: any surplus in the second run is prior-run state leaking
	// through the pool.
	for _, name := range []string{obs.MetricSimDrainBatches, obs.MetricSimDrainCoalesced} {
		if firstVals[name] != secondVals[name] {
			t.Errorf("%s: first run flushed %d, pooled rerun flushed %d (Release leaked state)",
				name, firstVals[name], secondVals[name])
		}
	}
	if firstVals[obs.MetricSimDrainBatches] == 0 {
		t.Error("drain-batch counter never moved; instrumentation not wired")
	}
	// Free-list reuse is within-run recycling, deterministic for identical
	// runs regardless of pool warmth; a tally surviving Release would
	// inflate the second run's count.
	if firstVals[obs.MetricSimArenaReuses] != secondVals[obs.MetricSimArenaReuses] {
		t.Errorf("arena reuses: first run %d, pooled rerun %d (Release leaked state)",
			firstVals[obs.MetricSimArenaReuses], secondVals[obs.MetricSimArenaReuses])
	}
	if secondVals[obs.MetricSimArenaReuses] == 0 {
		t.Error("run reported zero arena reuses; reuse accounting broken")
	}
	// Pool-warmth assertions hold only when sync.Pool is deterministic —
	// the race runtime intentionally drops Puts (see race_on_test.go).
	if !raceEnabled {
		// The warm rerun has the first run's capacity and must not grow; a
		// nonzero value means either a leaked tally or a capacity reset bug.
		if got := secondVals[obs.MetricSimArenaGrows]; got != 0 {
			t.Errorf("pooled rerun reported %d arena grows, want 0 (warm capacity)", got)
		}
		// Identical runs reach the same attempt high-water mark.
		if firstVals[obs.MetricSimArenaCapacity] != secondVals[obs.MetricSimArenaCapacity] {
			t.Errorf("arena capacity: first run %d, pooled rerun %d",
				firstVals[obs.MetricSimArenaCapacity], secondVals[obs.MetricSimArenaCapacity])
		}
	}
}

// TestReleaseDetachesInstrumentation pins that Release severs the counter
// wiring: running a released-and-redrawn simulator WITHOUT instrumentation
// must not touch the old registry.
func TestReleaseDetachesInstrumentation(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, Seed: 1}
	w := workflow.NewBuilder("w").
		Job("a", 2, 1, 5*time.Second, 5*time.Second).
		MustBuild(0, simtime.FromSeconds(300))
	o := obs.New(obs.NewRegistry(), nil)

	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInstrumentation(o)
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	sim.Release()
	batches := o.SimDrainBatches().Value()
	if batches == 0 {
		t.Fatal("instrumented run flushed nothing")
	}

	sim2, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim2.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(); err != nil {
		t.Fatal(err)
	}
	sim2.Release()
	if got := o.SimDrainBatches().Value(); got != batches {
		t.Errorf("uninstrumented pooled run moved the old registry: %d -> %d", batches, got)
	}
}
