package cluster_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func randomFlows(rng *rand.Rand, n int) []*workflow.Workflow {
	var flows []*workflow.Workflow
	for i := 0; i < n; i++ {
		b := workflow.NewBuilder("w" + string(rune('a'+i)))
		jobs := 1 + rng.Intn(5)
		names := make([]string, jobs)
		for j := 0; j < jobs; j++ {
			names[j] = "j" + string(rune('0'+j))
			var after []string
			if j > 0 && rng.Intn(2) == 0 {
				after = append(after, names[j-1])
			}
			b.Job(names[j], 1+rng.Intn(8), rng.Intn(4),
				time.Duration(5+rng.Intn(40))*time.Second,
				time.Duration(10+rng.Intn(80))*time.Second, after...)
		}
		flows = append(flows, b.MustBuild(
			simtime.FromSeconds(float64(rng.Intn(60))), simtime.FromSeconds(1e7)))
	}
	return flows
}

// TestHeartbeatModeBoundedDelay: for any workload, heartbeat-driven dispatch
// can never finish earlier than instant dispatch, and conservation holds in
// both modes.
func TestHeartbeatModeBoundedDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		flows := randomFlows(rng, 1+rng.Intn(4))
		total := 0
		for _, w := range flows {
			total += w.TotalTasks()
		}
		runMode := func(hb time.Duration) *cluster.Result {
			cfg := cluster.Config{
				Nodes: 3, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
				HeartbeatInterval: hb,
			}
			sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range flows {
				if err := sim.Submit(w, nil); err != nil {
					t.Fatal(err)
				}
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		instant := runMode(0)
		heartbeat := runMode(3 * time.Second)
		if instant.TasksStarted != total || heartbeat.TasksStarted != total {
			t.Fatalf("trial %d: conservation broken: %d/%d of %d",
				trial, instant.TasksStarted, heartbeat.TasksStarted, total)
		}
		if heartbeat.Makespan < instant.Makespan {
			t.Errorf("trial %d: heartbeat makespan %v beat instant %v",
				trial, heartbeat.Makespan, instant.Makespan)
		}
		// Busy slot-time is identical: the same tasks run for the same
		// durations; only their start times shift.
		if heartbeat.MapBusy != instant.MapBusy || heartbeat.ReduceBusy != instant.ReduceBusy {
			t.Errorf("trial %d: busy time changed across dispatch modes", trial)
		}
	}
}

// TestUtilizationNeverExceedsOne across random configurations and features.
func TestUtilizationNeverExceedsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		cfg := cluster.Config{
			Nodes:              1 + rng.Intn(5),
			MapSlotsPerNode:    1 + rng.Intn(3),
			ReduceSlotsPerNode: 1 + rng.Intn(2),
			Noise:              rng.Float64() * 0.5,
			Seed:               int64(trial),
		}
		if rng.Intn(2) == 0 {
			cfg.SpeculativeSlowdown = 1.2
		}
		if rng.Intn(2) == 0 {
			cfg.Replication = 3
			cfg.RemotePenalty = 1.3
		}
		sim, err := cluster.New(cfg, scheduler.NewFair(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range randomFlows(rng, 1+rng.Intn(3)) {
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for name, u := range map[string]float64{
			"overall": res.Utilization(),
			"map":     res.MapUtilization(),
			"reduce":  res.ReduceUtilization(),
		} {
			if u < 0 || u > 1+1e-9 {
				t.Errorf("trial %d: %s utilization %v outside [0,1]", trial, name, u)
			}
		}
	}
}
