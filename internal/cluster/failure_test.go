package cluster_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func TestFailureRequeuesLostTasks(t *testing.T) {
	// One node, 2 map slots. 4 maps of 20s: wave 1 runs 0-20s. The node
	// fails at 10s and recovers at 30s: wave 1 is lost, so all 4 maps run
	// after recovery (30-50, 50-70), reduce 70-80.
	cfg := cluster.Config{
		Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		Failures: []cluster.Failure{{Node: 0, At: simtime.FromSeconds(10), Downtime: 20 * time.Second}},
	}
	w := workflow.NewBuilder("w").
		Job("j", 4, 1, 20*time.Second, 10*time.Second).
		MustBuild(0, simtime.FromSeconds(1000))
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(80); got != want {
		t.Errorf("Finish = %v, want %v", got, want)
	}
	// 4 maps + 1 reduce finished, plus 2 lost attempts restarted.
	if res.TasksStarted != 7 {
		t.Errorf("TasksStarted = %d, want 7 (5 tasks + 2 retries)", res.TasksStarted)
	}
	// Busy time counts only executed slot-time: 2 lost 10s halves (20s),
	// 4 full maps (80s) = 100s map-busy; 10s reduce-busy.
	if res.MapBusy != 100*time.Second {
		t.Errorf("MapBusy = %v, want 100s", res.MapBusy)
	}
	if res.ReduceBusy != 10*time.Second {
		t.Errorf("ReduceBusy = %v, want 10s", res.ReduceBusy)
	}
}

func TestPermanentFailureUsesSurvivors(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Failures: []cluster.Failure{{Node: 0, At: simtime.FromSeconds(5)}},
	}
	w := workflow.NewBuilder("w").
		Job("j", 4, 2, 10*time.Second, 10*time.Second).
		MustBuild(0, simtime.FromSeconds(1000))
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 alone: maps at 0-10 (one per node initially; node 0's dies at
	// 5s)... all work eventually lands on node 1's single slot pair.
	if !res.Workflows[0].Met {
		t.Error("workflow missed a generous deadline despite a surviving node")
	}
}

func TestAllNodesDeadIsStuck(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		Failures: []cluster.Failure{{Node: 0, At: simtime.FromSeconds(5)}},
	}
	w := workflow.NewBuilder("w").
		Job("j", 3, 1, 10*time.Second, 10*time.Second).
		MustBuild(0, simtime.FromSeconds(1000))
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Errorf("Run error = %v, want stuck", err)
	}
}

func TestFailureConfigValidation(t *testing.T) {
	bad := []cluster.Failure{
		{Node: -1, At: 0},
		{Node: 5, At: 0},
		{Node: 0, At: -1},
		{Node: 0, At: 0, Downtime: -time.Second},
	}
	for i, f := range bad {
		cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
			Failures: []cluster.Failure{f}}
		if _, err := cluster.New(cfg, scheduler.NewFIFO(), nil); err == nil {
			t.Errorf("failure %d accepted: %+v", i, f)
		}
	}
}

// TestWOHASurvivesFailures runs the WOHA scheduler (with its schedulable
// counters and progress rollback) through randomized failure storms and
// checks everything still completes with balanced observer pairing.
func TestWOHASurvivesFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		var failures []cluster.Failure
		for n := 0; n < 4; n++ {
			if rng.Intn(2) == 0 {
				failures = append(failures, cluster.Failure{
					Node:     n,
					At:       simtime.FromSeconds(float64(5 + rng.Intn(120))),
					Downtime: time.Duration(10+rng.Intn(60)) * time.Second,
				})
			}
		}
		cfg := cluster.Config{
			Nodes: 5, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.1, Seed: int64(trial), Failures: failures,
		}
		obs := &countingObserver{}
		pol := core.NewScheduler(core.Options{Seed: int64(trial), PolicyName: "LPF"})
		sim, err := cluster.New(cfg, pol, obs)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < 4; i++ {
			w := workflow.NewBuilder("w"+string(rune('0'+i))).
				Job("a", 3+rng.Intn(6), 1+rng.Intn(3), 15*time.Second, 25*time.Second).
				Job("b", 2+rng.Intn(4), 1, 10*time.Second, 20*time.Second, "a").
				MustBuild(simtime.FromSeconds(float64(rng.Intn(30))), simtime.FromSeconds(100000))
			total += w.TotalTasks()
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range res.Workflows {
			if w.Finish == 0 {
				t.Fatalf("trial %d: %s never finished", trial, w.Name)
			}
		}
		// Attempts >= distinct tasks; observer start/finish pairing exact.
		if res.TasksStarted < total {
			t.Fatalf("trial %d: %d attempts < %d tasks", trial, res.TasksStarted, total)
		}
		if obs.started != obs.finished {
			t.Fatalf("trial %d: observer imbalance %d/%d", trial, obs.started, obs.finished)
		}
		if obs.running != 0 {
			t.Fatalf("trial %d: %d tasks still 'running'", trial, obs.running)
		}
	}
}
