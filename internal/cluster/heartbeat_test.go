package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// TestHeartbeatBusySuppression pins the dormant-node optimization: a node
// with every slot occupied and speculation off stops ticking until a
// completion wakes it. One map slot, zero reduce slots, one 50s map task:
// the run needs the t=0 dispatch heartbeat and the completion — not the ~50
// intermediate 1s ticks the naive re-arm would process.
func TestHeartbeatBusySuppression(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 0,
		HeartbeatInterval: time.Second,
	}
	w := workflow.NewBuilder("w").
		Job("j", 1, 0, 50*time.Second, 0).
		MustBuild(0, simtime.FromSeconds(100))
	res := run(t, cfg, scheduler.NewFIFO(), w)

	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(50); got != want {
		t.Errorf("Finish = %v, want %v", got, want)
	}
	// Arrival + dispatch heartbeat + completion, plus a constant few: far
	// below the ~53 events an unsuppressed run processes.
	if res.SimulatedEvents >= 10 {
		t.Errorf("SimulatedEvents = %d, want < 10 (busy node must not keep ticking)", res.SimulatedEvents)
	}
}

// TestHeartbeatDrainedSkipsToArrival pins the drained-cluster optimization:
// when every arrived workflow is done but later releases are pending, ticks
// jump to the next release instead of idling across the gap — without
// shifting the heartbeat phase grid (the second workflow's timing stays
// on-grid and exact).
func TestHeartbeatDrainedSkipsToArrival(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		HeartbeatInterval: 4 * time.Second,
	}
	mk := func(name string, rel simtime.Time) *workflow.Workflow {
		return workflow.NewBuilder(name).
			Job("j", 1, 1, 5*time.Second, 5*time.Second).
			MustBuild(rel, rel.Add(1000*time.Second))
	}
	// W1 at t=0: map dispatched at the t=0 tick (0-5), reduce at the t=8
	// tick (8-13). W2 at t=100 (on the 4s grid): map 100-105, reduce 108-113.
	res := run(t, cfg, scheduler.NewFIFO(), mk("w1", 0), mk("w2", simtime.FromSeconds(100)))

	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(13); got != want {
		t.Errorf("w1 Finish = %v, want %v", got, want)
	}
	if got, want := res.Workflows[1].Finish, simtime.FromSeconds(113); got != want {
		t.Errorf("w2 Finish = %v, want %v", got, want)
	}
	// The 13s..100s gap holds no events under skip-ahead; idling through it
	// would add ~21 ticks.
	if res.SimulatedEvents >= 25 {
		t.Errorf("SimulatedEvents = %d, want < 25 (drained node must skip to the next arrival)", res.SimulatedEvents)
	}
}

// TestHeartbeatOffGridArrival covers the skip-ahead rounding: an arrival off
// the heartbeat grid must be served at the next on-grid tick after it, not
// at the arrival instant.
func TestHeartbeatOffGridArrival(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 0,
		HeartbeatInterval: 4 * time.Second,
	}
	w := workflow.NewBuilder("w").
		Job("j", 1, 0, 5*time.Second, 0).
		MustBuild(simtime.FromSeconds(10), simtime.FromSeconds(1000))
	res := run(t, cfg, scheduler.NewFIFO(), w)

	// Release 10s is between ticks 8 and 12: dispatch at 12, finish at 17.
	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(17); got != want {
		t.Errorf("Finish = %v, want %v (off-grid arrival must wait for the next tick)", got, want)
	}
}

// TestSameSeedTwiceIdentical replays one configuration twice — noise,
// stragglers, speculation, failures, heartbeats all on — and demands
// identical Results. This pins the determinism of speculation victim choice
// (the overdue heap breaks elapsed-time ties by attempt sequence) and of the
// pooled simulator state across reuse.
func TestSameSeedTwiceIdentical(t *testing.T) {
	mk := func() *cluster.Result {
		cfg := cluster.Config{
			Nodes: 6, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.6, Seed: 11,
			StragglerProb: 0.2, StragglerFactor: 4,
			SpeculativeSlowdown: 1.2,
			HeartbeatInterval:   3 * time.Second,
			Failures: []cluster.Failure{
				{Node: 2, At: simtime.FromSeconds(60), Downtime: 45 * time.Second},
			},
		}
		w1 := workflow.NewBuilder("w1").
			Job("a", 10, 3, 30*time.Second, 60*time.Second).
			Job("b", 6, 2, 25*time.Second, 50*time.Second, "a").
			MustBuild(0, simtime.FromSeconds(1e6))
		w2 := workflow.NewBuilder("w2").
			Job("a", 8, 2, 40*time.Second, 30*time.Second).
			MustBuild(simtime.FromSeconds(20), simtime.FromSeconds(1e6))
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []*workflow.Workflow{w1, w2} {
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		sim.Release() // second run draws this pooled state back out
		return res
	}
	first := mk()
	second := mk()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("same seed diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestHeartbeatSpeculationFailureConservation combines heartbeat-driven
// dispatch with node failures and speculation — the three paths that retire
// attempts — and checks logical-task conservation: every workflow finishes,
// observer pairing balances, and concurrency never exceeds capacity.
func TestHeartbeatSpeculationFailureConservation(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		cfg := cluster.Config{
			Nodes: 5, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.6, Seed: int64(200 + trial),
			SpeculativeSlowdown: 1.2,
			HeartbeatInterval:   3 * time.Second,
			Failures: []cluster.Failure{
				{Node: trial % 5, At: simtime.FromSeconds(40), Downtime: 60 * time.Second},
				{Node: (trial + 3) % 5, At: simtime.FromSeconds(100), Downtime: 50 * time.Second},
			},
		}
		obs := &countingObserver{}
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), obs)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < 2; i++ {
			w := workflow.NewBuilder("w"+string(rune('0'+i))).
				Job("a", 8, 2, 30*time.Second, 60*time.Second).
				Job("b", 5, 1, 20*time.Second, 40*time.Second, "a").
				MustBuild(simtime.FromSeconds(float64(10*i)), simtime.FromSeconds(1e6))
			total += w.TotalTasks()
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range res.Workflows {
			if w.Finish == 0 {
				t.Fatalf("trial %d: %s never finished", trial, w.Name)
			}
		}
		if res.TasksStarted < total {
			t.Fatalf("trial %d: attempts %d < tasks %d", trial, res.TasksStarted, total)
		}
		if obs.started != obs.finished || obs.running != 0 {
			t.Fatalf("trial %d: observer imbalance started=%d finished=%d running=%d",
				trial, obs.started, obs.finished, obs.running)
		}
		if obs.maxRunning > cfg.TotalSlots() {
			t.Fatalf("trial %d: concurrency %d exceeded %d slots", trial, obs.maxRunning, cfg.TotalSlots())
		}
	}
}
