package cluster_test

// Same-seed equivalence sweep over the pooled arena core: every scheduler ×
// speculation × failure-injection combination runs the same seeded scenario
// twice through the simulator pool and must produce a DeepEqual Result. The
// sweep is table-driven and runs under `make race` (the race targets include
// this package), so it also proves the pool handoff and the per-run arena
// reset publish cleanly across goroutines.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// equivScheduler pairs a policy factory with the priority policy WOHA
// variants need for plan generation (nil for the ported baselines).
type equivScheduler struct {
	name string
	make func() cluster.Policy
	prio priority.Policy
}

func equivSchedulers() []equivScheduler {
	woha := func(p priority.Policy) func() cluster.Policy {
		return func() cluster.Policy {
			return core.NewScheduler(core.Options{Seed: 11, PolicyName: p.Name()})
		}
	}
	return []equivScheduler{
		{"EDF", func() cluster.Policy { return scheduler.NewEDF() }, nil},
		{"FIFO", func() cluster.Policy { return scheduler.NewFIFO() }, nil},
		{"Fair", func() cluster.Policy { return scheduler.NewFair() }, nil},
		{"WOHA-LPF", woha(priority.LPF{}), priority.LPF{}},
		{"WOHA-HLF", woha(priority.HLF{}), priority.HLF{}},
		{"WOHA-MPF", woha(priority.MPF{}), priority.MPF{}},
	}
}

// equivFlows is a small DAG-bearing workload: two multi-job workflows with
// staggered releases, enough parallel width to exercise twin attempts and
// the per-node running lists under contention.
func equivFlows() []*workflow.Workflow {
	w1 := workflow.NewBuilder("w1").
		Job("a", 12, 4, 30*time.Second, 60*time.Second).
		Job("b", 8, 2, 25*time.Second, 50*time.Second, "a").
		Job("c", 6, 3, 20*time.Second, 40*time.Second, "a").
		Job("d", 4, 2, 15*time.Second, 30*time.Second, "b", "c").
		MustBuild(0, simtime.FromSeconds(900))
	w2 := workflow.NewBuilder("w2").
		Job("a", 10, 3, 40*time.Second, 30*time.Second).
		Job("b", 5, 2, 20*time.Second, 25*time.Second, "a").
		MustBuild(simtime.FromSeconds(20), simtime.FromSeconds(700))
	return []*workflow.Workflow{w1, w2}
}

// TestSameSeedEquivalenceSweep runs each (scheduler, speculation, failures)
// combination twice with the same seed, through the pooled simulator, and
// requires byte-identical Results. Noise and heartbeat dispatch stay on
// throughout so every run crosses the batched drain path and the RNG.
func TestSameSeedEquivalenceSweep(t *testing.T) {
	flows := equivFlows()
	for _, sched := range equivSchedulers() {
		for _, spec := range []bool{false, true} {
			for _, fail := range []bool{false, true} {
				name := fmt.Sprintf("%s/spec=%v/fail=%v", sched.name, spec, fail)
				t.Run(name, func(t *testing.T) {
					cfg := cluster.Config{
						Nodes: 6, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
						HeartbeatInterval: 3 * time.Second,
						Noise:             0.3, Seed: 7,
					}
					if spec {
						cfg.SpeculativeSlowdown = 1.3
						cfg.StragglerProb = 0.15
						cfg.StragglerFactor = 4
					}
					if fail {
						cfg.Failures = []cluster.Failure{
							{Node: 1, At: simtime.FromSeconds(45), Downtime: 60 * time.Second},
							{Node: 4, At: simtime.FromSeconds(90)}, // permanent
						}
					}
					var plans []*plan.Plan
					if sched.prio != nil {
						caps := plan.Caps{Maps: cfg.MapSlots(), Reduces: cfg.ReduceSlots()}
						for _, w := range flows {
							p, err := plan.GenerateCappedTyped(w, caps, sched.prio, 0.85)
							if err != nil {
								t.Fatalf("plan: %v", err)
							}
							plans = append(plans, p)
						}
					}
					once := func() *cluster.Result {
						sim, err := cluster.New(cfg, sched.make(), nil)
						if err != nil {
							t.Fatal(err)
						}
						for i, w := range flows {
							var p *plan.Plan
							if i < len(plans) {
								p = plans[i]
							}
							if err := sim.Submit(w, p); err != nil {
								t.Fatal(err)
							}
						}
						res, err := sim.Run()
						if err != nil {
							t.Fatal(err)
						}
						sim.Release()
						return res
					}
					first := once()
					second := once()
					if !reflect.DeepEqual(first, second) {
						t.Errorf("same seed diverged:\nfirst:  %+v\nsecond: %+v", first, second)
					}
				})
			}
		}
	}
}
