package cluster

import (
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// This file holds the simulator's struct-of-arrays memory layout: every
// mutable record the hot loop touches lives in a contiguous slice owned by
// the pooled Simulator and is addressed by a small-int handle instead of a
// pointer or map key. Release() reclaims everything wholesale, so repeated
// scenarios run with near-zero steady-state heap allocation (see DESIGN.md
// §12).

// nilAttempt is the null attempt handle / intrusive-list terminator.
const nilAttempt = int32(-1)

// attemptRec is one in-flight task attempt, stored flat in the attempt
// arena. It merges the roles of the former runningTask (per-node map value)
// and attemptRef (global map value): the node's running set is now the
// intrusive doubly-linked list threaded through prev/next, and global lookup
// is direct indexing by handle.
type attemptRec struct {
	// end and dur give the attempt's scheduled completion and duration.
	end simtime.Time
	dur time.Duration
	// wf, job, node locate the task and where it runs.
	wf   int32
	job  int32
	node int32
	// twin is the handle of the other attempt of the same task under
	// speculative execution (nilAttempt = none). Invariant: twin handles
	// never dangle — whenever one attempt of a pair dies, the survivor is
	// killed or detached in the same step, so a live twin field always
	// names a live record.
	twin int32
	// seq is the attempt's launch sequence, the deterministic tie-break key
	// the speculation heap orders by.
	seq int32
	// prev/next thread the node's running list while live; next doubles as
	// the free-list link while dead.
	prev, next int32
	// gen distinguishes reuses of this slot: free() bumps it, so a pending
	// completion event carrying (handle, gen) of an earlier occupant is
	// recognized as stale — the role the map-existence check used to play,
	// made ABA-safe under handle reuse.
	gen uint32
	// st is the attempt's SlotType, narrowed to a byte.
	st uint8
	// speculative marks the duplicate attempt, which carries no JobState
	// accounting of its own.
	speculative bool
	// live reports whether the record currently holds a running attempt.
	live bool
}

// attemptArena allocates attemptRecs from one contiguous slice. Freed
// records chain into a free list and are handed out again before the slice
// grows, so a scenario's attempt churn settles into a fixed working set;
// reset() reclaims everything at once while keeping capacity.
type attemptArena struct {
	recs     []attemptRec
	freeHead int32
	live     int
	// reused/grown tally free-list hits and slice growth this run, flushed
	// to the woha_sim_arena_* metrics at the end of Run (plain ints keep
	// the uninstrumented hot path free of atomics).
	reused, grown int
}

func (a *attemptArena) reset() {
	a.recs = a.recs[:0]
	a.freeHead = nilAttempt
	a.live = 0
	a.reused, a.grown = 0, 0
}

// alloc returns a record ready to overwrite. Its gen is already advanced
// past every handle previously issued for the slot; callers must preserve
// it. The returned pointer is invalidated by the next alloc (the slice may
// grow) — copy what you need before allocating again.
func (a *attemptArena) alloc() (int32, *attemptRec) {
	if h := a.freeHead; h != nilAttempt {
		rec := &a.recs[h]
		a.freeHead = rec.next
		a.live++
		a.reused++
		return h, rec
	}
	if len(a.recs) == cap(a.recs) {
		a.grown++
	}
	a.recs = append(a.recs, attemptRec{})
	h := int32(len(a.recs) - 1)
	a.live++
	return h, &a.recs[h]
}

// free retires h's record and advances its generation, invalidating every
// outstanding (handle, gen) reference to it. The caller must have unlinked
// it from its node's running list first — free repurposes next for the free
// list.
func (a *attemptArena) free(h int32) {
	rec := &a.recs[h]
	rec.live = false
	rec.gen++
	rec.next = a.freeHead
	a.freeHead = h
	a.live--
}

// Workflow-state arena: WorkflowState and JobState records are reused across
// pooled runs like attempt records, but policies and observers hold
// *WorkflowState for a whole run, so these live in fixed-size blocks that
// never move once allocated — growth appends new blocks instead of
// relocating old ones.
const (
	wsBlockSize  = 64
	jobBlockSize = 512
)

type wsArena struct {
	blocks [][]WorkflowState
	used   int
	// jobBlocks is carved sequentially; a workflow's JobState slice never
	// spans blocks. Workflows with more than jobBlockSize jobs get a
	// dedicated exact-size block.
	jobBlocks [][]JobState
	jobBlock  int
	jobUsed   int
	// wordBlocks backs the schedulable-index bitsets (EnableSchedIndex),
	// carved like jobBlocks so steady-state submission allocates nothing.
	// No zeroing on release: the words are plain integers (nothing to pin)
	// and EnableSchedIndex clears its slice on reuse.
	wordBlocks [][]uint64
	wordBlock  int
	wordUsed   int
}

func (a *wsArena) reset() {
	a.used = 0
	a.jobBlock, a.jobUsed = 0, 0
	a.wordBlock, a.wordUsed = 0, 0
}

// release zeroes every record handed out since the last reset — dropping the
// Spec/Plan/Jobs references so a pooled simulator pins nothing — and then
// resets. Called from Simulator.Release.
func (a *wsArena) release() {
	for i := 0; i < a.used; i++ {
		a.blocks[i/wsBlockSize][i%wsBlockSize] = WorkflowState{}
	}
	for bi := 0; bi <= a.jobBlock && bi < len(a.jobBlocks); bi++ {
		n := len(a.jobBlocks[bi])
		if bi == a.jobBlock {
			n = a.jobUsed
		}
		clear(a.jobBlocks[bi][:n])
	}
	a.reset()
}

// alloc returns a fully initialized workflow state whose memory is stable
// for the simulator's lifetime (not just this run — blocks are never
// freed, only overwritten by a later run's alloc).
func (a *wsArena) alloc(index int, w *workflow.Workflow, p *plan.Plan) *WorkflowState {
	bi := a.used / wsBlockSize
	if bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]WorkflowState, wsBlockSize))
	}
	ws := &a.blocks[bi][a.used%wsBlockSize]
	a.used++
	initWorkflowState(ws, a.allocJobs(len(w.Jobs)), index, w, p)
	return ws
}

// wordBlockSize sizes the bitset blocks: 512 words cover the index of ~85
// typical workflows (2 words each) before a new block is needed.
const wordBlockSize = 512

// allocWords carves n uint64s for a workflow's schedulable-index bitsets; a
// workflow's words never span blocks.
func (a *wsArena) allocWords(n int) []uint64 {
	for {
		if a.wordBlock == len(a.wordBlocks) {
			size := wordBlockSize
			if n > size {
				size = n
			}
			a.wordBlocks = append(a.wordBlocks, make([]uint64, size))
		}
		if blk := a.wordBlocks[a.wordBlock]; a.wordUsed+n <= len(blk) {
			ws := blk[a.wordUsed : a.wordUsed+n : a.wordUsed+n]
			a.wordUsed += n
			return ws
		}
		a.wordBlock++
		a.wordUsed = 0
	}
}

func (a *wsArena) allocJobs(n int) []JobState {
	for {
		if a.jobBlock == len(a.jobBlocks) {
			size := jobBlockSize
			if n > size {
				size = n
			}
			a.jobBlocks = append(a.jobBlocks, make([]JobState, size))
		}
		if blk := a.jobBlocks[a.jobBlock]; a.jobUsed+n <= len(blk) {
			js := blk[a.jobUsed : a.jobUsed+n : a.jobUsed+n]
			a.jobUsed += n
			return js
		}
		// Tail of the current block is too small; waste it and move on.
		a.jobBlock++
		a.jobUsed = 0
	}
}
