//go:build race

package cluster_test

// raceEnabled reports that this binary was built with -race. The race
// runtime randomizes sync.Pool reuse (Puts may be dropped), so tests that
// pin pool-warmth behavior — allocation budgets, warm-capacity expectations
// — skip those assertions under race and keep only the warmth-independent
// ones.
const raceEnabled = true
