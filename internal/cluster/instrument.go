package cluster

import (
	"time"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// InstrumentPolicy wraps pol so every NextTask decision is timed into the
// policy's labeled woha_scheduler_decision_seconds histogram. The wrapper
// forwards the optional ReducePhasePolicy and RequeuePolicy extensions only
// when pol implements them, so scheduling semantics are unchanged. With a
// nil o, pol is returned untouched.
func InstrumentPolicy(pol Policy, o *obs.Obs) Policy {
	if o == nil || pol == nil {
		return pol
	}
	return &instrumentedPolicy{Policy: pol, o: o, decide: o.DecisionHistogram(pol.Name())}
}

type instrumentedPolicy struct {
	Policy
	o      *obs.Obs
	decide *obs.Histogram
}

// The wrapper must forward both optional extensions; the conditional
// forwarding below keeps behaviour identical for policies lacking them.
var (
	_ Policy            = (*instrumentedPolicy)(nil)
	_ ReducePhasePolicy = (*instrumentedPolicy)(nil)
	_ RequeuePolicy     = (*instrumentedPolicy)(nil)
)

func (p *instrumentedPolicy) NextTask(now simtime.Time, st SlotType) (*WorkflowState, workflow.JobID, bool) {
	t0 := time.Now()
	ws, job, ok := p.Policy.NextTask(now, st)
	p.decide.ObserveDuration(time.Since(t0))
	return ws, job, ok
}

func (p *instrumentedPolicy) ReducesReady(ws *WorkflowState, job workflow.JobID, now simtime.Time) {
	if rp, ok := p.Policy.(ReducePhasePolicy); ok {
		rp.ReducesReady(ws, job, now)
	}
}

func (p *instrumentedPolicy) TaskRequeued(ws *WorkflowState, job workflow.JobID, st SlotType, now simtime.Time) {
	if rq, ok := p.Policy.(RequeuePolicy); ok {
		rq.TaskRequeued(ws, job, st, now)
	}
}

// Unwrap returns the wrapped policy, for callers that type-assert on
// concrete policy types.
func (p *instrumentedPolicy) Unwrap() Policy { return p.Policy }
