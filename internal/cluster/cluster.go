// Package cluster simulates the Hadoop-1 control plane that WOHA extends:
// a single JobTracker scheduling map and reduce tasks onto the typed slots of
// many TaskTrackers, driven by discrete events.
//
// The simulation reproduces every scheduling decision point of the real
// system: workflows arrive at their release times, a job's tasks become
// schedulable when its prerequisites finish (Oozie's submission rule, or
// WOHA's on-demand submitter maps), reduce tasks wait for the job's map
// phase to complete, and the pluggable Policy — the WorkflowScheduler of the
// paper — is consulted whenever slots idle. Task durations come from the
// per-job estimates in the workflow spec, optionally perturbed by seeded
// multiplicative noise to model estimation error.
//
// Two dispatch modes are supported. With HeartbeatInterval zero the
// JobTracker reacts to every task completion immediately (the fine-grained
// mode used by the experiments, equivalent to heartbeats arriving "just in
// time"). With a positive interval each TaskTracker reports idle slots only
// on its periodic heartbeat, as in Hadoop-1.
package cluster

import (
	mbits "math/bits"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// SlotType distinguishes Hadoop-1's two slot kinds.
type SlotType int

// The two slot types.
const (
	MapSlot SlotType = iota
	ReduceSlot
)

// String returns "map" or "reduce".
func (s SlotType) String() string {
	if s == MapSlot {
		return "map"
	}
	return "reduce"
}

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the number of TaskTrackers.
	Nodes int
	// MapSlotsPerNode and ReduceSlotsPerNode give each TaskTracker's slot
	// counts (the paper's testbed ran 2 map slots and 1 reduce slot per
	// server).
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// HeartbeatInterval enables heartbeat-driven dispatch when positive;
	// zero means the JobTracker schedules on every completion event.
	HeartbeatInterval time.Duration
	// SubmitterOverhead models WOHA's map-only submitter job: each wjob
	// becomes schedulable this long after its prerequisites finish,
	// standing in for the submitter map task that loads jar files and
	// initializes the job on a slave node. Zero activates jobs instantly.
	SubmitterOverhead time.Duration
	// Noise perturbs each task's duration uniformly in
	// [1-Noise, 1+Noise] times its estimate, modeling estimation error.
	// Must be in [0, 1).
	Noise float64
	// Seed drives all randomness (noise only; the simulator is otherwise
	// deterministic).
	Seed int64
	// Failures schedules TaskTracker outages. When a node fails, its
	// running tasks are lost and re-queued as pending (Hadoop re-executes
	// tasks of failed trackers), and its slots disappear until recovery.
	Failures []Failure

	// Replication enables data-locality modeling for map tasks: each
	// assignment is data-local with probability 1-(1-1/Nodes)^Replication
	// (uniform HDFS block placement with this replication factor). Zero
	// disables locality modeling entirely.
	Replication int
	// RemotePenalty multiplies a non-local map task's duration (network
	// read instead of local disk). Values below 1 are rejected; typical
	// is 1.2-1.5. Ignored when Replication is zero.
	RemotePenalty float64
	// DelayScheduling makes the JobTracker hold a slot back from a
	// non-local assignment until the job has waited this long for a local
	// one, following Zaharia et al.'s delay scheduling. Zero accepts
	// remote assignments immediately.
	DelayScheduling time.Duration

	// StragglerProb injects one-sided stragglers: each task attempt
	// independently runs StragglerFactor times longer than its (noisy)
	// duration with this probability, modeling the swapping and contention
	// outliers that motivate speculative execution. Zero disables.
	StragglerProb float64
	// StragglerFactor is the straggler slowdown multiple (> 1).
	StragglerFactor float64

	// SpeculativeSlowdown enables speculative execution: when slots idle
	// with no pending work, a running task whose elapsed time exceeds
	// SpeculativeSlowdown times its estimate gets a duplicate attempt on a
	// free slot; the first finisher wins and the loser is killed. Zero
	// disables speculation. Values at or below 1 are rejected.
	SpeculativeSlowdown float64
}

// Failure is one scripted TaskTracker outage.
type Failure struct {
	// Node is the failing TaskTracker's index.
	Node int
	// At is the failure instant.
	At simtime.Time
	// Downtime is how long the node stays dead; zero means it never
	// recovers.
	Downtime time.Duration
}

// MapSlots returns the cluster-wide map slot count.
func (c Config) MapSlots() int { return c.Nodes * c.MapSlotsPerNode }

// ReduceSlots returns the cluster-wide reduce slot count.
func (c Config) ReduceSlots() int { return c.Nodes * c.ReduceSlotsPerNode }

// TotalSlots returns the total slot count, the "maximum number of slots in
// the system" a WOHA client queries when generating a plan.
func (c Config) TotalSlots() int { return c.MapSlots() + c.ReduceSlots() }

// JobState is the runtime state of one wjob.
type JobState struct {
	// ID is the job's index within its workflow.
	ID workflow.JobID
	// Ready reports whether the job's prerequisites (and submitter task,
	// when modeled) have finished, making its tasks schedulable.
	Ready bool
	// ActivatedAt is when Ready became true (the job's Hadoop submission
	// time under Oozie semantics). Meaningless while !Ready.
	ActivatedAt simtime.Time

	// PendingMaps counts map tasks not yet started; RunningMaps started
	// but unfinished; DoneMaps finished. Likewise for reduces.
	PendingMaps, RunningMaps, DoneMaps          int
	PendingReduces, RunningReduces, DoneReduces int

	// unmet counts unfinished prerequisite jobs.
	unmet int
	// delayedSince marks when the job first declined a non-local map
	// assignment under delay scheduling (zero = not waiting).
	delayedSince simtime.Time
}

// MapsDone reports whether the job's map phase has fully completed,
// unblocking its reduce tasks.
func (js *JobState) MapsDone() bool { return js.RunningMaps == 0 && js.PendingMaps == 0 }

// Completed reports whether every task of the job has finished.
func (js *JobState) Completed() bool {
	return js.MapsDone() && js.PendingReduces == 0 && js.RunningReduces == 0
}

// Schedulable reports whether the job can start a task on a slot of type st
// right now.
func (js *JobState) Schedulable(st SlotType) bool {
	if !js.Ready {
		return false
	}
	if st == MapSlot {
		return js.PendingMaps > 0
	}
	return js.PendingReduces > 0 && js.MapsDone()
}

// WorkflowState is the runtime state of one submitted workflow, shared
// between the simulator and the scheduling policy.
type WorkflowState struct {
	// Index is the workflow's arrival index, unique within a run.
	Index int
	// Spec is the immutable workflow definition.
	Spec *workflow.Workflow
	// Plan is the WOHA scheduling plan, nil under non-WOHA policies.
	Plan *plan.Plan
	// Jobs holds per-job runtime state, indexed by JobID.
	Jobs []JobState

	// ScheduledTasks is the true progress ρ: tasks started so far.
	ScheduledTasks int
	// RunningTasks counts currently executing tasks (Fair scheduling key).
	RunningTasks int
	// remaining counts tasks not yet finished; the workflow completes when
	// it reaches zero.
	remaining int

	// Done and FinishTime record completion.
	Done       bool
	FinishTime simtime.Time

	// Rejected marks a workflow the admission controller turned away: it is
	// Done without ever reaching the policy, RejectReason names the stage
	// that refused it, and CounterOffer (when non-zero) is the earliest
	// feasible deadline offered back. All zero under the default
	// always-admit front door.
	Rejected     bool
	RejectReason string
	CounterOffer simtime.Time

	// schedCnt counts, per slot type, the jobs currently able to start a
	// task; schedJobs is the matching bitset over job IDs. Both exist only
	// when the owning control plane opted in via EnableSchedIndex and calls
	// RefreshJob after every JobState counter mutation; otherwise
	// Schedulable falls back to the per-job scan. The frozen refsim oracle
	// never opts in, so its behaviour is untouched by construction.
	schedCnt  [2]int32
	schedJobs [2][]uint64
}

// NewWorkflowState builds the runtime state for one submitted workflow:
// per-job pending counters seeded from the spec, unmet-prerequisite counts,
// and the remaining-task countdown. Both control planes — the discrete-event
// simulator and the live JobTracker — construct state through here so the
// invariants (Jobs indexed by JobID, remaining = total tasks) are enforced
// in one place.
func NewWorkflowState(index int, w *workflow.Workflow, p *plan.Plan) *WorkflowState {
	ws := &WorkflowState{}
	initWorkflowState(ws, make([]JobState, len(w.Jobs)), index, w, p)
	return ws
}

// initWorkflowState initializes *ws in place over the given jobs storage
// (len(jobs) == len(w.Jobs)); the simulator's workflow arena reuses records
// through here with the same invariants NewWorkflowState enforces. Every
// field is overwritten, so recycled storage needs no prior clearing.
func initWorkflowState(ws *WorkflowState, jobs []JobState, index int, w *workflow.Workflow, p *plan.Plan) {
	*ws = WorkflowState{
		Index: index,
		Spec:  w,
		Plan:  p,
		Jobs:  jobs,
	}
	for i := range w.Jobs {
		jobs[i] = JobState{
			ID:             workflow.JobID(i),
			PendingMaps:    w.Jobs[i].Maps,
			PendingReduces: w.Jobs[i].Reduces,
			unmet:          len(w.Jobs[i].Prereqs),
		}
		ws.remaining += w.Jobs[i].Tasks()
	}
}

// TaskDone consumes one finished task and returns how many remain; zero
// means this completion finished the workflow. Call exactly once per task
// completion, under whatever synchronization guards ws — the counter makes
// workflow-finish detection O(1) instead of a scan over every job.
func (ws *WorkflowState) TaskDone() int {
	ws.remaining--
	return ws.remaining
}

// TasksRemaining reports the number of tasks not yet finished.
func (ws *WorkflowState) TasksRemaining() int { return ws.remaining }

// Schedulable reports whether any job of the workflow can start a task on a
// slot of type st. O(1) when the owning control plane maintains the
// schedulable index; a per-job scan otherwise.
func (ws *WorkflowState) Schedulable(st SlotType) bool {
	if ws.schedJobs[st] != nil {
		return ws.schedCnt[st] > 0
	}
	for i := range ws.Jobs {
		if ws.Jobs[i].Schedulable(st) {
			return true
		}
	}
	return false
}

// EnableSchedIndex activates the per-slot-type schedulable index over the
// given bitset storage (nil allocates; otherwise words must hold at least
// 2 × ⌈len(Jobs)/64⌉ entries — the simulator passes arena-carved storage so
// steady-state submission stays allocation-free). The control plane that
// enables the index owns its maintenance: RefreshJob must be called after
// every mutation of a job's Ready flag or pending/running counters, before
// any policy consults the workflow.
func (ws *WorkflowState) EnableSchedIndex(words []uint64) {
	n := (len(ws.Jobs) + 63) / 64
	if words == nil {
		words = make([]uint64, 2*n)
	}
	for i := range words[:2*n] {
		words[i] = 0
	}
	ws.schedJobs[MapSlot] = words[:n:n]
	ws.schedJobs[ReduceSlot] = words[n : 2*n : 2*n]
	ws.schedCnt = [2]int32{}
	for j := range ws.Jobs {
		ws.RefreshJob(workflow.JobID(j))
	}
}

// RefreshJob reconciles the schedulable index with job's current state. It
// is idempotent and state-based, so callers may refresh conservatively; a
// no-op when the index is not enabled.
func (ws *WorkflowState) RefreshJob(job workflow.JobID) {
	if ws.schedJobs[MapSlot] == nil {
		return
	}
	js := &ws.Jobs[job]
	w, bit := uint(job)>>6, uint64(1)<<(uint(job)&63)
	for st := MapSlot; st <= ReduceSlot; st++ {
		has := ws.schedJobs[st][w]&bit != 0
		if want := js.Schedulable(st); want != has {
			if want {
				ws.schedJobs[st][w] |= bit
				ws.schedCnt[st]++
			} else {
				ws.schedJobs[st][w] &^= bit
				ws.schedCnt[st]--
			}
		}
	}
}

// NextSchedulableJob returns the lowest job ID >= from whose job can start a
// task of type st. With the index enabled it walks the bitset a word at a
// time; otherwise it scans. Iterating via successive calls visits jobs in
// ascending ID order — the tie-break order of the policies' scans.
func (ws *WorkflowState) NextSchedulableJob(st SlotType, from workflow.JobID) (workflow.JobID, bool) {
	set := ws.schedJobs[st]
	if set == nil {
		for j := int(from); j < len(ws.Jobs); j++ {
			if ws.Jobs[j].Schedulable(st) {
				return workflow.JobID(j), true
			}
		}
		return 0, false
	}
	w := int(from) >> 6
	if w >= len(set) {
		return 0, false
	}
	word := set[w] &^ ((uint64(1) << (uint(from) & 63)) - 1)
	for {
		if word != 0 {
			return workflow.JobID(w<<6 | mbits.TrailingZeros64(word)), true
		}
		w++
		if w >= len(set) {
			return 0, false
		}
		word = set[w]
	}
}

// Policy is the pluggable WorkflowScheduler consulted by the JobTracker.
// Implementations are single-threaded: the simulator never calls a Policy
// concurrently.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// WorkflowAdded announces a newly arrived workflow. Its root jobs are
	// not yet Ready; JobActivated follows for each job as it becomes
	// submittable.
	WorkflowAdded(ws *WorkflowState, now simtime.Time)
	// JobActivated announces that ws.Jobs[job] became Ready.
	JobActivated(ws *WorkflowState, job workflow.JobID, now simtime.Time)
	// NextTask picks the workflow and job that should receive an idle slot
	// of type st, or ok == false to leave the slot idle. The simulator
	// guarantees the returned job is Schedulable(st).
	NextTask(now simtime.Time, st SlotType) (ws *WorkflowState, job workflow.JobID, ok bool)
	// TaskStarted confirms a task of ws.Jobs[job] was placed on a slot.
	TaskStarted(ws *WorkflowState, job workflow.JobID, st SlotType, now simtime.Time)
	// WorkflowCompleted announces that every task of ws has finished.
	WorkflowCompleted(ws *WorkflowState, now simtime.Time)
}

// RequeuePolicy is an optional extension of Policy: the simulator notifies
// implementations when a running task is lost to a TaskTracker failure and
// returns to the pending pool, so schedulable-task accounting stays exact.
type RequeuePolicy interface {
	Policy
	// TaskRequeued fires once per task lost to a node failure.
	TaskRequeued(ws *WorkflowState, job workflow.JobID, st SlotType, now simtime.Time)
}

// ReducePhasePolicy is an optional extension of Policy: the simulator
// notifies implementations the moment a job's map phase completes and its
// reduce tasks become schedulable, letting the policy keep exact
// schedulable-task counts instead of rescanning on every slot offer.
type ReducePhasePolicy interface {
	Policy
	// ReducesReady fires when ws.Jobs[job] finishes its map phase with
	// reduce tasks pending.
	ReducesReady(ws *WorkflowState, job workflow.JobID, now simtime.Time)
}

// Observer receives task lifecycle callbacks for metrics collection. A nil
// Observer is allowed everywhere one is accepted.
type Observer interface {
	// TaskStarted fires when a task begins executing.
	TaskStarted(now simtime.Time, wf *WorkflowState, job workflow.JobID, st SlotType, dur time.Duration)
	// TaskFinished fires when a task completes.
	TaskFinished(now simtime.Time, wf *WorkflowState, job workflow.JobID, st SlotType)
}
