package cluster_test

// Pins for the stepping primitives (step.go): driving a simulator instant by
// instant through Peek/StepTo must be indistinguishable from Run, SubmitLive
// must refuse releases behind the clock, and LoadView must account the work
// a half-run cluster still owes.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// TestStepToMatchesRun drives one simulator with Run and a second, fed the
// same workload, one instant at a time via Peek + StepTo; the Results must be
// byte-identical.
func TestStepToMatchesRun(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		HeartbeatInterval: 3 * time.Second,
		Noise:             0.2, Seed: 21,
		Failures: []cluster.Failure{{Node: 2, At: simtime.FromSeconds(40), Downtime: 30 * time.Second}},
	}
	flows := equivFlows()

	runSim, err := cluster.New(cfg, scheduler.NewEDF(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range flows {
		if err := runSim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	want, err := runSim.Run()
	if err != nil {
		t.Fatal(err)
	}
	runSim.Release()

	stepSim, err := cluster.New(cfg, scheduler.NewEDF(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range flows {
		if err := stepSim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := stepSim.Start(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		at, ok := stepSim.Peek()
		if !ok {
			break
		}
		if n := stepSim.StepTo(at); n == 0 {
			t.Fatalf("StepTo(%v) applied no events despite Peek", at)
		}
		if now := stepSim.Now(); now != at {
			t.Fatalf("clock at %v after StepTo(%v)", now, at)
		}
		steps++
	}
	got, err := stepSim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	stepSim.Release()

	if steps < 2 {
		t.Fatalf("stepped %d instants; workload too trivial to pin anything", steps)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("stepped run diverged from Run:\nrun:  %+v\nstep: %+v", want, got)
	}
}

// TestSubmitLiveGuards covers SubmitLive's contract edges: before Start it is
// plain Submit, after Start it refuses releases behind the clock, and Start
// itself refuses to run twice.
func TestSubmitLiveGuards(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		HeartbeatInterval: 3 * time.Second, Seed: 1,
	}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	early := workflow.NewBuilder("early").
		Job("a", 2, 1, 5*time.Second, 5*time.Second).
		MustBuild(0, simtime.FromSeconds(600))
	if err := sim.SubmitLive(early, nil); err != nil {
		t.Fatalf("SubmitLive before Start: %v", err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err == nil {
		t.Error("second Start succeeded, want error")
	}
	sim.StepTo(simtime.MaxTime)
	if sim.Now() <= 0 {
		t.Fatalf("clock still at %v after draining", sim.Now())
	}
	stale := workflow.NewBuilder("stale").
		Job("a", 1, 1, time.Second, time.Second).
		MustBuild(0, simtime.FromSeconds(600))
	if err := sim.SubmitLive(stale, nil); err == nil {
		t.Error("SubmitLive with release behind the clock succeeded, want error")
	}
	late := workflow.NewBuilder("late").
		Job("a", 1, 1, time.Second, time.Second).
		MustBuild(sim.Now().Add(time.Minute), sim.Now().Add(time.Hour))
	if err := sim.SubmitLive(late, nil); err != nil {
		t.Fatalf("SubmitLive ahead of the clock: %v", err)
	}
	sim.StepTo(simtime.MaxTime)
	res, err := sim.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workflows) != 2 || !res.Workflows[1].Met {
		t.Errorf("late workflow outcome %+v, want 2 completed workflows", res.Workflows)
	}
	sim.Release()
}

// TestLoadViewAccountsBacklog checks LoadView before, during, and after a
// run: a freshly started cluster owes every submitted task, and a drained
// cluster owes nothing with all slots free.
func TestLoadViewAccountsBacklog(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		HeartbeatInterval: 3 * time.Second, Seed: 1,
	}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workflow.NewBuilder("w").
		Job("a", 4, 2, 10*time.Second, 20*time.Second).
		MustBuild(0, simtime.FromSeconds(600))
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	l := sim.LoadView()
	if l.ActiveWorkflows != 1 || l.PendingTasks != 6 {
		t.Errorf("pre-run load %+v, want 1 active workflow with 6 pending tasks", l)
	}
	if want := 4*10*time.Second + 2*20*time.Second; l.Backlog != want {
		t.Errorf("pre-run backlog %v, want %v", l.Backlog, want)
	}
	if l.FreeMaps != 4 || l.FreeReduces != 2 || l.MapSlots != 4 || l.ReduceSlots != 2 {
		t.Errorf("pre-run slots %+v, want all free", l)
	}
	sim.StepTo(simtime.MaxTime)
	l = sim.LoadView()
	if l.ActiveWorkflows != 0 || l.PendingTasks != 0 || l.RunningTasks != 0 || l.Backlog != 0 {
		t.Errorf("drained load %+v, want everything zero", l)
	}
	if l.FreeMaps != 4 || l.FreeReduces != 2 {
		t.Errorf("drained slots %+v, want all free", l)
	}
	if _, err := sim.Finish(); err != nil {
		t.Fatal(err)
	}
	sim.Release()
}
