package cluster_test

// Steady-state allocation pins for the arena simulator core. A pooled
// Simulator replaying a scenario must stay within scenarioAllocBudget heap
// allocations end to end — New (pool draw + reset), Submit, the whole event
// loop (heartbeat serve, dispatch, complete, speculation), and Release. The
// only tolerated allocations are the Result value and its Workflows slice;
// the budget of 3 leaves one spare so an incidental runtime allocation does
// not flake CI. Wired into `make ci` via the alloc-pins target.

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// scenarioAllocBudget is the ISSUE 7 acceptance ceiling: ≤3 heap
// allocations per scenario once the pool and arena are warm.
const scenarioAllocBudget = 3

// pinPolicy is a minimal FIFO policy whose queue capacity is pre-grown, so
// the pin measures the simulator core alone. Real policies allocate their
// own bookkeeping; that cost is theirs, not the arena's.
type pinPolicy struct{ queue []pinEntry }

type pinEntry struct {
	ws  *cluster.WorkflowState
	job workflow.JobID
}

func newPinPolicy() *pinPolicy { return &pinPolicy{queue: make([]pinEntry, 0, 64)} }

func (p *pinPolicy) Name() string                                       { return "pin" }
func (p *pinPolicy) WorkflowAdded(*cluster.WorkflowState, simtime.Time) {}
func (p *pinPolicy) TaskStarted(*cluster.WorkflowState, workflow.JobID, cluster.SlotType, simtime.Time) {
}
func (p *pinPolicy) WorkflowCompleted(*cluster.WorkflowState, simtime.Time) {}

func (p *pinPolicy) JobActivated(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	p.queue = append(p.queue, pinEntry{ws: ws, job: job})
}

func (p *pinPolicy) NextTask(_ simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	w := 0
	for _, e := range p.queue {
		js := &e.ws.Jobs[e.job]
		if js.Completed() {
			continue
		}
		p.queue[w] = e
		w++
		if js.Schedulable(st) {
			return e.ws, e.job, true
		}
	}
	p.queue = p.queue[:w]
	return nil, 0, false
}

// measureScenarioAllocs replays the equivalence workload under cfg through
// the pooled simulator and returns the steady-state allocations per run.
// Policies are pre-built outside the measured closure (one per iteration —
// policies are stateful and must be fresh).
func measureScenarioAllocs(t *testing.T, cfg cluster.Config) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race runtime randomizes sync.Pool reuse; alloc budgets hold only in regular builds")
	}
	flows := equivFlows()
	const iters = 20
	pols := make([]*pinPolicy, iters+2)
	for i := range pols {
		pols[i] = newPinPolicy()
	}
	i := 0
	run := func() {
		pol := pols[i%len(pols)]
		i++
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range flows {
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		sim.Release()
	}
	// Warm the pool, arena, and event-heap capacity before measuring:
	// first-run growth is amortized capital, not steady-state cost.
	run()
	run()
	return testing.AllocsPerRun(iters, run)
}

// TestScenarioAllocsInstantDispatch pins the instant-dispatch scenario
// (completion-driven scheduling, the Fig 8 configuration) at the ISSUE 7
// steady-state budget.
func TestScenarioAllocsInstantDispatch(t *testing.T) {
	cfg := cluster.Config{Nodes: 6, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 7}
	if got := measureScenarioAllocs(t, cfg); got > scenarioAllocBudget {
		t.Errorf("instant-dispatch scenario allocates %.1f/run, budget %d", got, scenarioAllocBudget)
	}
}

// TestScenarioAllocsHeartbeatLoop pins the heartbeat-grid hot loop — serve,
// dispatch, complete, plus noise, stragglers, and speculative twins (the
// arena's free-list churn path) — at the same budget.
func TestScenarioAllocsHeartbeatLoop(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 6, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Seed: 7,
		HeartbeatInterval: 3 * time.Second,
		Noise:             0.3,
		StragglerProb:     0.15, StragglerFactor: 4,
		SpeculativeSlowdown: 1.3,
	}
	if got := measureScenarioAllocs(t, cfg); got > scenarioAllocBudget {
		t.Errorf("heartbeat scenario allocates %.1f/run, budget %d", got, scenarioAllocBudget)
	}
}
