package cluster

import (
	"time"

	"repro/internal/simtime"
)

// WorkflowResult records how one workflow fared.
type WorkflowResult struct {
	// Name and Index identify the workflow.
	Name  string
	Index int
	// Release, Deadline, and Finish are the workflow's absolute times.
	Release, Deadline, Finish simtime.Time
	// Workspan is Finish - Release (the paper's per-workflow metric in
	// Fig 11).
	Workspan time.Duration
	// Tardiness is max(0, Finish - Deadline).
	Tardiness time.Duration
	// Met reports whether the deadline was satisfied.
	Met bool
	// Rejected marks a workflow the admission front door turned away; it
	// never ran, so Finish and Workspan are zero and Met is false.
	// RejectReason names the refusing stage and CounterOffer (non-zero only
	// when one was made) the earliest feasible deadline offered back.
	Rejected     bool
	RejectReason string
	CounterOffer simtime.Time
}

// Result aggregates a simulation run.
type Result struct {
	// Policy is the scheduling policy's name.
	Policy string
	// Config echoes the cluster configuration of the run.
	Config Config
	// Workflows holds per-workflow outcomes in arrival order.
	Workflows []WorkflowResult
	// Makespan is the completion time of the last task in the run.
	Makespan simtime.Time
	// MapBusy and ReduceBusy accumulate busy slot-time by type.
	MapBusy, ReduceBusy time.Duration
	// TasksStarted counts every task attempt the run executed (task
	// re-executions after node failures count separately).
	TasksStarted int
	// LocalMaps and RemoteMaps split map assignments by data locality;
	// both are zero when locality modeling is off.
	LocalMaps, RemoteMaps int
	// SimulatedEvents counts the discrete events the run processed — the
	// denominator for ns/simulated-event throughput reporting.
	SimulatedEvents int
}

func (s *Simulator) result() *Result {
	r := &Result{
		Policy:       s.pol.Name(),
		Config:       s.cfg,
		Makespan:     s.makespan,
		MapBusy:      s.mapBusy,
		ReduceBusy:   s.reduceBusy,
		TasksStarted: s.tasksStarted,
		LocalMaps:    s.localMaps,
		RemoteMaps:   s.remoteMaps,

		SimulatedEvents: s.eventCount,
	}
	if n := len(s.states); n > 0 {
		// Exact-size prealloc; an empty run keeps Workflows nil, as the
		// append-only construction always did.
		r.Workflows = make([]WorkflowResult, 0, n)
	}
	for _, ws := range s.states {
		wr := WorkflowResult{
			Name:     ws.Spec.Name,
			Index:    ws.Index,
			Release:  ws.Spec.Release,
			Deadline: ws.Spec.Deadline,
			Finish:   ws.FinishTime,
		}
		if ws.Rejected {
			wr.Rejected = true
			wr.RejectReason = ws.RejectReason
			wr.CounterOffer = ws.CounterOffer
			r.Workflows = append(r.Workflows, wr)
			continue
		}
		wr.Workspan = wr.Finish.Sub(wr.Release)
		if wr.Finish > wr.Deadline {
			wr.Tardiness = wr.Finish.Sub(wr.Deadline)
		}
		wr.Met = wr.Tardiness == 0
		r.Workflows = append(r.Workflows, wr)
	}
	return r
}

// DeadlineMisses returns the number of workflows that missed their deadline.
func (r *Result) DeadlineMisses() int {
	n := 0
	for _, w := range r.Workflows {
		if !w.Met {
			n++
		}
	}
	return n
}

// MissRatio returns the deadline violation ratio (Fig 8's metric). It is 0
// for an empty run. Rejected workflows count as misses here — from the
// submitter's view their deadline was not met; AdmittedMissRatio excludes
// them.
func (r *Result) MissRatio() float64 {
	if len(r.Workflows) == 0 {
		return 0
	}
	return float64(r.DeadlineMisses()) / float64(len(r.Workflows))
}

// Rejections returns the number of workflows the admission front door turned
// away (always 0 under the default always-admit controller).
func (r *Result) Rejections() int {
	n := 0
	for _, w := range r.Workflows {
		if w.Rejected {
			n++
		}
	}
	return n
}

// AdmittedMissRatio returns the deadline violation ratio among the workflows
// that were actually admitted — the quantity the admission trade-off sweep
// compares against the always-admit MissRatio. It is 0 when nothing was
// admitted.
func (r *Result) AdmittedMissRatio() float64 {
	admitted, missed := 0, 0
	for _, w := range r.Workflows {
		if w.Rejected {
			continue
		}
		admitted++
		if !w.Met {
			missed++
		}
	}
	if admitted == 0 {
		return 0
	}
	return float64(missed) / float64(admitted)
}

// MaxTardiness returns the largest tardiness over all workflows (Fig 9).
func (r *Result) MaxTardiness() time.Duration {
	var m time.Duration
	for _, w := range r.Workflows {
		if w.Tardiness > m {
			m = w.Tardiness
		}
	}
	return m
}

// TotalTardiness returns the summed tardiness over all workflows (Fig 10).
func (r *Result) TotalTardiness() time.Duration {
	var t time.Duration
	for _, w := range r.Workflows {
		t += w.Tardiness
	}
	return t
}

// Utilization returns the fraction of slot-time spent busy between the epoch
// and the makespan, over all slots of both types (Fig 12's metric).
func (r *Result) Utilization() float64 {
	span := r.Makespan.Duration()
	if span == 0 {
		return 0
	}
	capacity := time.Duration(r.Config.TotalSlots()) * span
	return float64(r.MapBusy+r.ReduceBusy) / float64(capacity)
}

// MapUtilization returns busy fraction of map slots only.
func (r *Result) MapUtilization() float64 {
	span := r.Makespan.Duration()
	if span == 0 || r.Config.MapSlots() == 0 {
		return 0
	}
	return float64(r.MapBusy) / float64(time.Duration(r.Config.MapSlots())*span)
}

// ReduceUtilization returns busy fraction of reduce slots only.
func (r *Result) ReduceUtilization() float64 {
	span := r.Makespan.Duration()
	if span == 0 || r.Config.ReduceSlots() == 0 {
		return 0
	}
	return float64(r.ReduceBusy) / float64(time.Duration(r.Config.ReduceSlots())*span)
}
