package cluster_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// TestSpeculationRescuesStraggler builds a deterministic straggler: high
// noise makes some attempts run long; with ample idle slots, speculation
// must cut the makespan relative to the same seed without speculation.
func TestSpeculationRescuesStraggler(t *testing.T) {
	mk := func(slowdown float64) *cluster.Result {
		cfg := cluster.Config{
			Nodes: 8, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.8, Seed: 3, SpeculativeSlowdown: slowdown,
		}
		w := workflow.NewBuilder("w").
			Job("j", 12, 4, 60*time.Second, 120*time.Second).
			MustBuild(0, simtime.FromSeconds(1e6))
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(0)
	spec := mk(1.1)
	if spec.TasksStarted <= base.TasksStarted {
		t.Errorf("speculation launched no duplicates: %d vs %d attempts",
			spec.TasksStarted, base.TasksStarted)
	}
	if spec.Makespan >= base.Makespan {
		t.Errorf("speculative makespan %v not below baseline %v", spec.Makespan, base.Makespan)
	}
}

func TestSpeculationConfigValidation(t *testing.T) {
	for _, v := range []float64{0.5, 1.0, -1} {
		cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
			SpeculativeSlowdown: v}
		if _, err := cluster.New(cfg, scheduler.NewFIFO(), nil); err == nil {
			t.Errorf("slowdown %v accepted", v)
		}
	}
}

// TestSpeculationConservation checks exact logical-task accounting under
// speculation: every workflow completes, observer pairing balances, and no
// task finishes twice.
func TestSpeculationConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		cfg := cluster.Config{
			Nodes: 6, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.6, Seed: int64(trial), SpeculativeSlowdown: 1.2,
		}
		obs := &countingObserver{}
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), obs)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < 3; i++ {
			w := workflow.NewBuilder("w"+string(rune('0'+i))).
				Job("a", 4+rng.Intn(8), 1+rng.Intn(3), 30*time.Second, 60*time.Second).
				Job("b", 3+rng.Intn(5), 1, 20*time.Second, 40*time.Second, "a").
				MustBuild(simtime.FromSeconds(float64(rng.Intn(20))), simtime.FromSeconds(1e6))
			total += w.TotalTasks()
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range res.Workflows {
			if w.Finish == 0 {
				t.Fatalf("trial %d: %s never finished", trial, w.Name)
			}
		}
		if res.TasksStarted < total {
			t.Fatalf("trial %d: attempts %d < tasks %d", trial, res.TasksStarted, total)
		}
		if obs.started != obs.finished || obs.running != 0 {
			t.Fatalf("trial %d: observer imbalance started=%d finished=%d running=%d",
				trial, obs.started, obs.finished, obs.running)
		}
		if obs.maxRunning > cfg.TotalSlots() {
			t.Fatalf("trial %d: concurrency %d exceeded %d slots", trial, obs.maxRunning, cfg.TotalSlots())
		}
	}
}

// TestSpeculationWithFailures stresses the twin/failure interplay: nodes die
// while duplicates run; the surviving attempt must carry the task without
// double-completion or lost work.
func TestSpeculationWithFailures(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		cfg := cluster.Config{
			Nodes: 5, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.7, Seed: int64(100 + trial), SpeculativeSlowdown: 1.2,
			Failures: []cluster.Failure{
				{Node: trial % 5, At: simtime.FromSeconds(40), Downtime: 60 * time.Second},
				{Node: (trial + 2) % 5, At: simtime.FromSeconds(90), Downtime: 45 * time.Second},
			},
		}
		obs := &countingObserver{}
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), obs)
		if err != nil {
			t.Fatal(err)
		}
		w := workflow.NewBuilder("w").
			Job("a", 10, 3, 30*time.Second, 60*time.Second).
			Job("b", 6, 2, 25*time.Second, 50*time.Second, "a").
			MustBuild(0, simtime.FromSeconds(1e6))
		if err := sim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Workflows[0].Finish == 0 {
			t.Fatalf("trial %d: workflow never finished", trial)
		}
		if obs.started != obs.finished || obs.running != 0 {
			t.Fatalf("trial %d: observer imbalance started=%d finished=%d running=%d",
				trial, obs.started, obs.finished, obs.running)
		}
	}
}

// TestSpeculationBeatsStragglers uses the one-sided straggler model — the
// regime speculative execution exists for: 15% of attempts run 5x long.
// Across seeds, speculation must win clearly on average.
func TestSpeculationBeatsStragglers(t *testing.T) {
	mk := func(seed int64, slowdown float64) time.Duration {
		cfg := cluster.Config{
			Nodes: 8, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Noise: 0.2, Seed: seed,
			StragglerProb: 0.15, StragglerFactor: 5,
			SpeculativeSlowdown: slowdown,
		}
		w := workflow.NewBuilder("w").
			Job("j", 14, 4, 60*time.Second, 120*time.Second).
			MustBuild(0, simtime.FromSeconds(1e6))
		sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan.Duration()
	}
	wins, total := 0, 0
	var saved time.Duration
	for seed := int64(0); seed < 12; seed++ {
		base := mk(seed, 0)
		spec := mk(seed, 1.3)
		total++
		if spec < base {
			wins++
			saved += base - spec
		}
	}
	if wins < total*2/3 {
		t.Errorf("speculation won only %d/%d straggler runs", wins, total)
	}
	if saved == 0 {
		t.Error("speculation saved no time across any run")
	}
}

func TestStragglerConfigValidation(t *testing.T) {
	bad := []cluster.Config{
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, StragglerProb: -0.1},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, StragglerProb: 1.0, StragglerFactor: 2},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, StragglerProb: 0.1, StragglerFactor: 1.0},
	}
	for i, cfg := range bad {
		if _, err := cluster.New(cfg, scheduler.NewFIFO(), nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
