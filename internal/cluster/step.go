package cluster

// Stepping primitives: the simulator's run loop, exposed piecewise so an
// external driver can interleave several simulators under one shared virtual
// clock. Run() is exactly Start + StepTo(MaxTime) + Finish; the federation
// layer (internal/federation) instead calls Peek on every member cluster,
// advances only the globally-earliest one with StepTo, and injects routed
// workflows mid-run with SubmitLive. The frozen refsim oracle knows nothing
// of any of this, and plain Run byte-identity against it is unchanged.

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Start freezes the pre-submitted arrival set and arms the run's standing
// event sources — the staggered heartbeat grids and the scripted failure
// schedule — without processing any event. Run calls it internally; external
// drivers call it once and then advance the simulator with StepTo.
//
// Unlike Run, Start arms heartbeats even when nothing has been submitted
// yet: a federation member must be able to receive its first workflow via
// SubmitLive after time has started moving. The initial ticks of a still-
// empty cluster die out on their own (rearmHeartbeat's run-complete path,
// doneCount == len(states) == 0), which is exactly the state a pre-run
// Submit would have found them in.
func (s *Simulator) Start() error {
	if s.ran {
		return fmt.Errorf("cluster: Start after Run or Start")
	}
	s.ran = true
	slices.Sort(s.arrivalTimes)
	if s.cfg.HeartbeatInterval > 0 {
		// Stagger heartbeats evenly across the interval, as a real fleet's
		// unsynchronized trackers would. Each node's ticks stay on its own
		// phase grid (Epoch + offset + k*interval) for the whole run, so
		// suppression and skip-ahead can never shift the tick times a node
		// would naturally have fired at.
		for i := range s.nodes {
			s.armHeartbeat(i, simtime.Epoch.Add(s.hbOffset(i)))
		}
	}
	for _, f := range s.cfg.Failures {
		s.events.Push(f.At, event{kind: evFail, a: int32(f.Node)})
		if f.Downtime > 0 {
			s.events.Push(f.At.Add(f.Downtime), event{kind: evRecover, a: int32(f.Node)})
		}
	}
	return nil
}

// Peek returns the instant of the earliest pending event without processing
// it. ok is false when the queue is empty (the simulator is fully drained).
func (s *Simulator) Peek() (at simtime.Time, ok bool) {
	return s.events.Peek()
}

// StepTo processes every pending instant at or before t, in order, and
// returns the number of events applied. The simulator's clock rests at the
// last instant processed; events that handlers push within the window are
// processed too, exactly as Run's internal loop would have.
//
// The heap is drained once per instant: every event already scheduled at the
// earliest pending time arrives in one batch, in push order — exactly the
// order a pop-per-event loop would have delivered, so each handler (and the
// dispatch pass it triggers) runs against identical intermediate state.
// Events a handler pushes at the still-current instant (a heartbeat wake, an
// instant activation) form the next batch, again matching pop-per-event
// ordering by seq stamp.
func (s *Simulator) StepTo(t simtime.Time) int {
	applied := 0
	for {
		at, ok := s.events.Peek()
		if !ok || at > t {
			return applied
		}
		s.batch = s.batch[:0]
		at, n := s.events.DrainInstant(&s.batch)
		s.now = at
		s.eventCount += n
		s.drainBatches++
		s.drainCoalesced += n - 1
		applied += n
		for i := 0; i < n; i++ {
			e := s.batch[i]
			s.evCount[e.kind].Inc()
			switch e.kind {
			case evArrival:
				s.arrive(int(e.a))
			case evActivate:
				s.activate(int(e.a), workflow.JobID(e.b))
			case evComplete:
				s.complete(e.a, e.gen)
			case evHeartbeat:
				s.heartbeat(int(e.a))
			case evFail:
				s.fail(int(e.a))
			case evRecover:
				s.recover(int(e.a))
			case evRetry:
				if s.specWake <= s.now {
					s.specWake = simtime.MaxTime
				}
				s.dispatchAll()
			}
		}
	}
}

// Finish flushes the run's deferred metrics, checks for stuck workflows, and
// returns the results. Call once, after the event queue has drained.
func (s *Simulator) Finish() (*Result, error) {
	s.flushRunMetrics()
	if s.doneCount != len(s.states) {
		for _, ws := range s.states {
			if !ws.Done {
				return nil, fmt.Errorf("cluster: workflow %q stuck with %d tasks remaining (policy %s left schedulable work idle or cluster lacks a slot type)",
					ws.Spec.Name, ws.remaining, s.pol.Name())
			}
		}
	}
	return s.result(), nil
}

// SubmitLive submits a workflow to a started simulator, for arrival at its
// release time (which must not precede the simulator's clock). Before Start
// it is exactly Submit.
//
// The event stream from the release instant onward is identical to the
// stream a pre-run Submit of the same workflow would have produced — the
// property the federation staleness=0 equivalence test pins. Two details
// make that hold:
//
//   - the arrival event is injected with PushFront, so it precedes the
//     completions and heartbeats already queued at the same instant, just as
//     a Submit-time arrival's older seq stamp would have;
//   - nodes parked when the run drained (their re-arm was declined only
//     because no arrival was known; see nodeState.parked) are re-armed on
//     their own phase grid at the first tick ≥ release, the precise instant
//     the drained-skip branch would have chosen had the arrival been
//     pre-submitted. Busy-suppressed nodes stay dormant — a pre-run Submit
//     would not have ticked them either; completions and recoveries wake
//     them identically in both histories.
func (s *Simulator) SubmitLive(w *workflow.Workflow, p *plan.Plan) error {
	if !s.ran {
		return s.Submit(w, p)
	}
	if err := w.Validated(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if w.Release < s.now {
		return fmt.Errorf("cluster: SubmitLive %q releases at %v, before the simulator's instant %v",
			w.Name, w.Release, s.now)
	}
	ws := s.wsa.alloc(len(s.states), w, p)
	ws.EnableSchedIndex(s.wsa.allocWords(2 * ((len(w.Jobs) + 63) / 64)))
	s.ins.Health().Register(ws.Index, w.Name, w.Release, w.Deadline, w.TotalTasks(), p)
	s.states = append(s.states, ws)
	s.events.PushFront(w.Release, event{kind: evArrival, a: int32(ws.Index)})
	// Keep the pending suffix of the arrival-time multiset sorted, so
	// heartbeat skip-ahead still reads the earliest pending arrival at
	// arrivalTimes[arrIdx].
	i := len(s.arrivalTimes)
	s.arrivalTimes = append(s.arrivalTimes, w.Release)
	for i > s.arrIdx && s.arrivalTimes[i-1] > s.arrivalTimes[i] {
		s.arrivalTimes[i-1], s.arrivalTimes[i] = s.arrivalTimes[i], s.arrivalTimes[i-1]
		i--
	}
	s.arrivalsLeft++
	if s.cfg.HeartbeatInterval > 0 {
		for n := range s.nodes {
			if s.nodes[n].parked {
				s.armHeartbeat(n, s.nextTick(n, w.Release))
			}
		}
	}
	return nil
}

// Now returns the simulator's clock: the instant of the last event processed
// (Epoch before any).
func (s *Simulator) Now() simtime.Time {
	return s.now
}

// Load is a point-in-time view of one simulator's occupancy — the quantity
// the federation routers decide on. Taking one walks every submitted
// workflow, so the federation refreshes views on its configured staleness
// interval rather than per routing decision.
type Load struct {
	// At is the owning simulator's clock when the view was taken.
	At simtime.Time
	// ActiveWorkflows counts arrived-or-pending workflows not yet finished
	// or rejected.
	ActiveWorkflows int
	// RunningTasks counts task attempts currently occupying slots;
	// PendingTasks counts tasks of active workflows not yet started.
	RunningTasks int
	PendingTasks int
	// Backlog is the summed estimated duration of every pending task — the
	// slot-time the cluster still owes its admitted work.
	Backlog time.Duration
	// FreeMaps and FreeReduces count idle slots on up nodes.
	FreeMaps    int
	FreeReduces int
	// MapSlots and ReduceSlots echo the configured capacity.
	MapSlots    int
	ReduceSlots int
}

// LoadView snapshots the simulator's current load.
func (s *Simulator) LoadView() Load {
	l := Load{
		At:          s.now,
		MapSlots:    s.cfg.MapSlots(),
		ReduceSlots: s.cfg.ReduceSlots(),
	}
	for _, ws := range s.states {
		if ws.Done {
			continue
		}
		l.ActiveWorkflows++
		l.RunningTasks += ws.RunningTasks
		l.PendingTasks += ws.TasksRemaining() - ws.RunningTasks
		for j := range ws.Jobs {
			js := &ws.Jobs[j]
			spec := &ws.Spec.Jobs[j]
			l.Backlog += time.Duration(js.PendingMaps)*spec.MapTime +
				time.Duration(js.PendingReduces)*spec.ReduceTime
		}
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		if n.down {
			continue
		}
		l.FreeMaps += int(n.freeMap)
		l.FreeReduces += int(n.freeReduce)
	}
	return l
}
