package cluster_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func localityWorkflow() *workflow.Workflow {
	return workflow.NewBuilder("loc").
		Job("j", 200, 10, 20*time.Second, 30*time.Second).
		MustBuild(0, simtime.FromSeconds(1e6))
}

func runLocality(t *testing.T, cfg cluster.Config) *cluster.Result {
	t.Helper()
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(localityWorkflow(), nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLocalityDisabledByDefault(t *testing.T) {
	res := runLocality(t, cluster.Config{Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1})
	if res.LocalMaps != 0 || res.RemoteMaps != 0 {
		t.Errorf("locality counters %d/%d with modeling off", res.LocalMaps, res.RemoteMaps)
	}
}

func TestLocalitySplitsAssignments(t *testing.T) {
	cfg := cluster.Config{
		Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		Replication: 3, RemotePenalty: 1.5, Seed: 4,
	}
	res := runLocality(t, cfg)
	if res.LocalMaps+res.RemoteMaps != 200 {
		t.Fatalf("locality split %d+%d != 200 maps", res.LocalMaps, res.RemoteMaps)
	}
	// P(local) = 1-(1-0.1)^3 = 0.271; with 200 draws expect roughly
	// 30-80 local.
	if res.LocalMaps < 25 || res.LocalMaps > 90 {
		t.Errorf("LocalMaps = %d, want ~54 for p=0.271", res.LocalMaps)
	}
}

func TestRemotePenaltySlowsRun(t *testing.T) {
	base := runLocality(t, cluster.Config{Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1})
	penalized := runLocality(t, cluster.Config{
		Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
		Replication: 3, RemotePenalty: 1.5, Seed: 4,
	})
	if penalized.Makespan <= base.Makespan {
		t.Errorf("penalized makespan %v not above baseline %v", penalized.Makespan, base.Makespan)
	}
}

func TestDelaySchedulingTradesTimeForLocality(t *testing.T) {
	mk := func(delay time.Duration) *cluster.Result {
		return runLocality(t, cluster.Config{
			Nodes: 10, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1,
			Replication: 1, RemotePenalty: 2.0, Seed: 7,
			DelayScheduling: delay,
		})
	}
	eager := mk(0)
	delayed := mk(5 * time.Second)
	// With replication 1, p(local) = 0.1: eager runs ~90% remote. Delay
	// scheduling re-draws after each wait, converting a chunk of those to
	// local assignments.
	eagerFrac := float64(eager.LocalMaps) / float64(eager.LocalMaps+eager.RemoteMaps)
	delayedFrac := float64(delayed.LocalMaps) / float64(delayed.LocalMaps+delayed.RemoteMaps)
	if delayedFrac <= eagerFrac {
		t.Errorf("delay scheduling locality %.2f not above eager %.2f", delayedFrac, eagerFrac)
	}
	// Everything still completes exactly once.
	if delayed.LocalMaps+delayed.RemoteMaps != 200 {
		t.Errorf("delayed split %d+%d != 200", delayed.LocalMaps, delayed.RemoteMaps)
	}
}

func TestLocalityConfigValidation(t *testing.T) {
	bad := []cluster.Config{
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, Replication: -1},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, Replication: 3, RemotePenalty: 0.5},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, DelayScheduling: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := cluster.New(cfg, scheduler.NewFIFO(), nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
