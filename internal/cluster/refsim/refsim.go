// Package refsim is the frozen pre-SoA cluster simulator, kept verbatim as
// the golden parity oracle for the arena/struct-of-arrays core in
// internal/cluster. It is the map-based, pop-per-event implementation that
// produced every committed figure before the memory-layout refactor:
// attempts live in map[int] tables keyed by launch sequence, each node keeps
// a running map, and the event heap is popped once per event.
//
// Do not optimize or otherwise "improve" this package — its only job is to
// stay byte-identical in behavior to the historical simulator so the parity
// test in internal/experiments can prove the rewritten core reproduces
// Fig 8 / Fig 11 and every met/miss vector exactly. It is deliberately
// unpooled and uninstrumented (instrumentation never influenced results).
//
// Two fields of the shared state types are unexported to package cluster
// (JobState.unmet, JobState.delayedSince); refsim tracks both in parallel
// per-workflow arrays, which is observationally identical because nothing
// outside the simulator ever read them.
package refsim

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"repro/internal/cluster"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Run executes flows (with matching plans; plans[i] may be nil) on the
// reference simulator and returns the run result. It mirrors the historical
// New + Submit loop + Run sequence exactly.
func Run(cfg cluster.Config, pol cluster.Policy, obs cluster.Observer,
	flows []*workflow.Workflow, plans []*plan.Plan) (*cluster.Result, error) {
	if len(plans) != 0 && len(plans) != len(flows) {
		return nil, fmt.Errorf("refsim: %d plans for %d workflows", len(plans), len(flows))
	}
	s := &simulator{
		cfg:      cfg,
		pol:      pol,
		obs:      obs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nodes:    make([]nodeState, cfg.Nodes),
		specWake: simtime.MaxTime,
		attempts: make(map[int]attemptRef),
		makespan: simtime.Epoch,
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		n.freeMap, n.freeReduce = cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode
		n.running = make(map[int]runningTask)
	}
	if cfg.MapSlotsPerNode > 0 {
		s.freeIdx[cluster.MapSlot].fill(cfg.Nodes)
	} else {
		s.freeIdx[cluster.MapSlot].reset(cfg.Nodes)
	}
	if cfg.ReduceSlotsPerNode > 0 {
		s.freeIdx[cluster.ReduceSlot].fill(cfg.Nodes)
	} else {
		s.freeIdx[cluster.ReduceSlot].reset(cfg.Nodes)
	}
	for i, w := range flows {
		var p *plan.Plan
		if len(plans) > 0 {
			p = plans[i]
		}
		if err := s.submit(w, p); err != nil {
			return nil, err
		}
	}
	return s.run()
}

type simulator struct {
	cfg cluster.Config
	pol cluster.Policy
	obs cluster.Observer
	rng *rand.Rand

	states []*cluster.WorkflowState
	// unmet and delayed shadow the unexported JobState fields of the same
	// names, indexed [workflow][job].
	unmet   [][]int
	delayed [][]simtime.Time
	nodes   []nodeState
	events  simtime.Queue[event]
	now     simtime.Time

	arrivalsLeft int
	doneCount    int
	taskSeq      int
	eventCount   int
	specWake     simtime.Time
	attempts     map[int]attemptRef

	freeIdx [2]nodeSet
	overdue [2]specHeap

	arrivalTimes []simtime.Time
	arrIdx       int

	mapBusy, reduceBusy time.Duration
	tasksStarted        int
	makespan            simtime.Time
	localMaps           int
	remoteMaps          int
}

type nodeState struct {
	freeMap    int
	freeReduce int
	down       bool
	hbArmed    bool
	running    map[int]runningTask
}

type runningTask struct {
	wf          int
	job         workflow.JobID
	st          cluster.SlotType
	end         simtime.Time
	dur         time.Duration
	twin        int
	speculative bool
}

type attemptRef struct {
	node int
	rt   runningTask
}

func (n *nodeState) free(st cluster.SlotType) int {
	if st == cluster.MapSlot {
		return n.freeMap
	}
	return n.freeReduce
}

func (n *nodeState) take(st cluster.SlotType) {
	if st == cluster.MapSlot {
		n.freeMap--
	} else {
		n.freeReduce--
	}
}

func (n *nodeState) release(st cluster.SlotType) {
	if st == cluster.MapSlot {
		n.freeMap++
	} else {
		n.freeReduce++
	}
}

type event struct {
	kind eventKind

	wf   int
	job  workflow.JobID
	st   cluster.SlotType
	node int
	seq  int
}

type eventKind int

const (
	evArrival eventKind = iota
	evActivate
	evComplete
	evHeartbeat
	evFail
	evRecover
	evRetry
)

func (s *simulator) submit(w *workflow.Workflow, p *plan.Plan) error {
	if err := w.Validate(); err != nil {
		return fmt.Errorf("refsim: %w", err)
	}
	ws := cluster.NewWorkflowState(len(s.states), w, p)
	s.states = append(s.states, ws)
	unmet := make([]int, len(w.Jobs))
	for i := range w.Jobs {
		unmet[i] = len(w.Jobs[i].Prereqs)
	}
	s.unmet = append(s.unmet, unmet)
	s.delayed = append(s.delayed, make([]simtime.Time, len(w.Jobs)))
	s.events.Push(w.Release, event{kind: evArrival, wf: ws.Index})
	s.arrivalTimes = append(s.arrivalTimes, w.Release)
	s.arrivalsLeft++
	return nil
}

func (s *simulator) run() (*cluster.Result, error) {
	if len(s.states) == 0 {
		return s.result(), nil
	}
	slices.Sort(s.arrivalTimes)
	if s.cfg.HeartbeatInterval > 0 {
		for i := range s.nodes {
			s.armHeartbeat(i, simtime.Epoch.Add(s.hbOffset(i)))
		}
	}
	for _, f := range s.cfg.Failures {
		s.events.Push(f.At, event{kind: evFail, node: f.Node})
		if f.Downtime > 0 {
			s.events.Push(f.At.Add(f.Downtime), event{kind: evRecover, node: f.Node})
		}
	}
	for s.events.Len() > 0 {
		at, e, _ := s.events.Pop()
		s.now = at
		s.eventCount++
		switch e.kind {
		case evArrival:
			s.arrive(e.wf)
		case evActivate:
			s.activate(e.wf, e.job)
		case evComplete:
			s.complete(e)
		case evHeartbeat:
			s.heartbeat(e.node)
		case evFail:
			s.fail(e.node)
		case evRecover:
			s.recover(e.node)
		case evRetry:
			if s.specWake <= s.now {
				s.specWake = simtime.MaxTime
			}
			s.dispatchAll()
		}
	}
	if s.doneCount != len(s.states) {
		for _, ws := range s.states {
			if !ws.Done {
				return nil, fmt.Errorf("refsim: workflow %q stuck with %d tasks remaining (policy %s left schedulable work idle or cluster lacks a slot type)",
					ws.Spec.Name, ws.TasksRemaining(), s.pol.Name())
			}
		}
	}
	return s.result(), nil
}

func (s *simulator) result() *cluster.Result {
	r := &cluster.Result{
		Policy:       s.pol.Name(),
		Config:       s.cfg,
		Makespan:     s.makespan,
		MapBusy:      s.mapBusy,
		ReduceBusy:   s.reduceBusy,
		TasksStarted: s.tasksStarted,
		LocalMaps:    s.localMaps,
		RemoteMaps:   s.remoteMaps,

		SimulatedEvents: s.eventCount,
	}
	for _, ws := range s.states {
		wr := cluster.WorkflowResult{
			Name:     ws.Spec.Name,
			Index:    ws.Index,
			Release:  ws.Spec.Release,
			Deadline: ws.Spec.Deadline,
			Finish:   ws.FinishTime,
		}
		wr.Workspan = wr.Finish.Sub(wr.Release)
		if wr.Finish > wr.Deadline {
			wr.Tardiness = wr.Finish.Sub(wr.Deadline)
		}
		wr.Met = wr.Tardiness == 0
		r.Workflows = append(r.Workflows, wr)
	}
	return r
}

func (s *simulator) arrive(wf int) {
	ws := s.states[wf]
	s.arrivalsLeft--
	s.arrIdx++
	s.pol.WorkflowAdded(ws, s.now)
	for _, r := range ws.Spec.Roots() {
		s.scheduleActivation(wf, r)
	}
	s.dispatchAll()
}

func (s *simulator) scheduleActivation(wf int, job workflow.JobID) {
	if s.cfg.SubmitterOverhead > 0 {
		s.events.Push(s.now.Add(s.cfg.SubmitterOverhead), event{kind: evActivate, wf: wf, job: job})
		return
	}
	s.activateNow(wf, job)
}

func (s *simulator) activate(wf int, job workflow.JobID) {
	s.activateNow(wf, job)
	s.dispatchAll()
}

func (s *simulator) activateNow(wf int, job workflow.JobID) {
	ws := s.states[wf]
	js := &ws.Jobs[job]
	js.Ready = true
	js.ActivatedAt = s.now
	s.pol.JobActivated(ws, job, s.now)
}

func (s *simulator) complete(e event) {
	node := &s.nodes[e.node]
	rt, ok := node.running[e.seq]
	if !ok {
		return
	}
	delete(node.running, e.seq)
	delete(s.attempts, e.seq)
	s.releaseSlot(e.node, e.st)
	if rt.twin != 0 {
		s.killAttempt(rt.twin)
	}
	ws := s.states[e.wf]
	js := &ws.Jobs[e.job]
	if e.st == cluster.MapSlot {
		js.RunningMaps--
		js.DoneMaps++
	} else {
		js.RunningReduces--
		js.DoneReduces++
	}
	ws.RunningTasks--
	left := ws.TaskDone()
	if s.obs != nil {
		s.obs.TaskFinished(s.now, ws, e.job, e.st)
	}
	if e.st == cluster.MapSlot && js.MapsDone() && js.PendingReduces > 0 {
		if rp, ok := s.pol.(cluster.ReducePhasePolicy); ok {
			rp.ReducesReady(ws, e.job, s.now)
		}
	}
	if js.Completed() {
		s.jobCompleted(ws, e.job)
	}
	if left == 0 && !ws.Done {
		ws.Done = true
		ws.FinishTime = s.now
		s.doneCount++
		s.pol.WorkflowCompleted(ws, s.now)
	}
	s.makespan = simtime.MaxOf(s.makespan, s.now)
	s.wakeNode(e.node)
	s.dispatchAll()
}

func (s *simulator) jobCompleted(ws *cluster.WorkflowState, job workflow.JobID) {
	unmet := s.unmet[ws.Index]
	for _, d := range ws.Spec.Dependents()[job] {
		unmet[d]--
		if unmet[d] == 0 {
			s.scheduleActivation(ws.Index, d)
		}
	}
}

func (s *simulator) heartbeat(node int) {
	s.nodes[node].hbArmed = false
	s.dispatchNode(node)
	s.rearmHeartbeat(node)
}

func (s *simulator) armHeartbeat(node int, at simtime.Time) {
	s.nodes[node].hbArmed = true
	s.events.Push(at, event{kind: evHeartbeat, node: node})
}

func (s *simulator) rearmHeartbeat(node int) {
	if s.doneCount == len(s.states) {
		return
	}
	if s.doneCount == s.arrIdx {
		s.armHeartbeat(node, s.nextTick(node, s.nextArrival()))
		return
	}
	n := &s.nodes[node]
	if s.cfg.SpeculativeSlowdown == 0 && n.freeMap == 0 && n.freeReduce == 0 {
		return
	}
	s.armHeartbeat(node, s.now.Add(s.cfg.HeartbeatInterval))
}

func (s *simulator) wakeNode(node int) {
	if s.cfg.HeartbeatInterval <= 0 || s.nodes[node].hbArmed {
		return
	}
	if s.doneCount == len(s.states) {
		return
	}
	at := s.now
	if s.doneCount == s.arrIdx {
		if na := s.nextArrival(); na > at {
			at = na
		}
	}
	s.armHeartbeat(node, s.nextTick(node, at))
}

func (s *simulator) nextTick(node int, t simtime.Time) simtime.Time {
	first := simtime.Epoch.Add(s.hbOffset(node))
	if t <= first {
		return first
	}
	iv := int64(s.cfg.HeartbeatInterval)
	k := (int64(t.Sub(first)) + iv - 1) / iv
	return first.Add(time.Duration(k * iv))
}

func (s *simulator) hbOffset(node int) time.Duration {
	return time.Duration(int64(s.cfg.HeartbeatInterval) * int64(node) / int64(len(s.nodes)))
}

func (s *simulator) nextArrival() simtime.Time {
	return s.arrivalTimes[s.arrIdx]
}

func (s *simulator) fail(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if node.down {
		return
	}
	node.down = true
	node.freeMap, node.freeReduce = 0, 0
	s.freeIdx[cluster.MapSlot].clear(nodeIdx)
	s.freeIdx[cluster.ReduceSlot].clear(nodeIdx)
	for seq, rt := range node.running {
		delete(node.running, seq)
		delete(s.attempts, seq)
		ws := s.states[rt.wf]
		if rt.st == cluster.MapSlot {
			s.mapBusy -= rt.end.Sub(s.now)
		} else {
			s.reduceBusy -= rt.end.Sub(s.now)
		}
		if s.obs != nil {
			s.obs.TaskFinished(s.now, ws, rt.job, rt.st)
		}
		if rt.twin != 0 {
			s.detachTwin(rt.twin)
			continue
		}
		if rt.speculative {
			continue
		}
		js := &ws.Jobs[rt.job]
		if rt.st == cluster.MapSlot {
			js.RunningMaps--
			js.PendingMaps++
		} else {
			js.RunningReduces--
			js.PendingReduces++
		}
		ws.RunningTasks--
		ws.ScheduledTasks--
		if rq, ok := s.pol.(cluster.RequeuePolicy); ok {
			rq.TaskRequeued(ws, rt.job, rt.st, s.now)
		}
	}
	s.dispatchAll()
}

func (s *simulator) recover(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if !node.down {
		return
	}
	node.down = false
	node.freeMap = s.cfg.MapSlotsPerNode
	node.freeReduce = s.cfg.ReduceSlotsPerNode
	if node.freeMap > 0 {
		s.freeIdx[cluster.MapSlot].set(nodeIdx)
	}
	if node.freeReduce > 0 {
		s.freeIdx[cluster.ReduceSlot].set(nodeIdx)
	}
	s.wakeNode(nodeIdx)
	s.dispatchAll()
}

func (s *simulator) dispatchAll() {
	if s.cfg.HeartbeatInterval > 0 {
		return
	}
	for _, st := range []cluster.SlotType{cluster.MapSlot, cluster.ReduceSlot} {
		node := 0
		for {
			node = s.freeIdx[st].next(node)
			if node < 0 {
				break
			}
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

func (s *simulator) takeSlot(node int, st cluster.SlotType) {
	n := &s.nodes[node]
	n.take(st)
	if n.free(st) == 0 {
		s.freeIdx[st].clear(node)
	}
}

func (s *simulator) releaseSlot(node int, st cluster.SlotType) {
	s.nodes[node].release(st)
	s.freeIdx[st].set(node)
}

func (s *simulator) dispatchNode(node int) {
	for _, st := range []cluster.SlotType{cluster.MapSlot, cluster.ReduceSlot} {
		for s.nodes[node].free(st) > 0 {
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

func (s *simulator) offer(node int, st cluster.SlotType) bool {
	ws, job, ok := s.pol.NextTask(s.now, st)
	if !ok {
		return false
	}
	js := &ws.Jobs[job]
	if !js.Schedulable(st) {
		panic(fmt.Sprintf("refsim: policy %s returned non-schedulable job %d of workflow %q for %v slot",
			s.pol.Name(), job, ws.Spec.Name, st))
	}
	spec := &ws.Spec.Jobs[job]
	delayed := s.delayed[ws.Index]
	local := true
	if st == cluster.MapSlot && s.cfg.Replication > 0 {
		local = s.drawLocality()
		if !local && s.cfg.DelayScheduling > 0 {
			if delayed[job] == 0 {
				delayed[job] = s.now
				s.events.Push(s.now.Add(s.cfg.DelayScheduling), event{kind: evRetry})
				return false
			}
			if s.now.Sub(delayed[job]) < s.cfg.DelayScheduling {
				return false
			}
		}
	}
	if local {
		delayed[job] = 0
	}
	var base time.Duration
	if st == cluster.MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		base = spec.MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	if st == cluster.MapSlot && !local {
		dur = time.Duration(float64(dur) * s.cfg.RemotePenalty)
		s.remoteMaps++
	} else if st == cluster.MapSlot && s.cfg.Replication > 0 {
		s.localMaps++
	}
	s.takeSlot(node, st)
	ws.ScheduledTasks++
	ws.RunningTasks++
	s.tasksStarted++
	if st == cluster.MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.pol.TaskStarted(ws, job, st, s.now)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, job, st, dur)
	}
	s.taskSeq++
	end := s.now.Add(dur)
	rt := runningTask{wf: ws.Index, job: job, st: st, end: end, dur: dur}
	s.nodes[node].running[s.taskSeq] = rt
	s.attempts[s.taskSeq] = attemptRef{node: node, rt: rt}
	if s.cfg.SpeculativeSlowdown != 0 {
		s.overdue[st].push(s.specCrossing(rt), s.taskSeq)
	}
	s.events.Push(end, event{kind: evComplete, wf: ws.Index, job: job, st: st, node: node, seq: s.taskSeq})
	return true
}

func (s *simulator) killAttempt(seq int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	delete(s.attempts, seq)
	delete(s.nodes[ref.node].running, seq)
	s.releaseSlot(ref.node, ref.rt.st)
	if ref.rt.st == cluster.MapSlot {
		s.mapBusy -= ref.rt.end.Sub(s.now)
	} else {
		s.reduceBusy -= ref.rt.end.Sub(s.now)
	}
	if s.obs != nil {
		s.obs.TaskFinished(s.now, s.states[ref.rt.wf], ref.rt.job, ref.rt.st)
	}
}

func (s *simulator) detachTwin(seq int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	ref.rt.twin = 0
	ref.rt.speculative = false
	s.attempts[seq] = ref
	s.nodes[ref.node].running[seq] = ref.rt
	if s.cfg.SpeculativeSlowdown != 0 {
		s.overdue[ref.rt.st].push(s.specCrossing(ref.rt), seq)
	}
}

func (s *simulator) setTwin(seq, twin int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	ref.rt.twin = twin
	s.attempts[seq] = ref
	s.nodes[ref.node].running[seq] = ref.rt
}

func (s *simulator) speculate() {
	if s.cfg.SpeculativeSlowdown == 0 {
		return
	}
	for _, st := range []cluster.SlotType{cluster.MapSlot, cluster.ReduceSlot} {
		for {
			node := s.freeIdx[st].next(0)
			if node < 0 {
				break
			}
			seq, ok := s.popOverdue(st)
			if !ok {
				break
			}
			s.launchSpeculative(node, seq)
		}
	}
	s.armSpeculativeWake()
}

func (s *simulator) popOverdue(st cluster.SlotType) (int, bool) {
	h := &s.overdue[st]
	for {
		e, ok := h.peek()
		if !ok {
			return 0, false
		}
		ref, live := s.attempts[e.seq]
		if !live || ref.rt.twin != 0 || ref.rt.speculative {
			h.pop()
			continue
		}
		if e.at > s.now {
			return 0, false
		}
		h.pop()
		return e.seq, true
	}
}

func (s *simulator) specCrossing(rt runningTask) simtime.Time {
	spec := &s.states[rt.wf].Spec.Jobs[rt.job]
	estimate := spec.MapTime
	if rt.st == cluster.ReduceSlot {
		estimate = spec.ReduceTime
	}
	start := rt.end.Add(-rt.dur)
	return start.Add(time.Duration(s.cfg.SpeculativeSlowdown*float64(estimate)) + time.Nanosecond)
}

func (s *simulator) armSpeculativeWake() {
	next := simtime.MaxTime
	for st := range s.overdue {
		h := &s.overdue[st]
		for {
			e, ok := h.peek()
			if !ok {
				break
			}
			ref, live := s.attempts[e.seq]
			if !live || ref.rt.twin != 0 || ref.rt.speculative {
				h.pop()
				continue
			}
			if e.at > s.now {
				if e.at < next {
					next = e.at
				}
			} else {
				for _, c := range h.es {
					if c.at <= s.now || c.at >= next {
						continue
					}
					if r, ok := s.attempts[c.seq]; ok && r.rt.twin == 0 && !r.rt.speculative {
						next = c.at
					}
				}
			}
			break
		}
	}
	if next < s.specWake {
		s.specWake = next
		s.events.Push(next, event{kind: evRetry})
	}
}

func (s *simulator) launchSpeculative(node, seq int) {
	orig := s.attempts[seq]
	ws := s.states[orig.rt.wf]
	spec := &ws.Spec.Jobs[orig.rt.job]
	base := spec.MapTime
	if orig.rt.st == cluster.ReduceSlot {
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	s.takeSlot(node, orig.rt.st)
	if orig.rt.st == cluster.MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.tasksStarted++
	s.taskSeq++
	end := s.now.Add(dur)
	rt := runningTask{
		wf: orig.rt.wf, job: orig.rt.job, st: orig.rt.st,
		end: end, dur: dur, twin: seq, speculative: true,
	}
	s.nodes[node].running[s.taskSeq] = rt
	s.attempts[s.taskSeq] = attemptRef{node: node, rt: rt}
	s.setTwin(seq, s.taskSeq)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, rt.job, rt.st, dur)
	}
	s.events.Push(end, event{kind: evComplete, wf: rt.wf, job: rt.job, st: rt.st, node: node, seq: s.taskSeq})
}

func (s *simulator) drawLocality() bool {
	n := float64(s.cfg.Nodes)
	p := 1 - pow(1-1/n, s.cfg.Replication)
	return s.rng.Float64() < p
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

func (s *simulator) noisy(d time.Duration) time.Duration {
	nd := d
	if s.cfg.Noise != 0 {
		f := 1 + s.cfg.Noise*(2*s.rng.Float64()-1)
		nd = time.Duration(float64(nd) * f)
	}
	if s.cfg.StragglerProb > 0 && s.rng.Float64() < s.cfg.StragglerProb {
		nd = time.Duration(float64(nd) * s.cfg.StragglerFactor)
	}
	if nd <= 0 {
		nd = time.Nanosecond
	}
	return nd
}
