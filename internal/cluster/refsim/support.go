package refsim

import (
	"math/bits"

	"repro/internal/simtime"
)

// nodeSet and specHeap are frozen copies of the pre-SoA internal/cluster
// helpers (both unexported there). See refsim.go for why this package
// duplicates rather than shares.

type nodeSet struct {
	w []uint64
}

func (b *nodeSet) reset(n int) {
	words := (n + 63) / 64
	if cap(b.w) < words {
		b.w = make([]uint64, words)
		return
	}
	b.w = b.w[:words]
	clear(b.w)
}

func (b *nodeSet) fill(n int) {
	b.reset(n)
	for i := range b.w {
		b.w[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		b.w[len(b.w)-1] = (uint64(1) << r) - 1
	}
}

func (b *nodeSet) set(i int)   { b.w[i>>6] |= 1 << (uint(i) & 63) }
func (b *nodeSet) clear(i int) { b.w[i>>6] &^= 1 << (uint(i) & 63) }

func (b *nodeSet) next(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from >> 6
	if wi >= len(b.w) {
		return -1
	}
	word := b.w[wi] &^ ((uint64(1) << (uint(from) & 63)) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi == len(b.w) {
			return -1
		}
		word = b.w[wi]
	}
}

type specEntry struct {
	at  simtime.Time
	seq int
}

type specHeap struct {
	es []specEntry
}

func (h *specHeap) push(at simtime.Time, seq int) {
	h.es = append(h.es, specEntry{at: at, seq: seq})
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *specHeap) peek() (specEntry, bool) {
	if len(h.es) == 0 {
		return specEntry{}, false
	}
	return h.es[0], true
}

func (h *specHeap) pop() {
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	n := len(h.es)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
}

func (h *specHeap) less(i, j int) bool {
	if h.es[i].at != h.es[j].at {
		return h.es[i].at < h.es[j].at
	}
	return h.es[i].seq < h.es[j].seq
}
