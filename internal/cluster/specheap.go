package cluster

import "repro/internal/simtime"

// specEntry is one speculation candidate: a running attempt — located by its
// arena handle plus the generation the handle had when pushed — and the
// instant it crosses its straggler threshold. seq is the attempt's launch
// sequence, kept as the explicit secondary ordering key (a reused handle
// number would not be monotonic in launch order).
type specEntry struct {
	at  simtime.Time
	seq int32
	h   int32
	gen uint32
}

// specHeap is a min-heap of speculation candidates ordered by (crossing
// instant, launch sequence). The simulator keeps one per slot type so
// speculate pops the most-overdue attempt in O(log n) instead of scanning
// every running attempt per dispatch.
//
// Ordering equivalence with the scan it replaces: the scan maximized
// over = elapsed - threshold = now - (start + threshold); since `now` is
// common to all candidates, the maximum of `over` is the minimum of
// start + threshold — the crossing instant — and the scan's lowest-sequence
// tie-break is the heap's secondary key.
//
// Entries are invalidated lazily: the consumer checks each popped/peeked
// entry's (h, gen) against the arena — a freed or recycled record fails the
// gen match — and discards entries whose attempt completed, was killed,
// failed, or already has a twin. detachTwin re-pushes a surviving attempt
// when its twin dies, making it a candidate again.
type specHeap struct {
	es []specEntry
}

func (h *specHeap) reset() {
	h.es = h.es[:0]
}

func (h *specHeap) push(at simtime.Time, seq, hd int32, gen uint32) {
	h.es = append(h.es, specEntry{at: at, seq: seq, h: hd, gen: gen})
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *specHeap) peek() (specEntry, bool) {
	if len(h.es) == 0 {
		return specEntry{}, false
	}
	return h.es[0], true
}

func (h *specHeap) pop() {
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	n := len(h.es)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.es[i], h.es[smallest] = h.es[smallest], h.es[i]
		i = smallest
	}
}

func (h *specHeap) less(i, j int) bool {
	if h.es[i].at != h.es[j].at {
		return h.es[i].at < h.es[j].at
	}
	return h.es[i].seq < h.es[j].seq
}
