package cluster_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func singleJob(t *testing.T, maps, reduces int, mt, rt time.Duration, rel, deadline simtime.Time) *workflow.Workflow {
	t.Helper()
	return workflow.NewBuilder("w").
		Job("only", maps, reduces, mt, rt).
		MustBuild(rel, deadline)
}

func run(t *testing.T, cfg cluster.Config, pol cluster.Policy, ws ...*workflow.Workflow) *cluster.Result {
	t.Helper()
	sim, err := cluster.New(cfg, pol, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, w := range ws {
		if err := sim.Submit(w, nil); err != nil {
			t.Fatalf("Submit(%q): %v", w.Name, err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleJobExactTiming(t *testing.T) {
	// One node with 2 map + 1 reduce slots. 4 maps of 10s: waves at 0 and
	// 10 → maps done at 20. 2 reduces of 30s on the single reduce slot:
	// 20-50 and 50-80. Finish at 80s.
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w := singleJob(t, 4, 2, 10*time.Second, 30*time.Second, 0, simtime.FromSeconds(100))
	res := run(t, cfg, scheduler.NewFIFO(), w)

	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(80); got != want {
		t.Errorf("Finish = %v, want %v", got, want)
	}
	if !res.Workflows[0].Met {
		t.Error("deadline missed, want met")
	}
	if got := res.Workflows[0].Workspan; got != 80*time.Second {
		t.Errorf("Workspan = %v, want 80s", got)
	}
	if res.TasksStarted != 6 {
		t.Errorf("TasksStarted = %d, want 6", res.TasksStarted)
	}
	// Busy time: 4 maps x 10s = 40s map-busy, 2 x 30s = 60s reduce-busy.
	if res.MapBusy != 40*time.Second || res.ReduceBusy != 60*time.Second {
		t.Errorf("busy = (%v, %v), want (40s, 60s)", res.MapBusy, res.ReduceBusy)
	}
}

func TestReduceWaitsForMapBarrier(t *testing.T) {
	// 3 maps of 10s on 2 slots finish at 20s; the reduce, despite an idle
	// reduce slot from t=0, must not start before 20s.
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w := singleJob(t, 3, 1, 10*time.Second, 5*time.Second, 0, simtime.FromSeconds(100))
	res := run(t, cfg, scheduler.NewFIFO(), w)
	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(25); got != want {
		t.Errorf("Finish = %v, want %v (reduce must wait for map barrier)", got, want)
	}
}

func TestDependencyBarrier(t *testing.T) {
	// b's tasks may only start after a fully finishes (reduce included).
	cfg := cluster.Config{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w := workflow.NewBuilder("chain").
		Job("a", 2, 1, 10*time.Second, 20*time.Second).
		Job("b", 2, 1, 10*time.Second, 20*time.Second, "a").
		MustBuild(0, simtime.FromSeconds(1000))
	res := run(t, cfg, scheduler.NewFIFO(), w)
	// a: maps 0-10, reduce 10-30. b: maps 30-40, reduce 40-60.
	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(60); got != want {
		t.Errorf("Finish = %v, want %v", got, want)
	}
}

func TestHeartbeatModeDelaysDispatch(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w := func() *workflow.Workflow {
		return singleJob(t, 8, 2, 10*time.Second, 30*time.Second, 0, simtime.FromSeconds(1000))
	}
	instant := run(t, cfg, scheduler.NewFIFO(), w())

	hbCfg := cfg
	hbCfg.HeartbeatInterval = 3 * time.Second
	hb := run(t, hbCfg, scheduler.NewFIFO(), w())

	if hb.Workflows[0].Finish < instant.Workflows[0].Finish {
		t.Errorf("heartbeat finish %v earlier than instant %v", hb.Workflows[0].Finish, instant.Workflows[0].Finish)
	}
	// With 3s heartbeats, dispatch lag is bounded by the interval per wave;
	// 3 waves of dispatch → at most ~4 intervals of extra latency.
	if hb.Workflows[0].Finish > instant.Workflows[0].Finish.Add(15*time.Second) {
		t.Errorf("heartbeat finish %v too far past instant %v", hb.Workflows[0].Finish, instant.Workflows[0].Finish)
	}
}

func TestSubmitterOverheadDelaysActivation(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	mk := func() *workflow.Workflow {
		return workflow.NewBuilder("chain").
			Job("a", 1, 1, 10*time.Second, 10*time.Second).
			Job("b", 1, 1, 10*time.Second, 10*time.Second, "a").
			MustBuild(0, simtime.FromSeconds(1000))
	}
	plain := run(t, cfg, scheduler.NewFIFO(), mk())

	subCfg := cfg
	subCfg.SubmitterOverhead = 5 * time.Second
	sub := run(t, subCfg, scheduler.NewFIFO(), mk())

	// Two activations (a at release, b after a): finish shifts by 2x5s.
	want := plain.Workflows[0].Finish.Add(10 * time.Second)
	if sub.Workflows[0].Finish != want {
		t.Errorf("Finish with submitter overhead = %v, want %v", sub.Workflows[0].Finish, want)
	}
}

func TestNoiseBoundedAndDeterministic(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.2, Seed: 7}
	mk := func() *workflow.Workflow {
		return singleJob(t, 20, 5, 10*time.Second, 30*time.Second, 0, simtime.FromSeconds(10000))
	}
	a := run(t, cfg, scheduler.NewFIFO(), mk())
	b := run(t, cfg, scheduler.NewFIFO(), mk())
	if a.Workflows[0].Finish != b.Workflows[0].Finish {
		t.Errorf("same seed produced different finishes: %v vs %v", a.Workflows[0].Finish, b.Workflows[0].Finish)
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := run(t, cfg2, scheduler.NewFIFO(), mk())
	if a.Workflows[0].Finish == c.Workflows[0].Finish {
		t.Log("different seeds coincidentally agreed (unlikely but not fatal)")
	}
	// With ±20% noise, busy time must stay within ±20% of nominal.
	nominal := 20*10*time.Second + 5*30*time.Second
	lo := time.Duration(float64(nominal) * 0.8)
	hi := time.Duration(float64(nominal) * 1.2)
	if got := a.MapBusy + a.ReduceBusy; got < lo || got > hi {
		t.Errorf("busy %v outside noise bounds [%v, %v]", got, lo, hi)
	}
}

func TestReleaseTimesRespected(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w := singleJob(t, 2, 1, 10*time.Second, 10*time.Second,
		simtime.FromSeconds(100), simtime.FromSeconds(1000))
	res := run(t, cfg, scheduler.NewFIFO(), w)
	if got, want := res.Workflows[0].Finish, simtime.FromSeconds(120); got != want {
		t.Errorf("Finish = %v, want %v (release at 100s)", got, want)
	}
	if got := res.Workflows[0].Workspan; got != 20*time.Second {
		t.Errorf("Workspan = %v, want 20s", got)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []cluster.Config{
		{Nodes: 0, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1},
		{Nodes: 1, MapSlotsPerNode: -1, ReduceSlotsPerNode: 1},
		{Nodes: 1, MapSlotsPerNode: 0, ReduceSlotsPerNode: 0},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, Noise: 1.5},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, HeartbeatInterval: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := cluster.New(cfg, scheduler.NewFIFO(), nil); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := cluster.New(cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}, nil, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestLifecycleErrors(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Invalid workflow rejected.
	bad := &workflow.Workflow{Name: "bad"}
	if err := sim.Submit(bad, nil); err == nil {
		t.Error("invalid workflow accepted")
	}
	w := singleJob(t, 1, 1, time.Second, time.Second, 0, simtime.FromSeconds(100))
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("second Run accepted")
	}
	if err := sim.Submit(w, nil); err == nil {
		t.Error("Submit after Run accepted")
	}
}

func TestStuckWorkflowDetected(t *testing.T) {
	// Map tasks on a cluster with zero map slots can never run.
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 0, ReduceSlotsPerNode: 2}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w := singleJob(t, 2, 1, time.Second, time.Second, 0, simtime.FromSeconds(100))
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Errorf("Run error = %v, want stuck-workflow error", err)
	}
}

func TestEmptyRun(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workflows) != 0 || res.Makespan != 0 {
		t.Errorf("empty run produced %+v", res)
	}
	if res.MissRatio() != 0 || res.Utilization() != 0 {
		t.Error("empty run metrics nonzero")
	}
}

// countingObserver verifies observer callback pairing.
type countingObserver struct {
	started, finished int
	running           int
	maxRunning        int
}

func (o *countingObserver) TaskStarted(_ simtime.Time, _ *cluster.WorkflowState, _ workflow.JobID, _ cluster.SlotType, _ time.Duration) {
	o.started++
	o.running++
	if o.running > o.maxRunning {
		o.maxRunning = o.running
	}
}

func (o *countingObserver) TaskFinished(_ simtime.Time, _ *cluster.WorkflowState, _ workflow.JobID, _ cluster.SlotType) {
	o.finished++
	o.running--
}

func TestObserverSeesEveryTask(t *testing.T) {
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	obs := &countingObserver{}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), obs)
	if err != nil {
		t.Fatal(err)
	}
	w := workflow.NewBuilder("w").
		Job("a", 5, 3, 10*time.Second, 10*time.Second).
		Job("b", 4, 2, 10*time.Second, 10*time.Second, "a").
		MustBuild(0, simtime.FromSeconds(10000))
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if obs.started != 14 || obs.finished != 14 {
		t.Errorf("observer saw %d starts, %d finishes, want 14 each", obs.started, obs.finished)
	}
	if obs.running != 0 {
		t.Errorf("running = %d at end, want 0", obs.running)
	}
	// At most 4 map + 2 reduce slots can be busy simultaneously.
	if obs.maxRunning > cfg.TotalSlots() {
		t.Errorf("maxRunning = %d exceeds %d slots", obs.maxRunning, cfg.TotalSlots())
	}
	if res.TasksStarted != obs.started {
		t.Errorf("TasksStarted = %d, observer %d", res.TasksStarted, obs.started)
	}
}

func TestSlotCapacityNeverExceeded(t *testing.T) {
	// Saturate a small cluster with several workflows; the observer's
	// concurrent-task high-water mark must respect slot capacity.
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	obs := &countingObserver{}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w := workflow.NewBuilder("w"+string(rune('0'+i))).
			Job("j", 20, 10, 7*time.Second, 13*time.Second).
			MustBuild(simtime.FromSeconds(float64(i)), simtime.FromSeconds(100000))
		if err := sim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.maxRunning > cfg.TotalSlots() {
		t.Errorf("maxRunning = %d exceeds capacity %d", obs.maxRunning, cfg.TotalSlots())
	}
	if obs.started != 5*30 {
		t.Errorf("started = %d, want 150", obs.started)
	}
}

func TestUtilizationFullySaturated(t *testing.T) {
	// One job whose tasks exactly tile the slots: utilization must be 1.
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 0}
	w := workflow.NewBuilder("tile").
		Job("j", 4, 0, 10*time.Second, 0).
		MustBuild(0, simtime.FromSeconds(1000))
	res := run(t, cfg, scheduler.NewFIFO(), w)
	if got := res.Utilization(); got != 1.0 {
		t.Errorf("Utilization = %v, want 1.0", got)
	}
	if got := res.MapUtilization(); got != 1.0 {
		t.Errorf("MapUtilization = %v, want 1.0", got)
	}
}

func TestResultMetrics(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}
	// Deadline at 15s; the job needs 10+10=20s → tardiness 5s.
	w := singleJob(t, 1, 1, 10*time.Second, 10*time.Second, 0, simtime.FromSeconds(15))
	res := run(t, cfg, scheduler.NewFIFO(), w)
	if res.MissRatio() != 1.0 {
		t.Errorf("MissRatio = %v, want 1", res.MissRatio())
	}
	if res.MaxTardiness() != 5*time.Second || res.TotalTardiness() != 5*time.Second {
		t.Errorf("tardiness = (%v, %v), want (5s, 5s)", res.MaxTardiness(), res.TotalTardiness())
	}
	if res.DeadlineMisses() != 1 {
		t.Errorf("DeadlineMisses = %d, want 1", res.DeadlineMisses())
	}
}
