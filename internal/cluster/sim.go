package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Simulator executes submitted workflows on the simulated cluster under a
// scheduling policy. Construct with New, Submit workflows, then Run once.
//
// Mutable run state lives in flat struct-of-arrays storage addressed by
// small-int handles — the attempt arena and workflow arena of arena.go —
// instead of the map-based layout the pre-SoA core used (frozen in
// internal/cluster/refsim as the parity oracle). Release() reclaims it all
// wholesale. See DESIGN.md §12.
type Simulator struct {
	cfg Config
	pol Policy
	obs Observer
	rng *rand.Rand

	states []*WorkflowState
	// wsa backs the *WorkflowState records in states with block-stable
	// reused storage.
	wsa   wsArena
	nodes []nodeState
	// arena holds every in-flight task attempt; events and the speculation
	// heaps reference attempts by (handle, gen).
	arena  attemptArena
	events simtime.Queue[event]
	// batch receives each instant's coalesced events from DrainInstant.
	batch []event
	now   simtime.Time

	arrivalsLeft int
	doneCount    int
	taskSeq      int
	// eventCount tallies every discrete event processed (Result.SimulatedEvents).
	eventCount int
	// drainBatches/drainCoalesced tally heap drains and the events beyond
	// the first in each batch, flushed to metrics at the end of Run.
	drainBatches   int
	drainCoalesced int
	// specWake is the earliest armed speculative wake-up (MaxTime = none),
	// preventing duplicate retry events.
	specWake simtime.Time

	// adm is the admission front door consulted at each arrival (nil, the
	// default, admits everything on the untouched fast path).
	adm admission.Controller

	// freeIdx[st] indexes the nodes that are up with at least one free slot
	// of type st, so dispatch finds a slot without scanning every node.
	freeIdx [2]nodeSet
	// overdue[st] orders running attempts of type st by straggler-threshold
	// crossing, so speculate pops its victim instead of scanning attempts.
	overdue [2]specHeap
	// arrivalTimes holds every submitted release time, sorted at Run;
	// arrIdx counts arrivals already delivered, so the next pending arrival
	// is an O(1) lookup for heartbeat skip-ahead.
	arrivalTimes []simtime.Time
	arrIdx       int

	mapBusy, reduceBusy time.Duration
	tasksStarted        int
	makespan            simtime.Time
	localMaps           int
	remoteMaps          int

	// ins is the optional runtime instrumentation; evCount holds the
	// per-kind simulated-event counters (nil entries when uninstrumented —
	// obs counters no-op on nil), and the dispatch counters below track the
	// hot-path work the free-slot index and heartbeat suppression save.
	// Arena and drain tallies are flushed once per run (flushRunMetrics),
	// keeping per-event work free of atomics.
	ins            *obs.Obs
	evCount        [numEventKinds]*obs.Counter
	offerCount     *obs.Counter
	hbSupBusy      *obs.Counter
	hbSupDrained   *obs.Counter
	specWakeups    *obs.Counter
	arenaCap       *obs.Gauge
	arenaReuses    *obs.Counter
	arenaGrows     *obs.Counter
	drainBatchCtr  *obs.Counter
	drainCoalesCtr *obs.Counter

	ran bool
}

// simPool recycles simulator state — the node table, attempt and workflow
// arenas, the event queue, and both hot-path indexes — across runs. New
// draws from it and Release returns to it, so repeated-scenario workloads
// (the experiment runner, benches) stop paying per-run allocation for
// per-run state.
var simPool = sync.Pool{New: func() any { return new(Simulator) }}

type nodeState struct {
	freeMap    int32
	freeReduce int32
	down       bool
	// hbArmed reports whether a heartbeat event for this node is pending
	// (heartbeat mode only). A dormant node — fully busy with speculation
	// off, or idle with every live workflow done — stays unarmed until a
	// completion, recovery, or arrival makes a tick useful again.
	hbArmed bool
	// parked marks a node whose re-arm was declined because every submitted
	// workflow had finished (the run-complete paths of rearmHeartbeat and
	// wakeNode). Had a later arrival been pre-submitted, the drained-skip
	// branch would have armed the node instead — busy-suppressed nodes, by
	// contrast, would have stayed dormant either way. SubmitLive re-arms
	// exactly the parked nodes, which is what makes mid-run injection
	// byte-identical to pre-run submission.
	parked bool
	// runHead is the node's running-attempt list: attempt records chained
	// through their prev/next links, newest first. Completions of attempts
	// lost to a failure are recognized as stale by their arena generation.
	runHead int32
}

func (n *nodeState) free(st SlotType) int32 {
	if st == MapSlot {
		return n.freeMap
	}
	return n.freeReduce
}

func (n *nodeState) take(st SlotType) {
	if st == MapSlot {
		n.freeMap--
	} else {
		n.freeReduce--
	}
}

func (n *nodeState) release(st SlotType) {
	if st == MapSlot {
		n.freeMap++
	} else {
		n.freeReduce++
	}
}

// event is the simulator's single event type, packed to keep the heap's
// per-entry footprint small. a and b are kind-specific operands:
//
//	evArrival    a = workflow index
//	evActivate   a = workflow index, b = job id
//	evComplete   a = attempt handle, gen = attempt generation
//	evHeartbeat, evFail, evRecover
//	             a = node index
//	evRetry      (no operands)
type event struct {
	kind eventKind
	a, b int32
	gen  uint32
}

type eventKind uint8

const (
	evArrival eventKind = iota
	evActivate
	evComplete
	evHeartbeat
	evFail
	evRecover
	// evRetry re-runs dispatch after a delay-scheduling wait expires.
	evRetry

	numEventKinds
)

// eventKindNames label the woha_sim_events_total counter series.
var eventKindNames = [numEventKinds]string{
	"arrival", "activate", "complete", "heartbeat", "fail", "recover", "retry",
}

// New returns a simulator for the given cluster configuration and policy.
// obs may be nil.
func New(cfg Config, pol Policy, obs Observer) (*Simulator, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes, want > 0", cfg.Nodes)
	}
	if cfg.MapSlotsPerNode < 0 || cfg.ReduceSlotsPerNode < 0 || cfg.TotalSlots() == 0 {
		return nil, fmt.Errorf("cluster: bad slot config %d map + %d reduce per node",
			cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	}
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return nil, fmt.Errorf("cluster: noise %v, want [0, 1)", cfg.Noise)
	}
	if cfg.HeartbeatInterval < 0 {
		return nil, fmt.Errorf("cluster: negative heartbeat interval %v", cfg.HeartbeatInterval)
	}
	if cfg.Replication < 0 {
		return nil, fmt.Errorf("cluster: negative replication %d", cfg.Replication)
	}
	if cfg.Replication > 0 && cfg.RemotePenalty < 1 {
		return nil, fmt.Errorf("cluster: remote penalty %v, want >= 1", cfg.RemotePenalty)
	}
	if cfg.DelayScheduling < 0 {
		return nil, fmt.Errorf("cluster: negative delay scheduling %v", cfg.DelayScheduling)
	}
	if cfg.SpeculativeSlowdown != 0 && cfg.SpeculativeSlowdown <= 1 {
		return nil, fmt.Errorf("cluster: speculative slowdown %v, want > 1 or 0", cfg.SpeculativeSlowdown)
	}
	if cfg.StragglerProb < 0 || cfg.StragglerProb >= 1 {
		return nil, fmt.Errorf("cluster: straggler probability %v, want [0, 1)", cfg.StragglerProb)
	}
	if cfg.StragglerProb > 0 && cfg.StragglerFactor <= 1 {
		return nil, fmt.Errorf("cluster: straggler factor %v, want > 1", cfg.StragglerFactor)
	}
	if pol == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	for _, f := range cfg.Failures {
		if f.Node < 0 || f.Node >= cfg.Nodes {
			return nil, fmt.Errorf("cluster: failure on node %d of %d", f.Node, cfg.Nodes)
		}
		if f.At < 0 || f.Downtime < 0 {
			return nil, fmt.Errorf("cluster: bad failure schedule %+v", f)
		}
	}
	s := simPool.Get().(*Simulator)
	s.reset(cfg, pol, obs)
	return s, nil
}

// reset reinitializes every field for a fresh run, reusing the backing
// storage a pooled simulator brings along.
func (s *Simulator) reset(cfg Config, pol Policy, obs Observer) {
	s.cfg, s.pol, s.obs = cfg, pol, obs
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		s.rng.Seed(cfg.Seed)
	}
	for i := range s.states {
		s.states[i] = nil
	}
	s.states = s.states[:0]
	s.wsa.reset()
	for len(s.nodes) < cfg.Nodes {
		s.nodes = append(s.nodes, nodeState{})
	}
	s.nodes = s.nodes[:cfg.Nodes]
	for i := range s.nodes {
		n := &s.nodes[i]
		n.freeMap, n.freeReduce = int32(cfg.MapSlotsPerNode), int32(cfg.ReduceSlotsPerNode)
		n.down, n.hbArmed, n.parked = false, false, false
		n.runHead = nilAttempt
	}
	if cfg.MapSlotsPerNode > 0 {
		s.freeIdx[MapSlot].fill(cfg.Nodes)
	} else {
		s.freeIdx[MapSlot].reset(cfg.Nodes)
	}
	if cfg.ReduceSlotsPerNode > 0 {
		s.freeIdx[ReduceSlot].fill(cfg.Nodes)
	} else {
		s.freeIdx[ReduceSlot].reset(cfg.Nodes)
	}
	s.overdue[MapSlot].reset()
	s.overdue[ReduceSlot].reset()
	s.arena.reset()
	s.events.Reset()
	s.batch = s.batch[:0]
	s.now = simtime.Epoch
	s.arrivalsLeft, s.doneCount, s.taskSeq, s.eventCount = 0, 0, 0, 0
	s.drainBatches, s.drainCoalesced = 0, 0
	s.specWake = simtime.MaxTime
	s.arrivalTimes = s.arrivalTimes[:0]
	s.arrIdx = 0
	s.mapBusy, s.reduceBusy = 0, 0
	s.tasksStarted = 0
	s.makespan = simtime.Epoch
	s.localMaps, s.remoteMaps = 0, 0
	s.adm = nil
	s.SetInstrumentation(nil)
	s.ran = false
}

// Release returns the simulator's internal state to the package pool for
// reuse by a later New. Call it after Run when executing many scenarios
// (Result is self-contained and stays valid); the simulator — and any
// *WorkflowState a policy or observer captured from it — must not be used
// afterwards: workflow records are arena storage a later run overwrites.
// Release is optional — an unreleased simulator is simply collected.
func (s *Simulator) Release() {
	s.pol, s.obs, s.ins, s.adm = nil, nil, nil, nil
	for i := range s.states {
		s.states[i] = nil
	}
	s.states = s.states[:0]
	// Drop every reference and per-run tally the arenas and queue carry, so
	// a pooled simulator can neither pin prior-run specs/plans nor leak
	// prior-run attempt state into the next run's instrumentation flush
	// (see TestReleaseReuseInstrumentationHygiene).
	s.wsa.release()
	s.arena.reset()
	s.events.Reset()
	s.batch = s.batch[:0]
	s.drainBatches, s.drainCoalesced = 0, 0
	s.clearInstruments()
	simPool.Put(s)
}

func (s *Simulator) clearInstruments() {
	s.evCount = [numEventKinds]*obs.Counter{}
	s.offerCount, s.hbSupBusy, s.hbSupDrained, s.specWakeups = nil, nil, nil, nil
	s.arenaCap, s.arenaReuses, s.arenaGrows = nil, nil, nil
	s.drainBatchCtr, s.drainCoalesCtr = nil, nil
}

// SetInstrumentation attaches the runtime observability bundle: simulated
// event counters, task-assignment and workflow lifecycle events, and
// heartbeat dispatch latency. Call before Run; a nil o (the default) keeps
// the hot paths at a single nil check.
func (s *Simulator) SetInstrumentation(o *obs.Obs) {
	s.ins = o
	if o == nil {
		s.clearInstruments()
		return
	}
	for k, name := range eventKindNames {
		s.evCount[k] = o.SimEventCounter(name)
	}
	s.offerCount = o.SimDispatchOffers()
	s.hbSupBusy = o.SimHeartbeatsSuppressed("busy")
	s.hbSupDrained = o.SimHeartbeatsSuppressed("drained")
	s.specWakeups = o.SimSpecWakeups()
	s.arenaCap = o.SimArenaCapacity()
	s.arenaReuses = o.SimArenaReuses()
	s.arenaGrows = o.SimArenaGrows()
	s.drainBatchCtr = o.SimDrainBatches()
	s.drainCoalesCtr = o.SimDrainCoalesced()
	o.Health().SetSlots(s.cfg.MapSlots(), s.cfg.ReduceSlots())
	// Workflows submitted before instrumentation was attached still join
	// the health table.
	for _, ws := range s.states {
		o.Health().Register(ws.Index, ws.Spec.Name, ws.Spec.Release,
			ws.Spec.Deadline, ws.Spec.TotalTasks(), ws.Plan)
	}
}

// flushRunMetrics publishes the per-run arena/drain tallies once, at the end
// of Run.
func (s *Simulator) flushRunMetrics() {
	if s.ins == nil {
		return
	}
	s.arenaCap.Set(int64(cap(s.arena.recs)))
	s.arenaReuses.Add(int64(s.arena.reused))
	s.arenaGrows.Add(int64(s.arena.grown))
	s.drainBatchCtr.Add(int64(s.drainBatches))
	s.drainCoalesCtr.Add(int64(s.drainCoalesced))
}

// SetAdmission installs the admission front door consulted when each
// workflow's release time arrives. Call before Run; nil (the default) keeps
// the unconditional-admit fast path with zero added work per arrival.
func (s *Simulator) SetAdmission(ctrl admission.Controller) {
	s.adm = ctrl
}

// Submit queues a workflow for arrival at its release time. p is the WOHA
// scheduling plan and may be nil for policies that do not use one. Submit
// must be called before Run.
func (s *Simulator) Submit(w *workflow.Workflow, p *plan.Plan) error {
	if s.ran {
		return fmt.Errorf("cluster: Submit after Run")
	}
	if err := w.Validated(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	ws := s.wsa.alloc(len(s.states), w, p)
	ws.EnableSchedIndex(s.wsa.allocWords(2 * ((len(w.Jobs) + 63) / 64)))
	s.ins.Health().Register(ws.Index, w.Name, w.Release, w.Deadline, w.TotalTasks(), p)
	s.states = append(s.states, ws)
	s.events.Push(w.Release, event{kind: evArrival, a: int32(ws.Index)})
	s.arrivalTimes = append(s.arrivalTimes, w.Release)
	s.arrivalsLeft++
	return nil
}

// Run executes the simulation to completion and returns the run's results.
// It fails if any workflow can never finish (for example, a job needs map
// slots on a cluster configured with none). Run is Start + StepTo(∞) +
// Finish; external drivers (the federation layer) call those primitives
// directly to interleave several simulators under one shared clock.
func (s *Simulator) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("cluster: Run called twice")
	}
	if len(s.states) == 0 {
		// Nothing submitted: an empty result without arming heartbeats or
		// failures, exactly as the pre-stepping core behaved.
		s.ran = true
		return s.result(), nil
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	s.StepTo(simtime.MaxTime)
	return s.Finish()
}

func (s *Simulator) arrive(wf int) {
	ws := s.states[wf]
	if s.adm != nil {
		switch d := s.adm.Decide(ws.Spec, ws.Plan, s.now); d.Verdict {
		case admission.Defer:
			// Re-arrive at the retry instant. The consumed head of the
			// arrival-time multiset is replaced by the retry time and bubbled
			// to its sorted position, so heartbeat skip-ahead still sees the
			// earliest pending arrival; arrIdx and arrivalsLeft are untouched
			// (the workflow is neither live nor resolved).
			retry := d.RetryAt
			if retry <= s.now {
				retry = s.now + 1
			}
			s.events.Push(retry, event{kind: evArrival, a: int32(wf)})
			i := s.arrIdx
			s.arrivalTimes[i] = retry
			for i+1 < len(s.arrivalTimes) && s.arrivalTimes[i+1] < s.arrivalTimes[i] {
				s.arrivalTimes[i], s.arrivalTimes[i+1] = s.arrivalTimes[i+1], s.arrivalTimes[i]
				i++
			}
			return
		case admission.Reject:
			// Resolved without ever reaching the policy: mark it done so the
			// run drains normally and the result carries the refusal.
			s.arrivalsLeft--
			s.arrIdx++
			ws.Rejected = true
			ws.RejectReason = d.Reason
			ws.CounterOffer = d.CounterOffer
			ws.Done = true
			s.doneCount++
			return
		}
	}
	s.arrivalsLeft--
	s.arrIdx++
	s.ins.WorkflowSubmitted(s.now, wf, ws.Spec.Name)
	s.pol.WorkflowAdded(ws, s.now)
	// Activate every root before offering slots, so the policy sees the
	// whole ready set when the first slot is dispatched.
	for _, r := range ws.Spec.RootIDs() {
		s.scheduleActivation(wf, r)
	}
	s.dispatchAll()
}

// scheduleActivation makes job Ready now or after the submitter overhead.
// Immediate activations do not dispatch; the caller does, once all state
// changes of the current instant are applied.
func (s *Simulator) scheduleActivation(wf int, job workflow.JobID) {
	if s.cfg.SubmitterOverhead > 0 {
		s.events.Push(s.now.Add(s.cfg.SubmitterOverhead), event{kind: evActivate, a: int32(wf), b: int32(job)})
		return
	}
	s.activateNow(wf, job)
}

// activate handles a deferred activation event.
func (s *Simulator) activate(wf int, job workflow.JobID) {
	s.activateNow(wf, job)
	s.dispatchAll()
}

func (s *Simulator) activateNow(wf int, job workflow.JobID) {
	ws := s.states[wf]
	js := &ws.Jobs[job]
	js.Ready = true
	js.ActivatedAt = s.now
	ws.RefreshJob(job)
	s.ins.JobActivated(s.now, wf, int(job))
	s.pol.JobActivated(ws, job, s.now)
}

func (s *Simulator) complete(h int32, gen uint32) {
	rec := &s.arena.recs[h]
	if !rec.live || rec.gen != gen {
		// The attempt was lost to a node failure (or killed as a losing
		// speculative twin) after this completion was scheduled; a matching
		// generation proves the record was not recycled since.
		return
	}
	node, st := int(rec.node), SlotType(rec.st)
	wf, job, twin := int(rec.wf), workflow.JobID(rec.job), rec.twin
	s.unlinkRunning(h)
	s.arena.free(h)
	s.releaseSlot(node, st)
	if twin != nilAttempt {
		s.killAttempt(twin)
	}
	ws := s.states[wf]
	js := &ws.Jobs[job]
	if st == MapSlot {
		js.RunningMaps--
		js.DoneMaps++
	} else {
		js.RunningReduces--
		js.DoneReduces++
	}
	ws.RefreshJob(job)
	ws.RunningTasks--
	left := ws.TaskDone()
	s.ins.TaskCompleted(s.now, wf, int(job), int(st), node)
	if s.obs != nil {
		s.obs.TaskFinished(s.now, ws, job, st)
	}
	if st == MapSlot && js.MapsDone() && js.PendingReduces > 0 {
		if rp, ok := s.pol.(ReducePhasePolicy); ok {
			rp.ReducesReady(ws, job, s.now)
		}
	}
	if js.Completed() {
		s.jobCompleted(ws, job)
	}
	if left == 0 && !ws.Done {
		ws.Done = true
		ws.FinishTime = s.now
		s.doneCount++
		if s.ins != nil {
			var tardiness time.Duration
			if s.now > ws.Spec.Deadline {
				tardiness = s.now.Sub(ws.Spec.Deadline)
			}
			s.ins.WorkflowCompleted(s.now, ws.Index, ws.Spec.Name, tardiness)
		}
		s.pol.WorkflowCompleted(ws, s.now)
		if s.adm != nil {
			s.adm.Complete(ws.Spec, s.now)
		}
	}
	s.makespan = simtime.MaxOf(s.makespan, s.now)
	s.wakeNode(node)
	s.dispatchAll()
}

func (s *Simulator) jobCompleted(ws *WorkflowState, job workflow.JobID) {
	for _, d := range ws.Spec.DependentsOf(job) {
		dj := &ws.Jobs[d]
		dj.unmet--
		if dj.unmet == 0 {
			s.scheduleActivation(ws.Index, d)
		}
	}
}

func (s *Simulator) heartbeat(node int) {
	s.nodes[node].hbArmed = false
	var t0 time.Time
	started := 0
	if s.ins != nil {
		t0 = time.Now()
		started = s.tasksStarted
	}
	s.dispatchNode(node)
	if s.ins != nil {
		// The wall-clock cost of one heartbeat's worth of scheduling
		// decisions — the quantity WOHA's O(1)-per-heartbeat claim is about.
		s.ins.HeartbeatServed(s.now, node, time.Since(t0), s.tasksStarted-started)
	}
	s.rearmHeartbeat(node)
}

// armHeartbeat schedules node's next heartbeat tick.
func (s *Simulator) armHeartbeat(node int, at simtime.Time) {
	s.nodes[node].hbArmed = true
	s.nodes[node].parked = false
	s.events.Push(at, event{kind: evHeartbeat, a: int32(node)})
}

// rearmHeartbeat decides when node ticks next. The default is one interval
// from now; two cases suppress ticks that provably cannot schedule work:
//
//   - drained: every live workflow is done, so no completion or activation
//     can occur before the next arrival — sleep straight to the first
//     on-grid tick that can see it (arrival events at the same instant pop
//     first, having been pushed at Submit).
//   - busy: the node has no free slot of either type, so a tick cannot
//     place work on it; stay dormant until a completion or recovery wakes
//     it (wakeNode). Only valid with speculation off — an all-busy node's
//     tick can still launch speculative twins on other nodes' free slots.
func (s *Simulator) rearmHeartbeat(node int) {
	if s.doneCount == len(s.states) {
		// Run complete; let the event queue drain. Park the node so a
		// SubmitLive arrival can resume its grid where the drained branch
		// below would have.
		s.nodes[node].parked = true
		return
	}
	if s.doneCount == s.arrIdx {
		// Every arrived workflow is done, so only the next arrival
		// (arrivalsLeft > 0 here) can create schedulable work.
		s.hbSupDrained.Inc()
		s.armHeartbeat(node, s.nextTick(node, s.nextArrival()))
		return
	}
	n := &s.nodes[node]
	if s.cfg.SpeculativeSlowdown == 0 && n.freeMap == 0 && n.freeReduce == 0 {
		s.hbSupBusy.Inc()
		return
	}
	s.armHeartbeat(node, s.now.Add(s.cfg.HeartbeatInterval))
}

// wakeNode re-arms a dormant node after a completion, recovery, or
// kill frees capacity or work. The tick lands on the node's own phase grid;
// a tick coinciding with the waking event is served immediately after it.
// No-op outside heartbeat mode or when the node is already armed.
func (s *Simulator) wakeNode(node int) {
	if s.cfg.HeartbeatInterval <= 0 || s.nodes[node].hbArmed {
		return
	}
	if s.doneCount == len(s.states) {
		s.nodes[node].parked = true
		return
	}
	at := s.now
	if s.doneCount == s.arrIdx {
		// Only a future arrival can put work on this node.
		if na := s.nextArrival(); na > at {
			at = na
		}
	}
	s.armHeartbeat(node, s.nextTick(node, at))
}

// nextTick returns the first tick of node's staggered heartbeat grid at or
// after t. If t falls beyond the current instant's tick, ticks in between
// are skipped — they could not have scheduled anything.
func (s *Simulator) nextTick(node int, t simtime.Time) simtime.Time {
	first := simtime.Epoch.Add(s.hbOffset(node))
	if t <= first {
		return first
	}
	iv := int64(s.cfg.HeartbeatInterval)
	k := (int64(t.Sub(first)) + iv - 1) / iv
	return first.Add(time.Duration(k * iv))
}

// hbOffset is node's phase within the heartbeat interval (the Run stagger).
func (s *Simulator) hbOffset(node int) time.Duration {
	return time.Duration(int64(s.cfg.HeartbeatInterval) * int64(node) / int64(len(s.nodes)))
}

// nextArrival returns the release time of the next pending arrival. Only
// valid while arrivalsLeft > 0.
func (s *Simulator) nextArrival() simtime.Time {
	return s.arrivalTimes[s.arrIdx]
}

// linkRunning pushes attempt h onto node's running list (newest first).
func (s *Simulator) linkRunning(node int, h int32) {
	n := &s.nodes[node]
	rec := &s.arena.recs[h]
	rec.prev = nilAttempt
	rec.next = n.runHead
	if n.runHead != nilAttempt {
		s.arena.recs[n.runHead].prev = h
	}
	n.runHead = h
}

// unlinkRunning removes attempt h from its node's running list. Must
// precede arena.free, which repurposes the next link.
func (s *Simulator) unlinkRunning(h int32) {
	rec := &s.arena.recs[h]
	if rec.prev != nilAttempt {
		s.arena.recs[rec.prev].next = rec.next
	} else {
		s.nodes[rec.node].runHead = rec.next
	}
	if rec.next != nilAttempt {
		s.arena.recs[rec.next].prev = rec.prev
	}
}

// fail takes a node down: its running tasks are lost and re-queued as
// pending, and its slots vanish until recovery.
//
// The walk visits attempts newest-launched first (list insertion order) —
// deterministic, unlike the map iteration it replaces, which relied on the
// per-attempt handling being order-independent (it still is: the twin
// detach below mutates the surviving record in place, so a pair split
// across walk positions resolves identically either way).
func (s *Simulator) fail(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if node.down {
		return
	}
	node.down = true
	node.freeMap, node.freeReduce = 0, 0
	s.freeIdx[MapSlot].clear(nodeIdx)
	s.freeIdx[ReduceSlot].clear(nodeIdx)
	h := node.runHead
	node.runHead = nilAttempt
	for h != nilAttempt {
		rec := &s.arena.recs[h]
		next := rec.next
		wf, job, st := int(rec.wf), workflow.JobID(rec.job), SlotType(rec.st)
		end, twin, spec := rec.end, rec.twin, rec.speculative
		s.arena.free(h)
		ws := s.states[wf]
		if st == MapSlot {
			s.mapBusy -= end.Sub(s.now) // the lost remainder never runs
		} else {
			s.reduceBusy -= end.Sub(s.now)
		}
		if s.obs != nil {
			// Balance the observer's start/finish pairing: the lost attempt
			// stopped occupying its slot at the failure instant.
			s.obs.TaskFinished(s.now, ws, job, st)
		}
		if twin != nilAttempt {
			// The other attempt survives and carries the task; detach it.
			// (If it sits later in this same walk, the cleared twin link
			// routes it into the requeue branch below, as it must.)
			s.detachTwin(twin)
			h = next
			continue
		}
		if spec {
			h = next
			continue // the original attempt still runs the task
		}
		js := &ws.Jobs[job]
		if st == MapSlot {
			js.RunningMaps--
			js.PendingMaps++
		} else {
			js.RunningReduces--
			js.PendingReduces++
		}
		ws.RefreshJob(job)
		ws.RunningTasks--
		ws.ScheduledTasks--
		if rq, ok := s.pol.(RequeuePolicy); ok {
			rq.TaskRequeued(ws, job, st, s.now)
		}
		h = next
	}
	// Remaining workflows may now be unschedulable if every node died;
	// Run's stuck detection reports that case.
	s.dispatchAll()
}

// recover brings a node back with empty slots.
func (s *Simulator) recover(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if !node.down {
		return
	}
	node.down = false
	node.freeMap = int32(s.cfg.MapSlotsPerNode)
	node.freeReduce = int32(s.cfg.ReduceSlotsPerNode)
	if node.freeMap > 0 {
		s.freeIdx[MapSlot].set(nodeIdx)
	}
	if node.freeReduce > 0 {
		s.freeIdx[ReduceSlot].set(nodeIdx)
	}
	s.wakeNode(nodeIdx)
	s.dispatchAll()
}

// dispatchAll assigns tasks to every idle slot in the cluster (instant
// dispatch mode). Under heartbeat mode slots are only offered on heartbeats.
func (s *Simulator) dispatchAll() {
	if s.cfg.HeartbeatInterval > 0 {
		return
	}
	for st := MapSlot; st <= ReduceSlot; st++ {
		node := 0
		for {
			// Find a node with a free slot of this type. The index walks
			// the same lowest-index-first order the old O(nodes) scan did.
			node = s.freeIdx[st].next(node)
			if node < 0 {
				break
			}
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

// takeSlot claims a free st slot on node, maintaining the free-slot index.
func (s *Simulator) takeSlot(node int, st SlotType) {
	n := &s.nodes[node]
	n.take(st)
	if n.free(st) == 0 {
		s.freeIdx[st].clear(node)
	}
}

// releaseSlot frees an st slot on node. Never called on a down node: a
// failure empties its running list, so no completion or kill reaches it.
func (s *Simulator) releaseSlot(node int, st SlotType) {
	s.nodes[node].release(st)
	s.freeIdx[st].set(node)
}

// dispatchNode assigns tasks to one node's idle slots (heartbeat mode).
func (s *Simulator) dispatchNode(node int) {
	for st := MapSlot; st <= ReduceSlot; st++ {
		for s.nodes[node].free(st) > 0 {
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

// offer asks the policy for a task for one free slot of type st on node,
// reporting whether one was assigned.
func (s *Simulator) offer(node int, st SlotType) bool {
	s.offerCount.Inc()
	ws, job, ok := s.pol.NextTask(s.now, st)
	if !ok {
		return false
	}
	js := &ws.Jobs[job]
	if !js.Schedulable(st) {
		// A policy bug; fail loudly rather than corrupting counts.
		panic(fmt.Sprintf("cluster: policy %s returned non-schedulable job %d of workflow %q for %v slot",
			s.pol.Name(), job, ws.Spec.Name, st))
	}
	spec := &ws.Spec.Jobs[job]
	local := true
	if st == MapSlot && s.cfg.Replication > 0 {
		local = s.drawLocality()
		if !local && s.cfg.DelayScheduling > 0 {
			if js.delayedSince == 0 {
				// First refusal: start the delay-scheduling wait and leave
				// the slot idle until it expires or another event fires.
				js.delayedSince = s.now
				s.events.Push(s.now.Add(s.cfg.DelayScheduling), event{kind: evRetry})
				return false
			}
			if s.now.Sub(js.delayedSince) < s.cfg.DelayScheduling {
				return false
			}
			// Wait expired: accept the remote assignment.
		}
	}
	if local {
		js.delayedSince = 0
	}
	var base time.Duration
	if st == MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		base = spec.MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		base = spec.ReduceTime
	}
	ws.RefreshJob(job)
	dur := s.noisy(base)
	if st == MapSlot && !local {
		dur = time.Duration(float64(dur) * s.cfg.RemotePenalty)
		s.remoteMaps++
	} else if st == MapSlot && s.cfg.Replication > 0 {
		s.localMaps++
	}
	s.takeSlot(node, st)
	ws.ScheduledTasks++
	ws.RunningTasks++
	s.tasksStarted++
	if st == MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.pol.TaskStarted(ws, job, st, s.now)
	s.ins.TaskAssigned(s.now, ws.Index, int(job), int(st), node, dur)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, job, st, dur)
	}
	s.taskSeq++
	end := s.now.Add(dur)
	h, rec := s.arena.alloc()
	rec.end, rec.dur = end, dur
	rec.wf, rec.job, rec.node = int32(ws.Index), int32(job), int32(node)
	rec.twin = nilAttempt
	rec.seq = int32(s.taskSeq)
	rec.st = uint8(st)
	rec.speculative = false
	rec.live = true
	s.linkRunning(node, h)
	if s.cfg.SpeculativeSlowdown != 0 {
		s.overdue[st].push(s.specCrossing(rec), rec.seq, h, rec.gen)
	}
	s.events.Push(end, event{kind: evComplete, a: h, gen: rec.gen})
	return true
}

// killAttempt removes a losing speculative attempt, freeing its slot and
// crediting back the slot-time it will no longer consume. The handle comes
// from a live record's twin field, which never dangles (see attemptRec), but
// the live guard keeps the operation safe to repeat.
func (s *Simulator) killAttempt(h int32) {
	rec := &s.arena.recs[h]
	if !rec.live {
		return
	}
	node, st := int(rec.node), SlotType(rec.st)
	wf, job, end := int(rec.wf), workflow.JobID(rec.job), rec.end
	s.unlinkRunning(h)
	s.arena.free(h)
	s.releaseSlot(node, st)
	if st == MapSlot {
		s.mapBusy -= end.Sub(s.now)
	} else {
		s.reduceBusy -= end.Sub(s.now)
	}
	if s.obs != nil {
		s.obs.TaskFinished(s.now, s.states[wf], job, st)
	}
}

// detachTwin clears the twin linkage on a surviving attempt, making it a
// speculation candidate again.
func (s *Simulator) detachTwin(h int32) {
	rec := &s.arena.recs[h]
	if !rec.live {
		return
	}
	rec.twin = nilAttempt
	rec.speculative = false // it now carries the task outright
	if s.cfg.SpeculativeSlowdown != 0 {
		s.overdue[rec.st].push(s.specCrossing(rec), rec.seq, h, rec.gen)
	}
}

// setTwin links two attempts of the same task.
func (s *Simulator) setTwin(h, twin int32) {
	rec := &s.arena.recs[h]
	if !rec.live {
		return
	}
	rec.twin = twin
}

// speculate launches duplicate attempts for overdue running tasks onto idle
// slots (speculative execution). It runs after normal dispatch found no
// assignable pending work for the remaining free slots.
func (s *Simulator) speculate() {
	if s.cfg.SpeculativeSlowdown == 0 {
		return
	}
	for st := MapSlot; st <= ReduceSlot; st++ {
		for {
			node := s.freeIdx[st].next(0)
			if node < 0 {
				break
			}
			h, ok := s.popOverdue(st)
			if !ok {
				break
			}
			s.launchSpeculative(node, h)
		}
	}
	s.armSpeculativeWake()
}

// specLive reports whether heap entry e still names a live, untwinned,
// original attempt — the lazily-checked validity condition for speculation
// candidates. A recycled record fails the generation match.
func (s *Simulator) specLive(e specEntry) bool {
	rec := &s.arena.recs[e.h]
	return rec.live && rec.gen == e.gen && rec.twin == nilAttempt && !rec.speculative
}

// popOverdue pops the attempt of type st that has been past its straggler
// threshold the longest — the minimum (crossing instant, launch sequence),
// which is exactly the old scan's max-overage victim with lowest-sequence
// tie-break, but deterministic by construction instead of by a guarded map
// iteration. Stale heap entries (attempt completed, killed, lost to a
// failure, or already twinned) are discarded on the way.
func (s *Simulator) popOverdue(st SlotType) (int32, bool) {
	h := &s.overdue[st]
	for {
		e, ok := h.peek()
		if !ok {
			return nilAttempt, false
		}
		if !s.specLive(e) {
			h.pop()
			continue
		}
		if e.at > s.now {
			return nilAttempt, false // earliest candidate is not overdue yet
		}
		h.pop()
		return e.h, true
	}
}

// specCrossing returns the instant rec crosses its straggler threshold: the
// first instant at which elapsed > SpeculativeSlowdown * estimate holds.
// It is fixed at launch, so candidates can be heap-ordered by it.
func (s *Simulator) specCrossing(rec *attemptRec) simtime.Time {
	spec := &s.states[rec.wf].Spec.Jobs[rec.job]
	estimate := spec.MapTime
	if SlotType(rec.st) == ReduceSlot {
		estimate = spec.ReduceTime
	}
	start := rec.end.Add(-rec.dur)
	return start.Add(time.Duration(s.cfg.SpeculativeSlowdown*float64(estimate)) + time.Nanosecond)
}

// armSpeculativeWake schedules a retry at the moment the next running
// attempt crosses its straggler threshold; without it a straggling final
// task would never be re-examined (no intervening events). The heap top is
// normally that attempt; only when already-overdue candidates (blocked on a
// full cluster) bury the future ones does it fall back to scanning the heap
// array.
func (s *Simulator) armSpeculativeWake() {
	next := simtime.MaxTime
	for st := range s.overdue {
		h := &s.overdue[st]
		for {
			e, ok := h.peek()
			if !ok {
				break
			}
			if !s.specLive(e) {
				h.pop()
				continue
			}
			if e.at > s.now {
				if e.at < next {
					next = e.at
				}
			} else {
				for _, c := range h.es {
					if c.at <= s.now || c.at >= next {
						continue
					}
					if s.specLive(c) {
						next = c.at
					}
				}
			}
			break
		}
	}
	if next < s.specWake {
		s.specWake = next
		s.specWakeups.Inc()
		s.events.Push(next, event{kind: evRetry})
	}
}

// launchSpeculative starts a duplicate attempt of the task behind orig.
func (s *Simulator) launchSpeculative(node int, orig int32) {
	origRec := &s.arena.recs[orig]
	wf, job, st := origRec.wf, origRec.job, SlotType(origRec.st)
	ws := s.states[wf]
	spec := &ws.Spec.Jobs[job]
	base := spec.MapTime
	if st == ReduceSlot {
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	s.takeSlot(node, st)
	if st == MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.tasksStarted++
	s.taskSeq++
	end := s.now.Add(dur)
	// alloc may grow the arena; origRec is dead past this point.
	h, rec := s.arena.alloc()
	rec.end, rec.dur = end, dur
	rec.wf, rec.job, rec.node = wf, job, int32(node)
	rec.twin = orig
	rec.seq = int32(s.taskSeq)
	rec.st = uint8(st)
	rec.speculative = true
	rec.live = true
	s.linkRunning(node, h)
	s.setTwin(orig, h)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, workflow.JobID(job), st, dur)
	}
	s.events.Push(end, event{kind: evComplete, a: h, gen: rec.gen})
}

// drawLocality reports whether a map assignment finds its data on the
// chosen node: with R replicas spread uniformly over N nodes, a uniformly
// chosen node holds one with probability 1-(1-1/N)^R.
func (s *Simulator) drawLocality() bool {
	n := float64(s.cfg.Nodes)
	p := 1 - pow(1-1/n, s.cfg.Replication)
	return s.rng.Float64() < p
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

// noisy perturbs d by the configured estimation error and, independently,
// by the one-sided straggler model.
func (s *Simulator) noisy(d time.Duration) time.Duration {
	nd := d
	if s.cfg.Noise != 0 {
		f := 1 + s.cfg.Noise*(2*s.rng.Float64()-1)
		nd = time.Duration(float64(nd) * f)
	}
	if s.cfg.StragglerProb > 0 && s.rng.Float64() < s.cfg.StragglerProb {
		nd = time.Duration(float64(nd) * s.cfg.StragglerFactor)
	}
	if nd <= 0 {
		nd = time.Nanosecond
	}
	return nd
}
