package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Simulator executes submitted workflows on the simulated cluster under a
// scheduling policy. Construct with New, Submit workflows, then Run once.
type Simulator struct {
	cfg Config
	pol Policy
	obs Observer
	rng *rand.Rand

	states []*WorkflowState
	nodes  []nodeState
	events simtime.Queue[event]
	now    simtime.Time

	arrivalsLeft int
	doneCount    int
	taskSeq      int
	// specWake is the earliest armed speculative wake-up (MaxTime = none),
	// preventing duplicate retry events.
	specWake simtime.Time
	// attempts locates every running attempt by sequence number, for twin
	// cleanup under speculative execution.
	attempts map[int]attemptRef

	mapBusy, reduceBusy time.Duration
	tasksStarted        int
	makespan            simtime.Time
	localMaps           int
	remoteMaps          int

	// ins is the optional runtime instrumentation; evCount holds the
	// per-kind simulated-event counters (nil entries when uninstrumented —
	// obs counters no-op on nil).
	ins     *obs.Obs
	evCount [numEventKinds]*obs.Counter

	ran bool
}

type nodeState struct {
	freeMap    int
	freeReduce int
	down       bool
	// running tracks in-flight tasks by sequence number, so completions of
	// tasks lost to a failure are recognized as stale and ignored.
	running map[int]runningTask
}

// runningTask is the bookkeeping for one in-flight task attempt.
type runningTask struct {
	wf  int
	job workflow.JobID
	st  SlotType
	end simtime.Time
	dur time.Duration
	// twin is the other attempt's sequence number under speculative
	// execution (0 = no twin).
	twin int
	// speculative marks the duplicate attempt, which carries no JobState
	// accounting of its own.
	speculative bool
}

// attemptRef locates a running attempt.
type attemptRef struct {
	node int
	rt   runningTask
}

func (n *nodeState) free(st SlotType) int {
	if st == MapSlot {
		return n.freeMap
	}
	return n.freeReduce
}

func (n *nodeState) take(st SlotType) {
	if st == MapSlot {
		n.freeMap--
	} else {
		n.freeReduce--
	}
}

func (n *nodeState) release(st SlotType) {
	if st == MapSlot {
		n.freeMap++
	} else {
		n.freeReduce++
	}
}

// event is the simulator's single event type; exactly one kind field group is
// meaningful, selected by kind.
type event struct {
	kind eventKind

	wf   int            // arrival, activate, complete
	job  workflow.JobID // activate, complete
	st   SlotType       // complete
	node int            // complete, heartbeat, fail, recover
	seq  int            // complete
}

type eventKind int

const (
	evArrival eventKind = iota
	evActivate
	evComplete
	evHeartbeat
	evFail
	evRecover
	// evRetry re-runs dispatch after a delay-scheduling wait expires.
	evRetry

	numEventKinds
)

// eventKindNames label the woha_sim_events_total counter series.
var eventKindNames = [numEventKinds]string{
	"arrival", "activate", "complete", "heartbeat", "fail", "recover", "retry",
}

// New returns a simulator for the given cluster configuration and policy.
// obs may be nil.
func New(cfg Config, pol Policy, obs Observer) (*Simulator, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes, want > 0", cfg.Nodes)
	}
	if cfg.MapSlotsPerNode < 0 || cfg.ReduceSlotsPerNode < 0 || cfg.TotalSlots() == 0 {
		return nil, fmt.Errorf("cluster: bad slot config %d map + %d reduce per node",
			cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	}
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return nil, fmt.Errorf("cluster: noise %v, want [0, 1)", cfg.Noise)
	}
	if cfg.HeartbeatInterval < 0 {
		return nil, fmt.Errorf("cluster: negative heartbeat interval %v", cfg.HeartbeatInterval)
	}
	if cfg.Replication < 0 {
		return nil, fmt.Errorf("cluster: negative replication %d", cfg.Replication)
	}
	if cfg.Replication > 0 && cfg.RemotePenalty < 1 {
		return nil, fmt.Errorf("cluster: remote penalty %v, want >= 1", cfg.RemotePenalty)
	}
	if cfg.DelayScheduling < 0 {
		return nil, fmt.Errorf("cluster: negative delay scheduling %v", cfg.DelayScheduling)
	}
	if cfg.SpeculativeSlowdown != 0 && cfg.SpeculativeSlowdown <= 1 {
		return nil, fmt.Errorf("cluster: speculative slowdown %v, want > 1 or 0", cfg.SpeculativeSlowdown)
	}
	if cfg.StragglerProb < 0 || cfg.StragglerProb >= 1 {
		return nil, fmt.Errorf("cluster: straggler probability %v, want [0, 1)", cfg.StragglerProb)
	}
	if cfg.StragglerProb > 0 && cfg.StragglerFactor <= 1 {
		return nil, fmt.Errorf("cluster: straggler factor %v, want > 1", cfg.StragglerFactor)
	}
	if pol == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	s := &Simulator{
		cfg:      cfg,
		pol:      pol,
		obs:      obs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nodes:    make([]nodeState, cfg.Nodes),
		attempts: make(map[int]attemptRef),
		specWake: simtime.MaxTime,
	}
	for i := range s.nodes {
		s.nodes[i] = nodeState{
			freeMap:    cfg.MapSlotsPerNode,
			freeReduce: cfg.ReduceSlotsPerNode,
			running:    make(map[int]runningTask),
		}
	}
	for _, f := range cfg.Failures {
		if f.Node < 0 || f.Node >= cfg.Nodes {
			return nil, fmt.Errorf("cluster: failure on node %d of %d", f.Node, cfg.Nodes)
		}
		if f.At < 0 || f.Downtime < 0 {
			return nil, fmt.Errorf("cluster: bad failure schedule %+v", f)
		}
	}
	return s, nil
}

// SetInstrumentation attaches the runtime observability bundle: simulated
// event counters, task-assignment and workflow lifecycle events, and
// heartbeat dispatch latency. Call before Run; a nil o (the default) keeps
// the hot paths at a single nil check.
func (s *Simulator) SetInstrumentation(o *obs.Obs) {
	s.ins = o
	if o == nil {
		s.evCount = [numEventKinds]*obs.Counter{}
		return
	}
	for k, name := range eventKindNames {
		s.evCount[k] = o.SimEventCounter(name)
	}
}

// Submit queues a workflow for arrival at its release time. p is the WOHA
// scheduling plan and may be nil for policies that do not use one. Submit
// must be called before Run.
func (s *Simulator) Submit(w *workflow.Workflow, p *plan.Plan) error {
	if s.ran {
		return fmt.Errorf("cluster: Submit after Run")
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	ws := &WorkflowState{
		Index: len(s.states),
		Spec:  w,
		Plan:  p,
		Jobs:  make([]JobState, len(w.Jobs)),
	}
	for i := range w.Jobs {
		ws.Jobs[i] = JobState{
			ID:             workflow.JobID(i),
			PendingMaps:    w.Jobs[i].Maps,
			PendingReduces: w.Jobs[i].Reduces,
			unmet:          len(w.Jobs[i].Prereqs),
		}
		ws.remaining += w.Jobs[i].Tasks()
	}
	s.states = append(s.states, ws)
	s.events.Push(w.Release, event{kind: evArrival, wf: ws.Index})
	s.arrivalsLeft++
	return nil
}

// Run executes the simulation to completion and returns the run's results.
// It fails if any workflow can never finish (for example, a job needs map
// slots on a cluster configured with none).
func (s *Simulator) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("cluster: Run called twice")
	}
	s.ran = true
	if len(s.states) == 0 {
		return s.result(), nil
	}
	if s.cfg.HeartbeatInterval > 0 {
		// Stagger heartbeats evenly across the interval, as a real fleet's
		// unsynchronized trackers would.
		for i := range s.nodes {
			offset := time.Duration(int64(s.cfg.HeartbeatInterval) * int64(i) / int64(len(s.nodes)))
			s.events.Push(simtime.Epoch.Add(offset), event{kind: evHeartbeat, node: i})
		}
	}
	for _, f := range s.cfg.Failures {
		s.events.Push(f.At, event{kind: evFail, node: f.Node})
		if f.Downtime > 0 {
			s.events.Push(f.At.Add(f.Downtime), event{kind: evRecover, node: f.Node})
		}
	}
	for s.events.Len() > 0 {
		at, e, _ := s.events.Pop()
		s.now = at
		s.evCount[e.kind].Inc()
		switch e.kind {
		case evArrival:
			s.arrive(e.wf)
		case evActivate:
			s.activate(e.wf, e.job)
		case evComplete:
			s.complete(e)
		case evHeartbeat:
			s.heartbeat(e.node)
		case evFail:
			s.fail(e.node)
		case evRecover:
			s.recover(e.node)
		case evRetry:
			if s.specWake <= s.now {
				s.specWake = simtime.MaxTime
			}
			s.dispatchAll()
		}
	}
	if s.doneCount != len(s.states) {
		for _, ws := range s.states {
			if !ws.Done {
				return nil, fmt.Errorf("cluster: workflow %q stuck with %d tasks remaining (policy %s left schedulable work idle or cluster lacks a slot type)",
					ws.Spec.Name, ws.remaining, s.pol.Name())
			}
		}
	}
	return s.result(), nil
}

func (s *Simulator) arrive(wf int) {
	ws := s.states[wf]
	s.arrivalsLeft--
	s.ins.WorkflowSubmitted(s.now, wf, ws.Spec.Name)
	s.pol.WorkflowAdded(ws, s.now)
	// Activate every root before offering slots, so the policy sees the
	// whole ready set when the first slot is dispatched.
	for _, r := range ws.Spec.Roots() {
		s.scheduleActivation(wf, r)
	}
	s.dispatchAll()
}

// scheduleActivation makes job Ready now or after the submitter overhead.
// Immediate activations do not dispatch; the caller does, once all state
// changes of the current instant are applied.
func (s *Simulator) scheduleActivation(wf int, job workflow.JobID) {
	if s.cfg.SubmitterOverhead > 0 {
		s.events.Push(s.now.Add(s.cfg.SubmitterOverhead), event{kind: evActivate, wf: wf, job: job})
		return
	}
	s.activateNow(wf, job)
}

// activate handles a deferred activation event.
func (s *Simulator) activate(wf int, job workflow.JobID) {
	s.activateNow(wf, job)
	s.dispatchAll()
}

func (s *Simulator) activateNow(wf int, job workflow.JobID) {
	ws := s.states[wf]
	js := &ws.Jobs[job]
	js.Ready = true
	js.ActivatedAt = s.now
	s.ins.JobActivated(s.now, wf, int(job))
	s.pol.JobActivated(ws, job, s.now)
}

func (s *Simulator) complete(e event) {
	node := &s.nodes[e.node]
	rt, ok := node.running[e.seq]
	if !ok {
		// The attempt was lost to a node failure (or killed as a losing
		// speculative twin) after this completion was scheduled.
		return
	}
	delete(node.running, e.seq)
	delete(s.attempts, e.seq)
	node.release(e.st)
	if rt.twin != 0 {
		s.killAttempt(rt.twin)
	}
	ws := s.states[e.wf]
	js := &ws.Jobs[e.job]
	if e.st == MapSlot {
		js.RunningMaps--
		js.DoneMaps++
	} else {
		js.RunningReduces--
		js.DoneReduces++
	}
	ws.RunningTasks--
	ws.remaining--
	if s.obs != nil {
		s.obs.TaskFinished(s.now, ws, e.job, e.st)
	}
	if e.st == MapSlot && js.MapsDone() && js.PendingReduces > 0 {
		if rp, ok := s.pol.(ReducePhasePolicy); ok {
			rp.ReducesReady(ws, e.job, s.now)
		}
	}
	if js.Completed() {
		s.jobCompleted(ws, e.job)
	}
	if ws.remaining == 0 && !ws.Done {
		ws.Done = true
		ws.FinishTime = s.now
		s.doneCount++
		if s.ins != nil {
			var tardiness time.Duration
			if s.now > ws.Spec.Deadline {
				tardiness = s.now.Sub(ws.Spec.Deadline)
			}
			s.ins.WorkflowCompleted(s.now, ws.Index, ws.Spec.Name, tardiness)
		}
		s.pol.WorkflowCompleted(ws, s.now)
	}
	s.makespan = simtime.MaxOf(s.makespan, s.now)
	s.dispatchAll()
}

func (s *Simulator) jobCompleted(ws *WorkflowState, job workflow.JobID) {
	for _, d := range ws.Spec.Dependents()[job] {
		dj := &ws.Jobs[d]
		dj.unmet--
		if dj.unmet == 0 {
			s.scheduleActivation(ws.Index, d)
		}
	}
}

func (s *Simulator) heartbeat(node int) {
	var t0 time.Time
	started := 0
	if s.ins != nil {
		t0 = time.Now()
		started = s.tasksStarted
	}
	s.dispatchNode(node)
	if s.ins != nil {
		// The wall-clock cost of one heartbeat's worth of scheduling
		// decisions — the quantity WOHA's O(1)-per-heartbeat claim is about.
		s.ins.HeartbeatServed(s.now, node, time.Since(t0), s.tasksStarted-started)
	}
	if s.doneCount < len(s.states) || s.arrivalsLeft > 0 {
		s.events.Push(s.now.Add(s.cfg.HeartbeatInterval), event{kind: evHeartbeat, node: node})
	}
}

// fail takes a node down: its running tasks are lost and re-queued as
// pending, and its slots vanish until recovery.
func (s *Simulator) fail(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if node.down {
		return
	}
	node.down = true
	node.freeMap, node.freeReduce = 0, 0
	for seq, rt := range node.running {
		delete(node.running, seq)
		delete(s.attempts, seq)
		ws := s.states[rt.wf]
		if rt.st == MapSlot {
			s.mapBusy -= rt.end.Sub(s.now) // the lost remainder never runs
		} else {
			s.reduceBusy -= rt.end.Sub(s.now)
		}
		if s.obs != nil {
			// Balance the observer's start/finish pairing: the lost attempt
			// stopped occupying its slot at the failure instant.
			s.obs.TaskFinished(s.now, ws, rt.job, rt.st)
		}
		if rt.twin != 0 {
			// The other attempt survives and carries the task; detach it.
			s.detachTwin(rt.twin)
			continue
		}
		if rt.speculative {
			continue // the original attempt still runs the task
		}
		js := &ws.Jobs[rt.job]
		if rt.st == MapSlot {
			js.RunningMaps--
			js.PendingMaps++
		} else {
			js.RunningReduces--
			js.PendingReduces++
		}
		ws.RunningTasks--
		ws.ScheduledTasks--
		if rq, ok := s.pol.(RequeuePolicy); ok {
			rq.TaskRequeued(ws, rt.job, rt.st, s.now)
		}
	}
	// Remaining workflows may now be unschedulable if every node died;
	// Run's stuck detection reports that case.
	s.dispatchAll()
}

// recover brings a node back with empty slots.
func (s *Simulator) recover(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if !node.down {
		return
	}
	node.down = false
	node.freeMap = s.cfg.MapSlotsPerNode
	node.freeReduce = s.cfg.ReduceSlotsPerNode
	s.dispatchAll()
}

// dispatchAll assigns tasks to every idle slot in the cluster (instant
// dispatch mode). Under heartbeat mode slots are only offered on heartbeats.
func (s *Simulator) dispatchAll() {
	if s.cfg.HeartbeatInterval > 0 {
		return
	}
	for _, st := range []SlotType{MapSlot, ReduceSlot} {
		node := 0
		for {
			// Find a node with a free slot of this type.
			for node < len(s.nodes) && s.nodes[node].free(st) == 0 {
				node++
			}
			if node == len(s.nodes) {
				break
			}
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

// dispatchNode assigns tasks to one node's idle slots (heartbeat mode).
func (s *Simulator) dispatchNode(node int) {
	for _, st := range []SlotType{MapSlot, ReduceSlot} {
		for s.nodes[node].free(st) > 0 {
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

// offer asks the policy for a task for one free slot of type st on node,
// reporting whether one was assigned.
func (s *Simulator) offer(node int, st SlotType) bool {
	ws, job, ok := s.pol.NextTask(s.now, st)
	if !ok {
		return false
	}
	js := &ws.Jobs[job]
	if !js.Schedulable(st) {
		// A policy bug; fail loudly rather than corrupting counts.
		panic(fmt.Sprintf("cluster: policy %s returned non-schedulable job %d of workflow %q for %v slot",
			s.pol.Name(), job, ws.Spec.Name, st))
	}
	spec := &ws.Spec.Jobs[job]
	local := true
	if st == MapSlot && s.cfg.Replication > 0 {
		local = s.drawLocality()
		if !local && s.cfg.DelayScheduling > 0 {
			if js.delayedSince == 0 {
				// First refusal: start the delay-scheduling wait and leave
				// the slot idle until it expires or another event fires.
				js.delayedSince = s.now
				s.events.Push(s.now.Add(s.cfg.DelayScheduling), event{kind: evRetry})
				return false
			}
			if s.now.Sub(js.delayedSince) < s.cfg.DelayScheduling {
				return false
			}
			// Wait expired: accept the remote assignment.
		}
	}
	if local {
		js.delayedSince = 0
	}
	var base time.Duration
	if st == MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		base = spec.MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	if st == MapSlot && !local {
		dur = time.Duration(float64(dur) * s.cfg.RemotePenalty)
		s.remoteMaps++
	} else if st == MapSlot && s.cfg.Replication > 0 {
		s.localMaps++
	}
	s.nodes[node].take(st)
	ws.ScheduledTasks++
	ws.RunningTasks++
	s.tasksStarted++
	if st == MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.pol.TaskStarted(ws, job, st, s.now)
	s.ins.TaskAssigned(s.now, ws.Index, int(job), int(st), node, dur)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, job, st, dur)
	}
	s.taskSeq++
	end := s.now.Add(dur)
	rt := runningTask{wf: ws.Index, job: job, st: st, end: end, dur: dur}
	s.nodes[node].running[s.taskSeq] = rt
	s.attempts[s.taskSeq] = attemptRef{node: node, rt: rt}
	s.events.Push(end, event{kind: evComplete, wf: ws.Index, job: job, st: st, node: node, seq: s.taskSeq})
	return true
}

// killAttempt removes a losing speculative attempt, freeing its slot and
// crediting back the slot-time it will no longer consume.
func (s *Simulator) killAttempt(seq int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	delete(s.attempts, seq)
	delete(s.nodes[ref.node].running, seq)
	s.nodes[ref.node].release(ref.rt.st)
	if ref.rt.st == MapSlot {
		s.mapBusy -= ref.rt.end.Sub(s.now)
	} else {
		s.reduceBusy -= ref.rt.end.Sub(s.now)
	}
	if s.obs != nil {
		s.obs.TaskFinished(s.now, s.states[ref.rt.wf], ref.rt.job, ref.rt.st)
	}
}

// detachTwin clears the twin linkage on a surviving attempt.
func (s *Simulator) detachTwin(seq int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	ref.rt.twin = 0
	ref.rt.speculative = false // it now carries the task outright
	s.attempts[seq] = ref
	s.nodes[ref.node].running[seq] = ref.rt
}

// setTwin links two attempts of the same task.
func (s *Simulator) setTwin(seq, twin int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	ref.rt.twin = twin
	s.attempts[seq] = ref
	s.nodes[ref.node].running[seq] = ref.rt
}

// speculate launches duplicate attempts for overdue running tasks onto idle
// slots (speculative execution). It runs after normal dispatch found no
// assignable pending work for the remaining free slots.
func (s *Simulator) speculate() {
	if s.cfg.SpeculativeSlowdown == 0 {
		return
	}
	for _, st := range []SlotType{MapSlot, ReduceSlot} {
		for {
			node := s.freeNode(st)
			if node < 0 {
				break
			}
			seq, ok := s.overdueAttempt(st)
			if !ok {
				break
			}
			s.launchSpeculative(node, seq)
		}
	}
	s.armSpeculativeWake()
}

// armSpeculativeWake schedules a retry at the moment the next running
// attempt crosses its straggler threshold; without it a straggling final
// task would never be re-examined (no intervening events).
func (s *Simulator) armSpeculativeWake() {
	next := simtime.MaxTime
	for _, ref := range s.attempts {
		rt := ref.rt
		if rt.twin != 0 || rt.speculative {
			continue
		}
		spec := &s.states[rt.wf].Spec.Jobs[rt.job]
		estimate := spec.MapTime
		if rt.st == ReduceSlot {
			estimate = spec.ReduceTime
		}
		start := rt.end.Add(-rt.dur)
		overdueAt := start.Add(time.Duration(s.cfg.SpeculativeSlowdown*float64(estimate)) + time.Nanosecond)
		if overdueAt > s.now && overdueAt < next {
			next = overdueAt
		}
	}
	if next < s.specWake {
		s.specWake = next
		s.events.Push(next, event{kind: evRetry})
	}
}

// freeNode returns the first live node with a free slot of type st, or -1.
func (s *Simulator) freeNode(st SlotType) int {
	for i := range s.nodes {
		if !s.nodes[i].down && s.nodes[i].free(st) > 0 {
			return i
		}
	}
	return -1
}

// overdueAttempt picks the running attempt of type st that most exceeds
// SpeculativeSlowdown times its estimated duration and has no twin yet.
func (s *Simulator) overdueAttempt(st SlotType) (int, bool) {
	bestSeq, found := 0, false
	var bestOver time.Duration
	for seq, ref := range s.attempts {
		rt := ref.rt
		if rt.st != st || rt.twin != 0 || rt.speculative {
			continue
		}
		spec := &s.states[rt.wf].Spec.Jobs[rt.job]
		estimate := spec.MapTime
		if st == ReduceSlot {
			estimate = spec.ReduceTime
		}
		elapsed := s.now.Sub(rt.end.Add(-rt.dur))
		threshold := time.Duration(s.cfg.SpeculativeSlowdown * float64(estimate))
		if elapsed <= threshold {
			continue
		}
		over := elapsed - threshold
		if !found || over > bestOver || (over == bestOver && seq < bestSeq) {
			bestSeq, bestOver, found = seq, over, true
		}
	}
	return bestSeq, found
}

// launchSpeculative starts a duplicate attempt of the task behind seq.
func (s *Simulator) launchSpeculative(node, seq int) {
	orig := s.attempts[seq]
	ws := s.states[orig.rt.wf]
	spec := &ws.Spec.Jobs[orig.rt.job]
	base := spec.MapTime
	if orig.rt.st == ReduceSlot {
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	s.nodes[node].take(orig.rt.st)
	if orig.rt.st == MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.tasksStarted++
	s.taskSeq++
	end := s.now.Add(dur)
	rt := runningTask{
		wf: orig.rt.wf, job: orig.rt.job, st: orig.rt.st,
		end: end, dur: dur, twin: seq, speculative: true,
	}
	s.nodes[node].running[s.taskSeq] = rt
	s.attempts[s.taskSeq] = attemptRef{node: node, rt: rt}
	s.setTwin(seq, s.taskSeq)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, rt.job, rt.st, dur)
	}
	s.events.Push(end, event{kind: evComplete, wf: rt.wf, job: rt.job, st: rt.st, node: node, seq: s.taskSeq})
}

// drawLocality reports whether a map assignment finds its data on the
// chosen node: with R replicas spread uniformly over N nodes, a uniformly
// chosen node holds one with probability 1-(1-1/N)^R.
func (s *Simulator) drawLocality() bool {
	n := float64(s.cfg.Nodes)
	p := 1 - pow(1-1/n, s.cfg.Replication)
	return s.rng.Float64() < p
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

// noisy perturbs d by the configured estimation error and, independently,
// by the one-sided straggler model.
func (s *Simulator) noisy(d time.Duration) time.Duration {
	nd := d
	if s.cfg.Noise != 0 {
		f := 1 + s.cfg.Noise*(2*s.rng.Float64()-1)
		nd = time.Duration(float64(nd) * f)
	}
	if s.cfg.StragglerProb > 0 && s.rng.Float64() < s.cfg.StragglerProb {
		nd = time.Duration(float64(nd) * s.cfg.StragglerFactor)
	}
	if nd <= 0 {
		nd = time.Nanosecond
	}
	return nd
}
