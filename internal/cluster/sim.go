package cluster

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Simulator executes submitted workflows on the simulated cluster under a
// scheduling policy. Construct with New, Submit workflows, then Run once.
type Simulator struct {
	cfg Config
	pol Policy
	obs Observer
	rng *rand.Rand

	states []*WorkflowState
	nodes  []nodeState
	events simtime.Queue[event]
	now    simtime.Time

	arrivalsLeft int
	doneCount    int
	taskSeq      int
	// eventCount tallies every discrete event processed (Result.SimulatedEvents).
	eventCount int
	// specWake is the earliest armed speculative wake-up (MaxTime = none),
	// preventing duplicate retry events.
	specWake simtime.Time
	// attempts locates every running attempt by sequence number, for twin
	// cleanup under speculative execution.
	attempts map[int]attemptRef

	// freeIdx[st] indexes the nodes that are up with at least one free slot
	// of type st, so dispatch finds a slot without scanning every node.
	freeIdx [2]nodeSet
	// overdue[st] orders running attempts of type st by straggler-threshold
	// crossing, so speculate pops its victim instead of scanning attempts.
	overdue [2]specHeap
	// arrivalTimes holds every submitted release time, sorted at Run;
	// arrIdx counts arrivals already delivered, so the next pending arrival
	// is an O(1) lookup for heartbeat skip-ahead.
	arrivalTimes []simtime.Time
	arrIdx       int

	mapBusy, reduceBusy time.Duration
	tasksStarted        int
	makespan            simtime.Time
	localMaps           int
	remoteMaps          int

	// ins is the optional runtime instrumentation; evCount holds the
	// per-kind simulated-event counters (nil entries when uninstrumented —
	// obs counters no-op on nil), and the dispatch counters below track the
	// hot-path work the free-slot index and heartbeat suppression save.
	ins          *obs.Obs
	evCount      [numEventKinds]*obs.Counter
	offerCount   *obs.Counter
	hbSupBusy    *obs.Counter
	hbSupDrained *obs.Counter
	specWakeups  *obs.Counter

	ran bool
}

// simPool recycles simulator state — node tables, task-attempt maps, the
// event queue, and both hot-path indexes — across runs. New draws from it
// and Release returns to it, so repeated-scenario workloads (the experiment
// runner, benches) stop paying per-run allocation for per-run state.
var simPool = sync.Pool{New: func() any { return new(Simulator) }}

type nodeState struct {
	freeMap    int
	freeReduce int
	down       bool
	// hbArmed reports whether a heartbeat event for this node is pending
	// (heartbeat mode only). A dormant node — fully busy with speculation
	// off, or idle with every live workflow done — stays unarmed until a
	// completion, recovery, or arrival makes a tick useful again.
	hbArmed bool
	// running tracks in-flight tasks by sequence number, so completions of
	// tasks lost to a failure are recognized as stale and ignored.
	running map[int]runningTask
}

// runningTask is the bookkeeping for one in-flight task attempt.
type runningTask struct {
	wf  int
	job workflow.JobID
	st  SlotType
	end simtime.Time
	dur time.Duration
	// twin is the other attempt's sequence number under speculative
	// execution (0 = no twin).
	twin int
	// speculative marks the duplicate attempt, which carries no JobState
	// accounting of its own.
	speculative bool
}

// attemptRef locates a running attempt.
type attemptRef struct {
	node int
	rt   runningTask
}

func (n *nodeState) free(st SlotType) int {
	if st == MapSlot {
		return n.freeMap
	}
	return n.freeReduce
}

func (n *nodeState) take(st SlotType) {
	if st == MapSlot {
		n.freeMap--
	} else {
		n.freeReduce--
	}
}

func (n *nodeState) release(st SlotType) {
	if st == MapSlot {
		n.freeMap++
	} else {
		n.freeReduce++
	}
}

// event is the simulator's single event type; exactly one kind field group is
// meaningful, selected by kind.
type event struct {
	kind eventKind

	wf   int            // arrival, activate, complete
	job  workflow.JobID // activate, complete
	st   SlotType       // complete
	node int            // complete, heartbeat, fail, recover
	seq  int            // complete
}

type eventKind int

const (
	evArrival eventKind = iota
	evActivate
	evComplete
	evHeartbeat
	evFail
	evRecover
	// evRetry re-runs dispatch after a delay-scheduling wait expires.
	evRetry

	numEventKinds
)

// eventKindNames label the woha_sim_events_total counter series.
var eventKindNames = [numEventKinds]string{
	"arrival", "activate", "complete", "heartbeat", "fail", "recover", "retry",
}

// New returns a simulator for the given cluster configuration and policy.
// obs may be nil.
func New(cfg Config, pol Policy, obs Observer) (*Simulator, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: %d nodes, want > 0", cfg.Nodes)
	}
	if cfg.MapSlotsPerNode < 0 || cfg.ReduceSlotsPerNode < 0 || cfg.TotalSlots() == 0 {
		return nil, fmt.Errorf("cluster: bad slot config %d map + %d reduce per node",
			cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode)
	}
	if cfg.Noise < 0 || cfg.Noise >= 1 {
		return nil, fmt.Errorf("cluster: noise %v, want [0, 1)", cfg.Noise)
	}
	if cfg.HeartbeatInterval < 0 {
		return nil, fmt.Errorf("cluster: negative heartbeat interval %v", cfg.HeartbeatInterval)
	}
	if cfg.Replication < 0 {
		return nil, fmt.Errorf("cluster: negative replication %d", cfg.Replication)
	}
	if cfg.Replication > 0 && cfg.RemotePenalty < 1 {
		return nil, fmt.Errorf("cluster: remote penalty %v, want >= 1", cfg.RemotePenalty)
	}
	if cfg.DelayScheduling < 0 {
		return nil, fmt.Errorf("cluster: negative delay scheduling %v", cfg.DelayScheduling)
	}
	if cfg.SpeculativeSlowdown != 0 && cfg.SpeculativeSlowdown <= 1 {
		return nil, fmt.Errorf("cluster: speculative slowdown %v, want > 1 or 0", cfg.SpeculativeSlowdown)
	}
	if cfg.StragglerProb < 0 || cfg.StragglerProb >= 1 {
		return nil, fmt.Errorf("cluster: straggler probability %v, want [0, 1)", cfg.StragglerProb)
	}
	if cfg.StragglerProb > 0 && cfg.StragglerFactor <= 1 {
		return nil, fmt.Errorf("cluster: straggler factor %v, want > 1", cfg.StragglerFactor)
	}
	if pol == nil {
		return nil, fmt.Errorf("cluster: nil policy")
	}
	for _, f := range cfg.Failures {
		if f.Node < 0 || f.Node >= cfg.Nodes {
			return nil, fmt.Errorf("cluster: failure on node %d of %d", f.Node, cfg.Nodes)
		}
		if f.At < 0 || f.Downtime < 0 {
			return nil, fmt.Errorf("cluster: bad failure schedule %+v", f)
		}
	}
	s := simPool.Get().(*Simulator)
	s.reset(cfg, pol, obs)
	return s, nil
}

// reset reinitializes every field for a fresh run, reusing the backing
// storage a pooled simulator brings along.
func (s *Simulator) reset(cfg Config, pol Policy, obs Observer) {
	s.cfg, s.pol, s.obs = cfg, pol, obs
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(cfg.Seed))
	} else {
		s.rng.Seed(cfg.Seed)
	}
	for i := range s.states {
		s.states[i] = nil
	}
	s.states = s.states[:0]
	for len(s.nodes) < cfg.Nodes {
		s.nodes = append(s.nodes, nodeState{})
	}
	s.nodes = s.nodes[:cfg.Nodes]
	for i := range s.nodes {
		n := &s.nodes[i]
		n.freeMap, n.freeReduce = cfg.MapSlotsPerNode, cfg.ReduceSlotsPerNode
		n.down, n.hbArmed = false, false
		if n.running == nil {
			n.running = make(map[int]runningTask)
		} else {
			clear(n.running)
		}
	}
	if cfg.MapSlotsPerNode > 0 {
		s.freeIdx[MapSlot].fill(cfg.Nodes)
	} else {
		s.freeIdx[MapSlot].reset(cfg.Nodes)
	}
	if cfg.ReduceSlotsPerNode > 0 {
		s.freeIdx[ReduceSlot].fill(cfg.Nodes)
	} else {
		s.freeIdx[ReduceSlot].reset(cfg.Nodes)
	}
	s.overdue[MapSlot].reset()
	s.overdue[ReduceSlot].reset()
	s.events.Reset()
	s.now = simtime.Epoch
	s.arrivalsLeft, s.doneCount, s.taskSeq, s.eventCount = 0, 0, 0, 0
	s.specWake = simtime.MaxTime
	if s.attempts == nil {
		s.attempts = make(map[int]attemptRef)
	} else {
		clear(s.attempts)
	}
	s.arrivalTimes = s.arrivalTimes[:0]
	s.arrIdx = 0
	s.mapBusy, s.reduceBusy = 0, 0
	s.tasksStarted = 0
	s.makespan = simtime.Epoch
	s.localMaps, s.remoteMaps = 0, 0
	s.SetInstrumentation(nil)
	s.ran = false
}

// Release returns the simulator's internal state to the package pool for
// reuse by a later New. Call it after Run when executing many scenarios
// (Result is self-contained and stays valid); the simulator must not be
// used afterwards. Release is optional — an unreleased simulator is simply
// collected.
func (s *Simulator) Release() {
	s.pol, s.obs, s.ins = nil, nil, nil
	for i := range s.states {
		s.states[i] = nil
	}
	s.states = s.states[:0]
	for i := range s.nodes {
		clear(s.nodes[i].running)
	}
	clear(s.attempts)
	s.events.Reset()
	s.evCount = [numEventKinds]*obs.Counter{}
	s.offerCount, s.hbSupBusy, s.hbSupDrained, s.specWakeups = nil, nil, nil, nil
	simPool.Put(s)
}

// SetInstrumentation attaches the runtime observability bundle: simulated
// event counters, task-assignment and workflow lifecycle events, and
// heartbeat dispatch latency. Call before Run; a nil o (the default) keeps
// the hot paths at a single nil check.
func (s *Simulator) SetInstrumentation(o *obs.Obs) {
	s.ins = o
	if o == nil {
		s.evCount = [numEventKinds]*obs.Counter{}
		s.offerCount, s.hbSupBusy, s.hbSupDrained, s.specWakeups = nil, nil, nil, nil
		return
	}
	for k, name := range eventKindNames {
		s.evCount[k] = o.SimEventCounter(name)
	}
	s.offerCount = o.SimDispatchOffers()
	s.hbSupBusy = o.SimHeartbeatsSuppressed("busy")
	s.hbSupDrained = o.SimHeartbeatsSuppressed("drained")
	s.specWakeups = o.SimSpecWakeups()
	o.Health().SetSlots(s.cfg.MapSlots(), s.cfg.ReduceSlots())
	// Workflows submitted before instrumentation was attached still join
	// the health table.
	for _, ws := range s.states {
		o.Health().Register(ws.Index, ws.Spec.Name, ws.Spec.Release,
			ws.Spec.Deadline, ws.Spec.TotalTasks(), ws.Plan)
	}
}

// Submit queues a workflow for arrival at its release time. p is the WOHA
// scheduling plan and may be nil for policies that do not use one. Submit
// must be called before Run.
func (s *Simulator) Submit(w *workflow.Workflow, p *plan.Plan) error {
	if s.ran {
		return fmt.Errorf("cluster: Submit after Run")
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	ws := NewWorkflowState(len(s.states), w, p)
	s.ins.Health().Register(ws.Index, w.Name, w.Release, w.Deadline, w.TotalTasks(), p)
	s.states = append(s.states, ws)
	s.events.Push(w.Release, event{kind: evArrival, wf: ws.Index})
	s.arrivalTimes = append(s.arrivalTimes, w.Release)
	s.arrivalsLeft++
	return nil
}

// Run executes the simulation to completion and returns the run's results.
// It fails if any workflow can never finish (for example, a job needs map
// slots on a cluster configured with none).
func (s *Simulator) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("cluster: Run called twice")
	}
	s.ran = true
	if len(s.states) == 0 {
		return s.result(), nil
	}
	slices.Sort(s.arrivalTimes)
	if s.cfg.HeartbeatInterval > 0 {
		// Stagger heartbeats evenly across the interval, as a real fleet's
		// unsynchronized trackers would. Each node's ticks stay on its own
		// phase grid (Epoch + offset + k*interval) for the whole run, so
		// suppression and skip-ahead can never shift the tick times a node
		// would naturally have fired at.
		for i := range s.nodes {
			s.armHeartbeat(i, simtime.Epoch.Add(s.hbOffset(i)))
		}
	}
	for _, f := range s.cfg.Failures {
		s.events.Push(f.At, event{kind: evFail, node: f.Node})
		if f.Downtime > 0 {
			s.events.Push(f.At.Add(f.Downtime), event{kind: evRecover, node: f.Node})
		}
	}
	for s.events.Len() > 0 {
		at, e, _ := s.events.Pop()
		s.now = at
		s.eventCount++
		s.evCount[e.kind].Inc()
		switch e.kind {
		case evArrival:
			s.arrive(e.wf)
		case evActivate:
			s.activate(e.wf, e.job)
		case evComplete:
			s.complete(e)
		case evHeartbeat:
			s.heartbeat(e.node)
		case evFail:
			s.fail(e.node)
		case evRecover:
			s.recover(e.node)
		case evRetry:
			if s.specWake <= s.now {
				s.specWake = simtime.MaxTime
			}
			s.dispatchAll()
		}
	}
	if s.doneCount != len(s.states) {
		for _, ws := range s.states {
			if !ws.Done {
				return nil, fmt.Errorf("cluster: workflow %q stuck with %d tasks remaining (policy %s left schedulable work idle or cluster lacks a slot type)",
					ws.Spec.Name, ws.remaining, s.pol.Name())
			}
		}
	}
	return s.result(), nil
}

func (s *Simulator) arrive(wf int) {
	ws := s.states[wf]
	s.arrivalsLeft--
	s.arrIdx++
	s.ins.WorkflowSubmitted(s.now, wf, ws.Spec.Name)
	s.pol.WorkflowAdded(ws, s.now)
	// Activate every root before offering slots, so the policy sees the
	// whole ready set when the first slot is dispatched.
	for _, r := range ws.Spec.Roots() {
		s.scheduleActivation(wf, r)
	}
	s.dispatchAll()
}

// scheduleActivation makes job Ready now or after the submitter overhead.
// Immediate activations do not dispatch; the caller does, once all state
// changes of the current instant are applied.
func (s *Simulator) scheduleActivation(wf int, job workflow.JobID) {
	if s.cfg.SubmitterOverhead > 0 {
		s.events.Push(s.now.Add(s.cfg.SubmitterOverhead), event{kind: evActivate, wf: wf, job: job})
		return
	}
	s.activateNow(wf, job)
}

// activate handles a deferred activation event.
func (s *Simulator) activate(wf int, job workflow.JobID) {
	s.activateNow(wf, job)
	s.dispatchAll()
}

func (s *Simulator) activateNow(wf int, job workflow.JobID) {
	ws := s.states[wf]
	js := &ws.Jobs[job]
	js.Ready = true
	js.ActivatedAt = s.now
	s.ins.JobActivated(s.now, wf, int(job))
	s.pol.JobActivated(ws, job, s.now)
}

func (s *Simulator) complete(e event) {
	node := &s.nodes[e.node]
	rt, ok := node.running[e.seq]
	if !ok {
		// The attempt was lost to a node failure (or killed as a losing
		// speculative twin) after this completion was scheduled.
		return
	}
	delete(node.running, e.seq)
	delete(s.attempts, e.seq)
	s.releaseSlot(e.node, e.st)
	if rt.twin != 0 {
		s.killAttempt(rt.twin)
	}
	ws := s.states[e.wf]
	js := &ws.Jobs[e.job]
	if e.st == MapSlot {
		js.RunningMaps--
		js.DoneMaps++
	} else {
		js.RunningReduces--
		js.DoneReduces++
	}
	ws.RunningTasks--
	left := ws.TaskDone()
	s.ins.TaskCompleted(s.now, e.wf, int(e.job), int(e.st), e.node)
	if s.obs != nil {
		s.obs.TaskFinished(s.now, ws, e.job, e.st)
	}
	if e.st == MapSlot && js.MapsDone() && js.PendingReduces > 0 {
		if rp, ok := s.pol.(ReducePhasePolicy); ok {
			rp.ReducesReady(ws, e.job, s.now)
		}
	}
	if js.Completed() {
		s.jobCompleted(ws, e.job)
	}
	if left == 0 && !ws.Done {
		ws.Done = true
		ws.FinishTime = s.now
		s.doneCount++
		if s.ins != nil {
			var tardiness time.Duration
			if s.now > ws.Spec.Deadline {
				tardiness = s.now.Sub(ws.Spec.Deadline)
			}
			s.ins.WorkflowCompleted(s.now, ws.Index, ws.Spec.Name, tardiness)
		}
		s.pol.WorkflowCompleted(ws, s.now)
	}
	s.makespan = simtime.MaxOf(s.makespan, s.now)
	s.wakeNode(e.node)
	s.dispatchAll()
}

func (s *Simulator) jobCompleted(ws *WorkflowState, job workflow.JobID) {
	for _, d := range ws.Spec.Dependents()[job] {
		dj := &ws.Jobs[d]
		dj.unmet--
		if dj.unmet == 0 {
			s.scheduleActivation(ws.Index, d)
		}
	}
}

func (s *Simulator) heartbeat(node int) {
	s.nodes[node].hbArmed = false
	var t0 time.Time
	started := 0
	if s.ins != nil {
		t0 = time.Now()
		started = s.tasksStarted
	}
	s.dispatchNode(node)
	if s.ins != nil {
		// The wall-clock cost of one heartbeat's worth of scheduling
		// decisions — the quantity WOHA's O(1)-per-heartbeat claim is about.
		s.ins.HeartbeatServed(s.now, node, time.Since(t0), s.tasksStarted-started)
	}
	s.rearmHeartbeat(node)
}

// armHeartbeat schedules node's next heartbeat tick.
func (s *Simulator) armHeartbeat(node int, at simtime.Time) {
	s.nodes[node].hbArmed = true
	s.events.Push(at, event{kind: evHeartbeat, node: node})
}

// rearmHeartbeat decides when node ticks next. The default is one interval
// from now; two cases suppress ticks that provably cannot schedule work:
//
//   - drained: every live workflow is done, so no completion or activation
//     can occur before the next arrival — sleep straight to the first
//     on-grid tick that can see it (arrival events at the same instant pop
//     first, having been pushed at Submit).
//   - busy: the node has no free slot of either type, so a tick cannot
//     place work on it; stay dormant until a completion or recovery wakes
//     it (wakeNode). Only valid with speculation off — an all-busy node's
//     tick can still launch speculative twins on other nodes' free slots.
func (s *Simulator) rearmHeartbeat(node int) {
	if s.doneCount == len(s.states) {
		return // run complete; let the event queue drain
	}
	if s.doneCount == s.arrIdx {
		// Every arrived workflow is done, so only the next arrival
		// (arrivalsLeft > 0 here) can create schedulable work.
		s.hbSupDrained.Inc()
		s.armHeartbeat(node, s.nextTick(node, s.nextArrival()))
		return
	}
	n := &s.nodes[node]
	if s.cfg.SpeculativeSlowdown == 0 && n.freeMap == 0 && n.freeReduce == 0 {
		s.hbSupBusy.Inc()
		return
	}
	s.armHeartbeat(node, s.now.Add(s.cfg.HeartbeatInterval))
}

// wakeNode re-arms a dormant node after a completion, recovery, or
// kill frees capacity or work. The tick lands on the node's own phase grid;
// a tick coinciding with the waking event is served immediately after it.
// No-op outside heartbeat mode or when the node is already armed.
func (s *Simulator) wakeNode(node int) {
	if s.cfg.HeartbeatInterval <= 0 || s.nodes[node].hbArmed {
		return
	}
	if s.doneCount == len(s.states) {
		return
	}
	at := s.now
	if s.doneCount == s.arrIdx {
		// Only a future arrival can put work on this node.
		if na := s.nextArrival(); na > at {
			at = na
		}
	}
	s.armHeartbeat(node, s.nextTick(node, at))
}

// nextTick returns the first tick of node's staggered heartbeat grid at or
// after t. If t falls beyond the current instant's tick, ticks in between
// are skipped — they could not have scheduled anything.
func (s *Simulator) nextTick(node int, t simtime.Time) simtime.Time {
	first := simtime.Epoch.Add(s.hbOffset(node))
	if t <= first {
		return first
	}
	iv := int64(s.cfg.HeartbeatInterval)
	k := (int64(t.Sub(first)) + iv - 1) / iv
	return first.Add(time.Duration(k * iv))
}

// hbOffset is node's phase within the heartbeat interval (the Run stagger).
func (s *Simulator) hbOffset(node int) time.Duration {
	return time.Duration(int64(s.cfg.HeartbeatInterval) * int64(node) / int64(len(s.nodes)))
}

// nextArrival returns the release time of the next pending arrival. Only
// valid while arrivalsLeft > 0.
func (s *Simulator) nextArrival() simtime.Time {
	return s.arrivalTimes[s.arrIdx]
}

// fail takes a node down: its running tasks are lost and re-queued as
// pending, and its slots vanish until recovery.
func (s *Simulator) fail(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if node.down {
		return
	}
	node.down = true
	node.freeMap, node.freeReduce = 0, 0
	s.freeIdx[MapSlot].clear(nodeIdx)
	s.freeIdx[ReduceSlot].clear(nodeIdx)
	for seq, rt := range node.running {
		delete(node.running, seq)
		delete(s.attempts, seq)
		ws := s.states[rt.wf]
		if rt.st == MapSlot {
			s.mapBusy -= rt.end.Sub(s.now) // the lost remainder never runs
		} else {
			s.reduceBusy -= rt.end.Sub(s.now)
		}
		if s.obs != nil {
			// Balance the observer's start/finish pairing: the lost attempt
			// stopped occupying its slot at the failure instant.
			s.obs.TaskFinished(s.now, ws, rt.job, rt.st)
		}
		if rt.twin != 0 {
			// The other attempt survives and carries the task; detach it.
			s.detachTwin(rt.twin)
			continue
		}
		if rt.speculative {
			continue // the original attempt still runs the task
		}
		js := &ws.Jobs[rt.job]
		if rt.st == MapSlot {
			js.RunningMaps--
			js.PendingMaps++
		} else {
			js.RunningReduces--
			js.PendingReduces++
		}
		ws.RunningTasks--
		ws.ScheduledTasks--
		if rq, ok := s.pol.(RequeuePolicy); ok {
			rq.TaskRequeued(ws, rt.job, rt.st, s.now)
		}
	}
	// Remaining workflows may now be unschedulable if every node died;
	// Run's stuck detection reports that case.
	s.dispatchAll()
}

// recover brings a node back with empty slots.
func (s *Simulator) recover(nodeIdx int) {
	node := &s.nodes[nodeIdx]
	if !node.down {
		return
	}
	node.down = false
	node.freeMap = s.cfg.MapSlotsPerNode
	node.freeReduce = s.cfg.ReduceSlotsPerNode
	if node.freeMap > 0 {
		s.freeIdx[MapSlot].set(nodeIdx)
	}
	if node.freeReduce > 0 {
		s.freeIdx[ReduceSlot].set(nodeIdx)
	}
	s.wakeNode(nodeIdx)
	s.dispatchAll()
}

// dispatchAll assigns tasks to every idle slot in the cluster (instant
// dispatch mode). Under heartbeat mode slots are only offered on heartbeats.
func (s *Simulator) dispatchAll() {
	if s.cfg.HeartbeatInterval > 0 {
		return
	}
	for _, st := range []SlotType{MapSlot, ReduceSlot} {
		node := 0
		for {
			// Find a node with a free slot of this type. The index walks
			// the same lowest-index-first order the old O(nodes) scan did.
			node = s.freeIdx[st].next(node)
			if node < 0 {
				break
			}
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

// takeSlot claims a free st slot on node, maintaining the free-slot index.
func (s *Simulator) takeSlot(node int, st SlotType) {
	n := &s.nodes[node]
	n.take(st)
	if n.free(st) == 0 {
		s.freeIdx[st].clear(node)
	}
}

// releaseSlot frees an st slot on node. Never called on a down node: a
// failure clears its running table, so no completion or kill reaches it.
func (s *Simulator) releaseSlot(node int, st SlotType) {
	s.nodes[node].release(st)
	s.freeIdx[st].set(node)
}

// dispatchNode assigns tasks to one node's idle slots (heartbeat mode).
func (s *Simulator) dispatchNode(node int) {
	for _, st := range []SlotType{MapSlot, ReduceSlot} {
		for s.nodes[node].free(st) > 0 {
			if !s.offer(node, st) {
				break
			}
		}
	}
	s.speculate()
}

// offer asks the policy for a task for one free slot of type st on node,
// reporting whether one was assigned.
func (s *Simulator) offer(node int, st SlotType) bool {
	s.offerCount.Inc()
	ws, job, ok := s.pol.NextTask(s.now, st)
	if !ok {
		return false
	}
	js := &ws.Jobs[job]
	if !js.Schedulable(st) {
		// A policy bug; fail loudly rather than corrupting counts.
		panic(fmt.Sprintf("cluster: policy %s returned non-schedulable job %d of workflow %q for %v slot",
			s.pol.Name(), job, ws.Spec.Name, st))
	}
	spec := &ws.Spec.Jobs[job]
	local := true
	if st == MapSlot && s.cfg.Replication > 0 {
		local = s.drawLocality()
		if !local && s.cfg.DelayScheduling > 0 {
			if js.delayedSince == 0 {
				// First refusal: start the delay-scheduling wait and leave
				// the slot idle until it expires or another event fires.
				js.delayedSince = s.now
				s.events.Push(s.now.Add(s.cfg.DelayScheduling), event{kind: evRetry})
				return false
			}
			if s.now.Sub(js.delayedSince) < s.cfg.DelayScheduling {
				return false
			}
			// Wait expired: accept the remote assignment.
		}
	}
	if local {
		js.delayedSince = 0
	}
	var base time.Duration
	if st == MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		base = spec.MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	if st == MapSlot && !local {
		dur = time.Duration(float64(dur) * s.cfg.RemotePenalty)
		s.remoteMaps++
	} else if st == MapSlot && s.cfg.Replication > 0 {
		s.localMaps++
	}
	s.takeSlot(node, st)
	ws.ScheduledTasks++
	ws.RunningTasks++
	s.tasksStarted++
	if st == MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.pol.TaskStarted(ws, job, st, s.now)
	s.ins.TaskAssigned(s.now, ws.Index, int(job), int(st), node, dur)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, job, st, dur)
	}
	s.taskSeq++
	end := s.now.Add(dur)
	rt := runningTask{wf: ws.Index, job: job, st: st, end: end, dur: dur}
	s.nodes[node].running[s.taskSeq] = rt
	s.attempts[s.taskSeq] = attemptRef{node: node, rt: rt}
	if s.cfg.SpeculativeSlowdown != 0 {
		s.overdue[st].push(s.specCrossing(rt), s.taskSeq)
	}
	s.events.Push(end, event{kind: evComplete, wf: ws.Index, job: job, st: st, node: node, seq: s.taskSeq})
	return true
}

// killAttempt removes a losing speculative attempt, freeing its slot and
// crediting back the slot-time it will no longer consume.
func (s *Simulator) killAttempt(seq int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	delete(s.attempts, seq)
	delete(s.nodes[ref.node].running, seq)
	s.releaseSlot(ref.node, ref.rt.st)
	if ref.rt.st == MapSlot {
		s.mapBusy -= ref.rt.end.Sub(s.now)
	} else {
		s.reduceBusy -= ref.rt.end.Sub(s.now)
	}
	if s.obs != nil {
		s.obs.TaskFinished(s.now, s.states[ref.rt.wf], ref.rt.job, ref.rt.st)
	}
}

// detachTwin clears the twin linkage on a surviving attempt, making it a
// speculation candidate again.
func (s *Simulator) detachTwin(seq int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	ref.rt.twin = 0
	ref.rt.speculative = false // it now carries the task outright
	s.attempts[seq] = ref
	s.nodes[ref.node].running[seq] = ref.rt
	if s.cfg.SpeculativeSlowdown != 0 {
		s.overdue[ref.rt.st].push(s.specCrossing(ref.rt), seq)
	}
}

// setTwin links two attempts of the same task.
func (s *Simulator) setTwin(seq, twin int) {
	ref, ok := s.attempts[seq]
	if !ok {
		return
	}
	ref.rt.twin = twin
	s.attempts[seq] = ref
	s.nodes[ref.node].running[seq] = ref.rt
}

// speculate launches duplicate attempts for overdue running tasks onto idle
// slots (speculative execution). It runs after normal dispatch found no
// assignable pending work for the remaining free slots.
func (s *Simulator) speculate() {
	if s.cfg.SpeculativeSlowdown == 0 {
		return
	}
	for _, st := range []SlotType{MapSlot, ReduceSlot} {
		for {
			node := s.freeIdx[st].next(0)
			if node < 0 {
				break
			}
			seq, ok := s.popOverdue(st)
			if !ok {
				break
			}
			s.launchSpeculative(node, seq)
		}
	}
	s.armSpeculativeWake()
}

// popOverdue pops the attempt of type st that has been past its straggler
// threshold the longest — the minimum (crossing instant, launch sequence),
// which is exactly the old scan's max-overage victim with lowest-sequence
// tie-break, but deterministic by construction instead of by a guarded map
// iteration. Stale heap entries (attempt completed, killed, lost to a
// failure, or already twinned) are discarded on the way.
func (s *Simulator) popOverdue(st SlotType) (int, bool) {
	h := &s.overdue[st]
	for {
		e, ok := h.peek()
		if !ok {
			return 0, false
		}
		ref, live := s.attempts[e.seq]
		if !live || ref.rt.twin != 0 || ref.rt.speculative {
			h.pop()
			continue
		}
		if e.at > s.now {
			return 0, false // earliest candidate is not overdue yet
		}
		h.pop()
		return e.seq, true
	}
}

// specCrossing returns the instant rt crosses its straggler threshold: the
// first instant at which elapsed > SpeculativeSlowdown * estimate holds.
// It is fixed at launch, so candidates can be heap-ordered by it.
func (s *Simulator) specCrossing(rt runningTask) simtime.Time {
	spec := &s.states[rt.wf].Spec.Jobs[rt.job]
	estimate := spec.MapTime
	if rt.st == ReduceSlot {
		estimate = spec.ReduceTime
	}
	start := rt.end.Add(-rt.dur)
	return start.Add(time.Duration(s.cfg.SpeculativeSlowdown*float64(estimate)) + time.Nanosecond)
}

// armSpeculativeWake schedules a retry at the moment the next running
// attempt crosses its straggler threshold; without it a straggling final
// task would never be re-examined (no intervening events). The heap top is
// normally that attempt; only when already-overdue candidates (blocked on a
// full cluster) bury the future ones does it fall back to scanning the heap
// array.
func (s *Simulator) armSpeculativeWake() {
	next := simtime.MaxTime
	for st := range s.overdue {
		h := &s.overdue[st]
		for {
			e, ok := h.peek()
			if !ok {
				break
			}
			ref, live := s.attempts[e.seq]
			if !live || ref.rt.twin != 0 || ref.rt.speculative {
				h.pop()
				continue
			}
			if e.at > s.now {
				if e.at < next {
					next = e.at
				}
			} else {
				for _, c := range h.es {
					if c.at <= s.now || c.at >= next {
						continue
					}
					if r, ok := s.attempts[c.seq]; ok && r.rt.twin == 0 && !r.rt.speculative {
						next = c.at
					}
				}
			}
			break
		}
	}
	if next < s.specWake {
		s.specWake = next
		s.specWakeups.Inc()
		s.events.Push(next, event{kind: evRetry})
	}
}

// launchSpeculative starts a duplicate attempt of the task behind seq.
func (s *Simulator) launchSpeculative(node, seq int) {
	orig := s.attempts[seq]
	ws := s.states[orig.rt.wf]
	spec := &ws.Spec.Jobs[orig.rt.job]
	base := spec.MapTime
	if orig.rt.st == ReduceSlot {
		base = spec.ReduceTime
	}
	dur := s.noisy(base)
	s.takeSlot(node, orig.rt.st)
	if orig.rt.st == MapSlot {
		s.mapBusy += dur
	} else {
		s.reduceBusy += dur
	}
	s.tasksStarted++
	s.taskSeq++
	end := s.now.Add(dur)
	rt := runningTask{
		wf: orig.rt.wf, job: orig.rt.job, st: orig.rt.st,
		end: end, dur: dur, twin: seq, speculative: true,
	}
	s.nodes[node].running[s.taskSeq] = rt
	s.attempts[s.taskSeq] = attemptRef{node: node, rt: rt}
	s.setTwin(seq, s.taskSeq)
	if s.obs != nil {
		s.obs.TaskStarted(s.now, ws, rt.job, rt.st, dur)
	}
	s.events.Push(end, event{kind: evComplete, wf: rt.wf, job: rt.job, st: rt.st, node: node, seq: s.taskSeq})
}

// drawLocality reports whether a map assignment finds its data on the
// chosen node: with R replicas spread uniformly over N nodes, a uniformly
// chosen node holds one with probability 1-(1-1/N)^R.
func (s *Simulator) drawLocality() bool {
	n := float64(s.cfg.Nodes)
	p := 1 - pow(1-1/n, s.cfg.Replication)
	return s.rng.Float64() < p
}

func pow(x float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= x
	}
	return out
}

// noisy perturbs d by the configured estimation error and, independently,
// by the one-sided straggler model.
func (s *Simulator) noisy(d time.Duration) time.Duration {
	nd := d
	if s.cfg.Noise != 0 {
		f := 1 + s.cfg.Noise*(2*s.rng.Float64()-1)
		nd = time.Duration(float64(nd) * f)
	}
	if s.cfg.StragglerProb > 0 && s.rng.Float64() < s.cfg.StragglerProb {
		nd = time.Duration(float64(nd) * s.cfg.StragglerFactor)
	}
	if nd <= 0 {
		nd = time.Nanosecond
	}
	return nd
}
