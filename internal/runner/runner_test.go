package runner_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// smallCell builds a quick FIFO scenario; tasks scale with n so cells in one
// batch finish at different wall-clock times (exercising reordering).
func smallCell(name string, n int, seed int64) runner.Cell {
	w := workflow.NewBuilder(name).
		Job("j", 2+n, 1, 10*time.Second, 20*time.Second).
		MustBuild(0, simtime.FromSeconds(1e6))
	return runner.Cell{
		Name:   name,
		Config: cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.3, Seed: seed},
		Policy: func() cluster.Policy { return scheduler.NewFIFO() },
		Flows:  []*workflow.Workflow{w},
	}
}

func TestRunAllOrderAndIdentity(t *testing.T) {
	cells := make([]runner.Cell, 12)
	for i := range cells {
		cells[i] = smallCell(fmt.Sprintf("c%d", i), i%5, int64(i))
	}
	serial, err := runner.New(runner.Config{Workers: 1}).RunAll(cells)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := runner.New(runner.Config{Workers: workers}).RunAll(cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cells {
			if got, want := mustJSON(t, par[i]), mustJSON(t, serial[i]); got != want {
				t.Fatalf("workers=%d: cell %d diverged from serial:\n%s\nvs\n%s", workers, i, got, want)
			}
		}
	}
}

func TestRunEachDeliversInSubmissionOrder(t *testing.T) {
	cells := make([]runner.Cell, 10)
	for i := range cells {
		// Reverse the sizes so later cells tend to finish first.
		cells[i] = smallCell(fmt.Sprintf("c%d", i), len(cells)-i, int64(i))
	}
	var order []int
	err := runner.New(runner.Config{Workers: 4}).RunEach(cells, func(i int, res *cluster.Result) error {
		if res == nil {
			t.Fatalf("cell %d: nil result", i)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(order), len(cells))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v, want ascending", order)
		}
	}
}

func TestFirstErrorByIndexWins(t *testing.T) {
	boom := func(i int) runner.Cell {
		c := smallCell(fmt.Sprintf("bad%d", i), 0, 0)
		c.Plans = func() ([]*plan.Plan, error) { return nil, fmt.Errorf("boom %d", i) }
		return c
	}
	cells := []runner.Cell{smallCell("ok0", 1, 0), boom(1), smallCell("ok2", 1, 2), boom(3)}
	for _, workers := range []int{1, 4} {
		results, err := runner.New(runner.Config{Workers: workers}).RunAll(cells)
		if err == nil || err.Error() != `runner: cell "bad1": boom 1` {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
		if results[0] == nil {
			t.Errorf("workers=%d: cell 0 succeeded before the failure but was not delivered", workers)
		}
		// Cells are independent: a failure nils only its own entry, and
		// every later successful cell is still delivered.
		if results[1] != nil || results[3] != nil {
			t.Errorf("workers=%d: failed cells delivered non-nil results: %v", workers, results)
		}
		if results[2] == nil {
			t.Errorf("workers=%d: successful cell 2 dropped after cell 1's failure", workers)
		}
	}
}

// TestDeliveryContinuesPastFailure is the regression pin for RunEach's
// past-failure semantics: every successful cell is delivered to fn, in
// order, even when an earlier cell failed; the returned error is still the
// lowest-indexed failure.
func TestDeliveryContinuesPastFailure(t *testing.T) {
	boom := func(i int) runner.Cell {
		c := smallCell(fmt.Sprintf("bad%d", i), 0, 0)
		c.Plans = func() ([]*plan.Plan, error) { return nil, fmt.Errorf("boom %d", i) }
		return c
	}
	cells := []runner.Cell{
		boom(0), smallCell("ok1", 1, 1), boom(2),
		smallCell("ok3", 2, 3), smallCell("ok4", 1, 4),
	}
	for _, workers := range []int{1, 3} {
		var delivered []int
		err := runner.New(runner.Config{Workers: workers}).RunEach(cells, func(i int, res *cluster.Result) error {
			if res == nil {
				t.Fatalf("workers=%d: cell %d delivered nil", workers, i)
			}
			delivered = append(delivered, i)
			return nil
		})
		if err == nil || err.Error() != `runner: cell "bad0": boom 0` {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
		if want := []int{1, 3, 4}; !slicesEqual(delivered, want) {
			t.Errorf("workers=%d: delivered %v, want %v", workers, delivered, want)
		}
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunEachStreamsBeforeBatchCompletes pins the streaming contract figure
// rendering relies on: cell i's result reaches fn while later cells are
// still executing. Cell 3 blocks until fn has seen cell 0; with 2 workers
// the test only completes if delivery is concurrent with execution.
func TestRunEachStreamsBeforeBatchCompletes(t *testing.T) {
	cellZeroDelivered := make(chan struct{})
	cells := []runner.Cell{
		smallCell("c0", 1, 0), smallCell("c1", 1, 1), smallCell("c2", 1, 2),
		smallCell("c3", 1, 3),
	}
	cells[3].Plans = func() ([]*plan.Plan, error) {
		select {
		case <-cellZeroDelivered:
			return nil, nil
		case <-time.After(30 * time.Second):
			return nil, errors.New("cell 0 was not delivered while cell 3 was still running")
		}
	}
	var order []int
	err := runner.New(runner.Config{Workers: 2}).RunEach(cells, func(i int, res *cluster.Result) error {
		if i == 0 {
			close(cellZeroDelivered)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3}; !slicesEqual(order, want) {
		t.Errorf("delivery order %v, want %v", order, want)
	}
}

func TestRunEachCallbackErrorStopsDelivery(t *testing.T) {
	cells := make([]runner.Cell, 6)
	for i := range cells {
		cells[i] = smallCell(fmt.Sprintf("c%d", i), 1, int64(i))
	}
	sentinel := errors.New("stop")
	var delivered int
	err := runner.New(runner.Config{Workers: 3}).RunEach(cells, func(i int, res *cluster.Result) error {
		delivered++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d cells, want 3 (0, 1, 2)", delivered)
	}
}

// TestParitySerialParallel is the acceptance gate for the parallel runner:
// over the real experiment corpora (the Fig 8 Yahoo sweep and the Fig 11
// scheduler sweep), the parallel path must produce byte-identical results to
// the serial path.
func TestParitySerialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment corpus")
	}
	fig8, err := experiments.Fig8Cells(experiments.DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	fig11, _ := experiments.Fig11Cells(experiments.DefaultFig11Config())
	corpus := append(fig8, fig11...)

	serial, err := runner.New(runner.Config{Workers: 1}).RunAll(corpus)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := runner.New(runner.Config{Workers: 8}).RunAll(corpus)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range corpus {
		got, want := mustJSON(t, parallel[i]), mustJSON(t, serial[i])
		if got != want {
			t.Errorf("cell %q: parallel result differs from serial", corpus[i].Name)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// BenchmarkFig8CorpusSerial and ...Parallel8 time the Fig 8 sweep through
// the runner; `make bench-sim` reports the same numbers as JSON.
func BenchmarkFig8CorpusSerial(b *testing.B)    { benchCorpus(b, 1) }
func BenchmarkFig8CorpusParallel8(b *testing.B) { benchCorpus(b, 8) }

func benchCorpus(b *testing.B, workers int) {
	cells, err := experiments.Fig8Cells(experiments.DefaultFig8Config())
	if err != nil {
		b.Fatal(err)
	}
	// Memoize the plans so iterations time the simulator, not Algorithm 1.
	for i := range cells {
		if cells[i].Plans == nil {
			continue
		}
		plans, err := cells[i].Plans()
		if err != nil {
			b.Fatal(err)
		}
		cells[i].Plans = func() ([]*plan.Plan, error) { return plans, nil }
	}
	run := runner.New(runner.Config{Workers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.RunAll(cells); err != nil {
			b.Fatal(err)
		}
	}
}
