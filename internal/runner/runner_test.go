package runner_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// smallCell builds a quick FIFO scenario; tasks scale with n so cells in one
// batch finish at different wall-clock times (exercising reordering).
func smallCell(name string, n int, seed int64) runner.Cell {
	w := workflow.NewBuilder(name).
		Job("j", 2+n, 1, 10*time.Second, 20*time.Second).
		MustBuild(0, simtime.FromSeconds(1e6))
	return runner.Cell{
		Name:   name,
		Config: cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.3, Seed: seed},
		Policy: func() cluster.Policy { return scheduler.NewFIFO() },
		Flows:  []*workflow.Workflow{w},
	}
}

func TestRunAllOrderAndIdentity(t *testing.T) {
	cells := make([]runner.Cell, 12)
	for i := range cells {
		cells[i] = smallCell(fmt.Sprintf("c%d", i), i%5, int64(i))
	}
	serial, err := runner.New(runner.Config{Workers: 1}).RunAll(cells)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := runner.New(runner.Config{Workers: workers}).RunAll(cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cells {
			if got, want := mustJSON(t, par[i]), mustJSON(t, serial[i]); got != want {
				t.Fatalf("workers=%d: cell %d diverged from serial:\n%s\nvs\n%s", workers, i, got, want)
			}
		}
	}
}

func TestRunEachDeliversInSubmissionOrder(t *testing.T) {
	cells := make([]runner.Cell, 10)
	for i := range cells {
		// Reverse the sizes so later cells tend to finish first.
		cells[i] = smallCell(fmt.Sprintf("c%d", i), len(cells)-i, int64(i))
	}
	var order []int
	err := runner.New(runner.Config{Workers: 4}).RunEach(cells, func(i int, res *cluster.Result) error {
		if res == nil {
			t.Fatalf("cell %d: nil result", i)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(cells) {
		t.Fatalf("delivered %d of %d cells", len(order), len(cells))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v, want ascending", order)
		}
	}
}

func TestFirstErrorByIndexWins(t *testing.T) {
	boom := func(i int) runner.Cell {
		c := smallCell(fmt.Sprintf("bad%d", i), 0, 0)
		c.Plans = func() ([]*plan.Plan, error) { return nil, fmt.Errorf("boom %d", i) }
		return c
	}
	cells := []runner.Cell{smallCell("ok0", 1, 0), boom(1), smallCell("ok2", 1, 2), boom(3)}
	for _, workers := range []int{1, 4} {
		results, err := runner.New(runner.Config{Workers: workers}).RunAll(cells)
		if err == nil || err.Error() != `runner: cell "bad1": boom 1` {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
		if results[0] == nil {
			t.Errorf("workers=%d: cell 0 succeeded before the failure but was not delivered", workers)
		}
		// Delivery stops at the first failure; cells past it run but are
		// not handed out.
		if results[1] != nil || results[2] != nil || results[3] != nil {
			t.Errorf("workers=%d: results past the failure delivered: %v", workers, results[1:])
		}
	}
}

func TestRunEachCallbackErrorStopsDelivery(t *testing.T) {
	cells := make([]runner.Cell, 6)
	for i := range cells {
		cells[i] = smallCell(fmt.Sprintf("c%d", i), 1, int64(i))
	}
	sentinel := errors.New("stop")
	var delivered int
	err := runner.New(runner.Config{Workers: 3}).RunEach(cells, func(i int, res *cluster.Result) error {
		delivered++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d cells, want 3 (0, 1, 2)", delivered)
	}
}

// TestParitySerialParallel is the acceptance gate for the parallel runner:
// over the real experiment corpora (the Fig 8 Yahoo sweep and the Fig 11
// scheduler sweep), the parallel path must produce byte-identical results to
// the serial path.
func TestParitySerialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment corpus")
	}
	fig8, err := experiments.Fig8Cells(experiments.DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	fig11, _ := experiments.Fig11Cells(experiments.DefaultFig11Config())
	corpus := append(fig8, fig11...)

	serial, err := runner.New(runner.Config{Workers: 1}).RunAll(corpus)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := runner.New(runner.Config{Workers: 8}).RunAll(corpus)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range corpus {
		got, want := mustJSON(t, parallel[i]), mustJSON(t, serial[i])
		if got != want {
			t.Errorf("cell %q: parallel result differs from serial", corpus[i].Name)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// BenchmarkFig8CorpusSerial and ...Parallel8 time the Fig 8 sweep through
// the runner; `make bench-sim` reports the same numbers as JSON.
func BenchmarkFig8CorpusSerial(b *testing.B)    { benchCorpus(b, 1) }
func BenchmarkFig8CorpusParallel8(b *testing.B) { benchCorpus(b, 8) }

func benchCorpus(b *testing.B, workers int) {
	cells, err := experiments.Fig8Cells(experiments.DefaultFig8Config())
	if err != nil {
		b.Fatal(err)
	}
	// Memoize the plans so iterations time the simulator, not Algorithm 1.
	for i := range cells {
		if cells[i].Plans == nil {
			continue
		}
		plans, err := cells[i].Plans()
		if err != nil {
			b.Fatal(err)
		}
		cells[i].Plans = func() ([]*plan.Plan, error) { return plans, nil }
	}
	run := runner.New(runner.Config{Workers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.RunAll(cells); err != nil {
			b.Fatal(err)
		}
	}
}
