// Package runner executes independent simulation scenarios — (config,
// scheduler, seed) cells — across a worker pool with deterministic results.
//
// Every cell is a pure function of its inputs: it builds its own policy,
// plans, observer, and simulator, so cells share no mutable state and any
// execution order produces the same per-cell Result. The runner therefore
// parallelizes across cells rather than inside one simulation (a
// discrete-event loop is inherently serial: each event depends on the state
// every earlier event left behind), and the parallel path is byte-identical
// to the serial one by construction — enforced by the Fig 8 + Fig 11 parity
// tests.
//
// Results are delivered in submission order: RunAll returns an
// index-aligned slice, and RunEach invokes its callback for cell i only
// after cells 0..i-1 were delivered, buffering out-of-order completions.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/workflow"
)

// Cell is one independent scenario: a cluster configuration plus the
// workload to run on it. The factory fields build per-run state so that a
// cell can execute on any worker without sharing anything mutable.
type Cell struct {
	// Name labels the cell in errors and metrics.
	Name string
	// Config describes the simulated cluster.
	Config cluster.Config
	// Policy builds the scheduling policy (required). It must return a
	// fresh instance: policies are stateful.
	Policy func() cluster.Policy
	// Flows is the workload, submitted in order. The simulator never
	// mutates workflow specs, so cells may share them.
	Flows []*workflow.Workflow
	// Plans optionally builds the scheduling plans, index-aligned with
	// Flows (nil entries submit without a plan). Nil means no plans — the
	// baseline schedulers' configuration.
	Plans func() ([]*plan.Plan, error)
	// Observer optionally builds a task lifecycle observer for the run.
	Observer func() cluster.Observer
	// Admission optionally builds the run's admission controller. It must
	// return a fresh instance: controllers are stateful. Nil leaves the
	// front door open (the seed behaviour).
	Admission func() admission.Controller
}

// Config parameterizes a Runner.
type Config struct {
	// Workers caps concurrent cells. 0 (or negative) selects one per core;
	// 1 runs serially on the calling goroutine.
	Workers int
	// Obs carries optional runtime instrumentation (woha_runner_* metrics).
	Obs *obs.Obs
}

// Runner executes batches of scenario cells.
type Runner struct {
	workers int
	stats   *obs.RunnerStats
}

// New builds a runner.
func New(cfg Config) *Runner {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: w, stats: cfg.Obs.NewRunnerStats()}
}

// RunAll executes every cell and returns their results aligned with cells.
// All cells run even if some fail (they are independent), and every
// successful cell's result is returned: only failed cells' entries are nil.
// The returned error is the lowest-indexed cell's failure. Identical inputs
// produce identical results at any worker count.
func (r *Runner) RunAll(cells []Cell) ([]*cluster.Result, error) {
	results := make([]*cluster.Result, len(cells))
	err := r.RunEach(cells, func(i int, res *cluster.Result) error {
		results[i] = res
		return nil
	})
	return results, err
}

// RunEach executes every cell and delivers results to fn in submission
// order (fn runs on the calling goroutine, never concurrently). Cells are
// independent, so a failed cell does not stop delivery: later successful
// cells are still handed to fn, and the lowest-indexed cell failure is
// returned after the batch drains. An error from fn itself is the consumer
// aborting — no further results are delivered (cells still run to
// completion), and that error is returned unless an earlier-indexed cell
// had already failed.
func (r *Runner) RunEach(cells []Cell, fn func(i int, res *cluster.Result) error) error {
	r.stats.OnBatch()
	if r.workers <= 1 || len(cells) <= 1 {
		var firstErr error
		stopped := false // fn aborted: keep executing, stop delivering
		for i := range cells {
			res, err := r.runCell(&cells[i])
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if stopped {
				continue
			}
			if err := fn(i, res); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				stopped = true
			}
		}
		return firstErr
	}

	type done struct {
		i   int
		res *cluster.Result
		err error
	}
	ch := make(chan done, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := min(r.workers, len(cells))
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				res, err := r.runCell(&cells[i])
				ch <- done{i: i, res: res, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	// Deliver in submission order, buffering completions that arrive early.
	// Delivery happens while later cells are still executing, so a consumer
	// sees cell i's result as soon as cells 0..i are done — not after the
	// whole batch.
	pending := make(map[int]done, workers)
	deliver := 0
	var firstErr error
	stopped := false // fn aborted: drain without delivering
	for d := range ch {
		pending[d.i] = d
		for {
			nd, ok := pending[deliver]
			if !ok {
				break
			}
			delete(pending, deliver)
			deliver++
			if nd.err != nil {
				// A failed cell is independent of the ones after it: record
				// the lowest-indexed error and keep delivering.
				if firstErr == nil {
					firstErr = nd.err
				}
				continue
			}
			if stopped {
				continue
			}
			if err := fn(nd.i, nd.res); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				stopped = true
			}
		}
	}
	return firstErr
}

// runCell executes one cell: fresh policy, plans, observer, simulator. The
// simulator is pooled and released on success; the Result is self-contained.
func (r *Runner) runCell(c *Cell) (res *cluster.Result, err error) {
	t0 := time.Now()
	r.stats.CellStarted()
	defer func() { r.stats.CellFinished(time.Since(t0), err != nil) }()

	var plans []*plan.Plan
	if c.Plans != nil {
		plans, err = c.Plans()
		if err != nil {
			return nil, fmt.Errorf("runner: cell %q: %w", c.Name, err)
		}
	}
	var ob cluster.Observer
	if c.Observer != nil {
		ob = c.Observer()
	}
	sim, err := cluster.New(c.Config, c.Policy(), ob)
	if err != nil {
		return nil, fmt.Errorf("runner: cell %q: %w", c.Name, err)
	}
	if c.Admission != nil {
		sim.SetAdmission(c.Admission())
	}
	for i, w := range c.Flows {
		var p *plan.Plan
		if i < len(plans) {
			p = plans[i]
		}
		if err := sim.Submit(w, p); err != nil {
			// Failed cells recycle their simulator too — nothing past this
			// point references it.
			sim.Release()
			return nil, fmt.Errorf("runner: cell %q: %w", c.Name, err)
		}
	}
	res, err = sim.Run()
	if err != nil {
		sim.Release()
		return nil, fmt.Errorf("runner: cell %q: %w", c.Name, err)
	}
	sim.Release()
	return res, nil
}
