// Package estimate learns task execution time estimates from execution
// history. The WOHA paper assumes per-job map/reduce durations are known
// ("estimations of task execution times can be acquired from logs of
// historical executions"); this package closes that loop: a Recorder
// observes a run's actual task durations and produces median estimates that
// recurring workflow submissions feed back into plan generation.
package estimate

import (
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Recorder accumulates actual task durations keyed by job name and slot
// type. It implements cluster.Observer; attach it to a simulation (or wrap
// it for the live cluster) and every executed task contributes one sample.
// Job names are the key because recurring workflow instances share them.
//
// Recorder is not safe for concurrent use; the discrete-event simulator is
// single-threaded.
type Recorder struct {
	samples map[sampleKey][]time.Duration
}

type sampleKey struct {
	job string
	st  cluster.SlotType
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{samples: make(map[sampleKey][]time.Duration)}
}

var _ cluster.Observer = (*Recorder)(nil)

// TaskStarted implements cluster.Observer: the simulator reports the task's
// actual (noise-perturbed) duration at start time.
func (r *Recorder) TaskStarted(_ simtime.Time, ws *cluster.WorkflowState, job workflow.JobID, st cluster.SlotType, dur time.Duration) {
	k := sampleKey{job: ws.Spec.Jobs[job].Name, st: st}
	r.samples[k] = append(r.samples[k], dur)
}

// TaskFinished implements cluster.Observer.
func (r *Recorder) TaskFinished(simtime.Time, *cluster.WorkflowState, workflow.JobID, cluster.SlotType) {
}

// Samples returns the number of recorded samples for a job's slot type.
func (r *Recorder) Samples(job string, st cluster.SlotType) int {
	return len(r.samples[sampleKey{job: job, st: st}])
}

// Estimate returns the median observed duration for the job's tasks of the
// given type. ok is false when no samples exist.
func (r *Recorder) Estimate(job string, st cluster.SlotType) (d time.Duration, ok bool) {
	s := r.samples[sampleKey{job: job, st: st}]
	if len(s) == 0 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2], true
}

// Apply overwrites w's per-job duration estimates with learned medians,
// returning how many estimates were updated. Jobs without history keep their
// configured estimates, so a workflow can be partially learned.
func (r *Recorder) Apply(w *workflow.Workflow) int {
	updated := 0
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if d, ok := r.Estimate(j.Name, cluster.MapSlot); ok && j.Maps > 0 {
			j.MapTime = d
			updated++
		}
		if d, ok := r.Estimate(j.Name, cluster.ReduceSlot); ok && j.Reduces > 0 {
			j.ReduceTime = d
			updated++
		}
	}
	return updated
}
