package estimate_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// mispredicted builds a workflow whose configured estimates are badly wrong
// relative to the durations the simulator will actually run (the "actual"
// spec). Returns (plannerView, actual).
func mispredicted() (*workflow.Workflow, *workflow.Workflow) {
	actual := workflow.NewBuilder("etl").
		Job("extract", 8, 4, 20*time.Second, 60*time.Second).
		Job("aggregate", 6, 2, 30*time.Second, 90*time.Second, "extract").
		MustBuild(0, simtime.FromSeconds(3600))
	planner := actual.Clone()
	// The operator guessed 4x too low on reduces and 2x too high on maps.
	for i := range planner.Jobs {
		planner.Jobs[i].MapTime *= 2
		planner.Jobs[i].ReduceTime /= 4
	}
	return planner, actual
}

func runRecorded(t *testing.T, w *workflow.Workflow, rec *estimate.Recorder) *cluster.Result {
	t.Helper()
	cfg := cluster.Config{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.1, Seed: 5}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRecorderLearnsMedians(t *testing.T) {
	_, actual := mispredicted()
	rec := estimate.NewRecorder()
	runRecorded(t, actual, rec)

	if got := rec.Samples("extract", cluster.MapSlot); got != 8 {
		t.Errorf("extract map samples = %d, want 8", got)
	}
	if got := rec.Samples("aggregate", cluster.ReduceSlot); got != 2 {
		t.Errorf("aggregate reduce samples = %d, want 2", got)
	}
	if _, ok := rec.Estimate("ghost", cluster.MapSlot); ok {
		t.Error("estimate for unknown job reported ok")
	}

	// Medians must land within the 10% noise band of the true durations.
	d, ok := rec.Estimate("extract", cluster.MapSlot)
	if !ok {
		t.Fatal("no estimate for extract maps")
	}
	lo, hi := 18*time.Second, 22*time.Second
	if d < lo || d > hi {
		t.Errorf("extract map median = %v, want within [%v, %v]", d, lo, hi)
	}
}

func TestApplyCorrectsPlannerView(t *testing.T) {
	planner, actual := mispredicted()
	rec := estimate.NewRecorder()
	runRecorded(t, actual, rec)

	updated := rec.Apply(planner)
	if updated != 4 {
		t.Errorf("Apply updated %d estimates, want 4", updated)
	}
	for i := range planner.Jobs {
		pj, aj := &planner.Jobs[i], &actual.Jobs[i]
		if ratio := float64(pj.MapTime) / float64(aj.MapTime); ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s map estimate %v vs actual %v", pj.Name, pj.MapTime, aj.MapTime)
		}
		if ratio := float64(pj.ReduceTime) / float64(aj.ReduceTime); ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s reduce estimate %v vs actual %v", pj.Name, pj.ReduceTime, aj.ReduceTime)
		}
	}
}

// TestLearningImprovesPlans closes the paper's feedback loop on a recurring
// workflow: plans from mispredicted estimates describe the workflow's
// resource needs badly; after one observed recurrence, learned estimates
// bring the plan's simulated makespan close to the truth.
func TestLearningImprovesPlans(t *testing.T) {
	planner, actual := mispredicted()

	truth, err := plan.GenerateForPolicy(actual, 12, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := plan.GenerateForPolicy(planner, 12, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}

	rec := estimate.NewRecorder()
	runRecorded(t, actual, rec)
	rec.Apply(planner)
	learned, err := plan.GenerateForPolicy(planner, 12, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}

	naiveErr := absDiff(naive.Makespan, truth.Makespan)
	learnedErr := absDiff(learned.Makespan, truth.Makespan)
	if learnedErr >= naiveErr {
		t.Errorf("learned makespan error %v not below naive %v (truth %v, naive %v, learned %v)",
			learnedErr, naiveErr, truth.Makespan, naive.Makespan, learned.Makespan)
	}
	if float64(learnedErr) > 0.15*float64(truth.Makespan) {
		t.Errorf("learned makespan %v still far from truth %v", learned.Makespan, truth.Makespan)
	}
}

func absDiff(a, b time.Duration) time.Duration {
	if a > b {
		return a - b
	}
	return b - a
}

// TestRecurringWorkflowLearningEndToEnd runs three recurrences under WOHA:
// the first with mispredicted plans, later ones with learned plans, all
// sharing one recorder.
func TestRecurringWorkflowLearningEndToEnd(t *testing.T) {
	planner, actual := mispredicted()
	instances := workload.Recur(actual, 3, 10*time.Minute)

	rec := estimate.NewRecorder()
	cfg := cluster.Config{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.1, Seed: 7}
	pol := core.NewScheduler(core.Options{Seed: 7, PolicyName: "LPF"})
	sim, err := cluster.New(cfg, pol, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range instances {
		view := planner
		if i > 0 {
			// Later submissions would re-Apply the recorder; here we just
			// verify both plan sources submit cleanly.
			rec.Apply(view)
		}
		p, err := plan.GenerateCapped(view, cfg.TotalSlots(), priority.LPF{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Submit(inst, p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workflows {
		if !w.Met {
			t.Errorf("%s missed its deadline", w.Name)
		}
	}
}

func TestRecurNaming(t *testing.T) {
	w := workflow.NewBuilder("daily").
		Job("j", 1, 1, time.Second, time.Second).
		MustBuild(simtime.FromSeconds(100), simtime.FromSeconds(700))
	insts := workload.Recur(w, 3, time.Hour)
	if len(insts) != 3 {
		t.Fatalf("instances = %d", len(insts))
	}
	wantRel := []float64{100, 3700, 7300}
	for i, inst := range insts {
		if inst.Name != "daily."+string(rune('1'+i)) {
			t.Errorf("instance %d name = %q", i, inst.Name)
		}
		if inst.Release.Seconds() != wantRel[i] {
			t.Errorf("instance %d release = %v, want %vs", i, inst.Release, wantRel[i])
		}
		if inst.RelativeDeadline() != w.RelativeDeadline() {
			t.Errorf("instance %d relative deadline changed", i)
		}
	}
}
