// Package priority implements the intra-workflow job prioritization
// algorithms evaluated in Section V-C of the WOHA paper. Each policy maps a
// workflow to a rank per job; WOHA's Scheduling Plan Generator (Algorithm 1)
// and Workflow Scheduler both consume these ranks when choosing among a
// workflow's active jobs.
package priority

import (
	"fmt"
	"sort"

	"repro/internal/workflow"
)

// Policy orders the jobs of a single workflow.
type Policy interface {
	// Name returns the short policy name used in experiment output
	// ("HLF", "LPF", "MPF").
	Name() string
	// Rank returns rank[j] for every job j, where a smaller rank means a
	// higher priority. Ranks form a permutation of 0..len(Jobs)-1. Ties in
	// the underlying key are broken by job ID, per the paper.
	Rank(w *workflow.Workflow) ([]int, error)
}

// HLF is Highest Level First: jobs with longer chains of dependents (higher
// levels) get higher priority, on the assumption that long sequences of
// successor jobs take long to finish.
type HLF struct{}

// Name implements Policy.
func (HLF) Name() string { return "HLF" }

// Rank implements Policy.
func (HLF) Rank(w *workflow.Workflow) ([]int, error) {
	levels, err := w.Levels()
	if err != nil {
		return nil, fmt.Errorf("priority: HLF: %w", err)
	}
	keys := make([]float64, len(levels))
	for i, l := range levels {
		keys[i] = float64(l)
	}
	return ranksFromKeys(keys), nil
}

// LPF is Longest Path First: like HLF but weighting each job on a path by its
// estimated length (one map time plus one reduce time), so a short chain of
// long jobs can outrank a long chain of short ones.
type LPF struct{}

// Name implements Policy.
func (LPF) Name() string { return "LPF" }

// Rank implements Policy.
func (LPF) Rank(w *workflow.Workflow) ([]int, error) {
	paths, err := w.LongestPaths()
	if err != nil {
		return nil, fmt.Errorf("priority: LPF: %w", err)
	}
	keys := make([]float64, len(paths))
	for i, p := range paths {
		keys[i] = p.Seconds()
	}
	return ranksFromKeys(keys), nil
}

// MPF is Maximum Parallelism First: the job with the most direct dependents
// gets the highest priority, maximizing the chance that the workflow has
// schedulable tasks whenever it holds the highest workflow priority.
type MPF struct{}

// Name implements Policy.
func (MPF) Name() string { return "MPF" }

// Rank implements Policy.
func (MPF) Rank(w *workflow.Workflow) ([]int, error) {
	deps := w.Dependents()
	keys := make([]float64, len(deps))
	for i, d := range deps {
		keys[i] = float64(len(d))
	}
	return ranksFromKeys(keys), nil
}

// ranksFromKeys converts per-job keys (bigger = more important) into ranks
// (smaller = higher priority), breaking ties by job ID.
func ranksFromKeys(keys []float64) []int {
	ids := make([]int, len(keys))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if keys[ids[a]] != keys[ids[b]] {
			return keys[ids[a]] > keys[ids[b]]
		}
		return ids[a] < ids[b]
	})
	ranks := make([]int, len(keys))
	for r, id := range ids {
		ranks[id] = r
	}
	return ranks
}

// All returns the three policies from the paper, in publication order.
func All() []Policy {
	return []Policy{HLF{}, LPF{}, MPF{}}
}

// ByName returns the policy with the given (case-sensitive) name.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("priority: unknown policy %q (want HLF, LPF, or MPF)", name)
}
