package priority

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/workflow"
)

// chainAndFan builds:
//
//	long:  a -> b -> c          (3-deep chain of short jobs)
//	wide:  hub -> {x1 x2 x3 x4} (hub with 4 dependents)
//	heavy: slow                 (single long job)
func chainAndFan(t *testing.T) *workflow.Workflow {
	t.Helper()
	return workflow.NewBuilder("mixed").
		Job("a", 1, 1, time.Second, time.Second).
		Job("b", 1, 1, time.Second, time.Second, "a").
		Job("c", 1, 1, time.Second, time.Second, "b").
		Job("hub", 1, 1, time.Second, time.Second).
		Job("x1", 1, 1, time.Second, time.Second, "hub").
		Job("x2", 1, 1, time.Second, time.Second, "hub").
		Job("x3", 1, 1, time.Second, time.Second, "hub").
		Job("x4", 1, 1, time.Second, time.Second, "hub").
		Job("slow", 1, 1, 30*time.Second, 30*time.Second).
		MustBuild(simtime.Epoch, simtime.FromSeconds(1e6))
}

func rankOf(t *testing.T, p Policy, w *workflow.Workflow, name string) int {
	t.Helper()
	ranks, err := p.Rank(w)
	if err != nil {
		t.Fatalf("%s.Rank: %v", p.Name(), err)
	}
	return ranks[w.JobByName(name).ID]
}

func TestHLFPrefersDeepChains(t *testing.T) {
	w := chainAndFan(t)
	// a is at level 2, hub at level 1, slow at level 0: HLF must rank
	// a < hub < slow.
	if !(rankOf(t, HLF{}, w, "a") < rankOf(t, HLF{}, w, "hub")) {
		t.Error("HLF did not prefer the deep chain head over the hub")
	}
	if !(rankOf(t, HLF{}, w, "hub") < rankOf(t, HLF{}, w, "slow")) {
		t.Error("HLF did not prefer the hub over the leaf")
	}
}

func TestLPFWeighsJobLength(t *testing.T) {
	w := chainAndFan(t)
	// Path lengths: a = 6s (3 jobs x 2s), slow = 60s. LPF must prefer slow;
	// HLF prefers a (level 2 vs 0). This is exactly the HLF→LPF improvement
	// the paper describes.
	if !(rankOf(t, LPF{}, w, "slow") < rankOf(t, LPF{}, w, "a")) {
		t.Error("LPF did not prefer the long job over the short chain")
	}
	if !(rankOf(t, HLF{}, w, "a") < rankOf(t, HLF{}, w, "slow")) {
		t.Error("HLF unexpectedly agreed with LPF (test workload broken)")
	}
}

func TestMPFPrefersWideFanout(t *testing.T) {
	w := chainAndFan(t)
	// hub has 4 dependents, a has 1, slow has 0.
	if !(rankOf(t, MPF{}, w, "hub") < rankOf(t, MPF{}, w, "a")) {
		t.Error("MPF did not prefer the hub over the chain head")
	}
	if !(rankOf(t, MPF{}, w, "a") < rankOf(t, MPF{}, w, "slow")) {
		t.Error("MPF did not prefer 1 dependent over 0")
	}
}

func TestTiesBrokenByJobID(t *testing.T) {
	// x1..x4 all have level 0, no dependents, same lengths: every policy
	// must order them by job ID.
	w := chainAndFan(t)
	for _, p := range All() {
		ranks, err := p.Rank(w)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		prev := -1
		for _, name := range []string{"x1", "x2", "x3", "x4"} {
			r := ranks[w.JobByName(name).ID]
			if prev >= 0 && r <= prev {
				t.Errorf("%s: tie between x jobs not broken by ID: %v", p.Name(), ranks)
				break
			}
			prev = r
		}
	}
}

func TestRanksArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		b := workflow.NewBuilder("rand")
		n := 2 + rng.Intn(40)
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = "j" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			var after []string
			for k := 0; k < i; k++ {
				if rng.Intn(5) == 0 {
					after = append(after, names[k])
				}
			}
			b.Job(names[i], 1+rng.Intn(20), rng.Intn(8),
				time.Duration(1+rng.Intn(100))*time.Second,
				time.Duration(1+rng.Intn(300))*time.Second, after...)
		}
		w, err := b.Build(0, simtime.FromSeconds(1e7))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, p := range All() {
			ranks, err := p.Rank(w)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.Name(), err)
			}
			seen := make([]bool, n)
			for _, r := range ranks {
				if r < 0 || r >= n || seen[r] {
					t.Fatalf("trial %d %s: ranks not a permutation: %v", trial, p.Name(), ranks)
				}
				seen[r] = true
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"HLF", "LPF", "MPF"} {
		p, err := ByName(want)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want, err)
		}
		if p.Name() != want {
			t.Errorf("ByName(%q).Name() = %q", want, p.Name())
		}
	}
	if _, err := ByName("EDF"); err == nil {
		t.Error("ByName(EDF) succeeded, want error")
	}
}
