// Package scheduler implements the WorkflowScheduler policies evaluated in
// the WOHA paper: the progress-based WOHA scheduler (Section IV) plus the
// three ported baselines of Section V-B — Oozie+FIFO, Oozie+Fair, and EDF.
//
// All policies implement cluster.Policy and are consulted by the simulated
// JobTracker on every slot free-up. They are deliberately work-conserving:
// when the top-priority workflow has no task matching the idle slot type, the
// next workflow in priority order is offered the slot.
package scheduler

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// base provides the bookkeeping shared by the simple baselines: the live
// workflows held sorted by arrival index. NextTask runs once per dispatch
// offer, so the set is kept ordered on mutation (arrivals and completions,
// both rare) instead of sorted per read — the old map + per-call sort.Slice
// was the baselines' dominant cost on the Fig 8 corpus.
type base struct {
	live []*cluster.WorkflowState
}

func (b *base) init() {
	b.live = nil
}

func (b *base) WorkflowAdded(ws *cluster.WorkflowState, _ simtime.Time) {
	i := sort.Search(len(b.live), func(k int) bool { return b.live[k].Index > ws.Index })
	b.live = append(b.live, nil)
	copy(b.live[i+1:], b.live[i:])
	b.live[i] = ws
}

func (b *base) JobActivated(*cluster.WorkflowState, workflow.JobID, simtime.Time) {}

func (b *base) TaskStarted(*cluster.WorkflowState, workflow.JobID, cluster.SlotType, simtime.Time) {
}

func (b *base) WorkflowCompleted(ws *cluster.WorkflowState, _ simtime.Time) {
	i := sort.Search(len(b.live), func(k int) bool { return b.live[k].Index >= ws.Index })
	if i < len(b.live) && b.live[i] == ws {
		copy(b.live[i:], b.live[i+1:])
		b.live[len(b.live)-1] = nil
		b.live = b.live[:len(b.live)-1]
	}
}

// ordered returns the live workflows sorted by arrival index, for
// deterministic scans. Callers must not mutate the returned slice.
func (b *base) ordered() []*cluster.WorkflowState {
	return b.live
}

// earliestSchedulableJob returns ws's Ready job with a pending task of type
// st that was activated first (ties by job ID) — Hadoop's per-job FIFO order
// within a workflow. Iterating the schedulable index visits jobs in ascending
// ID order, so keeping the first strictly-earlier activation preserves the
// tie-break.
func earliestSchedulableJob(ws *cluster.WorkflowState, st cluster.SlotType) (workflow.JobID, bool) {
	best := -1
	for j, ok := ws.NextSchedulableJob(st, 0); ok; j, ok = ws.NextSchedulableJob(st, j+1) {
		if best < 0 || ws.Jobs[j].ActivatedAt < ws.Jobs[best].ActivatedAt {
			best = int(j)
		}
	}
	if best < 0 {
		return 0, false
	}
	return workflow.JobID(best), true
}

// FIFO is Oozie with Hadoop's default JobQueueTaskScheduler: jobs are
// submitted when their prerequisites finish and served strictly in submission
// order, with no awareness of workflow deadlines.
type FIFO struct {
	base
	// queue holds (activation time, workflow, job) in submission order.
	// Activations arrive in non-decreasing time order, so appends keep it
	// sorted; exhausted jobs are dropped lazily during scans.
	queue []fifoEntry
}

type fifoEntry struct {
	ws  *cluster.WorkflowState
	job workflow.JobID
}

var _ cluster.Policy = (*FIFO)(nil)

// NewFIFO returns the Oozie+FIFO baseline.
func NewFIFO() *FIFO {
	f := &FIFO{}
	f.init()
	return f
}

// Name implements cluster.Policy.
func (f *FIFO) Name() string { return "FIFO" }

// JobActivated implements cluster.Policy: the job enters the global queue at
// its Hadoop submission time.
func (f *FIFO) JobActivated(ws *cluster.WorkflowState, job workflow.JobID, _ simtime.Time) {
	f.queue = append(f.queue, fifoEntry{ws: ws, job: job})
}

// NextTask implements cluster.Policy: compact and search in one pass,
// returning the first schedulable entry. Only completed jobs are dropped —
// a fully scheduled job can re-enter the pending pool when a node failure
// re-queues its running tasks. Entries past the first hit keep their order
// and are compacted by a later call; a completed job is never schedulable,
// so deferring its removal cannot change a decision.
func (f *FIFO) NextTask(_ simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	w := 0
	for i, e := range f.queue {
		js := &e.ws.Jobs[e.job]
		if js.Completed() {
			continue
		}
		f.queue[w] = e
		w++
		if js.Schedulable(st) {
			n := copy(f.queue[w:], f.queue[i+1:])
			f.queue = f.queue[:w+n]
			return e.ws, e.job, true
		}
	}
	f.queue = f.queue[:w]
	return nil, 0, false
}

// Fair mimics the Facebook FairScheduler as the paper ports it: "all running
// jobs evenly share the resources of the Hadoop cluster in a work conserving
// way". Sharing is per job — a workflow with many concurrently active jobs
// draws proportionally more of the cluster — and has no deadline awareness.
type Fair struct {
	base
}

var _ cluster.Policy = (*Fair)(nil)

// NewFair returns the Oozie+Fair baseline.
func NewFair() *Fair {
	f := &Fair{}
	f.init()
	return f
}

// Name implements cluster.Policy.
func (f *Fair) Name() string { return "Fair" }

// NextTask implements cluster.Policy: among all schedulable jobs, pick the
// one with the fewest running tasks (ties by activation time, then workflow
// index, then job ID).
func (f *Fair) NextTask(_ simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	var (
		bestWS  *cluster.WorkflowState
		bestJob workflow.JobID
		found   bool
	)
	better := func(ws *cluster.WorkflowState, j workflow.JobID) bool {
		if !found {
			return true
		}
		a, b := &ws.Jobs[j], &bestWS.Jobs[bestJob]
		ar, br := a.RunningMaps+a.RunningReduces, b.RunningMaps+b.RunningReduces
		if ar != br {
			return ar < br
		}
		if a.ActivatedAt != b.ActivatedAt {
			return a.ActivatedAt < b.ActivatedAt
		}
		return false // earlier workflow/job in scan order wins remaining ties
	}
	for _, ws := range f.ordered() {
		for j, ok := ws.NextSchedulableJob(st, 0); ok; j, ok = ws.NextSchedulableJob(st, j+1) {
			if better(ws, j) {
				bestWS, bestJob, found = ws, j, true
			}
		}
	}
	return bestWS, bestJob, found
}

// EDF assigns the highest priority to the workflow with the earliest
// deadline, following Verma et al.'s deadline-based Hadoop scheduling ported
// to whole workflows.
type EDF struct {
	base
}

var _ cluster.Policy = (*EDF)(nil)

// NewEDF returns the EDF baseline.
func NewEDF() *EDF {
	e := &EDF{}
	e.init()
	return e
}

// Name implements cluster.Policy.
func (e *EDF) Name() string { return "EDF" }

// NextTask implements cluster.Policy.
func (e *EDF) NextTask(_ simtime.Time, st cluster.SlotType) (*cluster.WorkflowState, workflow.JobID, bool) {
	var best *cluster.WorkflowState
	for _, ws := range e.ordered() {
		if !ws.Schedulable(st) {
			continue
		}
		if best == nil || ws.Spec.Deadline < best.Spec.Deadline {
			best = ws
		}
	}
	if best == nil {
		return nil, 0, false
	}
	job, ok := earliestSchedulableJob(best, st)
	return best, job, ok
}
