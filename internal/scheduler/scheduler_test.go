package scheduler_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func mapOnly(name string, maps int, dur time.Duration, rel, deadline simtime.Time) *workflow.Workflow {
	return workflow.NewBuilder(name).
		Job("j", maps, 0, dur, 0).
		MustBuild(rel, deadline)
}

func runAll(t *testing.T, cfg cluster.Config, pol cluster.Policy, ws ...*workflow.Workflow) *cluster.Result {
	t.Helper()
	sim, err := cluster.New(cfg, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if err := sim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFIFOServesSubmissionOrder(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w1 := mapOnly("first", 4, 10*time.Second, 0, simtime.FromSeconds(1000))
	w2 := mapOnly("second", 2, 10*time.Second, simtime.FromSeconds(1), simtime.FromSeconds(1000))
	res := runAll(t, cfg, scheduler.NewFIFO(), w1, w2)
	// FIFO: w1's 4 maps hog both slots until 20s; w2 runs 20-30s.
	if got := res.Workflows[0].Finish; got != simtime.FromSeconds(20) {
		t.Errorf("w1 Finish = %v, want 20s", got)
	}
	if got := res.Workflows[1].Finish; got != simtime.FromSeconds(30) {
		t.Errorf("w2 Finish = %v, want 30s", got)
	}
}

func TestFairSharesSlots(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	w1 := mapOnly("w1", 8, 10*time.Second, 0, simtime.FromSeconds(1000))
	w2 := mapOnly("w2", 8, 10*time.Second, 0, simtime.FromSeconds(1000))
	fifo := runAll(t, cfg, scheduler.NewFIFO(),
		mapOnly("w1", 8, 10*time.Second, 0, simtime.FromSeconds(1000)),
		mapOnly("w2", 8, 10*time.Second, 0, simtime.FromSeconds(1000)))
	fair := runAll(t, cfg, scheduler.NewFair(), w1, w2)

	// FIFO runs w1 to completion first: finishes at 40s and 80s. Fair
	// alternates slots (w1 grabs both on arrival, then one each): w1
	// finishes at 70s, w2 at 80s — neither workflow monopolizes.
	if got := fifo.Workflows[0].Finish; got != simtime.FromSeconds(40) {
		t.Errorf("FIFO w1 Finish = %v, want 40s", got)
	}
	if got := fair.Workflows[0].Finish; got != simtime.FromSeconds(70) {
		t.Errorf("Fair w1 Finish = %v, want 70s", got)
	}
	if got := fair.Workflows[1].Finish; got != simtime.FromSeconds(80) {
		t.Errorf("Fair w2 Finish = %v, want 80s", got)
	}
	if d := fair.Workflows[1].Finish.Sub(fair.Workflows[0].Finish); d > 10*time.Second {
		t.Errorf("Fair finish spread = %v, want <= one task", d)
	}
}

func TestEDFPrefersEarlierDeadline(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	// w1 submitted first but with a later deadline. w1 grabs both slots on
	// arrival (slots are non-preemptible); from the first free-up EDF gives
	// every slot to w2 until it finishes at 30s, then w1 resumes and ends
	// at 40s. FIFO would instead finish w1 at 20s and w2 at 40s.
	w1 := mapOnly("late-deadline", 4, 10*time.Second, 0, simtime.FromSeconds(500))
	w2 := mapOnly("tight-deadline", 4, 10*time.Second, 0, simtime.FromSeconds(35))
	res := runAll(t, cfg, scheduler.NewEDF(), w1, w2)
	if got := res.Workflows[1].Finish; got != simtime.FromSeconds(30) {
		t.Errorf("tight-deadline Finish = %v, want 30s", got)
	}
	if !res.Workflows[1].Met {
		t.Error("EDF missed the tight deadline it should favor")
	}
	if got := res.Workflows[0].Finish; got != simtime.FromSeconds(40) {
		t.Errorf("late-deadline Finish = %v, want 40s", got)
	}

	fifo := runAll(t, cfg, scheduler.NewFIFO(),
		mapOnly("late-deadline", 4, 10*time.Second, 0, simtime.FromSeconds(500)),
		mapOnly("tight-deadline", 4, 10*time.Second, 0, simtime.FromSeconds(35)))
	if fifo.Workflows[1].Met {
		t.Error("FIFO met the tight deadline; contention too weak to distinguish EDF")
	}
}

func TestEDFWithinWorkflowUsesActivationOrder(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}
	// Two independent root jobs in one workflow: the one listed first
	// activates at the same instant; ties break by job ID.
	w := workflow.NewBuilder("two-roots").
		Job("a", 1, 0, 10*time.Second, 0).
		Job("b", 1, 0, 10*time.Second, 0).
		MustBuild(0, simtime.FromSeconds(1000))
	res := runAll(t, cfg, scheduler.NewEDF(), w)
	if got := res.Workflows[0].Finish; got != simtime.FromSeconds(20) {
		t.Errorf("Finish = %v, want 20s", got)
	}
}

// TestFig2ResourceCapScenario reproduces the mechanism of the paper's Fig 2
// motivating example. Two deadline-constrained workflows (2-job chains of
// 4 maps + 4 reduces, 1s tasks, deadline 9.5s) compete with two large
// loose-deadline workflows on a 4-map-slot + 4-reduce-slot cluster.
//
// Plans generated against the full cluster are too optimistic: they demand
// no progress until 4s before the deadline, so the loose workflows win an
// even share of early slots and at least one tight workflow misses 9.5s.
// Resource-capped plans (binary-search minimum cap = 2 slots, simulated
// makespan 8s) demand progress almost immediately — and a 2-slot pace for
// each tight workflow is concurrently sustainable — so every deadline is
// met, exactly the Fig 2(b) outcome.
func TestFig2ResourceCapScenario(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 4}
	mkFlows := func() []*workflow.Workflow {
		tight := func(name string) *workflow.Workflow {
			return workflow.NewBuilder(name).
				Job("j1", 4, 4, time.Second, time.Second).
				Job("j2", 4, 4, time.Second, time.Second, "j1").
				MustBuild(0, simtime.FromSeconds(9.5))
		}
		loose := func(name string) *workflow.Workflow {
			return workflow.NewBuilder(name).
				Job("j", 24, 4, time.Second, time.Second).
				MustBuild(0, simtime.FromSeconds(120))
		}
		return []*workflow.Workflow{tight("W1"), tight("W2"), loose("W3"), loose("W4")}
	}

	runWith := func(capped bool) *cluster.Result {
		pol := core.NewScheduler(core.Options{Seed: 1})
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range mkFlows() {
			var p *plan.Plan
			if capped {
				p, err = plan.GenerateCapped(w, cfg.TotalSlots(), priority.HLF{})
			} else {
				p, err = plan.GenerateForPolicy(w, cfg.TotalSlots(), priority.HLF{})
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	uncapped := runWith(false)
	if uncapped.DeadlineMisses() == 0 {
		t.Errorf("uncapped plans met every deadline; Fig 2 predicts at least one miss (finishes: %v, %v)",
			uncapped.Workflows[0].Finish, uncapped.Workflows[1].Finish)
	}

	capped := runWith(true)
	if got := capped.DeadlineMisses(); got != 0 {
		for _, w := range capped.Workflows {
			t.Logf("%s: finish %v deadline %v", w.Name, w.Finish, w.Deadline)
		}
		t.Errorf("capped plans missed %d deadlines, want 0", got)
	}
	// The capped run must also pick a genuinely smaller cap for the tight
	// workflows.
	p, err := plan.GenerateCapped(mkFlows()[0], cfg.TotalSlots(), priority.HLF{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cap >= cfg.TotalSlots() {
		t.Errorf("capped plan used cap %d, want < %d", p.Cap, cfg.TotalSlots())
	}
}

func TestWOHAFollowsPlanRanks(t *testing.T) {
	// Two independent jobs; the plan ranks job "b" first, so with a single
	// map slot b must run before a despite a's lower job ID.
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}
	w := workflow.NewBuilder("ranked").
		Job("a", 1, 0, 10*time.Second, 0).
		Job("b", 1, 0, 10*time.Second, 0).
		MustBuild(0, simtime.FromSeconds(1000))
	p := &plan.Plan{Policy: "manual", Ranks: []int{1, 0}, TotalTasks: 2}

	obs := &orderObserver{}
	pol := core.NewScheduler(core.Options{Seed: 3})
	sim, err := cluster.New(cfg, pol, obs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Submit(w, p); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(obs.order) != 2 || obs.order[0] != 1 || obs.order[1] != 0 {
		t.Errorf("task start order = %v, want [1 0] (plan rank order)", obs.order)
	}
}

type orderObserver struct {
	order []workflow.JobID
}

func (o *orderObserver) TaskStarted(_ simtime.Time, _ *cluster.WorkflowState, job workflow.JobID, _ cluster.SlotType, _ time.Duration) {
	o.order = append(o.order, job)
}

func (o *orderObserver) TaskFinished(simtime.Time, *cluster.WorkflowState, workflow.JobID, cluster.SlotType) {
}

func TestWOHAWithoutPlanStillCompletes(t *testing.T) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	pol := core.NewScheduler(core.Options{Seed: 4})
	sim, err := cluster.New(cfg, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := workflow.NewBuilder("planless").
		Job("a", 3, 1, time.Second, time.Second).
		Job("b", 2, 1, time.Second, time.Second, "a").
		MustBuild(0, simtime.FromSeconds(1000))
	if err := sim.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Workflows[0].Met {
		t.Error("planless workflow missed a generous deadline")
	}
}

func TestWOHAStrictLeavesSlotsIdle(t *testing.T) {
	// Strict mode considers only the most-lagging workflow. Give W1 (the
	// ID tie-break winner at zero lag) a reduce-only bottleneck so strict
	// scheduling wastes map slots that work-conserving mode would give W2.
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	mk := func() []*workflow.Workflow {
		w1 := workflow.NewBuilder("w1").
			Job("j", 1, 4, time.Second, 30*time.Second).
			MustBuild(0, simtime.FromSeconds(10000))
		w2 := mapOnly("w2", 8, 10*time.Second, 0, simtime.FromSeconds(10000))
		return []*workflow.Workflow{w1, w2}
	}
	run := func(strict bool) simtime.Time {
		pol := core.NewScheduler(core.Options{Seed: 5, Strict: strict})
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range mk() {
			if err := sim.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	conserving := run(false)
	strict := run(true)
	if strict < conserving {
		t.Errorf("strict makespan %v beat work-conserving %v", strict, conserving)
	}
	if strict == conserving {
		t.Errorf("strict makespan %v equals work-conserving; expected idle-slot penalty", strict)
	}
}

func TestSchedulerNames(t *testing.T) {
	names := map[string]cluster.Policy{
		"FIFO":     scheduler.NewFIFO(),
		"Fair":     scheduler.NewFair(),
		"EDF":      scheduler.NewEDF(),
		"WOHA":     core.NewScheduler(core.Options{}),
		"WOHA-LPF": core.NewScheduler(core.Options{PolicyName: "LPF"}),
	}
	for want, pol := range names {
		if got := pol.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

// TestAllPoliciesCompleteRandomWorkloads is a cross-policy integration
// property: every policy must run arbitrary workloads to completion with
// exact task conservation.
func TestAllPoliciesCompleteRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := cluster.Config{Nodes: 4, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1, Noise: 0.1, Seed: 9}
	mkPolicies := func() map[string]cluster.Policy {
		return map[string]cluster.Policy{
			"FIFO":       scheduler.NewFIFO(),
			"Fair":       scheduler.NewFair(),
			"EDF":        scheduler.NewEDF(),
			"WOHA-DSL":   core.NewScheduler(core.Options{Queue: core.QueueDSL, Seed: 11}),
			"WOHA-BST":   core.NewScheduler(core.Options{Queue: core.QueueBST}),
			"WOHA-Naive": core.NewScheduler(core.Options{Queue: core.QueueNaive}),
		}
	}

	var flows []*workflow.Workflow
	totalTasks := 0
	for i := 0; i < 8; i++ {
		b := workflow.NewBuilder("wf" + string(rune('A'+i)))
		n := 1 + rng.Intn(8)
		names := make([]string, n)
		for j := 0; j < n; j++ {
			names[j] = "job" + string(rune('a'+j))
			var after []string
			for k := 0; k < j; k++ {
				if rng.Intn(3) == 0 {
					after = append(after, names[k])
				}
			}
			b.Job(names[j], 1+rng.Intn(10), rng.Intn(4),
				time.Duration(1+rng.Intn(20))*time.Second,
				time.Duration(1+rng.Intn(40))*time.Second, after...)
		}
		w := b.MustBuild(simtime.FromSeconds(float64(rng.Intn(60))), simtime.FromSeconds(1e7))
		totalTasks += w.TotalTasks()
		flows = append(flows, w)
	}

	for name, pol := range mkPolicies() {
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range flows {
			var p *plan.Plan
			if ws, ok := pol.(*core.Scheduler); ok && ws != nil {
				p, err = plan.GenerateCapped(w, cfg.TotalSlots(), priority.LPF{})
				if err != nil {
					t.Fatalf("%s: plan: %v", name, err)
				}
			}
			if err := sim.Submit(w, p); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if res.TasksStarted != totalTasks {
			t.Errorf("%s: started %d tasks, want %d", name, res.TasksStarted, totalTasks)
		}
		for _, w := range res.Workflows {
			if w.Finish == 0 {
				t.Errorf("%s: workflow %s never finished", name, w.Name)
			}
		}
	}
}
