package live_test

import (
	"net/rpc"
	"runtime"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/scheduler"
)

// TestTCPTransportErrorPaths pins the failure behavior of the net/rpc
// control plane: heartbeats work while the transport is up, a closed
// transport surfaces errors to callers (dialing trackers and in-flight
// clients alike) instead of hanging, CloseTransport is idempotent, and the
// server goroutines drain — no leak survives the close.
func TestTCPTransportErrorPaths(t *testing.T) {
	before := runtime.NumGoroutine()

	c, err := live.NewTCP(fastConfig(), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	addr := c.TransportAddr()
	if addr == "" {
		t.Fatal("TCP cluster reports no transport address")
	}

	// A heartbeat over a fresh connection succeeds while the listener is up.
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var out []live.Assignment
	if err := client.Call("JobTracker.Heartbeat", live.Heartbeat{Tracker: 0}, &out); err != nil {
		t.Fatalf("heartbeat before close: %v", err)
	}

	if err := c.CloseTransport(); err != nil {
		t.Fatalf("CloseTransport: %v", err)
	}
	// Idempotent: a second close is a clean no-op.
	if err := c.CloseTransport(); err != nil {
		t.Errorf("second CloseTransport: %v", err)
	}

	// A tracker dialing the closed listener gets an error immediately.
	if conn, err := rpc.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Error("dial succeeded against a closed listener")
	}

	// A heartbeat on a closed client surfaces the RPC error (this is what a
	// TaskTracker sees mid-run; see TestTCPTransportSurvivesEarlyClose for
	// the re-queue behavior that follows).
	if err := client.Close(); err != nil {
		t.Fatalf("closing client: %v", err)
	}
	if err := client.Call("JobTracker.Heartbeat", live.Heartbeat{Tracker: 0}, &out); err == nil {
		t.Error("heartbeat on a closed client returned no error")
	}

	// The accept loop and per-connection server goroutines must exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked by the closed transport: %d before, %d after", before, n)
	}
}

// TestTransportAddrInProcess pins the in-process cluster's empty address and
// no-op CloseTransport.
func TestTransportAddrInProcess(t *testing.T) {
	c, err := live.New(fastConfig(), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if addr := c.TransportAddr(); addr != "" {
		t.Errorf("in-process cluster reports transport address %q", addr)
	}
	if err := c.CloseTransport(); err != nil {
		t.Errorf("CloseTransport on in-process cluster: %v", err)
	}
}
