package live

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/cluster"
)

// NewTCP builds a live cluster whose heartbeats travel over a real TCP
// loopback connection via net/rpc: the JobTracker listens on an ephemeral
// 127.0.0.1 port and every TaskTracker dials its own client connection.
// Functionally identical to New, but the control plane pays genuine
// serialization and socket latency — the closest this reproduction gets to
// the paper's master node answering heartbeat RPCs on a real cluster.
//
// Close the returned cluster with CloseTransport after Run to release the
// listener and client connections.
func NewTCP(cfg Config, pol cluster.Policy) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("live: nil policy")
	}
	c := &Cluster{cfg: cfg, jt: newControlPlane(cfg, pol)}

	srv := rpc.NewServer()
	if err := srv.RegisterName("JobTracker", &rpcJobTracker{jt: c.jt}); err != nil {
		return nil, fmt.Errorf("live: registering RPC service: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: listening: %w", err)
	}
	c.transport = &tcpTransport{listener: ln}
	go c.transport.accept(srv)

	for i := 0; i < cfg.Nodes; i++ {
		client, err := rpc.Dial("tcp", ln.Addr().String())
		if err != nil {
			_ = c.CloseTransport()
			return nil, fmt.Errorf("live: dialing JobTracker: %w", err)
		}
		c.transport.clients = append(c.transport.clients, client)
		hb := func(client *rpc.Client) heartbeatFunc {
			return func(h Heartbeat) ([]Assignment, error) {
				var out []Assignment
				if err := client.Call("JobTracker.Heartbeat", h, &out); err != nil {
					return nil, err
				}
				return out, nil
			}
		}(client)
		c.trackers = append(c.trackers, newTaskTracker(i, cfg, hb))
	}
	return c, nil
}

// TransportAddr returns the JobTracker listener's address for clusters
// built with NewTCP, or "" for in-process clusters.
func (c *Cluster) TransportAddr() string {
	if c.transport == nil {
		return ""
	}
	return c.transport.listener.Addr().String()
}

// CloseTransport shuts down the TCP listener and client connections of a
// cluster built with NewTCP. It is a no-op for in-process clusters.
func (c *Cluster) CloseTransport() error {
	if c.transport == nil {
		return nil
	}
	return c.transport.close()
}

// rpcJobTracker adapts the control plane's Heartbeat to the net/rpc method
// shape.
type rpcJobTracker struct {
	jt controlPlane
}

// Heartbeat is the exported RPC method.
func (r *rpcJobTracker) Heartbeat(hb Heartbeat, reply *[]Assignment) error {
	*reply = r.jt.Heartbeat(hb)
	return nil
}

// tcpTransport owns the listener and per-tracker client connections.
type tcpTransport struct {
	listener net.Listener
	clients  []*rpc.Client

	mu     sync.Mutex
	closed bool
}

func (t *tcpTransport) accept(srv *rpc.Server) {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go srv.ServeConn(conn)
	}
}

func (t *tcpTransport) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.listener.Close()
	for _, c := range t.clients {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
