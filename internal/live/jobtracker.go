package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// JobTracker is the legacy live master (Config.Shards = 1): it owns all
// workflow state behind one mutex, exactly like Hadoop's JobTracker, and
// answers heartbeats with task assignments chosen by the pluggable policy.
// It is kept as the reference implementation the sharded tracker must match;
// see sharded.go for the concurrent layout.
type JobTracker struct {
	cfg Config

	mu     sync.Mutex
	pol    cluster.Policy
	states []*cluster.WorkflowState

	clock     virtualClock
	seq       int
	remaining int // workflows not yet completed
	started   int // tasks started
	finish    []simtime.Time

	// relOrder holds workflow indices sorted by release time; relCursor is
	// the first index not yet handed to the policy. Each heartbeat inspects
	// only workflows actually due instead of scanning every registration.
	// Both are built when the clock is stamped and guarded by mu.
	relOrder  []int
	relCursor int

	// adm is the admission front door (nil admits everything); deferred
	// holds workflows whose decision was postponed, re-ruled once their
	// retry instant passes. Guarded by mu.
	adm      admission.Controller
	deferred []deferredRelease

	// live flips when the clock is stamped; register fails loudly after
	// that, making pre-start registration explicitly single-threaded.
	live atomic.Bool

	// ins is the optional runtime instrumentation; all its methods no-op on
	// a nil receiver, so the uninstrumented hot path pays one nil check.
	ins *obs.Obs

	done chan struct{}
}

func newJobTracker(cfg Config, pol cluster.Policy) *JobTracker {
	// Register the woha_live_* family with shards=1 so an instrumented
	// legacy run still reports which control-plane layout is serving.
	cfg.Obs.NewLiveStats(1)
	return &JobTracker{cfg: cfg, pol: pol, adm: cfg.Admission, ins: cfg.Obs, done: make(chan struct{})}
}

// deferredRelease is a workflow whose admission decision was postponed to a
// retry instant.
type deferredRelease struct {
	wf int
	at simtime.Time
}

// register records a workflow before the cluster starts. Registration is
// single-threaded and pre-start only; the tracker takes no lock here and
// panics if the clock has already been stamped.
func (jt *JobTracker) register(w *workflow.Workflow, p *plan.Plan) {
	if jt.live.Load() {
		panic(fmt.Sprintf("live: register(%q) after the cluster started; Submit every workflow before Run or DeliverHeartbeat", w.Name))
	}
	ws := cluster.NewWorkflowState(len(jt.states), w, p)
	ws.EnableSchedIndex(nil)
	jt.states = append(jt.states, ws)
	jt.finish = append(jt.finish, 0)
	jt.remaining++
}

// start stamps the clock origin and freezes registration.
func (jt *JobTracker) start() {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.activateLocked()
}

// ensureClock stamps the clock origin if start() has not run, so heartbeats
// delivered outside Run (see Cluster.DeliverHeartbeat) see sane virtual time.
func (jt *JobTracker) ensureClock() {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if !jt.live.Load() {
		jt.activateLocked()
	}
}

// activateLocked stamps the clock, sorts registrations by release time for
// the releaseDue cursor, and closes registration. Callers hold mu.
func (jt *JobTracker) activateLocked() {
	jt.clock = virtualClock{start: time.Now(), scale: jt.cfg.TimeScale}
	jt.relOrder = make([]int, len(jt.states))
	for i := range jt.relOrder {
		jt.relOrder[i] = i
	}
	sort.SliceStable(jt.relOrder, func(a, b int) bool {
		return jt.states[jt.relOrder[a]].Spec.Release < jt.states[jt.relOrder[b]].Spec.Release
	})
	jt.live.Store(true)
}

// doneCh closes when every registered workflow has completed.
func (jt *JobTracker) doneCh() <-chan struct{} { return jt.done }

// registered reports the number of registered workflows.
func (jt *JobTracker) registered() int { return len(jt.states) }

// Heartbeat is the single RPC of the control plane: a tracker reports
// completions and free slots; the JobTracker returns assignments.
func (jt *JobTracker) Heartbeat(hb Heartbeat) []Assignment {
	var t0 time.Time
	if jt.ins != nil {
		t0 = time.Now()
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	now := jt.clock.now()
	jt.releaseDue(now)
	for _, id := range hb.Completed {
		jt.complete(id, hb.Tracker, now)
	}
	var out []Assignment
	freeMaps, freeReds := hb.FreeMaps, hb.FreeReds
	for freeMaps > 0 {
		a, ok := jt.assign(cluster.MapSlot, hb.Tracker, now)
		if !ok {
			break
		}
		out = append(out, a)
		freeMaps--
	}
	for freeReds > 0 {
		a, ok := jt.assign(cluster.ReduceSlot, hb.Tracker, now)
		if !ok {
			break
		}
		out = append(out, a)
		freeReds--
	}
	if jt.ins != nil {
		jt.ins.HeartbeatServed(now, hb.Tracker, time.Since(t0), len(out))
	}
	return out
}

// releaseDue rules on every submission whose decision instant has arrived —
// fresh releases (sorted by release time when the clock was stamped, so the
// cursor advances monotonically) merged with deferred retries — and hands the
// admitted ones to the policy. The merge processes items in (decision
// instant, release-before-retry, submission index) order, mirroring the
// simulator's event order, so an anchored admission controller rules in the
// same sequence on both control planes.
func (jt *JobTracker) releaseDue(now simtime.Time) {
	for {
		rel := -1
		if jt.relCursor < len(jt.relOrder) {
			if i := jt.relOrder[jt.relCursor]; jt.states[i].Spec.Release <= now {
				rel = i
			}
		}
		ret := jt.dueRetry(now)
		switch {
		case rel >= 0 && (ret < 0 || jt.states[rel].Spec.Release <= jt.deferred[ret].at):
			jt.relCursor++
			jt.rule(jt.states[rel], now)
		case ret >= 0:
			wf := jt.deferred[ret].wf
			jt.deferred = append(jt.deferred[:ret], jt.deferred[ret+1:]...)
			jt.rule(jt.states[wf], now)
		default:
			return
		}
	}
}

// dueRetry returns the index into deferred of the earliest retry due by now
// (ties broken by workflow index), or -1.
func (jt *JobTracker) dueRetry(now simtime.Time) int {
	best := -1
	for i, d := range jt.deferred {
		if d.at > now {
			continue
		}
		if best < 0 || d.at < jt.deferred[best].at ||
			(d.at == jt.deferred[best].at && d.wf < jt.deferred[best].wf) {
			best = i
		}
	}
	return best
}

// rule consults the admission front door for one due submission and applies
// the verdict: admitted workflows reach the policy exactly as before, defers
// join the retry list, and rejects resolve immediately without the policy
// ever seeing them.
func (jt *JobTracker) rule(ws *cluster.WorkflowState, now simtime.Time) {
	if jt.adm != nil {
		switch d := jt.adm.Decide(ws.Spec, ws.Plan, now); d.Verdict {
		case admission.Defer:
			retry := d.RetryAt
			if retry <= now {
				retry = now + 1
			}
			jt.deferred = append(jt.deferred, deferredRelease{wf: ws.Index, at: retry})
			return
		case admission.Reject:
			ws.Rejected = true
			ws.RejectReason = d.Reason
			ws.CounterOffer = d.CounterOffer
			ws.Done = true
			jt.remaining--
			if jt.remaining == 0 {
				close(jt.done)
			}
			return
		}
	}
	jt.ins.WorkflowSubmitted(now, ws.Index, ws.Spec.Name)
	jt.pol.WorkflowAdded(ws, now)
	for _, r := range ws.Spec.RootIDs() {
		jt.activate(ws, r, now)
	}
}

func (jt *JobTracker) activate(ws *cluster.WorkflowState, job workflow.JobID, now simtime.Time) {
	js := &ws.Jobs[job]
	js.Ready = true
	js.ActivatedAt = now
	ws.RefreshJob(job)
	jt.ins.JobActivated(now, ws.Index, int(job))
	jt.pol.JobActivated(ws, job, now)
}

// assign asks the policy for one task of the given slot type on behalf of
// the given tracker.
func (jt *JobTracker) assign(st cluster.SlotType, tracker int, now simtime.Time) (Assignment, bool) {
	ws, job, ok := jt.pol.NextTask(now, st)
	if !ok {
		return Assignment{}, false
	}
	js := &ws.Jobs[job]
	var dur time.Duration
	if st == cluster.MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		dur = ws.Spec.Jobs[job].MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		dur = ws.Spec.Jobs[job].ReduceTime
	}
	ws.ScheduledTasks++
	ws.RunningTasks++
	ws.RefreshJob(job)
	jt.started++
	jt.seq++
	jt.ins.TaskAssigned(now, ws.Index, int(job), int(st), tracker, dur)
	jt.pol.TaskStarted(ws, job, st, now)
	return Assignment{
		ID:       TaskID{Workflow: ws.Index, Job: job, Type: st, Seq: jt.seq},
		WallTime: jt.clock.toWall(dur),
	}, true
}

// complete applies a reported task completion.
func (jt *JobTracker) complete(id TaskID, tracker int, now simtime.Time) {
	ws := jt.states[id.Workflow]
	js := &ws.Jobs[id.Job]
	if id.Type == cluster.MapSlot {
		js.RunningMaps--
		js.DoneMaps++
	} else {
		js.RunningReduces--
		js.DoneReduces++
	}
	ws.RunningTasks--
	ws.RefreshJob(id.Job)
	jt.ins.TaskCompleted(now, ws.Index, int(id.Job), int(id.Type), tracker)
	if id.Type == cluster.MapSlot && js.MapsDone() && js.PendingReduces > 0 {
		if rp, ok := jt.pol.(cluster.ReducePhasePolicy); ok {
			rp.ReducesReady(ws, id.Job, now)
		}
	}
	if js.Completed() {
		jt.jobCompleted(ws, id.Job, now)
	}
	if ws.TaskDone() == 0 && !ws.Done {
		ws.Done = true
		ws.FinishTime = now
		jt.finish[ws.Index] = now
		if jt.ins != nil {
			var tardiness time.Duration
			if now > ws.Spec.Deadline {
				tardiness = now.Sub(ws.Spec.Deadline)
			}
			jt.ins.WorkflowCompleted(now, ws.Index, ws.Spec.Name, tardiness)
		}
		jt.pol.WorkflowCompleted(ws, now)
		if jt.adm != nil {
			jt.adm.Complete(ws.Spec, now)
		}
		jt.remaining--
		if jt.remaining == 0 {
			close(jt.done)
		}
	}
}

// jobCompleted activates dependents whose prerequisites all finished.
func (jt *JobTracker) jobCompleted(ws *cluster.WorkflowState, job workflow.JobID, now simtime.Time) {
	for _, d := range ws.Spec.DependentsOf(job) {
		dj := &ws.Jobs[d]
		if dj.Ready {
			continue
		}
		ready := true
		for _, p := range ws.Spec.Jobs[d].Prereqs {
			if !ws.Jobs[p].Completed() {
				ready = false
				break
			}
		}
		if ready {
			jt.activate(ws, d, now)
		}
	}
}

// result snapshots the outcome.
func (jt *JobTracker) result() *Result {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	r := &Result{Policy: jt.pol.Name(), TasksStarted: jt.started}
	for i, ws := range jt.states {
		wr := cluster.WorkflowResult{
			Name:     ws.Spec.Name,
			Index:    i,
			Release:  ws.Spec.Release,
			Deadline: ws.Spec.Deadline,
			Finish:   jt.finish[i],
		}
		if ws.Rejected {
			wr.Rejected = true
			wr.RejectReason = ws.RejectReason
			wr.CounterOffer = ws.CounterOffer
			r.Workflows = append(r.Workflows, wr)
			continue
		}
		wr.Workspan = wr.Finish.Sub(wr.Release)
		if wr.Finish > wr.Deadline {
			wr.Tardiness = wr.Finish.Sub(wr.Deadline)
		}
		wr.Met = wr.Tardiness == 0
		r.Workflows = append(r.Workflows, wr)
	}
	return r
}
