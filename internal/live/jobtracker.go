package live

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// JobTracker is the live master: it owns all workflow state behind one
// mutex, exactly like Hadoop's JobTracker, and answers heartbeats with task
// assignments chosen by the pluggable policy.
type JobTracker struct {
	cfg Config

	mu     sync.Mutex
	pol    cluster.Policy
	states []*cluster.WorkflowState
	specs  []*workflow.Workflow
	plans  []*plan.Plan

	clock     virtualClock
	seq       int
	remaining int // workflows not yet completed
	started   int // tasks started
	finish    []simtime.Time

	// pendingRelease workflows are added to the policy when their release
	// time arrives (checked on every heartbeat — heartbeats are the only
	// scheduling trigger, as in Hadoop).
	released []bool

	// ins is the optional runtime instrumentation; all its methods no-op on
	// a nil receiver, so the uninstrumented hot path pays one nil check.
	ins *obs.Obs

	done chan struct{}
}

func newJobTracker(cfg Config, pol cluster.Policy) *JobTracker {
	return &JobTracker{cfg: cfg, pol: pol, ins: cfg.Obs, done: make(chan struct{})}
}

// register records a workflow before the cluster starts.
func (jt *JobTracker) register(w *workflow.Workflow, p *plan.Plan) {
	ws := &cluster.WorkflowState{
		Index: len(jt.states),
		Spec:  w,
		Plan:  p,
		Jobs:  make([]cluster.JobState, len(w.Jobs)),
	}
	for i := range w.Jobs {
		ws.Jobs[i] = cluster.JobState{
			ID:             workflow.JobID(i),
			PendingMaps:    w.Jobs[i].Maps,
			PendingReduces: w.Jobs[i].Reduces,
		}
	}
	jt.states = append(jt.states, ws)
	jt.specs = append(jt.specs, w)
	jt.plans = append(jt.plans, p)
	jt.released = append(jt.released, false)
	jt.finish = append(jt.finish, 0)
	jt.remaining++
}

// start stamps the clock origin.
func (jt *JobTracker) start() {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.clock = virtualClock{start: time.Now(), scale: jt.cfg.TimeScale}
	// unmet prerequisite counts live in unexported simulator state, so the
	// live tracker recomputes readiness from Dependents on each completion;
	// initialize root readiness at release time in releaseDue.
}

// ensureClock stamps the clock origin if start() has not run, so heartbeats
// delivered outside Run (see Cluster.DeliverHeartbeat) see sane virtual time.
func (jt *JobTracker) ensureClock() {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	if jt.clock.start.IsZero() {
		jt.clock = virtualClock{start: time.Now(), scale: jt.cfg.TimeScale}
	}
}

// Heartbeat is the single RPC of the control plane: a tracker reports
// completions and free slots; the JobTracker returns assignments.
func (jt *JobTracker) Heartbeat(hb Heartbeat) []Assignment {
	var t0 time.Time
	if jt.ins != nil {
		t0 = time.Now()
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	now := jt.clock.now()
	jt.releaseDue(now)
	for _, id := range hb.Completed {
		jt.complete(id, now)
	}
	var out []Assignment
	freeMaps, freeReds := hb.FreeMaps, hb.FreeReds
	for freeMaps > 0 {
		a, ok := jt.assign(cluster.MapSlot, hb.Tracker, now)
		if !ok {
			break
		}
		out = append(out, a)
		freeMaps--
	}
	for freeReds > 0 {
		a, ok := jt.assign(cluster.ReduceSlot, hb.Tracker, now)
		if !ok {
			break
		}
		out = append(out, a)
		freeReds--
	}
	if jt.ins != nil {
		jt.ins.HeartbeatServed(now, hb.Tracker, time.Since(t0), len(out))
	}
	return out
}

// releaseDue hands workflows whose release time has arrived to the policy
// and activates their root jobs.
func (jt *JobTracker) releaseDue(now simtime.Time) {
	for i, ws := range jt.states {
		if jt.released[i] || ws.Spec.Release > now {
			continue
		}
		jt.released[i] = true
		jt.ins.WorkflowSubmitted(now, ws.Index, ws.Spec.Name)
		jt.pol.WorkflowAdded(ws, now)
		for _, r := range ws.Spec.Roots() {
			jt.activate(ws, r, now)
		}
	}
}

func (jt *JobTracker) activate(ws *cluster.WorkflowState, job workflow.JobID, now simtime.Time) {
	js := &ws.Jobs[job]
	js.Ready = true
	js.ActivatedAt = now
	jt.ins.JobActivated(now, ws.Index, int(job))
	jt.pol.JobActivated(ws, job, now)
}

// assign asks the policy for one task of the given slot type on behalf of
// the given tracker.
func (jt *JobTracker) assign(st cluster.SlotType, tracker int, now simtime.Time) (Assignment, bool) {
	ws, job, ok := jt.pol.NextTask(now, st)
	if !ok {
		return Assignment{}, false
	}
	js := &ws.Jobs[job]
	var dur time.Duration
	if st == cluster.MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		dur = ws.Spec.Jobs[job].MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		dur = ws.Spec.Jobs[job].ReduceTime
	}
	ws.ScheduledTasks++
	ws.RunningTasks++
	jt.started++
	jt.seq++
	jt.ins.TaskAssigned(now, ws.Index, int(job), int(st), tracker, dur)
	jt.pol.TaskStarted(ws, job, st, now)
	return Assignment{
		ID:       TaskID{Workflow: ws.Index, Job: job, Type: st, Seq: jt.seq},
		WallTime: jt.clock.toWall(dur),
	}, true
}

// complete applies a reported task completion.
func (jt *JobTracker) complete(id TaskID, now simtime.Time) {
	ws := jt.states[id.Workflow]
	js := &ws.Jobs[id.Job]
	if id.Type == cluster.MapSlot {
		js.RunningMaps--
		js.DoneMaps++
	} else {
		js.RunningReduces--
		js.DoneReduces++
	}
	ws.RunningTasks--
	if id.Type == cluster.MapSlot && js.MapsDone() && js.PendingReduces > 0 {
		if rp, ok := jt.pol.(cluster.ReducePhasePolicy); ok {
			rp.ReducesReady(ws, id.Job, now)
		}
	}
	if js.Completed() {
		jt.jobCompleted(ws, id.Job, now)
	}
	if !ws.Done && workflowFinished(ws) {
		ws.Done = true
		ws.FinishTime = now
		jt.finish[ws.Index] = now
		if jt.ins != nil {
			var tardiness time.Duration
			if now > ws.Spec.Deadline {
				tardiness = now.Sub(ws.Spec.Deadline)
			}
			jt.ins.WorkflowCompleted(now, ws.Index, ws.Spec.Name, tardiness)
		}
		jt.pol.WorkflowCompleted(ws, now)
		jt.remaining--
		if jt.remaining == 0 {
			close(jt.done)
		}
	}
}

// jobCompleted activates dependents whose prerequisites all finished.
func (jt *JobTracker) jobCompleted(ws *cluster.WorkflowState, job workflow.JobID, now simtime.Time) {
	for _, d := range ws.Spec.Dependents()[job] {
		dj := &ws.Jobs[d]
		if dj.Ready {
			continue
		}
		ready := true
		for _, p := range ws.Spec.Jobs[d].Prereqs {
			if !ws.Jobs[p].Completed() {
				ready = false
				break
			}
		}
		if ready {
			jt.activate(ws, d, now)
		}
	}
}

func workflowFinished(ws *cluster.WorkflowState) bool {
	for i := range ws.Jobs {
		if !ws.Jobs[i].Completed() {
			return false
		}
	}
	return true
}

// result snapshots the outcome.
func (jt *JobTracker) result() *Result {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	r := &Result{Policy: jt.pol.Name(), TasksStarted: jt.started}
	for i, ws := range jt.states {
		wr := cluster.WorkflowResult{
			Name:     ws.Spec.Name,
			Index:    i,
			Release:  ws.Spec.Release,
			Deadline: ws.Spec.Deadline,
			Finish:   jt.finish[i],
		}
		wr.Workspan = wr.Finish.Sub(wr.Release)
		if wr.Finish > wr.Deadline {
			wr.Tardiness = wr.Finish.Sub(wr.Deadline)
		}
		wr.Met = wr.Tardiness == 0
		r.Workflows = append(r.Workflows, wr)
	}
	return r
}
