package live

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// policyEvent kinds, in the order the legacy tracker would have delivered
// the equivalent synchronous policy calls.
type policyEventKind int

const (
	// evWorkflowReleased: the workflow's release time arrived; the policy
	// learns of it (WorkflowAdded) and of its root jobs (JobActivated).
	evWorkflowReleased policyEventKind = iota
	// evJobActivated: a dependent job's prerequisites all completed.
	evJobActivated
	// evReducesReady: a job's map phase finished with reduces pending.
	evReducesReady
	// evWorkflowCompleted: the workflow's last task finished.
	evWorkflowCompleted
)

// policyEvent is one workflow lifecycle transition recorded by a bookkeeping
// shard for later application to the policy. Events for the same workflow
// are pushed while holding its shard lock, so the queue preserves each
// workflow's transition order.
type policyEvent struct {
	kind policyEventKind
	wf   *liveWorkflow
	job  workflow.JobID
	now  simtime.Time
}

// policyCore owns the pluggable scheduling policy behind its own narrow
// lock. cluster.Policy implementations are contractually single-threaded, so
// every NextTask consultation and lifecycle notification runs under mu; the
// sharded tracker keeps that critical section to exactly the policy work by
// feeding it batched events instead of holding the lock across bookkeeping.
//
// Lock ordering: core.mu is always taken before the tracker's exclusive
// plane lock, and never while holding a shard lock.
type policyCore struct {
	mu  sync.Mutex
	pol cluster.Policy
	// reduces is pol's ReducePhasePolicy view, nil if unimplemented.
	reduces cluster.ReducePhasePolicy
}

func newPolicyCore(pol cluster.Policy) *policyCore {
	c := &policyCore{pol: pol}
	c.reduces, _ = pol.(cluster.ReducePhasePolicy)
	return c
}

// apply delivers one event's policy notifications and returns how many tasks
// the event made schedulable (the fast-path hint delta). The caller holds
// core.mu and the exclusive plane lock, so reading workflow state here is
// race-free and the state a notification observes matches what the legacy
// tracker's synchronous call would have seen.
func (st *shardedTracker) apply(e *policyEvent) int64 {
	ws := e.wf.ws
	switch e.kind {
	case evWorkflowReleased:
		st.ins.WorkflowSubmitted(e.now, ws.Index, ws.Spec.Name)
		st.core.pol.WorkflowAdded(ws, e.now)
		var added int64
		for _, r := range ws.Spec.RootIDs() {
			added += st.notifyActivated(ws, r, e.now)
		}
		return added
	case evJobActivated:
		return st.notifyActivated(ws, e.job, e.now)
	case evReducesReady:
		if st.core.reduces != nil {
			st.core.reduces.ReducesReady(ws, e.job, e.now)
		}
		return int64(ws.Jobs[e.job].PendingReduces)
	case evWorkflowCompleted:
		var tardiness time.Duration
		if e.now > ws.Spec.Deadline {
			tardiness = e.now.Sub(ws.Spec.Deadline)
		}
		st.ins.WorkflowCompleted(e.now, ws.Index, ws.Spec.Name, tardiness)
		st.core.pol.WorkflowCompleted(ws, e.now)
		return 0
	}
	return 0
}

// notifyActivated announces an already-activated job (Ready was set by the
// bookkeeping shard) to the policy and returns its schedulable-task count: a
// job with maps contributes its pending maps; a map-less job starts with its
// reduces immediately schedulable.
func (st *shardedTracker) notifyActivated(ws *cluster.WorkflowState, job workflow.JobID, now simtime.Time) int64 {
	js := &ws.Jobs[job]
	st.ins.JobActivated(now, ws.Index, int(job))
	st.core.pol.JobActivated(ws, job, now)
	if js.PendingMaps > 0 {
		return int64(js.PendingMaps)
	}
	return int64(js.PendingReduces)
}
