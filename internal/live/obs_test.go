package live_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
)

// TestTCPHeartbeatInstrumentation runs a workflow over the real net/rpc TCP
// transport with instrumentation attached and checks that the heartbeat
// latency histogram fills and that exactly one HeartbeatServed record exists
// per served RPC (counter, histogram, and event stream all agree).
func TestTCPHeartbeatInstrumentation(t *testing.T) {
	ring := obs.NewRing(1 << 14)
	ins := obs.New(obs.NewRegistry(), ring)
	cfg := fastConfig()
	cfg.Obs = ins

	c, err := live.NewTCP(cfg, core.NewScheduler(core.Options{Seed: 3, Obs: ins}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.CloseTransport(); err != nil {
			t.Errorf("CloseTransport: %v", err)
		}
	}()
	w := chainFlow("tcp-obs", 0, 2*time.Hour)
	p, err := plan.GenerateCapped(w, 12, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(w, p); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	served := ins.Heartbeats.Value()
	if served == 0 {
		t.Fatal("no heartbeats counted over the TCP transport")
	}
	if got := ins.HeartbeatDur.Count(); got != served {
		t.Errorf("latency histogram has %d samples for %d heartbeats", got, served)
	}
	if ins.HeartbeatDur.Sum() <= 0 {
		t.Error("heartbeat latency sum is zero — durations not measured")
	}
	if got := ins.HeartbeatAssignments.Count(); got != served {
		t.Errorf("assignment histogram has %d samples for %d heartbeats", got, served)
	}
	if got := ring.CountKind(obs.KindHeartbeatServed); int64(got) != served {
		t.Errorf("%d heartbeat_served events for %d heartbeats served", got, served)
	}

	if got := ins.TasksAssigned.Value(); got != int64(res.TasksStarted) {
		t.Errorf("tasks assigned counter = %d, result says %d", got, res.TasksStarted)
	}
	if ins.WorkflowsCompleted.Value() != 1 {
		t.Errorf("workflows completed = %d, want 1", ins.WorkflowsCompleted.Value())
	}
	if res.Workflows[0].Met && ins.DeadlinesMissed.Value() != 0 {
		t.Error("deadline met but miss counter incremented")
	}
}

// TestLiveValidationMessages pins the uniform "live: <field> = <value>, want
// <constraint>" error style.
func TestLiveValidationMessages(t *testing.T) {
	cases := []struct {
		mutate func(*live.Config)
		want   string
	}{
		{func(c *live.Config) { c.Nodes = 0 }, "live: Nodes = 0, want > 0"},
		{func(c *live.Config) { c.MapSlotsPerNode = -1 }, "live: MapSlotsPerNode = -1, want >= 0"},
		{func(c *live.Config) { c.ReduceSlotsPerNode = -2 }, "live: ReduceSlotsPerNode = -2, want >= 0"},
		{func(c *live.Config) { c.MapSlotsPerNode, c.ReduceSlotsPerNode = 0, 0 },
			"live: MapSlotsPerNode+ReduceSlotsPerNode = 0, want > 0"},
		{func(c *live.Config) { c.HeartbeatInterval = 0 }, "live: HeartbeatInterval = 0s, want > 0"},
		{func(c *live.Config) { c.TimeScale = -1 }, "live: TimeScale = -1, want > 0"},
		{func(c *live.Config) { c.Shards = -3 }, "live: Shards = -3, want >= 0"},
	}
	for _, tc := range cases {
		cfg := fastConfig()
		tc.mutate(&cfg)
		_, err := live.New(cfg, nil)
		if err == nil || err.Error() != tc.want {
			t.Errorf("error = %v, want %q", err, tc.want)
		}
	}
}
