package live

import (
	"time"

	"repro/internal/simtime"
)

// virtualClock converts wall time since start into virtual (workflow) time.
// The struct is immutable once stamped; trackers share it by value (legacy
// JobTracker, guarded by its mutex) or through an atomic pointer (sharded
// tracker, so heartbeats read it without any lock).
type virtualClock struct {
	start time.Time
	scale float64
}

func (vc virtualClock) now() simtime.Time {
	return simtime.Epoch.Add(time.Duration(float64(time.Since(vc.start)) / vc.scale))
}

func (vc virtualClock) toWall(d time.Duration) time.Duration {
	w := time.Duration(float64(d) * vc.scale)
	if w <= 0 {
		w = time.Microsecond
	}
	return w
}
