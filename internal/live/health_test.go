package live_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
)

// TestHealthCrossLayoutSnapshots drives concurrent heartbeats through the
// health tracker on both control-plane layouts (Shards = 1 legacy mutex,
// Shards = 4 pipeline) and demands identical slack snapshots at every
// quiescent point. The script alternates two barriered phases per round —
// all trackers report completions, then all trackers request work — so the
// aggregate scheduled/completed counts at each barrier are layout- and
// interleaving-independent even though the heartbeats inside a phase race.
func TestHealthCrossLayoutSnapshots(t *testing.T) {
	const (
		trackers = 4
		deadline = 100 * time.Hour // far out: wall-clock jitter must not leak into tardiness
	)
	// Snapshot instants approach the deadline so plan requirements engage:
	// round r reads ttd = 600s - r*50s.
	snapAt := func(round int) simtime.Time {
		return simtime.Epoch.Add(deadline - 600*time.Second + time.Duration(round)*50*time.Second)
	}

	run := func(shards int) []*obs.HealthSnapshot {
		o := obs.New(obs.NewRegistry(), nil)
		// Interval effectively infinite: only the explicit SnapshotAt calls
		// below publish, keeping the comparison deterministic.
		h := o.EnableHealth(obs.HealthConfig{Interval: 1000 * time.Hour})
		cfg := shardedConfig(shards)
		cfg.Obs = o
		c, err := live.New(cfg, scheduler.NewFIFO())
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"w0", "w1", "w2", "w3"} {
			w := chainFlow(name, 0, deadline)
			p, err := plan.GenerateCapped(w, 12, priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}

		held := make([][]live.TaskID, trackers)
		var snaps []*obs.HealthSnapshot
		for round := 1; ; round++ {
			if round > 1000 {
				t.Fatalf("shards=%d: scripted drive did not converge", shards)
			}
			// Phase A: every tracker reports its completions, concurrently.
			outstanding := 0
			var wg sync.WaitGroup
			for tr := 0; tr < trackers; tr++ {
				outstanding += len(held[tr])
				wg.Add(1)
				go func(tr int) {
					defer wg.Done()
					c.DeliverHeartbeat(live.Heartbeat{Tracker: tr, Completed: held[tr]})
				}(tr)
			}
			wg.Wait()
			// Phase B: every tracker requests work, concurrently. The pending
			// set is frozen (completions all landed in phase A), so the
			// multiset of tasks handed out is deterministic.
			outs := make([][]live.Assignment, trackers)
			for tr := 0; tr < trackers; tr++ {
				wg.Add(1)
				go func(tr int) {
					defer wg.Done()
					outs[tr] = c.DeliverHeartbeat(live.Heartbeat{Tracker: tr, FreeMaps: 2, FreeReds: 1})
				}(tr)
			}
			wg.Wait()
			assigned := 0
			for tr := range outs {
				held[tr] = held[tr][:0]
				for _, a := range outs[tr] {
					held[tr] = append(held[tr], a.ID)
				}
				assigned += len(outs[tr])
			}
			snaps = append(snaps, h.SnapshotAt(snapAt(round)))
			if assigned == 0 && outstanding == 0 {
				return snaps
			}
		}
	}

	legacy := run(1)
	sharded := run(4)
	if len(legacy) != len(sharded) {
		t.Fatalf("rounds diverged: legacy %d, sharded %d", len(legacy), len(sharded))
	}
	for i := range legacy {
		if !reflect.DeepEqual(legacy[i], sharded[i]) {
			t.Errorf("round %d snapshots differ:\nlegacy  %+v\nsharded %+v", i+1, legacy[i], sharded[i])
		}
	}
	// The drive must have produced non-trivial health data, not vacuously
	// equal empty snapshots.
	final := legacy[len(legacy)-1]
	if len(final.Workflows) != 4 {
		t.Fatalf("final snapshot has %d workflows, want 4", len(final.Workflows))
	}
	for _, row := range final.Workflows {
		if !row.Done || row.Completed != row.Total || !row.HasPlan {
			t.Errorf("final row = %+v, want done with all tasks completed and a plan", row)
		}
	}
}
