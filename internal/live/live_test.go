package live_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// fastConfig runs virtual seconds as ~0.2ms wall time with 2ms heartbeats.
func fastConfig() live.Config {
	return live.Config{
		Nodes:              4,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		HeartbeatInterval:  2 * time.Millisecond,
		TimeScale:          0.0002,
	}
}

func chainFlow(name string, rel, deadline time.Duration) *workflow.Workflow {
	return workflow.NewBuilder(name).
		Job("a", 6, 2, 10*time.Second, 20*time.Second).
		Job("b", 4, 2, 10*time.Second, 20*time.Second, "a").
		MustBuild(simtime.Epoch.Add(rel), simtime.Epoch.Add(deadline))
}

func runLive(t *testing.T, pol cluster.Policy, withPlans bool, flows ...*workflow.Workflow) *live.Result {
	t.Helper()
	c, err := live.New(fastConfig(), pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range flows {
		var p *plan.Plan
		if withPlans {
			p, err = plan.GenerateCapped(w, 12, priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Submit(w, p); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLiveRunsWorkflowToCompletion(t *testing.T) {
	res := runLive(t, core.NewScheduler(core.Options{Seed: 1}), true,
		chainFlow("w", 0, time.Hour))
	if len(res.Workflows) != 1 {
		t.Fatalf("workflows = %d", len(res.Workflows))
	}
	w := res.Workflows[0]
	if !w.Met {
		t.Errorf("missed a one-hour deadline: finish %v", w.Finish)
	}
	if res.TasksStarted != 14 {
		t.Errorf("TasksStarted = %d, want 14", res.TasksStarted)
	}
	// The chain needs at least its critical path (60s virtual) plus
	// heartbeat latency; it cannot legitimately finish faster.
	if w.Workspan < 60*time.Second {
		t.Errorf("workspan %v below the 60s critical path", w.Workspan)
	}
}

func TestLiveEverySchedulerCompletes(t *testing.T) {
	pols := map[string]func() cluster.Policy{
		"FIFO":     func() cluster.Policy { return scheduler.NewFIFO() },
		"Fair":     func() cluster.Policy { return scheduler.NewFair() },
		"EDF":      func() cluster.Policy { return scheduler.NewEDF() },
		"WOHA-LPF": func() cluster.Policy { return core.NewScheduler(core.Options{Seed: 2, PolicyName: "LPF"}) },
	}
	for name, mk := range pols {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := runLive(t, mk(), name == "WOHA-LPF",
				chainFlow("w1", 0, 2*time.Hour),
				chainFlow("w2", 10*time.Second, 2*time.Hour),
				chainFlow("w3", 20*time.Second, 2*time.Hour))
			if res.TasksStarted != 3*14 {
				t.Errorf("TasksStarted = %d, want 42", res.TasksStarted)
			}
			for _, w := range res.Workflows {
				if w.Finish == 0 {
					t.Errorf("%s never finished", w.Name)
				}
				if !w.Met {
					t.Errorf("%s missed a two-hour deadline (finish %v)", w.Name, w.Finish)
				}
			}
		})
	}
}

func TestLiveRespectsReleaseTimes(t *testing.T) {
	res := runLive(t, scheduler.NewFIFO(), false,
		chainFlow("late", 2*time.Minute, 3*time.Hour))
	w := res.Workflows[0]
	if w.Finish < simtime.Epoch.Add(2*time.Minute+60*time.Second) {
		t.Errorf("finish %v earlier than release + critical path", w.Finish)
	}
}

func TestLiveContextCancellation(t *testing.T) {
	c, err := live.New(fastConfig(), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	// A workflow that would take far longer than the context allows.
	w := workflow.NewBuilder("huge").
		Job("j", 500, 100, time.Hour, time.Hour).
		MustBuild(0, simtime.Epoch.Add(1000*time.Hour))
	if err := c.Submit(w, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Fatal("Run returned nil error after context timeout")
	}
}

func TestLiveConfigValidation(t *testing.T) {
	bad := []live.Config{
		{Nodes: 0, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, HeartbeatInterval: time.Millisecond, TimeScale: 1},
		{Nodes: 1, MapSlotsPerNode: 0, ReduceSlotsPerNode: 0, HeartbeatInterval: time.Millisecond, TimeScale: 1},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, HeartbeatInterval: 0, TimeScale: 1},
		{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, HeartbeatInterval: time.Millisecond, TimeScale: 0},
	}
	for i, cfg := range bad {
		if _, err := live.New(cfg, scheduler.NewFIFO()); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := live.New(fastConfig(), nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestLiveLifecycleErrors(t *testing.T) {
	c, err := live.New(fastConfig(), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(&workflow.Workflow{Name: "bad"}, nil); err == nil {
		t.Error("invalid workflow accepted")
	}
	if err := c.Submit(chainFlow("w", 0, time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx); err == nil {
		t.Error("second Run accepted")
	}
	if err := c.Submit(chainFlow("w2", 0, time.Hour), nil); err == nil {
		t.Error("Submit after Start accepted")
	}
}

func TestLiveEmptyRun(t *testing.T) {
	c, err := live.New(fastConfig(), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workflows) != 0 || res.TasksStarted != 0 {
		t.Errorf("empty run produced %+v", res)
	}
}

// TestLiveWOHAPrioritizesTightDeadline mirrors the ad-pipeline scenario in
// the concurrent world: under WOHA the tight workflow wins the contention.
// Timing in the live cluster is inherently noisy, so the assertion is only
// that the tight workflow finishes before the loose one by a clear margin.
func TestLiveWOHAPrioritizesTightDeadline(t *testing.T) {
	loose := workflow.NewBuilder("loose").
		Job("wide", 60, 10, 10*time.Second, 20*time.Second).
		MustBuild(0, simtime.Epoch.Add(10*time.Hour))
	tight := workflow.NewBuilder("tight").
		Job("a", 6, 2, 10*time.Second, 20*time.Second).
		Job("b", 4, 2, 10*time.Second, 20*time.Second, "a").
		MustBuild(0, simtime.Epoch.Add(3*time.Minute))

	res := runLive(t, core.NewScheduler(core.Options{Seed: 9}), true, loose, tight)
	lw, tw := res.Workflows[0], res.Workflows[1]
	if tw.Finish >= lw.Finish {
		t.Errorf("tight finished at %v, not before loose at %v", tw.Finish, lw.Finish)
	}
}

func TestTCPTransportRunsWorkflow(t *testing.T) {
	cfg := fastConfig()
	c, err := live.NewTCP(cfg, core.NewScheduler(core.Options{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.CloseTransport(); err != nil {
			t.Errorf("CloseTransport: %v", err)
		}
	}()
	w := chainFlow("tcp", 0, 2*time.Hour)
	p, err := plan.GenerateCapped(w, 12, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(w, p); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksStarted != 14 {
		t.Errorf("TasksStarted = %d, want 14", res.TasksStarted)
	}
	if !res.Workflows[0].Met {
		t.Errorf("missed the two-hour deadline over TCP: finish %v", res.Workflows[0].Finish)
	}
}

func TestTCPTransportSurvivesEarlyClose(t *testing.T) {
	// Closing the transport mid-run makes heartbeats fail; trackers must
	// keep re-queueing completions without panicking, and Run must stop at
	// the context deadline rather than hang.
	cfg := fastConfig()
	c, err := live.NewTCP(cfg, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(chainFlow("w", 0, 2*time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		_ = c.CloseTransport()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Run(ctx); err == nil {
		t.Log("run completed before the transport closed; acceptable on fast machines")
	}
}
