// Package live runs WOHA on a real concurrent mini-Hadoop instead of the
// discrete-event simulator: the JobTracker is a concurrent scheduler
// consulted by TaskTracker goroutines over periodic heartbeat messages, and
// tasks execute as timed goroutines.
//
// The same cluster.Policy implementations (WOHA, FIFO, Fair, EDF) drive both
// worlds. Virtual workflow time maps to wall time through Config.TimeScale,
// so a 45-minute workflow can run in tens of milliseconds of test time while
// the control plane exchanges real messages.
//
// Two control-plane layouts are available, selected by Config.Shards. The
// legacy layout (Shards = 1) mirrors Hadoop-1's master exactly: one mutex
// serializes every heartbeat. The sharded layout (the default) splits the
// master into an admission/completion/assignment pipeline — per-workflow
// bookkeeping shards, a narrow policy core fed by batched lifecycle events,
// and lock-free counters — so heartbeats from different TaskTrackers stop
// contending on one lock (see sharded.go). Both layouts produce the same
// scheduling outcomes; the equivalence is pinned by tests.
//
// The package exists to demonstrate the framework under true concurrency —
// races, heartbeat skew, out-of-order completions — rather than to produce
// reproducible numbers; the experiments all run on the deterministic
// simulator.
package live

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/workflow"
)

// Config describes the live cluster.
type Config struct {
	// Nodes, MapSlotsPerNode, ReduceSlotsPerNode mirror cluster.Config.
	Nodes              int
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	// HeartbeatInterval is the real-time period between a TaskTracker's
	// reports to the JobTracker.
	HeartbeatInterval time.Duration
	// TimeScale converts workflow (virtual) durations to wall time: a task
	// estimated at D runs for D * TimeScale. 0.001 runs a 10-second task
	// in 10ms.
	TimeScale float64
	// Shards selects the JobTracker layout: 1 runs the legacy single-mutex
	// tracker, larger values partition workflow bookkeeping across that many
	// independently locked shards with a separate policy core and lock-free
	// heartbeat fast path. 0 (the default) uses one shard per CPU
	// (GOMAXPROCS). Scheduling outcomes are identical across shard counts.
	Shards int
	// Obs attaches runtime observability to the JobTracker: heartbeat
	// latency and assignment histograms, task-assignment and workflow
	// lifecycle events. nil disables instrumentation (the default).
	Obs *obs.Obs
	// Admission is the front door consulted when each workflow's release
	// comes due, before the policy ever sees it. nil (the default) admits
	// everything on the untouched fast path. Both tracker layouts rule on
	// releases in (release time, submission index) order and on deferred
	// retries at their retry instants, so decisions match the simulator's
	// under the controller's virtual-time anchoring.
	Admission admission.Controller
}

// validate checks the cluster shape. Every violation reports in the uniform
// form "live: <field> = <value>, want <constraint>".
func (c Config) validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("live: Nodes = %d, want > 0", c.Nodes)
	}
	if c.MapSlotsPerNode < 0 {
		return fmt.Errorf("live: MapSlotsPerNode = %d, want >= 0", c.MapSlotsPerNode)
	}
	if c.ReduceSlotsPerNode < 0 {
		return fmt.Errorf("live: ReduceSlotsPerNode = %d, want >= 0", c.ReduceSlotsPerNode)
	}
	if c.MapSlotsPerNode+c.ReduceSlotsPerNode == 0 {
		return fmt.Errorf("live: MapSlotsPerNode+ReduceSlotsPerNode = 0, want > 0")
	}
	if c.HeartbeatInterval <= 0 {
		return fmt.Errorf("live: HeartbeatInterval = %v, want > 0", c.HeartbeatInterval)
	}
	if c.TimeScale <= 0 {
		return fmt.Errorf("live: TimeScale = %v, want > 0", c.TimeScale)
	}
	if c.Shards < 0 {
		return fmt.Errorf("live: Shards = %d, want >= 0", c.Shards)
	}
	return nil
}

// shardCount resolves the Shards default: one shard per CPU.
func (c Config) shardCount() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

// TaskID identifies a running task inside the live cluster.
type TaskID struct {
	Workflow int
	Job      workflow.JobID
	Type     cluster.SlotType
	Seq      int
}

// Assignment is the JobTracker's response entry to a heartbeat: run one task
// for the given wall duration.
type Assignment struct {
	ID       TaskID
	WallTime time.Duration
}

// Heartbeat is a TaskTracker's periodic report: its identity, current free
// slots, and tasks completed since the last report.
//
// Ownership: the cluster reads Completed only during the synchronous
// completion pass inside DeliverHeartbeat and never retains the slice past
// the call's return. The caller keeps ownership afterwards — but because the
// slice is read while the call is in flight, a caller that reuses the
// backing array across heartbeats must hand the cluster its own copy rather
// than a slice it truncates and refills concurrently.
type Heartbeat struct {
	Tracker   int
	FreeMaps  int
	FreeReds  int
	Completed []TaskID
}

// controlPlane is the JobTracker contract shared by the legacy single-mutex
// tracker (Shards = 1) and the sharded admission/completion/assignment
// pipeline (Shards > 1). register is pre-start only and single-threaded;
// both implementations fail loudly if it is called after the clock starts.
type controlPlane interface {
	// Heartbeat serves one TaskTracker report and returns assignments.
	Heartbeat(hb Heartbeat) []Assignment
	// register records a workflow before the cluster starts.
	register(w *workflow.Workflow, p *plan.Plan)
	// start stamps the clock origin and freezes registration.
	start()
	// ensureClock stamps the clock lazily for heartbeats delivered outside
	// Run (see Cluster.DeliverHeartbeat).
	ensureClock()
	// result snapshots the outcome.
	result() *Result
	// doneCh closes when every registered workflow has completed.
	doneCh() <-chan struct{}
	// registered reports the number of registered workflows.
	registered() int
}

// newControlPlane picks the tracker layout for cfg.
func newControlPlane(cfg Config, pol cluster.Policy) controlPlane {
	if n := cfg.shardCount(); n > 1 {
		return newShardedTracker(cfg, pol, n)
	}
	return newJobTracker(cfg, pol)
}

// Cluster is the live mini-Hadoop: one JobTracker plus Config.Nodes
// TaskTracker goroutines.
type Cluster struct {
	cfg Config
	jt  controlPlane

	trackers []*TaskTracker
	wg       sync.WaitGroup

	// transport is non-nil for clusters built with NewTCP.
	transport *tcpTransport

	started bool
}

// New builds a live cluster running pol. The policy must not be shared with
// any other cluster.
func New(cfg Config, pol cluster.Policy) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("live: nil policy")
	}
	c := &Cluster{cfg: cfg, jt: newControlPlane(cfg, pol)}
	cfg.Obs.Health().SetSlots(cfg.Nodes*cfg.MapSlotsPerNode, cfg.Nodes*cfg.ReduceSlotsPerNode)
	for i := 0; i < cfg.Nodes; i++ {
		hb := func(h Heartbeat) ([]Assignment, error) { return c.jt.Heartbeat(h), nil }
		c.trackers = append(c.trackers, newTaskTracker(i, cfg, hb))
	}
	return c, nil
}

// Submit registers a workflow before Start. p may be nil for non-WOHA
// policies. Releases are honored relative to the cluster start instant.
func (c *Cluster) Submit(w *workflow.Workflow, p *plan.Plan) error {
	if c.started {
		return fmt.Errorf("live: Submit after Start")
	}
	if err := w.Validated(); err != nil {
		return fmt.Errorf("live: %w", err)
	}
	idx := c.jt.registered()
	c.jt.register(w, p)
	c.cfg.Obs.Health().Register(idx, w.Name, w.Release, w.Deadline, w.TotalTasks(), p)
	return nil
}

// DeliverHeartbeat injects one heartbeat directly into the JobTracker,
// bypassing the TaskTracker goroutines and any transport. It exists for
// benchmarks and tests that measure the scheduling path in isolation; the
// virtual clock is stamped lazily on first use so the cluster need not be
// started. After the first delivery registration is frozen, exactly as
// after Run.
func (c *Cluster) DeliverHeartbeat(hb Heartbeat) []Assignment {
	c.jt.ensureClock()
	return c.jt.Heartbeat(hb)
}

// Run starts the cluster, waits until every submitted workflow completes (or
// ctx is done), stops the trackers, and returns the outcome.
func (c *Cluster) Run(ctx context.Context) (*Result, error) {
	if c.started {
		return nil, fmt.Errorf("live: Run called twice")
	}
	c.started = true
	if c.jt.registered() == 0 {
		return c.jt.result(), nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	c.jt.start()
	for _, tt := range c.trackers {
		c.wg.Add(1)
		go func(tt *TaskTracker) {
			defer c.wg.Done()
			tt.run(runCtx)
		}(tt)
	}

	var err error
	select {
	case <-c.jt.doneCh():
	case <-ctx.Done():
		err = fmt.Errorf("live: %w", ctx.Err())
	}
	cancel()
	c.wg.Wait()
	if err != nil {
		return nil, err
	}
	return c.jt.result(), nil
}

// Result mirrors the simulator's per-workflow outcome for the live run.
type Result struct {
	// Policy names the scheduler.
	Policy string
	// Workflows holds per-workflow outcomes in submission order; times are
	// in virtual (workflow) time.
	Workflows []cluster.WorkflowResult
	// TasksStarted counts every task executed.
	TasksStarted int
}

// DeadlineMisses counts missed deadlines.
func (r *Result) DeadlineMisses() int {
	n := 0
	for _, w := range r.Workflows {
		if !w.Met {
			n++
		}
	}
	return n
}
