package live

import (
	"context"
	"sync"
	"time"

	"repro/internal/cluster"
)

// TaskTracker is one worker node: it owns a fixed number of map and reduce
// slots, executes assigned tasks as timed goroutines, and reports
// completions and free slots to the JobTracker on a periodic heartbeat —
// the only moment it receives new work, as in Hadoop-1.
// heartbeatFunc delivers one heartbeat to the master and returns its
// assignments. The direct transport calls the JobTracker in-process; the TCP
// transport goes through net/rpc.
type heartbeatFunc func(Heartbeat) ([]Assignment, error)

type TaskTracker struct {
	id  int
	cfg Config
	hb  heartbeatFunc

	mu        sync.Mutex
	completed []TaskID

	freeMaps int
	freeReds int

	tasks sync.WaitGroup
}

func newTaskTracker(id int, cfg Config, hb heartbeatFunc) *TaskTracker {
	return &TaskTracker{
		id:       id,
		cfg:      cfg,
		hb:       hb,
		freeMaps: cfg.MapSlotsPerNode,
		freeReds: cfg.ReduceSlotsPerNode,
	}
}

// run drives the heartbeat loop until ctx is done, then waits for in-flight
// tasks to finish.
func (t *TaskTracker) run(ctx context.Context) {
	ticker := time.NewTicker(t.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			t.tasks.Wait()
			return
		case <-ticker.C:
			t.heartbeat(ctx)
		}
	}
}

// heartbeat harvests completions, reports to the JobTracker, and launches
// any assigned tasks.
func (t *TaskTracker) heartbeat(ctx context.Context) {
	t.mu.Lock()
	done := t.completed
	t.completed = nil
	// Completed tasks free their slots in the same heartbeat that reports
	// them, mirroring Hadoop's slot lifecycle.
	for _, id := range done {
		if id.Type == cluster.MapSlot {
			t.freeMaps++
		} else {
			t.freeReds++
		}
	}
	hb := Heartbeat{
		Tracker:   t.id,
		FreeMaps:  t.freeMaps,
		FreeReds:  t.freeReds,
		Completed: done,
	}
	t.mu.Unlock()

	assignments, err := t.hb(hb)
	if err != nil {
		// A lost heartbeat drops this round's completions on the floor in
		// real Hadoop too; re-queue them so the next beat reports them.
		t.mu.Lock()
		for _, id := range hb.Completed {
			if id.Type == cluster.MapSlot {
				t.freeMaps--
			} else {
				t.freeReds--
			}
		}
		t.completed = append(t.completed, hb.Completed...)
		t.mu.Unlock()
		return
	}

	t.mu.Lock()
	for _, a := range assignments {
		if a.ID.Type == cluster.MapSlot {
			t.freeMaps--
		} else {
			t.freeReds--
		}
		t.launch(ctx, a)
	}
	t.mu.Unlock()
}

// launch executes one task: sleep for its wall duration (or until shutdown),
// then queue the completion for the next heartbeat. Even on shutdown the
// completion is recorded so slot accounting stays consistent.
func (t *TaskTracker) launch(ctx context.Context, a Assignment) {
	t.tasks.Add(1)
	go func() {
		defer t.tasks.Done()
		timer := time.NewTimer(a.WallTime)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
		}
		t.mu.Lock()
		t.completed = append(t.completed, a.ID)
		t.mu.Unlock()
	}()
}
