package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// shardedTracker is the concurrent live master (Config.Shards > 1). Where
// the legacy JobTracker funnels every heartbeat through one mutex, this
// tracker splits the work into three layers with independent
// synchronization:
//
//  1. Bookkeeping (admission + completion accounting) takes the plane lock
//     shared plus the owning workflow's shard lock, so heartbeats reporting
//     completions for workflows on different shards run in parallel. State
//     transitions that the policy must learn about are recorded as events,
//     not delivered inline.
//  2. The assignment pipeline takes the policy-core lock and then the plane
//     lock exclusive, drains the event queue into the policy (which is
//     contractually single-threaded), and runs the NextTask loops. The
//     exclusive plane lock means the policy reads workflow state with no
//     bookkeeping write racing it.
//  3. Counters every heartbeat touches unconditionally — virtual clock,
//     sequence, started, remaining, the schedulable-work hint, and the
//     next-release cursor — are atomics, so a heartbeat with nothing to do
//     (no completions, nothing due, no assignable work) finishes without
//     acquiring any lock at all.
//
// Lock ordering: core.mu → plane (write) and plane (read) → shard.mu; a
// shard lock is never held while taking core.mu or the plane write lock.
//
// Scheduling outcomes are identical to the legacy tracker: events reach the
// policy in each workflow's transition order (pushes happen under the shard
// lock), and every event is applied before the next assignment decision.
type shardedTracker struct {
	cfg Config

	// plane is the tracker-wide reader/writer lock that separates the two
	// phases: bookkeeping holds it shared (per-workflow exclusion comes from
	// the shard locks), the assignment pipeline and result snapshots hold it
	// exclusive.
	plane sync.RWMutex

	shards []*wfShard
	wfs    []*liveWorkflow

	core   *policyCore
	events eventQueue
	rel    releaseIndex

	clock     atomic.Pointer[virtualClock]
	startOnce sync.Once
	live      atomic.Bool

	seq     atomic.Int64
	started atomic.Int64
	// remaining counts workflows not yet completed; done closes when it
	// reaches zero.
	remaining atomic.Int64
	// schedulable is the fast-path hint: an upper bound on tasks the policy
	// could start right now (pending maps of activated jobs plus pending
	// reduces of jobs whose map phase finished, minus tasks assigned). Zero
	// lets a heartbeat with free slots skip the pipeline entirely; it never
	// undercounts, so no assignment opportunity is missed.
	schedulable atomic.Int64

	// adm is the admission front door (nil admits everything). deferred
	// holds postponed decisions, guarded by defMu; nextRetry caches the
	// earliest retry instant (MaxTime = none) so the heartbeat fast path
	// checks pending retries with one atomic load, exactly like the
	// release cursor.
	adm       admission.Controller
	defMu     sync.Mutex
	deferred  []deferredRelease
	nextRetry atomic.Int64

	ins   *obs.Obs
	stats *obs.LiveStats

	done     chan struct{}
	doneOnce sync.Once
}

func newShardedTracker(cfg Config, pol cluster.Policy, nShards int) *shardedTracker {
	st := &shardedTracker{
		cfg:  cfg,
		core: newPolicyCore(pol),
		adm:  cfg.Admission,
		ins:  cfg.Obs,
		done: make(chan struct{}),
	}
	st.nextRetry.Store(int64(simtime.MaxTime))
	st.stats = cfg.Obs.NewLiveStats(nShards)
	st.shards = make([]*wfShard, nShards)
	for i := range st.shards {
		st.shards[i] = &wfShard{id: i}
	}
	return st
}

// register records a workflow before the cluster starts, pinning it to a
// shard round-robin. Registration is single-threaded and pre-start only; it
// takes no lock and panics if the clock has already been stamped.
func (st *shardedTracker) register(w *workflow.Workflow, p *plan.Plan) {
	if st.live.Load() {
		panic(fmt.Sprintf("live: register(%q) after the cluster started; Submit every workflow before Run or DeliverHeartbeat", w.Name))
	}
	i := len(st.wfs)
	ws := cluster.NewWorkflowState(i, w, p)
	ws.EnableSchedIndex(nil)
	st.wfs = append(st.wfs, &liveWorkflow{
		ws:    ws,
		shard: st.shards[i%len(st.shards)],
	})
	st.remaining.Add(1)
}

// start stamps the clock origin, builds the release index, and freezes
// registration.
func (st *shardedTracker) start() { st.ensureClock() }

// ensureClock stamps the clock origin if start() has not run.
func (st *shardedTracker) ensureClock() {
	st.startOnce.Do(func() {
		st.rel.build(st.wfs)
		clk := &virtualClock{start: time.Now(), scale: st.cfg.TimeScale}
		st.clock.Store(clk)
		st.live.Store(true)
	})
}

// doneCh closes when every registered workflow has completed.
func (st *shardedTracker) doneCh() <-chan struct{} { return st.done }

// registered reports the number of registered workflows.
func (st *shardedTracker) registered() int { return len(st.wfs) }

// Heartbeat serves one TaskTracker report through the three-layer pipeline:
// lock-free clock/cursor reads, shared-lock bookkeeping only when the report
// carries completions or a release came due, and the exclusive assignment
// pipeline only when policy events are pending or free slots meet
// schedulable work.
func (st *shardedTracker) Heartbeat(hb Heartbeat) []Assignment {
	var t0 time.Time
	if st.ins != nil {
		t0 = time.Now()
	}
	clk := st.clock.Load()
	if clk == nil {
		st.ensureClock()
		clk = st.clock.Load()
	}
	now := clk.now()

	locked := false
	due, retries := st.rel.due(now), st.dueRetries(now)
	if due != nil || retries != nil || len(hb.Completed) > 0 {
		st.bookkeep(due, retries, hb.Completed, hb.Tracker, now)
		locked = true
	}

	var out []Assignment
	if st.events.pending() || (hb.FreeMaps+hb.FreeReds > 0 && st.schedulable.Load() > 0) {
		out = st.assignPhase(hb, now, clk)
		locked = true
	}
	if !locked {
		st.stats.OnFastPath()
	}
	if st.ins != nil {
		st.ins.HeartbeatServed(now, hb.Tracker, time.Since(t0), len(out))
	}
	return out
}

// bookkeep applies admissions and completion accounting under the shared
// plane lock, taking each workflow's shard lock only for its own updates.
// Completions are grouped by contiguous workflow runs so a report full of
// same-workflow tasks locks its shard once. Due releases and deferred
// retries are ruled in (decision instant, release-before-retry) merged
// order, matching the legacy tracker and the simulator's event order.
func (st *shardedTracker) bookkeep(due []int, retries []deferredRelease, completed []TaskID, tracker int, now simtime.Time) {
	st.plane.RLock()
	i, j := 0, 0
	for i < len(due) || j < len(retries) {
		if i < len(due) && (j >= len(retries) || st.wfs[due[i]].ws.Spec.Release <= retries[j].at) {
			st.rule(st.wfs[due[i]], now)
			i++
		} else {
			st.rule(st.wfs[retries[j].wf], now)
			j++
		}
	}
	for i := 0; i < len(completed); {
		wi := completed[i].Workflow
		j := i + 1
		for j < len(completed) && completed[j].Workflow == wi {
			j++
		}
		st.completeGroup(st.wfs[wi], completed[i:j], tracker, now)
		i = j
	}
	st.plane.RUnlock()
}

// rule consults the admission front door for one due submission and applies
// the verdict; with no controller every submission admits on the original
// path. Called under the shared plane lock; the controller synchronizes
// itself and takes no tracker locks, so concurrent heartbeats' rulings
// serialize inside it.
func (st *shardedTracker) rule(lw *liveWorkflow, now simtime.Time) {
	if st.adm == nil {
		st.admit(lw, now)
		return
	}
	ws := lw.ws
	switch d := st.adm.Decide(ws.Spec, ws.Plan, now); d.Verdict {
	case admission.Defer:
		retry := d.RetryAt
		if retry <= now {
			retry = now + 1
		}
		st.addDeferred(deferredRelease{wf: ws.Index, at: retry})
	case admission.Reject:
		st.lockShard(lw.shard)
		ws.Rejected = true
		ws.RejectReason = d.Reason
		ws.CounterOffer = d.CounterOffer
		ws.Done = true
		lw.shard.mu.Unlock()
		if st.remaining.Add(-1) == 0 {
			st.doneOnce.Do(func() { close(st.done) })
		}
	default:
		st.admit(lw, now)
	}
}

// addDeferred queues one postponed decision and lowers the fast-path retry
// hint. defMu is a leaf lock.
func (st *shardedTracker) addDeferred(d deferredRelease) {
	st.defMu.Lock()
	st.deferred = append(st.deferred, d)
	if simtime.Time(st.nextRetry.Load()) > d.at {
		st.nextRetry.Store(int64(d.at))
	}
	st.defMu.Unlock()
}

// dueRetries claims every deferred decision whose retry instant has arrived,
// returning them sorted by (retry instant, workflow index), or nil (the
// common case, one atomic load).
func (st *shardedTracker) dueRetries(now simtime.Time) []deferredRelease {
	if simtime.Time(st.nextRetry.Load()) > now {
		return nil
	}
	st.defMu.Lock()
	var out []deferredRelease
	kept := st.deferred[:0]
	for _, d := range st.deferred {
		if d.at <= now {
			out = append(out, d)
		} else {
			kept = append(kept, d)
		}
	}
	st.deferred = kept
	next := simtime.MaxTime
	for _, d := range kept {
		if d.at < next {
			next = d.at
		}
	}
	st.nextRetry.Store(int64(next))
	st.defMu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].at != out[b].at {
			return out[a].at < out[b].at
		}
		return out[a].wf < out[b].wf
	})
	return out
}

// admit marks a released workflow's root jobs ready and records the release
// for the policy core. The event is pushed under the shard lock, so it
// cannot interleave with this workflow's completion events.
func (st *shardedTracker) admit(lw *liveWorkflow, now simtime.Time) {
	st.lockShard(lw.shard)
	ws := lw.ws
	for _, r := range ws.Spec.RootIDs() {
		js := &ws.Jobs[r]
		js.Ready = true
		js.ActivatedAt = now
		ws.RefreshJob(r)
	}
	st.events.push(policyEvent{kind: evWorkflowReleased, wf: lw, now: now})
	lw.shard.mu.Unlock()
}

// completeGroup applies one workflow's reported completions under its shard
// lock: slot counters, reduce-phase unblocking, dependent activation, and
// workflow-finish detection via the O(1) remaining-task countdown.
func (st *shardedTracker) completeGroup(lw *liveWorkflow, ids []TaskID, tracker int, now simtime.Time) {
	st.lockShard(lw.shard)
	ws := lw.ws
	for _, id := range ids {
		js := &ws.Jobs[id.Job]
		if id.Type == cluster.MapSlot {
			js.RunningMaps--
			js.DoneMaps++
		} else {
			js.RunningReduces--
			js.DoneReduces++
		}
		ws.RunningTasks--
		ws.RefreshJob(id.Job)
		st.ins.TaskCompleted(now, ws.Index, int(id.Job), int(id.Type), tracker)
		if id.Type == cluster.MapSlot && js.MapsDone() && js.PendingReduces > 0 {
			st.events.push(policyEvent{kind: evReducesReady, wf: lw, job: id.Job, now: now})
		}
		if js.Completed() {
			st.activateDependents(lw, id.Job, now)
		}
		if ws.TaskDone() == 0 && !ws.Done {
			ws.Done = true
			ws.FinishTime = now
			lw.finish = now
			st.events.push(policyEvent{kind: evWorkflowCompleted, wf: lw, now: now})
			if st.adm != nil {
				// The controller is a leaf in the lock order: it takes no
				// tracker locks, so releasing the commitment under the shard
				// lock cannot cycle.
				st.adm.Complete(ws.Spec, now)
			}
			if st.remaining.Add(-1) == 0 {
				st.doneOnce.Do(func() { close(st.done) })
			}
		}
	}
	lw.shard.mu.Unlock()
}

// activateDependents readies every dependent of the completed job whose
// prerequisites all finished, recording each activation for the policy core.
// The caller holds the workflow's shard lock.
func (st *shardedTracker) activateDependents(lw *liveWorkflow, job workflow.JobID, now simtime.Time) {
	ws := lw.ws
	for _, d := range ws.Spec.DependentsOf(job) {
		dj := &ws.Jobs[d]
		if dj.Ready {
			continue
		}
		ready := true
		for _, p := range ws.Spec.Jobs[d].Prereqs {
			if !ws.Jobs[p].Completed() {
				ready = false
				break
			}
		}
		if ready {
			dj.Ready = true
			dj.ActivatedAt = now
			ws.RefreshJob(d)
			st.events.push(policyEvent{kind: evJobActivated, wf: lw, job: d, now: now})
		}
	}
}

// assignPhase is the exclusive pipeline: drain pending events into the
// policy, then run the legacy assignment loops. Holding core.mu serializes
// the single-threaded policy; holding the plane write lock freezes all
// bookkeeping so the policy's reads of workflow state are race-free.
func (st *shardedTracker) assignPhase(hb Heartbeat, now simtime.Time, clk *virtualClock) []Assignment {
	st.lockPipeline()
	defer func() {
		st.plane.Unlock()
		st.core.mu.Unlock()
	}()
	st.drainEvents()
	var out []Assignment
	for n := hb.FreeMaps; n > 0; n-- {
		a, ok := st.assignOne(cluster.MapSlot, hb.Tracker, now, clk)
		if !ok {
			break
		}
		out = append(out, a)
	}
	for n := hb.FreeReds; n > 0; n-- {
		a, ok := st.assignOne(cluster.ReduceSlot, hb.Tracker, now, clk)
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// lockShard takes one shard's lock, recording the wait when instrumented.
func (st *shardedTracker) lockShard(sh *wfShard) {
	if st.stats == nil {
		sh.mu.Lock()
		return
	}
	t0 := time.Now()
	sh.mu.Lock()
	st.stats.OnShardLockWait(time.Since(t0))
}

// lockPipeline takes the policy-core and exclusive plane locks, in that
// order, recording the combined wait when instrumented.
func (st *shardedTracker) lockPipeline() {
	if st.stats == nil {
		st.core.mu.Lock()
		st.plane.Lock()
		return
	}
	t0 := time.Now()
	st.core.mu.Lock()
	st.plane.Lock()
	st.stats.OnPipelineLockWait(time.Since(t0))
}

// drainEvents applies every queued lifecycle event to the policy and folds
// the schedulable-work deltas into the fast-path hint. The caller holds
// core.mu and the plane write lock, so no push can interleave and the batch
// is complete.
func (st *shardedTracker) drainEvents() {
	if !st.events.pending() {
		return
	}
	batch := st.events.drain()
	for i := range batch {
		st.schedulable.Add(st.apply(&batch[i]))
	}
	st.stats.OnEventBatch(len(batch))
	st.events.recycle(batch)
}

// assignOne mirrors the legacy tracker's assign: consult the policy, debit
// the chosen job's pending counter, and stamp the task. The caller holds the
// pipeline locks.
func (st *shardedTracker) assignOne(slot cluster.SlotType, tracker int, now simtime.Time, clk *virtualClock) (Assignment, bool) {
	ws, job, ok := st.core.pol.NextTask(now, slot)
	if !ok {
		return Assignment{}, false
	}
	js := &ws.Jobs[job]
	var dur time.Duration
	if slot == cluster.MapSlot {
		js.PendingMaps--
		js.RunningMaps++
		dur = ws.Spec.Jobs[job].MapTime
	} else {
		js.PendingReduces--
		js.RunningReduces++
		dur = ws.Spec.Jobs[job].ReduceTime
	}
	ws.ScheduledTasks++
	ws.RunningTasks++
	ws.RefreshJob(job)
	st.started.Add(1)
	st.schedulable.Add(-1)
	seq := st.seq.Add(1)
	st.ins.TaskAssigned(now, ws.Index, int(job), int(slot), tracker, dur)
	st.core.pol.TaskStarted(ws, job, slot, now)
	return Assignment{
		ID:       TaskID{Workflow: ws.Index, Job: job, Type: slot, Seq: int(seq)},
		WallTime: clk.toWall(dur),
	}, true
}

// result snapshots the outcome. Taking the pipeline locks first flushes any
// events still queued after the final completion, so the policy and
// instrumentation see every workflow's full lifecycle before the snapshot.
func (st *shardedTracker) result() *Result {
	st.core.mu.Lock()
	st.plane.Lock()
	defer func() {
		st.plane.Unlock()
		st.core.mu.Unlock()
	}()
	st.drainEvents()
	r := &Result{Policy: st.core.pol.Name(), TasksStarted: int(st.started.Load())}
	for i, lw := range st.wfs {
		ws := lw.ws
		wr := cluster.WorkflowResult{
			Name:     ws.Spec.Name,
			Index:    i,
			Release:  ws.Spec.Release,
			Deadline: ws.Spec.Deadline,
			Finish:   lw.finish,
		}
		if ws.Rejected {
			wr.Rejected = true
			wr.RejectReason = ws.RejectReason
			wr.CounterOffer = ws.CounterOffer
			r.Workflows = append(r.Workflows, wr)
			continue
		}
		wr.Workspan = wr.Finish.Sub(wr.Release)
		if wr.Finish > wr.Deadline {
			wr.Tardiness = wr.Finish.Sub(wr.Deadline)
		}
		wr.Met = wr.Tardiness == 0
		r.Workflows = append(r.Workflows, wr)
	}
	return r
}
