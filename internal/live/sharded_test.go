package live_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// shardedConfig is fastConfig with the sharded tracker forced on, so the
// tests exercise the concurrent pipeline even on single-core hosts where the
// GOMAXPROCS default would select the legacy layout.
func shardedConfig(shards int) live.Config {
	cfg := fastConfig()
	cfg.Shards = shards
	return cfg
}

// driveScripted runs a deterministic single-driver heartbeat script against
// a cluster: every round completes the previous round's assignments and
// offers the given slots, until an idle round follows an empty completion
// report. It returns the full assignment stream in arrival order.
func driveScripted(t *testing.T, c *live.Cluster, freeMaps, freeReds int) []live.Assignment {
	t.Helper()
	var stream []live.Assignment
	var held []live.TaskID
	for round := 0; ; round++ {
		if round > 10000 {
			t.Fatal("scripted drive did not converge")
		}
		out := c.DeliverHeartbeat(live.Heartbeat{
			Tracker: 0, FreeMaps: freeMaps, FreeReds: freeReds, Completed: held,
		})
		if len(out) == 0 && len(held) == 0 {
			return stream
		}
		held = held[:0]
		for _, a := range out {
			stream = append(stream, a)
			held = append(held, a.ID)
		}
	}
}

// TestShardedMatchesLegacyScripted pins outcome equivalence in the strongest
// form: under a time-independent policy (FIFO ignores the clock) and a
// serial heartbeat script, the sharded tracker must produce byte-identical
// assignment streams to the legacy single-mutex tracker, for every shard
// count.
func TestShardedMatchesLegacyScripted(t *testing.T) {
	build := func(shards int) *live.Cluster {
		c, err := live.New(shardedConfig(shards), scheduler.NewFIFO())
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []*workflow.Workflow{
			chainFlow("w1", 0, 2*time.Hour),
			chainFlow("w2", 0, 2*time.Hour),
			chainFlow("w3", 0, 2*time.Hour),
		} {
			if err := c.Submit(w, nil); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	want := driveScripted(t, build(1), 2, 1)
	if len(want) != 3*14 {
		t.Fatalf("legacy stream has %d assignments, want 42", len(want))
	}
	for _, shards := range []int{2, 4, 8} {
		got := driveScripted(t, build(shards), 2, 1)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Shards=%d assignment stream diverges from legacy (%d vs %d assignments)",
				shards, len(got), len(want))
		}
	}
}

// TestShardedEquivalenceAcrossShardCounts runs the same seeded WOHA workload
// to completion under every shard count and checks the per-workflow deadline
// outcomes agree: timing in the live cluster is noisy, but with these
// margins every workflow must meet its deadline identically everywhere.
func TestShardedEquivalenceAcrossShardCounts(t *testing.T) {
	flows := func() []*workflow.Workflow {
		return []*workflow.Workflow{
			chainFlow("w1", 0, 2*time.Hour),
			chainFlow("w2", 10*time.Second, 2*time.Hour),
			chainFlow("w3", 20*time.Second, 2*time.Hour),
		}
	}
	var baseline []bool
	for _, shards := range []int{1, 2, 8} {
		c, err := live.New(shardedConfig(shards), core.NewScheduler(core.Options{Seed: 7}))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range flows() {
			p, err := plan.GenerateCapped(w, 12, priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := c.Run(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		if res.TasksStarted != 3*14 {
			t.Errorf("Shards=%d: TasksStarted = %d, want 42", shards, res.TasksStarted)
		}
		met := make([]bool, len(res.Workflows))
		for i, w := range res.Workflows {
			if w.Finish == 0 {
				t.Errorf("Shards=%d: %s never finished", shards, w.Name)
			}
			met[i] = w.Met
		}
		if baseline == nil {
			baseline = met
			continue
		}
		if !reflect.DeepEqual(met, baseline) {
			t.Errorf("Shards=%d deadline outcomes %v differ from Shards=1 %v", shards, met, baseline)
		}
	}
}

// TestShardedConcurrentDirectHeartbeats hammers the sharded tracker with
// concurrent DeliverHeartbeat callers that assign and complete tasks, then
// drains serially and checks nothing was lost. Run under -race this covers
// the shard/pipeline/fast-path synchronization.
func TestShardedConcurrentDirectHeartbeats(t *testing.T) {
	c, err := live.New(shardedConfig(4), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	const flows = 8
	for i := 0; i < flows; i++ {
		w := workflow.NewBuilder("w").
			Job("j", 6, 2, 10*time.Second, 20*time.Second).
			MustBuild(0, simtime.Epoch.Add(time.Hour))
		if err := c.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	leftovers := make([][]live.TaskID, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(tr int) {
			defer wg.Done()
			var held []live.TaskID
			for i := 0; i < 300; i++ {
				hb := live.Heartbeat{Tracker: tr, Completed: held}
				// Alternate busy reports (fast path) with slot offers.
				if i%2 == 0 {
					hb.FreeMaps, hb.FreeReds = 2, 1
				}
				held = held[:0]
				for _, a := range c.DeliverHeartbeat(hb) {
					held = append(held, a.ID)
				}
			}
			leftovers[tr] = held
		}(g)
	}
	wg.Wait()

	// Complete whatever the workers still held, then drain to completion.
	var held []live.TaskID
	for _, l := range leftovers {
		held = append(held, l...)
	}
	for round := 0; ; round++ {
		if round > 10000 {
			t.Fatal("drain did not converge")
		}
		out := c.DeliverHeartbeat(live.Heartbeat{
			Tracker: 0, FreeMaps: 8, FreeReds: 4, Completed: held,
		})
		if len(out) == 0 && len(held) == 0 {
			break
		}
		held = held[:0]
		for _, a := range out {
			held = append(held, a.ID)
		}
	}

	// Every workflow finished, so Run returns the final snapshot instantly.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksStarted != flows*8 {
		t.Errorf("TasksStarted = %d, want %d", res.TasksStarted, flows*8)
	}
	for _, w := range res.Workflows {
		if w.Finish == 0 {
			t.Errorf("%s never finished", w.Name)
		}
	}
}

// TestShardedRunWithTrackers runs the full TaskTracker goroutine cluster on
// the sharded layout (the path Run exercises on multi-core hosts).
func TestShardedRunWithTrackers(t *testing.T) {
	c, err := live.New(shardedConfig(4), scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*workflow.Workflow{
		chainFlow("w1", 0, 2*time.Hour),
		chainFlow("w2", 10*time.Second, 2*time.Hour),
	} {
		if err := c.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksStarted != 2*14 {
		t.Errorf("TasksStarted = %d, want 28", res.TasksStarted)
	}
	for _, w := range res.Workflows {
		if !w.Met {
			t.Errorf("%s missed a two-hour deadline (finish %v)", w.Name, w.Finish)
		}
	}
}

// TestRegisterAfterStartPanics pins the loud failure both tracker layouts
// promise when registration races the running cluster.
func TestRegisterAfterStartPanics(t *testing.T) {
	for _, shards := range []int{1, 4} {
		c, err := live.New(shardedConfig(shards), scheduler.NewFIFO())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(chainFlow("w", 0, time.Hour), nil); err != nil {
			t.Fatal(err)
		}
		// Freeze registration the way tests and benchmarks do: a direct
		// heartbeat stamps the clock.
		c.DeliverHeartbeat(live.Heartbeat{Tracker: 0})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shards=%d: register after start did not panic", shards)
				}
			}()
			_ = c.Submit(chainFlow("late", 0, time.Hour), nil)
		}()
	}
}

// TestShardedObsMetrics checks the sharded tracker's dedicated instruments:
// the shard-count gauge, fast-path accounting for busy heartbeats, and the
// policy event batching counters.
func TestShardedObsMetrics(t *testing.T) {
	ins := obs.New(obs.NewRegistry(), nil)
	cfg := shardedConfig(4)
	cfg.Obs = ins
	c, err := live.New(cfg, scheduler.NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(chainFlow("w", 0, time.Hour), nil); err != nil {
		t.Fatal(err)
	}
	if got := ins.Registry().Gauge(obs.MetricLiveShards, "").Value(); got != 4 {
		t.Errorf("%s = %d, want 4", obs.MetricLiveShards, got)
	}

	stream := driveScripted(t, c, 2, 1)
	if len(stream) != 14 {
		t.Fatalf("assignment stream has %d entries, want 14", len(stream))
	}
	// Busy heartbeats with nothing to report ride the lock-free fast path.
	for i := 0; i < 5; i++ {
		c.DeliverHeartbeat(live.Heartbeat{Tracker: 1})
	}
	if got := ins.Registry().Counter(obs.MetricLiveFastPathBeats, "").Value(); got < 5 {
		t.Errorf("%s = %d, want >= 5", obs.MetricLiveFastPathBeats, got)
	}
	batches := ins.Registry().Counter(obs.MetricLivePolicyBatches, "").Value()
	events := ins.Registry().Counter(obs.MetricLivePolicyEvents, "").Value()
	if batches == 0 || events == 0 {
		t.Errorf("policy batching not recorded: batches=%d events=%d", batches, events)
	}
	// Lifecycle: released (root activation rides inside it) + reduces-ready
	// for a + activated b + reduces-ready for b + completed = 5.
	if events != 5 {
		t.Errorf("%s = %d, want 5", obs.MetricLivePolicyEvents, events)
	}
}
