package live

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/simtime"
)

// wfShard is one partition of the sharded tracker's workflow state. Every
// workflow is pinned to a shard at registration (index modulo shard count);
// holding the shard's lock grants write access to the bookkeeping state of
// every workflow pinned there, so completions for workflows on different
// shards never contend.
type wfShard struct {
	id int
	mu sync.Mutex
}

// liveWorkflow is the sharded tracker's per-workflow record: the shared
// runtime state, the shard whose lock guards it, and the finish stamp.
type liveWorkflow struct {
	ws    *cluster.WorkflowState
	shard *wfShard
	// finish is written once under the shard lock when the workflow's last
	// task completes, and read by result() under the exclusive plane lock.
	finish simtime.Time
}

// releaseIndex replaces the legacy O(workflows)-per-heartbeat release scan:
// registrations are sorted by release time once at start, and heartbeats
// check a single atomic cursor against the next release time. The arrays are
// immutable after build; only the cursor moves. Claiming due workflows takes
// a small mutex, but the common case — nothing due — is one atomic load and
// one slice read.
type releaseIndex struct {
	// order holds workflow indices sorted by (release time, index); times
	// holds the matching release times, so the hot check never touches
	// workflow state.
	order []int
	times []simtime.Time

	// cursor is the first order entry not yet admitted.
	cursor atomic.Int64
	// claim serializes admissions so each workflow is released exactly once.
	claim sync.Mutex
}

// build sorts the registrations. Called once, before any heartbeat.
func (r *releaseIndex) build(wfs []*liveWorkflow) {
	r.order = make([]int, len(wfs))
	for i := range r.order {
		r.order[i] = i
	}
	sort.SliceStable(r.order, func(a, b int) bool {
		return wfs[r.order[a]].ws.Spec.Release < wfs[r.order[b]].ws.Spec.Release
	})
	r.times = make([]simtime.Time, len(r.order))
	for i, wi := range r.order {
		r.times[i] = wfs[wi].ws.Spec.Release
	}
}

// due claims every workflow whose release time has arrived and returns their
// indices in release order, or nil when nothing is due (the common case,
// which takes no lock and allocates nothing).
func (r *releaseIndex) due(now simtime.Time) []int {
	c := r.cursor.Load()
	if c >= int64(len(r.times)) || r.times[c] > now {
		return nil
	}
	r.claim.Lock()
	defer r.claim.Unlock()
	c = r.cursor.Load() // re-check: another heartbeat may have claimed
	var out []int
	for c < int64(len(r.times)) && r.times[c] <= now {
		out = append(out, r.order[c])
		c++
	}
	r.cursor.Store(c)
	return out
}

// eventQueue carries workflow lifecycle events from the bookkeeping shards
// to the policy core. Producers push while holding their workflow's shard
// lock (under the shared plane lock), which makes the queue order consistent
// with each workflow's state transitions; the assignment pipeline drains it
// under the exclusive plane lock, when no producer can be running. pending()
// is a single atomic load so the heartbeat fast path can skip the pipeline
// without touching the mutex.
type eventQueue struct {
	mu sync.Mutex
	n  atomic.Int64
	q  []policyEvent
	// spare recycles the previous drained batch to keep the steady state
	// allocation-free.
	spare []policyEvent
}

func (e *eventQueue) push(ev policyEvent) {
	e.mu.Lock()
	e.q = append(e.q, ev)
	e.n.Store(int64(len(e.q)))
	e.mu.Unlock()
}

// pending reports whether any events await the policy core.
func (e *eventQueue) pending() bool { return e.n.Load() > 0 }

// drain swaps out the queued batch. The caller must hold the exclusive plane
// lock (so no push can interleave) and should hand the batch back via
// recycle once applied.
func (e *eventQueue) drain() []policyEvent {
	e.mu.Lock()
	batch := e.q
	e.q = e.spare[:0]
	e.spare = nil
	e.n.Store(0)
	e.mu.Unlock()
	return batch
}

// recycle returns a drained batch's backing array for reuse.
func (e *eventQueue) recycle(batch []policyEvent) {
	e.mu.Lock()
	if e.spare == nil {
		e.spare = batch[:0]
	}
	e.mu.Unlock()
}
