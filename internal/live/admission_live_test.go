package live_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// decisionAudit is the introspection side of the staged pipeline (see
// admission.pipeline); the equivalence test compares full decision records,
// not just the per-workflow outcome fields.
type decisionAudit interface {
	Records() []admission.Record
}

// feasibleDoor builds a fresh feasibility controller sized to fastConfig's
// cluster. Controllers are stateful, so every layout gets its own.
func feasibleDoor(t *testing.T) admission.Controller {
	t.Helper()
	ctrl, err := admission.New(admission.Config{
		Cluster: plan.Caps{Maps: 8, Reduces: 4},
		Mode:    admission.ModeFeasible,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestAdmissionDecisionsAgreeAcrossLayouts runs the same released workload
// through the legacy tracker and the sharded tracker at several widths, each
// behind its own feasibility front door, and checks the layouts produce
// identical decision records and identical per-workflow refusal fields. The
// anchoring contract makes this exact: rulings anchor at release times, not
// at the control-plane instants the layouts reach them.
func TestAdmissionDecisionsAgreeAcrossLayouts(t *testing.T) {
	flows := func() []*workflow.Workflow {
		return []*workflow.Workflow{
			// Admits; the ledger commits a minimal slice.
			chainFlow("w1", 0, 2*time.Hour),
			// Rejects: 60s of critical path against a 50s budget, and no
			// commitment end inside the window can save it.
			chainFlow("w2", 10*time.Second, 60*time.Second),
			// Admits at the capacity left over from w1.
			chainFlow("w3", 20*time.Second, 2*time.Hour),
		}
	}
	type row struct {
		rejected bool
		reason   string
		offer    simtime.Time
	}
	var wantRows map[string]row
	var wantRecs []admission.Record
	for _, shards := range []int{1, 2, 4} {
		ctrl := feasibleDoor(t)
		cfg := shardedConfig(shards)
		cfg.Admission = ctrl
		c, err := live.New(cfg, core.NewScheduler(core.Options{Seed: 7}))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range flows() {
			p, err := plan.GenerateCapped(w, 12, priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := c.Run(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		rows := map[string]row{}
		for _, w := range res.Workflows {
			rows[w.Name] = row{rejected: w.Rejected, reason: w.RejectReason, offer: w.CounterOffer}
		}
		if !rows["w2"].rejected || rows["w1"].rejected || rows["w3"].rejected {
			t.Fatalf("Shards=%d: refusal pattern %+v, want exactly w2 rejected", shards, rows)
		}
		recs := ctrl.(decisionAudit).Records()
		if wantRows == nil {
			wantRows, wantRecs = rows, recs
			continue
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Errorf("Shards=%d: outcome rows %+v differ from legacy %+v", shards, rows, wantRows)
		}
		if !reflect.DeepEqual(recs, wantRecs) {
			t.Errorf("Shards=%d: decision records diverge from legacy:\n got %+v\nwant %+v", shards, recs, wantRecs)
		}
	}
}
