package live_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// decisionAudit is the introspection side of the staged pipeline (see
// admission.pipeline); the equivalence test compares full decision records,
// not just the per-workflow outcome fields.
type decisionAudit interface {
	Records() []admission.Record
}

// feasibleDoor builds a fresh feasibility controller sized to fastConfig's
// cluster. Controllers are stateful, so every layout gets its own.
func feasibleDoor(t *testing.T) admission.Controller {
	t.Helper()
	ctrl, err := admission.New(admission.Config{
		Cluster: plan.Caps{Maps: 8, Reduces: 4},
		Mode:    admission.ModeFeasible,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestAdmissionDecisionsAgreeAcrossLayouts runs the same released workload
// through the legacy tracker and the sharded tracker at several widths, each
// behind its own feasibility front door, and checks the layouts produce
// identical decision records and identical per-workflow refusal fields. The
// anchoring contract makes this exact: rulings anchor at release times, not
// at the control-plane instants the layouts reach them.
func TestAdmissionDecisionsAgreeAcrossLayouts(t *testing.T) {
	flows := func() []*workflow.Workflow {
		return []*workflow.Workflow{
			// Admits; the ledger commits a minimal slice.
			chainFlow("w1", 0, 2*time.Hour),
			// Rejects: 60s of critical path against a 50s budget, and no
			// commitment end inside the window can save it.
			chainFlow("w2", 10*time.Second, 60*time.Second),
			// Admits at the capacity left over from w1.
			chainFlow("w3", 20*time.Second, 2*time.Hour),
		}
	}
	type row struct {
		rejected bool
		reason   string
		offer    simtime.Time
	}
	var wantRows map[string]row
	var wantRecs []admission.Record
	for _, shards := range []int{1, 2, 4} {
		ctrl := feasibleDoor(t)
		cfg := shardedConfig(shards)
		cfg.Admission = ctrl
		c, err := live.New(cfg, core.NewScheduler(core.Options{Seed: 7}))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range flows() {
			p, err := plan.GenerateCapped(w, 12, priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := c.Run(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		rows := map[string]row{}
		for _, w := range res.Workflows {
			rows[w.Name] = row{rejected: w.Rejected, reason: w.RejectReason, offer: w.CounterOffer}
		}
		if !rows["w2"].rejected || rows["w1"].rejected || rows["w3"].rejected {
			t.Fatalf("Shards=%d: refusal pattern %+v, want exactly w2 rejected", shards, rows)
		}
		recs := ctrl.(decisionAudit).Records()
		if wantRows == nil {
			wantRows, wantRecs = rows, recs
			continue
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Errorf("Shards=%d: outcome rows %+v differ from legacy %+v", shards, rows, wantRows)
		}
		if !reflect.DeepEqual(recs, wantRecs) {
			t.Errorf("Shards=%d: decision records diverge from legacy:\n got %+v\nwant %+v", shards, recs, wantRecs)
		}
	}
}

// TestAdmissionLayoutsAgreeOnMultiTenantNames is the cross-layout equivalence
// check for the (Tenant, Name) anchor keying: two tenants submit same-named
// workflows, one of them through a rate-limited defer chain whose anchor must
// survive the other tenant's terminal rulings on the colliding names. Every
// layout must produce identical decision records — including the Tenant and
// Anchor fields — and identical per-workflow outcomes.
func TestAdmissionLayoutsAgreeOnMultiTenantNames(t *testing.T) {
	door := func() admission.Controller {
		ctrl, err := admission.New(admission.Config{
			Cluster: plan.Caps{Maps: 8, Reduces: 4},
			Mode:    admission.ModeFeasible,
			Tenants: map[string]admission.Tenant{
				// One admission per 30 virtual seconds; the bucket starts full.
				"alpha": {Rate: 120, Burst: 1},
				"beta":  {},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	flows := func() []*workflow.Workflow {
		mk := func(tenant, name string, rel, deadline time.Duration) *workflow.Workflow {
			w := chainFlow(name, rel, deadline)
			w.Tenant = tenant
			return w
		}
		return []*workflow.Workflow{
			// alpha/w1 admits and burns alpha's only token.
			mk("alpha", "w1", 0, 2*time.Hour),
			// alpha/w2 is rate-limited into a defer chain anchored ~30s out.
			mk("alpha", "w2", 5*time.Second, 2*time.Hour),
			// beta reuses both names and rules terminally while alpha/w2's
			// anchor is pending; name-only keys would wipe that chain here.
			mk("beta", "w1", 10*time.Second, 2*time.Hour),
			mk("beta", "w2", 15*time.Second, 2*time.Hour),
			// Both tenants also share a hopeless name: 60s of critical path
			// against sub-60s budgets rejects in either tenant independently.
			mk("alpha", "w3", 40*time.Second, 90*time.Second),
			mk("beta", "w3", 45*time.Second, 100*time.Second),
		}
	}
	type row struct {
		name     string
		rejected bool
		reason   string
		offer    simtime.Time
	}
	var wantRows []row
	var wantRecs []admission.Record
	for _, shards := range []int{1, 2, 4} {
		ctrl := door()
		cfg := shardedConfig(shards)
		cfg.Admission = ctrl
		c, err := live.New(cfg, core.NewScheduler(core.Options{Seed: 7}))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range flows() {
			p, err := plan.GenerateCapped(w, 12, priority.LPF{})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(w, p); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := c.Run(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		rows := make([]row, 0, len(res.Workflows))
		for _, w := range res.Workflows {
			rows = append(rows, row{name: w.Name, rejected: w.Rejected, reason: w.RejectReason, offer: w.CounterOffer})
		}
		recs := ctrl.(decisionAudit).Records()
		for i, r := range rows {
			if want := r.name == "w3"; r.rejected != want {
				t.Fatalf("Shards=%d: refusal pattern %+v, want exactly the two w3 rows rejected (row %d)", shards, rows, i)
			}
		}

		// alpha/w2's chain: a rate-limited defer followed by a retry ruling
		// anchored at the defer's RetryAt, not reset to the release — the
		// anchor survived beta's terminal rulings on the same names.
		var deferred, retried *admission.Record
		for i := range recs {
			r := &recs[i]
			if r.Tenant != "alpha" || r.Workflow != "w2" {
				continue
			}
			if r.Decision.Verdict == admission.Defer && deferred == nil {
				deferred = r
			} else if deferred != nil && retried == nil {
				retried = r
			}
		}
		if deferred == nil || retried == nil {
			t.Fatalf("Shards=%d: alpha/w2 records %+v, want a defer then a retry ruling", shards, recs)
		}
		if retried.Anchor != deferred.Decision.RetryAt {
			t.Errorf("Shards=%d: alpha/w2 retry anchored at %v, want its RetryAt %v — defer chain was reset",
				shards, retried.Anchor, deferred.Decision.RetryAt)
		}
		if shards == 1 {
			wantRows, wantRecs = rows, recs
			continue
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Errorf("Shards=%d: outcome rows %+v differ from legacy %+v", shards, rows, wantRows)
		}
		if !reflect.DeepEqual(recs, wantRecs) {
			t.Errorf("Shards=%d: decision records diverge from legacy:\n got %+v\nwant %+v", shards, recs, wantRecs)
		}
	}
}
