package admission_test

import (
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// auditor is the audit surface the pipeline controller exposes beyond the
// Controller interface.
type auditor interface {
	Records() []admission.Record
	Ledger() *admission.Ledger
}

// flow builds a single-job workflow: maps x mt then reduces x rt, released
// at rel with deadline dl (both relative to the epoch).
func flow(name string, rel, dl time.Duration, maps, reduces int, mt, rt time.Duration) *workflow.Workflow {
	return workflow.NewBuilder(name).
		Job("j", maps, reduces, mt, rt).
		MustBuild(simtime.Epoch.Add(rel), simtime.Epoch.Add(dl))
}

// tenantFlow is flow with a tenant stamped on.
func tenantFlow(tenant, name string, rel, dl time.Duration, maps, reduces int, mt, rt time.Duration) *workflow.Workflow {
	w := flow(name, rel, dl, maps, reduces, mt, rt)
	w.Tenant = tenant
	return w
}

func feasibleController(t *testing.T, caps plan.Caps, tenants map[string]admission.Tenant) admission.Controller {
	t.Helper()
	ctrl, err := admission.New(admission.Config{
		Cluster: caps,
		Mode:    admission.ModeFeasible,
		Tenants: tenants,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestAlwaysAdmitAllocs pins the open-door fast path at zero allocations per
// decision — uninstrumented and instrumented both — so the default front
// door stays invisible to the simulator's alloc budgets (enforced again by
// make ci's alloc-pins).
func TestAlwaysAdmitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts; pin holds in regular builds")
	}
	w := flow("w", 0, time.Hour, 2, 1, 10*time.Second, 10*time.Second)
	for _, tc := range []struct {
		name string
		ins  *obs.Obs
	}{
		{"uninstrumented", nil},
		{"instrumented", obs.New(obs.NewRegistry(), nil)},
	} {
		ctrl := admission.Always(tc.ins)
		if got := testing.AllocsPerRun(1000, func() {
			ctrl.Decide(w, nil, simtime.Epoch)
		}); got != 0 {
			t.Errorf("%s: %v allocs/decision, want 0", tc.name, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	caps := plan.Caps{Maps: 4, Reduces: 2}
	for _, tc := range []struct {
		name string
		cfg  admission.Config
	}{
		{"unknown mode", admission.Config{Mode: "sometimes"}},
		{"feasible without caps", admission.Config{Mode: admission.ModeFeasible}},
		{"bad margin", admission.Config{Mode: admission.ModeFeasible, Cluster: caps, Margin: 1.5}},
		{"bad tier ceiling", admission.Config{Mode: admission.ModeFeasible, Cluster: caps, TierCeilings: []float64{0}}},
		{"bad tenant", admission.Config{Mode: admission.ModeFeasible, Cluster: caps,
			Tenants: map[string]admission.Tenant{"t": {Quota: 2}}}},
	} {
		if _, err := admission.New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.cfg)
		}
	}
	// Empty and "always" modes build the open door without caps.
	for _, mode := range []string{"", admission.ModeAlways} {
		ctrl, err := admission.New(admission.Config{Mode: mode})
		if err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
		if ctrl.Name() != "always" {
			t.Errorf("mode %q built %q", mode, ctrl.Name())
		}
	}
}

// TestFeasibleAdmitCommitRelease walks the happy path: an admit commits
// capacity in the ledger and Complete releases it.
func TestFeasibleAdmitCommitRelease(t *testing.T) {
	ctrl := feasibleController(t, plan.Caps{Maps: 4, Reduces: 2}, nil)
	w := flow("w1", 0, time.Hour, 8, 2, 100*time.Second, 100*time.Second)
	d := ctrl.Decide(w, nil, simtime.Epoch)
	if d.Verdict != admission.Admit {
		t.Fatalf("Decide = %+v, want admit", d)
	}
	lg := ctrl.(auditor).Ledger()
	if got := len(lg.Committed()); got != 1 {
		t.Fatalf("ledger has %d commitments, want 1", got)
	}
	c := lg.Committed()[0]
	if c.Workflow != "w1" || c.Maps < 1 || c.Reduces < 1 || c.End <= c.Start {
		t.Errorf("commitment %+v malformed", c)
	}
	ctrl.Complete(w, simtime.Epoch.Add(time.Hour))
	if got := len(lg.Committed()); got != 0 {
		t.Errorf("ledger has %d commitments after Complete, want 0", got)
	}
	// Complete for a never-admitted workflow is a no-op.
	ctrl.Complete(flow("ghost", 0, time.Hour, 1, 0, time.Second, 0), simtime.Epoch)
}

// TestFeasibleRejectIsProvablyInfeasible pins the acceptance criterion: for
// every "infeasible" rejection, a sequential cap search over the free
// capacity the controller recorded agrees nothing could meet the deadline,
// and the counter-offer is exactly anchor + the full-capacity makespan.
func TestFeasibleRejectIsProvablyInfeasible(t *testing.T) {
	ctrl := feasibleController(t, plan.Caps{Maps: 4, Reduces: 2}, nil)
	flows := []*workflow.Workflow{
		// Admits: 300s of work against a 1h deadline; commits a minimal slice.
		flow("w1", 0, time.Hour, 8, 2, 100*time.Second, 100*time.Second),
		// Rejects: needs 500s at the remaining free capacity but has 450s.
		flow("w2", 100*time.Second, 550*time.Second, 8, 2, 100*time.Second, 100*time.Second),
	}
	byName := map[string]*workflow.Workflow{}
	for _, w := range flows {
		byName[w.Name] = w
		ctrl.Decide(w, nil, w.Release)
	}
	recs := ctrl.(auditor).Records()
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	if v := recs[0].Decision.Verdict; v != admission.Admit {
		t.Fatalf("w1 verdict %v, want admit", v)
	}
	if v, r := recs[1].Decision.Verdict, recs[1].Decision.Reason; v != admission.Reject || r != "infeasible" {
		t.Fatalf("w2 verdict %v (%s), want infeasible reject", v, r)
	}

	pol := priority.LPF{}
	for _, rec := range recs {
		if rec.Decision.Verdict != admission.Reject || rec.Decision.Reason != "infeasible" {
			continue
		}
		w := byName[rec.Workflow]
		ranks, err := pol.Rank(w)
		if err != nil {
			t.Fatal(err)
		}
		// Counter-offer exactness: anchor + makespan at the recorded free caps.
		full, err := plan.GenerateTyped(w, rec.Free, pol.Name(), ranks)
		if err != nil {
			t.Fatal(err)
		}
		if want := rec.Anchor.Add(full.Makespan); rec.Decision.CounterOffer != want {
			t.Errorf("%s: counter-offer %v, want %v", rec.Workflow, rec.Decision.CounterOffer, want)
		}
		// Provable infeasibility: the sequential search over the recorded free
		// capacity finds no cap meeting the deadline budget.
		budget := w.Deadline.Sub(rec.Anchor)
		best, _, err := plan.SequentialSearch(2, rec.Free.Total(), budget, func(mid int) (*plan.Plan, error) {
			return plan.GenerateTyped(w, plan.TypedCapsFor(rec.Free, mid), pol.Name(), ranks)
		})
		if err != nil {
			t.Fatal(err)
		}
		if best != nil {
			t.Errorf("%s: sequential search found feasible cap %d (makespan %v) inside budget %v — reject not provable",
				rec.Workflow, best.Cap, best.Makespan, budget)
		}
	}
}

// TestDeferredRetryAdmits pins the awaiting-capacity path: a workflow
// arriving while a tight-deadline admission holds the whole cluster defers
// to that commitment's end, and the retry ruling (anchored there) admits.
func TestDeferredRetryAdmits(t *testing.T) {
	ctrl := feasibleController(t, plan.Caps{Maps: 4, Reduces: 2}, nil)
	// Tight deadline: the cap search cannot shrink below the full cluster,
	// so w1 commits {4,2} over [0s, 300s).
	w1 := flow("w1", 0, 320*time.Second, 8, 2, 100*time.Second, 100*time.Second)
	if d := ctrl.Decide(w1, nil, w1.Release); d.Verdict != admission.Admit {
		t.Fatalf("w1: %+v", d)
	}
	lg := ctrl.(auditor).Ledger()
	if c := lg.Committed()[0]; c.Maps != 4 || c.Reduces != 2 {
		t.Fatalf("w1 committed %+v, want the full cluster", c)
	}
	// w3 needs 300s at full capacity; with zero free until 300s it cannot
	// start, but deferring to the commitment end still makes its deadline.
	w3 := flow("w3", 50*time.Second, 700*time.Second, 8, 2, 100*time.Second, 100*time.Second)
	d := ctrl.Decide(w3, nil, w3.Release)
	if d.Verdict != admission.Defer || d.Reason != "awaiting-capacity" {
		t.Fatalf("w3 first ruling %+v, want awaiting-capacity defer", d)
	}
	if d.RetryAt != simtime.Epoch.Add(300*time.Second) {
		t.Fatalf("w3 RetryAt %v, want w1's commitment end 300s", d.RetryAt)
	}
	d2 := ctrl.Decide(w3, nil, d.RetryAt)
	if d2.Verdict != admission.Admit {
		t.Fatalf("w3 retry ruling %+v, want admit", d2)
	}
	recs := ctrl.(auditor).Records()
	if got := recs[len(recs)-1].Anchor; got != d.RetryAt {
		t.Errorf("retry ruling anchored at %v, want the deferred RetryAt %v", got, d.RetryAt)
	}
}

// TestTokenBucketRateLimit checks the token-bucket mode: burst admits pass,
// the next submission defers until the bucket refills, and the retry ruling
// (anchored at RetryAt) admits.
func TestTokenBucketRateLimit(t *testing.T) {
	ctrl, err := admission.New(admission.Config{
		Mode:    admission.ModeTokenBucket,
		Tenants: map[string]admission.Tenant{"t": {Rate: 1, Burst: 1}}, // 1/virtual-hour
	})
	if err != nil {
		t.Fatal(err)
	}
	w1 := tenantFlow("t", "w1", 0, time.Hour, 1, 0, time.Second, 0)
	w2 := tenantFlow("t", "w2", time.Minute, 2*time.Hour, 1, 0, time.Second, 0)
	other := flow("other", 0, time.Hour, 1, 0, time.Second, 0) // untenanted: no limit
	if d := ctrl.Decide(w1, nil, w1.Release); d.Verdict != admission.Admit {
		t.Fatalf("w1: %+v", d)
	}
	if d := ctrl.Decide(other, nil, other.Release); d.Verdict != admission.Admit {
		t.Fatalf("untenanted: %+v", d)
	}
	d := ctrl.Decide(w2, nil, w2.Release)
	if d.Verdict != admission.Defer || d.Reason != "rate-limited" {
		t.Fatalf("w2: %+v, want rate-limited defer", d)
	}
	if d.RetryAt <= w2.Release || d.RetryAt > w2.Release.Add(time.Hour) {
		t.Fatalf("w2 RetryAt %v outside (release, release+1h]", d.RetryAt)
	}
	if d2 := ctrl.Decide(w2, nil, d.RetryAt); d2.Verdict != admission.Admit {
		t.Fatalf("w2 retry: %+v, want admit", d2)
	}
}

// TestQuotaShare checks the quota stage: a tenant at its committed-capacity
// share defers to its own earliest commitment end (then admits), and rejects
// outright when the deadline cannot survive the wait.
func TestQuotaShare(t *testing.T) {
	tenants := map[string]admission.Tenant{"q": {Quota: 0.1}} // floor: 2 slots
	ctrl := feasibleController(t, plan.Caps{Maps: 4, Reduces: 2}, tenants)
	w1 := tenantFlow("q", "w1", 0, time.Hour, 8, 2, 100*time.Second, 100*time.Second)
	if d := ctrl.Decide(w1, nil, w1.Release); d.Verdict != admission.Admit {
		t.Fatalf("w1: %+v", d)
	}
	end := ctrl.(auditor).Ledger().Committed()[0].End

	// Deadline before the tenant's commitment frees: reject.
	w3 := tenantFlow("q", "w3", 150*time.Second, end.Sub(simtime.Epoch)-100*time.Second, 1, 0, time.Second, 0)
	if d := ctrl.Decide(w3, nil, w3.Release); d.Verdict != admission.Reject || d.Reason != "quota-exceeded" {
		t.Fatalf("w3: %+v, want quota-exceeded reject", d)
	}

	// Deadline past it: defer to the commitment end, then admit.
	w2 := tenantFlow("q", "w2", 100*time.Second, 5000*time.Second, 1, 0, time.Second, 0)
	d := ctrl.Decide(w2, nil, w2.Release)
	if d.Verdict != admission.Defer || d.Reason != "quota-exceeded" {
		t.Fatalf("w2: %+v, want quota-exceeded defer", d)
	}
	if d.RetryAt != end {
		t.Fatalf("w2 RetryAt %v, want tenant commitment end %v", d.RetryAt, end)
	}
	if d2 := ctrl.Decide(w2, nil, d.RetryAt); d2.Verdict != admission.Admit {
		t.Fatalf("w2 retry: %+v, want admit", d2)
	}
}

// TestTierCeiling checks that a lower-priority tier sees a shrunken cluster:
// a workflow that fits the full cluster exactly is rejected for a tier-1
// tenant whose ceiling leaves too little.
func TestTierCeiling(t *testing.T) {
	caps := plan.Caps{Maps: 4, Reduces: 4}
	shape := func(tenant, name string) *workflow.Workflow {
		w := flow(name, 0, 25*time.Second, 4, 1, 10*time.Second, 10*time.Second)
		w.Tenant = tenant
		return w
	}
	// Untenanted: full cluster, one 10s map wave + one 10s reduce = 20s <= 25s.
	if d := feasibleController(t, caps, nil).Decide(shape("", "w"), nil, simtime.Epoch); d.Verdict != admission.Admit {
		t.Fatalf("untenanted: %+v, want admit", d)
	}
	// Tier 1 (ceiling 0.75 -> 3 map slots): two map waves push makespan to
	// 30s > 25s.
	tenants := map[string]admission.Tenant{"lo": {Tier: 1}}
	d := feasibleController(t, caps, tenants).Decide(shape("lo", "w"), nil, simtime.Epoch)
	if d.Verdict != admission.Reject || d.Reason != "infeasible" {
		t.Fatalf("tier 1: %+v, want infeasible reject", d)
	}
	if d.CounterOffer != simtime.Epoch.Add(30*time.Second) {
		t.Errorf("tier 1 counter-offer %v, want epoch+30s", d.CounterOffer)
	}
}

// TestDeadlinePassedRejects covers the anchor-past-deadline guard: a
// rate-limit deferral can push a workflow's retry anchor beyond its
// deadline, and the retry ruling must then reject rather than admit work
// that already lost.
func TestDeadlinePassedRejects(t *testing.T) {
	// Feasible mode stacks the rate limit in front of the ledger: 1 token
	// per 10 virtual hours, so the second submission's retry lands far past
	// its deadline.
	ctrl := feasibleController(t, plan.Caps{Maps: 4, Reduces: 2},
		map[string]admission.Tenant{"t": {Rate: 0.1, Burst: 1}})
	w1 := tenantFlow("t", "w1", 0, time.Hour, 1, 0, time.Second, 0)
	w2 := tenantFlow("t", "w2", time.Minute, time.Hour, 1, 0, time.Second, 0)
	if d := ctrl.Decide(w1, nil, w1.Release); d.Verdict != admission.Admit {
		t.Fatalf("w1: %+v", d)
	}
	d := ctrl.Decide(w2, nil, w2.Release)
	if d.Verdict != admission.Defer || d.Reason != "rate-limited" {
		t.Fatalf("w2: %+v, want rate-limited defer", d)
	}
	if d.RetryAt <= w2.Deadline {
		t.Fatalf("RetryAt %v not past deadline %v; tighten the rate", d.RetryAt, w2.Deadline)
	}
	if d2 := ctrl.Decide(w2, nil, d.RetryAt); d2.Verdict != admission.Reject || d2.Reason != "deadline-passed" {
		t.Fatalf("w2 retry: %+v, want deadline-passed reject", d2)
	}
}
