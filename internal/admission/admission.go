// Package admission is the cluster's front door: every workflow submission —
// the batch facade, the discrete-event simulator, and both live JobTracker
// layouts — flows through one AdmissionController.Decide seam before it
// reaches a scheduling queue.
//
// The paper admits every workflow unconditionally, so a hopeless deadline
// becomes a guaranteed miss that pollutes the miss-rate figures and steals
// slots from feasible work. This package turns the planner's cap search into
// an admission decision instead: a capacity Ledger tracks the map/reduce
// slot-time committed to each admitted plan, and the feasibility stage re-runs
// the cap search against the *uncommitted* remainder to admit, defer until
// capacity frees up, or reject with a counter-offered earliest feasible
// deadline. Stackable per-tenant policies — token-bucket rate limits, quota
// shares, and priority tiers — gate the feasibility stage per
// workflow.Workflow.Tenant.
//
// The default Always controller admits unconditionally with zero allocation,
// so every existing figure, parity oracle, and byte-identity test is
// untouched unless a caller opts in. See DESIGN.md §14.
package admission

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Verdict is the outcome class of one admission decision.
type Verdict uint8

// The three admission verdicts.
const (
	// Admit accepts the workflow now; the controller has committed capacity
	// for it and Complete must be called when it finishes.
	Admit Verdict = iota
	// Defer postpones the decision: re-Decide at Decision.RetryAt, when a
	// rate-limit token refills or committed capacity is scheduled to free.
	Defer
	// Reject turns the workflow away. Decision.CounterOffer, when non-zero,
	// is the earliest deadline the cluster's uncommitted capacity could have
	// honored at decision time.
	Reject
)

// String returns "admit", "defer", or "reject".
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case Defer:
		return "defer"
	default:
		return "reject"
	}
}

// Decision is one admission ruling.
type Decision struct {
	// Verdict classifies the ruling.
	Verdict Verdict
	// Reason names the stage that ruled, e.g. "rate-limited", "infeasible".
	// Empty for plain admits.
	Reason string
	// RetryAt is when a deferred workflow should be re-decided (Defer only).
	RetryAt simtime.Time
	// CounterOffer is the earliest feasible absolute deadline at decision
	// time (Reject only; zero when even that could not be computed).
	CounterOffer simtime.Time
}

// Controller is the submission seam. Implementations must be safe for
// concurrent use: the sharded live tracker may rule on releases from several
// heartbeat goroutines.
//
// Decisions are anchored in virtual time: a controller bases its first ruling
// on w.Release and a retry ruling on the RetryAt it previously returned, not
// on the control plane's possibly-later now. Submissions ruled in the same
// order therefore receive identical decisions on every control-plane layout
// (pinned by the cross-layout equivalence test in internal/live).
type Controller interface {
	// Name identifies the controller configuration ("always", "feasible",
	// "token-bucket").
	Name() string
	// Decide rules on one submission. now is the control-plane instant of
	// the ruling (metrics only; see the anchoring contract above).
	Decide(w *workflow.Workflow, p *plan.Plan, now simtime.Time) Decision
	// Complete releases capacity committed to an admitted workflow. Calling
	// it for a workflow that was never admitted is a no-op.
	Complete(w *workflow.Workflow, now simtime.Time)
}

// always is the default controller: admit everything, commit nothing.
// Decide performs no allocation (pinned by TestAlwaysAdmitAllocs and the
// make ci alloc-pins target).
type always struct {
	stats *obs.AdmissionStats
}

// Always returns the always-admit controller. ins may be nil; when
// instrumented, admissions still count into woha_admission_admitted_total
// without allocating.
func Always(ins *obs.Obs) Controller { return &always{stats: ins.NewAdmissionStats("always")} }

func (a *always) Name() string { return "always" }

func (a *always) Decide(w *workflow.Workflow, p *plan.Plan, now simtime.Time) Decision {
	a.stats.OnAdmitted(now, w.Name, 0)
	return Decision{Verdict: Admit}
}

func (a *always) Complete(w *workflow.Workflow, now simtime.Time) {}

// Tenant configures the per-tenant policy stack for one workflow.Tenant
// value. The zero value disables every stage (unlimited).
type Tenant struct {
	// Rate is the token-bucket refill rate in admissions per virtual hour;
	// 0 disables rate limiting for the tenant.
	Rate float64
	// Burst is the bucket capacity (defaults to 1 when Rate > 0). The bucket
	// starts full.
	Burst int
	// Quota caps the fraction of total cluster slot capacity the tenant may
	// hold committed concurrently, in (0, 1]; 0 disables.
	Quota float64
	// Tier is the tenant's priority tier: 0 (highest) sees the whole
	// cluster, higher tiers a shrinking fraction (Config.TierCeilings).
	Tier int
}

// Config parameterizes New.
type Config struct {
	// Cluster is the cluster's typed slot capacity the ledger accounts
	// against.
	Cluster plan.Caps
	// Mode selects the controller: "always" (the default), "feasible"
	// (ledger-backed deadline-feasibility checks), or "token-bucket"
	// (per-tenant rate limiting only, no ledger).
	Mode string
	// Policy orders jobs for the feasibility cap search (default LPF, the
	// paper's strongest priority policy).
	Policy priority.Policy
	// Margin is the safety margin applied to the feasibility search target,
	// in (0, 1]; the default 1.0 admits anything that fits exactly.
	Margin float64
	// Tenants maps workflow.Workflow.Tenant values to their policy stack.
	// Workflows with an unlisted (or empty) tenant skip the tenant stages.
	Tenants map[string]Tenant
	// TierCeilings[t] is the fraction of cluster capacity tier t may use;
	// tiers beyond the slice reuse the last entry. Default {1, 0.75, 0.5}.
	TierCeilings []float64
	// Obs attaches the woha_admission_* instruments; nil disables.
	Obs *obs.Obs
}

// Modes.
const (
	ModeAlways      = "always"
	ModeFeasible    = "feasible"
	ModeTokenBucket = "token-bucket"
)

// New builds a controller for cfg.Mode. An empty mode selects "always".
func New(cfg Config) (Controller, error) {
	switch cfg.Mode {
	case "", ModeAlways:
		return Always(cfg.Obs), nil
	case ModeFeasible, ModeTokenBucket:
	default:
		return nil, fmt.Errorf("admission: unknown mode %q (want %s, %s, or %s)",
			cfg.Mode, ModeAlways, ModeFeasible, ModeTokenBucket)
	}
	if cfg.Mode == ModeFeasible && (cfg.Cluster.Maps <= 0 || cfg.Cluster.Reduces <= 0) {
		return nil, fmt.Errorf("admission: cluster caps %+v, want both pools > 0", cfg.Cluster)
	}
	if cfg.Margin == 0 {
		cfg.Margin = 1.0
	}
	if cfg.Margin < 0 || cfg.Margin > 1 {
		return nil, fmt.Errorf("admission: margin %v, want (0, 1]", cfg.Margin)
	}
	if cfg.Policy == nil {
		cfg.Policy = priority.LPF{}
	}
	if len(cfg.TierCeilings) == 0 {
		cfg.TierCeilings = []float64{1, 0.75, 0.5}
	}
	for _, c := range cfg.TierCeilings {
		if c <= 0 || c > 1 {
			return nil, fmt.Errorf("admission: tier ceiling %v, want (0, 1]", c)
		}
	}
	for name, t := range cfg.Tenants {
		if t.Rate < 0 || t.Quota < 0 || t.Quota > 1 || t.Tier < 0 || t.Burst < 0 {
			return nil, fmt.Errorf("admission: tenant %q config %+v invalid", name, t)
		}
	}
	p := &pipeline{
		cfg:     cfg,
		ledger:  NewLedger(cfg.Cluster),
		buckets: make(map[string]*bucket),
		anchors: make(map[wfKey]anchor),
		stats:   cfg.Obs.NewAdmissionStats(cfg.Mode),
	}
	return p, nil
}

// wfKey identifies a submission for defer-anchor tracking. Tenant is part of
// the key: workflow names are only unique per tenant, and keying by name
// alone made two tenants' same-named submissions share one anchor instant
// and one maxDeferrals budget (and let either tenant's terminal ruling drop
// the other's pending anchor, resetting its defer count).
type wfKey struct {
	tenant string
	name   string
}

func keyOf(w *workflow.Workflow) wfKey {
	return wfKey{tenant: w.Tenant, name: w.Name}
}

// anchor tracks a deferred workflow's next decision instant and how many
// times it has been deferred.
type anchor struct {
	at     simtime.Time
	defers int
}

// maxDeferrals bounds a workflow's defer chain; past it the pipeline rejects
// rather than risking livelock under churning commitments.
const maxDeferrals = 16

// Record is one audit-log entry: the inputs and outcome of a ruling, exact
// enough that a sequential cap search can re-derive the decision (the
// counter-offer exactness and provable-infeasibility tests do exactly that).
type Record struct {
	// Workflow and Tenant identify the submission.
	Workflow string
	Tenant   string
	// Anchor is the virtual decision instant (release or retry time).
	Anchor simtime.Time
	// Free is the uncommitted typed capacity the feasibility stage saw at
	// the anchor (zero value when the ruling came from an earlier stage).
	Free plan.Caps
	// Decision is the ruling.
	Decision Decision
}

// pipeline is the stacking controller: rate limit → quota → tier → deadline
// feasibility, first non-admit wins. One mutex serializes rulings — admission
// is per-workflow, not per-heartbeat, so the lock is far off any hot path.
type pipeline struct {
	mu      sync.Mutex
	cfg     Config
	ledger  *Ledger
	buckets map[string]*bucket
	anchors map[wfKey]anchor
	records []Record
	stats   *obs.AdmissionStats
}

// anchorCount reports the live defer-anchor entries — one per currently
// deferred submission. The leak regression test asserts it returns to zero
// once every submission has reached a terminal ruling.
func (p *pipeline) anchorCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.anchors)
}

func (p *pipeline) Name() string { return p.cfg.Mode }

// Records returns a snapshot of the audit log, in decision order.
func (p *pipeline) Records() []Record {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Record(nil), p.records...)
}

// Ledger exposes the capacity ledger for tests and introspection. Callers
// must not mutate it.
func (p *pipeline) Ledger() *Ledger { return p.ledger }

// Decide implements Controller.
func (p *pipeline) Decide(w *workflow.Workflow, pl *plan.Plan, now simtime.Time) Decision {
	t0 := time.Now()
	p.mu.Lock()
	d, free := p.decideLocked(w)
	p.records = append(p.records, Record{
		Workflow: w.Name, Tenant: w.Tenant,
		Anchor: p.anchorFor(w), Free: free, Decision: d,
	})
	switch d.Verdict {
	case Defer:
		a := p.anchors[keyOf(w)]
		p.anchors[keyOf(w)] = anchor{at: d.RetryAt, defers: a.defers + 1}
	default:
		// Every terminal ruling — Admit, any stage's Reject, the
		// deferral-limit Reject — drops the anchor here, so the map is
		// bounded by the number of currently deferred submissions and a
		// long-lived daemon cannot accrete entries.
		delete(p.anchors, keyOf(w))
	}
	p.mu.Unlock()
	dur := time.Since(t0)
	switch d.Verdict {
	case Admit:
		p.stats.OnAdmitted(now, w.Name, dur)
	case Defer:
		p.stats.OnDeferred(now, w.Name, d.RetryAt, dur)
	default:
		p.stats.OnRejected(now, w.Name, d.Reason, d.CounterOffer, dur)
	}
	return d
}

// anchorFor returns the virtual instant this ruling is anchored at: the
// workflow's release, or the retry time of its pending deferral.
func (p *pipeline) anchorFor(w *workflow.Workflow) simtime.Time {
	if a, ok := p.anchors[keyOf(w)]; ok {
		return a.at
	}
	return w.Release
}

// decideLocked runs the policy stack. It returns the ruling plus the free
// capacity the feasibility stage observed (zero if never reached).
func (p *pipeline) decideLocked(w *workflow.Workflow) (Decision, plan.Caps) {
	at := p.anchorFor(w)
	if p.anchors[keyOf(w)].defers >= maxDeferrals {
		return Decision{Verdict: Reject, Reason: "deferral-limit"}, plan.Caps{}
	}
	tn, hasTenant := p.cfg.Tenants[w.Tenant]

	// Stage 1: token-bucket rate limit.
	if hasTenant && tn.Rate > 0 {
		b := p.bucketFor(w.Tenant, tn)
		if wait := b.wait(at); wait > 0 {
			return Decision{Verdict: Defer, Reason: "rate-limited", RetryAt: at.Add(wait)}, plan.Caps{}
		}
	}
	if p.cfg.Mode == ModeTokenBucket {
		// Rate limiting is the whole pipeline in this mode; no ledger.
		p.takeToken(w.Tenant, tn, hasTenant, at)
		return Decision{Verdict: Admit}, plan.Caps{}
	}

	// Expire commitments whose reserved window has fully passed; a workflow
	// still running past its estimate no longer holds a reservation.
	p.ledger.Expire(at)

	// Stage 2: quota share — the tenant's concurrent committed slot peak.
	if hasTenant && tn.Quota > 0 {
		if d, ok := p.quotaStage(w, tn, at); !ok {
			return d, plan.Caps{}
		}
	}

	// Stage 3: priority tier shrinks the capacity the feasibility search may
	// claim.
	eff := p.effectiveCluster(tn, hasTenant)

	// Stage 4: deadline feasibility against uncommitted capacity.
	d, free := p.feasibilityStage(w, eff, at)
	if d.Verdict == Admit {
		p.takeToken(w.Tenant, tn, hasTenant, at)
	}
	return d, free
}

// bucketFor returns the tenant's token bucket, creating it full.
func (p *pipeline) bucketFor(tenant string, tn Tenant) *bucket {
	b := p.buckets[tenant]
	if b == nil {
		burst := tn.Burst
		if burst <= 0 {
			burst = 1
		}
		b = &bucket{rate: tn.Rate / float64(time.Hour), burst: float64(burst), tokens: float64(burst)}
		p.buckets[tenant] = b
	}
	return b
}

// takeToken debits one token on admit. Tokens are only consumed by
// admissions, so a workflow deferred or rejected downstream does not burn the
// tenant's budget.
func (p *pipeline) takeToken(tenant string, tn Tenant, hasTenant bool, at simtime.Time) {
	if hasTenant && tn.Rate > 0 {
		p.bucketFor(tenant, tn).take(at)
	}
}

// effectiveCluster applies the tenant's tier ceiling to the cluster caps.
func (p *pipeline) effectiveCluster(tn Tenant, hasTenant bool) plan.Caps {
	if !hasTenant {
		return p.cfg.Cluster
	}
	tier := tn.Tier
	if tier >= len(p.cfg.TierCeilings) {
		tier = len(p.cfg.TierCeilings) - 1
	}
	c := p.cfg.TierCeilings[tier]
	eff := plan.Caps{
		Maps:    int(float64(p.cfg.Cluster.Maps) * c),
		Reduces: int(float64(p.cfg.Cluster.Reduces) * c),
	}
	if eff.Maps < 1 {
		eff.Maps = 1
	}
	if eff.Reduces < 1 {
		eff.Reduces = 1
	}
	return eff
}

// quotaStage enforces the tenant's committed-capacity share. ok=false means
// the returned decision stands.
func (p *pipeline) quotaStage(w *workflow.Workflow, tn Tenant, at simtime.Time) (Decision, bool) {
	budget := int(tn.Quota * float64(p.cfg.Cluster.Total()))
	if budget < 2 {
		budget = 2 // always room for the 1-map 1-reduce floor
	}
	used := p.ledger.TenantPeakOver(w.Tenant, at, w.Deadline)
	room := budget - used.Total()
	if room >= minCommitTotal(w) {
		return Decision{}, true
	}
	// Over quota: wait for the tenant's own earliest commitment to end, or
	// reject when the workflow could never fit its quota at all.
	if retry, ok := p.ledger.NextTenantEnd(w.Tenant, at); ok && retry < w.Deadline {
		return Decision{Verdict: Defer, Reason: "quota-exceeded", RetryAt: retry}, false
	}
	return Decision{Verdict: Reject, Reason: "quota-exceeded"}, false
}

// minCommitTotal is the smallest commitment any admission makes: the typed
// cap search floor of one map plus one reduce slot.
func minCommitTotal(w *workflow.Workflow) int { return 2 }

// feasibilityStage reuses the planner's cap search against uncommitted
// capacity: admit at the minimal feasible cap (committing it), defer to the
// earliest commitment end that would make the deadline reachable, or reject
// with the earliest feasible deadline as a counter-offer.
func (p *pipeline) feasibilityStage(w *workflow.Workflow, eff plan.Caps, at simtime.Time) (Decision, plan.Caps) {
	budget := w.Deadline.Sub(at)
	if budget <= 0 {
		return Decision{Verdict: Reject, Reason: "deadline-passed"}, plan.Caps{}
	}
	free := p.ledger.FreeOver(at, w.Deadline, eff)
	if free.Maps < 1 || free.Reduces < 1 {
		return p.deferOrReject(w, eff, at, free, simtime.Epoch)
	}
	ranks, err := p.cfg.Policy.Rank(w)
	if err != nil {
		return Decision{Verdict: Reject, Reason: "unrankable: " + err.Error()}, free
	}
	full, err := plan.GenerateTyped(w, free, p.cfg.Policy.Name(), ranks)
	if err != nil {
		return Decision{Verdict: Reject, Reason: "unplannable: " + err.Error()}, free
	}
	offer := at.Add(full.Makespan)
	if full.Makespan > budget {
		return p.deferOrReject(w, eff, at, free, offer)
	}
	// Feasible: search the smallest slice of the free capacity that still
	// makes the (margin-discounted) budget, exactly as plan generation does.
	target := time.Duration(p.cfg.Margin * float64(budget))
	if full.Makespan > target {
		target = budget
	}
	best, _, err := plan.SequentialSearch(2, free.Total(), target, func(mid int) (*plan.Plan, error) {
		return plan.GenerateTyped(w, plan.TypedCapsFor(free, mid), p.cfg.Policy.Name(), ranks)
	})
	if err != nil {
		return Decision{Verdict: Reject, Reason: "unplannable: " + err.Error()}, free
	}
	if best == nil {
		best = full
	}
	caps := plan.TypedCapsFor(free, best.Cap)
	if best.Cap >= free.Total() {
		caps = free
	}
	if err := p.ledger.Commit(Commitment{
		Workflow: w.Name, Tenant: w.Tenant,
		Start: at, End: at.Add(best.Makespan),
		Maps: caps.Maps, Reduces: caps.Reduces,
	}); err != nil {
		// Defensive: FreeOver guarantees the window fits, so a conflict here
		// is a bug — surface it as a reject rather than over-committing.
		return Decision{Verdict: Reject, Reason: "ledger-conflict: " + err.Error()}, free
	}
	return Decision{Verdict: Admit}, free
}

// deferOrReject finds the earliest commitment end after which the workflow
// could still meet its deadline; failing that it rejects, carrying offer (the
// earliest feasible deadline at current free capacity) when known.
func (p *pipeline) deferOrReject(w *workflow.Workflow, eff plan.Caps, at simtime.Time, free plan.Caps, offer simtime.Time) (Decision, plan.Caps) {
	ranks, err := p.cfg.Policy.Rank(w)
	if err != nil {
		return Decision{Verdict: Reject, Reason: "unrankable: " + err.Error(), CounterOffer: offer}, free
	}
	for _, t := range p.ledger.EndsWithin(at, w.Deadline) {
		cand := p.ledger.FreeOver(t, w.Deadline, eff)
		if cand.Maps < 1 || cand.Reduces < 1 || (cand.Maps <= free.Maps && cand.Reduces <= free.Reduces) {
			continue
		}
		probe, err := plan.GenerateTyped(w, cand, p.cfg.Policy.Name(), ranks)
		if err != nil {
			continue
		}
		if probe.Makespan <= w.Deadline.Sub(t) {
			return Decision{Verdict: Defer, Reason: "awaiting-capacity", RetryAt: t}, free
		}
	}
	// Rejecting. Price the counter-offer as the earliest feasible deadline:
	// the asked-window offer (when the window had capacity to price one)
	// improved by finishing after any future commitment end, where freed
	// capacity may complete the workflow sooner than the starved window.
	for _, t := range p.ledger.EndsWithin(at, simtime.MaxTime) {
		if offer != simtime.Epoch && t >= offer {
			break // ends are sorted; later starts cannot finish earlier
		}
		cand := p.ledger.FreeOver(t, simtime.MaxTime, eff)
		if cand.Maps < 1 || cand.Reduces < 1 {
			continue
		}
		probe, err := plan.GenerateTyped(w, cand, p.cfg.Policy.Name(), ranks)
		if err != nil {
			continue
		}
		if o := t.Add(probe.Makespan); offer == simtime.Epoch || o < offer {
			offer = o
		}
	}
	return Decision{Verdict: Reject, Reason: "infeasible", CounterOffer: offer}, free
}

// Complete implements Controller: release the workflow's commitment.
func (p *pipeline) Complete(w *workflow.Workflow, now simtime.Time) {
	p.mu.Lock()
	released := p.ledger.Release(w.Tenant, w.Name)
	p.mu.Unlock()
	if released {
		p.stats.OnRelease()
	}
}

// bucket is a token bucket over virtual time. Refill is lazy and clamped so
// an out-of-order anchor (a deferred workflow deciding after a later release)
// can neither rewind nor double-refill the bucket.
type bucket struct {
	rate   float64 // tokens per nanosecond of virtual time
	burst  float64
	tokens float64
	last   simtime.Time
}

// refill brings the bucket forward to at.
func (b *bucket) refill(at simtime.Time) {
	if at > b.last {
		b.tokens += b.rate * float64(at.Sub(b.last))
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = at
	}
}

// wait returns how long past at the bucket needs before a token is whole;
// zero means a token is available now.
func (b *bucket) wait(at simtime.Time) time.Duration {
	b.refill(at)
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1-b.tokens)/b.rate) + time.Nanosecond
}

// take consumes one token at the given instant.
func (b *bucket) take(at simtime.Time) {
	b.refill(at)
	b.tokens--
}
