//go:build !race

package admission_test

// raceEnabled is false in regular builds; see race_on_test.go.
const raceEnabled = false
