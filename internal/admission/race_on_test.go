//go:build race

package admission_test

// raceEnabled reports that this binary was built with -race. Allocation
// pins skip under race: the race runtime's bookkeeping inflates counts.
const raceEnabled = true
