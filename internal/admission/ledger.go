package admission

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/simtime"
)

// Commitment reserves typed slot capacity over a virtual-time window
// [Start, End): the slice of the cluster an admitted workflow's plan is
// entitled to until it completes or the window lapses.
type Commitment struct {
	// Workflow keys the commitment for release on completion.
	Workflow string
	// Tenant attributes the reservation for quota accounting.
	Tenant string
	// Start and End bound the reserved window; End is the admission-time
	// makespan estimate, not a hard kill time.
	Start, End simtime.Time
	// Maps and Reduces are the reserved slot counts per pool.
	Maps, Reduces int
}

// caps returns the commitment's reservation as typed caps.
func (c Commitment) caps() plan.Caps { return plan.Caps{Maps: c.Maps, Reduces: c.Reduces} }

// covers reports whether the commitment reserves capacity at instant t.
func (c Commitment) covers(t simtime.Time) bool { return c.Start <= t && t < c.End }

// Ledger tracks the map/reduce slot-time committed to admitted workflows
// against a fixed cluster capacity. Commit enforces the ledger invariant —
// at every instant, the sum of live reservations stays within the cluster in
// both pools — so an over-commit is impossible by construction, not merely
// detected after the fact (pinned by TestLedgerNeverOverCommits).
//
// The ledger is not internally locked: the admission pipeline serializes all
// access under its own mutex.
type Ledger struct {
	cluster plan.Caps
	commits []Commitment
}

// NewLedger returns an empty ledger over the given cluster capacity.
func NewLedger(cluster plan.Caps) *Ledger { return &Ledger{cluster: cluster} }

// Cluster returns the capacity the ledger accounts against.
func (l *Ledger) Cluster() plan.Caps { return l.cluster }

// Committed returns a snapshot of the live commitments, in admission order.
func (l *Ledger) Committed() []Commitment { return append([]Commitment(nil), l.commits...) }

// Commit adds c after proving it fits: usage is piecewise constant and only
// changes at commitment boundaries, so checking c.Start plus every existing
// start inside the window covers all candidate peaks. Violations leave the
// ledger untouched and return an error naming the crowded instant.
func (l *Ledger) Commit(c Commitment) error {
	if c.Maps < 0 || c.Reduces < 0 || c.End <= c.Start {
		return fmt.Errorf("admission: malformed commitment %+v", c)
	}
	if err := l.fits(c, c.Start); err != nil {
		return err
	}
	for _, e := range l.commits {
		if e.Start > c.Start && e.Start < c.End {
			if err := l.fits(c, e.Start); err != nil {
				return err
			}
		}
	}
	l.commits = append(l.commits, c)
	return nil
}

// fits checks that adding c keeps both pools within the cluster at instant t.
func (l *Ledger) fits(c Commitment, t simtime.Time) error {
	u := l.usageAt(t)
	if u.Maps+c.Maps > l.cluster.Maps || u.Reduces+c.Reduces > l.cluster.Reduces {
		return fmt.Errorf("admission: commitment %q would exceed cluster %+v at %s (in use %+v, requested %+v)",
			c.Workflow, l.cluster, t, u, c.caps())
	}
	return nil
}

// usageAt sums the live reservations covering instant t.
func (l *Ledger) usageAt(t simtime.Time) plan.Caps {
	var u plan.Caps
	for _, c := range l.commits {
		if c.covers(t) {
			u.Maps += c.Maps
			u.Reduces += c.Reduces
		}
	}
	return u
}

// Release drops the commitment keyed by (tenant, workflow name), reporting
// whether one existed. A workflow finishing ahead of its estimated window
// frees its reservation for later admissions. Tenant is part of the key for
// the same reason the pipeline's defer anchors carry it: workflow names are
// only unique per tenant, and matching on name alone would let one tenant's
// completion release another's reservation.
func (l *Ledger) Release(tenant, wf string) bool {
	for i, c := range l.commits {
		if c.Workflow == wf && c.Tenant == tenant {
			l.commits = append(l.commits[:i], l.commits[i+1:]...)
			return true
		}
	}
	return false
}

// Expire drops commitments whose window ended at or before now: a workflow
// running past its estimate keeps its slots in the scheduler, but no longer
// holds an admission reservation against future arrivals.
func (l *Ledger) Expire(now simtime.Time) {
	kept := l.commits[:0]
	for _, c := range l.commits {
		if c.End > now {
			kept = append(kept, c)
		}
	}
	l.commits = kept
}

// PeakOver returns the per-pool maximum committed usage over [t0, t1).
// Usage only steps at commitment starts, so evaluating t0 and each start in
// the window is exact.
func (l *Ledger) PeakOver(t0, t1 simtime.Time) plan.Caps {
	peak := l.usageAt(t0)
	for _, c := range l.commits {
		if c.Start > t0 && c.Start < t1 {
			u := l.usageAt(c.Start)
			if u.Maps > peak.Maps {
				peak.Maps = u.Maps
			}
			if u.Reduces > peak.Reduces {
				peak.Reduces = u.Reduces
			}
		}
	}
	return peak
}

// FreeOver returns the capacity of eff guaranteed uncommitted across the
// whole window [t0, t1), clamped at zero. eff may be smaller than the
// ledger's cluster (priority tiers shrink it); commitments still count in
// full against it.
func (l *Ledger) FreeOver(t0, t1 simtime.Time, eff plan.Caps) plan.Caps {
	peak := l.PeakOver(t0, t1)
	free := plan.Caps{Maps: eff.Maps - peak.Maps, Reduces: eff.Reduces - peak.Reduces}
	if free.Maps < 0 {
		free.Maps = 0
	}
	if free.Reduces < 0 {
		free.Reduces = 0
	}
	return free
}

// TenantPeakOver returns the per-pool maximum usage committed to one tenant
// over [t0, t1).
func (l *Ledger) TenantPeakOver(tenant string, t0, t1 simtime.Time) plan.Caps {
	peak := l.tenantUsageAt(tenant, t0)
	for _, c := range l.commits {
		if c.Tenant == tenant && c.Start > t0 && c.Start < t1 {
			u := l.tenantUsageAt(tenant, c.Start)
			if u.Maps > peak.Maps {
				peak.Maps = u.Maps
			}
			if u.Reduces > peak.Reduces {
				peak.Reduces = u.Reduces
			}
		}
	}
	return peak
}

// tenantUsageAt sums one tenant's live reservations covering instant t.
func (l *Ledger) tenantUsageAt(tenant string, t simtime.Time) plan.Caps {
	var u plan.Caps
	for _, c := range l.commits {
		if c.Tenant == tenant && c.covers(t) {
			u.Maps += c.Maps
			u.Reduces += c.Reduces
		}
	}
	return u
}

// NextTenantEnd returns the earliest end, strictly after `after`, of one of
// the tenant's commitments — the soonest instant its quota usage shrinks.
func (l *Ledger) NextTenantEnd(tenant string, after simtime.Time) (simtime.Time, bool) {
	best, ok := simtime.MaxTime, false
	for _, c := range l.commits {
		if c.Tenant == tenant && c.End > after && c.End < best {
			best, ok = c.End, true
		}
	}
	return best, ok
}

// EndsWithin returns the distinct commitment ends in (t0, t1), ascending —
// the candidate retry instants at which capacity frees up.
func (l *Ledger) EndsWithin(t0, t1 simtime.Time) []simtime.Time {
	var ends []simtime.Time
	for _, c := range l.commits {
		if c.End > t0 && c.End < t1 {
			ends = append(ends, c.End)
		}
	}
	sort.Slice(ends, func(a, b int) bool { return ends[a] < ends[b] })
	out := ends[:0]
	for i, e := range ends {
		if i == 0 || e != ends[i-1] {
			out = append(out, e)
		}
	}
	return out
}
