package admission_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/plan"
	"repro/internal/simtime"
)

func sec(n int) simtime.Time { return simtime.Epoch.Add(time.Duration(n) * time.Second) }

// usageOracle recomputes the ledger's usage at t by brute force over a
// commitment snapshot — the independent check the property test trusts.
func usageOracle(commits []admission.Commitment, t simtime.Time) plan.Caps {
	var u plan.Caps
	for _, c := range commits {
		if c.Start <= t && t < c.End {
			u.Maps += c.Maps
			u.Reduces += c.Reduces
		}
	}
	return u
}

// wouldOvercommit is the test's own feasibility oracle for a candidate
// commitment: usage can only rise at commitment starts, so the candidate
// overflows iff usage+candidate exceeds the cluster at its own start or at
// any existing start inside its window.
func wouldOvercommit(commits []admission.Commitment, cluster plan.Caps, cand admission.Commitment) bool {
	instants := []simtime.Time{cand.Start}
	for _, c := range commits {
		if cand.Start < c.Start && c.Start < cand.End {
			instants = append(instants, c.Start)
		}
	}
	for _, t := range instants {
		u := usageOracle(commits, t)
		if u.Maps+cand.Maps > cluster.Maps || u.Reduces+cand.Reduces > cluster.Reduces {
			return true
		}
	}
	return false
}

// TestLedgerNeverOvercommits drives the ledger through random commit,
// release, and expire traffic and checks two properties after every step:
// Commit accepts exactly the commitments the brute-force oracle allows, and
// the committed set never exceeds cluster capacity at any instant where
// usage can peak (every commitment start).
func TestLedgerNeverOvercommits(t *testing.T) {
	cluster := plan.Caps{Maps: 6, Reduces: 4}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lg := admission.NewLedger(cluster)
		for op := 0; op < 400; op++ {
			switch rng.Intn(10) {
			case 0: // release a random (possibly absent) workflow
				lg.Release("", fmt.Sprintf("w%d", rng.Intn(op+1)))
			case 1: // expire up to a random instant
				lg.Expire(sec(rng.Intn(200)))
			default:
				start := rng.Intn(150)
				cand := admission.Commitment{
					Workflow: fmt.Sprintf("w%d", op),
					Start:    sec(start),
					End:      sec(start + 1 + rng.Intn(60)),
					Maps:     rng.Intn(cluster.Maps + 2), // sometimes > cluster
					Reduces:  rng.Intn(cluster.Reduces + 2),
				}
				if cand.Maps == 0 && cand.Reduces == 0 {
					cand.Maps = 1
				}
				before := lg.Committed()
				wantErr := cand.Maps > cluster.Maps || cand.Reduces > cluster.Reduces ||
					wouldOvercommit(before, cluster, cand)
				err := lg.Commit(cand)
				if (err != nil) != wantErr {
					t.Fatalf("seed %d op %d: Commit(%+v) err=%v, oracle wantErr=%v (ledger %+v)",
						seed, op, cand, err, wantErr, before)
				}
			}
			// Global invariant: usage at every commitment start stays within
			// the cluster.
			commits := lg.Committed()
			for _, c := range commits {
				u := usageOracle(commits, c.Start)
				if u.Maps > cluster.Maps || u.Reduces > cluster.Reduces {
					t.Fatalf("seed %d op %d: over-committed at %v: usage %+v > cluster %+v",
						seed, op, c.Start, u, cluster)
				}
			}
		}
	}
}

// TestLedgerWindows pins the window queries the pipeline stages rely on.
func TestLedgerWindows(t *testing.T) {
	lg := admission.NewLedger(plan.Caps{Maps: 4, Reduces: 4})
	mustCommit := func(c admission.Commitment) {
		t.Helper()
		if err := lg.Commit(c); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(admission.Commitment{Workflow: "a", Tenant: "t", Start: sec(0), End: sec(100), Maps: 2, Reduces: 1})
	mustCommit(admission.Commitment{Workflow: "b", Tenant: "t", Start: sec(50), End: sec(150), Maps: 1, Reduces: 2})

	if peak := lg.PeakOver(sec(0), sec(200)); peak.Maps != 3 || peak.Reduces != 3 {
		t.Errorf("PeakOver = %+v, want {3 3}", peak)
	}
	if free := lg.FreeOver(sec(0), sec(200), lg.Cluster()); free.Maps != 1 || free.Reduces != 1 {
		t.Errorf("FreeOver = %+v, want {1 1}", free)
	}
	if peak := lg.TenantPeakOver("t", sec(0), sec(200)); peak.Maps != 3 || peak.Reduces != 3 {
		t.Errorf("TenantPeakOver(t) = %+v, want {3 3}", peak)
	}
	if peak := lg.TenantPeakOver("other", sec(0), sec(200)); peak.Maps != 0 || peak.Reduces != 0 {
		t.Errorf("TenantPeakOver(other) = %+v, want zero", peak)
	}
	if end, ok := lg.NextTenantEnd("t", sec(10)); !ok || end != sec(100) {
		t.Errorf("NextTenantEnd = %v,%v, want 100s,true", end, ok)
	}
	ends := lg.EndsWithin(sec(0), sec(500))
	if len(ends) != 2 || ends[0] != sec(100) || ends[1] != sec(150) {
		t.Errorf("EndsWithin = %v, want [100s 150s]", ends)
	}
	lg.Expire(sec(100)) // drops a (End <= 100s)
	if got := len(lg.Committed()); got != 1 {
		t.Errorf("after Expire: %d commitments, want 1", got)
	}
	if lg.Release("other", "b") {
		t.Error("Release with the wrong tenant should not match")
	}
	if !lg.Release("t", "b") || lg.Release("t", "b") {
		t.Error("Release(t, b) should succeed once then report absent")
	}
}
