package admission

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/workflow"
)

// TestDeferralLimitRejects forces a workflow's defer count to the cap and
// checks the next ruling rejects instead of deferring forever.
func TestDeferralLimitRejects(t *testing.T) {
	ctrl, err := New(Config{
		Mode:    ModeTokenBucket,
		Tenants: map[string]Tenant{"t": {Rate: 1, Burst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ctrl.(*pipeline)
	w := workflow.NewBuilder("w").
		Job("j", 1, 0, time.Second, 0).
		MustBuild(simtime.Epoch, simtime.Epoch.Add(time.Hour))
	w.Tenant = "t"
	p.anchors[keyOf(w)] = anchor{at: w.Release, defers: maxDeferrals}
	d := p.Decide(w, nil, w.Release)
	if d.Verdict != Reject || d.Reason != "deferral-limit" {
		t.Fatalf("Decide = %+v, want deferral-limit reject", d)
	}
	if _, ok := p.anchors[keyOf(w)]; ok {
		t.Error("terminal ruling left the anchor behind")
	}
}

// TestTenantAnchorsIndependent pins the (Tenant, Name) anchor keying: two
// tenants submitting same-named workflows must carry independent defer
// chains. Under the old name-only keys this fails three ways — one tenant's
// terminal ruling dropped the other's pending anchor (resetting its retry
// instant to the release), both chains shared one maxDeferrals budget, and a
// deferral-limit hit on one tenant rejected the other outright.
func TestTenantAnchorsIndependent(t *testing.T) {
	ctrl, err := New(Config{
		Mode: ModeTokenBucket,
		Tenants: map[string]Tenant{
			"a": {Rate: 1, Burst: 1},
			"b": {Rate: 1, Burst: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ctrl.(*pipeline)
	mk := func(tenant string, name string) *workflow.Workflow {
		w := workflow.NewBuilder(name).
			Job("j", 1, 0, time.Second, 0).
			MustBuild(simtime.Epoch, simtime.Epoch.Add(100*time.Hour))
		w.Tenant = tenant
		return w
	}

	// Drain tenant a's bucket, then defer a's "job".
	if d := p.Decide(mk("a", "warmup"), nil, 0); d.Verdict != Admit {
		t.Fatalf("warmup = %+v, want admit", d)
	}
	first := p.Decide(mk("a", "job"), nil, 0)
	if first.Verdict != Defer {
		t.Fatalf("tenant a job = %+v, want rate-limited defer", first)
	}

	// Tenant b's same-named workflow admits on its own full bucket; that
	// terminal ruling must not touch tenant a's pending anchor.
	if d := p.Decide(mk("b", "job"), nil, 0); d.Verdict != Admit {
		t.Fatalf("tenant b job = %+v, want admit", d)
	}
	a, ok := p.anchors[wfKey{tenant: "a", name: "job"}]
	if !ok || a.at != first.RetryAt || a.defers != 1 {
		t.Fatalf("tenant a anchor after b's admit = %+v,%v, want {%v 1},true",
			a, ok, first.RetryAt)
	}

	// A retry ruling for a's workflow anchors at its own retry instant.
	retry := p.Decide(mk("a", "job"), nil, first.RetryAt)
	recs := p.Records()
	if got := recs[len(recs)-1].Anchor; got != first.RetryAt {
		t.Errorf("retry anchored at %v, want %v", got, first.RetryAt)
	}
	if retry.Verdict != Admit { // bucket refilled over the ~1h wait
		t.Fatalf("retry = %+v, want admit", retry)
	}

	// Deferral budgets are per tenant: a's exhausted chain must not reject
	// b's same-named submission.
	p.anchors[wfKey{tenant: "a", name: "job2"}] = anchor{defers: maxDeferrals}
	p.buckets["b"].tokens = 1
	if d := p.Decide(mk("b", "job2"), nil, 0); d.Verdict == Reject {
		t.Fatalf("tenant b job2 = %+v; tenant a's deferral budget leaked across tenants", d)
	}
}

// TestAnchorMapDrainsAfterTerminalRulings is the leak regression: 1k
// deferred submissions across two tenants with colliding names are driven to
// their terminal deferral-limit reject, and the anchor map must end empty —
// every terminal path clears its entry, so a long-lived daemon's map stays
// bounded by the currently-deferred population.
func TestAnchorMapDrainsAfterTerminalRulings(t *testing.T) {
	const n = 1000
	ctrl, err := New(Config{
		Mode:    ModeTokenBucket,
		Tenants: map[string]Tenant{"a": {Rate: 1, Burst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ctrl.(*pipeline)
	mk := func(tenant string, i int) *workflow.Workflow {
		w := workflow.NewBuilder(fmt.Sprintf("wf-%d", i)).
			Job("j", 1, 0, time.Second, 0).
			MustBuild(simtime.Epoch, simtime.Epoch.Add(100*time.Hour))
		w.Tenant = tenant
		return w
	}

	// Empty tenant a's bucket, then park n submissions in deferred state.
	if d := p.Decide(mk("a", -1), nil, 0); d.Verdict != Admit {
		t.Fatalf("warmup = %+v, want admit", d)
	}
	for i := 0; i < n; i++ {
		if d := p.Decide(mk("a", i), nil, 0); d.Verdict != Defer {
			t.Fatalf("wf-%d = %+v, want defer", i, d)
		}
	}
	if got := p.anchorCount(); got != n {
		t.Fatalf("anchorCount = %d after %d deferrals, want %d", got, n, n)
	}

	// Tenant b (unlimited) runs same-named workflows to terminal admits;
	// with name-only keys these wiped tenant a's pending chains.
	for i := 0; i < n; i++ {
		if d := p.Decide(mk("b", i), nil, 0); d.Verdict != Admit {
			t.Fatalf("tenant b wf-%d = %+v, want admit", i, d)
		}
	}
	if got := p.anchorCount(); got != n {
		t.Fatalf("anchorCount = %d after tenant b's admits, want %d untouched", got, n)
	}

	// Drive every deferred chain to its terminal deferral-limit reject and
	// demand the map drains completely.
	p.mu.Lock()
	for k, a := range p.anchors {
		p.anchors[k] = anchor{at: a.at, defers: maxDeferrals}
	}
	p.mu.Unlock()
	for i := 0; i < n; i++ {
		if d := p.Decide(mk("a", i), nil, 0); d.Verdict != Reject || d.Reason != "deferral-limit" {
			t.Fatalf("wf-%d = %+v, want deferral-limit reject", i, d)
		}
	}
	if got := p.anchorCount(); got != 0 {
		t.Fatalf("anchorCount = %d after every chain terminated, want 0", got)
	}
}

// TestBucketRefillClamped pins the bucket's out-of-order safety: an anchor
// earlier than the last refill neither rewinds the clock nor double-refills.
func TestBucketRefillClamped(t *testing.T) {
	b := &bucket{rate: 1.0 / float64(time.Hour), burst: 2, tokens: 0, last: simtime.Epoch.Add(time.Hour)}
	b.refill(simtime.Epoch) // earlier than last: must be a no-op
	if b.tokens != 0 || b.last != simtime.Epoch.Add(time.Hour) {
		t.Fatalf("out-of-order refill mutated bucket: tokens=%v last=%v", b.tokens, b.last)
	}
	b.refill(simtime.Epoch.Add(2 * time.Hour))
	if b.tokens != 1 {
		t.Fatalf("tokens = %v after 1h refill at rate 1/h, want 1", b.tokens)
	}
	b.refill(simtime.Epoch.Add(10 * time.Hour))
	if b.tokens != 2 {
		t.Fatalf("tokens = %v, want clamped at burst 2", b.tokens)
	}
	if w := b.wait(simtime.Epoch.Add(10 * time.Hour)); w != 0 {
		t.Fatalf("wait = %v with a full bucket, want 0", w)
	}
	b.take(simtime.Epoch.Add(10 * time.Hour))
	b.take(simtime.Epoch.Add(10 * time.Hour))
	if w := b.wait(simtime.Epoch.Add(10 * time.Hour)); w < time.Hour-time.Second || w > time.Hour+time.Second {
		t.Fatalf("wait = %v with an empty bucket, want ~1h", w)
	}
}
