package admission

import (
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/workflow"
)

// TestDeferralLimitRejects forces a workflow's defer count to the cap and
// checks the next ruling rejects instead of deferring forever.
func TestDeferralLimitRejects(t *testing.T) {
	ctrl, err := New(Config{
		Mode:    ModeTokenBucket,
		Tenants: map[string]Tenant{"t": {Rate: 1, Burst: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ctrl.(*pipeline)
	w := workflow.NewBuilder("w").
		Job("j", 1, 0, time.Second, 0).
		MustBuild(simtime.Epoch, simtime.Epoch.Add(time.Hour))
	w.Tenant = "t"
	p.anchors[w.Name] = anchor{at: w.Release, defers: maxDeferrals}
	d := p.Decide(w, nil, w.Release)
	if d.Verdict != Reject || d.Reason != "deferral-limit" {
		t.Fatalf("Decide = %+v, want deferral-limit reject", d)
	}
	if _, ok := p.anchors[w.Name]; ok {
		t.Error("terminal ruling left the anchor behind")
	}
}

// TestBucketRefillClamped pins the bucket's out-of-order safety: an anchor
// earlier than the last refill neither rewinds the clock nor double-refills.
func TestBucketRefillClamped(t *testing.T) {
	b := &bucket{rate: 1.0 / float64(time.Hour), burst: 2, tokens: 0, last: simtime.Epoch.Add(time.Hour)}
	b.refill(simtime.Epoch) // earlier than last: must be a no-op
	if b.tokens != 0 || b.last != simtime.Epoch.Add(time.Hour) {
		t.Fatalf("out-of-order refill mutated bucket: tokens=%v last=%v", b.tokens, b.last)
	}
	b.refill(simtime.Epoch.Add(2 * time.Hour))
	if b.tokens != 1 {
		t.Fatalf("tokens = %v after 1h refill at rate 1/h, want 1", b.tokens)
	}
	b.refill(simtime.Epoch.Add(10 * time.Hour))
	if b.tokens != 2 {
		t.Fatalf("tokens = %v, want clamped at burst 2", b.tokens)
	}
	if w := b.wait(simtime.Epoch.Add(10 * time.Hour)); w != 0 {
		t.Fatalf("wait = %v with a full bucket, want 0", w)
	}
	b.take(simtime.Epoch.Add(10 * time.Hour))
	b.take(simtime.Epoch.Add(10 * time.Hour))
	if w := b.wait(simtime.Epoch.Add(10 * time.Hour)); w < time.Hour-time.Second || w > time.Hour+time.Second {
		t.Fatalf("wait = %v with an empty bucket, want ~1h", w)
	}
}
