// Package trace synthesizes Map-Reduce job statistics matching the Yahoo!
// WebScope trace the WOHA paper characterizes in Fig 5 and Fig 6 (4000+ jobs
// from 2012-03-07):
//
//   - most map tasks finish between 10s and 100s;
//   - more than half of the reduce tasks take over 100s, and about 10% take
//     over 1000s;
//   - about 30% of jobs have more than 100 mappers;
//   - more than 60% of jobs have fewer than 10 reducers;
//   - mappers usually outnumber reducers while reducers run longer.
//
// The real trace is proprietary, so we draw from log-normal marginals fitted
// to the published CDF shapes (the paper itself only used the trace as
// "guidelines when we generated synthetic jobs"). All draws flow through a
// caller-seeded PRNG for reproducibility.
package trace

import (
	"math"
	"math/rand"
	"time"
)

// JobStats describes one synthesized Map-Reduce job.
type JobStats struct {
	// Maps and Reduces are task counts; Maps >= 1, Reduces >= 0.
	Maps    int
	Reduces int
	// MapTime and ReduceTime are per-task execution time estimates.
	MapTime    time.Duration
	ReduceTime time.Duration
}

// Tasks returns the job's total task count.
func (j JobStats) Tasks() int { return j.Maps + j.Reduces }

// Params are the log-normal marginal parameters. Medians are the exp(mu)
// points; sigmas are the standard deviations of the underlying normals.
type Params struct {
	// MapTimeMedian and MapTimeSigma shape the map-duration marginal.
	MapTimeMedian time.Duration
	MapTimeSigma  float64
	// ReduceTimeMedian and ReduceTimeSigma shape the reduce-duration
	// marginal.
	ReduceTimeMedian time.Duration
	ReduceTimeSigma  float64
	// MapCountMedian and MapCountSigma shape the mapper-count marginal.
	MapCountMedian float64
	MapCountSigma  float64
	// ReduceCountMedian and ReduceCountSigma shape the reducer-count
	// marginal.
	ReduceCountMedian float64
	ReduceCountSigma  float64
	// ReduceOnlyFrac is the fraction of jobs with zero reducers (map-only
	// jobs are common in log-filtering stages).
	MapOnlyFrac float64
}

// DefaultParams returns marginals fitted to the paper's Fig 5 / Fig 6:
//
//   - map durations: median 30s, sigma 1.0 → ~75% land in [10s, 100s];
//   - reduce durations: median 120s, sigma 1.6 → ~54% over 100s, ~9% over
//     1000s;
//   - map counts: median 40, sigma 1.8 → ~30% of jobs over 100 mappers;
//   - reduce counts: median 6, sigma 1.3 → ~65% of jobs under 10 reducers.
func DefaultParams() Params {
	return Params{
		MapTimeMedian:     30 * time.Second,
		MapTimeSigma:      1.0,
		ReduceTimeMedian:  120 * time.Second,
		ReduceTimeSigma:   1.6,
		MapCountMedian:    40,
		MapCountSigma:     1.8,
		ReduceCountMedian: 6,
		ReduceCountSigma:  1.3,
		MapOnlyFrac:       0.1,
	}
}

// Generator draws jobs from the marginals.
type Generator struct {
	rng    *rand.Rand
	params Params
}

// NewGenerator returns a generator with DefaultParams and the given seed.
func NewGenerator(seed int64) *Generator {
	return NewGeneratorParams(seed, DefaultParams())
}

// NewGeneratorParams returns a generator with custom marginals.
func NewGeneratorParams(seed int64, p Params) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), params: p}
}

// Job draws one job.
func (g *Generator) Job() JobStats {
	p := g.params
	j := JobStats{
		Maps:       clampCount(g.logNormal(p.MapCountMedian, p.MapCountSigma)),
		MapTime:    clampDur(g.logNormal(float64(p.MapTimeMedian), p.MapTimeSigma)),
		ReduceTime: clampDur(g.logNormal(float64(p.ReduceTimeMedian), p.ReduceTimeSigma)),
	}
	if g.rng.Float64() < p.MapOnlyFrac {
		j.Reduces = 0
		j.ReduceTime = 0
	} else {
		j.Reduces = clampCount(g.logNormal(p.ReduceCountMedian, p.ReduceCountSigma))
	}
	return j
}

// Jobs draws n jobs.
func (g *Generator) Jobs(n int) []JobStats {
	out := make([]JobStats, n)
	for i := range out {
		out[i] = g.Job()
	}
	return out
}

// logNormal draws exp(N(ln median, sigma^2)).
func (g *Generator) logNormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*g.rng.NormFloat64())
}

func clampCount(v float64) int {
	n := int(math.Round(v))
	if n < 1 {
		return 1
	}
	// The largest Yahoo jobs run tens of thousands of tasks; cap the tail
	// so a single draw cannot dominate an entire experiment.
	const maxTasks = 20000
	if n > maxTasks {
		return maxTasks
	}
	return n
}

func clampDur(v float64) time.Duration {
	d := time.Duration(v)
	if d < time.Second {
		return time.Second
	}
	const maxDur = 4 * time.Hour
	if d > maxDur {
		return maxDur
	}
	return d
}

// Scale returns a copy of p with all durations multiplied by f and count
// medians by c. Experiments use it to shrink workloads while preserving the
// distribution shapes.
func (p Params) Scale(f float64, c float64) Params {
	q := p
	q.MapTimeMedian = time.Duration(float64(p.MapTimeMedian) * f)
	q.ReduceTimeMedian = time.Duration(float64(p.ReduceTimeMedian) * f)
	q.MapCountMedian *= c
	q.ReduceCountMedian *= c
	return q
}
