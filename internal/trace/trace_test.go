package trace

import (
	"testing"
	"time"
)

// TestMarginalsMatchPaperCDFs checks the synthesized population against the
// shape facts the paper reads off Fig 5 and Fig 6. Bounds are generous: we
// are matching published CDF shapes, not exact values.
func TestMarginalsMatchPaperCDFs(t *testing.T) {
	g := NewGenerator(42)
	const n = 4000 // the trace has "more than 4000 jobs"
	jobs := g.Jobs(n)

	frac := func(pred func(JobStats) bool) float64 {
		c := 0
		for _, j := range jobs {
			if pred(j) {
				c++
			}
		}
		return float64(c) / float64(n)
	}

	// "most mappers finish between 10s to 100s"
	if got := frac(func(j JobStats) bool {
		return j.MapTime >= 10*time.Second && j.MapTime <= 100*time.Second
	}); got < 0.55 {
		t.Errorf("maps in [10s,100s] = %.2f, want >= 0.55", got)
	}
	// "more than half of the reducers take more than 100s"
	withReduce := func(pred func(JobStats) bool) float64 {
		c, tot := 0, 0
		for _, j := range jobs {
			if j.Reduces == 0 {
				continue
			}
			tot++
			if pred(j) {
				c++
			}
		}
		return float64(c) / float64(tot)
	}
	if got := withReduce(func(j JobStats) bool { return j.ReduceTime > 100*time.Second }); got < 0.45 || got > 0.7 {
		t.Errorf("reduces > 100s = %.2f, want ~[0.45, 0.7]", got)
	}
	// "about 10% reducers even take more than 1000s"
	if got := withReduce(func(j JobStats) bool { return j.ReduceTime > 1000*time.Second }); got < 0.04 || got > 0.2 {
		t.Errorf("reduces > 1000s = %.2f, want ~[0.04, 0.2]", got)
	}
	// "about 30% jobs have more than 100 mappers"
	if got := frac(func(j JobStats) bool { return j.Maps > 100 }); got < 0.2 || got > 0.45 {
		t.Errorf("jobs > 100 maps = %.2f, want ~[0.2, 0.45]", got)
	}
	// "more than 60% jobs have less than 10 reducers"
	if got := frac(func(j JobStats) bool { return j.Reduces < 10 }); got < 0.55 {
		t.Errorf("jobs < 10 reduces = %.2f, want >= 0.55", got)
	}
	// "mappers usually outnumber reducers"
	if got := withReduce(func(j JobStats) bool { return j.Maps > j.Reduces }); got < 0.6 {
		t.Errorf("maps > reduces = %.2f, want >= 0.6", got)
	}
	// "reducers take much longer to finish"
	if got := withReduce(func(j JobStats) bool { return j.ReduceTime > j.MapTime }); got < 0.6 {
		t.Errorf("reduce longer than map = %.2f, want >= 0.6", got)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(7).Jobs(100)
	b := NewGenerator(7).Jobs(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across same-seed generators: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewGenerator(8).Jobs(100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical populations")
	}
}

func TestBoundsAndSanity(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 5000; i++ {
		j := g.Job()
		if j.Maps < 1 {
			t.Fatalf("job %d: Maps = %d, want >= 1", i, j.Maps)
		}
		if j.Reduces < 0 {
			t.Fatalf("job %d: negative reduces", i)
		}
		if j.MapTime < time.Second {
			t.Fatalf("job %d: MapTime = %v, want >= 1s", i, j.MapTime)
		}
		if j.Reduces > 0 && j.ReduceTime < time.Second {
			t.Fatalf("job %d: ReduceTime = %v with %d reduces", i, j.ReduceTime, j.Reduces)
		}
		if j.Reduces == 0 && j.ReduceTime != 0 {
			t.Fatalf("job %d: map-only job has ReduceTime %v", i, j.ReduceTime)
		}
		if j.Tasks() != j.Maps+j.Reduces {
			t.Fatalf("job %d: Tasks() inconsistent", i)
		}
	}
}

func TestMapOnlyFraction(t *testing.T) {
	g := NewGenerator(11)
	jobs := g.Jobs(5000)
	mapOnly := 0
	for _, j := range jobs {
		if j.Reduces == 0 {
			mapOnly++
		}
	}
	got := float64(mapOnly) / float64(len(jobs))
	if got < 0.05 || got > 0.2 {
		t.Errorf("map-only fraction = %.3f, want ~0.1", got)
	}
}

func TestParamsScale(t *testing.T) {
	p := DefaultParams()
	q := p.Scale(0.5, 2)
	if q.MapTimeMedian != p.MapTimeMedian/2 {
		t.Errorf("MapTimeMedian = %v, want %v", q.MapTimeMedian, p.MapTimeMedian/2)
	}
	if q.ReduceTimeMedian != p.ReduceTimeMedian/2 {
		t.Errorf("ReduceTimeMedian = %v, want %v", q.ReduceTimeMedian, p.ReduceTimeMedian/2)
	}
	if q.MapCountMedian != p.MapCountMedian*2 {
		t.Errorf("MapCountMedian = %v, want %v", q.MapCountMedian, p.MapCountMedian*2)
	}
	if q.MapTimeSigma != p.MapTimeSigma {
		t.Errorf("sigma changed by Scale")
	}
}

func TestExtremeDrawsClamped(t *testing.T) {
	// A huge sigma forces the clamps to engage.
	p := DefaultParams()
	p.MapCountSigma = 10
	p.MapTimeSigma = 10
	g := NewGeneratorParams(5, p)
	for i := 0; i < 2000; i++ {
		j := g.Job()
		if j.Maps > 20000 {
			t.Fatalf("Maps = %d, clamp failed", j.Maps)
		}
		if j.MapTime > 4*time.Hour {
			t.Fatalf("MapTime = %v, clamp failed", j.MapTime)
		}
	}
}
