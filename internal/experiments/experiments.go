// Package experiments regenerates every figure of the WOHA paper's
// evaluation (Section VI) on the simulated cluster: deadline satisfaction
// (Fig 8-11), utilization (Fig 12), scheduler scalability and plan size
// (Fig 13), slot-allocation timelines (Fig 14-19), the trace statistics
// (Fig 5-6), the progress-requirement change intervals (Fig 3), and the
// resource-cap motivating example (Fig 2).
//
// Each experiment returns a structured result plus a Table that prints the
// same rows/series the paper reports. EXPERIMENTS.md records paper-vs-
// measured for each.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/priority"
	"repro/internal/runner"
	"repro/internal/scheduler"
	"repro/internal/workflow"
)

// Table is a rendered experiment: the rows/series of one paper figure.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  %s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  "+strings.Repeat("-", sum(widths)+2*(len(widths)-1))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// TableWriter renders a table incrementally — title and header up front, then
// one row at a time — so a figure can be printed as its rows are computed
// instead of after the whole sweep drains. Column widths are fixed from the
// header alone (a streaming writer cannot look ahead at unrendered rows);
// whenever no cell is wider than its column's header — true for every figure
// table in this package — the streamed output is byte-identical to
// Table.Render on the completed table.
type TableWriter struct {
	w      io.Writer
	widths []int
}

// NewTableWriter writes the table preamble (title, optional note, header,
// rule) and returns a writer for the rows.
func NewTableWriter(w io.Writer, title, note string, header []string) (*TableWriter, error) {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return nil, err
	}
	if note != "" {
		if _, err := fmt.Fprintf(w, "  %s\n", note); err != nil {
			return nil, err
		}
	}
	tw := &TableWriter{w: w, widths: make([]int, len(header))}
	for i, h := range header {
		tw.widths[i] = len(h)
	}
	if err := tw.Row(header); err != nil {
		return nil, err
	}
	_, err := fmt.Fprintln(w, "  "+strings.Repeat("-", sum(tw.widths)+2*(len(tw.widths)-1)))
	if err != nil {
		return nil, err
	}
	return tw, nil
}

// Row writes one table row.
func (tw *TableWriter) Row(cells []string) error {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprintf("%-*s", tw.widths[i], c)
	}
	_, err := fmt.Fprintln(tw.w, "  "+strings.Join(parts, "  "))
	return err
}

// Close ends the table with the same trailing blank line Table.Render emits.
func (tw *TableWriter) Close() error {
	_, err := fmt.Fprintln(tw.w)
	return err
}

// SchedulerSpec names one of the six schedulers compared throughout the
// evaluation and knows how to instantiate it.
type SchedulerSpec struct {
	// Name is the paper's label: EDF, FIFO, Fair, WOHA-LPF, WOHA-HLF,
	// WOHA-MPF.
	Name string
	// Priority is the intra-workflow policy used for WOHA plan generation;
	// nil for the ported baselines, which receive no plans.
	Priority priority.Policy
	// Queue selects the WOHA queue backend (ignored for baselines).
	Queue core.QueueKind
}

// New instantiates the policy. seed drives WOHA's skip-list PRNG.
func (s SchedulerSpec) New(seed int64) cluster.Policy {
	switch s.Name {
	case "EDF":
		return scheduler.NewEDF()
	case "FIFO":
		return scheduler.NewFIFO()
	case "Fair":
		return scheduler.NewFair()
	default:
		return core.NewScheduler(core.Options{
			Queue:      s.Queue,
			Seed:       seed,
			PolicyName: s.Priority.Name(),
		})
	}
}

// IsWOHA reports whether the spec runs under the WOHA framework (and thus
// needs client-side plans).
func (s SchedulerSpec) IsWOHA() bool { return s.Priority != nil }

// AllSchedulers returns the six schedulers in the paper's presentation
// order: the three ported baselines, then WOHA with each job-priority
// policy.
func AllSchedulers() []SchedulerSpec {
	return []SchedulerSpec{
		{Name: "EDF"},
		{Name: "FIFO"},
		{Name: "Fair"},
		{Name: "WOHA-LPF", Priority: priority.LPF{}},
		{Name: "WOHA-HLF", Priority: priority.HLF{}},
		{Name: "WOHA-MPF", Priority: priority.MPF{}},
	}
}

// SchedulerByName returns the spec with the given paper label.
func SchedulerByName(name string) (SchedulerSpec, error) {
	for _, s := range AllSchedulers() {
		if s.Name == name {
			return s, nil
		}
	}
	return SchedulerSpec{}, fmt.Errorf("experiments: unknown scheduler %q", name)
}

// PlanMargin is the safety margin WOHA plans are generated with throughout
// the experiments: the resource-cap search targets 85% of each deadline,
// keeping slack in reserve for the single-pool plan model's optimism about
// typed slots (see plan.GenerateCappedMargin).
const PlanMargin = 0.85

// RunScenario executes flows on a cluster configured by cfg under spec,
// generating resource-capped plans client-side for WOHA schedulers (at the
// default PlanMargin). obs may be nil.
func RunScenario(cfg cluster.Config, flows []*workflow.Workflow, spec SchedulerSpec, seed int64, obs cluster.Observer) (*cluster.Result, error) {
	return RunScenarioMargin(cfg, flows, spec, seed, obs, PlanMargin)
}

// RunScenarioMargin is RunScenario with an explicit plan safety margin,
// exposed for the margin-ablation benchmarks. It is the one-cell serial
// case of the runner every figure sweep goes through.
func RunScenarioMargin(cfg cluster.Config, flows []*workflow.Workflow, spec SchedulerSpec, seed int64, obs cluster.Observer, margin float64) (*cluster.Result, error) {
	var observer func() cluster.Observer
	if obs != nil {
		observer = func() cluster.Observer { return obs }
	}
	cell := ScenarioCell(spec.Name, cfg, flows, spec, seed, observer, margin, nil)
	results, err := runner.New(runner.Config{Workers: 1}).RunAll([]runner.Cell{cell})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return results[0], nil
}

// ScenarioCell builds the runner cell equivalent of RunScenarioMargin: a
// cluster configured by cfg running flows under spec, with resource-capped
// plans generated inside the cell for WOHA schedulers. observer may be nil.
// pl optionally names a shared plan service for the cell (see PlansFactory).
func ScenarioCell(name string, cfg cluster.Config, flows []*workflow.Workflow, spec SchedulerSpec, seed int64, observer func() cluster.Observer, margin float64, pl *planner.Planner) runner.Cell {
	c := runner.Cell{
		Name:     name,
		Config:   cfg,
		Policy:   func() cluster.Policy { return spec.New(seed) },
		Flows:    flows,
		Observer: observer,
	}
	if spec.IsWOHA() {
		c.Plans = PlansFactory(flows, cfg, spec.Priority, margin, pl)
	}
	return c
}

// PlansFactory builds a cell's Plans closure: typed, resource-capped plans
// for flows against cc at the given margin. With pl nil every plan is
// generated directly (the seed path — one Algorithm 1 cap search per
// workflow, per cell). With a shared Planner, requests go through its
// structural cache and singleflight coalescing instead, so cells asking for
// the same (shape, caps, policy, margin) key — concurrently or not — cost
// one simulation total. Both paths return byte-identical plans.
func PlansFactory(flows []*workflow.Workflow, cc cluster.Config, pol priority.Policy, margin float64, pl *planner.Planner) func() ([]*plan.Plan, error) {
	caps := plan.Caps{Maps: cc.MapSlots(), Reduces: cc.ReduceSlots()}
	return func() ([]*plan.Plan, error) {
		if pl != nil && pl.Margin() != margin {
			// A planner caches per its own margin; silently serving a
			// different one would change the figures.
			return nil, fmt.Errorf("experiments: shared planner margin %v does not match requested margin %v", pl.Margin(), margin)
		}
		plans := make([]*plan.Plan, len(flows))
		for i, w := range flows {
			var p *plan.Plan
			var err error
			if pl != nil {
				p, err = pl.Plan(w, caps, pol)
			} else {
				p, err = plan.GenerateCappedTyped(w, caps, pol, margin)
			}
			if err != nil {
				return nil, fmt.Errorf("plan for %q: %w", w.Name, err)
			}
			plans[i] = p
		}
		return plans, nil
	}
}
