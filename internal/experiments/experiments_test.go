package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Note:   "n",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T\n", "n\n", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSchedulerSpecs(t *testing.T) {
	specs := AllSchedulers()
	if len(specs) != 6 {
		t.Fatalf("AllSchedulers = %d, want 6", len(specs))
	}
	wantNames := []string{"EDF", "FIFO", "Fair", "WOHA-LPF", "WOHA-HLF", "WOHA-MPF"}
	for i, spec := range specs {
		if spec.Name != wantNames[i] {
			t.Errorf("spec %d = %q, want %q", i, spec.Name, wantNames[i])
		}
		pol := spec.New(1)
		if pol.Name() != spec.Name {
			t.Errorf("policy name %q, spec name %q", pol.Name(), spec.Name)
		}
		wantWOHA := strings.HasPrefix(spec.Name, "WOHA")
		if spec.IsWOHA() != wantWOHA {
			t.Errorf("%s: IsWOHA = %v", spec.Name, spec.IsWOHA())
		}
	}
	if _, err := SchedulerByName("nope"); err == nil {
		t.Error("SchedulerByName(nope) succeeded")
	}
	if s, err := SchedulerByName("WOHA-LPF"); err != nil || s.Name != "WOHA-LPF" {
		t.Errorf("SchedulerByName(WOHA-LPF) = %v, %v", s, err)
	}
}

// TestFig11PaperShape asserts the qualitative result of Fig 11: all three
// WOHA variants meet every deadline; EDF sacrifices W-1 while finishing W-3
// far ahead; FIFO and Fair are tardy on W-3; and workspans sit in the
// paper's 3000-5500s band.
func TestFig11PaperShape(t *testing.T) {
	res, err := Fig11(DefaultFig11Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"WOHA-LPF", "WOHA-HLF", "WOHA-MPF"} {
		if got := res.Results[name].DeadlineMisses(); got != 0 {
			t.Errorf("%s missed %d deadlines, want 0", name, got)
		}
	}
	edf := res.Results["EDF"]
	if edf.Workflows[0].Met {
		t.Error("EDF met W-1; the paper's EDF sacrifices the earliest-released workflow")
	}
	if !edf.Workflows[2].Met {
		t.Error("EDF missed W-3, which it should favor")
	}
	// "W-3 finishes far before its deadline" under EDF.
	if slack := edf.Workflows[2].Deadline.Sub(edf.Workflows[2].Finish); slack < 5*time.Minute {
		t.Errorf("EDF W-3 slack = %v, want >= 5m", slack)
	}
	fifo := res.Results["FIFO"]
	if !fifo.Workflows[0].Met {
		t.Error("FIFO missed W-1; the paper's FIFO finishes it well ahead")
	}
	if fifo.Workflows[2].Met {
		t.Error("FIFO met W-3; the paper reports large FIFO tardiness on W-3")
	}
	if res.Results["Fair"].DeadlineMisses() == 0 {
		t.Error("Fair met every deadline; the paper calls it terrible at deadlines")
	}
	for name, r := range res.Results {
		for _, w := range r.Workflows {
			if w.Workspan < 2000*time.Second || w.Workspan > 6000*time.Second {
				t.Errorf("%s %s workspan %v outside the plausible band", name, w.Name, w.Workspan)
			}
		}
	}
}

// TestFig8PaperShape asserts Fig 8-10's qualitative claims on the Yahoo
// workload: FIFO and Fair far worse than the deadline-aware schedulers,
// WOHA-LPF/HLF at or below EDF everywhere (the paper's ~10% satisfaction
// gain), miss ratios non-increasing in cluster size, and WOHA's tardiness
// no worse than FIFO's.
func TestFig8PaperShape(t *testing.T) {
	res, err := Fig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Config.Sizes {
		edf := res.MissRatio["EDF"][k]
		fifo := res.MissRatio["FIFO"][k]
		fair := res.MissRatio["Fair"][k]
		lpf := res.MissRatio["WOHA-LPF"][k]
		hlf := res.MissRatio["WOHA-HLF"][k]
		if fifo <= edf {
			t.Errorf("size %d: FIFO (%.3f) not worse than EDF (%.3f)", k, fifo, edf)
		}
		if fair <= lpf {
			t.Errorf("size %d: Fair (%.3f) not worse than WOHA-LPF (%.3f)", k, fair, lpf)
		}
		if lpf > edf || hlf > edf {
			t.Errorf("size %d: WOHA (LPF %.3f, HLF %.3f) worse than EDF (%.3f)", k, lpf, hlf, edf)
		}
	}
	// The headline: WOHA improves the satisfaction ratio vs the best
	// baseline at the middle cluster size.
	if gain := res.MissRatio["EDF"][1] - res.MissRatio["WOHA-LPF"][1]; gain < 0.04 {
		t.Errorf("WOHA-LPF vs EDF gain at 240 slots = %.3f, want >= 0.04", gain)
	}
	for name, series := range res.MissRatio {
		for k := 1; k < len(series); k++ {
			if series[k] > series[k-1]+1e-9 {
				t.Errorf("%s: miss ratio grew with cluster size: %v", name, series)
			}
		}
	}
	for k := range res.Config.Sizes {
		if res.MaxTard["WOHA-LPF"][k] > res.MaxTard["FIFO"][k] {
			t.Errorf("size %d: WOHA-LPF max tardiness %v above FIFO %v",
				k, res.MaxTard["WOHA-LPF"][k], res.MaxTard["FIFO"][k])
		}
		if res.TotalTard["WOHA-LPF"][k] > res.TotalTard["FIFO"][k] {
			t.Errorf("size %d: WOHA-LPF total tardiness above FIFO", k)
		}
	}
}

// TestFig12Utilization sanity-checks the Fig 12 numbers: every scheduler
// lands in a plausible band and the table renders.
func TestFig12Utilization(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.Recurrences = 3
	res, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range res.Results {
		u := r.Utilization()
		if u < 0.25 || u > 1.0 {
			t.Errorf("%s utilization %.3f outside (0.25, 1.0]", name, u)
		}
	}
	var sb strings.Builder
	if err := res.UtilizationTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 recurrence") {
		t.Errorf("utilization table missing recurrence note:\n%s", sb.String())
	}
}

// TestFig13aShape asserts the scalability ranking at a size where the naive
// queue has clearly collapsed: DSL and BST sustain orders of magnitude more
// AssignTask calls.
func TestFig13aShape(t *testing.T) {
	cfg := Fig13aConfig{
		QueueLengths: []int{100, 10000},
		OpsBudget:    20000,
		MaxDuration:  300 * time.Millisecond,
		Seed:         1,
	}
	res := Fig13a(cfg)
	dsl := res.Throughput["DSL"][1]
	bst := res.Throughput["BST"][1]
	naive := res.Throughput["Naive"][1]
	if dsl < 20*naive {
		t.Errorf("DSL (%.0f/s) not >> naive (%.0f/s) at 10k workflows", dsl, naive)
	}
	if bst < 20*naive {
		t.Errorf("BST (%.0f/s) not >> naive (%.0f/s) at 10k workflows", bst, naive)
	}
	if dsl < bst/2 {
		t.Errorf("DSL (%.0f/s) far below BST (%.0f/s); head-pop fast path lost", dsl, bst)
	}
	var sb strings.Builder
	if err := res.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestFig13bPlanSizes asserts the paper's storage claim: plans stay within a
// few KB even for 1400+-task workflows.
func TestFig13bPlanSizes(t *testing.T) {
	res, err := Fig13b(DefaultFig13bConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MaxBytes(); got > 8*1024 {
		t.Errorf("max plan size = %d bytes, want <= 8 KiB (paper: ~7 KB)", got)
	}
	found := false
	for _, pts := range res.Points {
		for _, pt := range pts {
			if pt.Tasks >= 1000 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no workflow reached 1000 tasks; experiment under-covers the paper's range")
	}
	var sb strings.Builder
	if err := res.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
}

// TestFig3Intervals checks the property Fig 3 exists to establish: progress
// requirements change rarely relative to slot free-ups (milliseconds), so
// Algorithm 2's lazy resettling amortizes.
func TestFig3Intervals(t *testing.T) {
	res, err := Fig3(DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	h := res.Histogram
	if h.Total() < 1000 {
		t.Fatalf("only %d intervals measured", h.Total())
	}
	// Virtually all intervals exceed 100ms, and a large fraction exceed
	// 10s — both orders of magnitude above per-ms slot free-ups.
	if got := h.FractionAbove(2); got < 0.97 {
		t.Errorf("fraction of intervals > 100ms = %.3f, want >= 0.97", got)
	}
	if got := h.FractionAbove(4); got < 0.30 {
		t.Errorf("fraction of intervals > 10s = %.3f, want >= 0.30", got)
	}
}

// TestFig56Stats spot-checks the trace-statistics tables against the claims
// the paper reads off the Yahoo data.
func TestFig56Stats(t *testing.T) {
	res := Fig56(DefaultFig56Config())
	if got := res.MapTime.P(100) - res.MapTime.P(10); got < 0.55 {
		t.Errorf("maps in [10s,100s] = %.3f, want >= 0.55", got)
	}
	if got := 1 - res.ReduceTime.P(100); got < 0.45 {
		t.Errorf("reduces > 100s = %.3f, want >= 0.45", got)
	}
	if got := 1 - res.MapCount.P(100); got < 0.2 {
		t.Errorf("jobs > 100 maps = %.3f, want >= 0.2", got)
	}
	if got := res.ReduceCount.P(9.5); got < 0.55 {
		t.Errorf("jobs < 10 reduces = %.3f, want >= 0.55", got)
	}
	for _, tbl := range []*Table{res.Fig5Table(), res.Fig6Table()} {
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFig2CappedPlansWin asserts the motivating example's outcome.
func TestFig2CappedPlansWin(t *testing.T) {
	res, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if res.UncappedMisses == 0 {
		t.Error("uncapped plans met every deadline; Fig 2 predicts a miss")
	}
	if res.CappedMisses != 0 {
		t.Errorf("capped plans missed %d deadlines, want 0", res.CappedMisses)
	}
	var sb strings.Builder
	if err := res.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// TestTimelinesEmitAllPanels checks the Fig 14-19 CSV emission: 6 schedulers
// x 2 slot types, each with a header and data.
func TestTimelinesEmitAllPanels(t *testing.T) {
	cfg := DefaultFig11Config()
	res, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]*bytes.Buffer{}
	err = res.WriteTimelines(func(stem string) (io.WriteCloser, error) {
		buf := &bytes.Buffer{}
		got[stem] = buf
		return nopWriteCloser{buf}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("emitted %d files, want 12", len(got))
	}
	for stem, buf := range got {
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 10 {
			t.Errorf("%s: only %d lines", stem, len(lines))
		}
		if !strings.HasPrefix(lines[0], "seconds,") {
			t.Errorf("%s: bad header %q", stem, lines[0])
		}
	}
	for _, want := range []string{"fig14_FIFO_map", "fig15_EDF_reduce", "fig19_WOHA-MPF_map"} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing panel %s", want)
		}
	}
}

// TestAblationsFig11 smoke-tests the simulator-knob ablations and checks the
// two load-bearing contrasts: the baseline meets every deadline and strict
// (non-work-conserving) scheduling is strictly worse.
func TestAblationsFig11(t *testing.T) {
	results, err := AblationsFig11()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationResult{}
	for _, r := range results {
		byName[r.Variant] = r
	}
	if got := byName["baseline (margin 0.85)"]; got.Misses != 0 {
		t.Errorf("baseline missed %d deadlines", got.Misses)
	}
	strict := byName["strict (no work conservation)"]
	if strict.Misses == 0 {
		t.Error("strict mode met every deadline; work conservation should matter")
	}
	if strict.Makespan <= byName["baseline (margin 0.85)"].Makespan {
		t.Error("strict makespan not worse than baseline")
	}
	var sb strings.Builder
	if err := AblationTable("t", results).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "strict") {
		t.Error("table missing strict row")
	}
}
