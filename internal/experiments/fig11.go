package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// Fig11Config parameterizes the synthetic-workflow experiments of
// Fig 11 / Fig 12 / Fig 14-19: three Fig 7 workflows submitted 5 minutes
// apart with relative deadlines 80, 70, and 60 minutes on a 32-slave cluster
// (2 map + 1 reduce slot per slave).
type Fig11Config struct {
	// Scale multiplies all task durations of the Fig 7 topology.
	Scale float64
	// Slaves is the cluster size (paper: 32).
	Slaves int
	// Recurrences repeats the three-workflow pattern; Fig 12 uses 3.
	Recurrences int
	// Period separates successive recurrences.
	Period time.Duration
	// Seed drives WOHA's queue PRNG.
	Seed int64
	// Margin is the plan safety margin (see plan.GenerateCappedMargin).
	Margin float64
	// Workers caps how many of the six scheduler cells run concurrently;
	// 0 selects one per core, 1 runs serially. Results are identical at
	// any worker count (see internal/runner).
	Workers int
	// Planner optionally shares one coalescing plan service across the
	// cells (and with any other sweep using the same planner — the Fig 7
	// templates recur across recurrences and experiments). Nil generates
	// plans directly per cell; figures are byte-identical either way. The
	// planner's margin must equal Margin.
	Planner *planner.Planner
	// Obs optionally instruments the sweep's runner (woha_runner_* metrics).
	Obs *obs.Obs
}

// DefaultFig11Config matches the paper's setup. Scale is calibrated so the
// cluster sits in the contended-but-feasible regime where scheduler choice
// decides deadline satisfaction (see EXPERIMENTS.md).
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		Scale:       1.70,
		Slaves:      32,
		Recurrences: 1,
		Period:      85 * time.Minute,
		Seed:        1,
		Margin:      PlanMargin,
	}
}

// Cluster returns the cluster configuration for cfg.
func (cfg Fig11Config) Cluster() cluster.Config {
	return cluster.Config{
		Nodes:              cfg.Slaves,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		Seed:               cfg.Seed,
	}
}

// Flows builds the workflow population: per recurrence r, three Fig 7
// workflows released at r*Period + {0, 5, 10} minutes with relative
// deadlines 80, 70, 60 minutes — later releases face earlier deadlines.
func (cfg Fig11Config) Flows() []*workflow.Workflow {
	n := cfg.Recurrences
	if n < 1 {
		n = 1
	}
	var flows []*workflow.Workflow
	for r := 0; r < n; r++ {
		base := simtime.Epoch.Add(time.Duration(r) * cfg.Period)
		for i := 0; i < 3; i++ {
			release := base.Add(time.Duration(i*5) * time.Minute)
			relDeadline := time.Duration(80-10*i) * time.Minute
			name := fmt.Sprintf("W-%d", i+1)
			if n > 1 {
				name = fmt.Sprintf("W-%d.%d", i+1, r+1)
			}
			flows = append(flows, workload.Fig7(name, cfg.Scale, release, release.Add(relDeadline)))
		}
	}
	return flows
}

// Fig11Result holds per-scheduler outcomes of the synthetic experiment.
type Fig11Result struct {
	Config Fig11Config
	// Results maps scheduler name to the full run result, in
	// AllSchedulers order via Order.
	Order   []string
	Results map[string]*cluster.Result
	// Timelines maps scheduler name to its slot-allocation recording
	// (the Fig 14-19 panels).
	Timelines map[string]*metrics.Timeline
}

// Fig11Cells builds the sweep's scenario cells — one per scheduler. Each
// cell records its slot-allocation timeline into timelines at the cell's
// index (the factory runs on the cell's worker, so distinct cells touch
// distinct entries).
func Fig11Cells(cfg Fig11Config) (cells []runner.Cell, timelines []*metrics.Timeline) {
	specs := AllSchedulers()
	flows := cfg.Flows()
	timelines = make([]*metrics.Timeline, len(specs))
	cells = make([]runner.Cell, len(specs))
	for i, spec := range specs {
		cells[i] = ScenarioCell(spec.Name, cfg.Cluster(), flows, spec, cfg.Seed, func() cluster.Observer {
			timelines[i] = metrics.NewTimeline()
			return timelines[i]
		}, cfg.Margin, cfg.Planner)
	}
	return cells, timelines
}

// Fig11 runs the six schedulers on the Fig 11 workload, fanning the
// independent cells over cfg.Workers.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	cells, timelines := Fig11Cells(cfg)
	results, err := runner.New(runner.Config{Workers: cfg.Workers, Obs: cfg.Obs}).RunAll(cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := &Fig11Result{
		Config:    cfg,
		Results:   make(map[string]*cluster.Result),
		Timelines: make(map[string]*metrics.Timeline),
	}
	for i, spec := range AllSchedulers() {
		out.Order = append(out.Order, spec.Name)
		out.Results[spec.Name] = results[i]
		out.Timelines[spec.Name] = timelines[i]
	}
	return out, nil
}

// WorkspanTable renders Fig 11: the workspan of each workflow under each
// scheduler, with deadline-met marks.
func (r *Fig11Result) WorkspanTable() *Table {
	t := &Table{
		Title:  "Fig 11: Synthetic workflow workspan (seconds) - 32 slaves",
		Note:   "three Fig-7 workflows, releases 0/5/10 min, relative deadlines 80/70/60 min; * marks a deadline miss",
		Header: []string{"scheduler"},
	}
	first := r.Results[r.Order[0]]
	for _, w := range first.Workflows {
		t.Header = append(t.Header, w.Name)
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, w := range r.Results[name].Workflows {
			cell := fmt.Sprintf("%.0f", w.Workspan.Seconds())
			if !w.Met {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// UtilizationTable renders Fig 12: overall cluster utilization per
// scheduler.
func (r *Fig11Result) UtilizationTable() *Table {
	t := &Table{
		Title:  "Fig 12: Cluster utilization",
		Note:   fmt.Sprintf("%d recurrence(s) of the Fig-11 workload", max(1, r.Config.Recurrences)),
		Header: []string{"scheduler", "utilization", "map-util", "reduce-util"},
	}
	for _, name := range r.Order {
		res := r.Results[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.3f", res.Utilization()),
			fmt.Sprintf("%.3f", res.MapUtilization()),
			fmt.Sprintf("%.3f", res.ReduceUtilization()),
		})
	}
	return t
}

// WriteTimelines emits the Fig 14-19 slot-allocation series: for each
// scheduler, one CSV per slot type, via the open callback (which receives a
// file-stem such as "fig14_FIFO_map" and returns the destination).
func (r *Fig11Result) WriteTimelines(open func(stem string) (io.WriteCloser, error)) error {
	// The paper's panel order: Fig 14 FIFO, 15 EDF, 16 Fair, 17 WOHA-LPF,
	// 18 WOHA-HLF, 19 WOHA-MPF.
	panels := []struct {
		fig  int
		name string
	}{
		{14, "FIFO"}, {15, "EDF"}, {16, "Fair"},
		{17, "WOHA-LPF"}, {18, "WOHA-HLF"}, {19, "WOHA-MPF"},
	}
	for _, p := range panels {
		tl, ok := r.Timelines[p.name]
		if !ok {
			return fmt.Errorf("experiments: no timeline for %s", p.name)
		}
		for _, st := range []cluster.SlotType{cluster.MapSlot, cluster.ReduceSlot} {
			w, err := open(fmt.Sprintf("fig%d_%s_%s", p.fig, p.name, st))
			if err != nil {
				return err
			}
			err = tl.WriteCSV(w, st)
			if cerr := w.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("experiments: writing %s timeline for %s: %w", st, p.name, err)
			}
		}
	}
	return nil
}
