package experiments

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestFederationSweep runs a reduced staleness sweep twice and checks the
// structural invariants: one point per bound, every workflow routed to some
// member at every bound, snapshot ages within each bound, and byte-identical
// results across runs (the determinism pin at the sweep level).
func TestFederationSweep(t *testing.T) {
	cfg := DefaultFederationSweepConfig()
	cfg.Yahoo.Workflows = 20
	cfg.Yahoo.Jobs = 60
	cfg.Clusters = 3
	cfg.Staleness = []time.Duration{0, 2 * time.Minute}

	res, err := FederationSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(cfg.Staleness) {
		t.Fatalf("%d points, want %d", len(res.Points), len(cfg.Staleness))
	}
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		t.Fatal(err)
	}
	population := len(workload.MultiJob(flows))
	for i, p := range res.Points {
		if p.Staleness != cfg.Staleness[i] {
			t.Errorf("point %d staleness %v, want %v", i, p.Staleness, cfg.Staleness[i])
		}
		if len(p.Routed) != cfg.Clusters {
			t.Fatalf("point %d routed over %d clusters, want %d", i, len(p.Routed), cfg.Clusters)
		}
		routed := 0
		for _, n := range p.Routed {
			routed += n
		}
		if routed != population {
			t.Errorf("point %d routed %d workflows, want %d", i, routed, population)
		}
		if p.Staleness == 0 && p.MaxSnapshotAge != 0 {
			t.Errorf("point %d: max snapshot age %v at staleness 0, want 0", i, p.MaxSnapshotAge)
		}
		if p.Staleness > 0 && p.MaxSnapshotAge >= p.Staleness {
			t.Errorf("point %d: max snapshot age %v, want < bound %v", i, p.MaxSnapshotAge, p.Staleness)
		}
		if p.Misses < 0 || p.Misses > population {
			t.Errorf("point %d: %d misses of %d workflows", i, p.Misses, population)
		}
	}

	again, err := FederationSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Errorf("sweep is not deterministic:\nfirst  %+v\nsecond %+v", res.Points, again.Points)
	}

	if rows := res.Table().Rows; len(rows) != len(res.Points) {
		t.Errorf("table has %d rows, want %d", len(rows), len(res.Points))
	}
}
