package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/workload"
)

// FederationSweepConfig parameterizes the miss-rate-vs-staleness sweep: the
// Yahoo workload routed across N member clusters by one router policy, once
// per snapshot-staleness bound. At staleness 0 the router sees every member's
// true load at each decision; as the bound grows it acts on increasingly
// out-of-date views, routes into backlogs it cannot see, and the deadline
// miss rate climbs — the sweep quantifies how much observability the routing
// layer actually needs.
type FederationSweepConfig struct {
	// Yahoo builds the workflow population (single-job workflows removed, as
	// in Fig 8).
	Yahoo workload.YahooConfig
	// Clusters is the number of member clusters.
	Clusters int
	// Size is the per-type slot count of each member; the federation's total
	// capacity is Clusters*Size per pool.
	Size int
	// Scheduler is the member policy's paper label (default WOHA-LPF).
	Scheduler string
	// Router names the routing policy (see federation.RouterNames).
	Router string
	// Staleness lists the snapshot-refresh bounds to sweep, ascending.
	Staleness []time.Duration
	// Seed drives WOHA's queue PRNG and the member clusters' noise.
	Seed int64
	// Margin is the plan safety margin.
	Margin float64
	// Obs optionally instruments the member runs and routers.
	Obs *obs.Obs
}

// DefaultFederationSweepConfig routes the Fig 8 population over four members
// whose combined capacity sits just below the comfortable single-cluster
// regime, so routing quality — not raw capacity — decides the miss rate.
func DefaultFederationSweepConfig() FederationSweepConfig {
	return FederationSweepConfig{
		Yahoo:     workload.DefaultYahooConfig(),
		Clusters:  4,
		Size:      40,
		Scheduler: "WOHA-LPF",
		Router:    federation.RouterSlack,
		Staleness: []time.Duration{0, 30 * time.Second, 2 * time.Minute, 10 * time.Minute, 30 * time.Minute},
		Seed:      1,
		Margin:    PlanMargin,
	}
}

// FederationSweepPoint is one staleness bound's outcome.
type FederationSweepPoint struct {
	// Staleness is the snapshot-refresh bound.
	Staleness time.Duration
	// Misses and MissRatio are the deadline violations over the whole routed
	// population.
	Misses    int
	MissRatio float64
	// Routed counts workflows per member cluster.
	Routed []int
	// MaxSnapshotAge is the stalest view any routing decision acted on.
	MaxSnapshotAge time.Duration
}

// FederationSweepResult holds the sweep.
type FederationSweepResult struct {
	Config FederationSweepConfig
	Points []FederationSweepPoint
}

// FederationSweep runs the staleness sweep: one federation run per bound,
// identical members, workload, and router throughout.
func FederationSweep(cfg FederationSweepConfig) (*FederationSweepResult, error) {
	if cfg.Clusters < 1 {
		return nil, fmt.Errorf("experiments: federation sweep needs >= 1 cluster, got %d", cfg.Clusters)
	}
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	multi := workload.MultiJob(flows)
	spec, err := SchedulerByName(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	cc := cluster.Config{
		Nodes:              cfg.Size / 2,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		Seed:               cfg.Seed,
	}
	memberCaps := plan.Caps{Maps: cc.MapSlots(), Reduces: cc.ReduceSlots()}
	var plans []*plan.Plan
	if spec.IsWOHA() {
		plans = make([]*plan.Plan, len(multi))
		for i, w := range multi {
			p, err := plan.GenerateCappedTyped(w, memberCaps, spec.Priority, cfg.Margin)
			if err != nil {
				return nil, fmt.Errorf("experiments: plan for %q: %w", w.Name, err)
			}
			plans[i] = p
		}
	}

	out := &FederationSweepResult{Config: cfg}
	for _, staleness := range cfg.Staleness {
		router, err := federation.NewRouter(cfg.Router)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		sims := make([]*cluster.Simulator, cfg.Clusters)
		for i := range sims {
			if sims[i], err = cluster.New(cc, spec.New(cfg.Seed), nil); err != nil {
				return nil, fmt.Errorf("experiments: member %d: %w", i, err)
			}
		}
		fed, err := federation.New(federation.Config{
			Router:          router,
			SnapshotRefresh: staleness,
			Obs:             cfg.Obs,
		}, sims)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for i, w := range multi {
			var p *plan.Plan
			if plans != nil {
				p = plans[i]
			}
			if err := fed.Submit(w, p); err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
		}
		res, err := fed.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		pt := FederationSweepPoint{
			Staleness: staleness,
			Misses:    res.DeadlineMisses(),
			MissRatio: res.MissRatio(),
			Routed:    res.RoutedPerCluster(),
		}
		for _, rt := range res.Routes {
			if rt.SnapshotAge > pt.MaxSnapshotAge {
				pt.MaxSnapshotAge = rt.SnapshotAge
			}
		}
		out.Points = append(out.Points, pt)
		for _, s := range sims {
			s.Release()
		}
	}
	return out, nil
}

// Table renders the sweep in the package's figure-table format.
func (r *FederationSweepResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Federation sweep: miss rate vs snapshot staleness (%d clusters x %d slots, %s router, %s)",
			r.Config.Clusters, r.Config.Size, r.Config.Router, r.Config.Scheduler),
		Note: "each row routes the Yahoo population with load snapshots allowed to go the given duration stale " +
			"before the router must retake them",
		Header: []string{"staleness", "misses", "miss-ratio", "max-snapshot-age", "routed-per-cluster"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Staleness.String(),
			fmt.Sprintf("%d", p.Misses),
			fmt.Sprintf("%.3f", p.MissRatio),
			p.MaxSnapshotAge.String(),
			fmt.Sprintf("%v", p.Routed),
		})
	}
	return t
}
