package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dsl"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig13aConfig parameterizes the scheduler-throughput experiment: how many
// AssignTask decisions per second each queue implementation sustains at a
// given queue length.
type Fig13aConfig struct {
	// QueueLengths lists the workflow-queue sizes to measure (the paper
	// sweeps 10^2 to 10^5+).
	QueueLengths []int
	// OpsBudget caps the operations measured per point; MaxDuration caps
	// wall time per point (the naive queue at 10^5 entries is slow).
	OpsBudget   int
	MaxDuration time.Duration
	// Seed drives entry generation and the DSL PRNG.
	Seed int64
}

// DefaultFig13aConfig matches the paper's sweep at sizes that complete
// quickly.
func DefaultFig13aConfig() Fig13aConfig {
	return Fig13aConfig{
		QueueLengths: []int{100, 1000, 10000, 100000},
		OpsBudget:    200000,
		MaxDuration:  2 * time.Second,
		Seed:         1,
	}
}

// Fig13aResult holds AssignTask throughput (operations per second) per queue
// backend and queue length.
type Fig13aResult struct {
	Config Fig13aConfig
	// Throughput[backend][k] is ops/sec at QueueLengths[k]. Backends are
	// keyed "DSL", "BST", "Naive".
	Order      []string
	Throughput map[string][]float64
}

// Fig13a measures AssignTask throughput. Unlike the simulators this
// experiment necessarily reads the wall clock.
func Fig13a(cfg Fig13aConfig) *Fig13aResult {
	out := &Fig13aResult{
		Config:     cfg,
		Order:      []string{core.QueueDSL.String(), core.QueueBST.String(), core.QueueDet.String(), core.QueueNaive.String()},
		Throughput: make(map[string][]float64),
	}
	backends := map[string]func() dsl.Queue{
		"DSL":   func() dsl.Queue { return dsl.New(cfg.Seed) },
		"BST":   func() dsl.Queue { return dsl.NewBST() },
		"Det":   func() dsl.Queue { return dsl.NewDeterministic() },
		"Naive": func() dsl.Queue { return dsl.NewNaive() },
	}
	for _, name := range out.Order {
		mk := backends[name]
		for _, n := range cfg.QueueLengths {
			out.Throughput[name] = append(out.Throughput[name], measureQueue(mk(), n, cfg))
		}
	}
	return out
}

// measureQueue fills q with n synthetic workflow entries and measures
// Best+Scheduled (one AssignTask) throughput.
func measureQueue(q dsl.Queue, n int, cfg Fig13aConfig) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < n; i++ {
		reqs := syntheticReqs(rng)
		deadline := simtime.FromSeconds(600 + rng.Float64()*100000)
		q.Add(dsl.NewEntry(i, deadline, reqs), 0)
	}
	now := simtime.Epoch
	start := time.Now()
	ops := 0
	for ops < cfg.OpsBudget {
		now = now.Add(5 * time.Millisecond)
		e, ok := q.Best(now)
		if !ok {
			break
		}
		q.Scheduled(e.ID, now)
		ops++
		// Check the clock periodically, not per-op, to keep overhead out
		// of the measurement.
		if ops%64 == 0 && time.Since(start) > cfg.MaxDuration {
			break
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// syntheticReqs draws a small progress-requirement list shaped like real
// plans: a handful of waves tens of seconds apart.
func syntheticReqs(rng *rand.Rand) []plan.Req {
	n := 2 + rng.Intn(8)
	reqs := make([]plan.Req, 0, n)
	ttd := time.Duration(200+rng.Intn(2000)) * time.Second
	cum := 0
	for i := 0; i < n; i++ {
		cum += 1 + rng.Intn(40)
		reqs = append(reqs, plan.Req{TTD: ttd, Cum: cum})
		ttd -= time.Duration(10+rng.Intn(120)) * time.Second
	}
	return reqs
}

// Table renders Fig 13(a).
func (r *Fig13aResult) Table() *Table {
	t := &Table{
		Title:  "Fig 13(a): AssignTask throughput (calls/second) vs workflow queue length",
		Header: []string{"backend"},
	}
	for _, n := range r.Config.QueueLengths {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for _, name := range r.Order {
		row := []string{"WOHA-" + name}
		for _, v := range r.Throughput[name] {
			row = append(row, fmt.Sprintf("%.0f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig13bConfig parameterizes the plan-size experiment.
type Fig13bConfig struct {
	// Workflows is how many random workflows to sample.
	Workflows int
	// MaxJobs bounds workflow sizes (larger than the Yahoo set, to reach
	// the paper's 1400-task workflows).
	MaxJobs int
	// Slots is the plan-generation resource cap.
	Slots int
	// Seed drives sampling.
	Seed int64
}

// DefaultFig13bConfig samples enough workflows to cover 0 to ~1500 tasks.
func DefaultFig13bConfig() Fig13bConfig {
	return Fig13bConfig{Workflows: 120, MaxJobs: 25, Slots: 400, Seed: 1}
}

// Fig13bPoint is one (task count, plan size) sample.
type Fig13bPoint struct {
	Tasks int
	Bytes int
}

// Fig13bResult holds plan sizes per intra-workflow policy.
type Fig13bResult struct {
	Config Fig13bConfig
	Order  []string
	// Points[policy] are (tasks, encoded size) samples.
	Points map[string][]Fig13bPoint
}

// Fig13b generates scheduling plans for random workflows under each job
// priority policy and records encoded plan sizes.
func Fig13b(cfg Fig13bConfig) (*Fig13bResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := trace.NewGeneratorParams(cfg.Seed+1, trace.DefaultParams().Scale(1.0, 0.6))
	out := &Fig13bResult{
		Config: cfg,
		Points: make(map[string][]Fig13bPoint),
	}
	for _, pol := range priority.All() {
		out.Order = append(out.Order, pol.Name())
	}
	for i := 0; i < cfg.Workflows; i++ {
		size := 1 + rng.Intn(cfg.MaxJobs)
		w, err := workload.RandomDAG(rng, gen, fmt.Sprintf("pf-%d", i), size, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for _, pol := range priority.All() {
			p, err := plan.GenerateForPolicy(w, cfg.Slots, pol)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			out.Points[pol.Name()] = append(out.Points[pol.Name()], Fig13bPoint{
				Tasks: w.TotalTasks(),
				Bytes: p.Size(),
			})
		}
	}
	return out, nil
}

// Table renders Fig 13(b) as mean plan size per task-count bucket.
func (r *Fig13bResult) Table() *Table {
	buckets := []int{100, 250, 500, 1000, 1500, 1 << 30}
	labels := []string{"<100", "100-250", "250-500", "500-1000", "1000-1500", ">1500"}
	t := &Table{
		Title:  "Fig 13(b): Scheduling plan size (KB) vs workflow task count",
		Header: append([]string{"tasks"}, r.Order...),
	}
	for bi, label := range labels {
		row := []string{label}
		for _, polName := range r.Order {
			sum, count, maxB := 0, 0, 0
			lo := 0
			if bi > 0 {
				lo = buckets[bi-1]
			}
			for _, pt := range r.Points[polName] {
				if pt.Tasks >= lo && pt.Tasks < buckets[bi] {
					sum += pt.Bytes
					count++
					if pt.Bytes > maxB {
						maxB = pt.Bytes
					}
				}
			}
			if count == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.2f (max %.2f)",
					float64(sum)/float64(count)/1024, float64(maxB)/1024))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MaxBytes returns the largest plan observed for any policy.
func (r *Fig13bResult) MaxBytes() int {
	m := 0
	for _, pts := range r.Points {
		for _, pt := range pts {
			if pt.Bytes > m {
				m = pt.Bytes
			}
		}
	}
	return m
}
