package experiments

// Golden parity harness for the struct-of-arrays simulator core: every cell
// of the committed figure corpus (the 18-cell Fig 8 sweep and the six Fig 11
// scheduler runs) plus a mode-coverage matrix (heartbeat grid, failures,
// noise + stragglers + speculation, locality + delay scheduling) is executed
// on both the live arena core and the frozen pre-refactor simulator in
// internal/cluster/refsim. The two must agree to the byte: reflect.DeepEqual
// over the full *cluster.Result (met/miss vectors, tardiness, busy time,
// attempt and event counts) and byte-equal rendered figure tables.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/refsim"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/simtime"
)

// cellPlans materializes a cell's plans once; both cores share them (plans
// are immutable and the simulator never mutates workflow specs).
func cellPlans(t *testing.T, c *runner.Cell) []*plan.Plan {
	t.Helper()
	if c.Plans == nil {
		return nil
	}
	plans, err := c.Plans()
	if err != nil {
		t.Fatalf("cell %q: plans: %v", c.Name, err)
	}
	return plans
}

// runLive executes a cell on the live (arena / batched-drain) core through
// the same New + Submit + Run + Release sequence the runner uses.
func runLive(t *testing.T, c *runner.Cell, plans []*plan.Plan, ob cluster.Observer) *cluster.Result {
	t.Helper()
	sim, err := cluster.New(c.Config, c.Policy(), ob)
	if err != nil {
		t.Fatalf("cell %q: new: %v", c.Name, err)
	}
	for i, w := range c.Flows {
		var p *plan.Plan
		if i < len(plans) {
			p = plans[i]
		}
		if err := sim.Submit(w, p); err != nil {
			t.Fatalf("cell %q: submit: %v", c.Name, err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("cell %q: run: %v", c.Name, err)
	}
	sim.Release()
	return res
}

// assertCellParity runs one cell on both cores (fresh policy each — policies
// are stateful) and requires identical results. Returns the live result so
// sweep-level figure accumulation reuses the run.
func assertCellParity(t *testing.T, c *runner.Cell) (*cluster.Result, *cluster.Result) {
	t.Helper()
	plans := cellPlans(t, c)
	live := runLive(t, c, plans, nil)
	ref, err := refsim.Run(c.Config, c.Policy(), nil, c.Flows, plans)
	if err != nil {
		t.Fatalf("cell %q: refsim: %v", c.Name, err)
	}
	if !reflect.DeepEqual(live, ref) {
		t.Fatalf("cell %q: live core diverges from reference simulator:\nlive: %+v\nref:  %+v", c.Name, live, ref)
	}
	return live, ref
}

// TestArenaCoreMatchesReferenceFig8 proves the SoA core reproduces the full
// Fig 8 corpus byte-for-byte: every cell's Result is DeepEqual to the frozen
// reference, the per-workflow met/miss vectors match exactly, and the three
// rendered figure tables built from each side are byte-identical.
func TestArenaCoreMatchesReferenceFig8(t *testing.T) {
	cfg := DefaultFig8Config()
	cells, err := Fig8Cells(cfg)
	if err != nil {
		t.Fatalf("Fig8Cells: %v", err)
	}
	newResult := func() *Fig8Result {
		return &Fig8Result{
			Config:    cfg,
			MissRatio: make(map[string][]float64),
			MaxTard:   make(map[string][]time.Duration),
			TotalTard: make(map[string][]time.Duration),
		}
	}
	liveFig, refFig := newResult(), newResult()
	specs := AllSchedulers()
	for _, spec := range specs {
		liveFig.Order = append(liveFig.Order, spec.Name)
		refFig.Order = append(refFig.Order, spec.Name)
	}
	per := len(cfg.Sizes)
	for i := range cells {
		c := &cells[i]
		live, ref := assertCellParity(t, c)
		// Explicit met/miss vector check — DeepEqual above subsumes it, but
		// a divergence here names the exact workflow that flipped.
		for k := range live.Workflows {
			if live.Workflows[k].Met != ref.Workflows[k].Met {
				t.Errorf("cell %q: workflow %d (%s) met=%v on live core, %v on reference",
					c.Name, k, live.Workflows[k].Name, live.Workflows[k].Met, ref.Workflows[k].Met)
			}
		}
		name := specs[i/per].Name
		liveFig.MissRatio[name] = append(liveFig.MissRatio[name], live.MissRatio())
		liveFig.MaxTard[name] = append(liveFig.MaxTard[name], live.MaxTardiness())
		liveFig.TotalTard[name] = append(liveFig.TotalTard[name], live.TotalTardiness())
		refFig.MissRatio[name] = append(refFig.MissRatio[name], ref.MissRatio())
		refFig.MaxTard[name] = append(refFig.MaxTard[name], ref.MaxTardiness())
		refFig.TotalTard[name] = append(refFig.TotalTard[name], ref.TotalTardiness())
	}
	tables := []struct {
		name string
		of   func(*Fig8Result) *Table
	}{
		{"miss", (*Fig8Result).MissTable},
		{"max-tardiness", (*Fig8Result).MaxTardTable},
		{"total-tardiness", (*Fig8Result).TotalTardTable},
	}
	for _, tb := range tables {
		var liveBuf, refBuf bytes.Buffer
		if err := tb.of(liveFig).Render(&liveBuf); err != nil {
			t.Fatalf("render live %s: %v", tb.name, err)
		}
		if err := tb.of(refFig).Render(&refBuf); err != nil {
			t.Fatalf("render ref %s: %v", tb.name, err)
		}
		if !bytes.Equal(liveBuf.Bytes(), refBuf.Bytes()) {
			t.Errorf("%s table diverges:\n--- live core ---\n%s--- reference ---\n%s",
				tb.name, liveBuf.String(), refBuf.String())
		}
	}
}

// TestArenaCoreMatchesReferenceFig11 runs the six Fig 11 scheduler cells on
// both cores with independent Timeline observers and requires identical
// results and identical recorded slot-allocation timelines.
func TestArenaCoreMatchesReferenceFig11(t *testing.T) {
	cfg := DefaultFig11Config()
	cells, _ := Fig11Cells(cfg)
	for i := range cells {
		c := &cells[i]
		plans := cellPlans(t, c)
		liveTL := metrics.NewTimeline()
		live := runLive(t, c, plans, liveTL)
		refTL := metrics.NewTimeline()
		ref, err := refsim.Run(c.Config, c.Policy(), refTL, c.Flows, plans)
		if err != nil {
			t.Fatalf("cell %q: refsim: %v", c.Name, err)
		}
		if !reflect.DeepEqual(live, ref) {
			t.Errorf("cell %q: live core diverges from reference simulator:\nlive: %+v\nref:  %+v", c.Name, live, ref)
		}
		if !reflect.DeepEqual(liveTL, refTL) {
			t.Errorf("cell %q: slot-allocation timelines diverge between cores", c.Name)
		}
	}
}

// TestArenaCoreMatchesReferenceModes covers the simulator modes the figure
// corpus leaves dark: heartbeat-grid dispatch (the batched-drain fast path),
// scripted node failures with and without recovery, duration noise with
// stragglers and speculative execution, and locality modeling with delay
// scheduling — each crossed with all six schedulers on the Fig 11 workload.
func TestArenaCoreMatchesReferenceModes(t *testing.T) {
	f11 := DefaultFig11Config()
	flows := f11.Flows()
	base := f11.Cluster()
	modes := []struct {
		name string
		mut  func(*cluster.Config)
	}{
		{"heartbeat", func(cc *cluster.Config) {
			cc.HeartbeatInterval = 3 * time.Second
			cc.SubmitterOverhead = 2 * time.Second
		}},
		{"failures", func(cc *cluster.Config) {
			cc.HeartbeatInterval = 3 * time.Second
			cc.Failures = []cluster.Failure{
				{Node: 0, At: simtime.Epoch.Add(10 * time.Minute), Downtime: 20 * time.Minute},
				{Node: 3, At: simtime.Epoch.Add(25 * time.Minute)}, // never recovers
				{Node: 7, At: simtime.Epoch.Add(40 * time.Minute), Downtime: 5 * time.Minute},
			}
		}},
		{"noise-spec", func(cc *cluster.Config) {
			cc.Noise = 0.2
			cc.StragglerProb = 0.05
			cc.StragglerFactor = 3
			cc.SpeculativeSlowdown = 1.5
		}},
		{"locality", func(cc *cluster.Config) {
			cc.Replication = 3
			cc.RemotePenalty = 1.3
			cc.DelayScheduling = 9 * time.Second
			cc.Noise = 0.1
		}},
	}
	for _, m := range modes {
		for _, spec := range AllSchedulers() {
			cc := base
			m.mut(&cc)
			name := fmt.Sprintf("%s/%s", m.name, spec.Name)
			cell := ScenarioCell(name, cc, flows, spec, f11.Seed, nil, f11.Margin, nil)
			t.Run(name, func(t *testing.T) {
				assertCellParity(t, &cell)
			})
		}
	}
}
