package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig3Config parameterizes the progress-requirement change-interval
// histogram: the paper computes, over capped HLF plans for the Yahoo data,
// the gaps between consecutive requirement changes, and finds every gap
// above 10ms with more than 99% above 10s.
type Fig3Config struct {
	// Yahoo supplies the workflow population.
	Yahoo workload.YahooConfig
	// Slots is the cluster size plans are generated against.
	Slots int
	// Seed is unused today but reserved for sampling variants.
	Seed int64
}

// DefaultFig3Config uses the full-scale trace marginals (the paper computes
// Fig 3 directly on the Yahoo data, not on the scaled-down Fig 8 workload).
func DefaultFig3Config() Fig3Config {
	cfg := workload.DefaultYahooConfig()
	cfg.Trace = trace.DefaultParams()
	return Fig3Config{Yahoo: cfg, Slots: 480}
}

// Fig3Result is the decade histogram of change intervals.
type Fig3Result struct {
	Config    Fig3Config
	Histogram *metrics.LogHistogram // intervals in milliseconds
}

// Fig3 builds resource-capped HLF plans for the Yahoo population and
// histograms the intervals between consecutive progress-requirement changes.
func Fig3(cfg Fig3Config) (*Fig3Result, error) {
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	h := metrics.NewLogHistogram()
	for _, w := range flows {
		p, err := plan.GenerateCapped(w, cfg.Slots, priority.HLF{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		for i := 1; i < len(p.Reqs); i++ {
			gap := p.Reqs[i-1].TTD - p.Reqs[i].TTD
			h.Add(float64(gap / time.Millisecond))
		}
	}
	return &Fig3Result{Config: cfg, Histogram: h}, nil
}

// Table renders Fig 3: occurrence counts per decade of change interval.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:  "Fig 3: Progress requirement change intervals (resource-capped HLF plans, Yahoo workload)",
		Header: []string{"interval", "count"},
	}
	for _, b := range r.Histogram.Buckets() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("<10^%d ms", b.UpperExp),
			fmt.Sprintf("%d", b.Count),
		})
	}
	t.Rows = append(t.Rows, []string{
		"fraction > 10s",
		fmt.Sprintf("%.4f", r.Histogram.FractionAbove(4)),
	})
	return t
}

// Fig56Config parameterizes the trace-statistics figures.
type Fig56Config struct {
	// Jobs is the sample size; the paper's trace has "more than 4000".
	Jobs int
	// Params are the trace marginals.
	Params trace.Params
	// Seed drives sampling.
	Seed int64
}

// DefaultFig56Config matches the published trace scale.
func DefaultFig56Config() Fig56Config {
	return Fig56Config{Jobs: 4000, Params: trace.DefaultParams(), Seed: 1}
}

// Fig56Result carries the empirical distributions behind Fig 5 and Fig 6.
type Fig56Result struct {
	Config Fig56Config
	// MapTime and ReduceTime are per-task durations in seconds.
	MapTime, ReduceTime metrics.CDF
	// MapCount and ReduceCount are per-job task counts.
	MapCount, ReduceCount metrics.CDF
	// DurRatio is reduce duration / map duration per job (Fig 5b);
	// CountRatio is map count / reduce count per job (Fig 6b).
	DurRatio, CountRatio metrics.CDF
}

// Fig56 synthesizes the trace and computes its distributions.
func Fig56(cfg Fig56Config) *Fig56Result {
	gen := trace.NewGeneratorParams(cfg.Seed, cfg.Params)
	jobs := gen.Jobs(cfg.Jobs)
	var mt, rt, mc, rc, dr, cr []float64
	for _, j := range jobs {
		mt = append(mt, j.MapTime.Seconds())
		mc = append(mc, float64(j.Maps))
		if j.Reduces > 0 {
			rt = append(rt, j.ReduceTime.Seconds())
			rc = append(rc, float64(j.Reduces))
			dr = append(dr, j.ReduceTime.Seconds()/j.MapTime.Seconds())
			cr = append(cr, float64(j.Maps)/float64(j.Reduces))
		}
	}
	return &Fig56Result{
		Config:      cfg,
		MapTime:     metrics.NewCDF(mt),
		ReduceTime:  metrics.NewCDF(rt),
		MapCount:    metrics.NewCDF(mc),
		ReduceCount: metrics.NewCDF(rc),
		DurRatio:    metrics.NewCDF(dr),
		CountRatio:  metrics.NewCDF(cr),
	}
}

// Fig5Table renders the task-duration CDFs at decade points plus the
// duration-ratio CDF.
func (r *Fig56Result) Fig5Table() *Table {
	t := &Table{
		Title:  "Fig 5: Task execution time CDFs (synthesized trace)",
		Header: []string{"x", "P(map time <= x)", "P(reduce time <= x)", "P(reduce/map dur <= x)"},
	}
	for _, x := range []float64{1, 10, 100, 1000, 10000} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%gs", x),
			fmt.Sprintf("%.3f", r.MapTime.P(x)),
			fmt.Sprintf("%.3f", r.ReduceTime.P(x)),
			fmt.Sprintf("%.3f", r.DurRatio.P(x)),
		})
	}
	return t
}

// Fig6Table renders the task-count CDFs at decade points plus the
// count-ratio CDF.
func (r *Fig56Result) Fig6Table() *Table {
	t := &Table{
		Title:  "Fig 6: Task number CDFs (synthesized trace)",
		Header: []string{"x", "P(maps <= x)", "P(reduces <= x)", "P(maps/reduces <= x)"},
	}
	for _, x := range []float64{1, 10, 100, 1000, 10000} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", x),
			fmt.Sprintf("%.3f", r.MapCount.P(x)),
			fmt.Sprintf("%.3f", r.ReduceCount.P(x)),
			fmt.Sprintf("%.3f", r.CountRatio.P(x)),
		})
	}
	return t
}
