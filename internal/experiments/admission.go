package experiments

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/runner"
	"repro/internal/workload"
)

// AdmissionSweepConfig parameterizes the rejected-vs-missed trade-off sweep:
// the Yahoo workload run under WOHA-LPF on a shrinking sequence of cluster
// sizes — from comfortable to overloaded — once through the open front door
// (the paper's admit-everything behaviour) and once behind the feasible
// admission controller. The sweep quantifies what the front door buys: as
// the cluster shrinks, always-admit converts the shortfall into deadline
// misses spread across the whole population, while the feasible controller
// converts it into up-front rejections (each carrying a counter-offered
// feasible deadline) and keeps the miss ratio among admitted workflows low.
type AdmissionSweepConfig struct {
	// Yahoo builds the workflow population (single-job workflows removed,
	// as in Fig 8).
	Yahoo workload.YahooConfig
	// Sizes lists the per-type slot counts, largest first; "120" means 120
	// map + 120 reduce slots.
	Sizes []int
	// Seed drives WOHA's queue PRNG.
	Seed int64
	// Margin is the plan safety margin (the admission controller's own
	// feasibility margin stays at its default 1.0: the front door asks
	// "can this fit at all", not "can it fit with slack").
	Margin float64
	// Workers caps concurrent cells; 0 selects one per core.
	Workers int
	// Obs optionally instruments the sweep's runner and controllers.
	Obs *obs.Obs
}

// DefaultAdmissionSweepConfig shrinks the Fig 8 cluster axis into overload:
// 200 slots per type is the paper's feasible regime, 80 is severe overload.
func DefaultAdmissionSweepConfig() AdmissionSweepConfig {
	return AdmissionSweepConfig{
		Yahoo:  workload.DefaultYahooConfig(),
		Sizes:  []int{200, 160, 120, 80},
		Seed:   1,
		Margin: PlanMargin,
	}
}

// AdmissionSweepPoint is one cluster size's outcome pair.
type AdmissionSweepPoint struct {
	// Size is the per-type slot count.
	Size int
	// AlwaysMiss is the open-front-door deadline violation ratio (every
	// workflow admitted; the Fig 8 metric).
	AlwaysMiss float64
	// Admitted, Rejected, and CounterOffers describe the feasible
	// controller's rulings over the same population.
	Admitted, Rejected, CounterOffers int
	// AdmittedMiss is the violation ratio among admitted workflows only.
	AdmittedMiss float64
	// OverallMiss counts rejected workflows as misses too — the honest
	// submitter's-eye comparison against AlwaysMiss.
	OverallMiss float64
}

// AdmissionSweepResult holds the sweep.
type AdmissionSweepResult struct {
	Config AdmissionSweepConfig
	Points []AdmissionSweepPoint
}

// AdmissionSweep runs the trade-off sweep: two cells per cluster size
// (always-admit and feasible), fanned over cfg.Workers.
func AdmissionSweep(cfg AdmissionSweepConfig) (*AdmissionSweepResult, error) {
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	multi := workload.MultiJob(flows)
	spec, err := SchedulerByName("WOHA-LPF")
	if err != nil {
		return nil, err
	}

	var cells []runner.Cell
	for _, size := range cfg.Sizes {
		cc := cluster.Config{
			Nodes:              size / 2,
			MapSlotsPerNode:    2,
			ReduceSlotsPerNode: 2,
			Seed:               cfg.Seed,
		}
		caps := plan.Caps{Maps: cc.MapSlots(), Reduces: cc.ReduceSlots()}
		open := ScenarioCell(fmt.Sprintf("always/%dm-%dr", size, size), cc, multi, spec, cfg.Seed, nil, cfg.Margin, nil)
		gated := ScenarioCell(fmt.Sprintf("feasible/%dm-%dr", size, size), cc, multi, spec, cfg.Seed, nil, cfg.Margin, nil)
		ins := cfg.Obs
		gated.Admission = func() admission.Controller {
			ctrl, err := admission.New(admission.Config{
				Cluster: caps,
				Mode:    admission.ModeFeasible,
				Policy:  spec.Priority,
				Obs:     ins,
			})
			if err != nil {
				// Config is static and valid by construction; a failure here
				// is a programming error, surfaced by the nil-controller
				// panic in SetAdmission's first Decide. Unreachable.
				panic(err)
			}
			return ctrl
		}
		cells = append(cells, open, gated)
	}

	results, err := runner.New(runner.Config{Workers: cfg.Workers, Obs: cfg.Obs}).RunAll(cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := &AdmissionSweepResult{Config: cfg}
	for i, size := range cfg.Sizes {
		always, feasible := results[2*i], results[2*i+1]
		pt := AdmissionSweepPoint{
			Size:         size,
			AlwaysMiss:   always.MissRatio(),
			Rejected:     feasible.Rejections(),
			Admitted:     len(feasible.Workflows) - feasible.Rejections(),
			AdmittedMiss: feasible.AdmittedMissRatio(),
			OverallMiss:  feasible.MissRatio(),
		}
		for _, w := range feasible.Workflows {
			if w.Rejected && w.CounterOffer > 0 {
				pt.CounterOffers++
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// Table renders the sweep in the package's figure-table format.
func (r *AdmissionSweepResult) Table() *Table {
	t := &Table{
		Title: "Admission sweep: rejected-vs-missed trade-off (Yahoo workload, WOHA-LPF)",
		Note: "always-miss admits everything (Fig 8 regime); the feasible columns gate the same population " +
			"through the admission front door",
		Header: []string{"slots", "always-miss", "admitted", "rejected", "counter-offers", "admitted-miss", "overall-miss"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dm-%dr", p.Size, p.Size),
			fmt.Sprintf("%.3f", p.AlwaysMiss),
			fmt.Sprintf("%d", p.Admitted),
			fmt.Sprintf("%d", p.Rejected),
			fmt.Sprintf("%d", p.CounterOffers),
			fmt.Sprintf("%.3f", p.AdmittedMiss),
			fmt.Sprintf("%.3f", p.OverallMiss),
		})
	}
	return t
}
