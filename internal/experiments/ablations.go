package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/planner"
	"repro/internal/priority"
	"repro/internal/runner"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// AblationResult is one variant's outcome in an ablation table.
type AblationResult struct {
	Variant   string
	Misses    int
	Workflows int
	TotalTard time.Duration
	Makespan  time.Duration
}

// lpfPlans builds the WOHA-LPF plan factory for a cell: typed, resource-
// capped plans for flows against cc at the given margin, routed through the
// shared planner pl when one is provided (nil generates directly).
func lpfPlans(flows []*workflow.Workflow, cc cluster.Config, margin float64, pl *planner.Planner) func() ([]*plan.Plan, error) {
	return PlansFactory(flows, cc, priority.LPF{}, margin, pl)
}

// ablate runs the variant cells over the default worker pool and collapses
// each result into a table row.
func ablate(variants []string, cells []runner.Cell) ([]AblationResult, error) {
	results, err := runner.New(runner.Config{}).RunAll(cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation: %w", err)
	}
	out := make([]AblationResult, len(results))
	for i, res := range results {
		out[i] = AblationResult{
			Variant:   variants[i],
			Misses:    res.DeadlineMisses(),
			Workflows: len(res.Workflows),
			TotalTard: res.TotalTardiness(),
			Makespan:  res.Makespan.Duration(),
		}
	}
	return out, nil
}

// AblationsFig11 sweeps the simulator-level design knobs on the Fig 11
// scenario under WOHA-LPF: plan safety margin, submitter-job overhead,
// heartbeat-driven dispatch, estimation noise, and strict (non-work-
// conserving) scheduling.
func AblationsFig11() ([]AblationResult, error) {
	base := DefaultFig11Config()
	flows := base.Flows()

	steps := []struct {
		variant string
		margin  float64
		strict  bool
		mutate  func(*cluster.Config)
	}{
		{"baseline (margin 0.85)", PlanMargin, false, nil},
		{"margin 1.00 (paper-literal cap)", 1.0, false, nil},
		{"margin 0.70", 0.70, false, nil},
		{"submitter overhead 10s", PlanMargin, false, func(c *cluster.Config) { c.SubmitterOverhead = 10 * time.Second }},
		{"heartbeat 3s", PlanMargin, false, func(c *cluster.Config) { c.HeartbeatInterval = 3 * time.Second }},
		{"noise 30%", PlanMargin, false, func(c *cluster.Config) { c.Noise = 0.3; c.Seed = 42 }},
		{"strict (no work conservation)", PlanMargin, true, nil},
	}
	variants := make([]string, len(steps))
	cells := make([]runner.Cell, len(steps))
	for i, s := range steps {
		cc := base.Cluster()
		if s.mutate != nil {
			s.mutate(&cc)
		}
		strict := s.strict
		variants[i] = s.variant
		cells[i] = runner.Cell{
			Name:   "fig11-ablation/" + s.variant,
			Config: cc,
			Policy: func() cluster.Policy {
				return core.NewScheduler(core.Options{Seed: base.Seed, Strict: strict, PolicyName: "LPF"})
			},
			Flows: flows,
			// Margins differ across variants and a planner caches per its
			// configured margin, so these cells generate directly.
			Plans: lpfPlans(flows, cc, s.margin, nil),
		}
	}
	return ablate(variants, cells)
}

// AblationsYahoo sweeps the policy-level design knobs on the Yahoo workload
// at 240m-240r: overdue handling, normalized lag, and the deadline scheme.
func AblationsYahoo() ([]AblationResult, error) {
	steps := []struct {
		variant string
		scheme  workload.DeadlineScheme
		opts    core.Options
	}{
		{"baseline (SLA deadlines)", workload.DeadlineSLA, core.Options{}},
		{"serve overdue first (paper-literal)", workload.DeadlineSLA, core.Options{ServeOverdueFirst: true}},
		{"normalized lag", workload.DeadlineSLA, core.Options{NormalizedLag: true}},
		{"stretch deadlines", workload.DeadlineStretch, core.Options{}},
		{"stretch + normalized lag", workload.DeadlineStretch, core.Options{NormalizedLag: true}},
		{"stretch + serve overdue first", workload.DeadlineStretch, core.Options{ServeOverdueFirst: true}},
	}
	cc := cluster.Config{Nodes: 120, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2, Seed: 1}
	variants := make([]string, len(steps))
	cells := make([]runner.Cell, len(steps))
	// All six variants plan at PlanMargin against the same caps, and the
	// three variants per deadline scheme share their workload's structure, so
	// one coalescing planner serves each distinct plan once across the sweep.
	pl := planner.New(planner.Config{CacheSize: 256, Margin: PlanMargin})
	for i, s := range steps {
		ycfg := workload.DefaultYahooConfig()
		ycfg.Scheme = s.scheme
		flows, err := workload.Yahoo(ycfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", s.variant, err)
		}
		multi := workload.MultiJob(flows)
		opts := s.opts
		opts.Seed = 1
		opts.PolicyName = "LPF"
		variants[i] = s.variant
		cells[i] = runner.Cell{
			Name:   "yahoo-ablation/" + s.variant,
			Config: cc,
			Policy: func() cluster.Policy { return core.NewScheduler(opts) },
			Flows:  multi,
			Plans:  lpfPlans(multi, cc, PlanMargin, pl),
		}
	}
	return ablate(variants, cells)
}

// AblationTable renders a set of ablation results.
func AblationTable(title string, results []AblationResult) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"variant", "misses", "total-tardiness", "makespan"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Variant,
			fmt.Sprintf("%d/%d", r.Misses, r.Workflows),
			fmt.Sprintf("%.0fs", r.TotalTard.Seconds()),
			fmt.Sprintf("%.0fs", r.Makespan.Seconds()),
		})
	}
	return t
}
