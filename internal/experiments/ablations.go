package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/workload"
)

// AblationResult is one variant's outcome in an ablation table.
type AblationResult struct {
	Variant   string
	Misses    int
	Workflows int
	TotalTard time.Duration
	Makespan  time.Duration
}

// AblationsFig11 sweeps the simulator-level design knobs on the Fig 11
// scenario under WOHA-LPF: plan safety margin, submitter-job overhead,
// heartbeat-driven dispatch, estimation noise, and strict (non-work-
// conserving) scheduling.
func AblationsFig11() ([]AblationResult, error) {
	base := DefaultFig11Config()
	var out []AblationResult
	run := func(variant string, margin float64, strict bool, mutate func(*cluster.Config)) error {
		cc := base.Cluster()
		if mutate != nil {
			mutate(&cc)
		}
		pol := core.NewScheduler(core.Options{Seed: base.Seed, Strict: strict, PolicyName: "LPF"})
		sim, err := cluster.New(cc, pol, nil)
		if err != nil {
			return err
		}
		for _, w := range base.Flows() {
			p, err := plan.GenerateCappedTyped(w,
				plan.Caps{Maps: cc.MapSlots(), Reduces: cc.ReduceSlots()},
				priority.LPF{}, margin)
			if err != nil {
				return err
			}
			if err := sim.Submit(w, p); err != nil {
				return err
			}
		}
		res, err := sim.Run()
		if err != nil {
			return err
		}
		out = append(out, AblationResult{
			Variant:   variant,
			Misses:    res.DeadlineMisses(),
			Workflows: len(res.Workflows),
			TotalTard: res.TotalTardiness(),
			Makespan:  res.Makespan.Duration(),
		})
		return nil
	}

	steps := []struct {
		variant string
		margin  float64
		strict  bool
		mutate  func(*cluster.Config)
	}{
		{"baseline (margin 0.85)", PlanMargin, false, nil},
		{"margin 1.00 (paper-literal cap)", 1.0, false, nil},
		{"margin 0.70", 0.70, false, nil},
		{"submitter overhead 10s", PlanMargin, false, func(c *cluster.Config) { c.SubmitterOverhead = 10 * time.Second }},
		{"heartbeat 3s", PlanMargin, false, func(c *cluster.Config) { c.HeartbeatInterval = 3 * time.Second }},
		{"noise 30%", PlanMargin, false, func(c *cluster.Config) { c.Noise = 0.3; c.Seed = 42 }},
		{"strict (no work conservation)", PlanMargin, true, nil},
	}
	for _, s := range steps {
		if err := run(s.variant, s.margin, s.strict, s.mutate); err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", s.variant, err)
		}
	}
	return out, nil
}

// AblationsYahoo sweeps the policy-level design knobs on the Yahoo workload
// at 240m-240r: overdue handling, normalized lag, and the deadline scheme.
func AblationsYahoo() ([]AblationResult, error) {
	var out []AblationResult
	run := func(variant string, scheme workload.DeadlineScheme, opts core.Options) error {
		ycfg := workload.DefaultYahooConfig()
		ycfg.Scheme = scheme
		flows, err := workload.Yahoo(ycfg)
		if err != nil {
			return err
		}
		multi := workload.MultiJob(flows)
		cc := cluster.Config{Nodes: 120, MapSlotsPerNode: 2, ReduceSlotsPerNode: 2, Seed: 1}
		opts.Seed = 1
		opts.PolicyName = "LPF"
		sim, err := cluster.New(cc, core.NewScheduler(opts), nil)
		if err != nil {
			return err
		}
		for _, w := range multi {
			p, err := plan.GenerateCappedTyped(w,
				plan.Caps{Maps: cc.MapSlots(), Reduces: cc.ReduceSlots()},
				priority.LPF{}, PlanMargin)
			if err != nil {
				return err
			}
			if err := sim.Submit(w, p); err != nil {
				return err
			}
		}
		res, err := sim.Run()
		if err != nil {
			return err
		}
		out = append(out, AblationResult{
			Variant:   variant,
			Misses:    res.DeadlineMisses(),
			Workflows: len(res.Workflows),
			TotalTard: res.TotalTardiness(),
			Makespan:  res.Makespan.Duration(),
		})
		return nil
	}

	steps := []struct {
		variant string
		scheme  workload.DeadlineScheme
		opts    core.Options
	}{
		{"baseline (SLA deadlines)", workload.DeadlineSLA, core.Options{}},
		{"serve overdue first (paper-literal)", workload.DeadlineSLA, core.Options{ServeOverdueFirst: true}},
		{"normalized lag", workload.DeadlineSLA, core.Options{NormalizedLag: true}},
		{"stretch deadlines", workload.DeadlineStretch, core.Options{}},
		{"stretch + normalized lag", workload.DeadlineStretch, core.Options{NormalizedLag: true}},
		{"stretch + serve overdue first", workload.DeadlineStretch, core.Options{ServeOverdueFirst: true}},
	}
	for _, s := range steps {
		if err := run(s.variant, s.scheme, s.opts); err != nil {
			return nil, fmt.Errorf("experiments: ablation %q: %w", s.variant, err)
		}
	}
	return out, nil
}

// AblationTable renders a set of ablation results.
func AblationTable(title string, results []AblationResult) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"variant", "misses", "total-tardiness", "makespan"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Variant,
			fmt.Sprintf("%d/%d", r.Misses, r.Workflows),
			fmt.Sprintf("%.0fs", r.TotalTard.Seconds()),
			fmt.Sprintf("%.0fs", r.Makespan.Seconds()),
		})
	}
	return t
}
