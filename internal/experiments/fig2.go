package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Fig2Result compares uncapped (full-cluster) against resource-capped
// scheduling plans on the paper's Fig 2 motivating scenario: deadline-tight
// chain workflows sharing a small cluster with loose-deadline competitors.
type Fig2Result struct {
	// UncappedMisses and CappedMisses count deadline violations under each
	// plan-generation mode.
	UncappedMisses, CappedMisses int
	Uncapped, Capped             *cluster.Result
}

// Fig2 runs the scenario (see scheduler tests for the timing analysis): two
// 2-job chains due at 9.5s and two wide loose workflows on a 4-map +
// 4-reduce-slot cluster. Uncapped plans demand progress too late and lose at
// least one tight deadline; capped plans meet all four.
func Fig2() (*Fig2Result, error) {
	cfg := cluster.Config{Nodes: 1, MapSlotsPerNode: 4, ReduceSlotsPerNode: 4}
	mkFlows := func() []*workflow.Workflow {
		tight := func(name string) *workflow.Workflow {
			return workflow.NewBuilder(name).
				Job("j1", 4, 4, time.Second, time.Second).
				Job("j2", 4, 4, time.Second, time.Second, "j1").
				MustBuild(0, simtime.FromSeconds(9.5))
		}
		loose := func(name string) *workflow.Workflow {
			return workflow.NewBuilder(name).
				Job("j", 24, 4, time.Second, time.Second).
				MustBuild(0, simtime.FromSeconds(120))
		}
		return []*workflow.Workflow{tight("W1"), tight("W2"), loose("W3"), loose("W4")}
	}
	run := func(capped bool) (*cluster.Result, error) {
		pol := core.NewScheduler(core.Options{Seed: 1})
		sim, err := cluster.New(cfg, pol, nil)
		if err != nil {
			return nil, err
		}
		for _, w := range mkFlows() {
			var p *plan.Plan
			if capped {
				p, err = plan.GenerateCapped(w, cfg.TotalSlots(), priority.HLF{})
			} else {
				p, err = plan.GenerateForPolicy(w, cfg.TotalSlots(), priority.HLF{})
			}
			if err != nil {
				return nil, err
			}
			if err := sim.Submit(w, p); err != nil {
				return nil, err
			}
		}
		return sim.Run()
	}
	uncapped, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 uncapped: %w", err)
	}
	capped, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2 capped: %w", err)
	}
	return &Fig2Result{
		UncappedMisses: uncapped.DeadlineMisses(),
		CappedMisses:   capped.DeadlineMisses(),
		Uncapped:       uncapped,
		Capped:         capped,
	}, nil
}

// Table renders the Fig 2 comparison.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:  "Fig 2: Resource-capped scheduling plans (motivating example)",
		Note:   "two 9.5s-deadline chains + two loose wide workflows on 4 map + 4 reduce slots",
		Header: []string{"workflow", "deadline", "uncapped finish", "capped finish"},
	}
	for i := range r.Uncapped.Workflows {
		u, c := r.Uncapped.Workflows[i], r.Capped.Workflows[i]
		mark := func(w cluster.WorkflowResult) string {
			s := fmt.Sprintf("%.1fs", w.Finish.Seconds())
			if !w.Met {
				s += "*"
			}
			return s
		}
		t.Rows = append(t.Rows, []string{
			u.Name,
			fmt.Sprintf("%.1fs", u.Deadline.Seconds()),
			mark(u),
			mark(c),
		})
	}
	t.Rows = append(t.Rows, []string{
		"misses", "",
		fmt.Sprintf("%d", r.UncappedMisses),
		fmt.Sprintf("%d", r.CappedMisses),
	})
	return t
}
