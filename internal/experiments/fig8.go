package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Fig8Config parameterizes the Yahoo-trace experiments of Fig 8 / Fig 9 /
// Fig 10: the 61-workflow population (single-job workflows removed, as in
// the paper) run on clusters of 200, 240, and 280 map and reduce slots under
// all six schedulers.
type Fig8Config struct {
	// Yahoo builds the workflow population.
	Yahoo workload.YahooConfig
	// Sizes lists the per-type slot counts; "200" means 200 map + 200
	// reduce slots.
	Sizes []int
	// Seed drives WOHA's queue PRNG.
	Seed int64
	// Margin is the plan safety margin.
	Margin float64
	// Workers caps how many of the 18 scheduler x size cells run
	// concurrently; 0 selects one per core, 1 runs serially. Results are
	// identical at any worker count (see internal/runner).
	Workers int
	// Planner optionally shares one coalescing plan service across the
	// sweep's cells: each distinct (DAG shape, caps, policy) key is then
	// simulated exactly once no matter how many cells or recurring template
	// instances request it. Nil keeps the seed behavior — every WOHA cell
	// generates each of its plans directly. Figures are byte-identical
	// either way. The planner's margin must equal Margin.
	Planner *planner.Planner
	// Obs optionally instruments the sweep's runner (woha_runner_* metrics).
	Obs *obs.Obs
}

// DefaultFig8Config matches the paper's axis: 200m-200r, 240m-240r,
// 280m-280r.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Yahoo:  workload.DefaultYahooConfig(),
		Sizes:  []int{200, 240, 280},
		Seed:   1,
		Margin: PlanMargin,
	}
}

// Fig8Result holds, per scheduler and cluster size, the three tardiness
// metrics of Fig 8-10.
type Fig8Result struct {
	Config Fig8Config
	Order  []string
	// MissRatio[name][k] is the deadline violation ratio at Sizes[k].
	MissRatio map[string][]float64
	// MaxTard[name][k] and TotalTard[name][k] are the Fig 9 / Fig 10
	// series.
	MaxTard   map[string][]time.Duration
	TotalTard map[string][]time.Duration
}

// Fig8Cells builds the sweep's scenario cells — one per scheduler x cluster
// size, in row-major presentation order. Exposed so the sim bench can time
// the exact experiment corpus.
func Fig8Cells(cfg Fig8Config) ([]runner.Cell, error) {
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	multi := workload.MultiJob(flows)

	var cells []runner.Cell
	for _, spec := range AllSchedulers() {
		for _, size := range cfg.Sizes {
			// Model the "200m-200r" axis as nodes with 2 map + 2 reduce
			// slots each.
			cc := cluster.Config{
				Nodes:              size / 2,
				MapSlotsPerNode:    2,
				ReduceSlotsPerNode: 2,
				Seed:               cfg.Seed,
			}
			// Cells share the workflow specs: the simulator never mutates
			// them, so reuse is safe across (even concurrent) runs.
			name := fmt.Sprintf("%s/%dm-%dr", spec.Name, size, size)
			cells = append(cells, ScenarioCell(name, cc, multi, spec, cfg.Seed, nil, cfg.Margin, cfg.Planner))
		}
	}
	return cells, nil
}

// Fig8 runs the Yahoo workload across cluster sizes and schedulers,
// fanning the independent cells over cfg.Workers.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	return Fig8Each(cfg, nil)
}

// Fig8Row is one scheduler's completed row of the Fig 8-10 sweep: the three
// tardiness metrics across cfg.Sizes, in size order.
type Fig8Row struct {
	Scheduler string
	MissRatio []float64
	MaxTard   []time.Duration
	TotalTard []time.Duration
}

// Fig8Each is Fig8 with streaming: rowFn (when non-nil) receives each
// scheduler's row as soon as that scheduler's cells have all finished —
// while later schedulers' cells are still executing — in presentation order.
// The sweep's cells run scheduler-major and the runner delivers results in
// submission order, so a row completes every len(cfg.Sizes) deliveries. An
// error from rowFn aborts streaming and is returned.
func Fig8Each(cfg Fig8Config, rowFn func(Fig8Row) error) (*Fig8Result, error) {
	cells, err := Fig8Cells(cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{
		Config:    cfg,
		MissRatio: make(map[string][]float64),
		MaxTard:   make(map[string][]time.Duration),
		TotalTard: make(map[string][]time.Duration),
	}
	specs := AllSchedulers()
	for _, spec := range specs {
		out.Order = append(out.Order, spec.Name)
	}
	per := len(cfg.Sizes)
	err = runner.New(runner.Config{Workers: cfg.Workers, Obs: cfg.Obs}).RunEach(cells, func(i int, res *cluster.Result) error {
		name := specs[i/per].Name
		out.MissRatio[name] = append(out.MissRatio[name], res.MissRatio())
		out.MaxTard[name] = append(out.MaxTard[name], res.MaxTardiness())
		out.TotalTard[name] = append(out.TotalTard[name], res.TotalTardiness())
		if rowFn != nil && len(out.MissRatio[name]) == per {
			return rowFn(Fig8Row{
				Scheduler: name,
				MissRatio: out.MissRatio[name],
				MaxTard:   out.MaxTard[name],
				TotalTard: out.TotalTard[name],
			})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return out, nil
}

// Fig8MissTitle is the Fig 8 table title, shared by MissTable and streamed
// renderings (see TableWriter) so the two can never diverge.
const Fig8MissTitle = "Fig 8: Deadline violation ratio (Yahoo workload, single-job workflows removed)"

// SizesHeader returns the header row of the Fig 8-10 tables: "scheduler"
// followed by one column per cluster size.
func (cfg Fig8Config) SizesHeader() []string {
	h := []string{"scheduler"}
	for _, s := range cfg.Sizes {
		h = append(h, fmt.Sprintf("%dm-%dr", s, s))
	}
	return h
}

// MissTable renders Fig 8: deadline violation ratio vs cluster size.
func (r *Fig8Result) MissTable() *Table {
	t := &Table{
		Title:  Fig8MissTitle,
		Header: r.Config.SizesHeader(),
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.MissRatio[name] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MaxTardTable renders Fig 9: maximum tardiness (seconds) vs cluster size.
func (r *Fig8Result) MaxTardTable() *Table {
	t := &Table{
		Title:  "Fig 9: Max tardiness (seconds)",
		Header: r.Config.SizesHeader(),
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.MaxTard[name] {
			row = append(row, fmt.Sprintf("%.0f", v.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TotalTardTable renders Fig 10: total tardiness (seconds) vs cluster size.
func (r *Fig8Result) TotalTardTable() *Table {
	t := &Table{
		Title:  "Fig 10: Total tardiness (seconds)",
		Header: r.Config.SizesHeader(),
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.TotalTard[name] {
			row = append(row, fmt.Sprintf("%.0f", v.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
