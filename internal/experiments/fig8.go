package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Fig8Config parameterizes the Yahoo-trace experiments of Fig 8 / Fig 9 /
// Fig 10: the 61-workflow population (single-job workflows removed, as in
// the paper) run on clusters of 200, 240, and 280 map and reduce slots under
// all six schedulers.
type Fig8Config struct {
	// Yahoo builds the workflow population.
	Yahoo workload.YahooConfig
	// Sizes lists the per-type slot counts; "200" means 200 map + 200
	// reduce slots.
	Sizes []int
	// Seed drives WOHA's queue PRNG.
	Seed int64
	// Margin is the plan safety margin.
	Margin float64
	// Workers caps how many of the 18 scheduler x size cells run
	// concurrently; 0 selects one per core, 1 runs serially. Results are
	// identical at any worker count (see internal/runner).
	Workers int
}

// DefaultFig8Config matches the paper's axis: 200m-200r, 240m-240r,
// 280m-280r.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Yahoo:  workload.DefaultYahooConfig(),
		Sizes:  []int{200, 240, 280},
		Seed:   1,
		Margin: PlanMargin,
	}
}

// Fig8Result holds, per scheduler and cluster size, the three tardiness
// metrics of Fig 8-10.
type Fig8Result struct {
	Config Fig8Config
	Order  []string
	// MissRatio[name][k] is the deadline violation ratio at Sizes[k].
	MissRatio map[string][]float64
	// MaxTard[name][k] and TotalTard[name][k] are the Fig 9 / Fig 10
	// series.
	MaxTard   map[string][]time.Duration
	TotalTard map[string][]time.Duration
}

// Fig8Cells builds the sweep's scenario cells — one per scheduler x cluster
// size, in row-major presentation order. Exposed so the sim bench can time
// the exact experiment corpus.
func Fig8Cells(cfg Fig8Config) ([]runner.Cell, error) {
	flows, err := workload.Yahoo(cfg.Yahoo)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	multi := workload.MultiJob(flows)

	var cells []runner.Cell
	for _, spec := range AllSchedulers() {
		for _, size := range cfg.Sizes {
			// Model the "200m-200r" axis as nodes with 2 map + 2 reduce
			// slots each.
			cc := cluster.Config{
				Nodes:              size / 2,
				MapSlotsPerNode:    2,
				ReduceSlotsPerNode: 2,
				Seed:               cfg.Seed,
			}
			// Cells share the workflow specs: the simulator never mutates
			// them, so reuse is safe across (even concurrent) runs.
			name := fmt.Sprintf("%s/%dm-%dr", spec.Name, size, size)
			cells = append(cells, ScenarioCell(name, cc, multi, spec, cfg.Seed, nil, cfg.Margin))
		}
	}
	return cells, nil
}

// Fig8 runs the Yahoo workload across cluster sizes and schedulers,
// fanning the independent cells over cfg.Workers.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	cells, err := Fig8Cells(cfg)
	if err != nil {
		return nil, err
	}
	results, err := runner.New(runner.Config{Workers: cfg.Workers}).RunAll(cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	out := &Fig8Result{
		Config:    cfg,
		MissRatio: make(map[string][]float64),
		MaxTard:   make(map[string][]time.Duration),
		TotalTard: make(map[string][]time.Duration),
	}
	i := 0
	for _, spec := range AllSchedulers() {
		out.Order = append(out.Order, spec.Name)
		for range cfg.Sizes {
			res := results[i]
			i++
			out.MissRatio[spec.Name] = append(out.MissRatio[spec.Name], res.MissRatio())
			out.MaxTard[spec.Name] = append(out.MaxTard[spec.Name], res.MaxTardiness())
			out.TotalTard[spec.Name] = append(out.TotalTard[spec.Name], res.TotalTardiness())
		}
	}
	return out, nil
}

func (r *Fig8Result) sizesHeader() []string {
	h := []string{"scheduler"}
	for _, s := range r.Config.Sizes {
		h = append(h, fmt.Sprintf("%dm-%dr", s, s))
	}
	return h
}

// MissTable renders Fig 8: deadline violation ratio vs cluster size.
func (r *Fig8Result) MissTable() *Table {
	t := &Table{
		Title:  "Fig 8: Deadline violation ratio (Yahoo workload, single-job workflows removed)",
		Header: r.sizesHeader(),
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.MissRatio[name] {
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// MaxTardTable renders Fig 9: maximum tardiness (seconds) vs cluster size.
func (r *Fig8Result) MaxTardTable() *Table {
	t := &Table{
		Title:  "Fig 9: Max tardiness (seconds)",
		Header: r.sizesHeader(),
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.MaxTard[name] {
			row = append(row, fmt.Sprintf("%.0f", v.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// TotalTardTable renders Fig 10: total tardiness (seconds) vs cluster size.
func (r *Fig8Result) TotalTardTable() *Table {
	t := &Table{
		Title:  "Fig 10: Total tardiness (seconds)",
		Header: r.sizesHeader(),
	}
	for _, name := range r.Order {
		row := []string{name}
		for _, v := range r.TotalTard[name] {
			row = append(row, fmt.Sprintf("%.0f", v.Seconds()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
