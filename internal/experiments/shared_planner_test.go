package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/planner"
)

// TestFig8SharedPlannerExactlyOnce is the acceptance gate for cross-cell
// plan sharing: running the full Fig 8 sweep through one coalescing planner
// must (a) leave the figures byte-identical to the per-cell direct-generation
// baseline, (b) simulate each distinct structural key exactly once — the
// miss counter equals the number of cached keys, with hits + coalesced
// requests accounting for every other plan served — and (c) stream each
// scheduler's row in presentation order, carrying the same values as the
// final result.
func TestFig8SharedPlannerExactlyOnce(t *testing.T) {
	direct, err := Fig8(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}

	o := obs.New(obs.NewRegistry(), nil)
	pl := planner.New(planner.Config{CacheSize: 1024, Margin: PlanMargin, Obs: o})
	cfg := DefaultFig8Config()
	cfg.Planner = pl
	cfg.Obs = o
	var rows []Fig8Row
	shared, err := Fig8Each(cfg, func(row Fig8Row) error {
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// (a) Byte-identical figures.
	for _, tab := range []struct {
		name string
		d, s *Table
	}{
		{"Fig 8", direct.MissTable(), shared.MissTable()},
		{"Fig 9", direct.MaxTardTable(), shared.MaxTardTable()},
		{"Fig 10", direct.TotalTardTable(), shared.TotalTardTable()},
	} {
		var dw, sw strings.Builder
		if err := tab.d.Render(&dw); err != nil {
			t.Fatal(err)
		}
		if err := tab.s.Render(&sw); err != nil {
			t.Fatal(err)
		}
		if dw.String() != sw.String() {
			t.Errorf("%s diverged under the shared planner:\n%s\nvs direct:\n%s", tab.name, sw.String(), dw.String())
		}
	}

	// (b) Exactly-once generation. No evictions and no duplicate fills means
	// every simulation's plan is still cached, so misses == cached keys is
	// precisely "each distinct key simulated once".
	st := pl.Stats()
	misses, hits := st.CacheMisses.Value(), st.CacheHits.Value()
	coalesced, plans := st.Coalesced.Value(), st.Plans.Value()
	if dup := st.DuplicateFills.Value(); dup != 0 {
		t.Errorf("duplicate fills = %d, want 0 (coalescing should make same-key racing impossible)", dup)
	}
	if ev := st.CacheEvictions.Value(); ev != 0 {
		t.Errorf("evictions = %d, want 0 (cache sized for the sweep)", ev)
	}
	if misses != int64(pl.CacheLen()) {
		t.Errorf("misses = %d but cache holds %d keys: some key was simulated more than once", misses, pl.CacheLen())
	}
	if misses+hits+coalesced != plans {
		t.Errorf("misses %d + hits %d + coalesced %d != plans served %d", misses, hits, coalesced, plans)
	}
	// The multi-job Yahoo population happens to be structurally distinct per
	// workflow, and caps + policy separate the sweep's cells, so here every
	// plan served is its own key — the exactly-once property must not cost
	// anything either. (TestFig11RecurrencesSharePlans covers the case where
	// keys do collide.)
	if plans != misses {
		t.Logf("note: %d of %d plans shared (hits %d, coalesced %d)", plans-misses, plans, hits, coalesced)
	}

	// (c) Streamed rows: presentation order, values matching the result.
	if len(rows) != len(shared.Order) {
		t.Fatalf("streamed %d rows, want %d", len(rows), len(shared.Order))
	}
	for i, row := range rows {
		if row.Scheduler != shared.Order[i] {
			t.Errorf("row %d is %q, want %q", i, row.Scheduler, shared.Order[i])
		}
		for k, v := range row.MissRatio {
			if v != shared.MissRatio[row.Scheduler][k] {
				t.Errorf("row %q size %d: streamed miss ratio %v != final %v", row.Scheduler, k, v, shared.MissRatio[row.Scheduler][k])
			}
		}
	}
}

// TestFig11RecurrencesSharePlans exercises the planner where keys genuinely
// collide: with three recurrences each Fig 7 template is requested three
// times per WOHA cell at the same relative deadline, so the shared planner
// must serve each template once per (policy) and answer the rest from cache
// or coalescing — with results byte-identical to direct generation.
func TestFig11RecurrencesSharePlans(t *testing.T) {
	base := DefaultFig11Config()
	base.Recurrences = 3
	direct, err := Fig11(base)
	if err != nil {
		t.Fatal(err)
	}

	o := obs.New(obs.NewRegistry(), nil)
	cfg := base
	cfg.Planner = planner.New(planner.Config{CacheSize: 64, Margin: cfg.Margin, Obs: o})
	cfg.Obs = o
	shared, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var dw, sw strings.Builder
	if err := direct.WorkspanTable().Render(&dw); err != nil {
		t.Fatal(err)
	}
	if err := shared.WorkspanTable().Render(&sw); err != nil {
		t.Fatal(err)
	}
	if dw.String() != sw.String() {
		t.Errorf("Fig 11 diverged under the shared planner:\n%s\nvs direct:\n%s", sw.String(), dw.String())
	}

	st := cfg.Planner.Stats()
	misses, hits := st.CacheMisses.Value(), st.CacheHits.Value()
	coalesced, plans := st.Coalesced.Value(), st.Plans.Value()
	// 3 WOHA cells × 9 flows = 27 requests over 3 templates × 3 policies =
	// 9 distinct keys: two thirds of the plans must be shared.
	if want := int64(27); plans != want {
		t.Errorf("plans served = %d, want %d", plans, want)
	}
	if want := int64(9); misses != want {
		t.Errorf("misses = %d, want %d distinct keys", misses, want)
	}
	if hits+coalesced != plans-misses {
		t.Errorf("hits %d + coalesced %d != %d shared plans", hits, coalesced, plans-misses)
	}
	if dup := st.DuplicateFills.Value(); dup != 0 {
		t.Errorf("duplicate fills = %d, want 0", dup)
	}
	if misses != int64(cfg.Planner.CacheLen()) {
		t.Errorf("misses = %d but cache holds %d keys", misses, cfg.Planner.CacheLen())
	}
}

// TestPlansFactoryMarginMismatch pins the guard against pairing a sweep with
// a planner caching at a different margin.
func TestPlansFactoryMarginMismatch(t *testing.T) {
	pl := planner.New(planner.Config{CacheSize: 8, Margin: 0.70})
	cfg := DefaultFig11Config()
	cfg.Planner = pl
	cells, _ := Fig11Cells(cfg)
	for _, c := range cells {
		if c.Plans == nil {
			continue
		}
		if _, err := c.Plans(); err == nil {
			t.Fatalf("cell %q: margin mismatch not rejected", c.Name)
		}
	}
}

// BenchmarkFig8SweepPlansPerCell and ...Shared time the planning portion of
// the 18-cell Fig 8 sweep: the per-cell baseline regenerates every plan
// directly, the shared variant routes all cells through one coalescing
// planner. `make bench-plan-shared` reports the same comparison as JSON.
func BenchmarkFig8SweepPlansPerCell(b *testing.B) { benchFig8SweepPlans(b, false) }
func BenchmarkFig8SweepPlansShared(b *testing.B)  { benchFig8SweepPlans(b, true) }

func benchFig8SweepPlans(b *testing.B, shared bool) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultFig8Config()
		if shared {
			cfg.Planner = planner.New(planner.Config{CacheSize: 1024, Margin: cfg.Margin})
		}
		cells, err := Fig8Cells(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Plans == nil {
				continue
			}
			if _, err := c.Plans(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
