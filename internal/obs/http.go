package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
)

// IntrospectionServer is the runtime HTTP plane of an instrumented run:
//
//	/metrics       Prometheus text exposition of the Obs registry
//	/statusz       JSON cluster snapshot (see Status) — per-workflow slack,
//	               slot utilization, queue depth, lifecycle counters
//	/debug/pprof/  the standard Go profiling endpoints
//
// The /statusz health block is refreshed on the health tracker's snapshot
// interval, which is therefore the staleness knob: a consumer polling
// /statusz reads data at most one interval old. Shutdown closes the listener
// gracefully; all methods are safe on a nil receiver so CLIs can hold an
// optional server without guarding every call.
type IntrospectionServer struct {
	ln  net.Listener
	srv *http.Server
	o   *Obs
}

// ServeIntrospection listens on addr (":0" picks a free port) and serves the
// introspection plane for o in a background goroutine until Shutdown.
func ServeIntrospection(addr string, o *Obs) (*IntrospectionServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: introspection listen: %w", err)
	}
	s := &IntrospectionServer{ln: ln, o: o}
	mux := http.NewServeMux()
	if reg := o.Registry(); reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	mux.HandleFunc("/statusz", s.statusz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address ("" on a nil receiver).
func (s *IntrospectionServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: the listener closes immediately and
// in-flight requests are allowed to finish until ctx expires.
func (s *IntrospectionServer) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// DumpMetrics scrapes /metrics over HTTP — through the real listener,
// proving the exposition is served, not just renderable — and copies the
// body to w. No-op on a nil receiver.
func (s *IntrospectionServer) DumpMetrics(w io.Writer) error {
	if s == nil {
		return nil
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		return fmt.Errorf("obs: scraping metrics: %w", err)
	}
	defer resp.Body.Close()
	fmt.Fprintf(w, "--- final scrape of http://%s/metrics ---\n", s.Addr())
	_, err = io.Copy(w, resp.Body)
	return err
}

// Status is the /statusz JSON document.
type Status struct {
	// Version and GoVersion identify the binary (woha_build_info's labels).
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// Counters are the workflow/task lifecycle totals; QueueWorkflows the
	// current scheduler queue depth.
	WorkflowsSubmitted int64 `json:"workflows_submitted"`
	WorkflowsCompleted int64 `json:"workflows_completed"`
	DeadlinesMissed    int64 `json:"deadlines_missed"`
	TasksAssigned      int64 `json:"tasks_assigned"`
	TasksCompleted     int64 `json:"tasks_completed"`
	Heartbeats         int64 `json:"heartbeats"`
	QueueWorkflows     int64 `json:"queue_workflows"`
	// Health is the last deadline-health snapshot (per-workflow slack, slot
	// capacity, in-flight tasks); absent until the health tracker is enabled
	// and has produced one. It is at most StalenessUS microseconds old.
	StalenessUS int64           `json:"staleness_us,omitempty"`
	Health      *HealthSnapshot `json:"health,omitempty"`
}

// statusz renders the cluster snapshot. The health block is served from the
// tracker's atomically published last snapshot — no locks are taken and no
// scheduler path is disturbed by a scrape.
func (s *IntrospectionServer) statusz(w http.ResponseWriter, _ *http.Request) {
	st := Status{Version: "unknown", GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		st.Version = bi.Main.Version
	}
	if o := s.o; o != nil {
		st.WorkflowsSubmitted = o.WorkflowsSubmitted.Value()
		st.WorkflowsCompleted = o.WorkflowsCompleted.Value()
		st.DeadlinesMissed = o.DeadlinesMissed.Value()
		st.TasksAssigned = o.TasksAssigned.Value()
		st.TasksCompleted = o.TasksCompleted.Value()
		st.Heartbeats = o.Heartbeats.Value()
		st.QueueWorkflows = o.QueueWorkflows.Value()
		if h := o.Health(); h != nil {
			st.StalenessUS = h.Interval().Microseconds()
			st.Health = h.Last()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
