// Benchmarks live in an external test package so they can drive the real
// live.JobTracker heartbeat path without an import cycle (live imports obs).
package obs_test

import (
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// benchCluster builds a live cluster with one registered workflow so each
// heartbeat exercises the full scheduling path (release scan, assignment
// attempt). ins may be nil — the disabled-instrumentation case under test.
// shards 0 keeps the host default; 1 forces the legacy tracker, larger
// values the sharded pipeline.
func benchCluster(tb testing.TB, ins *obs.Obs, shards int) *live.Cluster {
	tb.Helper()
	cfg := live.Config{
		Nodes:              4,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		HeartbeatInterval:  time.Millisecond,
		TimeScale:          0.001,
		Shards:             shards,
		Obs:                ins,
	}
	c, err := live.New(cfg, scheduler.NewFIFO())
	if err != nil {
		tb.Fatal(err)
	}
	w := workflow.NewBuilder("bench").
		Job("a", 6, 2, 10*time.Second, 20*time.Second).
		MustBuild(simtime.Epoch, simtime.Epoch.Add(time.Hour))
	if err := c.Submit(w, nil); err != nil {
		tb.Fatal(err)
	}
	return c
}

// steadyState drives one heartbeat that releases the workflow and drains the
// assignable tasks, so the measured loop sees the steady no-free-slot path
// rather than one-time setup work.
func steadyState(c *live.Cluster) {
	c.DeliverHeartbeat(live.Heartbeat{Tracker: 0, FreeMaps: 8, FreeReds: 4})
}

// BenchmarkHeartbeatBare measures the heartbeat path with instrumentation
// disabled (nil *obs.Obs). The contract is 0 allocs/op: a disabled
// installation costs exactly the nil checks.
func BenchmarkHeartbeatBare(b *testing.B) {
	c := benchCluster(b, nil, 0)
	steadyState(c)
	hb := live.Heartbeat{Tracker: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DeliverHeartbeat(hb)
	}
}

// BenchmarkHeartbeatInstrumented is the same path with a live registry and
// ring sink attached, quantifying the enabled-instrumentation overhead.
func BenchmarkHeartbeatInstrumented(b *testing.B) {
	ins := obs.New(obs.NewRegistry(), obs.NewRing(4096))
	c := benchCluster(b, ins, 0)
	steadyState(c)
	hb := live.Heartbeat{Tracker: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DeliverHeartbeat(hb)
	}
}

// TestHeartbeatBareAllocs pins the zero-allocation contract in the regular
// test suite, so a regression fails go test, not only a benchmark reading.
// Both tracker layouts are covered: the legacy single-mutex path and the
// sharded tracker's lock-free fast path must stay allocation-free on a
// steady busy heartbeat.
func TestHeartbeatBareAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"legacy", 1}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			c := benchCluster(t, nil, tc.shards)
			steadyState(c)
			hb := live.Heartbeat{Tracker: 0}
			if allocs := testing.AllocsPerRun(100, func() { c.DeliverHeartbeat(hb) }); allocs != 0 {
				t.Errorf("bare heartbeat allocates %v objects per run, want 0", allocs)
			}
		})
	}
}
