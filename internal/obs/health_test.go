package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
)

// healthPlan builds a plan demanding 2 tasks by ttd=100s, 5 by ttd=50s, and
// all 10 by the deadline, as if simulated to a 120s makespan.
func healthPlan() *plan.Plan {
	return &plan.Plan{
		Reqs:       []plan.Req{{TTD: 100 * time.Second, Cum: 2}, {TTD: 50 * time.Second, Cum: 5}, {TTD: 0, Cum: 10}},
		Cap:        4,
		Makespan:   120 * time.Second,
		TotalTasks: 10,
		Feasible:   true,
	}
}

func sec(n int) simtime.Time { return simtime.Time(time.Duration(n) * time.Second) }

func TestHealthSlackAgainstPlan(t *testing.T) {
	ring := NewRing(256)
	o := New(NewRegistry(), ring)
	h := o.EnableHealth(HealthConfig{Interval: 10 * time.Second})
	if h == nil || o.Health() != h {
		t.Fatal("EnableHealth did not install the tracker")
	}
	h.Register(0, "w0", 0, sec(200), 10, healthPlan())
	h.workflowReleased(0)

	// t=120s → ttd=80s → requirement in force is 2. One completion: slack -1.
	h.taskCompleted(0)
	snap := h.SnapshotAt(sec(120))
	row := snap.Workflows[0]
	if !row.HasPlan || row.Required != 2 || row.Slack != -1 || !row.Behind {
		t.Fatalf("t=120s row = %+v, want required 2, slack -1, behind", row)
	}
	if snap.MinSlack != -1 || snap.Behind != 1 || snap.Live != 1 {
		t.Fatalf("snapshot = %+v, want MinSlack -1, Behind 1, Live 1", snap)
	}
	if got := h.fellBehind.Value(); got != 1 {
		t.Fatalf("fell-behind counter = %d, want 1", got)
	}

	// Still behind at t=160s (ttd=40s → requirement 5, 3 completed): the
	// latch must not re-fire.
	h.taskCompleted(0)
	h.taskCompleted(0)
	snap = h.SnapshotAt(sec(160))
	if got := snap.Workflows[0].Slack; got != -2 {
		t.Fatalf("t=160s slack = %d, want -2", got)
	}
	if got := h.fellBehind.Value(); got != 1 {
		t.Fatalf("fell-behind counter re-fired: %d", got)
	}

	// Catch up fully: slack goes non-negative, recovered fires once.
	for i := 0; i < 7; i++ {
		h.taskCompleted(0)
	}
	snap = h.SnapshotAt(sec(170))
	if got := snap.Workflows[0].Slack; got != 5 {
		t.Fatalf("t=170s slack = %d, want 5 (10 done, 5 required)", got)
	}
	if got := h.recovered.Value(); got != 1 {
		t.Fatalf("recovered counter = %d, want 1", got)
	}

	// Completion removes the workflow from the live set.
	h.workflowDone(0, sec(180))
	snap = h.SnapshotAt(sec(190))
	if snap.Live != 0 || snap.Behind != 0 {
		t.Fatalf("after done: snapshot = %+v, want Live 0", snap)
	}
	if row := snap.Workflows[0]; !row.Done || row.TardinessUS != 0 {
		t.Fatalf("after done: row = %+v, want done, no tardiness", row)
	}

	// The event stream carries the typed crossings and per-snapshot slack.
	var kinds []Kind
	for _, e := range ring.Events() {
		kinds = append(kinds, e.Kind)
	}
	wantSome := map[Kind]bool{KindHealthSlack: false, KindHealthFellBehind: false, KindHealthRecovered: false}
	for _, k := range kinds {
		if _, ok := wantSome[k]; ok {
			wantSome[k] = true
		}
	}
	for k, seen := range wantSome {
		if !seen {
			t.Errorf("event stream missing %v", k)
		}
	}
}

func TestHealthPredictedMiss(t *testing.T) {
	o := New(NewRegistry(), nil)
	h := o.EnableHealth(HealthConfig{Interval: time.Second})
	// 10 tasks at a best-case rate of 10/120s; with 30s to the deadline and
	// nothing completed even the standalone rate cannot place 10 tasks.
	h.Register(0, "w0", 0, sec(200), 10, healthPlan())
	h.workflowReleased(0)
	snap := h.SnapshotAt(sec(170))
	if !snap.Workflows[0].PredictedMiss {
		t.Fatalf("t=170s (ttd=30s) row = %+v, want predicted miss", snap.Workflows[0])
	}
	if got := h.predicted.Value(); got != 1 {
		t.Fatalf("predicted counter = %d, want 1", got)
	}
	// Latched: a second snapshot in the same state does not re-count.
	h.SnapshotAt(sec(171))
	if got := h.predicted.Value(); got != 1 {
		t.Fatalf("predicted counter re-fired: %d", got)
	}
	// Past the deadline with work remaining the miss is certain.
	if !predictMiss(healthPlan(), 10, 9, -time.Second) {
		t.Error("predictMiss false with deadline past and tasks remaining")
	}
	if predictMiss(healthPlan(), 10, 10, -time.Second) {
		t.Error("predictMiss true with no tasks remaining")
	}
}

func TestHealthTickIntervalGating(t *testing.T) {
	o := New(nil, nil)
	h := o.EnableHealth(HealthConfig{Interval: 10 * time.Second})
	h.Register(0, "w0", 0, sec(200), 10, healthPlan())
	h.workflowReleased(0)
	h.tick(sec(5))
	if h.Last() != nil {
		t.Fatal("tick inside the first interval produced a snapshot")
	}
	h.tick(sec(10))
	first := h.Last()
	if first == nil {
		t.Fatal("tick at the interval boundary produced no snapshot")
	}
	h.tick(sec(15))
	if h.Last() != first {
		t.Fatal("tick inside the interval replaced the snapshot")
	}
	h.tick(sec(25))
	if h.Last() == first {
		t.Fatal("tick a full interval later did not snapshot")
	}
	if h.Interval() != 10*time.Second {
		t.Fatalf("Interval() = %v", h.Interval())
	}
}

func TestHealthDefaultInterval(t *testing.T) {
	o := New(nil, nil)
	if got := o.EnableHealth(HealthConfig{}).Interval(); got != DefaultHealthInterval {
		t.Fatalf("zero-config interval = %v, want %v", got, DefaultHealthInterval)
	}
	// EnableHealth is idempotent: a second call returns the same tracker.
	h := o.Health()
	if o.EnableHealth(HealthConfig{Interval: time.Second}) != h {
		t.Fatal("second EnableHealth replaced the tracker")
	}
}

func TestHealthUnplannedWorkflow(t *testing.T) {
	o := New(nil, nil)
	h := o.EnableHealth(HealthConfig{Interval: time.Second})
	h.Register(0, "base", 0, sec(100), 4, nil)
	h.workflowReleased(0)
	h.taskScheduled(0)
	snap := h.SnapshotAt(sec(50))
	row := snap.Workflows[0]
	if row.HasPlan || row.Slack != 0 || row.Behind {
		t.Fatalf("unplanned row = %+v, want no plan and no slack", row)
	}
	if snap.Live != 1 || snap.Behind != 0 || snap.InFlight != 1 {
		t.Fatalf("snapshot = %+v, want live 1, in-flight 1, behind 0", snap)
	}
}

func TestHealthNilSafety(t *testing.T) {
	var h *HealthTracker
	h.Register(0, "w", 0, 0, 0, nil)
	h.SetSlots(1, 1)
	h.workflowReleased(0)
	h.taskScheduled(0)
	h.taskCompleted(0)
	h.workflowDone(0, 0)
	h.tick(sec(1))
	if h.SnapshotAt(sec(1)) != nil || h.Last() != nil || h.Interval() != 0 {
		t.Fatal("nil tracker returned non-zero values")
	}
	var o *Obs
	if o.EnableHealth(HealthConfig{}) != nil || o.Health() != nil {
		t.Fatal("nil Obs built a tracker")
	}
	// Feeds for unregistered indices are ignored.
	oo := New(nil, nil)
	hh := oo.EnableHealth(HealthConfig{Interval: time.Second})
	hh.taskCompleted(7)
	hh.workflowDone(-1, 0)
	if snap := hh.SnapshotAt(sec(2)); len(snap.Workflows) != 0 {
		t.Fatalf("unregistered feeds materialized rows: %+v", snap)
	}
}

func TestHealthMetricsExported(t *testing.T) {
	reg := NewRegistry()
	o := New(reg, nil)
	h := o.EnableHealth(HealthConfig{Interval: time.Second})
	h.Register(0, "w0", 0, sec(200), 10, healthPlan())
	h.workflowReleased(0)
	h.SnapshotAt(sec(120)) // 0 completed, 2 required → slack -2

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	for _, want := range []string{
		MetricHealthMinSlack + " -2",
		MetricHealthBehind + " 1",
		MetricHealthLive + " 1",
		MetricHealthSnapshots + " 1",
		MetricHealthFellBehind + " 1",
		"# TYPE " + MetricHealthSlackDist + " histogram",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestBuildInfoMetric(t *testing.T) {
	reg := NewRegistry()
	New(reg, nil)
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	if !strings.Contains(scrape, MetricBuildInfo) || !strings.Contains(scrape, `go_version="go`) {
		t.Fatalf("scrape missing %s with go_version label:\n%s", MetricBuildInfo, scrape)
	}
}
