package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
)

// SlackBuckets are the woha_health_slack_tasks histogram bounds. Slack is a
// signed task count (completed minus required), so unlike the duration
// buckets the range is symmetric around zero: deep-behind workflows land in
// the negative buckets, comfortably-ahead ones in the positive tail.
var SlackBuckets = []float64{-1024, -256, -64, -16, -4, -1, 0, 1, 4, 16, 64, 256, 1024}

// DefaultHealthInterval is the snapshot interval when HealthConfig leaves it
// zero: 30 seconds of virtual time, one tenth of Hadoop's classic 5-minute
// task timeout and fine enough to catch a workflow falling behind within one
// plan requirement step.
const DefaultHealthInterval = 30 * time.Second

// HealthConfig shapes the deadline-health tracker.
type HealthConfig struct {
	// Interval is the minimum virtual time between slack snapshots. It is
	// also the staleness bound of every read surface (the woha_health_*
	// gauges, the /statusz health block, the KindHealthSlack events): a
	// value read there is at most one interval old. 0 selects
	// DefaultHealthInterval.
	Interval time.Duration
}

// HealthTracker computes per-workflow deadline slack at runtime: every
// Interval of virtual time it compares each live workflow's completed-task
// count against the progress requirement its scheduling plan demands at that
// instant (plan.RequiredAt), publishing the result as woha_health_* metrics,
// typed threshold-crossing events, and an immutable HealthSnapshot for
// /statusz.
//
// The tracker is fed by the Obs hot-path methods (WorkflowSubmitted,
// TaskAssigned, TaskCompleted, WorkflowCompleted) and advances its snapshot
// clock from both the heartbeat path and task completions, so it works under
// the live control plane and in instant-dispatch simulations alike. Feeds
// touch only per-workflow atomics — no locks, no allocation — and every
// method no-ops on a nil receiver, matching the rest of the obs layer.
//
// One tracker observes one run. Registration may race with traffic (the
// workflow table is copy-on-write behind an atomic pointer), but counters are
// not re-zeroed: reusing a tracker for a second run would merge the runs.
type HealthTracker struct {
	o        *Obs
	interval time.Duration

	// mu serializes registration (copy-on-write of the table below) and
	// snapshot computation; feeds never take it.
	mu  sync.Mutex
	wfs atomic.Pointer[[]*healthWF]

	// last is the virtual time (ns) of the last claimed snapshot; tick
	// CASes it forward so concurrent heartbeats elect one snapshotter.
	last atomic.Int64
	snap atomic.Pointer[HealthSnapshot]

	maps, reds atomic.Int64

	minSlack   *Gauge
	behind     *Gauge
	liveWFs    *Gauge
	slackDist  *Histogram
	snaps      *Counter
	fellBehind *Counter
	recovered  *Counter
	predicted  *Counter
}

func newHealthTracker(o *Obs, cfg HealthConfig) *HealthTracker {
	iv := cfg.Interval
	if iv <= 0 {
		iv = DefaultHealthInterval
	}
	reg := o.reg
	h := &HealthTracker{
		o:        o,
		interval: iv,
		minSlack: reg.Gauge(MetricHealthMinSlack,
			"Smallest slack (completed minus required tasks) over live planned workflows; 0 when none are live."),
		behind: reg.Gauge(MetricHealthBehind,
			"Live planned workflows currently behind their plan (slack < 0)."),
		liveWFs: reg.Gauge(MetricHealthLive,
			"Workflows released and not yet completed at the last health snapshot."),
		slackDist: reg.Histogram(MetricHealthSlackDist,
			"Per-workflow slack (completed minus required tasks) observed at each health snapshot.", SlackBuckets),
		snaps: reg.Counter(MetricHealthSnapshots, "Health snapshots computed."),
		fellBehind: reg.Counter(MetricHealthFellBehind,
			"Workflow transitions from on-plan to behind plan (slack dropped below 0)."),
		recovered: reg.Counter(MetricHealthRecovered,
			"Workflow transitions from behind plan back to non-negative slack."),
		predicted: reg.Counter(MetricHealthPredictedMisses,
			"Workflows first predicted to miss their deadline by plan-rate extrapolation."),
	}
	empty := make([]*healthWF, 0)
	h.wfs.Store(&empty)
	return h
}

// healthWF is one workflow's health state. The counter fields are written by
// the feed methods (atomics, any goroutine); behind and predicted are
// crossing latches owned by the snapshot loop under h.mu.
type healthWF struct {
	index    int
	name     string
	release  simtime.Time
	deadline simtime.Time
	total    int
	plan     *plan.Plan

	scheduled atomic.Int64
	completed atomic.Int64
	released  atomic.Bool
	done      atomic.Bool
	finish    atomic.Int64 // virtual ns of completion, valid once done

	behind    bool
	predicted bool
}

// Register adds one workflow to the health table before (or while) the run
// starts. wf is the workflow's arrival index — the same index every Obs feed
// method reports. p may be nil (baseline schedulers): the workflow still
// appears in snapshots, but has no slack, since slack is defined against a
// plan's requirement list.
func (h *HealthTracker) Register(wf int, name string, release, deadline simtime.Time, total int, p *plan.Plan) {
	if h == nil || wf < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := *h.wfs.Load()
	next := make([]*healthWF, len(cur), max(len(cur), wf+1))
	copy(next, cur)
	for len(next) <= wf {
		next = append(next, nil)
	}
	next[wf] = &healthWF{
		index: wf, name: name, release: release, deadline: deadline,
		total: total, plan: p,
	}
	h.wfs.Store(&next)
}

// SetSlots records the cluster's slot capacity for /statusz utilization.
func (h *HealthTracker) SetSlots(maps, reduces int) {
	if h == nil {
		return
	}
	h.maps.Store(int64(maps))
	h.reds.Store(int64(reduces))
}

// Interval returns the snapshot interval (the staleness bound), 0 on nil.
func (h *HealthTracker) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.interval
}

// wf returns the registered entry for index i, nil when unknown. Lock-free:
// one atomic pointer load plus a bounds check.
func (h *HealthTracker) wf(i int) *healthWF {
	wfs := *h.wfs.Load()
	if i < 0 || i >= len(wfs) {
		return nil
	}
	return wfs[i]
}

func (h *HealthTracker) workflowReleased(i int) {
	if h == nil {
		return
	}
	if w := h.wf(i); w != nil {
		w.released.Store(true)
	}
}

func (h *HealthTracker) taskScheduled(i int) {
	if h == nil {
		return
	}
	if w := h.wf(i); w != nil {
		w.scheduled.Add(1)
	}
}

func (h *HealthTracker) taskCompleted(i int) {
	if h == nil {
		return
	}
	if w := h.wf(i); w != nil {
		w.completed.Add(1)
	}
}

func (h *HealthTracker) workflowDone(i int, now simtime.Time) {
	if h == nil {
		return
	}
	if w := h.wf(i); w != nil {
		w.finish.Store(int64(now))
		w.done.Store(true)
	}
}

// tick advances the snapshot clock: when at least one interval of virtual
// time has passed since the last snapshot, the caller that wins the CAS
// computes the next one. Losing callers (and every call inside the interval)
// return after two atomic operations.
func (h *HealthTracker) tick(now simtime.Time) {
	if h == nil {
		return
	}
	last := h.last.Load()
	if int64(now)-last < int64(h.interval) {
		return
	}
	if !h.last.CompareAndSwap(last, int64(now)) {
		return
	}
	h.SnapshotAt(now)
}

// SnapshotAt computes a health snapshot as of the given virtual instant,
// publishes it to the metrics/event surfaces, and returns it. The periodic
// path calls it through tick; tests and result paths may call it directly
// for a deterministic read. Returns nil on a nil receiver.
func (h *HealthTracker) SnapshotAt(now simtime.Time) *HealthSnapshot {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	wfs := *h.wfs.Load()
	snap := &HealthSnapshot{
		TUS:         now.Duration().Microseconds(),
		IntervalUS:  h.interval.Microseconds(),
		MapSlots:    int(h.maps.Load()),
		ReduceSlots: int(h.reds.Load()),
		Workflows:   make([]WorkflowHealth, 0, len(wfs)),
	}
	haveSlack := false
	for _, w := range wfs {
		if w == nil {
			continue
		}
		// Load done before completed: a concurrent completion can make the
		// row's counters slightly newer than its done flag, but never show a
		// finished workflow as live.
		done := w.done.Load()
		released := w.released.Load()
		completed := int(w.completed.Load())
		scheduled := int(w.scheduled.Load())
		row := WorkflowHealth{
			Workflow: w.index, Name: w.name,
			Released: released, Done: done,
			Scheduled: scheduled, Completed: completed, Total: w.total,
			TTDUS: w.deadline.Sub(now).Microseconds(),
		}
		if done {
			if fin := simtime.Time(w.finish.Load()); fin > w.deadline {
				row.TardinessUS = fin.Sub(w.deadline).Microseconds()
			}
		}
		ttd := w.deadline.Sub(now)
		if w.plan != nil {
			row.HasPlan = true
			row.Required = w.plan.RequiredAt(ttd)
			row.Slack = completed - row.Required
		}
		if released && !done {
			snap.Live++
			snap.InFlight += scheduled - completed
			if w.plan != nil {
				h.slackDist.Observe(float64(row.Slack))
				if !haveSlack || row.Slack < snap.MinSlack {
					snap.MinSlack, haveSlack = row.Slack, true
				}
				behindNow := row.Slack < 0
				row.Behind = behindNow
				if behindNow {
					snap.Behind++
				}
				if behindNow && !w.behind {
					h.fellBehind.Inc()
					h.o.Emit(Event{Kind: KindHealthFellBehind, Time: now, Workflow: w.index,
						Job: -1, Tracker: -1, Slot: -1, Name: w.name, N: row.Slack})
				} else if !behindNow && w.behind {
					h.recovered.Inc()
					h.o.Emit(Event{Kind: KindHealthRecovered, Time: now, Workflow: w.index,
						Job: -1, Tracker: -1, Slot: -1, Name: w.name, N: row.Slack})
				}
				w.behind = behindNow
				predNow := predictMiss(w.plan, w.total, completed, ttd)
				row.PredictedMiss = predNow
				if predNow && !w.predicted {
					h.predicted.Inc()
					h.o.Emit(Event{Kind: KindHealthPredictedMiss, Time: now, Workflow: w.index,
						Job: -1, Tracker: -1, Slot: -1, Name: w.name, N: w.total - completed})
				}
				w.predicted = predNow
				h.o.Emit(Event{Kind: KindHealthSlack, Time: now, Workflow: w.index,
					Job: -1, Tracker: -1, Slot: -1, Name: w.name, N: row.Slack})
			}
		}
		snap.Workflows = append(snap.Workflows, row)
	}
	h.minSlack.Set(int64(snap.MinSlack))
	h.behind.Set(int64(snap.Behind))
	h.liveWFs.Set(int64(snap.Live))
	h.snaps.Inc()
	h.snap.Store(snap)
	return snap
}

// Last returns the most recently published snapshot, nil when none has been
// computed yet (or on a nil receiver). The value is immutable and at most
// one Interval stale while traffic flows.
func (h *HealthTracker) Last() *HealthSnapshot {
	if h == nil {
		return nil
	}
	return h.snap.Load()
}

// predictMiss extrapolates whether the workflow can still finish in time:
// the plan's standalone simulation sustained total/Makespan tasks per
// second, so if the remaining tasks exceed that rate times the time to
// deadline even this best case misses. With the deadline already past (and
// work remaining) the miss is certain at any rate.
func predictMiss(p *plan.Plan, total, completed int, ttd time.Duration) bool {
	remaining := total - completed
	if remaining <= 0 {
		return false
	}
	if ttd <= 0 {
		return true
	}
	if p.Makespan <= 0 {
		return false
	}
	rate := float64(total) / p.Makespan.Seconds()
	return float64(remaining) > rate*ttd.Seconds()
}

// HealthSnapshot is one immutable point-in-time view of every registered
// workflow's deadline health, serializable as the /statusz health block.
// Times are microseconds of virtual time.
type HealthSnapshot struct {
	// TUS is the virtual instant the snapshot describes; IntervalUS the
	// configured snapshot interval (the staleness bound of this data).
	TUS        int64 `json:"t_us"`
	IntervalUS int64 `json:"interval_us"`
	// MapSlots and ReduceSlots are the cluster capacity (0 if never set);
	// InFlight is the number of tasks assigned but not yet completed, so
	// InFlight/(MapSlots+ReduceSlots) approximates slot utilization.
	MapSlots    int `json:"map_slots"`
	ReduceSlots int `json:"reduce_slots"`
	InFlight    int `json:"in_flight_tasks"`
	// Live counts workflows released and not done; Behind those with
	// negative slack; MinSlack the smallest slack over live planned
	// workflows (0 when none are live).
	Live     int `json:"live_workflows"`
	Behind   int `json:"behind_workflows"`
	MinSlack int `json:"min_slack"`
	// Workflows holds one row per registered workflow, by arrival index.
	Workflows []WorkflowHealth `json:"workflows"`
}

// WorkflowHealth is one workflow's row in a HealthSnapshot.
type WorkflowHealth struct {
	Workflow  int    `json:"workflow"`
	Name      string `json:"name"`
	Released  bool   `json:"released"`
	Done      bool   `json:"done"`
	Scheduled int    `json:"scheduled"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	// HasPlan reports whether the workflow carries a scheduling plan; the
	// three fields after it are only meaningful when it is true. Slack is
	// Completed minus Required, the plan requirement in force (negative =
	// behind plan).
	HasPlan  bool `json:"has_plan"`
	Required int  `json:"required"`
	Slack    int  `json:"slack"`
	// TTDUS is the time to deadline at the snapshot instant (negative once
	// the deadline has passed).
	TTDUS int64 `json:"ttd_us"`
	// Behind and PredictedMiss are only set for live planned workflows.
	Behind        bool `json:"behind"`
	PredictedMiss bool `json:"predicted_miss"`
	// TardinessUS is how far past the deadline the workflow finished
	// (0 = met or still running).
	TardinessUS int64 `json:"tardiness_us"`
}
