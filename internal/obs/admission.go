package obs

import (
	"time"

	"repro/internal/simtime"
)

// AdmissionStats bundles the instruments of the admission front door
// (internal/admission): decision outcome counters, the counter-offer tally,
// commitment releases, and decision latency, all labeled with the controller
// mode. All methods are safe on a nil receiver, so controllers carry an
// AdmissionStats pointer unconditionally and the uninstrumented always-admit
// fast path pays one nil check (pinned at 0 allocs/decision by the alloc-pins
// target even when instrumented).
type AdmissionStats struct {
	// Admitted, Deferred, and Rejected count decisions by verdict.
	Admitted *Counter
	Deferred *Counter
	Rejected *Counter
	// CounterOffers counts rejections that carried an earliest-feasible
	// deadline the submitter could resubmit against.
	CounterOffers *Counter
	// Releases counts capacity commitments released on workflow completion.
	Releases *Counter
	// DecisionDur is the wall-clock latency of one admission decision.
	DecisionDur *Histogram

	o *Obs
}

// NewAdmissionStats registers the admission instruments for one controller
// mode ("always", "feasible", "token-bucket"). Returns nil (disabled stats)
// on a nil receiver.
func (o *Obs) NewAdmissionStats(controller string) *AdmissionStats {
	if o == nil {
		return nil
	}
	l := Labels{"controller": controller}
	return &AdmissionStats{
		Admitted: o.reg.CounterWith(MetricAdmissionAdmitted,
			"Workflow submissions admitted by the admission controller.", l),
		Deferred: o.reg.CounterWith(MetricAdmissionDeferred,
			"Workflow submissions deferred to a later retry instant.", l),
		Rejected: o.reg.CounterWith(MetricAdmissionRejected,
			"Workflow submissions rejected by the admission controller.", l),
		CounterOffers: o.reg.CounterWith(MetricAdmissionCounterOffers,
			"Rejections carrying a counter-offered earliest feasible deadline.", l),
		Releases: o.reg.CounterWith(MetricAdmissionReleases,
			"Capacity-ledger commitments released on workflow completion.", l),
		DecisionDur: o.reg.HistogramWith(MetricAdmissionDecisionDuration,
			"Wall-clock latency of one admission decision.", l, DurationBuckets),
		o: o,
	}
}

// OnAdmitted records one admitted submission.
func (s *AdmissionStats) OnAdmitted(now simtime.Time, name string, dur time.Duration) {
	if s == nil {
		return
	}
	s.Admitted.Inc()
	s.DecisionDur.ObserveDuration(dur)
	s.o.Emit(Event{Kind: KindAdmissionAdmitted, Time: now, Workflow: -1, Job: -1,
		Tracker: -1, Slot: -1, Name: name, Dur: dur})
}

// OnDeferred records one deferred submission and its retry instant.
func (s *AdmissionStats) OnDeferred(now simtime.Time, name string, retryAt simtime.Time, dur time.Duration) {
	if s == nil {
		return
	}
	s.Deferred.Inc()
	s.DecisionDur.ObserveDuration(dur)
	s.o.Emit(Event{Kind: KindAdmissionDeferred, Time: now, Workflow: -1, Job: -1,
		Tracker: -1, Slot: -1, Name: name, Dur: retryAt.Sub(now)})
}

// OnRejected records one rejected submission; a non-zero counterOffer
// additionally counts toward woha_admission_counter_offers_total.
func (s *AdmissionStats) OnRejected(now simtime.Time, name, reason string, counterOffer simtime.Time, dur time.Duration) {
	if s == nil {
		return
	}
	s.Rejected.Inc()
	s.DecisionDur.ObserveDuration(dur)
	e := Event{Kind: KindAdmissionRejected, Time: now, Workflow: -1, Job: -1,
		Tracker: -1, Slot: -1, Name: name}
	if counterOffer > 0 {
		s.CounterOffers.Inc()
		e.N = 1
		e.Dur = counterOffer.Sub(now)
	}
	s.o.Emit(e)
}

// OnRelease records one capacity commitment released on completion.
func (s *AdmissionStats) OnRelease() {
	if s == nil {
		return
	}
	s.Releases.Inc()
}
