package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/simtime"
)

// Kind enumerates the typed scheduler events the framework emits.
type Kind uint8

// Event kinds. The catalogue mirrors the control-plane decision points: the
// workflow lifecycle, the heartbeat loop, the inter-workflow queue, and plan
// generation.
const (
	// KindWorkflowSubmitted fires when a workflow's release time arrives and
	// the policy first sees it.
	KindWorkflowSubmitted Kind = iota
	// KindWorkflowCompleted fires when every task of a workflow finished.
	// Dur carries the tardiness (0 = deadline met).
	KindWorkflowCompleted
	// KindDeadlineMissed fires alongside KindWorkflowCompleted when the
	// finish time exceeded the deadline. Dur carries the tardiness.
	KindDeadlineMissed
	// KindJobActivated fires when a job's prerequisites finish and its tasks
	// become schedulable.
	KindJobActivated
	// KindTaskAssigned fires when the scheduler places one task on a slot.
	// Dur carries the task's (virtual) duration estimate; Tracker the node.
	KindTaskAssigned
	// KindHeartbeatServed fires once per heartbeat the JobTracker answers.
	// Dur carries the wall-clock handling latency; N the assignment count.
	KindHeartbeatServed
	// KindQueueInsert fires when a workflow enters the inter-workflow queue.
	KindQueueInsert
	// KindQueueDelete fires when a workflow leaves the inter-workflow queue.
	KindQueueDelete
	// KindQueueHeadHit fires when a Best call is served from the priority
	// list head. N carries the number of entries re-prioritized first
	// (0 = the pure O(1) fast path).
	KindQueueHeadHit
	// KindPlanGenerated fires when a scheduling plan is produced. N carries
	// the capped binary search's Generate invocation count.
	KindPlanGenerated
	// KindTaskCompleted fires when a task attempt finishes successfully and
	// its output is accounted (lost or killed attempts do not fire it). Slot
	// carries the stage and Tracker the node, mirroring KindTaskAssigned.
	KindTaskCompleted
	// KindHealthSlack is one workflow's row of a periodic health snapshot.
	// N carries the slack: tasks completed minus the plan requirement in
	// force at the snapshot instant (negative = behind plan).
	KindHealthSlack
	// KindHealthFellBehind fires when a live workflow's slack first drops
	// below zero. N carries the slack at the crossing.
	KindHealthFellBehind
	// KindHealthRecovered fires when a previously behind workflow returns
	// to non-negative slack. N carries the slack at the crossing.
	KindHealthRecovered
	// KindHealthPredictedMiss fires when the health tracker first predicts,
	// by linear extrapolation of the plan's standalone throughput, that the
	// workflow cannot finish by its deadline. N carries the tasks remaining.
	KindHealthPredictedMiss
	// KindAdmissionAdmitted fires when the admission controller admits a
	// submission. Name carries the workflow name; Dur the decision latency.
	KindAdmissionAdmitted
	// KindAdmissionDeferred fires when the admission controller postpones a
	// submission. Name carries the workflow name; Dur the virtual wait until
	// the retry instant.
	KindAdmissionDeferred
	// KindAdmissionRejected fires when the admission controller turns a
	// submission away. Name carries the workflow name; when the rejection
	// includes a counter-offered deadline, N is 1 and Dur the virtual
	// distance from the event time to the offered deadline.
	KindAdmissionRejected

	numKinds
)

var kindNames = [numKinds]string{
	"workflow_submitted", "workflow_completed", "deadline_missed",
	"job_activated", "task_assigned", "heartbeat_served",
	"queue_insert", "queue_delete", "queue_head_hit", "plan_generated",
	"task_completed", "health_slack", "health_fell_behind",
	"health_recovered", "health_predicted_miss",
	"admission_admitted", "admission_deferred", "admission_rejected",
}

// String returns the snake_case event name used in the JSONL schema.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured scheduler event. Integer fields not applicable to
// a kind hold -1; see the Kind constants for which fields each kind carries.
type Event struct {
	// Kind is the event type.
	Kind Kind
	// Time is the virtual (workflow) time of the event.
	Time simtime.Time
	// Workflow is the workflow's arrival index (-1 when not applicable).
	Workflow int
	// Job is the job index within the workflow (-1 when not applicable).
	Job int
	// Tracker is the TaskTracker/node index (-1 when not applicable).
	Tracker int
	// Slot is the slot type (0 map, 1 reduce, -1 when not applicable).
	Slot int
	// Name annotates the event: workflow name, queue backend, or policy.
	Name string
	// Dur is the event's duration payload (heartbeat latency, task length,
	// tardiness).
	Dur time.Duration
	// N is the event's count payload (assignments, search iterations).
	N int
}

// eventJSON is the stable JSONL schema (documented in OBSERVABILITY.md).
type eventJSON struct {
	Kind     string `json:"kind"`
	TUS      int64  `json:"t_us"`
	Workflow int    `json:"workflow"`
	Job      int    `json:"job"`
	Tracker  int    `json:"tracker"`
	Slot     int    `json:"slot"`
	Name     string `json:"name,omitempty"`
	DurUS    int64  `json:"dur_us,omitempty"`
	N        int    `json:"n,omitempty"`
}

// MarshalJSON renders the event in the JSONL schema: kind as its snake_case
// name, times in microseconds of virtual time.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Kind:     e.Kind.String(),
		TUS:      e.Time.Duration().Microseconds(),
		Workflow: e.Workflow,
		Job:      e.Job,
		Tracker:  e.Tracker,
		Slot:     e.Slot,
		Name:     e.Name,
		DurUS:    e.Dur.Microseconds(),
		N:        e.N,
	})
}

// EventSink receives the event stream. Implementations must be safe for
// concurrent Emit calls; the live control plane emits from many goroutines.
type EventSink interface {
	Emit(Event)
}

// Ring is a bounded in-memory EventSink: a ring buffer that keeps the most
// recent events and counts the total ever emitted, so the hot path never
// blocks or allocates however long the run.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

// DefaultRingSize is the Ring capacity when NewRing is given n <= 0.
const DefaultRingSize = 4096

// NewRing returns a ring sink keeping the last n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Emit implements EventSink. Like the rest of the package, a nil *Ring is a
// valid no-op sink — guarding here keeps a typed-nil boxed into an EventSink
// from panicking.
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Events returns a snapshot of the retained events, oldest first. A nil
// *Ring has no events.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Total returns the number of events ever emitted (retained or not).
func (r *Ring) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// CountKind returns how many retained events have the given kind.
func (r *Ring) CountKind(k Kind) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.buf {
		if r.buf[i].Kind == k {
			n++
		}
	}
	return n
}

// JSONL is an EventSink writing one JSON object per line to w. Write errors
// are sticky: the first one stops further output and is reported by Err.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink over w. The caller owns w's lifetime.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements EventSink.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Tee fans an event out to several sinks; nil sinks are skipped.
func Tee(sinks ...EventSink) EventSink {
	var live []EventSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	return teeSink(live)
}

type teeSink []EventSink

// Emit implements EventSink.
func (t teeSink) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
