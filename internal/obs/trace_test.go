package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// decodeTrace parses WriteTrace output back into generic events.
func decodeTrace(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, raw)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func at(d time.Duration) simtime.Time { return simtime.Epoch.Add(d) }

func TestWriteTraceTracksAndSlices(t *testing.T) {
	events := []Event{
		{Kind: KindWorkflowSubmitted, Time: at(0), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0"},
		{Kind: KindTaskAssigned, Time: at(time.Second), Workflow: 0, Job: 2, Tracker: 1, Slot: 0, Dur: 30 * time.Second},
		{Kind: KindTaskAssigned, Time: at(2 * time.Second), Workflow: 0, Job: 3, Tracker: 4, Slot: 1, Dur: time.Minute},
		{Kind: KindHeartbeatServed, Time: at(2 * time.Second), Workflow: -1, Job: -1, Tracker: 1, Slot: -1, Dur: 80 * time.Microsecond, N: 1},
		{Kind: KindJobActivated, Time: at(3 * time.Second), Workflow: 0, Job: 3, Tracker: -1, Slot: -1},
		{Kind: KindWorkflowCompleted, Time: at(time.Minute), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", Dur: 5 * time.Second},
		{Kind: KindDeadlineMissed, Time: at(time.Minute), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", Dur: 5 * time.Second},
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	tes := decodeTrace(t, sb.String())

	find := func(ph, name string) map[string]any {
		for _, te := range tes {
			if te["ph"] == ph && te["name"] == name {
				return te
			}
		}
		return nil
	}

	// Both track groups are named.
	var procNames []string
	for _, te := range tes {
		if te["ph"] == "M" && te["name"] == "process_name" {
			procNames = append(procNames, te["args"].(map[string]any)["name"].(string))
		}
	}
	if len(procNames) != 2 || procNames[0] != "trackers" || procNames[1] != "workflows" {
		t.Errorf("process names = %v, want [trackers workflows]", procNames)
	}

	// Task slice on tracker 1's thread with the virtual duration.
	task := find("X", "wf0/j2 map")
	if task == nil {
		t.Fatal("map task slice missing")
	}
	if task["pid"].(float64) != tracePIDTrackers || task["tid"].(float64) != 1 {
		t.Errorf("task slice on pid/tid %v/%v, want %d/1", task["pid"], task["tid"], tracePIDTrackers)
	}
	if task["dur"].(float64) != 30e6 {
		t.Errorf("task dur = %v µs, want 3e7", task["dur"])
	}
	if find("X", "wf0/j3 reduce") == nil {
		t.Error("reduce task slice missing")
	}

	// The workflow renders as one complete slice spanning submit→complete.
	wf := find("X", "w0")
	if wf == nil {
		t.Fatal("workflow slice missing")
	}
	if wf["ts"].(float64) != 0 || wf["dur"].(float64) != 60e6 {
		t.Errorf("workflow slice ts/dur = %v/%v, want 0/6e7", wf["ts"], wf["dur"])
	}
	if wf["pid"].(float64) != tracePIDWorkflows {
		t.Errorf("workflow slice pid = %v, want %d", wf["pid"], tracePIDWorkflows)
	}

	// Instants: heartbeat on the tracker track, miss + activation on the
	// workflow track.
	for _, name := range []string{"heartbeat", "deadline missed", "j3 activated"} {
		if find("i", name) == nil {
			t.Errorf("instant %q missing", name)
		}
	}
}

func TestWriteTraceUnmatchedCompletionAndOpenWorkflow(t *testing.T) {
	events := []Event{
		// Completion with no submission in the stream (ring overflow).
		{Kind: KindWorkflowCompleted, Time: at(time.Second), Workflow: 7, Job: -1, Tracker: -1, Slot: -1, Name: "lost"},
		// Submission never completed by stream end.
		{Kind: KindWorkflowSubmitted, Time: at(2 * time.Second), Workflow: 8, Job: -1, Tracker: -1, Slot: -1, Name: "open"},
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	tes := decodeTrace(t, sb.String())
	var gotInstant, gotBegin bool
	for _, te := range tes {
		if te["ph"] == "i" && te["name"] == "completed" && te["tid"].(float64) == 7 {
			gotInstant = true
		}
		if te["ph"] == "B" && te["name"] == "open" && te["tid"].(float64) == 8 {
			gotBegin = true
		}
	}
	if !gotInstant {
		t.Error("unmatched completion should degrade to an instant")
	}
	if !gotBegin {
		t.Error("open workflow should flush as a begin event")
	}
}

func TestWriteTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTrace(&sb, nil); err != nil {
		t.Fatal(err)
	}
	tes := decodeTrace(t, sb.String())
	// Just the two process_name metadata records.
	if len(tes) != 2 {
		t.Errorf("empty trace has %d events, want 2 metadata records", len(tes))
	}
	// An empty (never-written) ring renders identically.
	sb.Reset()
	if err := WriteTrace(&sb, NewRing(16).Events()); err != nil {
		t.Fatal(err)
	}
	if got := decodeTrace(t, sb.String()); len(got) != 2 {
		t.Errorf("empty ring trace has %d events, want 2", len(got))
	}
}

// A ring that wrapped — evicting each workflow's submission but keeping its
// completion — must still render a valid trace via the degradation paths.
func TestWriteTraceWrappedRing(t *testing.T) {
	ring := NewRing(4)
	for wf := 0; wf < 8; wf++ {
		ring.Emit(Event{Kind: KindWorkflowSubmitted, Time: at(time.Duration(wf) * time.Second),
			Workflow: wf, Job: -1, Tracker: -1, Slot: -1, Name: "w"})
	}
	for wf := 0; wf < 4; wf++ {
		ring.Emit(Event{Kind: KindWorkflowCompleted, Time: at(time.Duration(10+wf) * time.Second),
			Workflow: wf, Job: -1, Tracker: -1, Slot: -1, Name: "w"})
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, evs); err != nil {
		t.Fatal(err)
	}
	// All four survivors are completions whose submissions were evicted, so
	// each degrades to an instant; no X slices and no dangling B records.
	tes := decodeTrace(t, sb.String())
	instants := 0
	for _, te := range tes {
		switch te["ph"] {
		case "i":
			instants++
		case "X", "B":
			t.Errorf("wrapped ring produced a %v slice: %v", te["ph"], te)
		}
	}
	if instants != 4 {
		t.Errorf("instants = %d, want 4 degraded completions", instants)
	}
}

// Health snapshots render as Perfetto counter tracks ("C") plus instants for
// the threshold crossings.
func TestWriteTraceSlackCounters(t *testing.T) {
	events := []Event{
		{Kind: KindWorkflowSubmitted, Time: at(0), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0"},
		{Kind: KindHealthSlack, Time: at(30 * time.Second), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", N: 3},
		{Kind: KindHealthSlack, Time: at(60 * time.Second), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", N: -2},
		{Kind: KindHealthFellBehind, Time: at(60 * time.Second), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", N: -2},
		{Kind: KindHealthRecovered, Time: at(90 * time.Second), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", N: 1},
		{Kind: KindHealthPredictedMiss, Time: at(95 * time.Second), Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0", N: 7},
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	tes := decodeTrace(t, sb.String())
	var counters []float64
	for _, te := range tes {
		if te["ph"] == "C" && te["name"] == "wf0 slack" {
			if te["pid"].(float64) != tracePIDWorkflows {
				t.Errorf("counter on pid %v, want %d", te["pid"], tracePIDWorkflows)
			}
			counters = append(counters, te["args"].(map[string]any)["slack"].(float64))
		}
	}
	if len(counters) != 2 || counters[0] != 3 || counters[1] != -2 {
		t.Errorf("slack counter samples = %v, want [3 -2]", counters)
	}
	for _, name := range []string{"health_fell_behind", "health_recovered", "health_predicted_miss"} {
		found := false
		for _, te := range tes {
			if te["ph"] == "i" && te["name"] == name {
				found = true
			}
		}
		if !found {
			t.Errorf("crossing instant %q missing", name)
		}
	}
}
