package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/plan"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// PostmortemSchema identifies the JSON document AnalyzePostmortem emits.
// Bump the suffix on any breaking change to the field set.
const PostmortemSchema = "woha-postmortem/v1"

// PostmortemSpec hands the analyzer the static side of one workflow: the DAG
// (for job names and prerequisite edges) and, when the run used a WOHA
// scheduler, the scheduling plan (for the progress requirement list F_i).
// Workflow is the arrival index, matching Event.Workflow.
type PostmortemSpec struct {
	Workflow int
	Spec     *workflow.Workflow
	Plan     *plan.Plan
}

// PostmortemReport is the root-cause analysis of a run's deadline misses,
// reconstructed entirely from the event stream. Schema is PostmortemSchema.
type PostmortemReport struct {
	Schema string `json:"schema"`
	// Events is the number of events analyzed; Workflows the number of
	// specs supplied. A ring-buffered stream may have evicted early events,
	// in which case wait/run decompositions are best-effort (see
	// OBSERVABILITY.md).
	Events    int `json:"events"`
	Workflows int `json:"workflows"`
	// Missed holds one entry per workflow that finished late or was still
	// unfinished past its deadline at the end of the stream, in arrival
	// order. Empty when every deadline was met.
	Missed []MissReport `json:"missed"`
}

// MissReport attributes one workflow's deadline miss.
type MissReport struct {
	Workflow int    `json:"workflow"`
	Name     string `json:"name"`
	// Unfinished marks a workflow that never completed within the event
	// stream although its deadline passed; FinishUS and TardinessUS are
	// then lower bounds taken at the last event.
	Unfinished  bool  `json:"unfinished,omitempty"`
	ReleaseUS   int64 `json:"release_us"`
	DeadlineUS  int64 `json:"deadline_us"`
	FinishUS    int64 `json:"finish_us"`
	TardinessUS int64 `json:"tardiness_us"`
	TotalTasks  int   `json:"total_tasks"`
	// Scheduled and Completed count task events observed for the workflow
	// (undercounts if the ring evicted early events).
	Scheduled int `json:"scheduled"`
	Completed int `json:"completed"`
	// FirstUnmetReq is the first progress requirement F_i the run violated,
	// nil when the workflow had no plan or met every requirement (a miss
	// with all requirements met means the plan itself was infeasible).
	FirstUnmetReq *ReqMiss `json:"first_unmet_req,omitempty"`
	// CriticalPath walks the prerequisite chain ending at the workflow's
	// last-completing job, each hop decomposed into slot wait and run time.
	CriticalPath []PathJob `json:"critical_path"`
	// WaitUS and RunUS total the decomposition over the critical path: a
	// wait-dominated miss points at cluster contention, a run-dominated one
	// at the workload itself.
	WaitUS int64 `json:"wait_us"`
	RunUS  int64 `json:"run_us"`
	// Blame names the critical-path job/stage most responsible.
	Blame *Blame `json:"blame,omitempty"`
}

// ReqMiss is the first progress requirement the workflow failed to meet:
// by AtUS (deadline minus TTD) the plan demanded Cum scheduled tasks but
// only Scheduled had been placed — a deficit of Deficit tasks.
type ReqMiss struct {
	TTDUS     int64 `json:"ttd_us"`
	Cum       int   `json:"cum"`
	AtUS      int64 `json:"at_us"`
	Scheduled int   `json:"scheduled"`
	Deficit   int   `json:"deficit"`
}

// PathJob is one hop of the critical path. Wait is activation to first
// assignment (time the job sat schedulable without a slot); Run is first
// assignment to last completion (execution, including intra-job queueing of
// later waves).
type PathJob struct {
	Job           int    `json:"job"`
	Name          string `json:"name"`
	Stage         string `json:"stage"`
	ActivatedUS   int64  `json:"activated_us"`
	FirstAssignUS int64  `json:"first_assign_us"`
	CompletedUS   int64  `json:"completed_us"`
	WaitUS        int64  `json:"wait_us"`
	RunUS         int64  `json:"run_us"`
}

// Blame is the verdict: the critical-path job and stage that contributed
// most to the miss, with its wait/run split and a human-readable reason.
type Blame struct {
	Job    int    `json:"job"`
	Name   string `json:"name"`
	Stage  string `json:"stage"`
	WaitUS int64  `json:"wait_us"`
	RunUS  int64  `json:"run_us"`
	Reason string `json:"reason"`
}

// pmJob accumulates one job's observed lifecycle. Stage-indexed arrays use
// 0 = map, 1 = reduce, matching cluster.SlotType.
type pmJob struct {
	activated    simtime.Time
	hasActivated bool
	firstAssign  [2]simtime.Time
	hasAssign    [2]bool
	lastComplete [2]simtime.Time
	hasComplete  [2]bool
}

// pmWF accumulates one workflow's observed lifecycle.
type pmWF struct {
	submitted simtime.Time
	finished  simtime.Time
	hasFinish bool
	tardiness time.Duration
	assigns   []simtime.Time
	completes int
	jobs      map[int]*pmJob
}

func (w *pmWF) job(j int) *pmJob {
	pj := w.jobs[j]
	if pj == nil {
		pj = &pmJob{}
		w.jobs[j] = pj
	}
	return pj
}

// AnalyzePostmortem reconstructs each missed workflow's timeline from the
// event stream and attributes the miss: the first unmet progress requirement
// F_i, the critical-path job/stage that went late, and a wait-vs-run
// decomposition. Events need not be sorted (the live control plane emits
// from many goroutines); workflows without a spec entry are ignored.
func AnalyzePostmortem(events []Event, specs []PostmortemSpec) *PostmortemReport {
	// Sort a copy by virtual time so timeline reconstruction is order-safe.
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].Time < evs[b].Time })

	byWF := map[int]*pmWF{}
	get := func(i int) *pmWF {
		w := byWF[i]
		if w == nil {
			w = &pmWF{jobs: map[int]*pmJob{}}
			byWF[i] = w
		}
		return w
	}
	var last simtime.Time
	for i := range evs {
		e := &evs[i]
		if e.Time > last {
			last = e.Time
		}
		if e.Workflow < 0 {
			continue
		}
		switch e.Kind {
		case KindWorkflowSubmitted:
			get(e.Workflow).submitted = e.Time
		case KindWorkflowCompleted:
			w := get(e.Workflow)
			w.finished, w.hasFinish, w.tardiness = e.Time, true, e.Dur
		case KindJobActivated:
			pj := get(e.Workflow).job(e.Job)
			if !pj.hasActivated {
				pj.activated, pj.hasActivated = e.Time, true
			}
		case KindTaskAssigned:
			w := get(e.Workflow)
			w.assigns = append(w.assigns, e.Time)
			if st := e.Slot; st == 0 || st == 1 {
				pj := w.job(e.Job)
				if !pj.hasAssign[st] {
					pj.firstAssign[st], pj.hasAssign[st] = e.Time, true
				}
			}
		case KindTaskCompleted:
			w := get(e.Workflow)
			w.completes++
			if st := e.Slot; st == 0 || st == 1 {
				pj := w.job(e.Job)
				pj.lastComplete[st], pj.hasComplete[st] = e.Time, true
			}
		}
	}

	rep := &PostmortemReport{Schema: PostmortemSchema, Events: len(evs), Workflows: len(specs)}
	for _, spec := range specs {
		if spec.Spec == nil {
			continue
		}
		data := byWF[spec.Workflow]
		if data == nil {
			continue
		}
		deadline := spec.Spec.Deadline
		missed := data.hasFinish && data.tardiness > 0
		unfinished := !data.hasFinish && last > deadline
		if !missed && !unfinished {
			continue
		}
		m := MissReport{
			Workflow:   spec.Workflow,
			Name:       spec.Spec.Name,
			Unfinished: unfinished,
			ReleaseUS:  spec.Spec.Release.Duration().Microseconds(),
			DeadlineUS: deadline.Duration().Microseconds(),
			TotalTasks: spec.Spec.TotalTasks(),
			Scheduled:  len(data.assigns),
			Completed:  data.completes,
		}
		if data.hasFinish {
			m.FinishUS = data.finished.Duration().Microseconds()
			m.TardinessUS = data.tardiness.Microseconds()
		} else {
			m.FinishUS = last.Duration().Microseconds()
			m.TardinessUS = last.Sub(deadline).Microseconds()
		}
		m.FirstUnmetReq = firstUnmetReq(spec.Plan, deadline, data.assigns)
		m.CriticalPath = criticalPath(spec.Spec, data, last)
		for i := range m.CriticalPath {
			m.WaitUS += m.CriticalPath[i].WaitUS
			m.RunUS += m.CriticalPath[i].RunUS
		}
		m.Blame = blame(m.CriticalPath)
		rep.Missed = append(rep.Missed, m)
	}
	sort.Slice(rep.Missed, func(a, b int) bool { return rep.Missed[a].Workflow < rep.Missed[b].Workflow })
	return rep
}

// firstUnmetReq replays the plan's requirement list against the observed
// assignment times and returns the first entry that was not satisfied: at
// absolute instant deadline-TTD, fewer than Cum tasks had been scheduled.
func firstUnmetReq(p *plan.Plan, deadline simtime.Time, assigns []simtime.Time) *ReqMiss {
	if p == nil {
		return nil
	}
	sorted := append([]simtime.Time(nil), assigns...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	// Reqs are sorted by decreasing TTD, i.e. chronologically.
	for _, r := range p.Reqs {
		at := deadline.Add(-r.TTD)
		n := sort.Search(len(sorted), func(i int) bool { return sorted[i] > at })
		if n < r.Cum {
			return &ReqMiss{
				TTDUS:     r.TTD.Microseconds(),
				Cum:       r.Cum,
				AtUS:      at.Duration().Microseconds(),
				Scheduled: n,
				Deficit:   r.Cum - n,
			}
		}
	}
	return nil
}

// jobTimes resolves one job's observed timeline into path-hop form. A job
// that never completed (workflow unfinished) reports the stream end as its
// completion lower bound.
func jobTimes(spec *workflow.Workflow, data *pmWF, j int, last simtime.Time) PathJob {
	pj := data.job(j)
	hop := PathJob{Job: j, Name: spec.Jobs[j].Name}
	completed, stage := jobCompletion(pj)
	if !pj.hasComplete[0] && !pj.hasComplete[1] {
		completed = last
		stage = "map"
		if pj.hasAssign[1] {
			stage = "reduce"
		}
	}
	hop.Stage = stage
	hop.CompletedUS = completed.Duration().Microseconds()
	activated := pj.activated
	if !pj.hasActivated {
		activated = data.submitted
	}
	hop.ActivatedUS = activated.Duration().Microseconds()
	firstAssign := completed
	switch {
	case pj.hasAssign[0]:
		firstAssign = pj.firstAssign[0]
	case pj.hasAssign[1]:
		firstAssign = pj.firstAssign[1]
	}
	hop.FirstAssignUS = firstAssign.Duration().Microseconds()
	if wait := firstAssign.Sub(activated); wait > 0 {
		hop.WaitUS = wait.Microseconds()
	}
	if run := completed.Sub(firstAssign); run > 0 {
		hop.RunUS = run.Microseconds()
	}
	return hop
}

// jobCompletion returns a job's completion instant (the later stage's last
// completion) and which stage determined it.
func jobCompletion(pj *pmJob) (simtime.Time, string) {
	switch {
	case pj.hasComplete[1] && (!pj.hasComplete[0] || pj.lastComplete[1] >= pj.lastComplete[0]):
		return pj.lastComplete[1], "reduce"
	case pj.hasComplete[0]:
		return pj.lastComplete[0], "map"
	}
	return 0, "map"
}

// criticalPath walks prerequisite edges backwards from the decisive job: for
// a finished workflow the last-completing job, for an unfinished one the job
// stuck without completion. Each hop picks the latest-completing (or stuck)
// prerequisite, so the chain is the dependency path that determined the
// finish time.
func criticalPath(spec *workflow.Workflow, data *pmWF, last simtime.Time) []PathJob {
	lateness := func(j int) (simtime.Time, bool) {
		pj, ok := data.jobs[j]
		if !ok {
			return 0, false
		}
		if !pj.hasComplete[0] && !pj.hasComplete[1] {
			if !pj.hasActivated && !pj.hasAssign[0] && !pj.hasAssign[1] {
				return 0, false
			}
			// Stuck job: later than anything that completed.
			return last + 1, true
		}
		t, _ := jobCompletion(pj)
		return t, true
	}
	start, startT := -1, simtime.Time(0)
	for j := range spec.Jobs {
		if t, ok := lateness(j); ok && (start < 0 || t > startT) {
			start, startT = j, t
		}
	}
	if start < 0 {
		return nil
	}
	var rev []int
	cur := start
	for {
		rev = append(rev, cur)
		if len(rev) > len(spec.Jobs) {
			break // defensive: DAG validation precludes cycles
		}
		next, nextT := -1, simtime.Time(0)
		for _, p := range spec.Jobs[cur].Prereqs {
			if t, ok := lateness(int(p)); ok && (next < 0 || t > nextT) {
				next, nextT = int(p), t
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	path := make([]PathJob, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, jobTimes(spec, data, rev[i], last))
	}
	return path
}

// blame picks the critical-path hop most responsible: the largest slot wait
// when any hop waited, otherwise the longest run.
func blame(path []PathJob) *Blame {
	if len(path) == 0 {
		return nil
	}
	waitIdx, runIdx := 0, 0
	for i, hop := range path {
		if hop.WaitUS > path[waitIdx].WaitUS {
			waitIdx = i
		}
		if hop.RunUS > path[runIdx].RunUS {
			runIdx = i
		}
	}
	idx, reason := waitIdx, "largest slot wait on the critical path"
	if path[waitIdx].WaitUS == 0 {
		idx, reason = runIdx, "longest run on the critical path (no slot waits observed)"
	}
	hop := path[idx]
	return &Blame{
		Job: hop.Job, Name: hop.Name, Stage: hop.Stage,
		WaitUS: hop.WaitUS, RunUS: hop.RunUS, Reason: reason,
	}
}

// WriteJSON renders the report as indented JSON.
func (r *PostmortemReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a human-readable summary.
func (r *PostmortemReport) WriteText(w io.Writer) error {
	if len(r.Missed) == 0 {
		_, err := fmt.Fprintf(w, "postmortem: no deadline misses among %d workflows (%d events)\n",
			r.Workflows, r.Events)
		return err
	}
	if _, err := fmt.Fprintf(w, "postmortem: %d/%d workflows missed their deadline (%d events)\n",
		len(r.Missed), r.Workflows, r.Events); err != nil {
		return err
	}
	sec := func(us int64) string { return fmt.Sprintf("%.0fs", float64(us)/1e6) }
	for _, m := range r.Missed {
		state := fmt.Sprintf("missed by %s (deadline %s, finish %s)",
			sec(m.TardinessUS), sec(m.DeadlineUS), sec(m.FinishUS))
		if m.Unfinished {
			state = fmt.Sprintf("unfinished %s past its deadline (%d/%d tasks completed)",
				sec(m.TardinessUS), m.Completed, m.TotalTasks)
		}
		if _, err := fmt.Fprintf(w, "  wf %d %q: %s\n", m.Workflow, m.Name, state); err != nil {
			return err
		}
		if rm := m.FirstUnmetReq; rm != nil {
			fmt.Fprintf(w, "    first unmet requirement: %d/%d tasks scheduled at t=%s (F_i demanded %d by ttd=%s; deficit %d)\n",
				rm.Scheduled, rm.Cum, sec(rm.AtUS), rm.Cum, sec(rm.TTDUS), rm.Deficit)
		} else if m.Completed < m.TotalTasks || m.Scheduled < m.TotalTasks {
			fmt.Fprintf(w, "    no plan requirement violated (no plan, or the stream lost early events)\n")
		} else {
			fmt.Fprintf(w, "    every plan requirement met: the plan itself was infeasible for this deadline\n")
		}
		if len(m.CriticalPath) > 0 {
			fmt.Fprintf(w, "    critical path:")
			for i, hop := range m.CriticalPath {
				if i > 0 {
					fmt.Fprintf(w, " →")
				}
				fmt.Fprintf(w, " j%d %s", hop.Job, hop.Name)
			}
			fmt.Fprintf(w, "\n")
		}
		if b := m.Blame; b != nil {
			fmt.Fprintf(w, "    blame: j%d %q %s stage — waited %s for slots, ran %s (critical-path wait %s vs run %s): %s\n",
				b.Job, b.Name, b.Stage, sec(b.WaitUS), sec(b.RunUS), sec(m.WaitUS), sec(m.RunUS), b.Reason)
		}
	}
	return nil
}
