package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/workflow"
)

// pmFlow is a two-job chain a → b: 2 maps + 1 reduce each, deadline 100s.
func pmFlow(t *testing.T) *workflow.Workflow {
	t.Helper()
	return workflow.NewBuilder("wf").
		Job("a", 2, 1, 10*time.Second, 10*time.Second).
		Job("b", 2, 1, 10*time.Second, 10*time.Second, "a").
		MustBuild(0, sec(100))
}

// pmEvents scripts a run of pmFlow that finishes at 130s, 30s late: job a's
// maps wait 20s for slots, everything else is back-to-back.
func pmEvents() []Event {
	mk := func(kind Kind, at int, job, slot int) Event {
		return Event{Kind: kind, Time: sec(at), Workflow: 0, Job: job, Slot: slot, Tracker: 0}
	}
	return []Event{
		{Kind: KindWorkflowSubmitted, Time: 0, Workflow: 0, Name: "wf"},
		{Kind: KindJobActivated, Time: 0, Workflow: 0, Job: 0},
		// Job a: maps assigned at 20s (after a 20s slot wait), done at 60s;
		// reduce runs 60s→80s.
		mk(KindTaskAssigned, 20, 0, 0), mk(KindTaskAssigned, 20, 0, 0),
		mk(KindTaskCompleted, 40, 0, 0), mk(KindTaskCompleted, 60, 0, 0),
		mk(KindTaskAssigned, 60, 0, 1), mk(KindTaskCompleted, 80, 0, 1),
		// Job b activates at 80s, runs maps 80s→100s, reduce 100s→130s.
		{Kind: KindJobActivated, Time: sec(80), Workflow: 0, Job: 1},
		mk(KindTaskAssigned, 80, 1, 0), mk(KindTaskAssigned, 80, 1, 0),
		mk(KindTaskCompleted, 100, 1, 0), mk(KindTaskCompleted, 100, 1, 0),
		mk(KindTaskAssigned, 100, 1, 1), mk(KindTaskCompleted, 130, 1, 1),
		{Kind: KindWorkflowCompleted, Time: sec(130), Workflow: 0, Name: "wf", Dur: 30 * time.Second},
	}
}

// pmPlan demands 2 tasks scheduled by ttd=90s (t=10s) — which the scripted
// run misses, its first assignments landing at t=20s.
func pmPlan() *plan.Plan {
	return &plan.Plan{
		Reqs:       []plan.Req{{TTD: 90 * time.Second, Cum: 2}, {TTD: 0, Cum: 6}},
		Cap:        2,
		Makespan:   60 * time.Second,
		TotalTasks: 6,
		Feasible:   true,
	}
}

func TestPostmortemAttribution(t *testing.T) {
	specs := []PostmortemSpec{{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()}}
	rep := AnalyzePostmortem(pmEvents(), specs)
	if rep.Schema != PostmortemSchema || rep.Workflows != 1 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Missed) != 1 {
		t.Fatalf("missed = %d, want 1", len(rep.Missed))
	}
	m := rep.Missed[0]
	if m.Unfinished || m.TardinessUS != (30*time.Second).Microseconds() {
		t.Fatalf("miss = %+v, want finished 30s late", m)
	}
	if m.Scheduled != 6 || m.Completed != 6 {
		t.Errorf("task counts = %d/%d, want 6/6", m.Scheduled, m.Completed)
	}
	// F_i: at t=10s (ttd 90s) the plan demanded 2 scheduled, we had 0.
	rm := m.FirstUnmetReq
	if rm == nil || rm.Cum != 2 || rm.Scheduled != 0 || rm.Deficit != 2 || rm.AtUS != (10*time.Second).Microseconds() {
		t.Fatalf("first unmet req = %+v, want 0/2 at t=10s", rm)
	}
	// Critical path ends at job b (last completion 130s) and walks back
	// through its prerequisite a.
	if len(m.CriticalPath) != 2 || m.CriticalPath[0].Job != 0 || m.CriticalPath[1].Job != 1 {
		t.Fatalf("critical path = %+v, want a → b", m.CriticalPath)
	}
	// Wait/run decomposition: a waited 20s (activation 0 → first assign 20s)
	// and ran 60s (20s → reduce completion 80s); b waited 0 and ran 50s.
	if a := m.CriticalPath[0]; a.WaitUS != (20*time.Second).Microseconds() || a.RunUS != (60*time.Second).Microseconds() {
		t.Fatalf("hop a = %+v, want wait 20s run 60s", a)
	}
	if m.WaitUS != (20*time.Second).Microseconds() || m.RunUS != (110*time.Second).Microseconds() {
		t.Errorf("totals wait=%d run=%d", m.WaitUS, m.RunUS)
	}
	// Blame: the only slot wait on the path is a's.
	if m.Blame == nil || m.Blame.Job != 0 || !strings.Contains(m.Blame.Reason, "wait") {
		t.Fatalf("blame = %+v, want job a's slot wait", m.Blame)
	}
}

func TestPostmortemMetDeadline(t *testing.T) {
	evs := pmEvents()
	// Rewrite the completion as on time: tardiness 0.
	evs[len(evs)-1].Dur = 0
	rep := AnalyzePostmortem(evs, []PostmortemSpec{{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()}})
	if len(rep.Missed) != 0 {
		t.Fatalf("met deadline reported as miss: %+v", rep.Missed)
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "no deadline misses") {
		t.Errorf("text = %q", text.String())
	}
}

// A workflow with no completion event whose deadline passed inside the stream
// is reported as unfinished with lower-bound tardiness.
func TestPostmortemUnfinished(t *testing.T) {
	evs := pmEvents()
	evs = evs[:len(evs)-1] // drop the WorkflowCompleted; last event is t=130s
	rep := AnalyzePostmortem(evs, []PostmortemSpec{{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()}})
	if len(rep.Missed) != 1 || !rep.Missed[0].Unfinished {
		t.Fatalf("missed = %+v, want one unfinished entry", rep.Missed)
	}
	if got := rep.Missed[0].TardinessUS; got != (30 * time.Second).Microseconds() {
		t.Errorf("lower-bound tardiness = %d, want 30s", got)
	}
	// The stuck reduce still anchors the critical path at job b.
	cp := rep.Missed[0].CriticalPath
	if len(cp) == 0 || cp[len(cp)-1].Job != 1 {
		t.Errorf("critical path = %+v, want it to end at job b", cp)
	}
}

// Out-of-order delivery (the live control plane emits from many goroutines)
// must not change the analysis.
func TestPostmortemUnsortedEvents(t *testing.T) {
	evs := pmEvents()
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	rep := AnalyzePostmortem(evs, []PostmortemSpec{{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()}})
	if len(rep.Missed) != 1 || rep.Missed[0].FirstUnmetReq == nil {
		t.Fatalf("reversed stream changed the analysis: %+v", rep.Missed)
	}
}

// A ring that evicted early events degrades gracefully: counts undercount,
// no panic, and the report still names the workflow.
func TestPostmortemRingEviction(t *testing.T) {
	ring := NewRing(4) // keeps only the last 4 events
	for _, e := range pmEvents() {
		ring.Emit(e)
	}
	rep := AnalyzePostmortem(ring.Events(), []PostmortemSpec{{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()}})
	if len(rep.Missed) != 1 {
		t.Fatalf("missed = %+v, want the workflow still reported", rep.Missed)
	}
	if got := rep.Missed[0].Scheduled; got >= 6 {
		t.Errorf("scheduled = %d, want an undercount from eviction", got)
	}
}

func TestPostmortemJSONRoundTrip(t *testing.T) {
	rep := AnalyzePostmortem(pmEvents(), []PostmortemSpec{{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()}})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back PostmortemReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != PostmortemSchema || len(back.Missed) != 1 || back.Missed[0].Blame == nil {
		t.Fatalf("round trip lost data: %+v", back)
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`wf 0 "wf"`, "first unmet requirement", "critical path", "blame"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text summary missing %q:\n%s", want, text.String())
		}
	}
}

// Specs without observed events and events without specs are both ignored.
func TestPostmortemMissingSides(t *testing.T) {
	rep := AnalyzePostmortem(pmEvents(), []PostmortemSpec{
		{Workflow: 0, Spec: pmFlow(t), Plan: pmPlan()},
		{Workflow: 5, Spec: pmFlow(t)},
		{Workflow: 9}, // nil Spec
	})
	if len(rep.Missed) != 1 {
		t.Fatalf("missed = %+v, want only wf 0", rep.Missed)
	}
	empty := AnalyzePostmortem(nil, nil)
	if empty.Events != 0 || len(empty.Missed) != 0 {
		t.Fatalf("empty analysis = %+v", empty)
	}
}
