package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(numKinds).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func TestRingWrapsAndCounts(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: KindTaskAssigned, Workflow: i})
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	// Oldest first: workflows 2, 3, 4 survive.
	for i, want := range []int{2, 3, 4} {
		if got[i].Workflow != want {
			t.Errorf("events[%d].Workflow = %d, want %d", i, got[i].Workflow, want)
		}
	}
	if r.CountKind(KindTaskAssigned) != 3 {
		t.Errorf("CountKind = %d, want 3", r.CountKind(KindTaskAssigned))
	}
	if r.CountKind(KindHeartbeatServed) != 0 {
		t.Error("CountKind for absent kind should be 0")
	}
}

func TestRingDefaultSize(t *testing.T) {
	r := NewRing(0)
	if cap(r.buf) != DefaultRingSize {
		t.Errorf("cap = %d, want %d", cap(r.buf), DefaultRingSize)
	}
}

// A nil *Ring is a valid no-op sink — including when boxed into the
// EventSink interface, where the emit path's nil check cannot see it
// (regression: wohasim -metrics-addr without -postmortem panicked here).
func TestRingNilReceiver(t *testing.T) {
	var r *Ring
	r.Emit(Event{Kind: KindWorkflowSubmitted})
	if r.Events() != nil || r.Total() != 0 || r.CountKind(KindWorkflowSubmitted) != 0 {
		t.Errorf("nil ring reported state: %v %d", r.Events(), r.Total())
	}
	o := New(NewRegistry(), r) // typed nil crosses the interface boundary
	o.WorkflowSubmitted(sec(0), 0, "w")
	o.HeartbeatServed(sec(1), 0, time.Microsecond, 1)
}

func TestEventJSONSchema(t *testing.T) {
	e := Event{
		Kind:     KindHeartbeatServed,
		Time:     simtime.Epoch.Add(1500 * time.Microsecond),
		Workflow: -1, Job: -1, Tracker: 3, Slot: -1,
		Dur: 250 * time.Microsecond,
		N:   2,
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"t_us": 1500, "tracker": 3, "dur_us": 250, "n": 2, "workflow": -1}
	for k, v := range want {
		if got, ok := m[k].(float64); !ok || got != v {
			t.Errorf("%s = %v, want %v", k, m[k], v)
		}
	}
	if m["kind"] != "heartbeat_served" {
		t.Errorf("kind = %v, want heartbeat_served", m["kind"])
	}
	if _, present := m["name"]; present {
		t.Error("empty name should be omitted")
	}
}

func TestJSONLWritesOneObjectPerLine(t *testing.T) {
	var sb strings.Builder
	s := NewJSONL(&sb)
	s.Emit(Event{Kind: KindWorkflowSubmitted, Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0"})
	s.Emit(Event{Kind: KindWorkflowCompleted, Workflow: 0, Job: -1, Tracker: -1, Slot: -1, Name: "w0"})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %q is not JSON: %v", line, err)
		}
	}
}

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestJSONLStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	s := NewJSONL(failWriter{err: wantErr})
	s.Emit(Event{Kind: KindQueueInsert})
	s.Emit(Event{Kind: KindQueueInsert})
	if err := s.Err(); !errors.Is(err, wantErr) {
		t.Errorf("Err = %v, want %v", err, wantErr)
	}
}

func TestTeeSkipsNilAndFansOut(t *testing.T) {
	a, b := NewRing(8), NewRing(8)
	tee := Tee(a, nil, b)
	tee.Emit(Event{Kind: KindQueueHeadHit})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("tee totals = %d, %d, want 1, 1", a.Total(), b.Total())
	}
}

func TestObsNilSafety(t *testing.T) {
	var o *Obs
	// Every recording method must no-op on the nil bundle.
	o.HeartbeatServed(simtime.Epoch, 0, time.Millisecond, 1)
	o.WorkflowSubmitted(simtime.Epoch, 0, "w")
	o.WorkflowCompleted(simtime.Epoch, 0, "w", time.Second)
	o.JobActivated(simtime.Epoch, 0, 0)
	o.TaskAssigned(simtime.Epoch, 0, 0, 0, 0, time.Second)
	o.PlanGenerated(simtime.Epoch, "w", 3)
	o.Emit(Event{})
	if o.Registry() != nil || o.DecisionHistogram("x") != nil ||
		o.SimEventCounter("x") != nil || o.NewQueueStats("x") != nil {
		t.Error("nil Obs handed out non-nil children")
	}
	var q *QueueStats
	q.OnInsert(simtime.Epoch, 1)
	q.OnDelete(simtime.Epoch, 1)
	q.OnHeadHit(simtime.Epoch, 1, 0)
	q.OnLagRecomputes(10)
}

func TestObsWiringEndToEnd(t *testing.T) {
	reg := NewRegistry()
	ring := NewRing(64)
	o := New(reg, ring)

	o.WorkflowSubmitted(simtime.Epoch, 0, "w0")
	o.TaskAssigned(simtime.Epoch.Add(time.Second), 0, 1, 0, 2, 30*time.Second)
	o.HeartbeatServed(simtime.Epoch.Add(time.Second), 2, 100*time.Microsecond, 1)
	o.WorkflowCompleted(simtime.Epoch.Add(time.Minute), 0, "w0", 5*time.Second)

	if o.TasksAssigned.Value() != 1 {
		t.Errorf("tasks assigned = %d, want 1", o.TasksAssigned.Value())
	}
	if o.DeadlinesMissed.Value() != 1 {
		t.Errorf("deadline misses = %d, want 1 (tardiness was positive)", o.DeadlinesMissed.Value())
	}
	if o.QueueWorkflows.Value() != 0 {
		t.Errorf("queue gauge = %d, want 0 after submit+complete", o.QueueWorkflows.Value())
	}
	if ring.CountKind(KindDeadlineMissed) != 1 {
		t.Error("missing deadline_missed event")
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The acceptance contract: these three names appear in every exposition,
	// eagerly registered even before traffic.
	for _, name := range []string{
		MetricHeartbeatDuration, MetricTasksAssigned, MetricDeadlinesMissed,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
}

func TestWorkflowCompletedOnTimeIsNoMiss(t *testing.T) {
	o := New(NewRegistry(), nil)
	o.WorkflowCompleted(simtime.Epoch, 0, "w", 0)
	if o.DeadlinesMissed.Value() != 0 {
		t.Error("zero tardiness counted as a miss")
	}
}
