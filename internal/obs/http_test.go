package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIntrospectionEndpoints(t *testing.T) {
	o := New(NewRegistry(), nil)
	h := o.EnableHealth(HealthConfig{Interval: 10 * time.Second})
	h.Register(0, "w0", 0, sec(200), 10, healthPlan())
	h.SetSlots(8, 4)
	o.WorkflowSubmitted(0, 0, "w0")
	o.TaskAssigned(sec(1), 0, 0, 0, 0, time.Second)
	o.TaskCompleted(sec(2), 0, 0, 0, 0)
	h.SnapshotAt(sec(120))

	srv, err := ServeIntrospection("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + srv.Addr()

	if code, body := getBody(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, MetricHealthMinSlack) {
		t.Errorf("/metrics: code %d, health gauge missing", code)
	}
	code, body := getBody(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz: code %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	if st.WorkflowsSubmitted != 1 || st.TasksAssigned != 1 || st.TasksCompleted != 1 {
		t.Errorf("statusz counters = %+v", st)
	}
	if st.GoVersion == "" || st.StalenessUS != (10*time.Second).Microseconds() {
		t.Errorf("statusz identity/staleness = %+v", st)
	}
	if st.Health == nil || len(st.Health.Workflows) != 1 || st.Health.MapSlots != 8 {
		t.Fatalf("statusz health block = %+v", st.Health)
	}
	if row := st.Health.Workflows[0]; !row.HasPlan || row.Slack != 1-2 {
		t.Errorf("statusz slack row = %+v, want slack -1", row)
	}
	if code, body := getBody(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	if code, _ := getBody(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

// TestIntrospectionShutdownClosesListener pins the graceful-shutdown
// contract: after Shutdown returns, the port no longer accepts connections.
func TestIntrospectionShutdownClosesListener(t *testing.T) {
	srv, err := ServeIntrospection("127.0.0.1:0", New(NewRegistry(), nil))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if code, _ := getBody(t, "http://"+addr+"/statusz"); code != http.StatusOK {
		t.Fatalf("pre-shutdown statusz: code %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting connections after Shutdown")
	}
}

// An events-only Obs (nil registry) still serves /statusz; /metrics 404s.
func TestIntrospectionWithoutRegistry(t *testing.T) {
	srv, err := ServeIntrospection("127.0.0.1:0", New(nil, NewRing(8)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if code, _ := getBody(t, "http://"+srv.Addr()+"/statusz"); code != http.StatusOK {
		t.Errorf("/statusz without registry: code %d", code)
	}
	if code, _ := getBody(t, "http://"+srv.Addr()+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics without registry: code %d, want 404", code)
	}
}

func TestIntrospectionNilServer(t *testing.T) {
	var s *IntrospectionServer
	if s.Addr() != "" {
		t.Error("nil Addr")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Error("nil Shutdown errored")
	}
	if err := s.DumpMetrics(io.Discard); err != nil {
		t.Error("nil DumpMetrics errored")
	}
}
