package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	// Re-registration returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Error("re-registering a counter returned a new instrument")
	}
}

func TestRegistryPanicsOnTypeMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "h")
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.001"} 1`,
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		"h_seconds_count 4",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	if got, want := h.Sum(), 0.5555; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestLabeledSeriesShareOneFamily(t *testing.T) {
	r := NewRegistry()
	a := r.CounterWith("ops_total", "ops", Labels{"queue": "DSL"})
	b := r.CounterWith("ops_total", "ops", Labels{"queue": "Naive"})
	if a == b {
		t.Fatal("distinct label sets returned the same series")
	}
	a.Inc()
	b.Add(2)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# HELP ops_total") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
	for _, line := range []string{`ops_total{queue="DSL"} 1`, `ops_total{queue="Naive"} 2`} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	l := Labels{"name": "a\"b\\c\nd"}
	if got, want := l.render(), `{name="a\"b\\c\nd"}`; got != want {
		t.Errorf("render = %s, want %s", got, want)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	// All no-op without panicking.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil WriteTo = (%d, %v), want (0, nil)", n, err)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "requests").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q", got)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "h")
	h := r.Histogram("d_seconds", "h", DurationBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpBuckets(0, 2, 4) did not panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}
