// Package obs is WOHA's zero-dependency runtime observability layer: atomic
// counters, gauges, and log-scale histograms behind a Registry with
// Prometheus text-format exposition, a bounded structured event stream, and
// a Perfetto/Chrome trace-event exporter.
//
// The package exists so the framework's central claim — per-heartbeat
// scheduling stays cheap as the queue grows — can be observed on a running
// cluster instead of reconstructed from finished runs (internal/metrics
// post-processes; obs measures live).
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every instrument method no-ops on a nil receiver, so a disabled
// installation costs exactly one nil check on the hot path (see
// BenchmarkHeartbeatBare). See OBSERVABILITY.md at the repository root for
// the metric and event catalogue.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric (e.g. policy="WOHA-LPF"). The label
// set is fixed at registration; series with the same name but different
// labels are distinct instruments within one family.
type Labels map[string]string

// render produces the canonical {k="v",...} suffix, keys sorted.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// renderWith is render with one extra pair appended (used for the le bucket
// label of histograms).
func renderWith(rendered, key, val string) string {
	pair := key + `="` + escapeLabel(val) + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// metric is one registered series.
type metric interface {
	labels() string
	// expose writes the metric's sample lines (name + rendered labels).
	expose(w io.Writer, name string) error
}

// family groups all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     string // counter, gauge, histogram
	series  []metric
	byLabel map[string]metric
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. A nil *Registry is a valid disabled registry: every
// lookup returns a nil instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register returns the series for (name, labels), creating family and series
// via mk on first sight. It panics when name is reused with another type —
// that is a programming error, not a runtime condition.
func (r *Registry) register(name, help, typ string, labels Labels, mk func(lbl string) metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]metric)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	lbl := labels.render()
	if m, ok := f.byLabel[lbl]; ok {
		return m
	}
	m := mk(lbl)
	f.byLabel[lbl] = m
	f.series = append(f.series, m)
	return m
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith is Counter with a label set.
func (r *Registry) CounterWith(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter", labels, func(lbl string) metric {
		return &Counter{lbl: lbl}
	}).(*Counter)
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith is Gauge with a label set.
func (r *Registry) GaugeWith(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", labels, func(lbl string) metric {
		return &Gauge{lbl: lbl}
	}).(*Gauge)
}

// Histogram returns the registered histogram, creating it with the given
// bucket upper bounds (ascending) on first use. An existing histogram keeps
// its original buckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramWith(name, help, nil, buckets)
}

// HistogramWith is Histogram with a label set.
func (r *Registry) HistogramWith(name, help string, labels Labels, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, "histogram", labels, func(lbl string) metric {
		return newHistogram(lbl, buckets)
	}).(*Histogram)
}

// WriteTo renders every registered family in the Prometheus text exposition
// format (version 0.0.4), families in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	cw := &countWriter{w: w}
	for _, f := range fams {
		if _, err := fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return cw.n, err
		}
		r.mu.Lock()
		series := make([]metric, len(f.series))
		copy(series, f.series)
		r.mu.Unlock()
		for _, m := range series {
			if err := m.expose(cw, f.name); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// Handler returns an http.Handler serving the exposition, ready to mount on
// a mux (conventionally at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v   atomic.Int64
	lbl string
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored; counters only go up). Safe on a
// nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) labels() string { return c.lbl }

func (c *Counter) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, c.lbl, c.v.Load())
	return err
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v   atomic.Int64
	lbl string
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add applies a delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) labels() string { return g.lbl }

func (g *Gauge) expose(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, g.lbl, g.v.Load())
	return err
}

// Histogram is a fixed-bucket histogram with atomic bucket counters. Bucket
// bounds are upper bounds; an implicit +Inf bucket catches the tail. Observe
// performs no allocation, so histograms are safe on hot paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomicFloat
	lbl    string
}

func newHistogram(lbl string, buckets []float64) *Histogram {
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1), lbl: lbl}
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

func (h *Histogram) labels() string { return h.lbl }

func (h *Histogram) expose(w io.Writer, name string) error {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		lbl := renderWith(h.lbl, "le", strconv.FormatFloat(b, 'g', -1, 64))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderWith(h.lbl, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, h.lbl,
		strconv.FormatFloat(h.sum.load(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, h.lbl, h.count.Load())
	return err
}

// atomicFloat accumulates a float64 with a CAS loop over its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// ExpBuckets returns n exponentially spaced bucket bounds starting at start,
// each factor times the last — the log-scale buckets every obs histogram
// uses, so tail latencies keep resolution without per-sample allocation.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%v, %v, %d): want start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Default bucket layouts.
var (
	// DurationBuckets spans 1µs to ~8.4s in powers of two — wide enough for
	// both a sub-microsecond DSL head read and a multi-second naive rescan.
	DurationBuckets = ExpBuckets(1e-6, 2, 24)
	// CountBuckets spans 1 to 32768 in powers of two (assignments per
	// heartbeat, queue sizes).
	CountBuckets = ExpBuckets(1, 2, 16)
	// IterBuckets spans 1 to 128 (binary-search iteration counts).
	IterBuckets = ExpBuckets(1, 2, 8)
)
