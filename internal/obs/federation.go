package obs

import (
	"strconv"
	"time"
)

// FedStats bundles the instruments of the federation layer
// (internal/federation): per-cluster routing counters, load-snapshot
// freshness, and the per-cluster load gauges refreshed together with the
// snapshots the routers decide on. All methods are safe on a nil receiver,
// so the federation carries a FedStats pointer unconditionally and
// uninstrumented runs pay one nil check per routing decision.
type FedStats struct {
	// Routed counts workflows routed to each member cluster.
	Routed []*Counter
	// SnapshotAge observes, per routing decision, how stale (in simulated
	// seconds) the load snapshots the router saw were — 0 when the
	// staleness interval is 0 and every decision refreshes first.
	SnapshotAge *Histogram
	// SnapshotRefreshes counts load-snapshot refreshes across all clusters.
	SnapshotRefreshes *Counter
	// Clusters reports the federation's member count.
	Clusters *Gauge
	// Active, Backlog, and FreeSlots mirror each cluster's last snapshot:
	// live workflows, owed slot-time in seconds, and idle slots.
	Active    []*Gauge
	Backlog   []*Gauge
	FreeSlots []*Gauge
}

// NewFedStats registers the federation instruments for n member clusters
// under the given router name. Returns nil (disabled stats) on a nil
// receiver.
func (o *Obs) NewFedStats(router string, n int) *FedStats {
	if o == nil {
		return nil
	}
	s := &FedStats{
		SnapshotAge: o.reg.HistogramWith(MetricFedSnapshotAge,
			"Simulated staleness of the load snapshots a routing decision saw.",
			Labels{"router": router}, DurationBuckets),
		SnapshotRefreshes: o.reg.CounterWith(MetricFedSnapshotRefresh,
			"Load-snapshot refreshes across all member clusters.",
			Labels{"router": router}),
		Clusters: o.reg.Gauge(MetricFedClusters,
			"Member clusters in the federation."),
	}
	s.Clusters.Set(int64(n))
	for i := 0; i < n; i++ {
		l := Labels{"cluster": strconv.Itoa(i)}
		s.Routed = append(s.Routed, o.reg.CounterWith(MetricFedRouted,
			"Workflows routed to this member cluster.", l))
		s.Active = append(s.Active, o.reg.GaugeWith(MetricFedClusterActive,
			"Live workflows on this member cluster at its last load snapshot.", l))
		s.Backlog = append(s.Backlog, o.reg.GaugeWith(MetricFedClusterBacklog,
			"Owed slot-time (seconds) on this member cluster at its last load snapshot.", l))
		s.FreeSlots = append(s.FreeSlots, o.reg.GaugeWith(MetricFedClusterFreeSlots,
			"Idle slots on this member cluster at its last load snapshot.", l))
	}
	return s
}

// OnRoute records one routing decision: the chosen cluster and the age of
// the stalest snapshot the router saw.
func (s *FedStats) OnRoute(clusterIdx int, maxAge time.Duration) {
	if s == nil {
		return
	}
	s.Routed[clusterIdx].Inc()
	s.SnapshotAge.ObserveDuration(maxAge)
}

// OnRefresh records one cluster's load snapshot being retaken.
func (s *FedStats) OnRefresh(clusterIdx, active, freeSlots int, backlog time.Duration) {
	if s == nil {
		return
	}
	s.SnapshotRefreshes.Inc()
	s.Active[clusterIdx].Set(int64(active))
	s.Backlog[clusterIdx].Set(int64(backlog / time.Second))
	s.FreeSlots[clusterIdx].Set(int64(freeSlots))
}
