package obs

import (
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/simtime"
)

// Standard metric names (the contract OBSERVABILITY.md documents).
const (
	MetricHeartbeatDuration    = "woha_heartbeat_duration_seconds"
	MetricHeartbeatAssignments = "woha_heartbeat_assignments"
	MetricHeartbeats           = "woha_heartbeats_total"
	MetricTasksAssigned        = "woha_tasks_assigned_total"
	MetricTasksCompleted       = "woha_tasks_completed_total"
	MetricWorkflowsSubmitted   = "woha_workflows_submitted_total"
	MetricWorkflowsCompleted   = "woha_workflows_completed_total"
	MetricDeadlinesMissed      = "woha_workflows_deadline_missed_total"
	MetricQueueWorkflows       = "woha_queue_workflows"
	MetricPlanSearchIterations = "woha_plan_search_iterations"
	MetricPlansGenerated       = "woha_plans_generated_total"
	MetricDecisionDuration     = "woha_scheduler_decision_seconds"
	MetricSimEvents            = "woha_sim_events_total"
	MetricQueueInserts         = "woha_queue_inserts_total"
	MetricQueueDeletes         = "woha_queue_deletes_total"
	MetricQueueHeadHits        = "woha_queue_head_hits_total"
	MetricQueueLagRecomputes   = "woha_queue_lag_recomputes_total"
	MetricQueueNodeReuses      = "woha_queue_node_reuses_total"
	MetricQueueBucketMoves     = "woha_queue_bucket_moves_total"
	MetricSchedIndexSkips      = "woha_sched_index_skips_total"

	// Planner subsystem (internal/planner): cached, parallel plan generation.
	MetricPlannerPlans           = "woha_planner_plans_total"
	MetricPlannerCacheHits       = "woha_planner_cache_hits_total"
	MetricPlannerCacheMisses     = "woha_planner_cache_misses_total"
	MetricPlannerCacheEvictions  = "woha_planner_cache_evictions_total"
	MetricPlannerProbes          = "woha_planner_probes_total"
	MetricPlannerProbesCancelled = "woha_planner_probes_cancelled_total"
	MetricPlannerPlanDuration    = "woha_planner_plan_duration_seconds"
	MetricPlannerInflight        = "woha_planner_inflight"
	MetricPlannerCoalesced       = "woha_planner_coalesced_total"
	MetricPlannerDupFills        = "woha_planner_duplicate_fills_total"

	// Simulator dispatch hot path (internal/cluster): slot-offer volume and
	// the work the free-slot index / overdue heap / heartbeat suppression
	// save.
	MetricSimDispatchOffers       = "woha_sim_dispatch_offers_total"
	MetricSimHeartbeatsSuppressed = "woha_sim_dispatch_heartbeats_suppressed_total"
	MetricSimSpecWakeups          = "woha_sim_dispatch_spec_wakeups_total"

	// Simulator memory layout (internal/cluster): attempt-arena occupancy
	// and the event batching of the struct-of-arrays core. Flushed once per
	// Run, not per event.
	MetricSimArenaCapacity  = "woha_sim_arena_capacity"
	MetricSimArenaReuses    = "woha_sim_arena_attempt_reuses_total"
	MetricSimArenaGrows     = "woha_sim_arena_grows_total"
	MetricSimDrainBatches   = "woha_sim_drain_batches_total"
	MetricSimDrainCoalesced = "woha_sim_drain_coalesced_events_total"

	// Runner subsystem (internal/runner): parallel scenario execution.
	MetricRunnerCells        = "woha_runner_cells_total"
	MetricRunnerCellFailures = "woha_runner_cell_failures_total"
	MetricRunnerBatches      = "woha_runner_batches_total"
	MetricRunnerInflight     = "woha_runner_inflight"
	MetricRunnerCellDuration = "woha_runner_cell_duration_seconds"

	// Sharded live control plane (internal/live): lock-wait distributions and
	// fast-path accounting of the admission/completion/assignment pipeline.
	MetricLiveShards           = "woha_live_shards"
	MetricLiveShardLockWait    = "woha_live_shard_lock_wait_seconds"
	MetricLivePipelineLockWait = "woha_live_pipeline_lock_wait_seconds"
	MetricLiveFastPathBeats    = "woha_live_fastpath_heartbeats_total"
	MetricLivePolicyBatches    = "woha_live_policy_event_batches_total"
	MetricLivePolicyEvents     = "woha_live_policy_events_total"

	// Deadline-health layer (health.go): per-workflow slack versus the
	// scheduling plan's progress requirement list, sampled on the snapshot
	// interval.
	MetricHealthMinSlack        = "woha_health_min_slack_tasks"
	MetricHealthBehind          = "woha_health_behind_workflows"
	MetricHealthSlackDist       = "woha_health_slack_tasks"
	MetricHealthLive            = "woha_health_live_workflows"
	MetricHealthSnapshots       = "woha_health_snapshots_total"
	MetricHealthFellBehind      = "woha_health_fell_behind_total"
	MetricHealthRecovered       = "woha_health_recovered_total"
	MetricHealthPredictedMisses = "woha_health_predicted_misses_total"

	// Admission front door (internal/admission): decision outcomes, the
	// deadline counter-offers attached to rejections, commitment releases,
	// and decision latency. All are labeled controller=<mode>.
	MetricAdmissionAdmitted         = "woha_admission_admitted_total"
	MetricAdmissionDeferred         = "woha_admission_deferred_total"
	MetricAdmissionRejected         = "woha_admission_rejected_total"
	MetricAdmissionCounterOffers    = "woha_admission_counter_offers_total"
	MetricAdmissionReleases         = "woha_admission_releases_total"
	MetricAdmissionDecisionDuration = "woha_admission_decision_seconds"

	// Federation layer (internal/federation): routing outcomes per member
	// cluster, load-snapshot freshness, and per-cluster load gauges
	// refreshed with the snapshots the routers decide on. Per-cluster
	// series are labeled cluster=<index>.
	MetricFedRouted           = "woha_fed_routed_total"
	MetricFedSnapshotAge      = "woha_fed_snapshot_age_seconds"
	MetricFedSnapshotRefresh  = "woha_fed_snapshot_refreshes_total"
	MetricFedClusters         = "woha_fed_clusters"
	MetricFedClusterActive    = "woha_fed_cluster_active_workflows"
	MetricFedClusterBacklog   = "woha_fed_cluster_backlog_seconds"
	MetricFedClusterFreeSlots = "woha_fed_cluster_free_slots"

	// Build metadata: a constant-1 gauge labeled with the binary's module
	// version and Go toolchain so scrapes are attributable.
	MetricBuildInfo = "woha_build_info"
)

// Obs bundles a metrics registry and an event sink into the instrumentation
// handle the schedulers, the simulator, and the live control plane carry. A
// nil *Obs disables everything: every method no-ops after one nil check and
// performs no allocation, so instrumentation can stay compiled into the hot
// paths (proven by BenchmarkHeartbeatBare).
type Obs struct {
	reg  *Registry
	sink EventSink

	// health is the optional deadline-health tracker (see health.go). It is
	// nil until EnableHealth and every feed method no-ops on a nil receiver,
	// so the hot paths stay at one extra nil check when health is off.
	health *HealthTracker

	// Pre-registered instruments for the hot paths. Fields are exported so
	// tests and callers can read them directly; all are nil-safe.
	HeartbeatDur         *Histogram
	HeartbeatAssignments *Histogram
	Heartbeats           *Counter
	TasksAssigned        *Counter
	TasksCompleted       *Counter
	WorkflowsSubmitted   *Counter
	WorkflowsCompleted   *Counter
	DeadlinesMissed      *Counter
	QueueWorkflows       *Gauge
	PlanIters            *Histogram
	PlansGenerated       *Counter
}

// New builds an instrumentation bundle over reg and sink; either may be nil
// (metrics-only, events-only). The standard woha_* instruments are
// registered eagerly so every exposition carries the full catalogue even
// before traffic arrives.
func New(reg *Registry, sink EventSink) *Obs {
	o := &Obs{reg: reg, sink: sink}
	o.HeartbeatDur = reg.Histogram(MetricHeartbeatDuration,
		"Wall-clock latency of one JobTracker heartbeat (scheduling decisions included).", DurationBuckets)
	o.HeartbeatAssignments = reg.Histogram(MetricHeartbeatAssignments,
		"Tasks assigned per heartbeat served.", CountBuckets)
	o.Heartbeats = reg.Counter(MetricHeartbeats, "Heartbeats served by the JobTracker.")
	o.TasksAssigned = reg.Counter(MetricTasksAssigned, "Tasks assigned to slots.")
	o.TasksCompleted = reg.Counter(MetricTasksCompleted,
		"Tasks that finished successfully (lost and killed attempts excluded).")
	o.WorkflowsSubmitted = reg.Counter(MetricWorkflowsSubmitted,
		"Workflows released to the scheduling policy.")
	o.WorkflowsCompleted = reg.Counter(MetricWorkflowsCompleted, "Workflows fully completed.")
	o.DeadlinesMissed = reg.Counter(MetricDeadlinesMissed,
		"Workflows that completed after their deadline.")
	o.QueueWorkflows = reg.Gauge(MetricQueueWorkflows, "Workflows currently live in the scheduler.")
	o.PlanIters = reg.Histogram(MetricPlanSearchIterations,
		"Generate invocations per capped plan binary search.", IterBuckets)
	o.PlansGenerated = reg.Counter(MetricPlansGenerated, "Scheduling plans generated.")
	registerBuildInfo(reg)
	return o
}

// registerBuildInfo publishes the constant woha_build_info gauge: value 1,
// labeled with the main module's version and the Go toolchain, so every
// scrape identifies the binary that produced it.
func registerBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.GaugeWith(MetricBuildInfo,
		"Build metadata of the exporting binary; the value is always 1.",
		Labels{"version": version, "go_version": runtime.Version()}).Set(1)
}

// Registry returns the underlying registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// EnableHealth attaches the deadline-health tracker (see health.go) and
// returns it. Call before the control plane starts emitting traffic — the
// tracker is wired into the hot-path feed methods, not retrofitted onto a
// running stream. Enabling twice returns the existing tracker; a nil
// receiver returns nil (health disabled along with everything else). One
// tracker observes one run: sharing an enabled Obs across concurrent
// sessions would merge their per-workflow counters.
func (o *Obs) EnableHealth(cfg HealthConfig) *HealthTracker {
	if o == nil {
		return nil
	}
	if o.health == nil {
		o.health = newHealthTracker(o, cfg)
	}
	return o.health
}

// Health returns the deadline-health tracker, nil when never enabled. All
// HealthTracker methods are nil-safe, so callers can chain unconditionally:
// o.Health().Register(...).
func (o *Obs) Health() *HealthTracker {
	if o == nil {
		return nil
	}
	return o.health
}

// Emit sends e to the event sink, if any. Safe on a nil receiver.
func (o *Obs) Emit(e Event) {
	if o == nil || o.sink == nil {
		return
	}
	o.sink.Emit(e)
}

// HeartbeatServed records one answered heartbeat: latency and assignment
// histograms plus a KindHeartbeatServed event.
func (o *Obs) HeartbeatServed(now simtime.Time, tracker int, dur time.Duration, assigned int) {
	if o == nil {
		return
	}
	o.Heartbeats.Inc()
	o.HeartbeatDur.ObserveDuration(dur)
	o.HeartbeatAssignments.Observe(float64(assigned))
	o.Emit(Event{Kind: KindHeartbeatServed, Time: now, Workflow: -1, Job: -1,
		Tracker: tracker, Slot: -1, Dur: dur, N: assigned})
	o.health.tick(now)
}

// WorkflowSubmitted records a workflow's release to the policy.
func (o *Obs) WorkflowSubmitted(now simtime.Time, wf int, name string) {
	if o == nil {
		return
	}
	o.WorkflowsSubmitted.Inc()
	o.QueueWorkflows.Add(1)
	o.health.workflowReleased(wf)
	o.Emit(Event{Kind: KindWorkflowSubmitted, Time: now, Workflow: wf, Job: -1,
		Tracker: -1, Slot: -1, Name: name})
}

// WorkflowCompleted records a workflow finishing; tardiness > 0 additionally
// counts a deadline miss and emits KindDeadlineMissed.
func (o *Obs) WorkflowCompleted(now simtime.Time, wf int, name string, tardiness time.Duration) {
	if o == nil {
		return
	}
	o.WorkflowsCompleted.Inc()
	o.QueueWorkflows.Add(-1)
	o.health.workflowDone(wf, now)
	o.Emit(Event{Kind: KindWorkflowCompleted, Time: now, Workflow: wf, Job: -1,
		Tracker: -1, Slot: -1, Name: name, Dur: tardiness})
	if tardiness > 0 {
		o.DeadlinesMissed.Inc()
		o.Emit(Event{Kind: KindDeadlineMissed, Time: now, Workflow: wf, Job: -1,
			Tracker: -1, Slot: -1, Name: name, Dur: tardiness})
	}
}

// JobActivated records a job becoming schedulable.
func (o *Obs) JobActivated(now simtime.Time, wf, job int) {
	if o == nil {
		return
	}
	o.Emit(Event{Kind: KindJobActivated, Time: now, Workflow: wf, Job: job,
		Tracker: -1, Slot: -1})
}

// TaskAssigned records one task placed on a slot. tracker is the node index
// (-1 when unknown) and dur the task's virtual duration estimate.
func (o *Obs) TaskAssigned(now simtime.Time, wf, job, slot, tracker int, dur time.Duration) {
	if o == nil {
		return
	}
	o.TasksAssigned.Inc()
	o.health.taskScheduled(wf)
	o.Emit(Event{Kind: KindTaskAssigned, Time: now, Workflow: wf, Job: job,
		Tracker: tracker, Slot: slot, Dur: dur})
}

// TaskCompleted records one task finishing successfully. Lost and killed
// attempts must not be reported: the count feeds the health tracker's
// completed-task slack, which measures real progress. It also drives the
// health snapshot clock, so slack stays current even in instant-dispatch
// simulations that never serve a heartbeat.
func (o *Obs) TaskCompleted(now simtime.Time, wf, job, slot, tracker int) {
	if o == nil {
		return
	}
	o.TasksCompleted.Inc()
	o.health.taskCompleted(wf)
	o.Emit(Event{Kind: KindTaskCompleted, Time: now, Workflow: wf, Job: job,
		Tracker: tracker, Slot: slot})
	o.health.tick(now)
}

// PlanGenerated records one scheduling plan: the binary-search iteration
// histogram plus a KindPlanGenerated event.
func (o *Obs) PlanGenerated(now simtime.Time, name string, iters int) {
	if o == nil {
		return
	}
	o.PlansGenerated.Inc()
	o.PlanIters.Observe(float64(iters))
	o.Emit(Event{Kind: KindPlanGenerated, Time: now, Workflow: -1, Job: -1,
		Tracker: -1, Slot: -1, Name: name, N: iters})
}

// DecisionHistogram returns the per-policy NextTask latency histogram
// (labeled policy=name), registering it on first use.
func (o *Obs) DecisionHistogram(policy string) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.HistogramWith(MetricDecisionDuration,
		"Wall-clock latency of one NextTask scheduling decision.",
		Labels{"policy": policy}, DurationBuckets)
}

// SimEventCounter returns the labeled simulator event counter for one event
// kind name, registering it on first use.
func (o *Obs) SimEventCounter(kind string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.CounterWith(MetricSimEvents,
		"Discrete events processed by the cluster simulator.", Labels{"kind": kind})
}

// SimDispatchOffers returns the counter of slot offers made to the policy
// (one per NextTask consultation), registering it on first use.
func (o *Obs) SimDispatchOffers() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSimDispatchOffers,
		"Slot offers made to the scheduling policy (NextTask consultations).")
}

// SimHeartbeatsSuppressed returns the labeled counter of heartbeat re-arms
// the simulator skipped, registering it on first use. reason is "busy" (node
// fully occupied, woken by its next completion) or "drained" (all live
// workflows done, slept until the next arrival's tick).
func (o *Obs) SimHeartbeatsSuppressed(reason string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.CounterWith(MetricSimHeartbeatsSuppressed,
		"Heartbeat re-arms suppressed by the simulator dispatch hot path.",
		Labels{"reason": reason})
}

// SimSpecWakeups returns the counter of speculative-execution wake-up events
// armed, registering it on first use.
func (o *Obs) SimSpecWakeups() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSimSpecWakeups,
		"Retry events armed for the next straggler-threshold crossing.")
}

// SimArenaCapacity returns the gauge of the simulator attempt arena's record
// capacity (high-water working set of the most recently finished run),
// registering it on first use.
func (o *Obs) SimArenaCapacity() *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(MetricSimArenaCapacity,
		"Attempt-arena record capacity after the latest simulator run.")
}

// SimArenaReuses returns the counter of attempt records served from the
// arena free list instead of fresh storage, registering it on first use.
func (o *Obs) SimArenaReuses() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSimArenaReuses,
		"Attempt records recycled through the arena free list.")
}

// SimArenaGrows returns the counter of attempt-arena slice growths (backing
// array reallocations), registering it on first use.
func (o *Obs) SimArenaGrows() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSimArenaGrows,
		"Attempt-arena backing array growths.")
}

// SimDrainBatches returns the counter of event-heap instant drains (one per
// distinct simulated instant with pending events), registering it on first
// use.
func (o *Obs) SimDrainBatches() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSimDrainBatches,
		"Event-heap drains performed by the simulator (one per simulated instant).")
}

// SimDrainCoalesced returns the counter of events beyond the first in each
// drained batch — the heap pops the grid batching saved — registering it on
// first use.
func (o *Obs) SimDrainCoalesced() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSimDrainCoalesced,
		"Same-instant events coalesced into an existing drain batch.")
}

// QueueStats bundles the per-backend operation counters of an inter-workflow
// queue (the DSL vs naive comparison of Fig 13a, now observable at runtime).
// All methods are safe on a nil receiver, so queues carry a QueueStats
// pointer unconditionally and pay one nil check when uninstrumented.
type QueueStats struct {
	// Inserts, Deletes, HeadHits, and LagRecomputes are the labeled
	// counters (queue=<backend>).
	Inserts       *Counter
	Deletes       *Counter
	HeadHits      *Counter
	LagRecomputes *Counter
	// NodeReuses counts pooled nodes recycled by the queue's backing sets
	// (free-list draws and in-place Moves) instead of fresh allocations;
	// BucketMoves counts O(1) bucket-to-bucket repositionings in the
	// bucketed lag index. Both are batch-flushed tallies with no per-event
	// emission — they fire on every hot-path operation.
	NodeReuses  *Counter
	BucketMoves *Counter

	o *Obs
}

// NewQueueStats registers the operation counters for the named queue
// backend. Returns nil (disabled stats) on a nil receiver.
func (o *Obs) NewQueueStats(queue string) *QueueStats {
	if o == nil {
		return nil
	}
	l := Labels{"queue": queue}
	return &QueueStats{
		Inserts:       o.reg.CounterWith(MetricQueueInserts, "Workflow insertions into the inter-workflow queue.", l),
		Deletes:       o.reg.CounterWith(MetricQueueDeletes, "Workflow deletions from the inter-workflow queue.", l),
		HeadHits:      o.reg.CounterWith(MetricQueueHeadHits, "Best calls served from the priority-list head.", l),
		LagRecomputes: o.reg.CounterWith(MetricQueueLagRecomputes, "Per-entry lag recomputations during queue reads.", l),
		NodeReuses:    o.reg.CounterWith(MetricQueueNodeReuses, "Pooled queue nodes reused instead of allocated.", l),
		BucketMoves:   o.reg.CounterWith(MetricQueueBucketMoves, "Lag-index bucket-to-bucket entry moves.", l),
		o:             o,
	}
}

// OnInsert records a queue insertion.
func (q *QueueStats) OnInsert(now simtime.Time, id int) {
	if q == nil {
		return
	}
	q.Inserts.Inc()
	q.o.Emit(Event{Kind: KindQueueInsert, Time: now, Workflow: id, Job: -1, Tracker: -1, Slot: -1})
}

// OnDelete records a queue deletion.
func (q *QueueStats) OnDelete(now simtime.Time, id int) {
	if q == nil {
		return
	}
	q.Deletes.Inc()
	q.o.Emit(Event{Kind: KindQueueDelete, Time: now, Workflow: id, Job: -1, Tracker: -1, Slot: -1})
}

// OnHeadHit records a Best call served from the head after re-prioritizing
// settled entries.
func (q *QueueStats) OnHeadHit(now simtime.Time, id, settled int) {
	if q == nil {
		return
	}
	q.HeadHits.Inc()
	q.o.Emit(Event{Kind: KindQueueHeadHit, Time: now, Workflow: id, Job: -1,
		Tracker: -1, Slot: -1, N: settled})
}

// OnLagRecomputes adds n per-entry lag recomputations.
func (q *QueueStats) OnLagRecomputes(n int) {
	if q == nil {
		return
	}
	q.LagRecomputes.Add(int64(n))
}

// OnNodeReuses adds n pooled-node reuses (counter only; no event stream).
func (q *QueueStats) OnNodeReuses(n int) {
	if q == nil {
		return
	}
	q.NodeReuses.Add(int64(n))
}

// OnBucketMoves adds n lag-index bucket moves (counter only).
func (q *QueueStats) OnBucketMoves(n int) {
	if q == nil {
		return
	}
	q.BucketMoves.Add(int64(n))
}

// SchedIndexSkips returns the counter of workflows skipped by the WOHA
// scheduler's per-workflow schedulable index without invoking the per-job
// scan, registering it on first use.
func (o *Obs) SchedIndexSkips() *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(MetricSchedIndexSkips,
		"Workflows skipped during queue descent because their schedulable index showed no startable task for the slot type.")
}

// PlannerStats bundles the instruments of the plan-generation service
// (internal/planner): structural-cache effectiveness, speculative probe
// accounting, and end-to-end plan latency. All methods are safe on a nil
// receiver, so the planner carries a PlannerStats pointer unconditionally.
type PlannerStats struct {
	// Plans counts plans served (cache hits included).
	Plans *Counter
	// CacheHits, CacheMisses, and CacheEvictions describe the structural
	// plan cache.
	CacheHits      *Counter
	CacheMisses    *Counter
	CacheEvictions *Counter
	// Probes counts Algorithm 1 simulations executed by cap searches;
	// ProbesCancelled counts speculative probes skipped because a
	// concurrent result already narrowed the search past them.
	Probes          *Counter
	ProbesCancelled *Counter
	// PlanDur is the wall-clock latency of one planner request.
	PlanDur *Histogram
	// Inflight gauges key generations currently running; Coalesced counts
	// requests that blocked on a concurrent same-key generation instead of
	// simulating themselves (singleflight coalescing).
	Inflight  *Gauge
	Coalesced *Counter
	// DuplicateFills counts freshly generated plans the cache discarded
	// because a concurrent fill of the same key won the race. Coalescing
	// exists to hold this at zero; a nonzero value means same-key work was
	// simulated more than once and one result was thrown away.
	DuplicateFills *Counter
}

// NewPlannerStats registers the planner instruments. Returns nil (disabled
// stats) on a nil receiver.
func (o *Obs) NewPlannerStats() *PlannerStats {
	if o == nil {
		return nil
	}
	return &PlannerStats{
		Plans:          o.reg.Counter(MetricPlannerPlans, "Plans served by the planner (cache hits included)."),
		CacheHits:      o.reg.Counter(MetricPlannerCacheHits, "Planner structural-cache hits."),
		CacheMisses:    o.reg.Counter(MetricPlannerCacheMisses, "Planner structural-cache misses."),
		CacheEvictions: o.reg.Counter(MetricPlannerCacheEvictions, "Plans evicted from the planner cache (LRU)."),
		Probes:         o.reg.Counter(MetricPlannerProbes, "Algorithm 1 simulations executed by planner cap searches."),
		ProbesCancelled: o.reg.Counter(MetricPlannerProbesCancelled,
			"Speculative probes cancelled before running because the search had already narrowed past them."),
		PlanDur: o.reg.Histogram(MetricPlannerPlanDuration,
			"Wall-clock latency of one planner request.", DurationBuckets),
		Inflight: o.reg.Gauge(MetricPlannerInflight, "Plan generations currently in flight."),
		Coalesced: o.reg.Counter(MetricPlannerCoalesced,
			"Plan requests served by waiting on a concurrent same-key generation."),
		DuplicateFills: o.reg.Counter(MetricPlannerDupFills,
			"Freshly generated plans discarded because a concurrent same-key fill won."),
	}
}

// OnPlan records one served plan: latency plus whether the structural cache
// supplied it.
func (s *PlannerStats) OnPlan(dur time.Duration, cached bool) {
	if s == nil {
		return
	}
	s.Plans.Inc()
	s.PlanDur.ObserveDuration(dur)
	if cached {
		s.CacheHits.Inc()
	} else {
		s.CacheMisses.Inc()
	}
}

// OnPlanCoalesced records one served plan that neither hit the cache nor
// simulated: it waited on a concurrent in-flight generation of the same key.
func (s *PlannerStats) OnPlanCoalesced(dur time.Duration) {
	if s == nil {
		return
	}
	s.Plans.Inc()
	s.PlanDur.ObserveDuration(dur)
	s.Coalesced.Inc()
}

// LiveStats bundles the instruments of the sharded live JobTracker
// (internal/live): how often heartbeats complete on the lock-free fast path,
// how long they wait for workflow-shard and assignment-pipeline locks, and
// how policy events batch. All methods are safe on a nil receiver, so the
// tracker carries a LiveStats pointer unconditionally and the uninstrumented
// hot path pays one nil check.
type LiveStats struct {
	// Shards reports the configured shard count.
	Shards *Gauge
	// ShardLockWait is the wait to acquire one workflow shard's lock during
	// completion/admission bookkeeping.
	ShardLockWait *Histogram
	// PipelineLockWait is the wait to acquire the policy core + exclusive
	// plane lock before the assignment phase.
	PipelineLockWait *Histogram
	// FastPathBeats counts heartbeats served without taking any lock (no
	// completions, no due releases, and no assignable work).
	FastPathBeats *Counter
	// PolicyBatches counts event-queue drains; PolicyEvents the lifecycle
	// events those drains carried to the policy core.
	PolicyBatches *Counter
	PolicyEvents  *Counter
}

// NewLiveStats registers the sharded live-tracker instruments and records
// the shard count. Returns nil (disabled stats) on a nil receiver.
func (o *Obs) NewLiveStats(shards int) *LiveStats {
	if o == nil {
		return nil
	}
	s := &LiveStats{
		Shards: o.reg.Gauge(MetricLiveShards, "Workflow-state shards in the live JobTracker."),
		ShardLockWait: o.reg.Histogram(MetricLiveShardLockWait,
			"Wait to acquire a workflow shard's lock during heartbeat bookkeeping.", DurationBuckets),
		PipelineLockWait: o.reg.Histogram(MetricLivePipelineLockWait,
			"Wait to acquire the assignment pipeline's policy-core and plane locks.", DurationBuckets),
		FastPathBeats: o.reg.Counter(MetricLiveFastPathBeats,
			"Heartbeats served entirely on the lock-free fast path."),
		PolicyBatches: o.reg.Counter(MetricLivePolicyBatches,
			"Policy event-queue drains by the assignment pipeline."),
		PolicyEvents: o.reg.Counter(MetricLivePolicyEvents,
			"Workflow lifecycle events delivered to the policy core."),
	}
	s.Shards.Set(int64(shards))
	return s
}

// OnShardLockWait records one shard-lock acquisition wait.
func (s *LiveStats) OnShardLockWait(d time.Duration) {
	if s == nil {
		return
	}
	s.ShardLockWait.ObserveDuration(d)
}

// OnPipelineLockWait records one assignment-pipeline lock acquisition wait.
func (s *LiveStats) OnPipelineLockWait(d time.Duration) {
	if s == nil {
		return
	}
	s.PipelineLockWait.ObserveDuration(d)
}

// OnFastPath records a heartbeat served without locks.
func (s *LiveStats) OnFastPath() {
	if s == nil {
		return
	}
	s.FastPathBeats.Inc()
}

// OnEventBatch records one event-queue drain delivering n events.
func (s *LiveStats) OnEventBatch(n int) {
	if s == nil {
		return
	}
	s.PolicyBatches.Inc()
	s.PolicyEvents.Add(int64(n))
}

// RunnerStats bundles the instruments of the parallel scenario runner
// (internal/runner): cell throughput, failures, and per-cell latency. All
// methods are safe on a nil receiver, so the runner carries a RunnerStats
// pointer unconditionally.
type RunnerStats struct {
	// Cells counts scenario cells executed; CellFailures those that
	// returned an error.
	Cells        *Counter
	CellFailures *Counter
	// Batches counts RunAll/RunEach invocations.
	Batches *Counter
	// Inflight gauges cells currently executing.
	Inflight *Gauge
	// CellDur is the wall-clock latency of one scenario cell.
	CellDur *Histogram
}

// NewRunnerStats registers the runner instruments. Returns nil (disabled
// stats) on a nil receiver.
func (o *Obs) NewRunnerStats() *RunnerStats {
	if o == nil {
		return nil
	}
	return &RunnerStats{
		Cells:        o.reg.Counter(MetricRunnerCells, "Scenario cells executed by the runner."),
		CellFailures: o.reg.Counter(MetricRunnerCellFailures, "Scenario cells that returned an error."),
		Batches:      o.reg.Counter(MetricRunnerBatches, "Runner batch invocations (RunAll/RunEach)."),
		Inflight:     o.reg.Gauge(MetricRunnerInflight, "Scenario cells currently executing."),
		CellDur: o.reg.Histogram(MetricRunnerCellDuration,
			"Wall-clock latency of one scenario cell (plans + simulation).", DurationBuckets),
	}
}

// OnBatch records one batch submission.
func (s *RunnerStats) OnBatch() {
	if s == nil {
		return
	}
	s.Batches.Inc()
}

// CellStarted marks a cell entering execution.
func (s *RunnerStats) CellStarted() {
	if s == nil {
		return
	}
	s.Inflight.Add(1)
}

// CellFinished records a completed cell: latency and failure accounting.
func (s *RunnerStats) CellFinished(dur time.Duration, failed bool) {
	if s == nil {
		return
	}
	s.Inflight.Add(-1)
	s.Cells.Inc()
	s.CellDur.ObserveDuration(dur)
	if failed {
		s.CellFailures.Inc()
	}
}
