package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace process IDs: one Perfetto process groups the per-tracker timeline
// tracks, a second groups the per-workflow tracks.
const (
	tracePIDTrackers  = 1
	tracePIDWorkflows = 2
)

// traceEvent is one Chrome trace-event (the JSON format ui.perfetto.dev and
// chrome://tracing load). Timestamps and durations are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace renders an event stream as a Chrome trace-event JSON document:
//
//   - process "trackers": one thread per TaskTracker, with a complete slice
//     per assigned task and an instant per heartbeat served;
//   - process "workflows": one thread per workflow, spanning submission to
//     completion, with instants for job activations and deadline misses.
//
// Timestamps are virtual (workflow) time in microseconds. Open the output at
// ui.perfetto.dev ("Open trace file") or chrome://tracing.
func WriteTrace(w io.Writer, events []Event) error {
	var out []traceEvent
	meta := func(pid int, tid int, kind, name string) {
		out = append(out, traceEvent{
			Name: kind, Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(tracePIDTrackers, 0, "process_name", "trackers")
	meta(tracePIDWorkflows, 0, "process_name", "workflows")

	seenTracker := map[int]bool{}
	tracker := func(id int) int {
		// Unknown trackers share thread 0 alongside tracker 0; naming makes
		// the merge visible rather than hiding events.
		tid := id
		if tid < 0 {
			tid = 0
		}
		if !seenTracker[tid] {
			seenTracker[tid] = true
			meta(tracePIDTrackers, tid, "thread_name", fmt.Sprintf("tracker %d", tid))
		}
		return tid
	}
	seenWF := map[int]bool{}
	wfThread := func(id int, name string) int {
		if !seenWF[id] {
			seenWF[id] = true
			label := fmt.Sprintf("wf %d", id)
			if name != "" {
				label += " " + name
			}
			meta(tracePIDWorkflows, id, "thread_name", label)
		}
		return id
	}

	// submitted pairs each workflow's submission instant with its completion
	// so workflows render as complete slices.
	submitted := map[int]Event{}
	for _, e := range events {
		ts := e.Time.Duration().Microseconds()
		switch e.Kind {
		case KindTaskAssigned:
			slot := "map"
			if e.Slot == 1 {
				slot = "reduce"
			}
			out = append(out, traceEvent{
				Name: fmt.Sprintf("wf%d/j%d %s", e.Workflow, e.Job, slot),
				Ph:   "X", TS: ts, Dur: maxI64(e.Dur.Microseconds(), 1),
				PID: tracePIDTrackers, TID: tracker(e.Tracker),
				Args: map[string]any{"workflow": e.Workflow, "job": e.Job, "slot": slot},
			})
		case KindHeartbeatServed:
			out = append(out, traceEvent{
				Name: "heartbeat", Ph: "i", TS: ts, S: "t",
				PID: tracePIDTrackers, TID: tracker(e.Tracker),
				Args: map[string]any{"assigned": e.N, "latency_us": e.Dur.Microseconds()},
			})
		case KindWorkflowSubmitted:
			wfThread(e.Workflow, e.Name)
			submitted[e.Workflow] = e
		case KindWorkflowCompleted:
			tid := wfThread(e.Workflow, e.Name)
			start, ok := submitted[e.Workflow]
			if !ok {
				// Completion without a recorded submission (ring overflow):
				// degrade to an instant instead of inventing a start time.
				out = append(out, traceEvent{
					Name: "completed", Ph: "i", TS: ts, S: "t",
					PID: tracePIDWorkflows, TID: tid,
				})
				continue
			}
			delete(submitted, e.Workflow)
			name := e.Name
			if name == "" {
				name = fmt.Sprintf("wf %d", e.Workflow)
			}
			out = append(out, traceEvent{
				Name: name, Ph: "X",
				TS:  start.Time.Duration().Microseconds(),
				Dur: maxI64(e.Time.Sub(start.Time).Microseconds(), 1),
				PID: tracePIDWorkflows, TID: tid,
				Args: map[string]any{"tardiness_us": e.Dur.Microseconds()},
			})
		case KindDeadlineMissed:
			out = append(out, traceEvent{
				Name: "deadline missed", Ph: "i", TS: ts, S: "t",
				PID: tracePIDWorkflows, TID: wfThread(e.Workflow, e.Name),
				Args: map[string]any{"tardiness_us": e.Dur.Microseconds()},
			})
		case KindJobActivated:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("j%d activated", e.Job), Ph: "i", TS: ts, S: "t",
				PID: tracePIDWorkflows, TID: wfThread(e.Workflow, ""),
			})
		case KindPlanGenerated:
			out = append(out, traceEvent{
				Name: "plan " + e.Name, Ph: "i", TS: ts, S: "t",
				PID: tracePIDWorkflows, TID: 0,
				Args: map[string]any{"search_iters": e.N},
			})
		case KindHealthSlack:
			// Counter track: Perfetto renders one "wf<N> slack" graph per
			// workflow from the periodic health snapshots.
			out = append(out, traceEvent{
				Name: fmt.Sprintf("wf%d slack", e.Workflow), Ph: "C", TS: ts,
				PID: tracePIDWorkflows, TID: wfThread(e.Workflow, e.Name),
				Args: map[string]any{"slack": e.N},
			})
		case KindHealthFellBehind, KindHealthRecovered, KindHealthPredictedMiss:
			out = append(out, traceEvent{
				Name: e.Kind.String(), Ph: "i", TS: ts, S: "t",
				PID: tracePIDWorkflows, TID: wfThread(e.Workflow, e.Name),
				Args: map[string]any{"n": e.N},
			})
		}
	}
	// Workflows still open at the end of the stream render as begin events
	// so their tracks are not silently empty.
	for wf, start := range submitted {
		out = append(out, traceEvent{
			Name: start.Name, Ph: "B",
			TS:  start.Time.Duration().Microseconds(),
			PID: tracePIDWorkflows, TID: wf,
		})
	}

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
