package skiplist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func newIntList() *List[int] { return New(intLess, 42) }

func TestEmpty(t *testing.T) {
	l := newIntList()
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
	if _, ok := l.Min(); ok {
		t.Error("Min on empty list reported ok")
	}
	if _, ok := l.DeleteMin(); ok {
		t.Error("DeleteMin on empty list reported ok")
	}
	if l.Delete(7) {
		t.Error("Delete on empty list reported true")
	}
	if l.Contains(7) {
		t.Error("Contains on empty list reported true")
	}
}

func TestInsertAndContains(t *testing.T) {
	l := newIntList()
	keys := []int{5, 1, 9, 3, 7}
	for _, k := range keys {
		l.Insert(k)
	}
	if l.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", l.Len(), len(keys))
	}
	for _, k := range keys {
		if !l.Contains(k) {
			t.Errorf("Contains(%d) = false, want true", k)
		}
	}
	for _, k := range []int{0, 2, 4, 6, 8, 10} {
		if l.Contains(k) {
			t.Errorf("Contains(%d) = true, want false", k)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	l := newIntList()
	for _, k := range []int{4, 2, 8, 6, 0} {
		l.Insert(k)
	}
	var got []int
	l.Ascend(func(k int) bool {
		got = append(got, k)
		return true
	})
	want := []int{0, 2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ascend[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	l := newIntList()
	for i := 0; i < 10; i++ {
		l.Insert(i)
	}
	count := 0
	l.Ascend(func(int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Ascend visited %d keys after early stop, want 3", count)
	}
}

func TestDelete(t *testing.T) {
	l := newIntList()
	for i := 0; i < 20; i++ {
		l.Insert(i)
	}
	if !l.Delete(10) {
		t.Fatal("Delete(10) = false, want true")
	}
	if l.Contains(10) {
		t.Error("Contains(10) = true after delete")
	}
	if l.Delete(10) {
		t.Error("second Delete(10) = true, want false")
	}
	if l.Len() != 19 {
		t.Errorf("Len = %d, want 19", l.Len())
	}
}

func TestDeleteMinDrains(t *testing.T) {
	l := newIntList()
	for _, k := range []int{3, 1, 4, 1 + 100, 5, 9, 2, 6} {
		l.Insert(k)
	}
	prev := -1
	for {
		k, ok := l.DeleteMin()
		if !ok {
			break
		}
		if k <= prev {
			t.Fatalf("DeleteMin returned %d after %d (not ascending)", k, prev)
		}
		prev = k
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d after drain, want 0", l.Len())
	}
}

func TestMinAfterMixedOps(t *testing.T) {
	l := newIntList()
	l.Insert(5)
	l.Insert(3)
	l.Insert(8)
	if k, _ := l.Min(); k != 3 {
		t.Errorf("Min = %d, want 3", k)
	}
	l.Delete(3)
	if k, _ := l.Min(); k != 5 {
		t.Errorf("Min = %d after Delete(3), want 5", k)
	}
	l.DeleteMin()
	if k, _ := l.Min(); k != 8 {
		t.Errorf("Min = %d after DeleteMin, want 8", k)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	build := func() []int {
		l := New(intLess, 99)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 500; i++ {
			l.Insert(rng.Intn(10000)*2 + (i % 2)) // some near-collisions
		}
		var out []int
		l.Ascend(func(k int) bool { out = append(out, k); return true })
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("element %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestAgainstReferenceModel drives the skip list and a sorted-slice model
// with the same random operation stream and checks full agreement.
func TestAgainstReferenceModel(t *testing.T) {
	l := newIntList()
	var model []int
	rng := rand.New(rand.NewSource(123))

	modelInsert := func(k int) {
		i := sort.SearchInts(model, k)
		model = append(model, 0)
		copy(model[i+1:], model[i:])
		model[i] = k
	}
	modelDelete := func(k int) bool {
		i := sort.SearchInts(model, k)
		if i < len(model) && model[i] == k {
			model = append(model[:i], model[i+1:]...)
			return true
		}
		return false
	}

	present := map[int]bool{}
	for op := 0; op < 20000; op++ {
		k := rng.Intn(2000)
		switch rng.Intn(4) {
		case 0, 1: // insert (unique keys only)
			if !present[k] {
				l.Insert(k)
				modelInsert(k)
				present[k] = true
			}
		case 2: // delete arbitrary
			got := l.Delete(k)
			want := modelDelete(k)
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, model says %v", op, k, got, want)
			}
			delete(present, k)
		case 3: // delete min
			got, gotOK := l.DeleteMin()
			var want int
			wantOK := len(model) > 0
			if wantOK {
				want = model[0]
				model = model[1:]
			}
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("op %d: DeleteMin = (%d,%v), model (%d,%v)", op, got, gotOK, want, wantOK)
			}
			if gotOK {
				delete(present, got)
			}
		}
		if l.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, l.Len(), len(model))
		}
	}
	// Final structural agreement.
	i := 0
	l.Ascend(func(k int) bool {
		if k != model[i] {
			t.Fatalf("final Ascend[%d] = %d, model %d", i, k, model[i])
		}
		i++
		return true
	})
	if i != len(model) {
		t.Fatalf("Ascend visited %d, model has %d", i, len(model))
	}
}

// TestSortednessProperty: for any input set, ascending iteration equals the
// sorted, deduplicated input.
func TestSortednessProperty(t *testing.T) {
	f := func(keys []int16) bool {
		l := newIntList()
		seen := map[int]bool{}
		for _, k16 := range keys {
			k := int(k16)
			if seen[k] {
				continue
			}
			seen[k] = true
			l.Insert(k)
		}
		want := make([]int, 0, len(seen))
		for k := range seen {
			want = append(want, k)
		}
		sort.Ints(want)
		var got []int
		l.Ascend(func(k int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeScaleHeight(t *testing.T) {
	// Sanity-check that search work stays logarithmic-ish: insert 1e5 keys
	// and verify the list level stays well under maxLevel.
	l := newIntList()
	for i := 0; i < 100000; i++ {
		l.Insert(i)
	}
	if l.level >= maxLevel {
		t.Errorf("level = %d, suspiciously tall for 1e5 keys", l.level)
	}
	if !l.Contains(99999) || !l.Contains(0) || l.Contains(100000) {
		t.Error("membership checks failed at scale")
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newIntList()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Insert(rng.Int())
	}
}

func BenchmarkDeleteMin(b *testing.B) {
	l := newIntList()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		l.Insert(rng.Int())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.DeleteMin()
	}
}
