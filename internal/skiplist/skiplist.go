// Package skiplist implements the ordered set backing WOHA's Double Skip
// List (Section IV-B of the paper).
//
// The paper cites both Pugh's randomized skip lists and Munro-Papadakis-
// Sedgewick deterministic skip lists. This implementation is a Pugh skip
// list driven by a caller-seeded deterministic PRNG, which preserves the
// properties Algorithm 2 relies on — O(log n) expected search, insertion and
// deletion, O(1) expected head deletion, and bit-for-bit reproducible
// behaviour for a fixed seed — without the considerably more intricate 2-3
// rebalancing machinery of the deterministic variant.
//
// Nodes live in a flat arena (parallel key/height/tower-offset slices plus
// one shared tower slice) addressed by int32 handles, with per-height free
// lists so a steady-state queue — the settle path deletes and reinserts the
// same entries over and over — recycles towers instead of allocating. The
// layout mirrors the simulator's attempt arena (DESIGN.md §12).
package skiplist

import (
	"math/rand"

	"repro/internal/ordered"
)

const (
	// maxLevel bounds tower height; 2^32 elements is far beyond any
	// realistic workflow queue (the paper scales to "tens of thousands").
	maxLevel = 32
	// pBits controls the promotion probability 1/2: one random bit per
	// level.
	pBits = 1
	// nilNode is the null handle; it also stands for the head sentinel on
	// the left end of a search (next resolves it through l.head).
	nilNode = int32(-1)
)

// List is an ordered set of unique keys implemented as a skip list.
// Construct with New; the zero value is not usable.
type List[K any] struct {
	less ordered.Less[K]
	rng  *rand.Rand
	// head holds the sentinel's forward pointers, one per level.
	head   [maxLevel]int32
	level  int // highest level in use, >= 1
	length int

	// Arena storage: node n's key is keys[n], its tower occupies
	// towers[off[n] : off[n]+ht[n]]. Freed nodes chain per height through
	// their tower slot 0.
	keys   []K
	off    []int32
	ht     []int8
	towers []int32
	free   [maxLevel + 1]int32
	reuses int
}

var _ ordered.Set[int] = (*List[int])(nil)

// New returns an empty list ordered by less. Tower heights are drawn from a
// PRNG seeded with seed, so two lists built with the same seed and the same
// operation sequence are identical.
func New[K any](less ordered.Less[K], seed int64) *List[K] {
	l := &List[K]{
		less:  less,
		rng:   rand.New(rand.NewSource(seed)),
		level: 1,
	}
	for i := range l.head {
		l.head[i] = nilNode
	}
	for i := range l.free {
		l.free[i] = nilNode
	}
	return l
}

// Len returns the number of keys in the list.
func (l *List[K]) Len() int { return l.length }

// Reuses reports how many nodes were served from the free lists or spliced
// in place by Move instead of freshly allocated.
func (l *List[K]) Reuses() int { return l.reuses }

// next returns x's forward pointer at level h; x == nilNode addresses the
// head sentinel.
func (l *List[K]) next(x int32, h int) int32 {
	if x == nilNode {
		return l.head[h]
	}
	return l.towers[l.off[x]+int32(h)]
}

// setNext updates x's forward pointer at level h.
func (l *List[K]) setNext(x int32, h int, to int32) {
	if x == nilNode {
		l.head[h] = to
		return
	}
	l.towers[l.off[x]+int32(h)] = to
}

// randomLevel draws a tower height with P(height >= h) = 2^-(h-1).
func (l *List[K]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rng.Int63()&((1<<pBits)-1) == 0 {
		lvl++
	}
	return lvl
}

// alloc returns a node of height h, recycling a freed tower when one exists.
func (l *List[K]) alloc(h int) int32 {
	if n := l.free[h]; n != nilNode {
		l.free[h] = l.towers[l.off[n]]
		l.reuses++
		return n
	}
	n := int32(len(l.keys))
	var zero K
	l.keys = append(l.keys, zero)
	l.off = append(l.off, int32(len(l.towers)))
	l.ht = append(l.ht, int8(h))
	for i := 0; i < h; i++ {
		l.towers = append(l.towers, nilNode)
	}
	return n
}

// freeNode pushes n onto the free list for its height, clearing the key so
// pointer-bearing keys don't pin garbage.
func (l *List[K]) freeNode(n int32) {
	var zero K
	l.keys[n] = zero
	h := int(l.ht[n])
	l.towers[l.off[n]] = l.free[h]
	l.free[h] = n
}

// findPath walks down to key's position, recording the rightmost node before
// key at every level in update. It returns the bottom-level successor (the
// key's node when present).
func (l *List[K]) findPath(key K, update *[maxLevel]int32) int32 {
	x := nilNode
	for h := l.level - 1; h >= 0; h-- {
		for nxt := l.next(x, h); nxt != nilNode && l.less(l.keys[nxt], key); nxt = l.next(x, h) {
			x = nxt
		}
		update[h] = x
	}
	return l.next(x, 0)
}

// Insert adds key to the list. Keys equal to an existing key (under less) are
// inserted adjacent to it; callers are expected to keep keys unique.
func (l *List[K]) Insert(key K) {
	var update [maxLevel]int32
	l.findPath(key, &update)
	lvl := l.randomLevel()
	if lvl > l.level {
		for h := l.level; h < lvl; h++ {
			update[h] = nilNode
		}
		l.level = lvl
	}
	n := l.alloc(lvl)
	l.keys[n] = key
	for h := 0; h < lvl; h++ {
		l.setNext(n, h, l.next(update[h], h))
		l.setNext(update[h], h, n)
	}
	l.length++
}

// unlink detaches target from every level, given the predecessor vector of
// its key.
func (l *List[K]) unlink(target int32, update *[maxLevel]int32) {
	for h := 0; h < int(l.ht[target]); h++ {
		if l.next(update[h], h) != target {
			break
		}
		l.setNext(update[h], h, l.next(target, h))
	}
}

// Delete removes key from the list, reporting whether it was present.
func (l *List[K]) Delete(key K) bool {
	var update [maxLevel]int32
	target := l.findPath(key, &update)
	if target == nilNode || l.less(key, l.keys[target]) {
		return false
	}
	l.unlink(target, &update)
	l.shrinkLevel()
	l.length--
	l.freeNode(target)
	return true
}

// Move removes old and inserts new, reusing old's node and tower height. When
// new sorts at or after old — the settle path's invariant: a refreshed
// next-change time is always later than the fired one — the position search
// resumes forward from old's predecessor fingers instead of the head, so the
// common "advance to the adjacent slot" case is a pointer splice. It reports
// whether old was present; new is not inserted otherwise.
//
// Move reuses the node's existing tower height rather than drawing a fresh
// one, so a Move consumes no PRNG state (unlike Delete+Insert, which draws a
// level). Ordering — the only property callers observe — is unaffected.
func (l *List[K]) Move(old, new K) bool {
	var update [maxLevel]int32
	target := l.findPath(old, &update)
	if target == nilNode || l.less(old, l.keys[target]) {
		return false
	}
	if l.less(new, old) {
		// Backward move: rare (the queue only moves keys forward); restart
		// the search from the head but keep the pooled storage.
		l.unlink(target, &update)
		l.shrinkLevel()
		htKept := int(l.ht[target])
		l.keys[target] = new
		l.findPath(new, &update)
		if htKept > l.level {
			for h := l.level; h < htKept; h++ {
				update[h] = nilNode
			}
			l.level = htKept
		}
		for h := 0; h < htKept; h++ {
			l.setNext(target, h, l.next(update[h], h))
			l.setNext(update[h], h, target)
		}
		l.reuses++
		return true
	}
	ht := int(l.ht[target])
	l.unlink(target, &update)
	// Resume the search forward for new's position. At each level start from
	// the further-right of the carried node and that level's old-key finger
	// (both precede new's position; the finger can be ahead of the node
	// carried down from the level above).
	x := nilNode
	for h := l.level - 1; h >= 0; h-- {
		if u := update[h]; u != nilNode && (x == nilNode || l.less(l.keys[x], l.keys[u])) {
			x = u
		}
		for nxt := l.next(x, h); nxt != nilNode && l.less(l.keys[nxt], new); nxt = l.next(x, h) {
			x = nxt
		}
		update[h] = x
	}
	l.keys[target] = new
	for h := 0; h < ht; h++ {
		l.setNext(target, h, l.next(update[h], h))
		l.setNext(update[h], h, target)
	}
	l.reuses++
	return true
}

// Min returns the smallest key. ok is false when the list is empty.
func (l *List[K]) Min() (key K, ok bool) {
	if n := l.head[0]; n != nilNode {
		return l.keys[n], true
	}
	var zero K
	return zero, false
}

// DeleteMin removes and returns the smallest key. It runs in O(height of the
// head node), which is O(1) in expectation — the fast path Algorithm 2
// exploits for its frequent head pops.
func (l *List[K]) DeleteMin() (key K, ok bool) {
	n := l.head[0]
	if n == nilNode {
		var zero K
		return zero, false
	}
	key = l.keys[n]
	for h := 0; h < int(l.ht[n]); h++ {
		l.head[h] = l.next(n, h)
	}
	l.freeNode(n)
	l.shrinkLevel()
	l.length--
	return key, true
}

// Contains reports whether key is in the list.
func (l *List[K]) Contains(key K) bool {
	x := nilNode
	for h := l.level - 1; h >= 0; h-- {
		for nxt := l.next(x, h); nxt != nilNode && l.less(l.keys[nxt], key); nxt = l.next(x, h) {
			x = nxt
		}
	}
	n := l.next(x, 0)
	return n != nilNode && !l.less(key, l.keys[n])
}

// Ascend calls fn on every key in ascending order until fn returns false.
func (l *List[K]) Ascend(fn func(key K) bool) {
	for n := l.head[0]; n != nilNode; n = l.next(n, 0) {
		if !fn(l.keys[n]) {
			return
		}
	}
}

// shrinkLevel drops empty top levels so future searches start lower.
func (l *List[K]) shrinkLevel() {
	for l.level > 1 && l.head[l.level-1] == nilNode {
		l.level--
	}
}
