// Package skiplist implements the ordered set backing WOHA's Double Skip
// List (Section IV-B of the paper).
//
// The paper cites both Pugh's randomized skip lists and Munro-Papadakis-
// Sedgewick deterministic skip lists. This implementation is a Pugh skip
// list driven by a caller-seeded deterministic PRNG, which preserves the
// properties Algorithm 2 relies on — O(log n) expected search, insertion and
// deletion, O(1) expected head deletion, and bit-for-bit reproducible
// behaviour for a fixed seed — without the considerably more intricate 2-3
// rebalancing machinery of the deterministic variant.
package skiplist

import (
	"math/rand"

	"repro/internal/ordered"
)

const (
	// maxLevel bounds tower height; 2^32 elements is far beyond any
	// realistic workflow queue (the paper scales to "tens of thousands").
	maxLevel = 32
	// pBits controls the promotion probability 1/2: one random bit per
	// level.
	pBits = 1
)

// List is an ordered set of unique keys implemented as a skip list.
// Construct with New; the zero value is not usable.
type List[K any] struct {
	head   *node[K]
	less   ordered.Less[K]
	rng    *rand.Rand
	level  int // highest level in use, >= 1
	length int
}

type node[K any] struct {
	key  K
	next []*node[K]
}

var _ ordered.Set[int] = (*List[int])(nil)

// New returns an empty list ordered by less. Tower heights are drawn from a
// PRNG seeded with seed, so two lists built with the same seed and the same
// operation sequence are identical.
func New[K any](less ordered.Less[K], seed int64) *List[K] {
	return &List[K]{
		head:  &node[K]{next: make([]*node[K], maxLevel)},
		less:  less,
		rng:   rand.New(rand.NewSource(seed)),
		level: 1,
	}
}

// Len returns the number of keys in the list.
func (l *List[K]) Len() int { return l.length }

// randomLevel draws a tower height with P(height >= h) = 2^-(h-1).
func (l *List[K]) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && l.rng.Int63()&((1<<pBits)-1) == 0 {
		lvl++
	}
	return lvl
}

// Insert adds key to the list. Keys equal to an existing key (under less) are
// inserted adjacent to it; callers are expected to keep keys unique.
func (l *List[K]) Insert(key K) {
	var update [maxLevel]*node[K]
	x := l.head
	for h := l.level - 1; h >= 0; h-- {
		for x.next[h] != nil && l.less(x.next[h].key, key) {
			x = x.next[h]
		}
		update[h] = x
	}
	lvl := l.randomLevel()
	if lvl > l.level {
		for h := l.level; h < lvl; h++ {
			update[h] = l.head
		}
		l.level = lvl
	}
	n := &node[K]{key: key, next: make([]*node[K], lvl)}
	for h := 0; h < lvl; h++ {
		n.next[h] = update[h].next[h]
		update[h].next[h] = n
	}
	l.length++
}

// Delete removes key from the list, reporting whether it was present.
func (l *List[K]) Delete(key K) bool {
	var update [maxLevel]*node[K]
	x := l.head
	for h := l.level - 1; h >= 0; h-- {
		for x.next[h] != nil && l.less(x.next[h].key, key) {
			x = x.next[h]
		}
		update[h] = x
	}
	target := x.next[0]
	if target == nil || l.less(key, target.key) {
		return false
	}
	for h := 0; h < len(target.next); h++ {
		if update[h].next[h] != target {
			break
		}
		update[h].next[h] = target.next[h]
	}
	l.shrinkLevel()
	l.length--
	return true
}

// Min returns the smallest key. ok is false when the list is empty.
func (l *List[K]) Min() (key K, ok bool) {
	if n := l.head.next[0]; n != nil {
		return n.key, true
	}
	var zero K
	return zero, false
}

// DeleteMin removes and returns the smallest key. It runs in O(height of the
// head node), which is O(1) in expectation — the fast path Algorithm 2
// exploits for its frequent head pops.
func (l *List[K]) DeleteMin() (key K, ok bool) {
	n := l.head.next[0]
	if n == nil {
		var zero K
		return zero, false
	}
	for h := 0; h < len(n.next); h++ {
		l.head.next[h] = n.next[h]
	}
	l.shrinkLevel()
	l.length--
	return n.key, true
}

// Contains reports whether key is in the list.
func (l *List[K]) Contains(key K) bool {
	x := l.head
	for h := l.level - 1; h >= 0; h-- {
		for x.next[h] != nil && l.less(x.next[h].key, key) {
			x = x.next[h]
		}
	}
	n := x.next[0]
	return n != nil && !l.less(key, n.key)
}

// Ascend calls fn on every key in ascending order until fn returns false.
func (l *List[K]) Ascend(fn func(key K) bool) {
	for n := l.head.next[0]; n != nil; n = n.next[0] {
		if !fn(n.key) {
			return
		}
	}
}

// shrinkLevel drops empty top levels so future searches start lower.
func (l *List[K]) shrinkLevel() {
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
}
