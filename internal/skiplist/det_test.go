package skiplist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newDetInt() *Det[int] { return NewDet(intLess) }

func TestDetEmpty(t *testing.T) {
	d := newDetInt()
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
	if _, ok := d.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := d.DeleteMin(); ok {
		t.Error("DeleteMin on empty")
	}
	if d.Delete(5) {
		t.Error("Delete on empty")
	}
	if d.Contains(5) {
		t.Error("Contains on empty")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDetInsertContainsAscend(t *testing.T) {
	d := newDetInt()
	keys := []int{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		d.Insert(k)
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d (#%d): %v", k, i, err)
		}
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	for _, k := range keys {
		if !d.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	if d.Contains(10) || d.Contains(-1) {
		t.Error("Contains reported absent key")
	}
	var got []int
	d.Ascend(func(k int) bool { got = append(got, k); return true })
	for i, k := range got {
		if k != i {
			t.Fatalf("Ascend[%d] = %d", i, k)
		}
	}
}

func TestDetDuplicateInsertNoOp(t *testing.T) {
	d := newDetInt()
	for i := 0; i < 50; i++ {
		d.Insert(i % 10)
	}
	if d.Len() != 10 {
		t.Errorf("Len = %d after duplicate inserts, want 10", d.Len())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDetDeleteAllOrders(t *testing.T) {
	const n = 64
	orders := map[string]func(i int) int{
		"ascending":  func(i int) int { return i },
		"descending": func(i int) int { return n - 1 - i },
		"stride7":    func(i int) int { return (i * 7) % n },
	}
	for name, ord := range orders {
		t.Run(name, func(t *testing.T) {
			d := newDetInt()
			for i := 0; i < n; i++ {
				d.Insert(i)
			}
			for i := 0; i < n; i++ {
				k := ord(i)
				if !d.Delete(k) {
					t.Fatalf("Delete(%d) = false", k)
				}
				if d.Contains(k) {
					t.Fatalf("Contains(%d) after delete", k)
				}
				if err := d.CheckInvariants(); err != nil {
					t.Fatalf("after deleting %d: %v", k, err)
				}
			}
			if d.Len() != 0 || d.Levels() != 1 {
				t.Errorf("Len = %d, Levels = %d after drain", d.Len(), d.Levels())
			}
		})
	}
}

func TestDetDeleteMinDrains(t *testing.T) {
	d := newDetInt()
	const n = 200
	for i := n - 1; i >= 0; i-- {
		d.Insert(i)
	}
	for i := 0; i < n; i++ {
		k, ok := d.DeleteMin()
		if !ok || k != i {
			t.Fatalf("DeleteMin #%d = (%d, %v)", i, k, ok)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("after DeleteMin %d: %v", i, err)
		}
	}
}

func TestDetHeightLogarithmic(t *testing.T) {
	d := newDetInt()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		d.Insert(i)
	}
	// Worst case height is log2(n) (gaps of at least 1 halve per level);
	// allow the +2 for sentinels and the growth rule.
	if max := int(math.Log2(n)) + 2; d.Levels() > max {
		t.Errorf("Levels = %d for %d sequential inserts, want <= %d", d.Levels(), n, max)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDetAgainstModel drives the deterministic list and a sorted-slice model
// with an identical random operation stream, checking the 1-2-3 invariant
// after every mutation.
func TestDetAgainstModel(t *testing.T) {
	d := newDetInt()
	var model []int
	rng := rand.New(rand.NewSource(321))

	modelInsert := func(k int) {
		i := sort.SearchInts(model, k)
		if i < len(model) && model[i] == k {
			return
		}
		model = append(model, 0)
		copy(model[i+1:], model[i:])
		model[i] = k
	}
	modelDelete := func(k int) bool {
		i := sort.SearchInts(model, k)
		if i < len(model) && model[i] == k {
			model = append(model[:i], model[i+1:]...)
			return true
		}
		return false
	}

	for op := 0; op < 30000; op++ {
		k := rng.Intn(600)
		switch rng.Intn(5) {
		case 0, 1, 2:
			d.Insert(k)
			modelInsert(k)
		case 3:
			got, want := d.Delete(k), modelDelete(k)
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, model %v", op, k, got, want)
			}
		case 4:
			got, gotOK := d.DeleteMin()
			if wantOK := len(model) > 0; gotOK != wantOK {
				t.Fatalf("op %d: DeleteMin ok = %v, model %v", op, gotOK, wantOK)
			} else if gotOK {
				if got != model[0] {
					t.Fatalf("op %d: DeleteMin = %d, model %d", op, got, model[0])
				}
				model = model[1:]
			}
		}
		if d.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, d.Len(), len(model))
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		// Periodically verify full contents and membership.
		if op%500 == 0 {
			i := 0
			d.Ascend(func(k int) bool {
				if k != model[i] {
					t.Fatalf("op %d: Ascend[%d] = %d, model %d", op, i, k, model[i])
				}
				i++
				return true
			})
			probe := rng.Intn(600)
			j := sort.SearchInts(model, probe)
			want := j < len(model) && model[j] == probe
			if got := d.Contains(probe); got != want {
				t.Fatalf("op %d: Contains(%d) = %v, model %v", op, probe, got, want)
			}
		}
	}
}

// TestDetSortednessProperty mirrors the randomized list's quick property.
func TestDetSortednessProperty(t *testing.T) {
	f := func(keys []int16) bool {
		d := newDetInt()
		set := map[int]bool{}
		for _, k16 := range keys {
			k := int(k16)
			d.Insert(k)
			set[k] = true
		}
		if d.CheckInvariants() != nil {
			return false
		}
		want := make([]int, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Ints(want)
		var got []int
		d.Ascend(func(k int) bool { got = append(got, k); return true })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDetTallSeparatorDeletion exercises the predecessor-promotion path:
// grow a list until some keys are tall, then delete exactly those.
func TestDetTallSeparatorDeletion(t *testing.T) {
	d := newDetInt()
	const n = 512
	for i := 0; i < n; i++ {
		d.Insert(i)
	}
	// Collect tall keys (present above level 0) by walking level 1.
	lvl1 := d.head
	for i := 0; i < d.Levels()-1-1; i++ {
		lvl1 = lvl1.down
	}
	var tall []int
	for c := lvl1.right; c != nil; c = c.right {
		tall = append(tall, c.key)
	}
	if len(tall) == 0 {
		t.Fatal("no tall keys at n=512; structure suspicious")
	}
	for _, k := range tall {
		if !d.Delete(k) {
			t.Fatalf("Delete(tall %d) = false", k)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("after deleting tall %d: %v", k, err)
		}
		if d.Contains(k) {
			t.Fatalf("Contains(%d) after delete", k)
		}
	}
	if d.Len() != n-len(tall) {
		t.Errorf("Len = %d, want %d", d.Len(), n-len(tall))
	}
}

func BenchmarkDetInsert(b *testing.B) {
	d := newDetInt()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Insert(rng.Int())
	}
}

func BenchmarkDetDeleteMin(b *testing.B) {
	d := newDetInt()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		d.Insert(rng.Int())
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.DeleteMin()
	}
}
