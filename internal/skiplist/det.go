package skiplist

import "repro/internal/ordered"

// Det is a deterministic 1-2-3 skip list (Munro, Papadakis, Sedgewick,
// SODA '92) — the structure the WOHA paper cites for its Double Skip List.
// Unlike the seeded List, every operation is worst-case O(log n): the list
// maintains the invariant that between any two consecutive elements present
// at level h+1 (including the sentinel and the open right end), the number
// of elements present at level h is one, two, or three.
//
// The implementation uses the copied-separator representation: an element of
// height k appears as one node per level, linked by down pointers.
// Insertion pre-splits every full (size-3) gap on the way down, exactly like
// a top-down 2-3-4 tree; deletion pre-merges every size-1 gap on the way
// down by lowering the adjacent separator, immediately re-splitting when the
// merged gap exceeds three. Both rebalancing moves either shorten a column
// from the top or raise a fresh copy, so separator columns always carry a
// single key — the property the search relies on.
//
// Two useful corollaries of the gap invariant, exploited below: the minimum
// element always has height one (a taller minimum would leave an empty gap
// against the head sentinel), and the bottom-level predecessor of any tall
// element has height one (the key range between them is empty).
type Det[K any] struct {
	// head is the sentinel column's top node; head.down chains to the
	// sentinel of each lower level, ending at the bottom level.
	head   *detNode[K]
	less   ordered.Less[K]
	levels int
	length int
	// free chains recycled nodes through their right pointers; rebalancing
	// merges and deletions feed it, raises and insertions drain it, so a
	// steady-state queue churns without allocating.
	free   *detNode[K]
	reuses int
}

type detNode[K any] struct {
	key   K
	right *detNode[K]
	down  *detNode[K]
	// sentinel marks head-column nodes, whose key is meaningless.
	sentinel bool
}

var _ ordered.Set[int] = (*Det[int])(nil)

// NewDet returns an empty deterministic skip list ordered by less.
func NewDet[K any](less ordered.Less[K]) *Det[K] {
	return &Det[K]{
		head:   &detNode[K]{sentinel: true},
		less:   less,
		levels: 1,
	}
}

// Len returns the number of keys in the list.
func (d *Det[K]) Len() int { return d.length }

// Reuses reports how many nodes were served from the free list instead of
// freshly allocated.
func (d *Det[K]) Reuses() int { return d.reuses }

// alloc returns a node with the given fields, recycling a freed one when
// available.
func (d *Det[K]) alloc(key K, right, down *detNode[K], sentinel bool) *detNode[K] {
	if n := d.free; n != nil {
		d.free = n.right
		n.key, n.right, n.down, n.sentinel = key, right, down, sentinel
		d.reuses++
		return n
	}
	return &detNode[K]{key: key, right: right, down: down, sentinel: sentinel}
}

// recycle pushes a node dropped from the structure onto the free list.
func (d *Det[K]) recycle(n *detNode[K]) {
	var zero K
	n.key, n.down, n.sentinel = zero, nil, false
	n.right = d.free
	d.free = n
}

// Move removes old and inserts new as one operation, reporting whether old
// was present. The 1-2-3 list has no stable node identity to splice (columns
// are copied separators), so Move is delete+insert — but both halves draw
// from the free list, so the pair allocates nothing at steady state.
func (d *Det[K]) Move(old, new K) bool {
	if !d.Delete(old) {
		return false
	}
	d.Insert(new)
	return true
}

// eq reports key equality under the comparator.
func (d *Det[K]) eq(a, b K) bool { return !d.less(a, b) && !d.less(b, a) }

// walk advances x rightward while its successor's key is below key.
func (d *Det[K]) walk(x *detNode[K], key K) *detNode[K] {
	for x.right != nil && d.less(x.right.key, key) {
		x = x.right
	}
	return x
}

// gapSize counts the elements one level below x strictly between x's column
// and x.right's column (capped at cap).
func (d *Det[K]) gapSize(x *detNode[K], cap int) int {
	var limit *detNode[K]
	if x.right != nil {
		limit = x.right.down
	}
	n := 0
	for c := x.down.right; c != nil && c != limit; c = c.right {
		n++
		if n == cap {
			break
		}
	}
	return n
}

// raiseAt splits the gap below x by raising the gap's idx-th element
// (0-based) as a fresh copy after x.
func (d *Det[K]) raiseAt(x *detNode[K], idx int) {
	mid := x.down.right
	for i := 0; i < idx; i++ {
		mid = mid.right
	}
	x.right = d.alloc(mid.key, x.right, mid, false)
}

// Insert adds key to the list. Inserting a key equal to an existing one is
// a no-op (keys are unique).
func (d *Det[K]) Insert(key K) {
	// Grow a level when the top is full so pre-splits always have room.
	if d.topSize() == 3 {
		var zero K
		d.head = d.alloc(zero, nil, d.head, true)
		d.levels++
	}
	x := d.head
	for lvl := d.levels - 1; lvl >= 1; lvl-- {
		x = d.walk(x, key)
		if x.right != nil && d.eq(x.right.key, key) {
			return // already present as a separator
		}
		// Pre-split a full gap: raise its middle element next to x, then
		// re-walk so the descent enters the correct sub-gap.
		if d.gapSize(x, 3) == 3 {
			d.raiseAt(x, 1)
			x = d.walk(x, key)
			if x.right != nil && d.eq(x.right.key, key) {
				return
			}
		}
		x = x.down
	}
	x = d.walk(x, key)
	if x.right != nil && d.eq(x.right.key, key) {
		return
	}
	x.right = d.alloc(key, x.right, nil, false)
	d.length++
}

// topSize counts elements on the top level (capped at 4).
func (d *Det[K]) topSize() int {
	n := 0
	for c := d.head.right; c != nil; c = c.right {
		n++
		if n == 4 {
			break
		}
	}
	return n
}

// Delete removes key, reporting whether it was present.
func (d *Det[K]) Delete(key K) bool {
	if d.length == 0 {
		return false
	}
	// copies collects key's separator nodes above level 0, renamed to the
	// bottom predecessor once it is known. The buffer is stack-sized: levels
	// grow at most logarithmically (each level-h+1 gap covers >= 2 level-h
	// elements), so 48 covers any feasible list.
	var copiesBuf [48]*detNode[K]
	copies := copiesBuf[:0]

	x := d.head
	// limit is the right wall of the gap being traversed: the lower copy of
	// the separator we descended past. Merging must never lower the wall —
	// it belongs to a taller column (B-tree siblings share a parent).
	var limit *detNode[K]
	for lvl := d.levels - 1; lvl >= 1; lvl-- {
		var prev *detNode[K]
		for x.right != nil && d.less(x.right.key, key) {
			prev = x
			x = x.right
		}
		// Pre-merge: the gap we are about to descend into must hold at
		// least two elements, so that removing one (to the bottom-level
		// deletion, the predecessor promotion, or a merge one level down)
		// can never empty it.
		if d.gapSize(x, 2) == 1 {
			if x.right != nil && x.right != limit {
				d.mergeRight(x, key)
			} else if prev != nil {
				x = d.mergeLeft(prev, key)
			}
			// A single-element top gap with no siblings needs no fixing.
			x = d.walk(x, key)
		}
		if x.right != nil && d.eq(x.right.key, key) {
			copies = append(copies, x.right)
		}
		if x.right != nil {
			limit = x.right.down
		} else {
			limit = nil
		}
		x = x.down
	}

	x = d.walk(x, key)
	target := x.right
	if target == nil || !d.eq(target.key, key) {
		// Not present. Rebalancing may have run, but the invariants it
		// restores are the same ones it requires, so this is harmless.
		return false
	}
	x.right = target.right
	d.length--

	// Rename key's separator copies to the bottom predecessor. The gap
	// invariant guarantees x is a real element (a tall key always has a
	// bottom predecessor in its own gap) of height one, so the renamed
	// chain plus x forms a proper column.
	if len(copies) > 0 {
		if x.sentinel {
			panic("skiplist: tall minimum violates the gap invariant")
		}
		for _, c := range copies {
			c.key = x.key
		}
		copies[len(copies)-1].down = x
	}
	d.recycle(target)

	d.shrink()
	return true
}

// mergeRight lowers the separator x.right into the gap below x and
// re-splits when the merged gap exceeds three elements. The split point is
// biased so the sub-gap the key descends into keeps at least two elements
// (raising the plain middle of a four-gap could recreate a one-gap on the
// descent side).
func (d *Det[K]) mergeRight(x *detNode[K], key K) {
	dead := x.right
	x.right = dead.right
	// The lowered separator has height exactly this level (a taller column
	// would be the gap wall), so nothing above references it.
	d.recycle(dead)
	d.rebalanceMerged(x, key)
}

// mergeLeft lowers prev.right (the element the descent stands on, whose
// right neighbor is the gap wall or the level end) into the gap below prev;
// it returns prev, from which the descent continues.
func (d *Det[K]) mergeLeft(prev *detNode[K], key K) *detNode[K] {
	dead := prev.right
	prev.right = dead.right
	d.recycle(dead)
	d.rebalanceMerged(prev, key)
	return prev
}

// rebalanceMerged re-splits the just-merged gap below x when it exceeds
// three elements, biasing the split point so the sub-gap the key descends
// into keeps at least two elements (a plain middle split of a four-gap
// could recreate a one-gap on the descent side).
func (d *Det[K]) rebalanceMerged(x *detNode[K], key K) {
	switch size := d.gapSize(x, 5); {
	case size <= 3:
		// A merged gap of three needs no split; every sub-path keeps >= 2.
	case size == 4:
		// Elements e0..e3: raise e1 (sides 1|2) when the key belongs right
		// of e1, else raise e2 (sides 2|1).
		e1 := x.down.right.right
		if d.less(e1.key, key) {
			d.raiseAt(x, 1)
		} else {
			d.raiseAt(x, 2)
		}
	default: // size == 5: raising the middle leaves 2|2
		d.raiseAt(x, 2)
	}
}

// shrink drops empty top levels.
func (d *Det[K]) shrink() {
	for d.levels > 1 && d.head.right == nil {
		dead := d.head
		d.head = d.head.down
		d.levels--
		d.recycle(dead)
	}
}

// Contains reports whether key is present.
func (d *Det[K]) Contains(key K) bool {
	x := d.head
	for {
		x = d.walk(x, key)
		if x.right != nil && d.eq(x.right.key, key) {
			return true
		}
		if x.down == nil {
			return false
		}
		x = x.down
	}
}

// Min returns the smallest key. ok is false when the list is empty.
func (d *Det[K]) Min() (key K, ok bool) {
	x := d.head
	for x.down != nil {
		x = x.down
	}
	if x.right == nil {
		var zero K
		return zero, false
	}
	return x.right.key, true
}

// DeleteMin removes and returns the smallest key. The minimum always has
// height one, but the deletion still descends to pre-merge, so this is
// O(log n) worst-case — the deterministic variant trades the seeded list's
// O(1) expected head pop for worst-case guarantees.
func (d *Det[K]) DeleteMin() (key K, ok bool) {
	k, ok := d.Min()
	if !ok {
		var zero K
		return zero, false
	}
	d.Delete(k)
	return k, true
}

// Ascend calls fn on every key in ascending order until fn returns false.
func (d *Det[K]) Ascend(fn func(key K) bool) {
	x := d.head
	for x.down != nil {
		x = x.down
	}
	for c := x.right; c != nil; c = c.right {
		if !fn(c.key) {
			return
		}
	}
}

// Levels reports the current number of levels (for tests).
func (d *Det[K]) Levels() int { return d.levels }

// CheckInvariants validates the 1-2-3 gap invariant, separator columns, and
// bottom-level order; tests call it after mutations.
func (d *Det[K]) CheckInvariants() error {
	h := d.head
	for lvl := d.levels - 1; lvl >= 1; lvl-- {
		for x := h; x != nil; x = x.right {
			if x.down == nil {
				return errColumn
			}
			if x.sentinel != x.down.sentinel {
				return errColumn
			}
			if !x.sentinel && !d.eq(x.down.key, x.key) {
				return errColumn
			}
			if x.right != nil && !x.right.sentinel && x != h && !d.less(x.key, x.right.key) {
				return errOrder
			}
			if g := d.gapSize(x, 4); g < 1 || g > 3 {
				return errGap
			}
		}
		h = h.down
	}
	// Bottom level: strictly ascending, length matches.
	n := 0
	var prev *detNode[K]
	for c := h.right; c != nil; c = c.right {
		if prev != nil && !d.less(prev.key, c.key) {
			return errOrder
		}
		prev = c
		n++
	}
	if n != d.length {
		return errLength
	}
	return nil
}

var (
	errOrder  = errString("skiplist: level out of order")
	errLength = errString("skiplist: length mismatch")
	errColumn = errString("skiplist: broken separator column")
	errGap    = errString("skiplist: gap size outside 1..3")
)

type errString string

func (e errString) Error() string { return string(e) }
