// Package workload builds the workflow populations used by the paper's
// evaluation: the 33-job demonstration topology of Fig 7, the Yahoo!-derived
// set of 61 workflows / 180 jobs behind Fig 8-10 and Fig 13, and general
// random DAGs drawn from the trace marginals.
//
// The paper's actual Fig 7 drawing is not legible in the source text and the
// Yahoo workflow configurations are proprietary, so both are reconstructions
// that preserve the published structural facts; see DESIGN.md for the
// substitution rationale.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// Fig7 builds the paper's 33-job demonstration workflow: three parallel
// ingest pipelines that fan out, re-join, feed a shared analytics layer, and
// converge on final reports — long unlock chains plus wide parallel stages,
// the regime where workflow-aware scheduling matters.
//
// scale multiplies all task durations. The Fig 11 experiments run at
// scale 1.70 (see experiments.DefaultFig11Config), calibrated so the paper's
// 32-slave cluster (64 map + 32 reduce slots) sits in the contended-but-
// feasible regime where scheduler choice decides deadline satisfaction.
func Fig7(name string, scale float64, release, deadline simtime.Time) *workflow.Workflow {
	d := func(sec float64) time.Duration {
		return time.Duration(sec * scale * float64(time.Second))
	}
	b := workflow.NewBuilder(name)

	// Stage 0: three wide ingest jobs (3 jobs; 33 total).
	ingests := make([]string, 3)
	for i := range ingests {
		ingests[i] = fmt.Sprintf("ingest-%d", i)
		b.Job(ingests[i], 48, 8, d(60), d(150))
	}
	// Stage 1: four transforms per pipeline (12 jobs).
	transforms := make([][]string, 3)
	for i := range transforms {
		transforms[i] = make([]string, 4)
		for k := range transforms[i] {
			name := fmt.Sprintf("transform-%d-%d", i, k)
			transforms[i][k] = name
			// Within-stage duration spread: distinguishes LPF (which sees
			// path lengths) from HLF (which sees only levels).
			b.Job(name, 12, 4, d(float64(35+10*k)), d(float64(100+15*k)), ingests[i])
		}
	}
	// Stage 2: one join per pipeline, each needing all four transforms
	// (3 jobs).
	joins := make([]string, 3)
	for i := range joins {
		joins[i] = fmt.Sprintf("join-%d", i)
		b.Job(joins[i], 24, 8, d(60), d(210), transforms[i]...)
	}
	// Stage 3: eight analytics jobs over mixed joins (8 jobs).
	analytics := make([]string, 8)
	for i := range analytics {
		analytics[i] = fmt.Sprintf("analytic-%d", i)
		deps := []string{joins[i%3]}
		if i%2 == 0 {
			deps = append(deps, joins[(i+1)%3])
		}
		b.Job(analytics[i], 14, 4, d(float64(30+3*i)), d(float64(120+6*i)), deps...)
	}
	// Stage 4: four aggregators, each over two analytics (4 jobs).
	aggs := make([]string, 4)
	for i := range aggs {
		aggs[i] = fmt.Sprintf("aggregate-%d", i)
		b.Job(aggs[i], 10, 4, d(30), d(170), analytics[2*i], analytics[2*i+1])
	}
	// Stage 5: two reports and a final publish (3 jobs; total 33).
	b.Job("report-0", 6, 2, d(30), d(130), aggs[0], aggs[1])
	b.Job("report-1", 6, 2, d(30), d(130), aggs[2], aggs[3])
	b.Job("publish", 4, 1, d(25), d(110), "report-0", "report-1")

	return b.MustBuild(release, deadline)
}

// DeadlineScheme selects how the Yahoo population's deadlines are assigned.
type DeadlineScheme int

// Deadline schemes.
const (
	// DeadlineSLA models production SLAs: the population is a batch of
	// submissions split into a tight cohort, due TightAlpha times its own
	// aggregate work per ReferenceSlots after the batch starts, and a
	// loose cohort due LooseFactor times later. Shared deadlines are the
	// regime the paper evaluates (its Fig 11 workflows' deadlines differ
	// by ~15%); they expose EDF's within-cohort serialization.
	DeadlineSLA DeadlineScheme = iota
	// DeadlineStretch draws a per-workflow deadline stretch uniformly from
	// [StretchMin, StretchMax] over the workflow's own best-effort
	// makespan. Used by the deadline-scheme ablation.
	DeadlineStretch
)

// YahooConfig parameterizes the Yahoo-derived workflow population.
type YahooConfig struct {
	// Seed drives all sampling.
	Seed int64
	// Workflows, Jobs, SingleJob, and MaxJobs pin the published
	// composition: 61 workflows over 180 jobs, 15 of them single-job, the
	// largest containing 12 jobs.
	Workflows, Jobs, SingleJob, MaxJobs int
	// Trace supplies the per-job statistics.
	Trace trace.Params
	// ReleaseWindow spreads submissions uniformly over [0, ReleaseWindow].
	ReleaseWindow time.Duration
	// Scheme selects deadline assignment.
	Scheme DeadlineScheme
	// TightAlpha and LooseFactor shape DeadlineSLA: the tight cohort's
	// deadline is TightAlpha * (cohort serial work / ReferenceSlots); the
	// loose cohort's is LooseFactor times that.
	TightAlpha, LooseFactor float64
	// ReferenceSlots is the capacity reference for both schemes (the
	// cluster size deadlines are negotiated against).
	ReferenceSlots int
	// StretchMin and StretchMax bound DeadlineStretch's per-workflow
	// stretch. Stretch near 1 is a tight deadline.
	StretchMin, StretchMax float64
	// DeadlineFloor is the minimum relative deadline: production SLOs are
	// set in minutes or hours even for small workflows.
	DeadlineFloor time.Duration
	// Planner, when non-nil, serves the makespan estimates behind deadline
	// assignment (pass a *planner.Planner). Random DAGs rarely repeat a
	// shape, but template-heavy or recurring populations estimate each
	// shape once; a nil Planner runs the seed plan.GenerateForPolicy path.
	Planner Estimator
}

// Estimator is the slice of the planner service deadline assignment needs:
// an uncapped Algorithm 1 makespan estimate at a reference slot count.
// *planner.Planner implements it; workload deliberately depends on the
// interface only, so the planner package can test against workload corpora.
type Estimator interface {
	Estimate(w *workflow.Workflow, slots int, pol priority.Policy) (*plan.Plan, error)
}

// DefaultYahooConfig matches the paper's composition with task statistics
// scaled to keep experiments fast while preserving the Fig 5/6 shapes, and a
// deadline tightness that puts a 400-560-slot cluster in the paper's "less
// than adequate but more than scarce" regime.
func DefaultYahooConfig() YahooConfig {
	return YahooConfig{
		Seed:           1,
		Workflows:      61,
		Jobs:           180,
		SingleJob:      15,
		MaxJobs:        12,
		Trace:          trace.DefaultParams().Scale(1.0, 0.5),
		ReleaseWindow:  3 * time.Minute,
		Scheme:         DeadlineSLA,
		TightAlpha:     1.30,
		LooseFactor:    3,
		ReferenceSlots: 480,
		StretchMin:     1.2,
		StretchMax:     2.8,
		DeadlineFloor:  10 * time.Minute,
	}
}

// Yahoo builds the workflow population. Workflow i is named "yahoo-NN".
func Yahoo(cfg YahooConfig) ([]*workflow.Workflow, error) {
	if cfg.Workflows <= 0 || cfg.Jobs < cfg.Workflows || cfg.SingleJob > cfg.Workflows {
		return nil, fmt.Errorf("workload: inconsistent composition %d workflows / %d jobs / %d single",
			cfg.Workflows, cfg.Jobs, cfg.SingleJob)
	}
	if cfg.MaxJobs < 2 {
		return nil, fmt.Errorf("workload: MaxJobs %d, want >= 2", cfg.MaxJobs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := trace.NewGeneratorParams(cfg.Seed+1, cfg.Trace)

	sizes, err := sampleSizes(rng, cfg)
	if err != nil {
		return nil, err
	}

	flows := make([]*workflow.Workflow, 0, cfg.Workflows)
	for i, size := range sizes {
		name := fmt.Sprintf("yahoo-%02d", i)
		release := simtime.Epoch.Add(time.Duration(rng.Float64() * float64(cfg.ReleaseWindow)))
		w, err := RandomDAG(rng, gen, name, size, release)
		if err != nil {
			return nil, err
		}
		flows = append(flows, w)
	}
	if err := assignDeadlines(rng, flows, cfg); err != nil {
		return nil, err
	}
	return flows, nil
}

// assignDeadlines applies cfg.Scheme to the population.
func assignDeadlines(rng *rand.Rand, flows []*workflow.Workflow, cfg YahooConfig) error {
	switch cfg.Scheme {
	case DeadlineSLA:
		if cfg.TightAlpha <= 0 || cfg.LooseFactor < 1 || cfg.ReferenceSlots <= 0 {
			return fmt.Errorf("workload: bad SLA parameters %+v", cfg)
		}
		// Alternate multi-job workflows between the tight and loose
		// cohorts; single-job workflows (which the paper's evaluation
		// removes) always land in the loose cohort so they cannot skew
		// the tight cohort's work budget.
		var tightWork time.Duration
		k := 0
		inTight := make([]bool, len(flows))
		for i, w := range flows {
			if len(w.Jobs) < 2 {
				continue
			}
			if k%2 == 0 {
				inTight[i] = true
				tightWork += w.SerialWork()
			}
			k++
		}
		tight := time.Duration(cfg.TightAlpha * float64(tightWork) / float64(cfg.ReferenceSlots))
		if tight < cfg.DeadlineFloor {
			tight = cfg.DeadlineFloor
		}
		// No operator signs an SLA a workflow cannot meet even alone on the
		// reference cluster: structurally infeasible flows take the loose
		// deadline instead.
		for i, w := range flows {
			if !inTight[i] {
				continue
			}
			p, err := estimate(cfg.Planner, w, cfg.ReferenceSlots)
			if err != nil {
				return err
			}
			if p.Makespan > tight-w.Release.Duration() {
				inTight[i] = false
			}
		}
		for i, w := range flows {
			if inTight[i] {
				w.Deadline = simtime.Epoch.Add(tight)
			} else {
				w.Deadline = simtime.Epoch.Add(time.Duration(cfg.LooseFactor * float64(tight)))
			}
			if w.Deadline <= w.Release {
				w.Deadline = w.Release.Add(cfg.DeadlineFloor)
			}
		}
	case DeadlineStretch:
		for _, w := range flows {
			stretch := cfg.StretchMin + rng.Float64()*(cfg.StretchMax-cfg.StretchMin)
			if err := AssignDeadlineWith(cfg.Planner, w, cfg.ReferenceSlots, stretch); err != nil {
				return err
			}
			if rel := w.RelativeDeadline(); rel < cfg.DeadlineFloor {
				w.Deadline = w.Release.Add(cfg.DeadlineFloor)
			}
		}
	default:
		return fmt.Errorf("workload: unknown deadline scheme %d", cfg.Scheme)
	}
	return nil
}

// sampleSizes draws the per-workflow job counts: SingleJob ones, the rest in
// [2, MaxJobs] summing to Jobs, with at least one workflow at MaxJobs.
func sampleSizes(rng *rand.Rand, cfg YahooConfig) ([]int, error) {
	multi := cfg.Workflows - cfg.SingleJob
	remaining := cfg.Jobs - cfg.SingleJob
	lo, hi := 2*multi, cfg.MaxJobs*multi
	if remaining < lo || remaining > hi {
		return nil, fmt.Errorf("workload: cannot place %d jobs into %d multi-job workflows of 2..%d",
			remaining, multi, cfg.MaxJobs)
	}
	sizes := make([]int, cfg.Workflows)
	for i := 0; i < cfg.SingleJob; i++ {
		sizes[i] = 1
	}
	// Start every multi-job workflow at 2 and sprinkle the remaining jobs,
	// seeding one workflow at MaxJobs so the published maximum is present.
	for i := cfg.SingleJob; i < cfg.Workflows; i++ {
		sizes[i] = 2
	}
	left := remaining - 2*multi
	if left >= cfg.MaxJobs-2 {
		sizes[cfg.SingleJob] = cfg.MaxJobs
		left -= cfg.MaxJobs - 2
	}
	for left > 0 {
		i := cfg.SingleJob + rng.Intn(multi)
		if sizes[i] < cfg.MaxJobs {
			sizes[i]++
			left--
		}
	}
	// Shuffle so single-job workflows are not clustered at the front.
	rng.Shuffle(len(sizes), func(i, j int) { sizes[i], sizes[j] = sizes[j], sizes[i] })
	return sizes, nil
}

// RandomDAG builds a workflow of size jobs drawn from gen, wired into a
// random DAG: each non-root job depends on one or two uniformly chosen
// earlier jobs. The deadline is left at +inf; use AssignDeadline.
func RandomDAG(rng *rand.Rand, gen *trace.Generator, name string, size int, release simtime.Time) (*workflow.Workflow, error) {
	if size <= 0 {
		return nil, fmt.Errorf("workload: workflow size %d", size)
	}
	b := workflow.NewBuilder(name)
	names := make([]string, size)
	for i := 0; i < size; i++ {
		names[i] = fmt.Sprintf("job-%02d", i)
		js := gen.Job()
		var after []string
		if i > 0 {
			// Production workflows are pipeline-shaped (Oozie chains of
			// extract -> transform -> aggregate stages), so bias edges
			// toward the immediately preceding job.
			switch r := rng.Float64(); {
			case r < 0.50: // extend the chain
				after = append(after, names[i-1])
			case r < 0.75: // one random earlier parent
				after = append(after, names[rng.Intn(i)])
			case r < 0.90 && i >= 2: // join of two distinct parents
				a, c := rng.Intn(i), rng.Intn(i)
				for c == a {
					c = rng.Intn(i)
				}
				after = append(after, names[a], names[c])
			default: // extra root
			}
		}
		b.Job(names[i], js.Maps, js.Reduces, js.MapTime, js.ReduceTime, after...)
	}
	return b.Build(release, simtime.MaxTime)
}

// AssignDeadline sets w's deadline to release + stretch * (the makespan of
// w running alone on slots slots under HLF order) — the best-effort span a
// client would estimate against the full cluster. stretch <= 1 yields an
// unmeetable-under-contention deadline; larger values add slack.
func AssignDeadline(w *workflow.Workflow, slots int, stretch float64) error {
	return AssignDeadlineWith(nil, w, slots, stretch)
}

// AssignDeadlineWith is AssignDeadline with the makespan estimate served by
// pl (nil falls back to a direct, uncached Algorithm 1 run). The two paths
// produce identical deadlines; pl only avoids re-simulating repeated shapes.
func AssignDeadlineWith(pl Estimator, w *workflow.Workflow, slots int, stretch float64) error {
	p, err := estimate(pl, w, slots)
	if err != nil {
		return fmt.Errorf("workload: assigning deadline for %q: %w", w.Name, err)
	}
	w.Deadline = w.Release.Add(time.Duration(stretch * float64(p.Makespan)))
	return nil
}

// estimate is the single-slot-pool HLF makespan estimate deadline assignment
// rests on, planner-cached when a planner is supplied.
func estimate(pl Estimator, w *workflow.Workflow, slots int) (*plan.Plan, error) {
	if pl != nil {
		return pl.Estimate(w, slots, priority.HLF{})
	}
	return plan.GenerateForPolicy(w, slots, priority.HLF{})
}

// Recur builds n instances of a recurring workflow: instance k is released
// at w.Release + k*period with its deadline shifted by the same amount, as
// Oozie's recurrence configuration would submit it. Instance names get a
// ".k" suffix.
func Recur(w *workflow.Workflow, n int, period time.Duration) []*workflow.Workflow {
	out := make([]*workflow.Workflow, 0, n)
	for k := 0; k < n; k++ {
		inst := w.Clone()
		inst.Name = fmt.Sprintf("%s.%d", w.Name, k+1)
		shift := time.Duration(k) * period
		inst.Release = w.Release.Add(shift)
		inst.Deadline = w.Deadline.Add(shift)
		out = append(out, inst)
	}
	return out
}

// MultiJob filters flows to those with more than one job — the paper removes
// single-job workflows from the Fig 8-10 evaluation "to even the bias".
func MultiJob(flows []*workflow.Workflow) []*workflow.Workflow {
	out := make([]*workflow.Workflow, 0, len(flows))
	for _, w := range flows {
		if len(w.Jobs) > 1 {
			out = append(out, w)
		}
	}
	return out
}
