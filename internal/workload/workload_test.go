package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/priority"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestFig7Shape(t *testing.T) {
	w := Fig7("fig7", 1.0, 0, simtime.FromSeconds(4800))
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(w.Jobs); got != 33 {
		t.Fatalf("jobs = %d, want 33 (the paper's demo topology size)", got)
	}
	// Structure: 3 roots (ingests), one sink (publish).
	if got := len(w.Roots()); got != 3 {
		t.Errorf("roots = %d, want 3", got)
	}
	deps := w.Dependents()
	sinks := 0
	for i := range w.Jobs {
		if len(deps[i]) == 0 {
			sinks++
		}
	}
	if sinks != 1 {
		t.Errorf("sinks = %d, want 1 (publish)", sinks)
	}
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	if maxLevel != 6 {
		t.Errorf("max level = %d, want 6 (seven stages)", maxLevel)
	}
}

func TestFig7Scale(t *testing.T) {
	small := Fig7("s", 1.0, 0, simtime.FromSeconds(4800))
	big := Fig7("b", 2.0, 0, simtime.FromSeconds(4800))
	cpS, err := small.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	cpB, err := big.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cpB != 2*cpS {
		t.Errorf("critical path did not scale: %v vs %v", cpS, cpB)
	}
	if small.TotalTasks() != big.TotalTasks() {
		t.Error("scale changed task counts")
	}
}

func TestYahooComposition(t *testing.T) {
	cfg := DefaultYahooConfig()
	flows, err := Yahoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 61 {
		t.Fatalf("workflows = %d, want 61", len(flows))
	}
	jobs, singles, maxJobs := 0, 0, 0
	for _, w := range flows {
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		jobs += len(w.Jobs)
		if len(w.Jobs) == 1 {
			singles++
		}
		if len(w.Jobs) > maxJobs {
			maxJobs = len(w.Jobs)
		}
		if w.Deadline <= w.Release {
			t.Fatalf("%s: deadline %v not after release %v", w.Name, w.Deadline, w.Release)
		}
		if w.Release.Duration() > cfg.ReleaseWindow {
			t.Fatalf("%s: release %v outside window %v", w.Name, w.Release, cfg.ReleaseWindow)
		}
	}
	if jobs != 180 {
		t.Errorf("total jobs = %d, want 180", jobs)
	}
	if singles != 15 {
		t.Errorf("single-job workflows = %d, want 15", singles)
	}
	if maxJobs != 12 {
		t.Errorf("largest workflow = %d jobs, want 12", maxJobs)
	}
}

func TestYahooDeterministic(t *testing.T) {
	a, err := Yahoo(DefaultYahooConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Yahoo(DefaultYahooConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Jobs) != len(b[i].Jobs) ||
			a[i].Release != b[i].Release || a[i].Deadline != b[i].Deadline {
			t.Fatalf("workflow %d differs across same-config builds", i)
		}
	}
	cfg := DefaultYahooConfig()
	cfg.Seed = 99
	c, err := Yahoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Release != c[i].Release || len(a[i].Jobs) != len(c[i].Jobs) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical populations")
	}
}

func TestYahooConfigErrors(t *testing.T) {
	bad := DefaultYahooConfig()
	bad.Jobs = 10 // 61 workflows cannot hold only 10 jobs
	if _, err := Yahoo(bad); err == nil {
		t.Error("inconsistent composition accepted")
	}
	bad = DefaultYahooConfig()
	bad.MaxJobs = 1
	if _, err := Yahoo(bad); err == nil {
		t.Error("MaxJobs=1 accepted")
	}
	bad = DefaultYahooConfig()
	bad.SingleJob = 62
	if _, err := Yahoo(bad); err == nil {
		t.Error("SingleJob > Workflows accepted")
	}
}

func TestMultiJobFilter(t *testing.T) {
	flows, err := Yahoo(DefaultYahooConfig())
	if err != nil {
		t.Fatal(err)
	}
	multi := MultiJob(flows)
	if len(multi) != 61-15 {
		t.Errorf("multi-job workflows = %d, want 46", len(multi))
	}
	for _, w := range multi {
		if len(w.Jobs) < 2 {
			t.Errorf("%s has %d jobs after filter", w.Name, len(w.Jobs))
		}
	}
}

func TestAssignDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := trace.NewGenerator(2)
	w, err := RandomDAG(rng, gen, "w", 6, simtime.FromSeconds(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignDeadline(w, 100, 2.0); err != nil {
		t.Fatal(err)
	}
	p, err := plan.GenerateForPolicy(w, 100, priority.HLF{})
	if err != nil {
		t.Fatal(err)
	}
	want := w.Release.Add(2 * p.Makespan)
	if w.Deadline != want {
		t.Errorf("Deadline = %v, want %v", w.Deadline, want)
	}
}

func TestRandomDAGErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := trace.NewGenerator(2)
	if _, err := RandomDAG(rng, gen, "w", 0, 0); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestRandomDAGConnectivity(t *testing.T) {
	// Non-root jobs should usually have parents; roots must exist.
	rng := rand.New(rand.NewSource(5))
	gen := trace.NewGenerator(6)
	withParents, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		w, err := RandomDAG(rng, gen, "w", 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Roots()) == 0 {
			t.Fatal("no roots")
		}
		for i := 1; i < len(w.Jobs); i++ {
			total++
			if len(w.Jobs[i].Prereqs) > 0 {
				withParents++
			}
		}
	}
	if frac := float64(withParents) / float64(total); frac < 0.7 {
		t.Errorf("fraction of non-root jobs with parents = %.2f, want >= 0.7", frac)
	}
}

func TestFig7SoloFeasibleOnPaperCluster(t *testing.T) {
	// The Fig 11 experiment gives the first workflow an 80-minute relative
	// deadline on 96 slots (64 map + 32 reduce). A Fig 7 workflow running
	// alone must fit comfortably, or the experiment is vacuous.
	w := Fig7("solo", 1.0, 0, simtime.Epoch.Add(80*time.Minute))
	full, err := plan.GenerateForPolicy(w, 96, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Makespan > 45*time.Minute {
		t.Errorf("solo best-effort makespan %v, want <= 45m to leave contention headroom", full.Makespan)
	}
	if full.Makespan < 15*time.Minute {
		t.Errorf("solo makespan %v suspiciously small; contention would never matter", full.Makespan)
	}
	// The capped plan must be feasible, with a strictly smaller cap whose
	// makespan still fits inside the 80-minute deadline.
	capped, err := plan.GenerateCapped(w, 96, priority.LPF{})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Feasible {
		t.Fatalf("capped plan infeasible: makespan %v", capped.Makespan)
	}
	if capped.Cap >= 96 {
		t.Errorf("capped plan cap = %d, want < 96", capped.Cap)
	}
	if capped.Makespan > 80*time.Minute {
		t.Errorf("capped makespan %v exceeds the deadline", capped.Makespan)
	}
}

func TestSLASchemeCohorts(t *testing.T) {
	flows, err := Yahoo(DefaultYahooConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two deadline classes among multi-job workflows, 3x apart; single-job
	// workflows always take the loose deadline.
	deadlines := map[simtime.Time]int{}
	for _, w := range flows {
		deadlines[w.Deadline]++
	}
	if len(deadlines) != 2 {
		t.Fatalf("distinct deadlines = %d, want 2 (tight + loose)", len(deadlines))
	}
	var tight, loose simtime.Time
	for d := range deadlines {
		if tight == 0 || d < tight {
			tight = d
		}
		if d > loose {
			loose = d
		}
	}
	if loose != simtime.Time(3*int64(tight)) {
		t.Errorf("loose %v != 3x tight %v", loose, tight)
	}
	for _, w := range flows {
		if len(w.Jobs) == 1 && w.Deadline != loose {
			t.Errorf("single-job %s in the tight cohort", w.Name)
		}
	}
	// Every tight-cohort workflow is individually feasible on the
	// reference cluster (the SLA exemption rule).
	cfg := DefaultYahooConfig()
	for _, w := range flows {
		if w.Deadline != tight {
			continue
		}
		p, err := plan.GenerateForPolicy(w, cfg.ReferenceSlots, priority.HLF{})
		if err != nil {
			t.Fatal(err)
		}
		if w.Release.Add(p.Makespan) > w.Deadline {
			t.Errorf("%s structurally infeasible yet in the tight cohort", w.Name)
		}
	}
}

func TestSLASchemeErrors(t *testing.T) {
	bad := DefaultYahooConfig()
	bad.TightAlpha = 0
	if _, err := Yahoo(bad); err == nil {
		t.Error("TightAlpha 0 accepted")
	}
	bad = DefaultYahooConfig()
	bad.LooseFactor = 0.5
	if _, err := Yahoo(bad); err == nil {
		t.Error("LooseFactor < 1 accepted")
	}
	bad = DefaultYahooConfig()
	bad.Scheme = DeadlineScheme(99)
	if _, err := Yahoo(bad); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestStretchSchemeStillSupported(t *testing.T) {
	cfg := DefaultYahooConfig()
	cfg.Scheme = DeadlineStretch
	flows, err := Yahoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[simtime.Time]bool{}
	for _, w := range flows {
		if w.Deadline <= w.Release {
			t.Fatalf("%s: deadline before release", w.Name)
		}
		if rel := w.RelativeDeadline(); rel < cfg.DeadlineFloor {
			t.Errorf("%s: relative deadline %v below floor", w.Name, rel)
		}
		distinct[w.Deadline] = true
	}
	if len(distinct) < 20 {
		t.Errorf("stretch scheme produced only %d distinct deadlines", len(distinct))
	}
}
