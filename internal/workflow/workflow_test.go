package workflow

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

// diamond builds the classic 4-job diamond: a -> {b, c} -> d.
func diamond(t *testing.T) *Workflow {
	t.Helper()
	return NewBuilder("diamond").
		Job("a", 4, 2, 10*time.Second, 20*time.Second).
		Job("b", 2, 1, 10*time.Second, 30*time.Second, "a").
		Job("c", 6, 3, 5*time.Second, 15*time.Second, "a").
		Job("d", 1, 1, 10*time.Second, 10*time.Second, "b", "c").
		MustBuild(simtime.Epoch, simtime.FromSeconds(3600))
}

func TestValidateOK(t *testing.T) {
	w := diamond(t)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := func() *Workflow { return diamond(t) }
	tests := []struct {
		name   string
		mutate func(*Workflow)
		want   string
	}{
		{"empty", func(w *Workflow) { w.Jobs = nil }, "no jobs"},
		{"badID", func(w *Workflow) { w.Jobs[1].ID = 5 }, "has ID"},
		{"emptyName", func(w *Workflow) { w.Jobs[0].Name = "" }, "empty name"},
		{"dupName", func(w *Workflow) { w.Jobs[1].Name = "a" }, "duplicate job name"},
		{"negMaps", func(w *Workflow) { w.Jobs[0].Maps = -1 }, "negative task count"},
		{"noTasks", func(w *Workflow) { w.Jobs[0].Maps, w.Jobs[0].Reduces = 0, 0 }, "no tasks"},
		{"zeroMapTime", func(w *Workflow) { w.Jobs[0].MapTime = 0 }, "map time"},
		{"zeroReduceTime", func(w *Workflow) { w.Jobs[0].ReduceTime = 0 }, "reduce time"},
		{"prereqRange", func(w *Workflow) { w.Jobs[1].Prereqs = []JobID{9} }, "out of range"},
		{"selfDep", func(w *Workflow) { w.Jobs[1].Prereqs = []JobID{1} }, "depends on itself"},
		{"dupPrereq", func(w *Workflow) { w.Jobs[3].Prereqs = []JobID{1, 1} }, "twice"},
		{"deadline", func(w *Workflow) { w.Deadline = w.Release }, "not after release"},
		{"cycle", func(w *Workflow) { w.Jobs[0].Prereqs = []JobID{3} }, "cycle"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := base()
			tc.mutate(w)
			err := w.Validate()
			if err == nil {
				t.Fatal("Validate returned nil, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTopoOrder(t *testing.T) {
	w := diamond(t)
	order, err := w.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[JobID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := range w.Jobs {
		for _, p := range w.Jobs[i].Prereqs {
			if pos[p] >= pos[JobID(i)] {
				t.Errorf("prereq %d not before job %d in %v", p, i, order)
			}
		}
	}
	// Deterministic: a(0), b(1), c(2), d(3).
	want := []JobID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestLevels(t *testing.T) {
	w := diamond(t)
	levels, err := w.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	want := []int{2, 1, 1, 0}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
}

func TestLongestPathsAndCriticalPath(t *testing.T) {
	w := diamond(t)
	paths, err := w.LongestPaths()
	if err != nil {
		t.Fatalf("LongestPaths: %v", err)
	}
	// Job lengths: a=30s, b=40s, c=20s, d=20s.
	want := []time.Duration{90 * time.Second, 60 * time.Second, 40 * time.Second, 20 * time.Second}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("path[%d] = %v, want %v", i, paths[i], want[i])
		}
	}
	cp, err := w.CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if cp != 90*time.Second {
		t.Errorf("CriticalPath = %v, want 90s", cp)
	}
}

func TestSerialWorkAndTotals(t *testing.T) {
	w := diamond(t)
	// a: 4*10+2*20=80, b: 2*10+1*30=50, c: 6*5+3*15=75, d: 10+10=20 → 225s.
	if got, want := w.SerialWork(), 225*time.Second; got != want {
		t.Errorf("SerialWork = %v, want %v", got, want)
	}
	if got, want := w.TotalTasks(), 20; got != want {
		t.Errorf("TotalTasks = %d, want %d", got, want)
	}
	if got := w.RelativeDeadline(); got != time.Hour {
		t.Errorf("RelativeDeadline = %v, want 1h", got)
	}
}

func TestRootsAndDependents(t *testing.T) {
	w := diamond(t)
	roots := w.Roots()
	if len(roots) != 1 || roots[0] != 0 {
		t.Errorf("Roots = %v, want [0]", roots)
	}
	deps := w.Dependents()
	if len(deps[0]) != 2 || deps[0][0] != 1 || deps[0][1] != 2 {
		t.Errorf("Dependents[0] = %v, want [1 2]", deps[0])
	}
	if len(deps[3]) != 0 {
		t.Errorf("Dependents[3] = %v, want empty", deps[3])
	}
}

func TestJobLength(t *testing.T) {
	j := Job{Maps: 3, Reduces: 2, MapTime: 10 * time.Second, ReduceTime: 20 * time.Second}
	if got := j.Length(); got != 30*time.Second {
		t.Errorf("Length = %v, want 30s", got)
	}
	mapOnly := Job{Maps: 3, MapTime: 10 * time.Second, ReduceTime: 99 * time.Second}
	if got := mapOnly.Length(); got != 10*time.Second {
		t.Errorf("map-only Length = %v, want 10s", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	w := diamond(t)
	c := w.Clone()
	c.Jobs[1].Prereqs[0] = 3
	c.Deadline = 0
	if w.Jobs[1].Prereqs[0] != 0 {
		t.Error("mutating clone's prereqs affected original")
	}
	if w.Deadline == 0 {
		t.Error("mutating clone's deadline affected original")
	}
}

func TestJobByName(t *testing.T) {
	w := diamond(t)
	if j := w.JobByName("c"); j == nil || j.ID != 2 {
		t.Errorf("JobByName(c) = %+v, want job 2", j)
	}
	if j := w.JobByName("zzz"); j != nil {
		t.Errorf("JobByName(zzz) = %+v, want nil", j)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("w").Job("a", 1, 1, time.Second, time.Second).
		Job("a", 1, 1, time.Second, time.Second).
		Build(0, 100); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate job: err = %v", err)
	}
	if _, err := NewBuilder("w").Job("b", 1, 1, time.Second, time.Second, "missing").
		Build(0, 100); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("unknown dep: err = %v", err)
	}
}

// TestRandomDAGsTopoValid generates random DAGs and verifies topological
// order and level invariants hold for each.
func TestRandomDAGsTopoValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder("rand")
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = "j" + string(rune('A'+i%26)) + string(rune('0'+i/26))
			var after []string
			for k := 0; k < i; k++ {
				if rng.Intn(4) == 0 {
					after = append(after, names[k])
				}
			}
			b.Job(names[i], 1+rng.Intn(10), rng.Intn(5), time.Second, time.Second, after...)
		}
		w, err := b.Build(0, simtime.FromSeconds(1e6))
		if err != nil {
			// Jobs with 0 reduces need ReduceTime only if Reduces>0; builder
			// always sets it, so any error is a real bug.
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		order, err := w.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: TopoOrder: %v", trial, err)
		}
		pos := make(map[JobID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		levels, err := w.Levels()
		if err != nil {
			t.Fatalf("trial %d: Levels: %v", trial, err)
		}
		deps := w.Dependents()
		for i := range w.Jobs {
			for _, p := range w.Jobs[i].Prereqs {
				if pos[p] >= pos[JobID(i)] {
					t.Fatalf("trial %d: topo order violated", trial)
				}
			}
			for _, d := range deps[i] {
				if levels[i] <= levels[d] {
					t.Fatalf("trial %d: level of job %d (%d) not above dependent %d (%d)",
						trial, i, levels[i], d, levels[d])
				}
			}
		}
	}
}
