// Package workflow defines the WOHA workflow model from Section II of the
// paper: a workflow W_i is a set of interdependent Map-Reduce jobs ("wjobs")
// J_i with prerequisite sets P_i, a submission (release) time S_i, and a
// deadline D_i. Job J_i^j has m_i^j map tasks taking M_i^j each and r_i^j
// reduce tasks taking R_i^j each.
//
// The package also provides the DAG utilities every other component builds
// on: validation (including cycle detection), dependents, levels (for HLF),
// longest paths (for LPF), topological order, and critical-path bounds.
package workflow

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simtime"
)

// JobID identifies a job within its workflow. IDs are dense indices into
// Workflow.Jobs: job k has ID k.
type JobID int

// Job is one Map-Reduce job inside a workflow (a "wjob").
type Job struct {
	// ID is the job's index in Workflow.Jobs.
	ID JobID
	// Name is a human-readable unique name within the workflow.
	Name string
	// Maps is the number of map tasks (m_i^j). May be zero for a
	// reduce-only job.
	Maps int
	// Reduces is the number of reduce tasks (r_i^j). May be zero for a
	// map-only job.
	Reduces int
	// MapTime is the estimated execution time of one map task (M_i^j).
	MapTime time.Duration
	// ReduceTime is the estimated execution time of one reduce task
	// (R_i^j).
	ReduceTime time.Duration
	// Prereqs lists the jobs that must finish before this job may start
	// (P_i^j). Order is not significant; entries are unique.
	Prereqs []JobID

	// Input and Output record the dataset paths from the workflow
	// configuration. They are informational after prerequisite inference
	// and may be empty for programmatically built workflows.
	Inputs []string
	Output string
}

// Tasks returns the total number of tasks in the job.
func (j *Job) Tasks() int { return j.Maps + j.Reduces }

// Length returns the job's serial length estimate used by Longest Path
// First: the sum of one map task's and one reduce task's execution times
// (Section V-C of the paper).
func (j *Job) Length() time.Duration {
	var d time.Duration
	if j.Maps > 0 {
		d += j.MapTime
	}
	if j.Reduces > 0 {
		d += j.ReduceTime
	}
	return d
}

// Workflow is a deadline-constrained DAG of Map-Reduce jobs:
// W_i = {J_i, P_i, S_i, D_i}.
type Workflow struct {
	// Name identifies the workflow; unique within a run by convention.
	Name string
	// Jobs holds the wjobs; Jobs[k].ID == k.
	Jobs []Job
	// Release is the submission time S_i.
	Release simtime.Time
	// Deadline is the absolute deadline D_i.
	Deadline simtime.Time
	// Tenant names the submitting tenant for multi-tenant admission
	// policies (rate limits, quota shares, priority tiers). Empty means
	// untenanted: the admission front door skips the per-tenant stages.
	Tenant string

	// der caches structure derived from the immutable job table
	// (validation verdict, root set, dependents CSR), built once on first
	// use. Workflows are shared across simulator runs and cells, so the
	// cache keeps per-completion dependent walks and per-Submit validation
	// allocation-free after the first touch.
	der derivedDAG
}

// derivedDAG is the once-built read-only cache behind Validate, RootIDs,
// and DependentsOf.
type derivedDAG struct {
	once     sync.Once
	validate error
	roots    []JobID
	// depIdx/depList form a CSR adjacency: job j's dependents are
	// depList[depIdx[j]:depIdx[j+1]], in ascending ID order (the same
	// order Dependents builds).
	depIdx  []int32
	depList []JobID
}

// derive builds the cache on first use. The build never consults the cache
// itself (Dependents and validate compute from the job table directly), so
// there is no recursion through the Once.
func (w *Workflow) derive() *derivedDAG {
	w.der.once.Do(func() {
		d := &w.der
		d.validate = w.validate()
		for i := range w.Jobs {
			if len(w.Jobs[i].Prereqs) == 0 {
				d.roots = append(d.roots, JobID(i))
			}
		}
		n := len(w.Jobs)
		d.depIdx = make([]int32, n+1)
		for i := range w.Jobs {
			for _, p := range w.Jobs[i].Prereqs {
				d.depIdx[p+1]++
			}
		}
		for j := 0; j < n; j++ {
			d.depIdx[j+1] += d.depIdx[j]
		}
		d.depList = make([]JobID, d.depIdx[n])
		fill := make([]int32, n)
		for i := range w.Jobs {
			for _, p := range w.Jobs[i].Prereqs {
				d.depList[d.depIdx[p]+fill[p]] = JobID(i)
				fill[p]++
			}
		}
	})
	return &w.der
}

// RootIDs returns the jobs with no prerequisites, cached. Callers must not
// mutate the returned slice; Roots returns a fresh copy instead.
func (w *Workflow) RootIDs() []JobID { return w.derive().roots }

// DependentsOf returns the IDs of jobs that list j as a prerequisite, in
// ascending ID order, cached (one CSR sub-slice — no allocation). Callers
// must not mutate the returned slice.
func (w *Workflow) DependentsOf(j JobID) []JobID {
	d := w.derive()
	return d.depList[d.depIdx[j]:d.depIdx[j+1]]
}

// RelativeDeadline returns D_i - S_i, the time budget the workflow has from
// submission to deadline.
func (w *Workflow) RelativeDeadline() time.Duration {
	return w.Deadline.Sub(w.Release)
}

// TotalTasks returns the number of tasks summed over all jobs.
func (w *Workflow) TotalTasks() int {
	n := 0
	for i := range w.Jobs {
		n += w.Jobs[i].Tasks()
	}
	return n
}

// Roots returns the IDs of initially active jobs — those with no
// prerequisites.
func (w *Workflow) Roots() []JobID {
	var roots []JobID
	for i := range w.Jobs {
		if len(w.Jobs[i].Prereqs) == 0 {
			roots = append(roots, JobID(i))
		}
	}
	return roots
}

// Dependents returns, for each job, the IDs of jobs that list it as a
// prerequisite (the set D_i^j from Section IV-A).
func (w *Workflow) Dependents() [][]JobID {
	deps := make([][]JobID, len(w.Jobs))
	for i := range w.Jobs {
		for _, p := range w.Jobs[i].Prereqs {
			deps[p] = append(deps[p], JobID(i))
		}
	}
	return deps
}

// Validation errors.
var (
	ErrEmptyWorkflow = errors.New("workflow: no jobs")
	ErrCycle         = errors.New("workflow: dependency cycle")
)

// Validated returns the validation verdict computed on the workflow's first
// derived-DAG use and cached. Hot paths that re-submit shared immutable
// specs (the pooled simulator, the live trackers) use this; Validate below
// re-checks from scratch for callers that mutate between calls.
func (w *Workflow) Validated() error { return w.derive().validate }

// Validate checks structural invariants: at least one job, consistent IDs,
// unique non-empty names, in-range unique prerequisites, non-negative task
// counts with positive durations where counts are positive, deadline after
// release, and acyclicity. It returns the first problem found.
func (w *Workflow) Validate() error { return w.validate() }

// validate is the always-recomputed check behind Validate and the cached
// verdict behind Validated.
func (w *Workflow) validate() error {
	if len(w.Jobs) == 0 {
		return ErrEmptyWorkflow
	}
	names := make(map[string]bool, len(w.Jobs))
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if j.ID != JobID(i) {
			return fmt.Errorf("workflow %q: job %d has ID %d, want %d", w.Name, i, j.ID, i)
		}
		if j.Name == "" {
			return fmt.Errorf("workflow %q: job %d has empty name", w.Name, i)
		}
		if names[j.Name] {
			return fmt.Errorf("workflow %q: duplicate job name %q", w.Name, j.Name)
		}
		names[j.Name] = true
		if j.Maps < 0 || j.Reduces < 0 {
			return fmt.Errorf("workflow %q: job %q has negative task count", w.Name, j.Name)
		}
		if j.Maps == 0 && j.Reduces == 0 {
			return fmt.Errorf("workflow %q: job %q has no tasks", w.Name, j.Name)
		}
		if j.Maps > 0 && j.MapTime <= 0 {
			return fmt.Errorf("workflow %q: job %q has %d maps but map time %v", w.Name, j.Name, j.Maps, j.MapTime)
		}
		if j.Reduces > 0 && j.ReduceTime <= 0 {
			return fmt.Errorf("workflow %q: job %q has %d reduces but reduce time %v", w.Name, j.Name, j.Reduces, j.ReduceTime)
		}
		seen := make(map[JobID]bool, len(j.Prereqs))
		for _, p := range j.Prereqs {
			if p < 0 || int(p) >= len(w.Jobs) {
				return fmt.Errorf("workflow %q: job %q prereq %d out of range", w.Name, j.Name, p)
			}
			if p == JobID(i) {
				return fmt.Errorf("workflow %q: job %q depends on itself", w.Name, j.Name)
			}
			if seen[p] {
				return fmt.Errorf("workflow %q: job %q lists prereq %d twice", w.Name, j.Name, p)
			}
			seen[p] = true
		}
	}
	if w.Deadline <= w.Release {
		return fmt.Errorf("workflow %q: deadline %v not after release %v", w.Name, w.Deadline, w.Release)
	}
	if _, err := w.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering of job IDs (prerequisites before
// dependents), or ErrCycle if the dependency graph has a cycle. Among jobs
// that become ready simultaneously, lower IDs come first, so the order is
// deterministic.
func (w *Workflow) TopoOrder() ([]JobID, error) {
	n := len(w.Jobs)
	indeg := make([]int, n)
	for i := range w.Jobs {
		indeg[i] = len(w.Jobs[i].Prereqs)
	}
	deps := w.Dependents()
	// Deterministic Kahn: scan for the lowest-ID ready job. O(n^2) worst
	// case but workflows have at most hundreds of jobs.
	order := make([]JobID, 0, n)
	done := make([]bool, n)
	for len(order) < n {
		found := false
		for i := 0; i < n; i++ {
			if !done[i] && indeg[i] == 0 {
				done[i] = true
				order = append(order, JobID(i))
				for _, d := range deps[i] {
					indeg[d]--
				}
				found = true
				break
			}
		}
		if !found {
			return nil, ErrCycle
		}
	}
	return order, nil
}

// Levels computes the HLF level of every job: jobs with no dependents are at
// level 0, and a job's level is one more than the maximum level among its
// dependents (Section V-C). The workflow must be acyclic.
func (w *Workflow) Levels() ([]int, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	deps := w.Dependents()
	levels := make([]int, len(w.Jobs))
	// Walk in reverse topological order so dependents are computed first.
	for i := len(order) - 1; i >= 0; i-- {
		j := order[i]
		lvl := 0
		for _, d := range deps[j] {
			if levels[d]+1 > lvl {
				lvl = levels[d] + 1
			}
		}
		levels[j] = lvl
	}
	return levels, nil
}

// LongestPaths computes, for each job, the length of the longest downstream
// chain starting at (and including) that job, where a job's contribution is
// Job.Length. This is the LPF priority key.
func (w *Workflow) LongestPaths() ([]time.Duration, error) {
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	deps := w.Dependents()
	paths := make([]time.Duration, len(w.Jobs))
	for i := len(order) - 1; i >= 0; i-- {
		j := order[i]
		var best time.Duration
		for _, d := range deps[j] {
			if paths[d] > best {
				best = paths[d]
			}
		}
		paths[j] = best + w.Jobs[j].Length()
	}
	return paths, nil
}

// CriticalPath returns the length of the longest prerequisite chain in the
// workflow under the Job.Length serial estimate. No schedule, regardless of
// slot count, can finish the workflow faster.
func (w *Workflow) CriticalPath() (time.Duration, error) {
	paths, err := w.LongestPaths()
	if err != nil {
		return 0, err
	}
	var best time.Duration
	for _, p := range paths {
		if p > best {
			best = p
		}
	}
	return best, nil
}

// SerialWork returns the total serial work in the workflow if every task ran
// back to back: sum over jobs of maps*MapTime + reduces*ReduceTime. Together
// with CriticalPath it brackets the achievable makespan.
func (w *Workflow) SerialWork() time.Duration {
	var total time.Duration
	for i := range w.Jobs {
		j := &w.Jobs[i]
		total += time.Duration(j.Maps)*j.MapTime + time.Duration(j.Reduces)*j.ReduceTime
	}
	return total
}

// Clone returns a deep copy of w with a fresh (unbuilt) derived-DAG cache.
// Mutate the clone before its first Validate/RootIDs/DependentsOf call — the
// cache snapshots the structure on first use.
//
// Simulators mutate per-run state derived
// from workflows but never the workflow itself; Clone exists for callers that
// want to perturb a workflow (e.g. deadline sweeps) without aliasing.
func (w *Workflow) Clone() *Workflow {
	c := &Workflow{
		Name:     w.Name,
		Jobs:     make([]Job, len(w.Jobs)),
		Release:  w.Release,
		Deadline: w.Deadline,
		Tenant:   w.Tenant,
	}
	copy(c.Jobs, w.Jobs)
	for i := range c.Jobs {
		c.Jobs[i].Prereqs = append([]JobID(nil), w.Jobs[i].Prereqs...)
		c.Jobs[i].Inputs = append([]string(nil), w.Jobs[i].Inputs...)
	}
	return c
}

// JobByName returns the job with the given name, or nil if absent.
func (w *Workflow) JobByName(name string) *Job {
	for i := range w.Jobs {
		if w.Jobs[i].Name == name {
			return &w.Jobs[i]
		}
	}
	return nil
}
