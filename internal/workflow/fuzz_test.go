package workflow

import (
	"strings"
	"testing"
)

// FuzzParseXML checks the configuration parser never panics and that every
// accepted document yields a valid, round-trippable workflow.
func FuzzParseXML(f *testing.F) {
	f.Add(sampleXML)
	f.Add(`<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="1s"/></workflow>`)
	f.Add(`<workflow name="w" release="5s" deadline="2h">
  <job name="a" maps="3" reduces="1" map-time="10s" reduce-time="30s"><output>/o</output></job>
  <job name="b" maps="2" map-time="5s"><input>/o/part</input></job>
</workflow>`)
	f.Add(`<workflow`)
	f.Add(``)
	f.Add(`<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="1s"><after>a</after></job></workflow>`)

	f.Fuzz(func(t *testing.T, doc string) {
		w, err := ParseXMLString(doc)
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted workflow fails validation: %v\ninput: %q", err, doc)
		}
		out, err := MarshalXML(w)
		if err != nil {
			t.Fatalf("accepted workflow fails to marshal: %v", err)
		}
		back, err := ParseXML(strings.NewReader(string(out)))
		if err != nil {
			t.Fatalf("marshaled workflow fails to reparse: %v\ndoc:\n%s", err, out)
		}
		if len(back.Jobs) != len(w.Jobs) || back.Name != w.Name {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q",
				len(back.Jobs), back.Name, len(w.Jobs), w.Name)
		}
	})
}
