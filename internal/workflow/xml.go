package workflow

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/simtime"
)

// The XML configuration format mirrors Section III-B of the paper: users
// submit a workflow as an XML file naming each wjob's jar, main class, input
// datasets, output dataset, and the workflow deadline. WOHA "constructs
// prerequisite set P_i based on inputs and outputs of each wjob": job B
// depends on job A when one of B's inputs is A's output (or a path beneath
// it, since Map-Reduce outputs are directories). An explicit <after> element
// adds dependencies the dataset paths don't capture.
//
// Example:
//
//	<workflow name="ad-stats" release="0s" deadline="80m">
//	  <job name="extract" maps="120" reduces="12" map-time="45s" reduce-time="180s">
//	    <jar>/apps/extract.jar</jar>
//	    <main-class>com.example.Extract</main-class>
//	    <input>/data/raw/logs</input>
//	    <output>/data/stage/extract</output>
//	  </job>
//	  <job name="aggregate" maps="40" reduces="4" map-time="30s" reduce-time="240s">
//	    <input>/data/stage/extract</input>
//	    <output>/data/out/aggregate</output>
//	  </job>
//	</workflow>

type xmlWorkflow struct {
	XMLName  xml.Name `xml:"workflow"`
	Name     string   `xml:"name,attr"`
	Release  string   `xml:"release,attr"`
	Deadline string   `xml:"deadline,attr"`
	Jobs     []xmlJob `xml:"job"`
}

type xmlJob struct {
	Name       string   `xml:"name,attr"`
	Maps       int      `xml:"maps,attr"`
	Reduces    int      `xml:"reduces,attr"`
	MapTime    string   `xml:"map-time,attr"`
	ReduceTime string   `xml:"reduce-time,attr"`
	Jar        string   `xml:"jar,omitempty"`
	MainClass  string   `xml:"main-class,omitempty"`
	Inputs     []string `xml:"input"`
	Output     string   `xml:"output,omitempty"`
	After      []string `xml:"after"`
}

// ParseXML reads a workflow configuration document from r, infers
// prerequisites from dataset paths and <after> elements, and validates the
// result. The deadline attribute is relative to the release attribute
// (which defaults to the simulation epoch).
func ParseXML(r io.Reader) (*Workflow, error) {
	var doc xmlWorkflow
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("workflow: parsing XML: %w", err)
	}
	return fromXML(&doc)
}

// ParseXMLString is ParseXML over an in-memory document.
func ParseXMLString(s string) (*Workflow, error) {
	return ParseXML(strings.NewReader(s))
}

func fromXML(doc *xmlWorkflow) (*Workflow, error) {
	if doc.Name == "" {
		return nil, fmt.Errorf("workflow: missing name attribute")
	}
	release := simtime.Epoch
	if doc.Release != "" {
		d, err := time.ParseDuration(doc.Release)
		if err != nil {
			return nil, fmt.Errorf("workflow %q: bad release %q: %w", doc.Name, doc.Release, err)
		}
		release = simtime.Epoch.Add(d)
	}
	if doc.Deadline == "" {
		return nil, fmt.Errorf("workflow %q: missing deadline attribute", doc.Name)
	}
	rel, err := time.ParseDuration(doc.Deadline)
	if err != nil {
		return nil, fmt.Errorf("workflow %q: bad deadline %q: %w", doc.Name, doc.Deadline, err)
	}

	w := &Workflow{
		Name:     doc.Name,
		Jobs:     make([]Job, 0, len(doc.Jobs)),
		Release:  release,
		Deadline: release.Add(rel),
	}
	byName := make(map[string]JobID, len(doc.Jobs))
	byOutput := make(map[string]JobID, len(doc.Jobs))
	for i, xj := range doc.Jobs {
		if xj.Name == "" {
			return nil, fmt.Errorf("workflow %q: job %d missing name", doc.Name, i)
		}
		if _, dup := byName[xj.Name]; dup {
			return nil, fmt.Errorf("workflow %q: duplicate job name %q", doc.Name, xj.Name)
		}
		j := Job{
			ID:      JobID(i),
			Name:    xj.Name,
			Maps:    xj.Maps,
			Reduces: xj.Reduces,
			Inputs:  xj.Inputs,
			Output:  xj.Output,
		}
		if xj.MapTime != "" {
			if j.MapTime, err = time.ParseDuration(xj.MapTime); err != nil {
				return nil, fmt.Errorf("workflow %q: job %q map-time: %w", doc.Name, xj.Name, err)
			}
		}
		if xj.ReduceTime != "" {
			if j.ReduceTime, err = time.ParseDuration(xj.ReduceTime); err != nil {
				return nil, fmt.Errorf("workflow %q: job %q reduce-time: %w", doc.Name, xj.Name, err)
			}
		}
		byName[xj.Name] = j.ID
		if xj.Output != "" {
			if prev, dup := byOutput[xj.Output]; dup {
				return nil, fmt.Errorf("workflow %q: jobs %q and %q share output %q",
					doc.Name, doc.Jobs[prev].Name, xj.Name, xj.Output)
			}
			byOutput[xj.Output] = j.ID
		}
		w.Jobs = append(w.Jobs, j)
	}

	// Prerequisite inference: dataset paths first, then explicit <after>.
	for i, xj := range doc.Jobs {
		seen := make(map[JobID]bool)
		addPrereq := func(p JobID) {
			if p != JobID(i) && !seen[p] {
				seen[p] = true
				w.Jobs[i].Prereqs = append(w.Jobs[i].Prereqs, p)
			}
		}
		for _, in := range xj.Inputs {
			for out, producer := range byOutput {
				if pathWithin(in, out) {
					addPrereq(producer)
				}
			}
		}
		for _, name := range xj.After {
			p, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("workflow %q: job %q lists unknown prerequisite %q", doc.Name, xj.Name, name)
			}
			addPrereq(p)
		}
		// Deterministic prerequisite order regardless of map iteration.
		sortJobIDs(w.Jobs[i].Prereqs)
	}

	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// pathWithin reports whether path p equals dir or lies beneath it.
func pathWithin(p, dir string) bool {
	if p == dir {
		return true
	}
	dir = strings.TrimSuffix(dir, "/")
	return strings.HasPrefix(p, dir+"/")
}

func sortJobIDs(ids []JobID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// MarshalXML renders w in the configuration format accepted by ParseXML.
// Prerequisites that are not captured by dataset paths are emitted as
// explicit <after> elements, so ParseXML(MarshalXML(w)) reproduces w's DAG.
func MarshalXML(w *Workflow) ([]byte, error) {
	doc := xmlWorkflow{
		Name:     w.Name,
		Release:  w.Release.Duration().String(),
		Deadline: w.RelativeDeadline().String(),
	}
	for i := range w.Jobs {
		j := &w.Jobs[i]
		xj := xmlJob{
			Name:    j.Name,
			Maps:    j.Maps,
			Reduces: j.Reduces,
			Inputs:  j.Inputs,
			Output:  j.Output,
		}
		if j.Maps > 0 {
			xj.MapTime = j.MapTime.String()
		}
		if j.Reduces > 0 {
			xj.ReduceTime = j.ReduceTime.String()
		}
		// Emit every prerequisite explicitly: it is redundant where the
		// dataset paths already imply the edge, but keeps the round trip
		// exact even for workflows without path metadata.
		for _, p := range j.Prereqs {
			xj.After = append(xj.After, w.Jobs[p].Name)
		}
		doc.Jobs = append(doc.Jobs, xj)
	}
	out, err := xml.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workflow: marshaling XML: %w", err)
	}
	return append(out, '\n'), nil
}
