package workflow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

const sampleXML = `
<workflow name="ad-stats" release="5m" deadline="80m">
  <job name="extract" maps="120" reduces="12" map-time="45s" reduce-time="3m">
    <jar>/apps/extract.jar</jar>
    <main-class>com.example.Extract</main-class>
    <input>/data/raw/logs</input>
    <output>/data/stage/extract</output>
  </job>
  <job name="sessionize" maps="60" reduces="6" map-time="30s" reduce-time="2m">
    <input>/data/stage/extract/part-00000</input>
    <output>/data/stage/sessions</output>
  </job>
  <job name="aggregate" maps="40" reduces="4" map-time="30s" reduce-time="4m">
    <input>/data/stage/sessions</input>
    <input>/data/dim/campaigns</input>
    <output>/data/out/aggregate</output>
    <after>extract</after>
  </job>
</workflow>`

func TestParseXML(t *testing.T) {
	w, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatalf("ParseXMLString: %v", err)
	}
	if w.Name != "ad-stats" {
		t.Errorf("Name = %q", w.Name)
	}
	if got := w.Release; got != simtime.Epoch.Add(5*time.Minute) {
		t.Errorf("Release = %v, want 5m", got)
	}
	if got := w.RelativeDeadline(); got != 80*time.Minute {
		t.Errorf("RelativeDeadline = %v, want 80m", got)
	}
	if len(w.Jobs) != 3 {
		t.Fatalf("len(Jobs) = %d, want 3", len(w.Jobs))
	}

	ex := w.JobByName("extract")
	if ex.Maps != 120 || ex.Reduces != 12 || ex.MapTime != 45*time.Second || ex.ReduceTime != 3*time.Minute {
		t.Errorf("extract parsed as %+v", ex)
	}
	if len(ex.Prereqs) != 0 {
		t.Errorf("extract prereqs = %v, want none", ex.Prereqs)
	}

	// sessionize reads a file *beneath* extract's output directory.
	se := w.JobByName("sessionize")
	if len(se.Prereqs) != 1 || se.Prereqs[0] != ex.ID {
		t.Errorf("sessionize prereqs = %v, want [extract]", se.Prereqs)
	}

	// aggregate depends on sessionize via path and on extract via <after>.
	ag := w.JobByName("aggregate")
	if len(ag.Prereqs) != 2 || ag.Prereqs[0] != ex.ID || ag.Prereqs[1] != se.ID {
		t.Errorf("aggregate prereqs = %v, want [extract sessionize]", ag.Prereqs)
	}
}

func TestParseXMLErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
		want string
	}{
		{"notXML", "not xml at all", "parsing XML"},
		{"noName", `<workflow deadline="1m"><job name="a" maps="1" map-time="1s"><output>/o</output></job></workflow>`, "missing name"},
		{"noDeadline", `<workflow name="w"><job name="a" maps="1" map-time="1s"/></workflow>`, "missing deadline"},
		{"badDeadline", `<workflow name="w" deadline="eleven"><job name="a" maps="1" map-time="1s"/></workflow>`, "bad deadline"},
		{"badRelease", `<workflow name="w" release="x" deadline="1m"><job name="a" maps="1" map-time="1s"/></workflow>`, "bad release"},
		{"jobNoName", `<workflow name="w" deadline="1m"><job maps="1" map-time="1s"/></workflow>`, "missing name"},
		{"dupJob", `<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="1s"/><job name="a" maps="1" map-time="1s"/></workflow>`, "duplicate job name"},
		{"badMapTime", `<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="soon"/></workflow>`, "map-time"},
		{"badReduceTime", `<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="1s" reduces="1" reduce-time="soon"/></workflow>`, "reduce-time"},
		{"unknownAfter", `<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="1s"><after>ghost</after></job></workflow>`, "unknown prerequisite"},
		{"sharedOutput", `<workflow name="w" deadline="1m"><job name="a" maps="1" map-time="1s"><output>/o</output></job><job name="b" maps="1" map-time="1s"><output>/o</output></job></workflow>`, "share output"},
		{"noTasks", `<workflow name="w" deadline="1m"><job name="a"/></workflow>`, "no tasks"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseXMLString(tc.doc)
			if err == nil {
				t.Fatal("ParseXMLString returned nil error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestXMLRoundTrip(t *testing.T) {
	orig, err := ParseXMLString(sampleXML)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := MarshalXML(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseXML(strings.NewReader(string(out)))
	if err != nil {
		t.Fatalf("reparse: %v\ndocument:\n%s", err, out)
	}
	if back.Name != orig.Name || back.Release != orig.Release || back.Deadline != orig.Deadline {
		t.Errorf("header mismatch: %+v vs %+v", back, orig)
	}
	if len(back.Jobs) != len(orig.Jobs) {
		t.Fatalf("job count %d vs %d", len(back.Jobs), len(orig.Jobs))
	}
	for i := range orig.Jobs {
		o, b := &orig.Jobs[i], &back.Jobs[i]
		if o.Name != b.Name || o.Maps != b.Maps || o.Reduces != b.Reduces ||
			o.MapTime != b.MapTime || o.ReduceTime != b.ReduceTime {
			t.Errorf("job %d mismatch: %+v vs %+v", i, o, b)
		}
		if len(o.Prereqs) != len(b.Prereqs) {
			t.Errorf("job %d prereqs %v vs %v", i, o.Prereqs, b.Prereqs)
			continue
		}
		for k := range o.Prereqs {
			if o.Prereqs[k] != b.Prereqs[k] {
				t.Errorf("job %d prereq %d: %v vs %v", i, k, o.Prereqs, b.Prereqs)
			}
		}
	}
}

func TestRoundTripWithoutPaths(t *testing.T) {
	// Programmatic workflows have no dataset paths; the DAG must survive the
	// round trip via <after> elements alone.
	orig := diamond(t)
	out, err := MarshalXML(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := ParseXMLString(string(out))
	if err != nil {
		t.Fatalf("reparse: %v\ndocument:\n%s", err, out)
	}
	for i := range orig.Jobs {
		o, b := orig.Jobs[i].Prereqs, back.Jobs[i].Prereqs
		if len(o) != len(b) {
			t.Fatalf("job %d prereqs %v vs %v", i, o, b)
		}
		for k := range o {
			if o[k] != b[k] {
				t.Fatalf("job %d prereqs %v vs %v", i, o, b)
			}
		}
	}
}

func TestPathWithin(t *testing.T) {
	tests := []struct {
		p, dir string
		want   bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/b/c", "/a/b", true},
		{"/a/b/c", "/a/b/", true},
		{"/a/bc", "/a/b", false},
		{"/a", "/a/b", false},
		{"/x/y", "/a", false},
	}
	for _, tc := range tests {
		if got := pathWithin(tc.p, tc.dir); got != tc.want {
			t.Errorf("pathWithin(%q, %q) = %v, want %v", tc.p, tc.dir, got, tc.want)
		}
	}
}
