package workflow

import (
	"fmt"
	"time"

	"repro/internal/simtime"
)

// Builder constructs workflows programmatically with name-based dependency
// references, deferring all error reporting to Build so call sites can chain
// Job calls fluently.
type Builder struct {
	name   string
	jobs   []Job
	byName map[string]JobID
	err    error
}

// NewBuilder starts a workflow named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]JobID)}
}

// Job appends a job with the given shape that must run after the named
// prerequisite jobs, which must have been added already. It returns the
// builder for chaining.
func (b *Builder) Job(name string, maps, reduces int, mapTime, reduceTime time.Duration, after ...string) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.byName[name]; dup {
		b.err = fmt.Errorf("workflow %q: duplicate job name %q", b.name, name)
		return b
	}
	id := JobID(len(b.jobs))
	prereqs := make([]JobID, 0, len(after))
	for _, dep := range after {
		p, ok := b.byName[dep]
		if !ok {
			b.err = fmt.Errorf("workflow %q: job %q depends on unknown job %q", b.name, name, dep)
			return b
		}
		prereqs = append(prereqs, p)
	}
	b.jobs = append(b.jobs, Job{
		ID:         id,
		Name:       name,
		Maps:       maps,
		Reduces:    reduces,
		MapTime:    mapTime,
		ReduceTime: reduceTime,
		Prereqs:    prereqs,
	})
	b.byName[name] = id
	return b
}

// Build finalizes the workflow with the given release time and absolute
// deadline and validates it.
func (b *Builder) Build(release, deadline simtime.Time) (*Workflow, error) {
	if b.err != nil {
		return nil, b.err
	}
	w := &Workflow{Name: b.name, Jobs: b.jobs, Release: release, Deadline: deadline}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustBuild is Build for tests and examples with known-good topologies; it
// panics on error.
func (b *Builder) MustBuild(release, deadline simtime.Time) *Workflow {
	w, err := b.Build(release, deadline)
	if err != nil {
		panic(err)
	}
	return w
}
