// Package metrics provides the measurement utilities behind the paper's
// evaluation figures: empirical CDFs (Fig 5, Fig 6), decade-bucketed
// histograms (Fig 3), and per-workflow slot-allocation timelines
// (Fig 14 - Fig 19).
package metrics

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
// The zero value is an empty distribution.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.sorted) }

// P returns the empirical P(X <= x), or 0 for an empty distribution.
func (c CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Include equal samples.
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-th quantile (p in [0,1]) by nearest-rank, or 0 for
// an empty distribution.
func (c CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// LogHistogram counts samples into decade buckets: bucket e holds samples in
// [10^(e-1), 10^e). It reproduces Fig 3's "occurrence count vs change
// interval" presentation.
type LogHistogram struct {
	counts map[int]int
	total  int
}

// NewLogHistogram returns an empty histogram.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{counts: make(map[int]int)}
}

// Add records a sample. Non-positive samples land in the lowest bucket.
func (h *LogHistogram) Add(v float64) {
	e := math.MinInt32
	if v > 0 {
		e = int(math.Floor(math.Log10(v))) + 1
	}
	h.counts[e]++
	h.total++
}

// Bucket is one decade of a LogHistogram: samples in [10^(UpperExp-1),
// 10^UpperExp).
type Bucket struct {
	UpperExp int
	Count    int
}

// Buckets returns non-empty buckets in ascending decade order.
func (h *LogHistogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for e, c := range h.counts {
		out = append(out, Bucket{UpperExp: e, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UpperExp < out[j].UpperExp })
	return out
}

// Total returns the number of samples added.
func (h *LogHistogram) Total() int { return h.total }

// FractionAbove returns the fraction of samples in buckets strictly above
// decade exponent e (i.e. samples known to be >= 10^e).
func (h *LogHistogram) FractionAbove(e int) float64 {
	if h.total == 0 {
		return 0
	}
	n := 0
	for exp, c := range h.counts {
		if exp > e {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}
