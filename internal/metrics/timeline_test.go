package metrics

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/scheduler"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

func runWithTimeline(t *testing.T) (*Timeline, *cluster.Result) {
	t.Helper()
	tl := NewTimeline()
	cfg := cluster.Config{Nodes: 2, MapSlotsPerNode: 2, ReduceSlotsPerNode: 1}
	sim, err := cluster.New(cfg, scheduler.NewFIFO(), tl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		w := workflow.NewBuilder("wf"+string(rune('0'+i))).
			Job("a", 4, 2, 10*time.Second, 20*time.Second).
			Job("b", 2, 1, 10*time.Second, 20*time.Second, "a").
			MustBuild(simtime.FromSeconds(float64(i*5)), simtime.FromSeconds(100000))
		if err := sim.Submit(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tl, res
}

func TestTimelineSeries(t *testing.T) {
	tl, _ := runWithTimeline(t)
	if got := tl.Workflows(); got != 2 {
		t.Fatalf("Workflows = %d, want 2", got)
	}
	for wf := 0; wf < 2; wf++ {
		for _, st := range []cluster.SlotType{cluster.MapSlot, cluster.ReduceSlot} {
			pts := tl.Series(wf, st)
			if len(pts) == 0 {
				t.Errorf("wf %d %v: empty series", wf, st)
				continue
			}
			// Series must start positive, end at zero, never go negative.
			if pts[0].Running <= 0 {
				t.Errorf("wf %d %v: first point %+v not positive", wf, st, pts[0])
			}
			if last := pts[len(pts)-1]; last.Running != 0 {
				t.Errorf("wf %d %v: final point %+v, want 0 running", wf, st, last)
			}
			for i, p := range pts {
				if p.Running < 0 {
					t.Errorf("wf %d %v: negative occupancy at %d: %+v", wf, st, i, p)
				}
				if i > 0 && p.T <= pts[i-1].T {
					t.Errorf("wf %d %v: non-increasing time at %d", wf, st, i)
				}
			}
		}
	}
}

func TestTimelinePeakWithinCapacity(t *testing.T) {
	tl, res := runWithTimeline(t)
	if got := tl.PeakConcurrency(cluster.MapSlot); got > res.Config.MapSlots() {
		t.Errorf("map peak = %d, capacity %d", got, res.Config.MapSlots())
	}
	if got := tl.PeakConcurrency(cluster.ReduceSlot); got > res.Config.ReduceSlots() {
		t.Errorf("reduce peak = %d, capacity %d", got, res.Config.ReduceSlots())
	}
	if tl.PeakConcurrency(cluster.MapSlot) == 0 {
		t.Error("map peak = 0, want > 0")
	}
}

func TestTimelineCSV(t *testing.T) {
	tl, _ := runWithTimeline(t)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb, cluster.MapSlot); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("CSV has %d lines, want >= 3:\n%s", len(lines), sb.String())
	}
	if got, want := lines[0], "seconds,wf0_map_slots,wf1_map_slots"; got != want {
		t.Errorf("header = %q, want %q", got, want)
	}
	for i, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 2 {
			t.Errorf("row %d has %d commas, want 2: %q", i, got, line)
		}
	}
	// Every row after the last task must not exist: final row should show
	// all-zero occupancy.
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, ",0,0") {
		t.Errorf("final row %q does not end with zero occupancy", last)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline()
	if tl.Workflows() != 0 {
		t.Errorf("Workflows = %d, want 0", tl.Workflows())
	}
	if pts := tl.Series(0, cluster.MapSlot); len(pts) != 0 {
		t.Errorf("Series on empty timeline = %v", pts)
	}
	var sb strings.Builder
	if err := tl.WriteCSV(&sb, cluster.MapSlot); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(sb.String()); got != "seconds" {
		t.Errorf("empty CSV = %q, want header only", got)
	}
}
