package metrics

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/workflow"
)

// Timeline records per-workflow slot occupancy over time. It implements
// cluster.Observer and regenerates the slot-allocation plots of
// Fig 14 - Fig 19: for each slot type, how many slots each workflow holds at
// every instant.
type Timeline struct {
	events []tlEvent
	maxWF  int
}

type tlEvent struct {
	at    simtime.Time
	wf    int
	st    cluster.SlotType
	delta int
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{maxWF: -1} }

var _ cluster.Observer = (*Timeline)(nil)

// TaskStarted implements cluster.Observer.
func (t *Timeline) TaskStarted(now simtime.Time, ws *cluster.WorkflowState, _ workflow.JobID, st cluster.SlotType, _ time.Duration) {
	t.add(now, ws.Index, st, +1)
}

// TaskFinished implements cluster.Observer.
func (t *Timeline) TaskFinished(now simtime.Time, ws *cluster.WorkflowState, _ workflow.JobID, st cluster.SlotType) {
	t.add(now, ws.Index, st, -1)
}

func (t *Timeline) add(now simtime.Time, wf int, st cluster.SlotType, delta int) {
	t.events = append(t.events, tlEvent{at: now, wf: wf, st: st, delta: delta})
	if wf > t.maxWF {
		t.maxWF = wf
	}
}

// Point is one step of a workflow's occupancy series: Running slots held
// from time T until the next point.
type Point struct {
	T       simtime.Time
	Running int
}

// Workflows returns the number of workflows observed.
func (t *Timeline) Workflows() int { return t.maxWF + 1 }

// Series returns workflow wf's occupancy step-series for slot type st,
// with consecutive same-time events coalesced.
func (t *Timeline) Series(wf int, st cluster.SlotType) []Point {
	var pts []Point
	running := 0
	t.scan(st, func(at simtime.Time, w, delta int) {
		if w != wf {
			return
		}
		running += delta
		if n := len(pts); n > 0 && pts[n-1].T == at {
			pts[n-1].Running = running
		} else {
			pts = append(pts, Point{T: at, Running: running})
		}
	})
	return pts
}

// scan walks events of type st in time order (events are appended in time
// order by the simulator, so a stable sort preserves intra-instant order).
func (t *Timeline) scan(st cluster.SlotType, fn func(at simtime.Time, wf, delta int)) {
	evs := make([]tlEvent, 0, len(t.events))
	for _, e := range t.events {
		if e.st == st {
			evs = append(evs, e)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	for _, e := range evs {
		fn(e.at, e.wf, e.delta)
	}
}

// WriteCSV emits the timeline for slot type st as CSV: a header row, then
// one row per instant at which any allocation changed, with one column per
// workflow holding its slot count. This is the data behind each panel of
// Fig 14 - Fig 19.
func (t *Timeline) WriteCSV(w io.Writer, st cluster.SlotType) error {
	n := t.Workflows()
	if _, err := fmt.Fprintf(w, "seconds"); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, ",wf%d_%s_slots", i, st); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}

	running := make([]int, n)
	var last simtime.Time
	havePending := false
	flush := func() error {
		if !havePending {
			return nil
		}
		if _, err := fmt.Fprintf(w, "%.3f", last.Seconds()); err != nil {
			return err
		}
		for _, r := range running {
			if _, err := fmt.Fprintf(w, ",%d", r); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	var scanErr error
	t.scan(st, func(at simtime.Time, wf, delta int) {
		if scanErr != nil {
			return
		}
		if havePending && at != last {
			scanErr = flush()
		}
		running[wf] += delta
		last = at
		havePending = true
	})
	if scanErr != nil {
		return scanErr
	}
	return flush()
}

// PeakConcurrency returns the maximum total slots of type st held
// simultaneously across all workflows — a conservation check for tests.
func (t *Timeline) PeakConcurrency(st cluster.SlotType) int {
	total, peak := 0, 0
	t.scan(st, func(_ simtime.Time, _, delta int) {
		total += delta
		if total > peak {
			peak = total
		}
	})
	return peak
}
